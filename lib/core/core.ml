module Vec = Linalg.Vec
module Dense = Linalg.Dense
module Csr = Linalg.Csr
module Chebyshev = Linalg.Chebyshev
module Graph = Graph
module Digraph = Digraph
module Gen = Gen
module Runtime = Runtime
module Cost = Runtime.Cost
module Sim = Clique.Sim
module Kernel = Clique.Kernel
module Congest = Clique.Congest
module Boruvka = Clique.Boruvka
module Conductance = Expander.Conductance
module Decomposition = Expander.Decomposition
module Sparsifier = Sparsify.Spectral
module Quality = Sparsify.Quality
module Tree = Sparsify.Tree
module Solver = Laplacian.Solver
module Orientation = Euler.Orientation
module Flow_rounding = Rounding.Flow_rounding
module Flow = Flow
module Electrical = Electrical
module Dinic = Dinic
module Ford_fulkerson = Ford_fulkerson
module Trivial = Trivial
module Maxflow = Maxflow_ipm
module Mincostflow = Mcf_ipm
module Mcf_ssp = Mcf_ssp
module Cmsv_bipartite = Cmsv_bipartite

let solve_laplacian ?eps g b =
  let r = Laplacian.Solver.solve ?eps g b in
  (r.Laplacian.Solver.x, r)

let spectral_sparsifier ?phi g = Sparsify.Spectral.sparsify ?phi g

let eulerian_orientation g = Euler.Orientation.orient g

let round_flow ?cost g ~s ~t ~delta f =
  Rounding.Flow_rounding.round ?cost g ~s ~t ~delta f

let max_flow g ~s ~t = Maxflow_ipm.max_flow g ~s ~t

let min_cost_flow g ~sigma = Mcf_ipm.solve g ~sigma

let min_cost_max_flow g ~s ~t = Mcf_ipm.solve_max_flow_min_cost g ~s ~t

let minimum_spanning_tree g = Clique.Boruvka.minimum_spanning_tree g

let effective_resistance g u v = Electrical.effective_resistance g u v

let version = "0.1.0"

let pp_phases fmt phases =
  Format.fprintf fmt "@[<h>";
  List.iteri
    (fun i (name, rounds) ->
      if i > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%s=%d" name rounds)
    phases;
  Format.fprintf fmt "@]"
