(** The Laplacian paradigm in the deterministic congested clique.

    Umbrella API over the paper's results (Forster & de Vos, PODC 2023):

    - {!solve_laplacian} — Theorem 1.1, [n^{o(1)} log(U/ε)] rounds;
    - {!spectral_sparsifier} — Theorem 3.3;
    - {!eulerian_orientation} — Theorem 1.4, [O(log n · log* n)] rounds;
    - {!round_flow} — Lemma 4.2;
    - {!max_flow} — Theorem 1.2, [m^{3/7+o(1)} U^{1/7}] rounds;
    - {!min_cost_flow} — Theorem 1.3,
      [Õ(m^{3/7}(n^{0.158} + n^{o(1)} polylog W))] rounds.

    Module aliases expose the full substrate for users who need the pieces
    (the simulator, generators, baselines, measurement helpers). *)

(** {1 Substrate modules} *)

(** The functorized runtime layer: {!Runtime.Make} over the two
    {!Runtime.TRANSPORT} kernels ({!Sim}, {!Congest}); {!Kernel} holds the
    standard instantiations and {!Cost} the shared phase-tagged ledger. *)

module Vec = Linalg.Vec
module Dense = Linalg.Dense
module Csr = Linalg.Csr
module Chebyshev = Linalg.Chebyshev
module Graph = Graph
module Digraph = Digraph
module Gen = Gen
module Runtime = Runtime
module Cost = Runtime.Cost
module Sim = Clique.Sim
module Kernel = Clique.Kernel
module Congest = Clique.Congest
module Boruvka = Clique.Boruvka
module Conductance = Expander.Conductance
module Decomposition = Expander.Decomposition
module Sparsifier = Sparsify.Spectral
module Quality = Sparsify.Quality
module Tree = Sparsify.Tree
module Solver = Laplacian.Solver
module Orientation = Euler.Orientation
module Flow_rounding = Rounding.Flow_rounding
module Flow = Flow
module Electrical = Electrical
module Dinic = Dinic
module Ford_fulkerson = Ford_fulkerson
module Trivial = Trivial
module Maxflow = Maxflow_ipm
module Mincostflow = Mcf_ipm
module Mcf_ssp = Mcf_ssp
module Cmsv_bipartite = Cmsv_bipartite

(** {1 Headline entry points} *)

val solve_laplacian :
  ?eps:float -> Graph.t -> Vec.t -> Vec.t * Laplacian.Solver.report
(** [solve_laplacian g b] — Theorem 1.1 with default parameters; returns the
    solution and the full report (rounds, iterations, κ, phases). *)

val spectral_sparsifier : ?phi:float -> Graph.t -> Sparsify.Spectral.result
(** Theorem 3.3 with default parameters. *)

val eulerian_orientation : Graph.t -> Euler.Orientation.result
(** Theorem 1.4. *)

val round_flow :
  ?cost:(int -> float) ->
  Digraph.t ->
  s:int ->
  t:int ->
  delta:float ->
  float array ->
  Rounding.Flow_rounding.result
(** Lemma 4.2. *)

val max_flow : Digraph.t -> s:int -> t:int -> Maxflow_ipm.report
(** Theorem 1.2 with default parameters. *)

val min_cost_flow :
  Digraph.t -> sigma:int array -> Mcf_ipm.report option
(** Theorem 1.3 with default parameters. *)

val min_cost_max_flow :
  Digraph.t -> s:int -> t:int -> (Mcf_ipm.report * int) option
(** The §2.4 reduction: minimum-cost maximum s-t flow by binary search over
    the flow value (unit capacities). Returns the report and the number of
    probes. *)

val minimum_spanning_tree : Graph.t -> Clique.Boruvka.result
(** Borůvka on the message-passing kernel — the model's original problem
    ([LPSPP05]), [O(log n)] measured broadcast rounds. *)

val effective_resistance : Graph.t -> int -> int -> float
(** A classic Laplacian-paradigm application, solved with the default
    electrical backend. *)

val version : string

val pp_phases : Format.formatter -> (string * int) list -> unit
(** Render a per-phase round breakdown ("sparsify=12 chebyshev=96 ..."). *)
