(** Certified output checkers for every pipeline stage.

    Each validator re-derives an output's defining invariants from the
    input instance alone (never from the algorithm's intermediate state)
    in O(m + n) time, and returns a structured {!verdict}: [Pass], or a
    counterexample naming the violated invariant and the witness — the
    contract {!Recover} and the chaos suite build on. *)

type verdict =
  | Pass
  | Fail of {
      invariant : string;  (** short name, e.g. ["conservation"] *)
      counterexample : string;  (** the witness, human-readable *)
    }

val passed : verdict -> bool

val pp : Format.formatter -> verdict -> unit
(** Pretty-print a verdict (used in logs and error messages). *)

val to_string : verdict -> string
(** [Format.asprintf "%a" pp]. *)

val bfs_tree : Graph.t -> root:int -> int array -> verdict
(** Levels from a BFS with [-1] = unreached: root at level 0, edge levels
    differ by ≤ 1, every reached non-root has a parent one level closer,
    and a connected graph is fully covered. *)

val sssp : ?eps:float -> Graph.t -> src:int -> float array -> verdict
(** Shortest-path distances: zero at the source, triangle inequality along
    every edge, and every finite distance witnessed by a tight incident
    edge ([eps] defaults to 1e-6). *)

val max_flow :
  ?tol:float -> Digraph.t -> s:int -> t:int -> value:float -> Flow.t -> verdict
(** Capacity + nonnegativity, conservation away from [s]/[t], and the
    claimed value (Flow §2.4 definitions). *)

val mcf :
  ?tol:float -> Digraph.t -> sigma:int array -> cost_bound:float -> Flow.t -> verdict
(** Capacity, demand satisfaction (condition (1')), and cost at most
    [cost_bound]. *)

val eulerian : Graph.t -> bool array -> verdict
(** Per-edge orientation bits: in-degree equals out-degree everywhere. *)

val mst : ?tol:float -> Graph.t -> weight:float -> int list -> verdict
(** [mst g ~weight edges]: the edge-id list is duplicate-free and in range,
    acyclic, spans every connected component of [g], sums to the claimed
    [weight], and that weight is optimal (certified against an independent
    Kruskal re-derivation — the minimum spanning forest weight is unique
    even when the edge set is not). [tol] defaults to [1e-9]. *)

val solver_residual : ?eps:float -> Graph.t -> b:float array -> float array -> verdict
(** [‖Lx − b‖ ≤ eps·‖b‖] with [L] applied edge-wise ([eps] defaults to
    1e-4, matching the solver's default target). *)

val sparsifier : Graph.t -> Graph.t -> verdict
(** [sparsifier original sparse]: node count preserved, edge count within
    the Theorem 3.3 size bound, connectivity preserved, and every weight
    finite and at most [n²·U]. *)
