(* A deterministic, seeded fault schedule. Every injection decision is a
   pure function of the schedule seed and the coordinates of the message it
   applies to (round, operation, src, dst, message index, rule index) —
   there is no PRNG stream to advance, so decisions do not depend on
   evaluation order and a replay of the same program on the same schedule
   injects bit-identical faults. *)

type kind = Drop | Corrupt | Truncate | Stall | Crash

let kind_name = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Truncate -> "truncate"
  | Stall -> "stall"
  | Crash -> "crash"

let kind_of_name = function
  | "drop" -> Some Drop
  | "corrupt" -> Some Corrupt
  | "truncate" -> Some Truncate
  | "stall" -> Some Stall
  | "crash" -> Some Crash
  | _ -> None

type rule = {
  kind : kind;
  rate : float;
  phase : string option;
  first : int;
  last : int;
}

type t = { seed : int; rules : rule list }

let empty = { seed = 0; rules = [] }

let is_empty t = t.rules = []

let rule ?phase ?rounds kind rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Schedule.rule: rate must lie in [0,1]";
  let first, last =
    match rounds with
    | None -> (0, max_int)
    | Some (a, b) ->
      if a < 0 || b < a then
        invalid_arg "Schedule.rule: need 0 <= first <= last";
      (a, b)
  in
  { kind; rate; phase; first; last }

let create ?(seed = 1) rules = { seed; rules }

let seed t = t.seed

let rules t = t.rules

let applies r ~phase ~round =
  round >= r.first
  && round <= r.last
  && match r.phase with None -> true | Some p -> p = phase

(* ---------------------------------------------- stateless SplitMix64 mix *)

let golden = 0x9e3779b97f4a7c15L

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine h v = mix64 (Int64.add (Int64.logxor h (Int64.of_int v)) golden)

let key t ints = List.fold_left combine (mix64 (Int64.of_int t.seed)) ints

(* 53 uniform bits -> [0,1). *)
let to_unit h =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1.0 /. 9007199254740992.0)

let draw t ints = to_unit (key t ints)

let bits t ints = Int64.to_int (Int64.shift_right_logical (key t ints) 2)

(* --------------------------------------------------- CC_FAULTS spec text *)

let env_var = "CC_FAULTS"

let to_string t =
  let rule_str r =
    let buf = Buffer.create 32 in
    Buffer.add_string buf
      (Printf.sprintf "%s:%g" (kind_name r.kind) r.rate);
    (match r.phase with
    | Some p -> Buffer.add_string buf ("@phase=" ^ p)
    | None -> ());
    if r.first > 0 || r.last < max_int then
      Buffer.add_string buf
        (if r.last = max_int then Printf.sprintf "@rounds=%d-" r.first
         else Printf.sprintf "@rounds=%d-%d" r.first r.last);
    Buffer.contents buf
  in
  String.concat ";"
    (Printf.sprintf "seed=%d" t.seed :: List.map rule_str t.rules)

let parse_rule part =
  match String.split_on_char '@' part with
  | [] -> Error "empty rule"
  | head :: scopes -> (
    match String.split_on_char ':' head with
    | [ name; rate_s ] -> (
      match (kind_of_name name, float_of_string_opt rate_s) with
      | None, _ ->
        Error
          (Printf.sprintf
             "unknown fault kind %S (drop|corrupt|truncate|stall|crash)" name)
      | _, None -> Error (Printf.sprintf "bad rate %S" rate_s)
      | Some kind, Some rate when rate >= 0.0 && rate <= 1.0 ->
        let parse_scope acc scope =
          match acc with
          | Error _ -> acc
          | Ok (phase, window) -> (
            match String.index_opt scope '=' with
            | None -> Error (Printf.sprintf "bad scope %S" scope)
            | Some i -> (
              let k = String.sub scope 0 i in
              let v =
                String.sub scope (i + 1) (String.length scope - i - 1)
              in
              match k with
              | "phase" -> Ok (Some v, window)
              | "rounds" -> (
                match String.split_on_char '-' v with
                | [ a; "" ] -> (
                  match int_of_string_opt a with
                  | Some a when a >= 0 -> Ok (phase, Some (a, max_int))
                  | _ -> Error (Printf.sprintf "bad round window %S" v))
                | [ a; b ] -> (
                  match (int_of_string_opt a, int_of_string_opt b) with
                  | Some a, Some b when 0 <= a && a <= b ->
                    Ok (phase, Some (a, b))
                  | _ -> Error (Printf.sprintf "bad round window %S" v))
                | _ -> Error (Printf.sprintf "bad round window %S" v))
              | _ -> Error (Printf.sprintf "unknown scope key %S" k)))
        in
        Result.map
          (fun (phase, window) -> rule ?phase ?rounds:window kind rate)
          (List.fold_left parse_scope (Ok (None, None)) scopes)
      | Some _, Some rate ->
        Error (Printf.sprintf "rate %g outside [0,1]" rate))
    | _ -> Error (Printf.sprintf "bad rule %S (want kind:rate)" part))

let of_string s =
  let parts =
    List.filter
      (fun p -> String.trim p <> "")
      (String.split_on_char ';' (String.trim s))
  in
  let step acc part =
    match acc with
    | Error _ -> acc
    | Ok t -> (
      let part = String.trim part in
      match String.split_on_char '=' part with
      | [ "seed"; v ] -> (
        match int_of_string_opt v with
        | Some seed -> Ok { t with seed }
        | None -> Error (Printf.sprintf "bad seed %S" v))
      | _ ->
        Result.map (fun r -> { t with rules = t.rules @ [ r ] }) (parse_rule part)
      )
  in
  List.fold_left step (Ok { seed = 1; rules = [] }) parts

let of_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some s -> (
    match of_string s with
    | Ok t -> Some t
    | Error e ->
      invalid_arg (Printf.sprintf "%s: %s (in %S)" env_var e s))
