(* The verify-and-retry driver. Recovery decisions live here, above the
   charged algorithm layers (cc_lint rule L7 enforces that none of them
   catches Fault_detected or calls Recover.run themselves): a computation
   is run, its output is put to its certified checker, and on rejection it
   is re-executed with the extra rounds charged to the dedicated
   "recovery" phase — so the resilience cost is a visible ledger line, and
   an exhausted budget raises a machine-readable Fault_detected instead of
   ever returning an uncertified answer. *)

exception
  Fault_detected of { workload : string; attempts : int; cause : string }

let () =
  Printexc.register_printer (function
    | Fault_detected { workload; attempts; cause } ->
      Some
        (Printf.sprintf "Fault.Recover.Fault_detected(%s after %d attempts: %s)"
           workload attempts cause)
    | _ -> None)

let recovery_phase = Runtime.Cost.recovery_phase

type 'a outcome = { value : 'a; attempts : int; recovered : bool }

module Make (R : Runtime.S) = struct
  (* An attempt fails by checker rejection or by raising: under injected
     corruption a workload may legitimately trip input validation (e.g.
     Graph.create on a mangled edge), and that must count as a detected
     fault, not a crash of the driver. Genuine resource exhaustion is
     never swallowed. *)
  let attempt ~check f =
    match f () with
    | exception Out_of_memory -> raise Out_of_memory
    | exception Stack_overflow -> raise Stack_overflow
    | exception e ->
      Error (Printf.sprintf "attempt raised %s" (Printexc.to_string e))
    | value -> (
      match check value with
      | Check.Pass -> Ok value
      | Check.Fail _ as v -> Error (Check.to_string v))

  let run ?(retries = 2) ?(metrics = Metrics.disabled) ~name rt ~check f =
    if retries < 0 then invalid_arg "Recover.run: retries must be >= 0";
    let attempts_c = Metrics.counter metrics "recovery.attempts" in
    let retries_c = Metrics.counter metrics "recovery.retries" in
    let recovered_c = Metrics.counter metrics "recovery.recovered" in
    let exhausted_c = Metrics.counter metrics "recovery.exhausted" in
    let rec go k last =
      if k > retries + 1 then begin
        Metrics.incr exhausted_c;
        raise
          (Fault_detected { workload = name; attempts = k - 1; cause = last })
      end
      else begin
        Metrics.incr attempts_c;
        if k > 1 then Metrics.incr retries_c;
        let result =
          (* The first attempt is ordinary work in the caller's phase;
             every re-execution is charged to the recovery phase. *)
          if k = 1 then attempt ~check f
          else R.with_phase rt recovery_phase (fun () -> attempt ~check f)
        in
        match result with
        | Ok value ->
          if k > 1 then Metrics.incr recovered_c;
          { value; attempts = k; recovered = k > 1 }
        | Error cause -> go (k + 1) cause
      end
    in
    go 1 "never attempted"
end
