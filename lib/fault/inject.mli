(** The faulty-transport functor.

    [Make (T)] satisfies {!Runtime.TRANSPORT}, so
    [Runtime.Make (Make (Clique.Sim))] (or [(Make (Clique.Congest))]) runs
    any node program through a deterministic fault layer. Faults are
    decided message-by-message from the {!Schedule}'s keyed mixer, applied
    to the outgoing traffic, and the surviving traffic is delivered by the
    wrapped kernel — which keeps enforcing its own width bounds and round
    accounting, so injected faults can only {e remove or perturb} words,
    never smuggle extra bandwidth. An empty schedule is an exact
    passthrough (bit-identical rounds, words, and sanitizer
    transcripts). *)

type event = {
  round : int;  (** wrapped transport's round counter at call entry *)
  op : string;  (** ["exchange"], ["route"], or ["broadcast"] *)
  kind : Schedule.kind;
  src : int;
  dst : int;  (** [-1] for broadcasts and node-level faults *)
  detail : string;  (** human-readable description of the perturbation *)
}

val pp_event : Format.formatter -> event -> unit

module Make (T : Runtime.TRANSPORT) : sig
  include Runtime.TRANSPORT

  val inject : ?metrics:Metrics.t -> schedule:Schedule.t -> T.t -> t
  (** [inject ~schedule base] wraps an existing kernel. Every injected
      fault bumps the [fault.injected.<kind>] counter in [metrics]
      (default {!Metrics.disabled}) and is appended to {!events}. *)

  val base : t -> T.t
  (** The wrapped kernel (shared, not copied). *)

  val schedule : t -> Schedule.t

  val injected : t -> (string * int) list
  (** Per-kind injected-fault counts, sorted by kind name. *)

  val injected_total : t -> int

  val events : t -> event list
  (** The fault trace, in injection order. *)
end
