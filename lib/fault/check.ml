(* Certified output checkers. Each validator re-derives a pipeline
   output's defining invariants directly from the input instance — never
   from the algorithm's intermediate state — and returns either [Pass] or
   a counterexample naming the violated invariant and the witness. All
   checkers are deterministic, allocation-light, and O(m) or O(m + n). *)

type verdict = Pass | Fail of { invariant : string; counterexample : string }

let fail invariant fmt =
  Printf.ksprintf (fun counterexample -> Fail { invariant; counterexample }) fmt

let passed = function Pass -> true | Fail _ -> false

let pp ppf = function
  | Pass -> Format.pp_print_string ppf "pass"
  | Fail { invariant; counterexample } ->
    Format.fprintf ppf "FAIL[%s]: %s" invariant counterexample

let to_string v = Format.asprintf "%a" pp v

(* Combinator: first failure wins. *)
let all checks = List.fold_left
    (fun acc c -> match acc with Pass -> c () | f -> f)
    Pass checks

(* ------------------------------------------------------------- BFS tree *)

let bfs_tree g ~root dist =
  let n = Graph.n g in
  all
    [
      (fun () ->
        if Array.length dist <> n then
          fail "shape" "distance array has %d entries for %d nodes"
            (Array.length dist) n
        else Pass);
      (fun () ->
        if dist.(root) <> 0 then
          fail "root" "dist(root=%d) = %d, expected 0" root dist.(root)
        else Pass);
      (fun () ->
        (* Both endpoints of an edge are reached or neither; reached
           levels differ by at most one. *)
        let bad = ref Pass in
        Array.iteri
          (fun id (e : Graph.edge) ->
            if !bad = Pass then
              let du = dist.(e.u) and dv = dist.(e.v) in
              if (du < 0) <> (dv < 0) then
                bad :=
                  fail "reachability"
                    "edge %d = (%d,%d): dist %d vs %d — reached and \
                     unreached endpoints"
                    id e.u e.v du dv
              else if du >= 0 && abs (du - dv) > 1 then
                bad :=
                  fail "edge-level"
                    "edge %d = (%d,%d): levels %d and %d differ by more \
                     than 1"
                    id e.u e.v du dv)
          (Graph.edges g);
        !bad);
      (fun () ->
        (* Every reached non-root has a parent one level closer. *)
        let bad = ref Pass in
        for v = 0 to n - 1 do
          if !bad = Pass && v <> root && dist.(v) >= 0 then
            let ok =
              List.exists (fun (u, _) -> dist.(u) = dist.(v) - 1)
                (Graph.adj g v)
            in
            if not ok then
              bad :=
                fail "parent"
                  "node %d at level %d has no neighbour at level %d" v
                  dist.(v)
                  (dist.(v) - 1)
        done;
        !bad);
      (fun () ->
        if Graph.is_connected g then
          let u = ref (-1) in
          Array.iteri (fun v d -> if !u < 0 && d < 0 then u := v) dist;
          if !u >= 0 then
            fail "coverage" "connected graph but node %d was never reached"
              !u
          else Pass
        else Pass);
    ]

(* ----------------------------------------------------------------- SSSP *)

let sssp ?(eps = 1e-6) g ~src dist =
  let n = Graph.n g in
  all
    [
      (fun () ->
        if Array.length dist <> n then
          fail "shape" "distance array has %d entries for %d nodes"
            (Array.length dist) n
        else Pass);
      (fun () ->
        if Float.abs dist.(src) > eps then
          fail "root" "dist(src=%d) = %g, expected 0" src dist.(src)
        else Pass);
      (fun () ->
        (* Triangle inequality along every edge, both directions. *)
        let bad = ref Pass in
        Array.iteri
          (fun id (e : Graph.edge) ->
            if !bad = Pass then
              let du = dist.(e.u) and dv = dist.(e.v) in
              if dv > du +. e.w +. eps then
                bad :=
                  fail "relaxation"
                    "edge %d = (%d,%d,w=%g): dist %g > %g + %g" id e.u e.v
                    e.w dv du e.w
              else if du > dv +. e.w +. eps then
                bad :=
                  fail "relaxation"
                    "edge %d = (%d,%d,w=%g): dist %g > %g + %g" id e.u e.v
                    e.w du dv e.w)
          (Graph.edges g);
        !bad);
      (fun () ->
        (* Every finite non-source distance is witnessed by some tight
           incident edge. *)
        let bad = ref Pass in
        for v = 0 to n - 1 do
          if !bad = Pass && v <> src && dist.(v) < infinity then begin
            let ok = ref false in
            List.iter
              (fun (u, id) ->
                let w = (Graph.edge g id).Graph.w in
                if Float.abs (dist.(v) -. (dist.(u) +. w)) <= eps then
                  ok := true)
              (Graph.adj g v);
            if not !ok then
              bad :=
                fail "witness"
                  "node %d: dist %g is not dist(u) + w for any incident \
                   edge"
                  v dist.(v)
          end
        done;
        !bad);
    ]

(* ------------------------------------------------------------- max flow *)

let max_flow ?(tol = 1e-6) g ~s ~t ~value f =
  all
    [
      (fun () ->
        if Array.length f <> Digraph.m g then
          fail "shape" "flow vector has %d entries for %d arcs"
            (Array.length f) (Digraph.m g)
        else Pass);
      (fun () ->
        let v = Flow.capacity_violation g ~f in
        if v > tol then
          fail "capacity" "capacity/nonnegativity violated by %g" v
        else Pass);
      (fun () ->
        let v = Flow.conservation_violation g ~s ~t ~f in
        if v > tol then
          fail "conservation"
            "max |excess| over internal vertices is %g" v
        else Pass);
      (fun () ->
        let v = Flow.value g ~s ~f in
        if Float.abs (v -. value) > tol then
          fail "value" "flow ships %g units, claimed value is %g" v value
        else Pass);
    ]

(* -------------------------------------------------------- min-cost flow *)

let mcf ?(tol = 1e-6) g ~sigma ~cost_bound f =
  all
    [
      (fun () ->
        if Array.length f <> Digraph.m g then
          fail "shape" "flow vector has %d entries for %d arcs"
            (Array.length f) (Digraph.m g)
        else Pass);
      (fun () ->
        let v = Flow.capacity_violation g ~f in
        if v > tol then
          fail "capacity" "capacity/nonnegativity violated by %g" v
        else Pass);
      (fun () ->
        let v = Flow.demand_violation g ~sigma ~f in
        if v > tol then
          fail "demand" "max |excess(v) + sigma(v)| is %g" v
        else Pass);
      (fun () ->
        let c = Flow.cost g f in
        if c > cost_bound +. tol then
          fail "cost" "flow costs %g, claimed bound is %g" c cost_bound
        else Pass);
    ]

(* ------------------------------------------------- Eulerian orientation *)

let eulerian g orientation =
  let n = Graph.n g in
  all
    [
      (fun () ->
        if Array.length orientation <> Graph.m g then
          fail "shape" "orientation has %d bits for %d edges"
            (Array.length orientation) (Graph.m g)
        else Pass);
      (fun () ->
        let balance = Array.make n 0 in
        Array.iteri
          (fun id (e : Graph.edge) ->
            let u, v =
              if orientation.(id) then (e.u, e.v) else (e.v, e.u)
            in
            balance.(u) <- balance.(u) + 1;
            balance.(v) <- balance.(v) - 1)
          (Graph.edges g);
        let bad = ref Pass in
        Array.iteri
          (fun v b ->
            if !bad = Pass && b <> 0 then
              bad :=
                fail "in=out"
                  "vertex %d: out-degree minus in-degree is %d" v b)
          balance;
        !bad);
    ]

(* ---------------------------------------------------------------- MST *)

let mst ?(tol = 1e-9) g ~weight edges =
  let n = Graph.n g in
  let m = Graph.m g in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri = rj then false
    else begin
      parent.(ri) <- rj;
      true
    end
  in
  all
    [
      (fun () ->
        let seen = Array.make (max m 1) false in
        let bad = ref Pass in
        List.iter
          (fun id ->
            if !bad = Pass then
              if id < 0 || id >= m then
                fail "shape" "edge id %d out of range for %d edges" id m
                |> fun f -> bad := f
              else if seen.(id) then
                fail "shape" "edge id %d listed twice" id |> fun f ->
                bad := f
              else seen.(id) <- true)
          edges;
        !bad);
      (fun () ->
        (* Acyclic: every tree edge must join two distinct components. *)
        let bad = ref Pass in
        List.iter
          (fun id ->
            if !bad = Pass then
              let e = Graph.edge g id in
              if not (union e.Graph.u e.Graph.v) then
                bad :=
                  fail "acyclic" "edge %d = (%d,%d) closes a cycle" id
                    e.Graph.u e.Graph.v)
          edges;
        !bad);
      (fun () ->
        (* Spanning: the forest connects everything the input connects —
           after the unions above, no graph edge may still cross two
           different forest components. *)
        let bad = ref Pass in
        Array.iteri
          (fun id (e : Graph.edge) ->
            if !bad = Pass && find e.u <> find e.v then
              bad :=
                fail "spanning"
                  "graph edge %d = (%d,%d) crosses two forest components"
                  id e.u e.v)
          (Graph.edges g);
        !bad);
      (fun () ->
        let sum =
          List.fold_left
            (fun acc id -> acc +. (Graph.edge g id).Graph.w)
            0. edges
        in
        if Float.abs (sum -. weight) > tol then
          fail "weight" "edges sum to %g, claimed weight is %g" sum weight
        else Pass);
      (fun () ->
        (* Cut optimality via an independent oracle: the minimum spanning
           forest weight is unique even when the edge set is not, so a
           Kruskal re-derivation certifies optimality. *)
        let optimal =
          List.fold_left
            (fun acc id -> acc +. (Graph.edge g id).Graph.w)
            0. (Clique.Boruvka.kruskal g)
        in
        if weight > optimal +. tol then
          fail "optimality"
            "claimed weight %g exceeds the optimal forest weight %g" weight
            optimal
        else Pass);
    ]

(* ------------------------------------------------------ solver residual *)

let solver_residual ?(eps = 1e-4) g ~b x =
  let n = Graph.n g in
  all
    [
      (fun () ->
        if Array.length x <> n || Array.length b <> n then
          fail "shape" "x has %d and b has %d entries for %d nodes"
            (Array.length x) (Array.length b) n
        else Pass);
      (fun () ->
        let lx = Graph.apply_laplacian g x in
        let r2 = ref 0.0 and b2 = ref 0.0 in
        for i = 0 to n - 1 do
          let d = lx.(i) -. b.(i) in
          r2 := !r2 +. (d *. d);
          b2 := !b2 +. (b.(i) *. b.(i))
        done;
        let res = sqrt !r2 and norm = sqrt !b2 in
        if Float.is_nan res || res > (eps *. norm) +. 1e-12 then
          fail "residual" "|Lx - b| = %g exceeds eps|b| = %g (eps=%g)" res
            (eps *. norm) eps
        else Pass);
    ]

(* ------------------------------------------------------ sparsifier size *)

let sparsifier original sparse =
  let n = Graph.n original in
  let u = Float.max 1.0 (Graph.max_weight original) in
  all
    [
      (fun () ->
        if Graph.n sparse <> n then
          fail "shape" "sparsifier has %d nodes, input has %d"
            (Graph.n sparse) n
        else Pass);
      (fun () ->
        let bound = Sparsify.Spectral.size_bound ~n ~u in
        if Graph.m sparse > bound then
          fail "size-bound"
            "sparsifier keeps %d edges, Theorem 3.3 bound is %d"
            (Graph.m sparse) bound
        else Pass);
      (fun () ->
        if Graph.is_connected original && not (Graph.is_connected sparse)
        then
          fail "connectivity"
            "input is connected but the sparsifier is not (spectral \
             approximation impossible)"
        else Pass);
      (fun () ->
        let cap = float_of_int (n * n) *. u in
        let bad = ref Pass in
        Array.iteri
          (fun id (e : Graph.edge) ->
            if !bad = Pass && (not (Float.is_finite e.w) || e.w > cap) then
              bad :=
                fail "weight-sanity"
                  "sparsifier edge %d = (%d,%d) has weight %g > n^2 U = %g"
                  id e.u e.v e.w cap)
          (Graph.edges sparse);
        !bad);
    ]
