(* The faulty-transport functor. [Make (T)] is itself a Runtime.TRANSPORT,
   so Runtime.Make (Make (Sim)) (or (Make (Congest))) runs any node
   program through a deterministic fault layer: faults are decided by the
   schedule's keyed mixer on each message's coordinates, applied to the
   outgoing traffic, and the (possibly thinner) traffic is then delivered
   by the wrapped kernel, which keeps enforcing its own width bounds and
   round accounting. An empty schedule is an exact passthrough. *)

type event = {
  round : int;
  op : string;
  kind : Schedule.kind;
  src : int;
  dst : int;
  detail : string;
}

let pp_event ppf e =
  Format.fprintf ppf "round %d %s: %s src=%d dst=%d (%s)" e.round e.op
    (Schedule.kind_name e.kind) e.src e.dst e.detail

module Make (T : Runtime.TRANSPORT) = struct
  type t = {
    base : T.t;
    schedule : Schedule.t;
    metrics : Metrics.t;
    crashed : bool array;
    counts : (string, int) Hashtbl.t;
    mutable total : int;
    mutable events : event list;
  }

  let name = T.name ^ "+faults"

  let default_width = T.default_width

  let unicast = T.unicast

  let inject ?(metrics = Metrics.disabled) ~schedule base =
    {
      base;
      schedule;
      metrics;
      crashed = Array.make (T.n base) false;
      counts = Hashtbl.create 8;
      total = 0;
      events = [];
    }

  let base t = t.base

  let schedule t = t.schedule

  let n t = T.n t.base

  let rounds t = T.rounds t.base

  let words_sent t = T.words_sent t.base

  let recovery_rounds t = T.recovery_rounds t.base

  let charge t r = T.charge t.base r

  (* The wrapped kernel's counters pass straight through, so arena stats
     stay visible (and arena rounds stay bit-identical) under injection. *)
  let stats t = T.stats t.base

  let injected t =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts [])

  let injected_total t = t.total

  let events t = List.rev t.events

  let record t ~round ~op ~kind ~src ~dst ~detail =
    let kn = Schedule.kind_name kind in
    t.total <- t.total + 1;
    Hashtbl.replace t.counts kn
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts kn));
    Metrics.incr (Metrics.counter t.metrics ("fault.injected." ^ kn));
    t.events <- { round; op; kind; src; dst; detail } :: t.events

  (* Operation salts keep exchange/route/broadcast decisions independent
     even when they share a round; [node_salt] separates per-node
     (stall/crash) draws from per-message draws. *)
  let op_salt = function "exchange" -> 1 | "route" -> 2 | _ -> 3

  let node_salt = -2

  (* Whether [src] sends nothing this call: crashed earlier, or a
     stall/crash rule fires on the (node, round) coordinates now. *)
  let silent t ~op ~phase ~round src =
    t.crashed.(src)
    ||
    let salt = op_salt op in
    List.exists
      (fun (ri, (r : Schedule.rule)) ->
        match r.kind with
        | Schedule.Stall | Schedule.Crash ->
          Schedule.applies r ~phase ~round
          && Schedule.draw t.schedule [ salt; round; src; node_salt; ri ]
             < r.rate
          &&
          (let detail =
             match r.kind with
             | Schedule.Crash ->
               t.crashed.(src) <- true;
               "node crash-stops"
             | _ -> "node stalls this call"
           in
           record t ~round ~op ~kind:r.kind ~src ~dst:(-1) ~detail;
           true)
        | _ -> false)
      (List.mapi (fun i r -> (i, r)) (Schedule.rules t.schedule))

  (* Apply the message-level rules in order; [None] means dropped. *)
  let mangle t ~op ~phase ~round ~src ~dst ~idx payload =
    let salt = op_salt op in
    let coords ri = [ salt; round; src; dst; idx; ri ] in
    let apply acc (ri, (r : Schedule.rule)) =
      match acc with
      | None -> None
      | Some p ->
        if
          (not (Schedule.applies r ~phase ~round))
          || Schedule.draw t.schedule (coords ri) >= r.rate
        then acc
        else begin
          let len = Array.length p in
          match r.kind with
          | Schedule.Drop ->
            record t ~round ~op ~kind:r.kind ~src ~dst
              ~detail:(Printf.sprintf "%d-word message dropped" len);
            None
          | Schedule.Corrupt when len > 0 ->
            let b = Schedule.bits t.schedule (7 :: coords ri) in
            let pos = b mod len in
            let mask = 1 + (b / len mod 0xffff) in
            let p' = Array.copy p in
            p'.(pos) <- p'.(pos) lxor mask;
            record t ~round ~op ~kind:r.kind ~src ~dst
              ~detail:
                (Printf.sprintf "word %d xor 0x%x (%d -> %d)" pos mask
                   p.(pos) p'.(pos));
            Some p'
          | Schedule.Truncate when len > 0 ->
            let keep =
              Schedule.bits t.schedule (11 :: coords ri) mod len
            in
            record t ~round ~op ~kind:r.kind ~src ~dst
              ~detail:(Printf.sprintf "payload %d -> %d words" len keep);
            Some (Array.sub p 0 keep)
          | _ -> acc
        end
    in
    List.fold_left apply (Some payload)
      (List.mapi (fun i r -> (i, r)) (Schedule.rules t.schedule))

  let exchange ?width t outboxes =
    if Schedule.is_empty t.schedule then T.exchange ?width t.base outboxes
    else begin
      let op = "exchange" in
      let phase = Runtime.Mailbox.current_context () in
      let round = T.rounds t.base in
      let faulted =
        Array.mapi
          (fun src msgs ->
            if silent t ~op ~phase ~round src then []
            else if T.unicast then
              List.mapi
                (fun idx (dst, payload) ->
                  match mangle t ~op ~phase ~round ~src ~dst ~idx payload with
                  | Some p -> Some (dst, p)
                  | None -> None)
                msgs
              |> List.filter_map Fun.id
            else
              (* On a broadcast kernel a source's outbox is one message on
                 the air: draw the fault once per source (dst = -1, like
                 broadcast) and apply the outcome to every listed entry, so
                 injection never turns a legal one-payload outbox into a
                 multi-payload violation. *)
              match msgs with
              | [] -> []
              | (_, payload) :: _ -> (
                match
                  mangle t ~op ~phase ~round ~src ~dst:(-1) ~idx:src payload
                with
                | Some p -> List.map (fun (dst, _) -> (dst, p)) msgs
                | None -> []))
          outboxes
      in
      T.exchange ?width t.base faulted
    end

  let route ?width t msgs =
    if Schedule.is_empty t.schedule then T.route ?width t.base msgs
    else begin
      let op = "route" in
      let phase = Runtime.Mailbox.current_context () in
      let round = T.rounds t.base in
      (* Per-node silence decided once per call, like the other ops. *)
      let silence = Hashtbl.create 8 in
      let is_silent src =
        match Hashtbl.find_opt silence src with
        | Some b -> b
        | None ->
          let b = silent t ~op ~phase ~round src in
          Hashtbl.add silence src b;
          b
      in
      let faulted =
        List.mapi (fun idx (src, dst, payload) -> (idx, src, dst, payload)) msgs
        |> List.filter_map (fun (idx, src, dst, payload) ->
               if is_silent src then None
               else
                 match mangle t ~op ~phase ~round ~src ~dst ~idx payload with
                 | Some p -> Some (src, dst, p)
                 | None -> None)
      in
      T.route ?width t.base faulted
    end

  (* A broadcast result is one slot per node, so node-level faults and
     drops blank the slot ([||]) instead of removing it. *)
  let broadcast ?width t values =
    if Schedule.is_empty t.schedule then T.broadcast ?width t.base values
    else begin
      let op = "broadcast" in
      let phase = Runtime.Mailbox.current_context () in
      let round = T.rounds t.base in
      let faulted =
        Array.mapi
          (fun src payload ->
            if silent t ~op ~phase ~round src then [||]
            else
              match
                mangle t ~op ~phase ~round ~src ~dst:(-1) ~idx:src payload
              with
              | Some p -> p
              | None -> [||])
          values
      in
      T.broadcast ?width t.base faulted
    end
end
