(** Deterministic, seeded fault schedules.

    A schedule is a seed plus a list of independently rated {!rule}s, each
    naming a fault {!kind} and optionally scoped to one runtime phase
    and/or a window of transport rounds. Whether a rule fires on a given
    message is a pure function of the seed and the message's coordinates
    (round, operation, endpoints, index) through a SplitMix64-style bit
    mixer — no PRNG stream, no wall clock, no [Random] — so a replay of
    the same program under the same schedule injects bit-identical faults
    regardless of evaluation order. *)

type kind =
  | Drop  (** the message silently disappears *)
  | Corrupt  (** one payload word is XORed with a nonzero mask *)
  | Truncate  (** the payload loses its trailing words *)
  | Stall  (** the source node sends nothing this transport call *)
  | Crash  (** the source node sends nothing ever again (crash-stop) *)

val kind_name : kind -> string
(** ["drop"], ["corrupt"], ["truncate"], ["stall"], ["crash"]. *)

type rule = {
  kind : kind;
  rate : float;  (** firing probability per message (per node for
                     stall/crash), in [0,1] *)
  phase : string option;  (** only fire under this runtime phase *)
  first : int;  (** window start, in transport rounds at call entry *)
  last : int;  (** window end, inclusive; [max_int] = unbounded *)
}

type t

val empty : t
(** No rules: a faulty transport under [empty] is an exact passthrough. *)

val is_empty : t -> bool

val rule : ?phase:string -> ?rounds:int * int -> kind -> float -> rule
(** [rule ?phase ?rounds kind rate]. Raises [Invalid_argument] when [rate]
    leaves [0,1] or the window is malformed. *)

val create : ?seed:int -> rule list -> t
(** [create ~seed rules]; [seed] defaults to 1. *)

val seed : t -> int

val rules : t -> rule list
(** The parsed rules, in schedule order. *)

val applies : rule -> phase:string -> round:int -> bool
(** Whether the rule's phase and round-window scope admit this message. *)

val draw : t -> int list -> float
(** [draw t coords] is a uniform float in [0,1) determined entirely by the
    seed and [coords]; injectors compare it against a rule's [rate]. *)

val bits : t -> int list -> int
(** A non-negative pseudo-random integer from the same keyed mixer, for
    corruption masks and truncation lengths. *)

val env_var : string
(** ["CC_FAULTS"]. *)

val of_string : string -> (t, string) result
(** Parse a schedule spec:
    [seed=N;kind:rate\[@phase=p\]\[@rounds=a-b\];...] — e.g.
    ["seed=7;drop:0.25;corrupt:0.1@phase=gather;stall:0.05@rounds=4-32"].
    An omitted seed defaults to 1; [rounds=a-] leaves the window open. *)

val of_env : unit -> t option
(** The schedule in [CC_FAULTS], if set and non-empty. Raises
    [Invalid_argument] on a malformed spec (a chaos run must never
    silently fall back to faults-off). *)

val to_string : t -> string
(** Render back to the {!of_string} grammar. *)
