(** The verify-and-retry recovery driver.

    [Recover.Make (R).run ~check f] executes a charged computation, puts
    its output to a certified {!Check} validator, and re-executes on
    rejection — with every retry's rounds charged to the dedicated
    ["recovery"] ledger phase, so resilience cost is a visible line in
    [R.report] and the BENCH JSON. When the retry budget is exhausted it
    raises {!Fault_detected} with a machine-readable cause: the driver
    never returns an uncertified answer.

    Recovery decisions belong here, {e above} the algorithm layers:
    cc_lint rule L7 flags any charged layer that catches
    [Fault_detected] or invokes [Recover.run] itself. *)

exception
  Fault_detected of {
    workload : string;  (** the [~name] passed to {!Make.run} *)
    attempts : int;  (** executions performed (1 + retries) *)
    cause : string;  (** last checker counterexample or raised exception *)
  }

val recovery_phase : string
(** ["recovery"] — the ledger phase retries are charged under. *)

type 'a outcome = {
  value : 'a;  (** the certified result *)
  attempts : int;  (** executions performed, ≥ 1 *)
  recovered : bool;  (** [true] iff at least one retry was needed *)
}

module Make (R : Runtime.S) : sig
  val run :
    ?retries:int ->
    ?metrics:Metrics.t ->
    name:string ->
    R.t ->
    check:('a -> Check.verdict) ->
    (unit -> 'a) ->
    'a outcome
  (** [run ~retries ~metrics ~name rt ~check f] ([retries] defaults to 2).
      The first attempt runs in the caller's current phase; re-executions
      run under {!recovery_phase}. An attempt fails when [check] returns a
      counterexample or when [f] raises (resource exhaustion excepted —
      [Out_of_memory] and [Stack_overflow] propagate). Counters
      [recovery.attempts], [recovery.retries], [recovery.recovered], and
      [recovery.exhausted] are bumped in [metrics] (default
      {!Metrics.disabled}). Raises {!Fault_detected} when the budget is
      exhausted. *)
end
