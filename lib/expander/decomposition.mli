(** Deterministic (ε, φ)-expander decomposition — the congested-clique
    Theorem 3.2 interface (Chang–Saranurak), realized by deterministic
    recursive spectral partitioning (DESIGN.md, substitution 2).

    [decompose g ~phi] returns a partition of the vertex set such that every
    part induces a subgraph of conductance ≥ [phi] (certified by Cheeger:
    λ₂/2 ≥ φ, or by exact enumeration on tiny parts), plus the list of edges
    crossing the partition. The crossing edges are what the sparsifier
    pipeline (Theorem 3.3) recurses on. *)

type t = {
  clusters : int array list;  (** vertex sets, disjoint, covering [0..n-1] *)
  crossing : int list;  (** edge ids of [g] crossing the partition *)
  phi : float;  (** the conductance target that was certified *)
  rounds : int;  (** rounds charged per the Theorem 3.2 formula *)
}

val decompose : ?phi:float -> ?gamma:float -> Graph.t -> t
(** [phi] defaults to [0.05]; [gamma] (the [n^{O(γ)}] knob of Theorem 3.2)
    defaults to [0.25] and only affects the charged round count. *)

val cluster_of : t -> int -> int
(** [cluster_of d v] is the index (into [clusters]) of [v]'s cluster. *)

val check : Graph.t -> t -> bool
(** Validates: clusters partition the vertex set; [crossing] is exactly the
    set of inter-cluster edge ids. (Conductance is validated separately in
    tests because it is expensive.) *)

val crossing_fraction : Graph.t -> t -> float
(** [|crossing| / m] — the measured ε. *)

val rounds_formula : n:int -> gamma:float -> int
(** The charged cost of one decomposition call:
    [⌈n^γ⌉ + O(log n)] (ε is the constant 1/2 here, so the ε^{-O(1)} factor
    is constant and folded in). Exposed for the E1 bench's reference curve. *)

val bcast_rounds_formula : n:int -> int
(** The Broadcast Congested Clique recharge of one decomposition call:
    [4(⌈log₂ n⌉+1)² + 4⌈log₂ n⌉], a polylog stand-in with explicit
    constants for the FV22 construction (arXiv:2205.12059) that replaces
    the send-bound [⌈n^γ⌉] core. Exposed for the E11 reference curve;
    see DESIGN.md §13 for why the crossover only appears at large [n]. *)
