type t = {
  clusters : int array list;
  crossing : int list;
  phi : float;
  rounds : int;
}

let rounds_formula ~n ~gamma =
  let nf = float_of_int (max n 2) in
  int_of_float (Float.ceil (nf ** gamma)) + (4 * Runtime.Cost.log2_ceil n)

(* The broadcast-model recharge of the same call. The unicast ⌈n^γ⌉ core
   is send-bound (per-node distinct traffic through Lenzen routing), which
   the broadcast clique cannot afford; FV22 (arXiv:2205.12059) replace it
   with a polylogarithmic-round construction. We charge a quadratic polylog
   with explicit constants — 4(⌈log₂ n⌉+1)² plus the same O(log n) tail —
   as the reference stand-in; at bench sizes this is *more* than ⌈n^γ⌉,
   the asymptotic crossover being the honest story (EXPERIMENTS.md E11). *)
let bcast_rounds_formula ~n =
  let logn = Runtime.Cost.log2_ceil (max n 2) in
  (4 * (logn + 1) * (logn + 1)) + (4 * logn)

(* Exact minimum-conductance cut by enumeration; n ≤ 16. *)
let best_cut_small g =
  let n = Graph.n g in
  let best_phi = ref infinity in
  let best = ref (Array.make n false) in
  for mask = 1 to (1 lsl (n - 1)) - 1 do
    let inside = Array.make n false in
    inside.(0) <- true;
    for b = 0 to n - 2 do
      if (mask lsr b) land 1 = 1 then inside.(b + 1) <- true
    done;
    if not (Array.for_all (fun x -> x) inside) then begin
      let phi = Conductance.of_cut g inside in
      if phi < !best_phi then begin
        best_phi := phi;
        best := inside
      end
    end
  done;
  (!best, !best_phi)

let decompose ?(phi = 0.05) ?(gamma = 0.25) g =
  let n = Graph.n g in
  let clusters = ref [] in
  let rec refine (vs : int array) =
    let k = Array.length vs in
    if k <= 2 then clusters := vs :: !clusters
    else begin
      let sub, _ = Graph.induced g vs in
      let comps = Traversal.component_members sub in
      match comps with
      | [] -> ()
      | _ :: _ :: _ ->
        (* Disconnected: recurse on components; no edges cross them. *)
        List.iter
          (fun comp -> refine (Array.map (fun i -> vs.(i)) comp))
          comps
      | [ _ ] ->
        let certified, cut =
          if k <= 14 then begin
            let inside, best_phi = best_cut_small sub in
            (best_phi >= phi, inside)
          end
          else begin
            let lambda2, x = Fiedler.approx sub in
            if lambda2 /. 2. >= phi then (true, [||])
            else begin
              let inside, _ = Conductance.sweep_cut sub x in
              (false, inside)
            end
          end
        in
        if certified then clusters := vs :: !clusters
        else begin
          let left = ref [] and right = ref [] in
          Array.iteri
            (fun i v -> if cut.(i) then left := v :: !left else right := v :: !right)
            vs;
          match (!left, !right) with
          | [], _ | _, [] ->
            (* Degenerate cut: accept to guarantee termination. *)
            clusters := vs :: !clusters
          | l, r ->
            refine (Array.of_list (List.rev l));
            refine (Array.of_list (List.rev r))
        end
    end
  in
  refine (Array.init n (fun i -> i));
  let cluster_index = Array.make n (-1) in
  List.iteri
    (fun ci vs -> Array.iter (fun v -> cluster_index.(v) <- ci) vs)
    !clusters;
  let crossing = ref [] in
  Array.iteri
    (fun id e ->
      if cluster_index.(e.Graph.u) <> cluster_index.(e.Graph.v) then
        crossing := id :: !crossing)
    (Graph.edges g);
  {
    clusters = !clusters;
    crossing = List.rev !crossing;
    phi;
    rounds = rounds_formula ~n ~gamma;
  }

let cluster_of d v =
  let rec loop i = function
    | [] -> invalid_arg "Decomposition.cluster_of: vertex not found"
    | vs :: rest -> if Array.exists (( = ) v) vs then i else loop (i + 1) rest
  in
  loop 0 d.clusters

let check g d =
  let n = Graph.n g in
  let seen = Array.make n 0 in
  List.iter (fun vs -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) vs) d.clusters;
  let partition_ok = Array.for_all (( = ) 1) seen in
  let cluster_index = Array.make n (-1) in
  List.iteri
    (fun ci vs -> Array.iter (fun v -> cluster_index.(v) <- ci) vs)
    d.clusters;
  let expected_crossing = ref [] in
  Array.iteri
    (fun id e ->
      if cluster_index.(e.Graph.u) <> cluster_index.(e.Graph.v) then
        expected_crossing := id :: !expected_crossing)
    (Graph.edges g);
  partition_ok && List.rev !expected_crossing = d.crossing

let crossing_fraction g d =
  let m = Graph.m g in
  if m = 0 then 0. else float_of_int (List.length d.crossing) /. float_of_int m
