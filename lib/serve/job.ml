(* Job specs and the JSON wire protocol of cc_serve (DESIGN.md §15).

   A request is one frame of kind [frame_job] whose payload is a JSON
   object; the response comes back as one frame of kind [frame_result]
   (or [frame_error]) whose payload is again JSON, with the request [id]
   echoed both in the body and as the frame sequence number. *)

module Json = Metrics.Json

let frame_job = 0x30

let frame_result = 0x31

let frame_error = 0x32

type solver = Chebyshev | Cg_baseline

type payload =
  | Solve of {
      g : Graph.t;
      b : Linalg.Vec.t;
      solver : solver;
      eps : float;
      return_x : bool;
    }
  | Sparsify of { g : Graph.t }
  | Maxflow of { net : Digraph.t; s : int; t : int }
  | Mst of { g : Graph.t }
  | Stats
  | Shutdown

type t = {
  id : int;
  payload : payload;
  timeout_ms : float option;
  inject : bool;
  nocache : bool;
}

let kind_name = function
  | Solve _ -> "solve"
  | Sparsify _ -> "sparsify"
  | Maxflow _ -> "maxflow"
  | Mst _ -> "mst"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

(* ------------------------------------------------------------ parsing *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name j =
  let* v = field name j in
  match Json.to_int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S must be an integer" name)

let float_field name j =
  let* v = field name j in
  match Json.to_float_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S must be a number" name)

let opt_int name ~default j =
  match Json.member name j with
  | None -> Ok default
  | Some v -> (
    match Json.to_int_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S must be an integer" name))

let opt_float name ~default j =
  match Json.member name j with
  | None -> Ok default
  | Some v -> (
    match Json.to_float_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "field %S must be a number" name))

let opt_bool name j =
  match Json.member name j with Some (Json.Bool b) -> b | _ -> false

let seed_field j =
  let* s = opt_int "seed" ~default:1 j in
  Ok (Int64.of_int s)

(* A graph is either explicit — {"n": 4, "edges": [[u, v, w], ...]} — or a
   named deterministic generator from Gen, so requests stay small and the
   bench can describe whole workloads inline. *)
let graph_of_json j =
  match Json.member "gen" j with
  | Some (Json.String "connected_gnp") ->
    let* n = int_field "n" j in
    let* p = float_field "p" j in
    let* seed = seed_field j in
    Ok (Gen.connected_gnp ~seed n p)
  | Some (Json.String "weighted_gnp") ->
    let* n = int_field "n" j in
    let* p = float_field "p" j in
    let* u = int_field "u" j in
    let* seed = seed_field j in
    Ok (Gen.weighted_gnp ~seed n p u)
  | Some (Json.String "expander") ->
    let* n = int_field "n" j in
    let* d = int_field "d" j in
    Ok (Gen.expander n d)
  | Some (Json.String "grid") ->
    let* r = int_field "rows" j in
    let* c = int_field "cols" j in
    Ok (Gen.grid r c)
  | Some (Json.String "barbell") ->
    let* k = int_field "k" j in
    Ok (Gen.barbell k)
  | Some (Json.String g) -> Error (Printf.sprintf "unknown graph gen %S" g)
  | Some _ -> Error "field \"gen\" must be a string"
  | None ->
    let* n = int_field "n" j in
    let* edges = field "edges" j in
    let* lst =
      match Json.to_list_opt edges with
      | Some l -> Ok l
      | None -> Error "field \"edges\" must be a list"
    in
    let* edges =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          match e with
          | Json.List [ u; v; w ] -> (
            match
              (Json.to_int_opt u, Json.to_int_opt v, Json.to_float_opt w)
            with
            | Some u, Some v, Some w ->
              Ok ({ Graph.u; v; w } :: acc)
            | _ -> Error "edge entries must be [int, int, number]")
          | _ -> Error "each edge must be a [u, v, w] triple")
        (Ok []) lst
    in
    (try Ok (Graph.create n (List.rev edges))
     with Invalid_argument m -> Error m)

let net_of_json j =
  match Json.member "gen" j with
  | Some (Json.String "layered") ->
    let* layers = int_field "layers" j in
    let* width = int_field "width" j in
    let* maxcap = int_field "maxcap" j in
    let* seed = seed_field j in
    Ok (Gen.layered_network ~seed layers width maxcap)
  | Some (Json.String "random_network") ->
    let* n = int_field "n" j in
    let* m = int_field "m" j in
    let* maxcap = int_field "maxcap" j in
    let* seed = seed_field j in
    Ok (Gen.random_network ~seed n m maxcap)
  | Some (Json.String g) -> Error (Printf.sprintf "unknown network gen %S" g)
  | Some _ -> Error "field \"gen\" must be a string"
  | None ->
    let* n = int_field "n" j in
    let* arcs = field "arcs" j in
    let* lst =
      match Json.to_list_opt arcs with
      | Some l -> Ok l
      | None -> Error "field \"arcs\" must be a list"
    in
    let* arcs =
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          match a with
          | Json.List [ src; dst; cap ] -> (
            match
              (Json.to_int_opt src, Json.to_int_opt dst, Json.to_int_opt cap)
            with
            | Some src, Some dst, Some cap ->
              Ok ({ Digraph.src; dst; cap; cost = 0 } :: acc)
            | _ -> Error "arc entries must be [int, int, int]")
          | _ -> Error "each arc must be a [src, dst, cap] triple")
        (Ok []) lst
    in
    (try Ok (Digraph.create n (List.rev arcs))
     with Invalid_argument m -> Error m)

(* The right-hand side: an explicit float list, or {"seed": k} for the
   deterministic full-support pattern (the solver centers it). *)
let rhs_of_json n j =
  match j with
  | Json.List l ->
    let* b =
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          match Json.to_float_opt v with
          | Some f -> Ok (f :: acc)
          | None -> Error "field \"b\" entries must be numbers")
        (Ok []) l
    in
    let b = Array.of_list (List.rev b) in
    if Array.length b <> n then
      Error
        (Printf.sprintf "field \"b\" has %d entries for %d nodes"
           (Array.length b) n)
    else Ok b
  | Json.Assoc _ ->
    let* seed = opt_int "seed" ~default:1 j in
    Ok
      (Linalg.Vec.init n (fun i ->
           let s = if (i + seed) land 1 = 0 then 1. else -1. in
           s *. (1. +. (float_of_int (((i + seed) * 40503) land 0xffff)
                        /. 65536.))))
  | _ -> Error "field \"b\" must be a list of numbers or {\"seed\": k}"

let parse j =
  let* id = opt_int "id" ~default:0 j in
  let* kind = field "kind" j in
  let* kind =
    match Json.to_string_opt kind with
    | Some k -> Ok k
    | None -> Error "field \"kind\" must be a string"
  in
  let* payload =
    match kind with
    | "solve" ->
      let* gj = field "graph" j in
      let* g = graph_of_json gj in
      let* solver =
        match Json.member "solver" j with
        | None | Some (Json.String "chebyshev") -> Ok Chebyshev
        | Some (Json.String "cg") -> Ok Cg_baseline
        | Some (Json.String s) ->
          Error (Printf.sprintf "unknown solver %S" s)
        | Some _ -> Error "field \"solver\" must be a string"
      in
      let* eps = opt_float "eps" ~default:1e-6 j in
      let* b =
        match Json.member "b" j with
        | None -> rhs_of_json (Graph.n g) (Json.Assoc [])
        | Some bj -> rhs_of_json (Graph.n g) bj
      in
      Ok (Solve { g; b; solver; eps; return_x = opt_bool "return_x" j })
    | "sparsify" ->
      let* gj = field "graph" j in
      let* g = graph_of_json gj in
      Ok (Sparsify { g })
    | "maxflow" ->
      let* nj = field "net" j in
      let* net = net_of_json nj in
      let* s = opt_int "s" ~default:0 j in
      let* t = opt_int "t" ~default:(Digraph.n net - 1) j in
      Ok (Maxflow { net; s; t })
    | "mst" ->
      let* gj = field "graph" j in
      let* g = graph_of_json gj in
      Ok (Mst { g })
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | k -> Error (Printf.sprintf "unknown job kind %S" k)
  in
  let* timeout_ms =
    match Json.member "timeout_ms" j with
    | None -> Ok None
    | Some v -> (
      match Json.to_float_opt v with
      | Some f -> Ok (Some f)
      | None -> Error "field \"timeout_ms\" must be a number")
  in
  Ok
    {
      id;
      payload;
      timeout_ms;
      inject = opt_bool "inject" j;
      nocache = opt_bool "nocache" j;
    }

let parse_string s =
  match Json.of_string s with
  | Error e -> Error (Printf.sprintf "malformed JSON: %s" e)
  | Ok j -> ( match j with
    | Json.Assoc _ -> parse j
    | _ -> Error "request must be a JSON object")

(* ----------------------------------------------------------- responses *)

let error_body ~id msg =
  Json.Assoc [ ("id", Json.Int id); ("ok", Json.Bool false);
               ("error", Json.String msg) ]

let result_body ~id ~kind ~result ~metrics =
  Json.Assoc
    [
      ("id", Json.Int id);
      ("ok", Json.Bool true);
      ("kind", Json.String kind);
      ("result", Json.Assoc result);
      ("metrics", Json.Assoc metrics);
    ]

let frame ~kind ~id body =
  {
    Wire.Frame.kind;
    src = 0;
    dst = 0;
    seq = id;
    epoch = 0;
    payload = Bytes.of_string (Json.to_string ~minify:true body);
  }
