(* The cc_serve daemon: a select-loop listener feeding a domain worker
   pool (DESIGN.md §15).

   One listener domain owns all sockets: it accepts clients, reads job
   frames, answers Stats/Shutdown inline, and enqueues everything else.
   Worker domains pop jobs, run them through Exec (cache + certification
   policy), and reply on the client's link — a per-client send mutex
   serializes replies from concurrent workers. Job state never crosses
   process boundaries, so a worker crash model is out of scope here; the
   certification policy covers corrupt answers instead (PR 9's shard
   supervision covers lost processes). *)

(* cc_lint: allow L9 *)

module Json = Metrics.Json
module Link = Wire.Link

type config = {
  addr : string;  (* "unix:PATH" or "host:port" *)
  jobs : int;
  cache_cap : int;
  policy : Exec.policy;
  max_bytes : int;
}

let getenv name ~default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some v -> v

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let int_env name ~default =
  let raw = getenv name ~default:(string_of_int default) in
  match int_of_string_opt raw with
  | Some v when v >= 1 -> Ok v
  | Some _ | None ->
    Error (Printf.sprintf "%s must be a positive integer, got %S" name raw)

let config_of_env () =
  let* jobs = int_env "CC_SERVE_JOBS" ~default:2 in
  let* cache_cap = int_env "CC_SERVE_CACHE" ~default:32 in
  let* policy = Exec.policy_of_string (getenv "CC_SERVE_POLICY" ~default:"") in
  Ok
    {
      addr = getenv "CC_SERVE_ADDR" ~default:"unix:/tmp/cc-serve.sock";
      jobs;
      cache_cap;
      policy;
      max_bytes = 8 * 1024 * 1024;
    }

let unix_prefix = "unix:"

let is_unix addr =
  String.length addr >= String.length unix_prefix
  && String.sub addr 0 (String.length unix_prefix) = unix_prefix

let unix_path addr =
  String.sub addr (String.length unix_prefix)
    (String.length addr - String.length unix_prefix)

(* Bind per the address scheme; returns the *actual* address, resolving a
   TCP port 0 request to the ephemeral port the kernel picked. *)
let listen_on addr =
  if is_unix addr then (Link.listen_unix (unix_path addr), addr)
  else
    let fd = Link.listen addr in
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (host, port) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
      | Unix.ADDR_UNIX p -> unix_prefix ^ p
    in
    (fd, actual)

type client = {
  link : Link.t;
  send_m : Mutex.t;
  mutable alive : bool;
}

type item = {
  job : Job.t;
  from : client;
  enqueued_at : float;
  deadline : float option;  (* absolute; from the job's [timeout_ms] *)
}

type counters = {
  mutable received : int;
  mutable completed : int;
  mutable refused : int;
  mutable timed_out : int;
}

type t = {
  config : t_config;
  actual_addr : string;
  listen_fd : Unix.file_descr;
  cache : Exec.artifact Cache.t;
  queue : item Queue.t;
  queue_m : Mutex.t;
  queue_c : Condition.t;
  stop : bool Atomic.t;
  counters : counters;
  counters_m : Mutex.t;
  started_at : float;
  mutable listener : unit Domain.t option;
  mutable workers : unit Domain.t list;
}

and t_config = config

let addr t = t.actual_addr

let send_to client frame =
  Mutex.lock client.send_m;
  (match
     if client.alive then Link.send client.link frame
   with
  | () -> Mutex.unlock client.send_m
  | exception (Link.Closed _ | Unix.Unix_error _) ->
    client.alive <- false;
    Mutex.unlock client.send_m
  | exception e ->
    Mutex.unlock client.send_m;
    raise e);
  ()

let send_error client ~id msg =
  send_to client (Job.frame ~kind:Job.frame_error ~id (Job.error_body ~id msg))

let bump t f =
  Mutex.lock t.counters_m;
  f t.counters;
  Mutex.unlock t.counters_m

(* ------------------------------------------------------------ workers *)

let metrics_fields ~(outcome : Exec.outcome) ~policy ~queue_wait ~wall =
  [
    ("queue_wait_ms", Json.Float (queue_wait *. 1000.));
    ("solve_ms", Json.Float (wall *. 1000.));
    ("rounds", Json.Int outcome.Exec.rounds);
    ( "cache",
      Json.String
        (match outcome.Exec.cache with
        | `Hit -> "hit"
        | `Miss -> "miss"
        | `Bypass -> "bypass") );
    ("attempts", Json.Int outcome.Exec.attempts);
    ("recovered", Json.Bool outcome.Exec.recovered);
    ("policy", Json.String (Exec.policy_name policy));
  ]

let process t (it : item) =
  let id = it.job.Job.id in
  let now = Unix.gettimeofday () in
  match it.deadline with
  | Some d when now > d ->
    bump t (fun c -> c.timed_out <- c.timed_out + 1);
    send_error it.from ~id
      (Printf.sprintf "job %d timed out in queue after %.0f ms" id
         ((now -. it.enqueued_at) *. 1000.))
  | _ -> (
    let queue_wait = now -. it.enqueued_at in
    match Exec.run ~policy:t.config.policy ~cache:t.cache it.job with
    | Ok outcome ->
      let wall = Unix.gettimeofday () -. now in
      bump t (fun c -> c.completed <- c.completed + 1);
      send_to it.from
        (Job.frame ~kind:Job.frame_result ~id
           (Job.result_body ~id
              ~kind:(Job.kind_name it.job.Job.payload)
              ~result:outcome.Exec.fields
              ~metrics:
                (metrics_fields ~outcome ~policy:t.config.policy ~queue_wait
                   ~wall)))
    | Error msg ->
      bump t (fun c -> c.refused <- c.refused + 1);
      send_error it.from ~id msg)

let worker_loop t () =
  let rec next () =
    Mutex.lock t.queue_m;
    let rec await () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if Atomic.get t.stop then None
      else begin
        Condition.wait t.queue_c t.queue_m;
        await ()
      end
    in
    let item = await () in
    Mutex.unlock t.queue_m;
    match item with
    | None -> ()  (* stop requested and the queue is drained *)
    | Some it ->
      process t it;
      next ()
  in
  next ()

(* ----------------------------------------------------------- listener *)

let stats_body t ~id =
  let cs = Cache.stats t.cache in
  let c = t.counters in
  Mutex.lock t.counters_m;
  let received = c.received
  and completed = c.completed
  and refused = c.refused
  and timed_out = c.timed_out in
  Mutex.unlock t.counters_m;
  Mutex.lock t.queue_m;
  let depth = Queue.length t.queue in
  Mutex.unlock t.queue_m;
  Job.result_body ~id ~kind:"stats"
    ~result:
      [
        ("jobs_received", Json.Int received);
        ("jobs_completed", Json.Int completed);
        ("jobs_refused", Json.Int refused);
        ("jobs_timed_out", Json.Int timed_out);
        ("queue_depth", Json.Int depth);
        ("workers", Json.Int t.config.jobs);
        ("policy", Json.String (Exec.policy_name t.config.policy));
        ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
        ( "cache",
          Json.Assoc
            [
              ("entries", Json.Int cs.Cache.entries);
              ("hits", Json.Int cs.Cache.hits);
              ("misses", Json.Int cs.Cache.misses);
              ("evictions", Json.Int cs.Cache.evictions);
            ] );
      ]
    ~metrics:[]

let request_stop t =
  Atomic.set t.stop true;
  Mutex.lock t.queue_m;
  Condition.broadcast t.queue_c;
  Mutex.unlock t.queue_m

(* Handle one frame from [client]. Returns [false] if the connection must
   be dropped (desynchronized stream). *)
let handle_frame t client (frame : Wire.Frame.t) =
  let id = frame.Wire.Frame.seq in
  if frame.Wire.Frame.kind <> Job.frame_job then begin
    send_error client ~id
      (Printf.sprintf "unexpected frame kind 0x%02x" frame.Wire.Frame.kind);
    true
  end
  else if Bytes.length frame.Wire.Frame.payload > t.config.max_bytes then begin
    (* The frame was fully read, so the stream stays in sync: refuse the
       request but keep the connection. *)
    send_error client ~id
      (Printf.sprintf "request of %d bytes exceeds the %d-byte limit"
         (Bytes.length frame.Wire.Frame.payload)
         t.config.max_bytes);
    true
  end
  else begin
    bump t (fun c -> c.received <- c.received + 1);
    match Job.parse_string (Bytes.to_string frame.Wire.Frame.payload) with
    | Error msg ->
      bump t (fun c -> c.refused <- c.refused + 1);
      send_error client ~id msg;
      true
    | Ok job -> (
      match job.Job.payload with
      | Job.Stats ->
        bump t (fun c -> c.completed <- c.completed + 1);
        send_to client
          (Job.frame ~kind:Job.frame_result ~id:job.Job.id
             (stats_body t ~id:job.Job.id));
        true
      | Job.Shutdown ->
        bump t (fun c -> c.completed <- c.completed + 1);
        send_to client
          (Job.frame ~kind:Job.frame_result ~id:job.Job.id
             (Job.result_body ~id:job.Job.id ~kind:"shutdown"
                ~result:[ ("stopping", Json.Bool true) ]
                ~metrics:[]));
        request_stop t;
        true
      | _ ->
        let now = Unix.gettimeofday () in
        let deadline =
          match job.Job.timeout_ms with
          | None -> None
          | Some ms -> Some (now +. (ms /. 1000.))
        in
        Mutex.lock t.queue_m;
        Queue.push { job; from = client; enqueued_at = now; deadline } t.queue;
        Condition.signal t.queue_c;
        Mutex.unlock t.queue_m;
        true)
  end

let drop_client clients client =
  client.alive <- false;
  Link.close client.link;
  Hashtbl.remove clients (Link.fd client.link)

let listener_loop t () =
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 8 in
  while not (Atomic.get t.stop) do
    let fds =
      t.listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
    in
    let readable =
      match Unix.select fds [] [] 0.05 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd = t.listen_fd then begin
          match Link.accept t.listen_fd with
          | cfd ->
            let link = Link.of_fd ~peer:"cc-serve-client" cfd in
            Hashtbl.replace clients cfd
              { link; send_m = Mutex.create (); alive = true }
          | exception Unix.Unix_error _ -> ()
        end
        else
          match Hashtbl.find_opt clients fd with
          | None -> ()
          | Some client -> (
            match Link.recv client.link with
            | frame ->
              if not (handle_frame t client frame) then
                drop_client clients client
            | exception Link.Closed _ -> drop_client clients client
            | exception Wire.Frame.Malformed { what } ->
              (* After a corrupt header the stream is desynchronized:
                 apologize and hang up. *)
              send_error client ~id:0 ("malformed frame: " ^ what);
              drop_client clients client))
      readable
  done;
  Hashtbl.iter (fun _ c -> Link.close c.link) clients

(* ---------------------------------------------------------- lifecycle *)

let start config =
  let listen_fd, actual_addr = listen_on config.addr in
  let t =
    {
      config;
      actual_addr;
      listen_fd;
      cache = Cache.create ~cap:config.cache_cap;
      queue = Queue.create ();
      queue_m = Mutex.create ();
      queue_c = Condition.create ();
      stop = Atomic.make false;
      counters = { received = 0; completed = 0; refused = 0; timed_out = 0 };
      counters_m = Mutex.create ();
      started_at = Unix.gettimeofday ();
      listener = None;
      workers = [];
    }
  in
  t.workers <-
    List.init config.jobs (fun _ -> Domain.spawn (worker_loop t));
  t.listener <- Some (Domain.spawn (listener_loop t));
  t

let stop = request_stop

let wait t =
  (match t.listener with
  | Some d ->
    Domain.join d;
    t.listener <- None
  | None -> ());
  List.iter Domain.join t.workers;
  t.workers <- [];
  (match Unix.close t.listen_fd with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  if is_unix t.config.addr then
    match Unix.unlink (unix_path t.config.addr) with
    | () -> ()
    | exception Unix.Unix_error _ -> ()
