(** Job execution for the [cc_serve] daemon: artifact cache +
    certification policy (DESIGN.md §15).

    Solve jobs cache the {e prepared} solver handle (sparsifier, κ
    estimate, workspaces) keyed by graph fingerprint, so repeat solves on
    the same graph skip straight to the zero-allocation Chebyshev/CG
    iteration; sparsify / max-flow / MST jobs memoize the certified result
    itself. The [CC_SERVE_POLICY] certification policy decides what
    happens between computing an answer and returning it. *)

module Json = Metrics.Json

type policy =
  | Off  (** trust the pipeline; return answers unchecked *)
  | Verify  (** run the {!Fault.Check} validator; refuse on [Fail] *)
  | Recover
      (** re-run uncertified jobs through {!Fault.Recover} (retry budget 2)
          and refuse only when the budget is exhausted *)

val policy_of_string : string -> (policy, string) result
(** Accepts ["none"]/["off"]/[""], ["verify"], ["recover"]. *)

val policy_name : policy -> string

type artifact
(** What the daemon's {!Cache} stores: prepared solver handles or memoized
    certified reports, one variant per job kind. *)

type outcome = {
  fields : (string * Json.t) list;  (** the response's [result] object *)
  rounds : int;  (** charged congested-clique rounds *)
  cache : [ `Hit | `Miss | `Bypass ];
  attempts : int;
      (** executions performed for this request (0 on a memoized hit) *)
  recovered : bool;  (** [true] iff a retry was needed *)
}

val run :
  policy:policy -> cache:artifact Cache.t -> Job.t -> (outcome, string) result
(** Execute one job. [Error] carries a client-facing refusal message —
    certification failures, recovery exhaustion, and invalid instances all
    land here; control payloads ([Stats]/[Shutdown]) are rejected because
    the listener answers them inline. Thread-safe: same-graph jobs
    serialize on the cache entry's lock, everything else runs
    concurrently. *)
