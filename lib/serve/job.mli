(** Job specs and the JSON-over-frames protocol of [cc_serve]
    (DESIGN.md §15).

    A request is one {!Wire.Frame} of kind {!frame_job} carrying a JSON
    object; the daemon answers with one frame of kind {!frame_result}
    (success) or {!frame_error} (refusal), echoing the request [id] both
    as the frame sequence number and in the body. Graph and network
    operands are given either explicitly ([{"n": …, "edges": [[u,v,w],…]}])
    or as named deterministic {!Gen} generators, so a whole benchmark
    workload fits in a few hundred bytes of request. *)

module Json = Metrics.Json

val frame_job : int
(** Frame kind 0x30 — client → daemon request. *)

val frame_result : int
(** Frame kind 0x31 — daemon → client success. *)

val frame_error : int
(** Frame kind 0x32 — daemon → client refusal (body has [ok: false]). *)

type solver = Chebyshev  (** the Theorem 1.1 pipeline *)
            | Cg_baseline  (** plain distributed CG *)

type payload =
  | Solve of {
      g : Graph.t;
      b : Linalg.Vec.t;
      solver : solver;
      eps : float;
      return_x : bool;  (** include the full solution vector in the reply *)
    }
  | Sparsify of { g : Graph.t }
  | Maxflow of { net : Digraph.t; s : int; t : int }
  | Mst of { g : Graph.t }
  | Stats  (** daemon counters; answered inline by the listener *)
  | Shutdown  (** acknowledged, then the daemon drains and exits *)

type t = {
  id : int;  (** echoed in the response; defaults to 0 *)
  payload : payload;
  timeout_ms : float option;
      (** drop the job with an error if it still sits in the queue this
          many milliseconds after arrival *)
  inject : bool;
      (** test hook: corrupt the first execution's output so the
          [CC_SERVE_POLICY] certification path is exercised
          deterministically *)
  nocache : bool;  (** bypass the artifact cache (naive-mode benching) *)
}

val kind_name : payload -> string

val parse : Json.t -> (t, string) result
(** Parse a request object; [Error] carries a client-facing message. *)

val parse_string : string -> (t, string) result
(** {!Json.of_string} then {!parse}. *)

val error_body : id:int -> string -> Json.t

val result_body :
  id:int ->
  kind:string ->
  result:(string * Json.t) list ->
  metrics:(string * Json.t) list ->
  Json.t

val frame : kind:int -> id:int -> Json.t -> Wire.Frame.t
(** Wrap a JSON body into a protocol frame (minified payload, [seq = id]). *)
