(** Structural FNV-1a fingerprints for the daemon's cache keys.

    A fingerprint folds the full structure (sizes, endpoints, weight/cap
    bits) through {!Wire.Fnv}, so equal inputs — however they were
    specified on the wire — map to the same cache entry, across processes
    and runs. Distinct inputs colliding is as unlikely as any 64-bit hash;
    a collision can only ever serve a wrong *artifact*, never corrupt one,
    and certified policies re-check outputs against the actual input. *)

val graph : Graph.t -> int64

val digraph : Digraph.t -> int64

val vec : int64 -> Linalg.Vec.t -> int64
(** Fold a vector into an existing fingerprint. *)

val float : int64 -> float -> int64
(** Fold one float (by IEEE bit pattern). *)

val string : int64 -> string -> int64
(** Fold a string ({!Wire.Fnv.add_string}). *)

val to_hex : int64 -> string
(** 16 lowercase hex digits — the cache-key / wire spelling. *)
