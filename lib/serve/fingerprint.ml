(* Structural FNV-1a fingerprints for cache keys. The folds reuse
   Wire.Fnv (the transcript/checksum hash) so a fingerprint is stable
   across processes and runs — the property the daemon's cache keying and
   the cache-hit-identity tests rest on. *)

let graph g =
  let fp = ref (Wire.Fnv.add_int Wire.Fnv.offset (Graph.n g)) in
  fp := Wire.Fnv.add_int !fp (Graph.m g);
  Array.iter
    (fun (e : Graph.edge) ->
      fp := Wire.Fnv.add_int !fp e.u;
      fp := Wire.Fnv.add_int !fp e.v;
      fp := Wire.Fnv.add_int !fp (Int64.to_int (Int64.bits_of_float e.w)))
    (Graph.edges g);
  !fp

let digraph d =
  let fp = ref (Wire.Fnv.add_int Wire.Fnv.offset (Digraph.n d)) in
  fp := Wire.Fnv.add_int !fp (Digraph.m d);
  Array.iter
    (fun (a : Digraph.arc) ->
      fp := Wire.Fnv.add_int !fp a.src;
      fp := Wire.Fnv.add_int !fp a.dst;
      fp := Wire.Fnv.add_int !fp a.cap;
      fp := Wire.Fnv.add_int !fp a.cost)
    (Digraph.arcs d);
  !fp

let vec fp (v : Linalg.Vec.t) =
  let fp = ref (Wire.Fnv.add_int fp (Array.length v)) in
  Array.iter
    (fun x ->
      fp := Wire.Fnv.add_int !fp (Int64.to_int (Int64.bits_of_float x)))
    v;
  !fp

let float fp x = Wire.Fnv.add_int fp (Int64.to_int (Int64.bits_of_float x))

let string = Wire.Fnv.add_string

let to_hex fp = Printf.sprintf "%016Lx" fp
