(** Thread-safe LRU artifact cache keyed by fingerprint strings.

    The daemon keeps one of these per process: entries hold prepared
    solver handles, sparsifiers, and memoized pipeline reports, keyed by
    {!Fingerprint} strings. Each entry carries its own mutex serializing
    use of the artifact (prepared handles own mutable workspaces), so
    same-key jobs take turns while different-key jobs run concurrently;
    the table lock itself is never held across a build or a solve. *)

type 'v t

val create : cap:int -> 'v t
(** [cap] (clamped to ≥ 1) bounds the entry count; inserting into a full
    cache evicts the least-recently-used entry (a worker still holding an
    evicted entry finishes normally on its private reference). *)

val use : 'v t -> string -> build:(unit -> 'v) -> ('v -> 'a) -> 'a * bool
(** [use t key ~build f] looks up [key] — counting a hit iff the entry
    already existed — locks the entry, runs [build] if it has no value yet
    (exactly one caller ever builds a given entry), applies [f] to the
    value and returns [(f value, hit)]. Exceptions from [build] or [f]
    release the entry lock and propagate ([build]'s failure leaves the
    entry empty for the next caller). *)

type stats = { entries : int; hits : int; misses : int; evictions : int }

val stats : 'v t -> stats
