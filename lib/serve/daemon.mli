(** The [cc_serve] batched-solve daemon (DESIGN.md §15).

    A listener domain owns all sockets — it accepts clients, reads
    {!Job.frame_job} frames, answers [Stats]/[Shutdown] inline, and
    enqueues everything else; [jobs] worker domains pop jobs, execute
    them through {!Exec} (shared artifact {!Cache} + [CC_SERVE_POLICY]
    certification), and reply on the requesting client's link. *)

type config = {
  addr : string;
      (** ["unix:PATH"] for a Unix-domain socket, otherwise ["host:port"]
          (TCP port 0 picks an ephemeral port — read it back from
          {!addr}) *)
  jobs : int;  (** worker domains *)
  cache_cap : int;  (** LRU artifact-cache capacity (entries) *)
  policy : Exec.policy;
  max_bytes : int;  (** largest accepted request payload *)
}

val config_of_env : unit -> (config, string) result
(** Defaults overridden by [CC_SERVE_ADDR] (default
    ["unix:/tmp/cc-serve.sock"]), [CC_SERVE_JOBS] (2), [CC_SERVE_CACHE]
    (32), and [CC_SERVE_POLICY] ([none]); [Error] describes the bad
    variable. *)

type t

val start : config -> t
(** Bind, spawn the worker and listener domains, and return immediately.
    Raises [Unix.Unix_error] if the address cannot be bound. *)

val addr : t -> string
(** The actual address — equal to [config.addr] except that a TCP
    port 0 request is resolved to the port the kernel picked. *)

val stop : t -> unit
(** Request shutdown: stop accepting, let workers drain the queue, then
    exit. Idempotent; also triggered by a [Shutdown] job. *)

val wait : t -> unit
(** Join the listener and worker domains (blocks until {!stop} or a
    [Shutdown] job lands), then close all sockets and remove the
    Unix-domain socket file. *)
