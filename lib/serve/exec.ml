(* Job execution: artifact cache, certification policy, per-kind
   pipelines. This is driver-layer code in the sense of DESIGN.md §8 —
   it may invoke Fault.Recover (cc_lint L7 confines that to layers whose
   rounds are not charged to an algorithm's ledger). *)

module Json = Metrics.Json
module Rec = Fault.Recover.Make (Clique.Kernel.On_sim)

type policy = Off | Verify | Recover

let policy_of_string = function
  | "none" | "off" | "" -> Ok Off
  | "verify" -> Ok Verify
  | "recover" -> Ok Recover
  | s -> Error (Printf.sprintf "unknown policy %S (none|verify|recover)" s)

let policy_name = function
  | Off -> "none"
  | Verify -> "verify"
  | Recover -> "recover"

type artifact =
  | A_cheb of Laplacian.Solver.prepared
  | A_cg of Laplacian.Solver.prepared_cg
  | A_sparsify of Sparsify.Spectral.result * int * bool
  | A_maxflow of Maxflow_ipm.report * int * bool
  | A_mst of Clique.Boruvka.result * int * bool

type outcome = {
  fields : (string * Json.t) list;
  rounds : int;
  cache : [ `Hit | `Miss | `Bypass ];
  attempts : int;
  recovered : bool;
}

exception Refused of string

let kind_mismatch () = raise (Refused "cache entry kind mismatch")

(* Run [compute] under the certification [policy]. [inject] corrupts the
   first execution's output (via [corrupt]) — the deterministic test hook
   for the recovery path: under [Off] the corrupt answer escapes, under
   [Verify] it is refused, under [Recover] it is retried and certified. *)
let with_policy ~policy ~inject ~name ~dim ~check ~corrupt compute =
  let first = ref true in
  let attempt () =
    let v = compute () in
    if inject && !first then begin
      first := false;
      corrupt v
    end
    else v
  in
  match policy with
  | Off -> (attempt (), 1, false)
  | Verify -> (
    let v = attempt () in
    match check v with
    | Fault.Check.Pass -> (v, 1, false)
    | Fault.Check.Fail _ as f ->
      raise (Refused ("certification failed: " ^ Fault.Check.to_string f)))
  | Recover -> (
    let rt = Clique.Kernel.clique (max dim 1) in
    try
      let o = Rec.run ~name rt ~check attempt in
      ( o.Fault.Recover.value,
        o.Fault.Recover.attempts,
        o.Fault.Recover.recovered )
    with Fault.Recover.Fault_detected { workload; attempts; cause } ->
      raise
        (Refused
           (Printf.sprintf "recovery exhausted for %s after %d attempts: %s"
              workload attempts cause)))

let hex_of_vec x = Fingerprint.to_hex (Fingerprint.vec Wire.Fnv.offset x)

(* ------------------------------------------------------------- solve *)

let corrupt_report (r : Laplacian.Solver.report) =
  let x = Linalg.Vec.copy r.Laplacian.Solver.x in
  if Array.length x > 0 then x.(0) <- x.(0) +. 1.;
  { r with Laplacian.Solver.x }

let solve_fields ~return_x (r : Laplacian.Solver.report) =
  let base =
    [
      ("x_fnv", Json.String (hex_of_vec r.Laplacian.Solver.x));
      ("residual", Json.Float r.Laplacian.Solver.residual);
      ("iterations", Json.Int r.Laplacian.Solver.iterations);
      ("kappa", Json.Float r.Laplacian.Solver.kappa);
      ("sparsifier_edges", Json.Int r.Laplacian.Solver.sparsifier_edges);
      ("rounds", Json.Int r.Laplacian.Solver.rounds);
    ]
  in
  if return_x then
    base
    @ [
        ( "x",
          Json.List
            (Array.to_list
               (Array.map (fun v -> Json.Float v) r.Laplacian.Solver.x)) );
      ]
  else base

let run_solve ~policy ~cache ~inject ~nocache ~g ~b ~solver ~eps ~return_x =
  let n = Graph.n g in
  (* The solver answers L x = b in the pseudo-inverse sense: it solves
     against the centered rhs (the component of b along 1 is outside
     range L), so that is what the residual must be measured against —
     checking raw b would report mean(b)·1 as a phantom residual and
     refuse honest answers. *)
  let b_centered = Linalg.Vec.center b in
  let check (r : Laplacian.Solver.report) =
    Fault.Check.solver_residual g ~b:b_centered r.Laplacian.Solver.x
  in
  let solve_with prep_solve =
    with_policy ~policy ~inject ~name:"serve.solve" ~dim:n ~check
      ~corrupt:corrupt_report prep_solve
  in
  let gfp = Fingerprint.float (Fingerprint.graph g) eps in
  let report, attempts, recovered, cache_state =
    match solver with
    | Job.Chebyshev ->
      if nocache then
        let prep = Laplacian.Solver.prepare ~eps g in
        let r, a, rc =
          solve_with (fun () -> Laplacian.Solver.solve_prepared prep b)
        in
        (r, a, rc, `Bypass)
      else
        let key = "solve-cheb:" ^ Fingerprint.to_hex gfp in
        let (r, a, rc), hit =
          Cache.use cache key
            ~build:(fun () -> A_cheb (Laplacian.Solver.prepare ~eps g))
            (function
              | A_cheb prep ->
                solve_with (fun () -> Laplacian.Solver.solve_prepared prep b)
              | _ -> kind_mismatch ())
        in
        (r, a, rc, if hit then `Hit else `Miss)
    | Job.Cg_baseline ->
      if nocache then
        let prep = Laplacian.Solver.prepare_cg ~eps g in
        let r, a, rc =
          solve_with (fun () -> Laplacian.Solver.solve_cg_prepared prep b)
        in
        (r, a, rc, `Bypass)
      else
        let key = "solve-cg:" ^ Fingerprint.to_hex gfp in
        let (r, a, rc), hit =
          Cache.use cache key
            ~build:(fun () -> A_cg (Laplacian.Solver.prepare_cg ~eps g))
            (function
              | A_cg prep ->
                solve_with (fun () ->
                    Laplacian.Solver.solve_cg_prepared prep b)
              | _ -> kind_mismatch ())
        in
        (r, a, rc, if hit then `Hit else `Miss)
  in
  {
    fields = solve_fields ~return_x report;
    rounds = report.Laplacian.Solver.rounds;
    cache = cache_state;
    attempts;
    recovered;
  }

(* --------------------------------------- memoized kinds (shared shape) *)

(* Sparsify / maxflow / MST results depend only on the instance, so the
   certified result itself is the cached artifact, stored together with
   how many executions certification took. A hit reports [attempts = 0]:
   nothing ran on behalf of that request. *)
let memoized ~cache ~nocache ~key ~build ~wrap ~extract ~fields ~rounds =
  if nocache then
    let v, attempts, recovered = build () in
    {
      fields = fields v;
      rounds = rounds v;
      cache = `Bypass;
      attempts;
      recovered;
    }
  else
    let (v, attempts, recovered), hit =
      Cache.use cache key ~build:(fun () -> wrap (build ())) extract
    in
    {
      fields = fields v;
      rounds = rounds v;
      cache = (if hit then `Hit else `Miss);
      attempts = (if hit then 0 else attempts);
      recovered = (if hit then false else recovered);
    }

let run ~policy ~cache (job : Job.t) =
  let inject = job.Job.inject in
  let nocache = job.Job.nocache in
  try
    match job.Job.payload with
    | Job.Stats | Job.Shutdown ->
      Error "internal: control jobs are handled by the listener"
    | Job.Solve { g; b; solver; eps; return_x } ->
      Ok
        (run_solve ~policy ~cache ~inject ~nocache ~g ~b ~solver ~eps
           ~return_x)
    | Job.Sparsify { g } ->
      let check (r : Sparsify.Spectral.result) =
        Fault.Check.sparsifier g r.Sparsify.Spectral.sparsifier
      in
      let corrupt (r : Sparsify.Spectral.result) =
        { r with Sparsify.Spectral.sparsifier = Graph.create (Graph.n g) [] }
      in
      Ok
        (memoized ~cache ~nocache
           ~key:("sparsify:" ^ Fingerprint.to_hex (Fingerprint.graph g))
           ~build:(fun () ->
             with_policy ~policy ~inject ~name:"serve.sparsify"
               ~dim:(Graph.n g) ~check ~corrupt (fun () ->
                 Sparsify.Spectral.sparsify g))
           ~wrap:(fun (v, a, r) -> A_sparsify (v, a, r))
           ~extract:(function
             | A_sparsify (v, a, r) -> (v, a, r)
             | _ -> kind_mismatch ())
           ~fields:(fun (r : Sparsify.Spectral.result) ->
             [
               ("edges", Json.Int (Graph.m r.Sparsify.Spectral.sparsifier));
               ("levels", Json.Int r.Sparsify.Spectral.levels);
               ("classes", Json.Int r.Sparsify.Spectral.classes);
               ( "h_fnv",
                 Json.String
                   (Fingerprint.to_hex
                      (Fingerprint.graph r.Sparsify.Spectral.sparsifier)) );
               ("rounds", Json.Int r.Sparsify.Spectral.rounds);
             ])
           ~rounds:(fun r -> r.Sparsify.Spectral.rounds))
    | Job.Maxflow { net; s; t } ->
      let check (r : Maxflow_ipm.report) =
        Fault.Check.max_flow net ~s ~t
          ~value:(float_of_int r.Maxflow_ipm.value)
          r.Maxflow_ipm.f
      in
      let corrupt (r : Maxflow_ipm.report) =
        { r with Maxflow_ipm.value = r.Maxflow_ipm.value + 1 }
      in
      let key =
        Printf.sprintf "maxflow:%d:%d:%s" s t
          (Fingerprint.to_hex (Fingerprint.digraph net))
      in
      Ok
        (memoized ~cache ~nocache ~key
           ~build:(fun () ->
             with_policy ~policy ~inject ~name:"serve.maxflow"
               ~dim:(Digraph.n net) ~check ~corrupt (fun () ->
                 Maxflow_ipm.max_flow net ~s ~t))
           ~wrap:(fun (v, a, r) -> A_maxflow (v, a, r))
           ~extract:(function
             | A_maxflow (v, a, r) -> (v, a, r)
             | _ -> kind_mismatch ())
           ~fields:(fun (r : Maxflow_ipm.report) ->
             [
               ("value", Json.Int r.Maxflow_ipm.value);
               ("ipm_iterations", Json.Int r.Maxflow_ipm.ipm_iterations);
               ("laplacian_solves", Json.Int r.Maxflow_ipm.laplacian_solves);
               ( "repair_augmentations",
                 Json.Int r.Maxflow_ipm.repair_augmentations );
               ("rounds", Json.Int r.Maxflow_ipm.rounds);
             ])
           ~rounds:(fun r -> r.Maxflow_ipm.rounds))
    | Job.Mst { g } ->
      let check (r : Clique.Boruvka.result) =
        Fault.Check.mst g ~weight:r.Clique.Boruvka.weight
          r.Clique.Boruvka.edges
      in
      let corrupt (r : Clique.Boruvka.result) =
        { r with Clique.Boruvka.weight = r.Clique.Boruvka.weight +. 1. }
      in
      Ok
        (memoized ~cache ~nocache
           ~key:("mst:" ^ Fingerprint.to_hex (Fingerprint.graph g))
           ~build:(fun () ->
             with_policy ~policy ~inject ~name:"serve.mst" ~dim:(Graph.n g)
               ~check ~corrupt (fun () ->
                 Clique.Boruvka.minimum_spanning_tree g))
           ~wrap:(fun (v, a, r) -> A_mst (v, a, r))
           ~extract:(function
             | A_mst (v, a, r) -> (v, a, r)
             | _ -> kind_mismatch ())
           ~fields:(fun (r : Clique.Boruvka.result) ->
             [
               ("weight", Json.Float r.Clique.Boruvka.weight);
               ("edge_count", Json.Int (List.length r.Clique.Boruvka.edges));
               ( "edges_fnv",
                 Json.String
                   (Fingerprint.to_hex
                      (Wire.Fnv.add_ints Wire.Fnv.offset
                         r.Clique.Boruvka.edges)) );
               ("rounds", Json.Int r.Clique.Boruvka.rounds);
             ])
           ~rounds:(fun r -> r.Clique.Boruvka.rounds))
  with
  | Refused msg -> Error msg
  | Invalid_argument msg | Failure msg -> Error msg
