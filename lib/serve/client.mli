(** Minimal synchronous [cc_serve] client: one request, one reply, over
    the {!Wire.Link} frame protocol. Used by the protocol test suite, the
    E13 bench, and the [cc_serve --call] convenience mode. *)

module Json = Metrics.Json

type t

val connect : string -> t
(** ["unix:PATH"] or ["host:port"]; raises [Unix.Unix_error] on refusal. *)

val close : t -> unit

val request : ?deadline:float -> t -> Json.t -> Json.t
(** Send one job object (its ["id"] becomes the frame sequence number)
    and block for the reply body. [deadline] is an absolute
    [Unix.gettimeofday] instant bounding each socket wait
    ({!Wire.Link.Timeout} on expiry). *)

val request_string : ?deadline:float -> t -> string -> Json.t
(** {!request} on a raw JSON string. *)

val ok : Json.t -> bool
(** The reply's ["ok"] field (false when absent). *)

val error_message : Json.t -> string option
