(* A small thread-safe LRU keyed by fingerprint strings.

   Two-level locking: the table mutex only covers lookup/insert/evict
   bookkeeping (never a build or a solve), while each entry carries its
   own mutex serializing use of the artifact it holds — prepared solver
   handles own mutable workspaces, so two jobs hitting the same graph
   must take turns, but jobs on different graphs proceed in parallel.

   Eviction drops the least-recently-used entry from the table only; a
   worker still holding the evicted entry keeps a valid reference and
   finishes normally. *)

type 'v entry = {
  key : string;
  lock : Mutex.t;
  mutable value : 'v option;  (* None until the first holder builds it *)
  mutable last_used : int;
}

type 'v t = {
  m : Mutex.t;
  tbl : (string, 'v entry) Hashtbl.t;
  cap : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~cap =
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 16;
    cap = max cap 1;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ e ->
      match !victim with
      | None -> victim := Some e
      | Some v -> if e.last_used < v.last_used then victim := Some e)
    t.tbl;
  match !victim with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.tbl e.key;
    t.evictions <- t.evictions + 1

let find_or_add t key =
  Mutex.lock t.m;
  t.tick <- t.tick + 1;
  let tick = t.tick in
  let hit, entry =
    match Hashtbl.find_opt t.tbl key with
    | Some e ->
      e.last_used <- tick;
      t.hits <- t.hits + 1;
      (true, e)
    | None ->
      if Hashtbl.length t.tbl >= t.cap then evict_lru t;
      let e =
        { key; lock = Mutex.create (); value = None; last_used = tick }
      in
      Hashtbl.replace t.tbl key e;
      t.misses <- t.misses + 1;
      (false, e)
  in
  Mutex.unlock t.m;
  (hit, entry)

let use t key ~build f =
  let hit, entry = find_or_add t key in
  Mutex.lock entry.lock;
  match
    let v =
      match entry.value with
      | Some v -> v
      | None ->
        let v = build () in
        entry.value <- Some v;
        v
    in
    f v
  with
  | result ->
    Mutex.unlock entry.lock;
    (result, hit)
  | exception e ->
    Mutex.unlock entry.lock;
    raise e

type stats = { entries : int; hits : int; misses : int; evictions : int }

let stats t =
  Mutex.lock t.m;
  let s =
    {
      entries = Hashtbl.length t.tbl;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
    }
  in
  Mutex.unlock t.m;
  s
