(* Minimal synchronous client for cc_serve: one request, one reply. *)

(* cc_lint: allow L9 *)

module Json = Metrics.Json
module Link = Wire.Link

type t = { link : Link.t }

let unix_prefix = "unix:"

let connect addr =
  let fd =
    if
      String.length addr >= String.length unix_prefix
      && String.sub addr 0 (String.length unix_prefix) = unix_prefix
    then
      Link.connect_unix
        (String.sub addr (String.length unix_prefix)
           (String.length addr - String.length unix_prefix))
    else Link.connect addr
  in
  { link = Link.of_fd ~peer:("cc-serve@" ^ addr) fd }

let close t = Link.close t.link

let request ?deadline t body =
  let id =
    match Json.member "id" body with
    | Some v -> ( match Json.to_int_opt v with Some i -> i | None -> 0)
    | None -> 0
  in
  Link.send ?deadline t.link (Job.frame ~kind:Job.frame_job ~id body);
  let reply = Link.recv ?deadline t.link in
  match Json.of_string (Bytes.to_string reply.Wire.Frame.payload) with
  | Ok j -> j
  | Error e -> failwith ("cc-serve reply is not JSON: " ^ e)

let request_string ?deadline t s =
  match Json.of_string s with
  | Ok j -> request ?deadline t j
  | Error e -> failwith ("request is not JSON: " ^ e)

let ok j = match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false

let error_message j =
  match Json.member "error" j with
  | Some (Json.String s) -> Some s
  | _ -> None
