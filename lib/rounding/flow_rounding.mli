(** Deterministic flow rounding — Cohen's algorithm (Theorem 4.1) driven by
    the congested-clique Eulerian orientation, i.e. Lemma 4.2:
    [O(log n · log* n · log(1/Δ))] rounds.

    Given a flow whose arc values are integer multiples of [Δ] (with [1/Δ] a
    power of two) and which conserves exactly in the [Δ]-grid, each level
    [Δ, 2Δ, 4Δ, …, 1/2] collects the arcs whose value is an odd multiple of
    the current grain; by conservation those arcs form an Eulerian multigraph,
    which is decomposed and oriented by {!Euler.Orientation}; arcs aligned
    with their cycle's traversal gain a grain, the others lose one. Cycle
    directions are chosen so that the total value never decreases (the
    virtual (t,s) arc is forced forward) and, when costs are present, so
    that the total cost never increases. *)

type result = {
  f : float array;  (** rounded flow, same arc indexing as the input *)
  rounds : int;  (** congested-clique rounds (orientations at every level) *)
  levels : int;  (** [log₂(1/Δ)] *)
  phase_rounds : (string * int) list;
      (** ledger breakdown; all orientation rounds land under ["orient"]
          (empty when no level had odd arcs) *)
}

val round :
  ?cost:(int -> float) ->
  Digraph.t ->
  s:int ->
  t:int ->
  delta:float ->
  float array ->
  result
(** [round g ~s ~t ~delta f] rounds every arc value to an adjacent integer.
    Requirements (checked): [1/delta] is a power of two; every [f.(e)] is a
    multiple of [delta] (within 1e-6·delta); [0 ≤ f ≤ cap]; conservation
    holds in grid units at every vertex except [s] and [t].

    Guarantees (the Theorem 4.1 contract, asserted in tests): the result is
    integral, feasible, conserving, with value ≥ the input value; when
    [cost] is given, total cost ≤ the input cost. *)

val snap_to_grid : delta:float -> float array -> float array option
(** Nearest grid multiple of every entry; [None] if some entry moves by more
    than [delta/4] (the caller's flow was not grid-aligned to begin with). *)
