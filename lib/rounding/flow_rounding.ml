type result = {
  f : float array;
  rounds : int;
  levels : int;
  phase_rounds : (string * int) list;
}

let is_power_of_two k = k > 0 && k land (k - 1) = 0

let snap_to_grid ~delta f =
  let ok = ref true in
  let snapped =
    Array.map
      (fun x ->
        let k = Float.round (x /. delta) in
        if Float.abs (x -. (k *. delta)) > delta /. 4. then ok := false;
        k *. delta)
      f
  in
  if !ok then Some snapped else None

(* Work in exact integer grid units; level ℓ adjusts by 2^ℓ units. *)
let round ?cost g ~s ~t ~delta f =
  let m = Digraph.m g in
  if Array.length f <> m then
    invalid_arg "Flow_rounding.round: flow length mismatch";
  let inv = Float.round (1. /. delta) in
  let grain = int_of_float inv in
  if Float.abs ((1. /. delta) -. inv) > 1e-9 || not (is_power_of_two grain)
  then invalid_arg "Flow_rounding.round: 1/delta must be a power of two";
  let units = Array.make (m + 1) 0 in
  Array.iteri
    (fun e x ->
      let k = Float.round (x /. delta) in
      if Float.abs (x -. (k *. delta)) > 1e-6 *. delta then
        invalid_arg "Flow_rounding.round: flow not on the delta grid";
      if k < -0.5 then invalid_arg "Flow_rounding.round: negative flow";
      units.(e) <- int_of_float k)
    f;
  (* Virtual (t,s) arc closing the circulation (Algorithm 1, lines 1–2). *)
  let total_units =
    let acc = ref 0 in
    Array.iteri
      (fun e a ->
        if a.Digraph.src = s then acc := !acc + units.(e);
        if a.Digraph.dst = s then acc := !acc - units.(e))
      (Digraph.arcs g);
    !acc
  in
  if total_units < 0 then
    invalid_arg "Flow_rounding.round: net flow runs t -> s";
  units.(m) <- total_units;
  let aux = m in
  let src_of e = if e = aux then t else (Digraph.arc g e).Digraph.src in
  let dst_of e = if e = aux then s else (Digraph.arc g e).Digraph.dst in
  (* Check grid conservation away from the (now virtual-closed) terminals. *)
  let balance = Array.make (Digraph.n g) 0 in
  for e = 0 to m do
    balance.(src_of e) <- balance.(src_of e) - units.(e);
    balance.(dst_of e) <- balance.(dst_of e) + units.(e)
  done;
  Array.iteri
    (fun v b ->
      if b <> 0 then
        invalid_arg
          (Printf.sprintf
             "Flow_rounding.round: grid conservation violated at %d (%d)" v b))
    balance;
  let rt = Clique.Kernel.clique (max 1 (Digraph.n g)) in
  let levels = Runtime.Cost.log2_ceil grain in
  for level = 0 to levels - 1 do
    let step = 1 lsl level in
    let odd = ref [] in
    for e = m downto 0 do
      if (units.(e) lsr level) land 1 = 1 then odd := e :: !odd
    done;
    if !odd <> [] then begin
      (* Build the Eulerian multigraph of odd arcs, remembering for every
         undirected edge which arc it came from. *)
      let odd_arr = Array.of_list !odd in
      let edges =
        Array.to_list
          (Array.map
             (fun e -> { Graph.u = src_of e; v = dst_of e; w = 1. })
             odd_arr)
      in
      let h = Graph.create (Digraph.n g) edges in
      let choose ring =
        (* ring positions map 1:1 to odd_arr indices via Orientation's
           ring_edge.edge field (edge ids of h = indices into odd_arr).
           along = trail traverses the arc in its own direction. *)
        let has_aux =
          List.find_opt
            (fun re -> odd_arr.(re.Euler.Orientation.edge) = aux)
            ring
        in
        match has_aux with
        | Some re -> re.Euler.Orientation.along
        | None -> begin
          match cost with
          | None -> true
          | Some c ->
            let fwd_keep = ref 0. and bwd_keep = ref 0. in
            List.iter
              (fun re ->
                let arc = odd_arr.(re.Euler.Orientation.edge) in
                let ce = if arc = aux then 0. else c arc in
                if re.Euler.Orientation.along then fwd_keep := !fwd_keep +. ce
                else bwd_keep := !bwd_keep +. ce)
              ring;
            !fwd_keep <= !bwd_keep
        end
      in
      let r = Euler.Orientation.orient ~choose h in
      Clique.Kernel.charge rt ~phase:"orient" r.Euler.Orientation.rounds;
      Array.iteri
        (fun hid arc ->
          if r.Euler.Orientation.orientation.(hid) then
            units.(arc) <- units.(arc) + step
          else units.(arc) <- units.(arc) - step)
        odd_arr
    end
  done;
  (* After [levels] doublings every unit count is a multiple of 1/delta,
     so the result is exactly integral. *)
  let f' =
    Array.init m (fun e -> Float.round (float_of_int units.(e) *. delta))
  in
  {
    f = f';
    rounds = Clique.Kernel.rounds rt;
    levels;
    phase_rounds = Clique.Kernel.phases rt;
  }
