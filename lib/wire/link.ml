(* A connected file descriptor carrying {!Frame}s, with byte/frame
   counters. Both endpoint flavors the shard runtime uses are built here:
   Unix-domain sockets (the default rendezvous between the coordinator and
   its spawned workers) and TCP ([CC_SHARD_ADDR]). *)

exception Closed of { peer : string; during : string }

exception Timeout of { peer : string; after : float }

let () =
  Printexc.register_printer (function
    | Closed { peer; during } ->
      Some (Printf.sprintf "Wire.Link.Closed(peer=%s, during=%s)" peer during)
    | Timeout { peer; after } ->
      Some (Printf.sprintf "Wire.Link.Timeout(peer=%s, after=%.3fs)" peer after)
    | _ -> None)

type t = {
  fd : Unix.file_descr;
  peer : string;
  mutable bytes_sent : int;
  mutable bytes_recv : int;
  mutable frames_sent : int;
  mutable frames_recv : int;
  mutable closed : bool;
}

let of_fd ?(peer = "?") fd =
  { fd; peer; bytes_sent = 0; bytes_recv = 0; frames_sent = 0; frames_recv = 0;
    closed = false }

let fd t = t.fd

let peer t = t.peer

let bytes_sent t = t.bytes_sent

let bytes_recv t = t.bytes_recv

let frames_sent t = t.frames_sent

let frames_recv t = t.frames_recv

(* The select loop of the shard mesh does its own raw I/O on [fd]; it
   reports the traffic back through these so the counters stay whole. *)
let note_sent t ~bytes ~frames =
  t.bytes_sent <- t.bytes_sent + bytes;
  t.frames_sent <- t.frames_sent + frames

let note_recv t ~bytes ~frames =
  t.bytes_recv <- t.bytes_recv + bytes;
  t.frames_recv <- t.frames_recv + frames

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Wait until [t.fd] is ready in the requested direction or [deadline]
   (absolute [Unix.gettimeofday] time) passes — the bounded-wait primitive
   behind both directions of a supervised link. [None] blocks. *)
let await_ready ?deadline t ~read =
  match deadline with
  | None -> ()
  | Some d ->
    let rec wait () =
      let remaining = d -. Unix.gettimeofday () in
      if remaining <= 0.0 then raise (Timeout { peer = t.peer; after = remaining })
      else
        let rfds = if read then [ t.fd ] else []
        and wfds = if read then [] else [ t.fd ] in
        match Unix.select rfds wfds [] remaining with
        | [], [], _ -> raise (Timeout { peer = t.peer; after = remaining })
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    wait ()

let rec write_all ?deadline t b off len =
  if len > 0 then begin
    await_ready ?deadline t ~read:false;
    match Unix.write t.fd b off len with
    | k ->
      t.bytes_sent <- t.bytes_sent + k;
      write_all ?deadline t b (off + k) (len - k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      write_all ?deadline t b off len
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      raise (Closed { peer = t.peer; during = "write" })
  end

(* Bounded read: before each [Unix.read], wait for readability until
   [deadline] (absolute [Unix.gettimeofday] time). The shard supervisor
   turns a Timeout into worker-death handling — no blocking wait in the
   coordinator is unbounded. [deadline = None] blocks indefinitely. *)
let rec read_exact ?deadline t b off len =
  if len > 0 then begin
    await_ready ?deadline t ~read:true;
    match Unix.read t.fd b off len with
    | 0 -> raise (Closed { peer = t.peer; during = "read" })
    | k ->
      t.bytes_recv <- t.bytes_recv + k;
      read_exact ?deadline t b (off + k) (len - k)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      read_exact ?deadline t b off len
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      raise (Closed { peer = t.peer; during = "read" })
  end

let send ?deadline t frame =
  let b = Frame.encode frame in
  write_all ?deadline t b 0 (Bytes.length b);
  t.frames_sent <- t.frames_sent + 1

let recv ?deadline t =
  let hdr_buf = Bytes.create Frame.header_bytes in
  read_exact ?deadline t hdr_buf 0 Frame.header_bytes;
  let hdr = Frame.decode_header hdr_buf in
  let payload = Bytes.create hdr.Frame.len in
  read_exact ?deadline t payload 0 hdr.Frame.len;
  t.frames_recv <- t.frames_recv + 1;
  Frame.verify hdr payload

(* ------------------------------------------------------------ endpoints *)

let pair ?(peer = "pair") () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (of_fd ~peer a, of_fd ~peer b)

let parse_addr s =
  match String.rindex_opt s ':' with
  | None -> invalid_arg (Printf.sprintf "Wire.Link.parse_addr: %S is not host:port" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 -> (host, p)
    | _ ->
      invalid_arg
        (Printf.sprintf "Wire.Link.parse_addr: bad port in %S" s))

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
    | _ ->
      invalid_arg (Printf.sprintf "Wire.Link.resolve: unknown host %S" host))

let listen addr =
  let host, port = parse_addr addr in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (resolve host, port));
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect addr =
  let host, port = parse_addr addr in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (resolve host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let accept ?(tcp_nodelay = false) lsock =
  let fd, _ = Unix.accept lsock in
  if tcp_nodelay then Unix.setsockopt fd Unix.TCP_NODELAY true;
  fd

(* A connected TCP pair through [lsock], made entirely inside one process —
   the accepted end pairs with the connect issued just before it (loopback
   accepts are FIFO). Used by the wire tests. *)
let tcp_pair ?(peer = "tcp") lsock =
  let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect c (Unix.getsockname lsock)
   with e ->
     (try Unix.close c with Unix.Unix_error _ -> ());
     raise e);
  let a, _ = Unix.accept lsock in
  Unix.setsockopt c Unix.TCP_NODELAY true;
  Unix.setsockopt a Unix.TCP_NODELAY true;
  (of_fd ~peer c, of_fd ~peer a)
