(* FNV-1a 64. One definition of the fold for the whole tree: the
   sanitizer's shape/content transcripts (DESIGN.md §6) and the frame
   checksums of [Wire.Frame] must agree byte for byte, or the cross-process
   transcript comparison of the differential suite would be vacuous. *)

let offset = 0xcbf29ce484222325L

let prime = 0x100000001b3L

let add_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

(* Machine ints folded as 8 little-endian bytes (sign-extended), so a
   transcript is identical across word sizes that fit the payload range. *)
let add_int h v =
  let h = ref h and v = ref v in
  for _ = 1 to 8 do
    h := add_byte !h (!v land 0xff);
    v := !v asr 8
  done;
  !h

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  (* Terminator byte: "ab" + "c" must not collide with "a" + "bc". *)
  add_byte !h 0xff

let add_ints h l = List.fold_left add_int h l

(* Raw byte range, no terminator: the frame checksum covers exactly the
   payload region, nothing else. *)
let add_bytes h buf ~pos ~len =
  let h = ref h in
  for i = pos to pos + len - 1 do
    h := add_byte !h (Char.code (Bytes.get buf i))
  done;
  !h

let hash_bytes buf ~pos ~len = add_bytes offset buf ~pos ~len
