(** A connected file descriptor carrying {!Frame}s.

    All reads and writes loop over partial transfers and retry [EINTR]; a
    peer that went away ([EOF], [EPIPE], [ECONNRESET]) raises {!Closed}
    with the link's peer label — the shard coordinator turns that into a
    structured [Runtime.Shard.Shard_down], never a hang. Every link keeps
    byte and frame counters feeding the [wire.*] metrics. *)

exception Closed of { peer : string; during : string }

exception Timeout of { peer : string; after : float }
(** A bounded {!recv} found no bytes before its deadline. The shard
    supervisor treats this exactly like a dead peer: the link's owner is
    presumed gone and recovery policy applies. *)

type t

val of_fd : ?peer:string -> Unix.file_descr -> t
(** Wrap an already-connected descriptor; [peer] labels error messages. *)

val fd : t -> Unix.file_descr

val peer : t -> string

val send : ?deadline:float -> t -> Frame.t -> unit
(** Encode and write the whole frame. With [deadline] (absolute
    [Unix.gettimeofday] instant) every wait for writability is bounded
    and expiry raises {!Timeout} — note a mid-frame timeout leaves the
    stream desynchronized, so a supervised sender must treat the link as
    dead afterwards. Without it the write blocks. *)

val recv : ?deadline:float -> t -> Frame.t
(** Read exactly one frame; verifies version and checksum, raising
    [Frame.Malformed] on a corrupt stream and {!Closed} on EOF. With
    [deadline] (an absolute [Unix.gettimeofday] instant) every byte wait
    is bounded and expiry raises {!Timeout}; without it the read blocks
    indefinitely. *)

val close : t -> unit
(** Idempotent. *)

val bytes_sent : t -> int

val bytes_recv : t -> int

val frames_sent : t -> int

val frames_recv : t -> int

val note_sent : t -> bytes:int -> frames:int -> unit
(** Fold externally-performed raw writes on {!fd} into the counters (the
    shard mesh's select loop does its own I/O). *)

val note_recv : t -> bytes:int -> frames:int -> unit

val pair : ?peer:string -> unit -> t * t
(** A connected Unix-domain socket pair — the default shard transport. *)

val parse_addr : string -> string * int
(** Split ["host:port"]; raises [Invalid_argument] otherwise. *)

val listen : string -> Unix.file_descr
(** Bind and listen on ["host:port"] (port 0 picks an ephemeral port). *)

val connect : string -> Unix.file_descr
(** Connect to ["host:port"]; sets [TCP_NODELAY]. *)

val listen_unix : string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket [path], unlinking any stale
    socket file first. *)

val connect_unix : string -> Unix.file_descr
(** Connect to a Unix-domain socket [path]. *)

val accept : ?tcp_nodelay:bool -> Unix.file_descr -> Unix.file_descr
(** Accept one connection on a listening descriptor. *)

val tcp_pair : ?peer:string -> Unix.file_descr -> t * t
(** A connected TCP pair through a {!listen} socket, both ends created in
    the calling process (connect-then-accept; loopback accepts are FIFO,
    so the ends match). *)
