(** FNV-1a 64-bit folding, shared by the sanitizer transcripts
    ([Runtime.Sanitize]) and the frame checksums ({!Frame}).

    All folds are incremental: start from {!offset}, feed data, compare the
    resulting [int64]. The integer and string folds are the historical
    transcript encodings — changing them silently would invalidate every
    recorded transcript hash, so they live here, once. *)

val offset : int64
(** The FNV-1a 64 offset basis, [0xcbf29ce484222325]. *)

val prime : int64
(** The FNV-1a 64 prime, [0x100000001b3]. *)

val add_byte : int64 -> int -> int64
(** Fold one byte (low 8 bits of the argument). *)

val add_int : int64 -> int -> int64
(** Fold a machine int as 8 little-endian bytes, sign-extended. *)

val add_string : int64 -> string -> int64
(** Fold every byte of the string, then a [0xff] terminator (so adjacent
    strings cannot collide by re-splitting). *)

val add_ints : int64 -> int list -> int64
(** [List.fold_left add_int]. *)

val add_bytes : int64 -> Bytes.t -> pos:int -> len:int -> int64
(** Fold a raw byte range — no terminator; used for frame checksums. *)

val hash_bytes : Bytes.t -> pos:int -> len:int -> int64
(** [add_bytes offset]. *)
