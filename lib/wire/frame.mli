(** Length-prefixed binary framing (DESIGN.md §11, §14).

    A frame is a 36-byte versioned header plus an opaque payload:

    {v
    offset  size  field
    0       2     magic "CW"
    2       1     format version (currently 2)
    3       1     frame kind (protocol-defined)
    4       4     source shard id, int32 LE (-1 = coordinator)
    8       4     destination shard id, int32 LE
    12      8     sequence number, int64 LE
    20      4     session epoch, int32 LE
    24      4     payload length in bytes, int32 LE
    28      8     FNV-1a 64 checksum of the payload
    v}

    Any header or checksum inconsistency raises {!Malformed} — a corrupt
    or desynchronized stream never delivers silently-wrong bytes. The
    epoch field identifies the worker incarnation a frame belongs to: the
    shard supervisor bumps it on every recovery event, and receivers
    reject frames whose epoch does not match their current one, so a late
    frame from a dead incarnation can never be mistaken for current-round
    traffic. *)

exception Malformed of { what : string }

val version : int
(** Current wire-format version, stamped into and checked on every header. *)

val header_bytes : int
(** 36. *)

val max_payload : int
(** Upper bound on payload length (1 GiB); both encode and decode
    enforce it, so a corrupt length field cannot trigger a giant
    allocation. *)

type header = {
  kind : int;
  src : int;
  dst : int;
  seq : int;
  epoch : int;
  len : int;
  sum : int64;
}

type t = {
  kind : int;
  src : int;
  dst : int;
  seq : int;
  epoch : int;
  payload : Bytes.t;
}

val encode : t -> Bytes.t
(** Header + payload as one byte string, checksum computed here. *)

val decode_header : Bytes.t -> header
(** Parse and validate exactly {!header_bytes} bytes of header. *)

val verify : header -> Bytes.t -> t
(** Check the payload against the header's length/checksum and assemble
    the frame. *)

val decode : Bytes.t -> t
(** [verify] over a contiguous [encode] result — the round-trip inverse. *)

(** Payload serialization: ints as 8 little-endian bytes, strings
    length-prefixed. The reader bounds-checks every access and raises
    {!Malformed} on truncation. *)
module Writer : sig
  type t

  val create : ?hint:int -> unit -> t

  val int : t -> int -> unit

  val string : t -> string -> unit

  val contents : t -> Bytes.t
end

module Reader : sig
  type t

  val of_bytes : Bytes.t -> t

  val int : t -> int

  val string : t -> string

  val at_end : t -> bool
end
