(* Length-prefixed binary framing for per-round message batches
   (DESIGN.md §11, §14). One frame = a 36-byte versioned header plus an
   opaque payload; the header carries an FNV-1a checksum of the payload so
   a corrupt or resynchronized stream fails loudly instead of delivering
   garbage to a deterministic algorithm, and an epoch counter so a late
   frame from a dead incarnation of a worker is rejected instead of being
   mistaken for current-round traffic. *)

exception Malformed of { what : string }

let () =
  Printexc.register_printer (function
    | Malformed { what } -> Some (Printf.sprintf "Wire.Frame.Malformed(%s)" what)
    | _ -> None)

let malformed fmt =
  Printf.ksprintf (fun what -> raise (Malformed { what })) fmt

let version = 2

let header_bytes = 36

(* A frame payload is at most 1 GiB: large enough for any round of the
   reproduction, small enough that a corrupt length field cannot make the
   receiver allocate the address space. *)
let max_payload = 1 lsl 30

type header = {
  kind : int;
  src : int;
  dst : int;
  seq : int;
  epoch : int;
  len : int;
  sum : int64;
}

type t = {
  kind : int;
  src : int;
  dst : int;
  seq : int;
  epoch : int;
  payload : Bytes.t;
}

(* Header layout (all little-endian):
     0..1   magic "CW"
     2      format version (2)
     3      frame kind (protocol-defined, opaque here)
     4..7   source shard id   (int32; -1 = coordinator)
     8..11  destination shard id
     12..19 sequence number (the coordinator's per-session op counter)
     20..23 session epoch (bumped by every supervision event)
     24..27 payload length in bytes
     28..35 FNV-1a 64 checksum of the payload *)

let put32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get32 b off = Int32.to_int (Bytes.get_int32_le b off)

let encode { kind; src; dst; seq; epoch; payload } =
  let len = Bytes.length payload in
  if len > max_payload then invalid_arg "Wire.Frame.encode: payload too large";
  if kind < 0 || kind > 0xff then invalid_arg "Wire.Frame.encode: kind out of range";
  let b = Bytes.create (header_bytes + len) in
  Bytes.set b 0 'C';
  Bytes.set b 1 'W';
  Bytes.set b 2 (Char.chr version);
  Bytes.set b 3 (Char.chr kind);
  put32 b 4 src;
  put32 b 8 dst;
  Bytes.set_int64_le b 12 (Int64.of_int seq);
  put32 b 20 epoch;
  put32 b 24 len;
  Bytes.set_int64_le b 28 (Fnv.hash_bytes payload ~pos:0 ~len);
  Bytes.blit payload 0 b header_bytes len;
  b

let decode_header b =
  if Bytes.length b <> header_bytes then
    malformed "header is %d bytes, want %d" (Bytes.length b) header_bytes;
  if Bytes.get b 0 <> 'C' || Bytes.get b 1 <> 'W' then
    malformed "bad magic %C%C" (Bytes.get b 0) (Bytes.get b 1);
  let v = Char.code (Bytes.get b 2) in
  if v <> version then malformed "unsupported format version %d (want %d)" v version;
  let len = get32 b 24 in
  if len < 0 || len > max_payload then malformed "payload length %d out of range" len;
  {
    kind = Char.code (Bytes.get b 3);
    src = get32 b 4;
    dst = get32 b 8;
    seq = Int64.to_int (Bytes.get_int64_le b 12);
    epoch = get32 b 20;
    len;
    sum = Bytes.get_int64_le b 28;
  }

let verify hdr payload =
  let sum = Fnv.hash_bytes payload ~pos:0 ~len:(Bytes.length payload) in
  if sum <> hdr.sum then
    malformed "checksum mismatch on kind=%d frame (src=%d, dst=%d, seq=%d)"
      hdr.kind hdr.src hdr.dst hdr.seq;
  { kind = hdr.kind; src = hdr.src; dst = hdr.dst; seq = hdr.seq;
    epoch = hdr.epoch; payload }

let decode b =
  if Bytes.length b < header_bytes then
    malformed "frame is %d bytes, shorter than the header" (Bytes.length b);
  let hdr = decode_header (Bytes.sub b 0 header_bytes) in
  if Bytes.length b <> header_bytes + hdr.len then
    malformed "frame is %d bytes, header announces %d of payload"
      (Bytes.length b) hdr.len;
  verify hdr (Bytes.sub b header_bytes hdr.len)

(* ------------------------------------------ payload writer and reader *)

module Writer = struct
  type t = Buffer.t

  let create ?(hint = 256) () = Buffer.create hint

  let int w v = Buffer.add_int64_le w (Int64.of_int v)

  let string w s =
    int w (String.length s);
    Buffer.add_string w s

  let contents = Buffer.to_bytes
end

module Reader = struct
  type t = { buf : Bytes.t; mutable pos : int }

  let of_bytes buf = { buf; pos = 0 }

  let int r =
    if r.pos + 8 > Bytes.length r.buf then
      malformed "payload truncated at byte %d reading an int" r.pos;
    let v = Int64.to_int (Bytes.get_int64_le r.buf r.pos) in
    r.pos <- r.pos + 8;
    v

  let string r =
    let len = int r in
    if len < 0 || r.pos + len > Bytes.length r.buf then
      malformed "payload truncated at byte %d reading a %d-byte string" r.pos len;
    let s = Bytes.sub_string r.buf r.pos len in
    r.pos <- r.pos + len;
    s

  let at_end r = r.pos = Bytes.length r.buf
end
