let log_src = Logs.Src.create "repro.solver" ~doc:"Theorem 1.1 Laplacian solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type inner_solver = Direct | Iterative

type report = {
  x : Linalg.Vec.t;
  iterations : int;
  kappa : float;
  sparsifier_edges : int;
  rounds : int;
  phase_rounds : (string * int) list;
  residual : float;
}

let default_inner n = if n <= 400 then Direct else Iterative

(* Node-internal solver for the sparsifier Laplacian: every node knows H, so
   this costs zero rounds (Theorem 1.1's proof). *)
let inner_solve inner h =
  match inner with
  | Direct ->
    let n = Graph.n h in
    let l = Graph.laplacian_dense h in
    let reduced = Linalg.Dense.init (n - 1) (fun i j -> l.(i + 1).(j + 1)) in
    let chol = Linalg.Dense.cholesky ~shift:1e-12 reduced in
    fun b ->
      let b = Linalg.Vec.center b in
      let b' = Array.sub b 1 (n - 1) in
      let x' = Linalg.Dense.cholesky_solve chol b' in
      let x = Linalg.Vec.create n in
      Array.blit x' 0 x 1 (n - 1);
      Linalg.Vec.center x
  | Iterative ->
    fun b ->
      let x, _ =
        Linalg.Cg.solve_grounded ~tol:1e-13 (Graph.apply_laplacian h) b
      in
      x

let kappa_power_iters = 40

(* Distributed estimation of the pencil extremes of (L_G, L_H): power
   iteration on B†A (one matvec round per application, B†-solves internal),
   then on its reflection to reach the bottom of the spectrum. *)
let estimate_kappa rt g solve_h =
  let n = Graph.n g in
  let apply m v = m (Linalg.Vec.center v) in
  let bta v = solve_h (Graph.apply_laplacian g v) in
  let start =
    Linalg.Vec.normalize
      (Linalg.Vec.center
         (Linalg.Vec.init n (fun i ->
              let s = if i land 1 = 0 then 1. else -1. in
              s *. (1. +. (float_of_int ((i * 48271) land 0x3fff) /. 16384.)))))
  in
  let v = ref start in
  let mu_max = ref 1. in
  for _ = 1 to kappa_power_iters do
    let w = apply bta !v in
    let nw = Linalg.Vec.norm2 w in
    if nw > 0. then begin
      let w = Linalg.Vec.scale (1. /. nw) w in
      (* generalized Rayleigh: (v'Av)/(v'Bv); since w has unit 2-norm use
         the B†A operator's ordinary Rayleigh quotient, valid because B†A is
         self-adjoint in the B-inner product and we only need the extreme. *)
      mu_max := Linalg.Vec.dot w (apply bta w);
      v := w
    end
  done;
  let c = !mu_max *. 1.05 in
  let v = ref start in
  let mu_reflected = ref 0. in
  for _ = 1 to kappa_power_iters do
    let w =
      Linalg.Vec.center
        (Linalg.Vec.sub (Linalg.Vec.scale c !v) (apply bta !v))
    in
    let nw = Linalg.Vec.norm2 w in
    if nw > 0. then begin
      let w = Linalg.Vec.scale (1. /. nw) w in
      mu_reflected :=
        Linalg.Vec.dot w
          (Linalg.Vec.sub (Linalg.Vec.scale c w) (apply bta w));
      v := w
    end
  done;
  let mu_min = Float.max (c -. !mu_reflected) (!mu_max *. 1e-8) in
  Clique.Kernel.charge rt ~phase:"kappa-estimate"
    (2 * kappa_power_iters * Runtime.Cost.matvec_rounds);
  (!mu_max, mu_min)

let preprocess_weights eps g =
  (* Theorem 3.3 takes integer weights; round to multiples of ε as the
     Theorem 1.1 proof prescribes. *)
  Graph.map_weights
    (fun e -> eps *. Float.max 1. (Float.round (e.Graph.w /. eps)))
    g

let solve_with_sparsifier ?(eps = 1e-6) ?inner ?rt g sp b =
  let n = Graph.n g in
  let inner = match inner with Some i -> i | None -> default_inner n in
  let rt = match rt with Some rt -> rt | None -> Clique.Kernel.clique n in
  let h = sp.Sparsify.Spectral.sparsifier in
  let solve_h = inner_solve inner h in
  let lmax, lmin = estimate_kappa rt g solve_h in
  let kappa = 1.2 *. lmax /. lmin in
  let b = Linalg.Vec.center b in
  let max_iters =
    Linalg.Chebyshev.iteration_bound ~kappa ~eps:(eps /. 10.)
  in
  let x, st =
    Linalg.Chebyshev.solve_grounded
      ~apply_a:(Graph.apply_laplacian g)
      ~solve_b:(fun v -> Linalg.Vec.scale (1. /. lmax) (solve_h v))
      ~kappa ~tol:(eps /. 100.) ~max_iters b
  in
  Clique.Kernel.charge rt ~phase:"chebyshev"
    (st.Linalg.Chebyshev.iterations * Runtime.Cost.matvec_rounds);
  Log.debug (fun k ->
      k "solve: n=%d kappa=%.3f iterations=%d residual=%.2e" n kappa
        st.Linalg.Chebyshev.iterations st.Linalg.Chebyshev.residual);
  {
    x;
    iterations = st.Linalg.Chebyshev.iterations;
    kappa;
    sparsifier_edges = Graph.m h;
    rounds = Clique.Kernel.rounds rt;
    phase_rounds = Clique.Kernel.phases rt;
    residual = st.Linalg.Chebyshev.residual;
  }

(* Node-internal sparsifier solve in operator-into form: same arithmetic as
   [inner_solve] (bit-identical outputs), but every buffer is preallocated at
   closure-build time so steady-state applications allocate nothing. *)
let inner_solve_into inner h =
  match inner with
  | Direct ->
    let n = Graph.n h in
    let l = Graph.laplacian_dense h in
    let reduced = Linalg.Dense.init (n - 1) (fun i j -> l.(i + 1).(j + 1)) in
    let chol = Linalg.Dense.cholesky ~shift:1e-12 reduced in
    let c = Linalg.Vec.create n in
    let bsub = Linalg.Vec.create (n - 1) in
    let ysub = Linalg.Vec.create (n - 1) in
    let xsub = Linalg.Vec.create (n - 1) in
    fun src dst ->
      Linalg.Vec.center_into src c;
      Array.blit c 1 bsub 0 (n - 1);
      Linalg.Dense.cholesky_solve_into chol bsub ysub xsub;
      Linalg.Vec.fill dst 0.;
      Array.blit xsub 0 dst 1 (n - 1);
      Linalg.Vec.center_into dst dst
  | Iterative ->
    let n = Graph.n h in
    let cgws = Linalg.Cg.Workspace.create n in
    let cb = Linalg.Vec.create n in
    let apply_h src dst = Graph.apply_laplacian_into h src dst in
    fun src dst ->
      Linalg.Vec.center_into src cb;
      let (_ : Linalg.Cg.stats) =
        Linalg.Cg.solve_into ~tol:1e-13 cgws apply_h cb
      in
      Linalg.Vec.center_into cgws.Linalg.Cg.Workspace.x dst

type prepared = {
  p_graph : Graph.t;
  p_eps : float;
  p_sparsifier : Sparsify.Spectral.result;
  p_sparsify_rounds : int;
  p_kappa : float;
  p_solve_b_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
  p_apply_a_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
  p_ws : Linalg.Chebyshev.Workspace.t;
}

let prepare ?(eps = 1e-6) ?(phi = 0.05) ?inner ?backend ?model g =
  if not (Graph.is_connected g) then
    invalid_arg
      "Solver.prepare: graph must be connected (L† needs one component)";
  let n = Graph.n g in
  let inner = match inner with Some i -> i | None -> default_inner n in
  let g' = preprocess_weights eps g in
  let sp = Sparsify.Spectral.sparsify ~phi ?backend ?model g' in
  let h = sp.Sparsify.Spectral.sparsifier in
  let solve_h_into = inner_solve_into inner h in
  (* κ-estimation needs the allocating operator shape; wrap the into-kernel
     so the estimate is computed against bit-identical B†-applications. *)
  let scratch = Linalg.Vec.create n in
  let solve_h v =
    solve_h_into v scratch;
    Linalg.Vec.copy scratch
  in
  let rt = Clique.Kernel.clique n in
  let lmax, lmin = estimate_kappa rt g solve_h in
  let kappa = 1.2 *. lmax /. lmin in
  let inv_lmax = 1. /. lmax in
  let solve_b_into src dst =
    solve_h_into src dst;
    Linalg.Vec.scale_into inv_lmax dst dst
  in
  let apply_a_into src dst = Graph.apply_laplacian_into g src dst in
  {
    p_graph = g;
    p_eps = eps;
    p_sparsifier = sp;
    p_sparsify_rounds = sp.Sparsify.Spectral.rounds;
    p_kappa = kappa;
    p_solve_b_into = solve_b_into;
    p_apply_a_into = apply_a_into;
    p_ws = Linalg.Chebyshev.Workspace.create n;
  }

let prepared_dim p = Graph.n p.p_graph

let prepared_kappa p = p.p_kappa

let prepared_sparsifier_edges p =
  Graph.m p.p_sparsifier.Sparsify.Spectral.sparsifier

let solve_prepared p b =
  let n = Graph.n p.p_graph in
  let eps = p.p_eps in
  let rt = Clique.Kernel.clique n in
  Clique.Kernel.charge rt ~phase:"sparsify" p.p_sparsify_rounds;
  Clique.Kernel.charge rt ~phase:"kappa-estimate"
    (2 * kappa_power_iters * Runtime.Cost.matvec_rounds);
  let kappa = p.p_kappa in
  (* Two successive centerings, exactly as the one-shot path performs them
     ([solve_with_sparsifier] centers, then [Chebyshev.solve_grounded]
     centers again): centering is not an exact FP projection, so skipping
     the second pass would change bits. *)
  let b1 = Linalg.Vec.center b in
  let b2 = Linalg.Vec.center b1 in
  let max_iters = Linalg.Chebyshev.iteration_bound ~kappa ~eps:(eps /. 10.) in
  let st =
    Linalg.Chebyshev.solve_into ~max_iters ~tol:(eps /. 100.)
      ~apply_a_into:p.p_apply_a_into ~solve_b_into:p.p_solve_b_into ~kappa
      p.p_ws b2
  in
  let x = Linalg.Vec.center p.p_ws.Linalg.Chebyshev.Workspace.x in
  Clique.Kernel.charge rt ~phase:"chebyshev"
    (st.Linalg.Chebyshev.iterations * Runtime.Cost.matvec_rounds);
  Log.debug (fun k ->
      k "solve_prepared: n=%d kappa=%.3f iterations=%d residual=%.2e" n kappa
        st.Linalg.Chebyshev.iterations st.Linalg.Chebyshev.residual);
  {
    x;
    iterations = st.Linalg.Chebyshev.iterations;
    kappa;
    sparsifier_edges = Graph.m p.p_sparsifier.Sparsify.Spectral.sparsifier;
    rounds = Clique.Kernel.rounds rt;
    phase_rounds = Clique.Kernel.phases rt;
    residual = st.Linalg.Chebyshev.residual;
  }

type prepared_cg = {
  pc_eps : float;
  pc_apply_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
  pc_ws : Linalg.Cg.Workspace.t;
}

let prepare_cg ?(eps = 1e-6) g =
  {
    pc_eps = eps;
    pc_apply_into = (fun src dst -> Graph.apply_laplacian_into g src dst);
    pc_ws = Linalg.Cg.Workspace.create (Graph.n g);
  }

let solve_cg_prepared p b =
  let eps = p.pc_eps in
  (* [solve_cg_baseline] centers once, then [Cg.solve_grounded] centers
     again — replicated for bit-identity, as in [solve_prepared]. *)
  let b1 = Linalg.Vec.center b in
  let b2 = Linalg.Vec.center b1 in
  let st = Linalg.Cg.solve_into ~tol:(eps /. 100.) p.pc_ws p.pc_apply_into b2 in
  let x = Linalg.Vec.center p.pc_ws.Linalg.Cg.Workspace.x in
  {
    x;
    iterations = st.Linalg.Cg.iterations;
    kappa = nan;
    sparsifier_edges = 0;
    rounds = st.Linalg.Cg.iterations * Runtime.Cost.matvec_rounds;
    phase_rounds = [ ("cg", st.Linalg.Cg.iterations) ];
    residual =
      st.Linalg.Cg.residual /. Float.max (Linalg.Vec.norm2 b1) 1e-300;
  }

let solve ?(eps = 1e-6) ?(phi = 0.05) ?inner ?backend ?model g b =
  if not (Graph.is_connected g) then
    invalid_arg "Solver.solve: graph must be connected (L† needs one component)";
  let g' = preprocess_weights eps g in
  (* Only the sparsifier phase is model-sensitive: κ-estimation and the
     Chebyshev loop are matvecs against a globally-known iterate, which
     is one broadcast round per iteration in either model (DESIGN.md
     §13). *)
  let sp = Sparsify.Spectral.sparsify ~phi ?backend ?model g' in
  (* One ledger for the whole pipeline: the sparsifier's charged rounds land
     in the same runtime the solve phases charge into. *)
  let rt = Clique.Kernel.clique (Graph.n g) in
  Clique.Kernel.charge rt ~phase:"sparsify" sp.Sparsify.Spectral.rounds;
  solve_with_sparsifier ~eps ?inner ~rt g sp b

let solve_cg_baseline ?(eps = 1e-6) g b =
  let b = Linalg.Vec.center b in
  let x, st =
    Linalg.Cg.solve_grounded ~tol:(eps /. 100.) (Graph.apply_laplacian g) b
  in
  {
    x;
    iterations = st.Linalg.Cg.iterations;
    kappa = nan;
    sparsifier_edges = 0;
    rounds = st.Linalg.Cg.iterations * Runtime.Cost.matvec_rounds;
    phase_rounds = [ ("cg", st.Linalg.Cg.iterations) ];
    residual =
      st.Linalg.Cg.residual /. Float.max (Linalg.Vec.norm2 b) 1e-300;
  }

let error_in_l_norm g x b =
  let b = Linalg.Vec.center b in
  let xstar = Linalg.Dense.solve_grounded (Graph.laplacian_dense g) b in
  let diff = Linalg.Vec.sub x xstar in
  let num = sqrt (Float.max 0. (Graph.quadratic_form g diff)) in
  let den = sqrt (Float.max 0. (Graph.quadratic_form g xstar)) in
  if den = 0. then num else num /. den
