(** Deterministic congested-clique Laplacian solver — Theorem 1.1.

    Pipeline, exactly as §3 implements it:
    + round edge weights to multiples of [ε] and rescale (the theorem takes
      integer weight classes);
    + build a deterministic spectral sparsifier [H] ({!Sparsify.Spectral});
      after this phase [H] is known to every node;
    + estimate the pencil condition number [κ] with distributed power
      iteration — each iteration is one [L_G]-matvec round, the [L_H†]
      applications are node-internal;
    + run preconditioned Chebyshev (Corollary 2.3): [O(√κ·log(1/ε))]
      iterations of one matvec round plus an internal [L_H]-solve.

    Round accounting: the sparsifier phase charges its Theorem 3.3 cost, and
    every matvec charges {!Runtime.Cost.matvec_rounds}; all charges flow
    through one clique-runtime ledger ({!Clique.Kernel}) and are broken down
    per phase in the report. *)

type inner_solver =
  | Direct  (** grounded dense Cholesky of [L_H] — exact, [O(n³)] once *)
  | Iterative  (** tightly-converged CG on [L_H] — for larger [n] *)

type report = {
  x : Linalg.Vec.t;  (** the approximate solution *)
  iterations : int;  (** Chebyshev iterations used *)
  kappa : float;  (** pencil condition estimate actually used *)
  sparsifier_edges : int;
  rounds : int;  (** total charged rounds *)
  phase_rounds : (string * int) list;
      (** ledger breakdown (sorted): "chebyshev", "kappa-estimate",
          "sparsify" *)
  residual : float;  (** final relative ℓ₂ residual ‖b − L_G x‖/‖b‖ *)
}

val solve :
  ?eps:float ->
  ?phi:float ->
  ?inner:inner_solver ->
  ?backend:Sparsify.Spectral.backend ->
  ?model:Runtime.Model.t ->
  Graph.t ->
  Linalg.Vec.t ->
  report
(** [solve g b] approximately solves [L_G x = b] for connected [g] and
    [b ⊥ 1] (it is centered defensively). [eps] (default [1e-6]) is the
    target of Theorem 1.1: [‖x − L†b‖_{L_G} ≤ ε‖L†b‖_{L_G}]. [inner]
    defaults to [Direct] for [n ≤ 400], [Iterative] above. [model]
    (default {!Runtime.Model.default}) selects unicast vs broadcast
    round accounting for the sparsifier phase; the matvec-driven phases
    (κ-estimation, Chebyshev) cost the same in both models, and the
    solution is bit-identical. Raises [Invalid_argument] on a
    disconnected graph. *)

val solve_with_sparsifier :
  ?eps:float ->
  ?inner:inner_solver ->
  ?rt:Clique.Kernel.t ->
  Graph.t ->
  Sparsify.Spectral.result ->
  Linalg.Vec.t ->
  report
(** Reuse a previously built sparsifier (the flow IPMs re-solve on graphs
    whose resistances change every iteration but whose support is fixed;
    when the caller knows the sparsifier is still valid it can skip phase 1).
    The sparsifier construction rounds are {e not} re-charged. [rt] lets a
    caller thread its own runtime ledger through the solve (default: a fresh
    one, so the report stands alone). *)

(** {2 Prepared (amortized) solving}

    The throughput daemon serves many right-hand sides against the same
    graph. {!prepare} performs the per-graph work once — weight
    preprocessing, sparsifier construction, the inner Cholesky/CG state,
    κ-estimation, and the Chebyshev workspace — and {!solve_prepared} then
    answers each request with bit-identical reports to {!solve} while
    performing zero heap allocations per Chebyshev iteration (with the
    [Direct] inner solver; [Iterative] allocates O(1) words per outer
    iteration for the nested CG call). A [prepared] handle holds mutable
    workspaces: concurrent {!solve_prepared} calls on the same handle are
    unsound — callers serialize (the daemon guards each cached handle with
    a mutex). *)

type prepared

val prepare :
  ?eps:float ->
  ?phi:float ->
  ?inner:inner_solver ->
  ?backend:Sparsify.Spectral.backend ->
  ?model:Runtime.Model.t ->
  Graph.t ->
  prepared
(** Same parameters and validation as {!solve}; runs every phase that does
    not depend on the right-hand side. Raises [Invalid_argument] on a
    disconnected graph. *)

val solve_prepared : prepared -> Linalg.Vec.t -> report
(** [solve_prepared p b] is bit-identical to
    [solve ?eps ?phi ?inner ?backend ?model g b] for the arguments [p] was
    prepared with — including [rounds] and [phase_rounds], which replay the
    full pipeline's ledger so a cached answer is indistinguishable from a
    cold one. *)

val prepared_dim : prepared -> int

val prepared_kappa : prepared -> float

val prepared_sparsifier_edges : prepared -> int

type prepared_cg

val prepare_cg : ?eps:float -> Graph.t -> prepared_cg
(** Workspace-backed counterpart of {!solve_cg_baseline}: one CG workspace
    per graph, reused across right-hand sides. *)

val solve_cg_prepared : prepared_cg -> Linalg.Vec.t -> report
(** Bit-identical to {!solve_cg_baseline} on the graph [prepare_cg] was
    given; zero heap allocations per CG iteration. Same single-handle
    concurrency caveat as {!solve_prepared}. *)

val solve_cg_baseline : ?eps:float -> Graph.t -> Linalg.Vec.t -> report
(** Baseline for experiment E8: plain distributed conjugate gradients
    (each iteration = one matvec round, no sparsifier). Reports rounds the
    same way so the two are directly comparable. *)

val error_in_l_norm : Graph.t -> Linalg.Vec.t -> Linalg.Vec.t -> float
(** [error_in_l_norm g x b]: the Theorem 1.1 error metric
    [‖x − L†b‖_L / ‖L†b‖_L], computed against a dense-oracle [L†b] —
    test/bench instrumentation, not part of the distributed algorithm. *)
