module type S = sig
  type runtime

  val bfs : runtime -> Graph.t -> int -> int array

  val bellman_ford : runtime -> Graph.t -> int -> float array

  val three_color :
    runtime ->
    ids:int array ->
    succ:int array ->
    pred:int array ->
    int array * int

  val boruvka : runtime -> Graph.t -> int list * float * int
end

let edge_key g id =
  let e = Graph.edge g id in
  (e.Graph.w, id)

(* Deduplicated adjacency sets (parallel edges carry one message, like the
   CONGEST kernel's adjacency sets). *)
let neighbor_sets g =
  let n = Graph.n g in
  let sets = Array.init n (fun _ -> Hashtbl.create 4) in
  Array.iter
    (fun e ->
      Hashtbl.replace sets.(e.Graph.u) e.Graph.v ();
      Hashtbl.replace sets.(e.Graph.v) e.Graph.u ())
    (Graph.edges g);
  sets

let neighbor_lists g =
  Array.map
    (fun s -> Hashtbl.fold (fun u () acc -> u :: acc) s [])
    (neighbor_sets g)

module Make (R : Runtime.S) = struct
  type runtime = R.t

  let require_n rt k what =
    if R.n rt <> k then
      invalid_arg (Printf.sprintf "Programs.%s: runtime has %d nodes, need %d"
                     what (R.n rt) k)

  (* Distributed BFS by flooding: every frontier node tells its neighbours
     its distance; rounds = eccentricity of the source + 1 (the final round
     in which the last frontier discovers nobody). The per-node step reads
     only pre-round state, so [exchange_map] may fan it over domains. *)
  let bfs rt g s =
    let n = Graph.n g in
    require_n rt n "bfs";
    R.with_phase rt "bfs" @@ fun () ->
    let sets = neighbor_sets g in
    let neighbors =
      Array.map (fun s -> Hashtbl.fold (fun u () acc -> u :: acc) s []) sets
    in
    let dist = Array.make n (-1) in
    dist.(s) <- 0;
    let in_frontier = Array.make n false in
    in_frontier.(s) <- true;
    let frontier_nonempty = ref true in
    while !frontier_nonempty do
      let inboxes =
        R.exchange_map rt (fun v ->
            if in_frontier.(v) then
              List.map (fun u -> (u, [| dist.(v) |])) neighbors.(v)
            else [])
      in
      Array.fill in_frontier 0 n false;
      frontier_nonempty := false;
      Array.iteri
        (fun v msgs ->
          if dist.(v) < 0 then
            List.iter
              (fun (src, payload) ->
                (* Accept only neighbours' announcements: a no-op on the
                   unicast kernels (non-neighbours never address v), the
                   correctness filter on the broadcast kernel, where v
                   hears every frontier node. *)
                if dist.(v) < 0 && Hashtbl.mem sets.(v) src then begin
                  dist.(v) <- payload.(0) + 1;
                  in_frontier.(v) <- true;
                  frontier_nonempty := true
                end)
              msgs)
        inboxes
    done;
    dist

  (* Distributed Bellman–Ford: every node with a finite distance tells its
     neighbours, fixed-point encoded to fit the word model. *)
  let bellman_ford rt g s =
    let n = Graph.n g in
    require_n rt n "bellman_ford";
    R.with_phase rt "bellman-ford" @@ fun () ->
    let neighbors = neighbor_lists g in
    let dist = Array.make n infinity in
    dist.(s) <- 0.;
    let scale = 1024. in
    let changed = ref true in
    while !changed do
      changed := false;
      let inboxes =
        R.exchange_map rt (fun v ->
            if dist.(v) < infinity then
              List.map
                (fun u ->
                  (u, [| int_of_float (Float.round (dist.(v) *. scale)) |]))
                neighbors.(v)
            else [])
      in
      Array.iteri
        (fun v msgs ->
          List.iter
            (fun (src, payload) ->
              let d_src = float_of_int payload.(0) /. scale in
              (* Lightest edge between src and v. *)
              let w = ref infinity in
              List.iter
                (fun (u, id) ->
                  if u = src then
                    w := Float.min !w (Graph.edge g id).Graph.w)
                (Graph.adj g v);
              let cand = d_src +. !w in
              if cand < dist.(v) -. 1e-9 then begin
                dist.(v) <- cand;
                changed := true
              end)
            msgs)
        inboxes;
    done;
    dist

  (* Cole–Vishkin 3-coloring of a cycle cover, as real node programs:
     1 round to learn the successor's color, one round per CV reduction
     step, then 3 shift-down rounds (classes 5, 4, 3). Returns the colors
     and the rounds the chain used — the quantity Theorem 1.4 charges. *)
  let three_color rt ~ids ~succ ~pred =
    let k = Array.length ids in
    if Array.length succ <> k || Array.length pred <> k then
      invalid_arg "Programs.three_color: array length mismatch";
    if k < 2 then invalid_arg "Programs.three_color: need at least 2 positions";
    require_n rt k "three_color";
    R.with_phase rt "coloring" @@ fun () ->
    let start = R.rounds rt in
    let colors = Array.copy ids in
    let succ_color = Array.make k 0 in
    (* One round: every position sends its color to its predecessor, so
       everyone learns its successor's current color. *)
    let learn_succ () =
      let inboxes =
        R.exchange_map rt (fun i -> [ (pred.(i), [| colors.(i) |]) ])
      in
      Array.iteri
        (fun i msgs ->
          List.iter
            (fun (src, payload) ->
              if src = succ.(i) then succ_color.(i) <- payload.(0))
            msgs)
        inboxes
    in
    learn_succ ();
    while Coloring.max_color colors >= 6 do
      for i = 0 to k - 1 do
        colors.(i) <- Coloring.cv_combine colors.(i) succ_color.(i)
      done;
      learn_succ ()
    done;
    (* Shift-down recoloring: vertices of class c >= 3 simultaneously pick
       the smallest color in {0,1,2} unused by their two neighbours. One
       both-directions exchange per class; same-class vertices are never
       adjacent, so parallel recoloring stays proper. *)
    let sc = Array.make k 0 and pc = Array.make k 0 in
    for c = 5 downto 3 do
      let inboxes =
        (* On a 2-ring pred.(i) = succ.(i): one message suffices (the
           receiver's succ and pred tests both match it), and sending two
           would list the same destination twice in one outbox. *)
        R.exchange_map rt (fun i ->
            if pred.(i) = succ.(i) then [ (pred.(i), [| colors.(i) |]) ]
            else
              [ (pred.(i), [| colors.(i) |]); (succ.(i), [| colors.(i) |]) ])
      in
      Array.iteri
        (fun i msgs ->
          List.iter
            (fun (src, payload) ->
              if src = succ.(i) then sc.(i) <- payload.(0);
              if src = pred.(i) then pc.(i) <- payload.(0))
            msgs)
        inboxes;
      for i = 0 to k - 1 do
        if colors.(i) = c then begin
          let a = sc.(i) and b = pc.(i) in
          let pick = ref 0 in
          while !pick = a || !pick = b do
            incr pick
          done;
          colors.(i) <- !pick
        end
      done
    done;
    (colors, R.rounds rt - start)

  (* Borůvka MST: per phase every node broadcasts its component label
     (1 round) and its minimum outgoing edge (1 round); all nodes then
     apply the same merge decisions to the shared global view. Returns
     (mst edge ids, weight, phases). *)
  let boruvka rt g =
    let n = Graph.n g in
    require_n rt n "boruvka";
    if not (Graph.is_connected g) then
      invalid_arg "Programs.boruvka: graph must be connected";
    let label = Array.init n (fun v -> v) in
    let chosen = ref [] in
    let phases = ref 0 in
    let components = ref n in
    while !components > 1 do
      incr phases;
      (* Round 1: everyone learns every node's component label. *)
      let labels =
        R.with_phase rt "labels" (fun () ->
            Array.map
              (fun l -> l.(0))
              (R.broadcast rt (Array.map (fun l -> [| l |]) label)))
      in
      (* Locally: each node picks its lightest edge leaving its component. *)
      let candidate = Array.make n (-1) in
      for v = 0 to n - 1 do
        List.iter
          (fun (u, id) ->
            if labels.(u) <> labels.(v) then
              match candidate.(v) with
              | -1 -> candidate.(v) <- id
              | best ->
                if edge_key g id < edge_key g best then candidate.(v) <- id)
          (Graph.adj g v)
      done;
      (* Round 2: broadcast the candidates; everyone now shares the merge
         decisions and applies them identically. *)
      let shared =
        R.with_phase rt "candidates" (fun () ->
            Array.map
              (fun c -> c.(0))
              (R.broadcast rt (Array.map (fun c -> [| c |]) candidate)))
      in
      (* Per component, keep only its lightest candidate, then union. *)
      let best_of_component = Hashtbl.create 16 in
      Array.iteri
        (fun v id ->
          if id >= 0 then begin
            let c = labels.(v) in
            match Hashtbl.find_opt best_of_component c with
            | None -> Hashtbl.replace best_of_component c id
            | Some cur ->
              if edge_key g id < edge_key g cur then
                Hashtbl.replace best_of_component c id
          end)
        shared;
      let uf = Unionfind.create n in
      (* Rebuild current components, then merge along the selected edges. *)
      for v = 0 to n - 1 do
        ignore (Unionfind.union uf v label.(v))
      done;
      Hashtbl.iter
        (fun _ id ->
          let e = Graph.edge g id in
          if Unionfind.union uf e.Graph.u e.Graph.v then
            chosen := id :: !chosen)
        best_of_component;
      for v = 0 to n - 1 do
        label.(v) <- Unionfind.find uf v
      done;
      components := Unionfind.count uf
    done;
    let edges = List.sort_uniq compare !chosen in
    let weight =
      List.fold_left (fun acc id -> acc +. (Graph.edge g id).Graph.w) 0. edges
    in
    (edges, weight, !phases)
end
