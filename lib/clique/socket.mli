(** The multi-process clique: a {!Runtime.TRANSPORT} instance whose
    delivery runs on [CC_SHARDS] spawned worker processes connected by
    framed sockets (DESIGN.md §11).

    Node IDs are partitioned into contiguous shard ranges
    ([Runtime.Shard]); each worker delivers its range on a private
    [Runtime.Arena], encoding its reply over its own domain pool
    ([CC_DOMAINS] applies per shard). Per round the coordinator writes one
    frame per worker, each worker writes at most one frame per ordered
    (shard, shard) pair that actually carries cross traffic — shard-level
    Lenzen batching — and replies once. Links are Unix-domain socket
    pairs by default, TCP when [CC_SHARD_ADDR=host:port] (or [?addr]) is
    set.

    Rounds are bit-identical to the in-process kernels: same inbox
    contents and order, same errors ({!Bandwidth_exceeded} with the same
    (src, dst, words, width, phase) fields even when detected inside a
    worker), same sanitizer transcripts. A worker that dies or a link
    that hits EOF mid-round raises [Runtime.Shard.Shard_down] naming the
    shard and round — never a hang. *)

type t
(** A live sharded session: coordinator state, links, worker processes. *)

exception
  Bandwidth_exceeded of {
    src : int;
    dst : int;
    words : int;
    width : int;
    phase : string;
  }
(** [Runtime.Mailbox.Bandwidth_exceeded], rebound. *)

val name : string
(** ["clique+shard"]. *)

val env_addr : string
(** ["CC_SHARD_ADDR"]. *)

val create : ?shards:int -> ?addr:string -> int -> t
(** [create n] spawns the worker family by re-executing the current
    binary ([Unix.fork] is unavailable once any domain ever ran; the
    [CC_SHARD_WORKER] environment variable diverts the re-exec into the
    worker loop before the program's own entry point), then wires every
    link through a socket rendezvous: workers dial the coordinator's
    listener, learn the peer table, and build the full worker mesh before
    the session goes live. [shards] defaults to
    [Runtime.Shard.default_shards ()] and is clamped to [n]; [addr]
    defaults to [CC_SHARD_ADDR], absent meaning Unix-domain sockets under
    the temp directory. A worker that dies during bootstrap raises
    [Runtime.Shard.Shard_down] with [round = 0] — never a hang. *)

val close : t -> unit
(** Send shutdown frames, close links, reap the worker processes.
    Idempotent; registered sessions are closed automatically at exit. *)

val shutdown_all : unit -> unit
(** {!close} every live session (the test-suite and at-exit hook). *)

val shards : t -> int
(** Worker-process count of this session. *)

val pids : t -> int list
(** The worker process IDs, in shard order — the fault-injection tests
    kill one to exercise {!Runtime.Shard.Shard_down}. *)

val n : t -> int
(** Number of clique nodes in the session. *)

val rounds : t -> int
(** Rounds elapsed so far (coordinator view). *)

val words_sent : t -> int
(** Total words ever sent, identical to the in-process kernels. *)

val default_width : int
(** 2, as on every clique kernel. *)

val unicast : bool
(** [true] — sharding changes the delivery engine, not the width rule. *)

val exchange :
  ?width:int -> t -> (int * int array) list array -> (int * int array) list array
(** One synchronous round over the workers; bit-identical inboxes to
    {!Sim.exchange} (the differential suite's core claim). *)

val route :
  ?width:int -> t -> (int * int * int array) list -> (int * int array) list array
(** Lenzen routing stays a coordinator-side analytic path (identical cost
    model on every kernel; no charged workload drives it through the
    message stream). *)

val broadcast : ?width:int -> t -> int array array -> int array array
(** One-to-all broadcast, coordinator-side like {!route}. *)

val charge : t -> int -> unit
(** Advance the round counter analytically (no delivery). *)

val stats : t -> (string * int) list
(** [wire.frames], [wire.bytes_sent], [wire.bytes_recv] (coordinator
    traffic plus worker-reported mesh traffic), [shard.crossings] (count
    of cross-shard messages), [shard.shards]. *)
