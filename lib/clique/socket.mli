(** The multi-process clique: a {!Runtime.TRANSPORT} instance whose
    delivery runs on [CC_SHARDS] worker processes connected by framed
    sockets (DESIGN.md §11), under supervision (§14).

    Node IDs are partitioned into contiguous shard ranges
    ([Runtime.Shard]); each worker delivers its range on a private
    [Runtime.Arena], encoding its reply over its own domain pool
    ([CC_DOMAINS] applies per shard). Per round the coordinator writes one
    frame per worker, each worker writes at most one frame per ordered
    (shard, shard) pair that actually carries cross traffic — shard-level
    Lenzen batching — and replies once. Links are Unix-domain socket
    pairs by default, TCP when [CC_SHARD_ADDR=host:port] (or [?addr]) is
    set; with a TCP rendezvous, [CC_SHARD_REMOTE=k] reserves the last [k]
    shard slots for externally-launched workers ([bin/cc_worker], which
    may run on any host that can reach the coordinator).

    Rounds are bit-identical to the in-process kernels: same inbox
    contents and order, same errors ({!Bandwidth_exceeded} with the same
    (src, dst, words, width, phase) fields even when detected inside a
    worker), same sanitizer transcripts.

    {2 Supervision}

    Every blocking wait is bounded by [CC_SHARD_TIMEOUT] (seconds, default
    30) and every frame carries the session {!epoch}. A worker death —
    EOF, a timeout, or a survivor's report of a dead mesh peer — is
    handled per [CC_SHARD_POLICY] ([?policy]):

    - [Fail] (default): raise [Runtime.Shard.Shard_down] naming the shard
      and round, exactly the pre-supervision behaviour.
    - [Respawn]: replace the dead worker (up to [CC_SHARD_RESPAWNS] times,
      exponential backoff from [CC_SHARD_BACKOFF] seconds), bump the
      epoch, rebuild the mesh, and replay the interrupted operation from
      its retained input — output bit-identical to an undisturbed run.
    - [Drain]: mark the shard dead, merge its node range into a surviving
      neighbour (epoch-versioned [Runtime.Shard.Partition]), and continue
      degraded on the remaining workers.

    Each aborted-and-replayed attempt is charged one round to
    {!recovery_rounds}; [Runtime.Make] routes that delta to the
    ["recovery"] ledger phase, so resilience cost is a visible line item.
    Frames from a dead incarnation carry a stale epoch and are skipped on
    receipt. Bootstrap itself is deadline-bounded too: a worker that dies
    — or a client that connects but never completes the hello — yields a
    structured [Shard_down] with [round = 0], never a hang. *)

type t
(** A live sharded session: coordinator state, links, worker processes,
    and the epoch-versioned live partition. *)

exception
  Bandwidth_exceeded of {
    src : int;
    dst : int;
    words : int;
    width : int;
    phase : string;
  }
(** [Runtime.Mailbox.Bandwidth_exceeded], rebound. *)

val name : string
(** ["clique+shard"]. *)

val env_addr : string
(** ["CC_SHARD_ADDR"]. *)

val env_remote : string
(** ["CC_SHARD_REMOTE"] — how many shard slots await external workers. *)

val env_remote_worker : string
(** ["CC_SHARD_REMOTE_WORKER"] — set to the coordinator's address, turns
    any binary linking this library into a remote worker at startup. *)

val env_heartbeat : string
(** ["CC_SHARD_HEARTBEAT"] — liveness-probe interval in seconds; [0]
    (the default) disables probing between operations. *)

val env_log : string
(** ["CC_SHARD_LOG"] — append supervisor events to this file. *)

val env_respawns : string
(** ["CC_SHARD_RESPAWNS"] — respawn attempt bound (default 3). *)

val env_backoff : string
(** ["CC_SHARD_BACKOFF"] — base respawn backoff in seconds (default
    0.2; attempt [i] waits [backoff · 2^(i-1)]). *)

val create :
  ?shards:int ->
  ?addr:string ->
  ?remote:int ->
  ?policy:Runtime.Shard.policy ->
  ?timeout:float ->
  ?heartbeat:float ->
  ?max_respawns:int ->
  ?backoff:float ->
  ?log:string ->
  int ->
  t
(** [create n] spawns the worker family by re-executing the current
    binary ([Unix.fork] is unavailable once any domain ever ran; the
    [CC_SHARD_WORKER] environment variable diverts the re-exec into the
    worker loop before the program's own entry point), then wires every
    link through a socket rendezvous: workers dial the coordinator's
    listener, receive the epoch-stamped live-partition config, build the
    full worker mesh, and confirm ready before the session goes live —
    the same config/ready round that recovery replays later.

    [shards] defaults to [Runtime.Shard.default_shards ()] and is clamped
    to [n]. [addr] defaults to [CC_SHARD_ADDR]; absent means Unix-domain
    sockets under the temp directory. [remote] (default [CC_SHARD_REMOTE],
    else 0) reserves the last [remote] shard slots for external workers
    joining through the TCP rendezvous — requires [addr], and bootstrap
    waits for them like any other worker, bounded by [timeout]. [policy],
    [timeout], [heartbeat], [max_respawns], [backoff] and [log] default to
    their environment knobs as documented above. Every bootstrap failure
    is a structured [Runtime.Shard.Shard_down] with [round = 0]. *)

val close : t -> unit
(** Send shutdown frames, close links, reap the worker processes.
    Idempotent; registered sessions are closed automatically at exit. *)

val shutdown_all : unit -> unit
(** {!close} every live session (the test-suite and at-exit hook). *)

val shards : t -> int
(** Worker-slot count of this session (dead slots included). *)

val pids : t -> int list
(** Worker process IDs in shard order; [-1] for remote or reaped slots —
    the kill-matrix tests SIGKILL one to exercise the supervisor. *)

val n : t -> int
(** Number of clique nodes in the session. *)

val rounds : t -> int
(** Rounds elapsed so far (coordinator view), replays included. *)

val words_sent : t -> int
(** Total words ever sent, identical to the in-process kernels (an
    aborted attempt's words are never counted — only the successful
    replay's). *)

val recovery_rounds : t -> int
(** Of {!rounds}, how many were aborted by a worker death and replayed —
    the delta [Runtime.Make] charges to the ["recovery"] phase. *)

val epoch : t -> int
(** Current session epoch: 1 at bootstrap, bumped by every recovery
    event. Frames stamped with an older epoch are ignored on receipt. *)

val live_workers : t -> int
(** How many shard slots are currently alive (< {!shards} after drains). *)

val policy : t -> Runtime.Shard.policy
(** The supervision policy this session runs under. *)

val heartbeat : t -> unit
(** Probe every live worker now and run recovery for any that fails to
    ack within the session timeout. Called automatically between
    operations when [CC_SHARD_HEARTBEAT] (or [?heartbeat]) is positive;
    exposed for tests and long idle periods. Heartbeat-triggered
    recovery charges no round (there was no operation to replay). *)

val default_width : int
(** 2, as on every clique kernel. *)

val unicast : bool
(** [true] — sharding changes the delivery engine, not the width rule. *)

val exchange :
  ?width:int -> t -> (int * int array) list array -> (int * int array) list array
(** One synchronous round over the workers; bit-identical inboxes to
    {!Sim.exchange} (the differential suite's core claim), including
    across a mid-round worker death recovered under [Respawn]/[Drain]. *)

val route :
  ?width:int -> t -> (int * int * int array) list -> (int * int array) list array
(** Lenzen routing stays a coordinator-side analytic path (identical cost
    model on every kernel; no charged workload drives it through the
    message stream). *)

val broadcast : ?width:int -> t -> int array array -> int array array
(** One-to-all broadcast: each worker width-checks and echoes its node
    range, the coordinator assembles the common view. *)

val charge : t -> int -> unit
(** Advance the round counter analytically (no delivery). *)

val stats : t -> (string * int) list
(** [wire.frames], [wire.bytes_sent], [wire.bytes_recv] (coordinator
    traffic plus worker-reported mesh traffic), [shard.crossings] (count
    of cross-shard messages), [shard.shards], and the supervision
    counters: [shard.live], [shard.epoch], [shard.deaths],
    [shard.respawn], [shard.drain], [shard.heartbeat.sent] / [.acked] /
    [.missed], [shard.recovery_rounds]. *)

val remote_worker : string -> unit
(** Run this process as a remote worker: dial the coordinator at the
    given address ([host:port], or explicit [tcp:]/[unix:]), join the
    hello rendezvous with a slot-assignment request, serve rounds until
    shutdown, then [Unix._exit]. Never returns. [bin/cc_worker] is a thin
    wrapper; setting [CC_SHARD_REMOTE_WORKER=<addr>] diverts any binary
    linking this library here at startup. *)
