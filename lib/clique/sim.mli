(** Synchronous message-passing kernel — the congested clique itself (§2.1).

    [n] nodes, identified [0..n-1], proceed in synchronous rounds. In one
    round every ordered pair of nodes may exchange one message of
    [O(log n)] bits, modeled as at most [width] machine words per ordered
    pair ([width = 2] by default: a tag word plus a value word). Exceeding
    the budget raises {!Bandwidth_exceeded} — algorithms cannot cheat.

    This module is a {!Runtime.TRANSPORT} instance (delivery and bandwidth
    checks live in {!Runtime.Mailbox}); node programs run on it through
    [Runtime.Make (Sim)] — see {!Kernel}. The genuinely distributed
    subroutines (Borůvka, the Eulerian-orientation coloring) have their
    round counts *measured* here, not charged. *)

type t
(** A clique session: delivery state, round counter, word counter. *)

type kernel = Arena | Legacy | Shard
(** Which delivery engine [exchange] runs on. [Arena] (the default) is the
    reusable-buffer counting-sort kernel of {!Runtime.Arena}; [Legacy] is
    the list-and-[Hashtbl] {!Runtime.Mailbox.deliver} path; [Shard] is the
    multi-process socket transport of {!Socket}, forking
    [Runtime.Shard.default_shards] workers at [create]. All three are
    bit-identical in rounds, words, inbox contents, errors, and sanitizer
    transcripts — the differential suite [test_kernel_equiv] holds them to
    that. *)

exception
  Bandwidth_exceeded of {
    src : int;
    dst : int;
    words : int;
    width : int;
    phase : string;
  }
(** The same exception as {!Runtime.Mailbox.Bandwidth_exceeded} (rebound),
    so either name catches it. *)

val name : string
(** ["clique"]. *)

val create : ?kernel:kernel -> int -> t
(** [create n] makes a clique of [n] nodes running on [kernel] (default
    {!default_kernel}). The arena kernel sizes its buffers once here and
    reuses them every round. *)

val default_kernel : unit -> kernel
(** The kernel [create] picks when [?kernel] is omitted: the value forced
    by {!set_default_kernel} if any, else what [CC_KERNEL] names
    ([legacy], [shard], [arena]); with no such forcing, [Shard] when
    [Runtime.Shard.default_shards () > 1] (i.e. [CC_SHARDS] asks for a
    multi-process run), else [Arena]. *)

val set_default_kernel : kernel option -> unit
(** Force (or, with [None], unforce) the {!default_kernel} result — the
    test-suite hook for running whole charged pipelines on a chosen
    kernel, overriding the environment. *)

val kernel_of : t -> kernel
(** The kernel this instance was created on. *)

val n : t -> int

val rounds : t -> int
(** Rounds elapsed so far. *)

val words_sent : t -> int
(** Total words ever sent (message-complexity measure). *)

val recovery_rounds : t -> int
(** Rounds spent replaying operations after a worker death — nonzero only
    on the sharded engine (delegates to [Socket.recovery_rounds]). *)

val default_width : int
(** 2 — a tag word plus a value word per ordered pair per round. *)

val unicast : bool
(** [true] — every ordered pair gets its own [width]-word budget. *)

val exchange :
  ?width:int -> t -> (int * int array) list array -> (int * int array) list array
(** [exchange t outboxes] performs one synchronous round. [outboxes.(v)] is
    node [v]'s list of [(dst, payload)] messages; the result [inboxes.(v)] is
    the list of [(src, payload)] received by [v], in unspecified order.
    Raises {!Bandwidth_exceeded} if some ordered pair carries more than
    [width] words (default 2). Increments {!rounds} by 1. *)

val route :
  ?width:int -> t -> (int * int * int array) list -> (int * int array) list array
(** [route t msgs] delivers an arbitrary multiset of [(src, dst, payload)]
    messages using the Lenzen routing subroutine. One batch moves up to
    [n·width] words per node, so the round counter advances by
    [⌈load / (n·width)⌉ · Cost.lenzen_routing_rounds] where [load] is the
    maximum number of words any single node sends or receives (a
    within-bound batch costs exactly 16 rounds, like the paper's step 2b).
    A single payload longer than [width] words does not fit any message and
    raises {!Bandwidth_exceeded}; out-of-range endpoints raise
    [Invalid_argument]. *)

val broadcast : ?width:int -> t -> int array array -> int array array
(** [broadcast t values] has every node send [values.(v)] (at most [width]
    words, default 2 — enforced, raising {!Bandwidth_exceeded}) to all
    others; returns the array of all values (the global view every node now
    shares). One round. *)

val charge : t -> int -> unit
(** Advance the round counter without communication (used when a node-local
    computation stands for a subroutine whose rounds are charged, e.g. the
    final O(1)-size cycle leader election). *)

val session : t -> Socket.t option
(** The socket session behind a [Shard]-kernel instance ([None] on the
    in-process kernels) — the hook tests use to close sessions or kill
    workers deliberately. *)

val stats : t -> (string * int) list
(** The arena's [kernel.arena.*] counters ({!Runtime.Arena.stats}); the
    socket transport's [wire.*]/[shard.*] counters on the [Shard] kernel;
    empty on the legacy kernel. *)
