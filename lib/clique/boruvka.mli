(** Minimum spanning tree on the congested-clique kernel.

    The congested clique was introduced for MST ([LPSPP05], the paper's
    model citation); this is the classic Borůvka algorithm of
    {!Programs.S.boruvka} running as real node programs on the clique
    runtime ({!Kernel.Sim_programs}): every phase each node broadcasts its component
    label (1 round) and its minimum outgoing edge (1 round), after which all
    nodes merge components from the same shared global view. [O(log n)]
    phases, 2 broadcast rounds each. (Lotker et al.'s [O(log log n)]
    round algorithm is substituted by this simple variant; the measured
    logarithmic round count is still exponentially below the trivial
    gather.)

    Besides being useful in its own right, this module is the independent
    exercise of {!Sim.broadcast}'s accounting used by the runtime tests. *)

type result = {
  edges : int list;  (** MST edge identifiers *)
  weight : float;
  rounds : int;  (** measured rounds on the kernel *)
  phases : int;
}

val minimum_spanning_tree : Graph.t -> result
(** Requires a connected graph; ties are broken by edge identifier, which
    also makes the result unique and deterministic. Raises
    [Invalid_argument] on disconnected input. *)

val kruskal : Graph.t -> int list
(** Sequential oracle (also deterministic, same tie-breaking): the test
    reference, and available for internal node-local computations. *)
