type t = {
  graph : Graph.t;
  neighbors : (int, unit) Hashtbl.t array;
  arena : Runtime.Arena.t option;
  mutable rounds : int;
  mutable words_sent : int;
}

exception Not_an_edge of { src : int; dst : int }

let name = "congest"

let create ?kernel graph =
  let n = Graph.n graph in
  let neighbors = Array.init n (fun _ -> Hashtbl.create 4) in
  Array.iter
    (fun e ->
      Hashtbl.replace neighbors.(e.Graph.u) e.Graph.v ();
      Hashtbl.replace neighbors.(e.Graph.v) e.Graph.u ())
    (Graph.edges graph);
  let kernel =
    match kernel with Some k -> k | None -> Sim.default_kernel ()
  in
  let arena =
    match kernel with
    (* Sharded execution is clique-only; a CONGEST instance created under a
       shard default runs in-process on the arena kernel. *)
    | Sim.Arena | Sim.Shard -> Some (Runtime.Arena.create ~n ())
    | Sim.Legacy -> None
  in
  { graph; neighbors; arena; rounds = 0; words_sent = 0 }

let graph t = t.graph

let n t = Graph.n t.graph

let rounds t = t.rounds

let words_sent t = t.words_sent

let recovery_rounds _ = 0

let check t ~src ~dst =
  if not (Hashtbl.mem t.neighbors.(src) dst) then raise (Not_an_edge { src; dst })

let default_width = 2

let unicast = true

let exchange ?(width = 2) t outboxes =
  let inboxes, words =
    match t.arena with
    | Some arena -> Runtime.Arena.deliver arena ~width ~check:(check t) outboxes
    | None -> Runtime.Mailbox.deliver ~n:(n t) ~width ~check:(check t) outboxes
  in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + 1;
  inboxes

let route ?(width = 2) t msgs =
  let inboxes, words, batches =
    Runtime.Mailbox.route ~n:(n t) ~width ~check:(check t) msgs
  in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + (batches * Runtime.Cost.lenzen_routing_rounds);
  inboxes

let broadcast ?(width = 2) t values =
  let k = n t in
  for src = 0 to k - 1 do
    for dst = 0 to k - 1 do
      if src <> dst then check t ~src ~dst
    done
  done;
  let view, words = Runtime.Mailbox.broadcast ~n:k ~width values in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + Runtime.Cost.broadcast_rounds;
  view

let charge t r =
  if r < 0 then invalid_arg "Congest.charge: negative rounds";
  t.rounds <- t.rounds + r

let stats t =
  match t.arena with Some a -> Runtime.Arena.stats a | None -> []

(* The same node programs the clique kernel runs, instantiated over this
   transport (the functor is applied on a local alias; only plain arrays
   escape, so the private runtime type never leaks). *)
module Self = struct
  type nonrec t = t

  let name = name
  let n = n
  let default_width = default_width
  let unicast = unicast
  let rounds = rounds
  let words_sent = words_sent
  let recovery_rounds = recovery_rounds
  let exchange = exchange
  let route = route
  let broadcast = broadcast
  let charge = charge
  let stats = stats
end

module Rt = Runtime.Make (Self)
module Node_programs = Programs.Make (Rt)

let bfs t s = Node_programs.bfs (Rt.create t) t.graph s

let bellman_ford t s = Node_programs.bellman_ford (Rt.create t) t.graph s

let diameter g =
  let n = Graph.n g in
  let worst = ref 0 in
  (try
     for s = 0 to n - 1 do
       let dist = Traversal.bfs g s in
       Array.iter
         (fun d ->
           if d < 0 then begin
             worst := max_int;
             raise Exit
           end
           else worst := max !worst d)
         dist
     done
   with Exit -> ());
  !worst

(* --------------------------------------------------- §1.1 reference curves *)

let fglp_laplacian_rounds ~n ~d ~eps =
  let nf = float_of_int (max n 2) in
  int_of_float
    (Float.ceil ((sqrt nf +. float_of_int d) *. log (2. /. Float.max eps 1e-30)))

let fglp_maxflow_rounds ~n ~m ~d ~u =
  let nf = float_of_int (max n 2) and mf = float_of_int (max m 2) in
  let df = float_of_int (max d 1) in
  let per_iter = sqrt nf +. df +. (sqrt nf *. (df ** 0.25)) in
  int_of_float
    (Float.ceil
       (((mf ** (3. /. 7.)) *. (float_of_int (max u 1) ** (1. /. 7.)) *. per_iter)
       +. sqrt mf))

let fglp_mcf_rounds ~n ~m ~d ~w =
  let nf = float_of_int (max n 2) and mf = float_of_int (max m 2) in
  let df = float_of_int (max d 1) in
  let lw = Float.max 1. (Float.log2 (float_of_int (max w 2))) in
  int_of_float
    (Float.ceil ((mf ** (3. /. 7.)) *. ((sqrt nf *. (df ** 0.25)) +. df) *. lw))

let fv22_bcc_mcf_rounds ~n =
  int_of_float (Float.ceil (sqrt (float_of_int (max n 2))))
