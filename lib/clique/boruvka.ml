type result = { edges : int list; weight : float; rounds : int; phases : int }

let edge_key g id =
  let e = Graph.edge g id in
  (e.Graph.w, id)

let kruskal g =
  let ids = List.init (Graph.m g) Fun.id in
  let sorted =
    List.sort (fun a b -> compare (edge_key g a) (edge_key g b)) ids
  in
  let uf = Unionfind.create (Graph.n g) in
  List.filter
    (fun id ->
      let e = Graph.edge g id in
      Unionfind.union uf e.Graph.u e.Graph.v)
    sorted

(* The distributed algorithm itself lives in {!Programs.Make}; this wrapper
   runs it on the clique kernel and packages the measured rounds. *)
let minimum_spanning_tree g =
  let rt = Kernel.clique (Graph.n g) in
  let edges, weight, phases = Kernel.Sim_programs.boruvka rt g in
  { edges; weight; rounds = Kernel.rounds rt; phases }
