(** The Broadcast Congested Clique kernel — a {!Runtime.TRANSPORT}
    instance of the model Forster & de Vos carry the Laplacian paradigm
    into (PAPERS.md, arXiv:2205.12059); see DESIGN.md §13.

    Per round every node puts {e one} message of at most [width] words on
    the air, and every node (the sender included) hears all [n] of them.
    The width rule therefore moves from the ordered pair to the source:
    an outbox may list many destinations, but all listed payloads must be
    the same words — that single payload is what everyone receives. A
    source shipping two structurally distinct payloads in one round
    raises {!Multi_payload} naming the offending phase (the sanitizer's
    ["broadcast-width"] check is the pre-flight twin of this error).

    Send bandwidth per node drops by a factor of [n] relative to the
    unicast clique, but {e receive} bandwidth is identical — every node
    still hears [n] payloads of [width] words per round — which is why
    the receive-bound pipeline steps (gather, matvec against a globally
    known iterate) cost the same rounds under both models while the
    send-bound ones are recharged (EXPERIMENTS.md E11). *)

type t
(** Kernel state: node count and the round/word/collapse counters. *)

exception
  Bandwidth_exceeded of {
    src : int;
    dst : int;
    words : int;
    width : int;
    phase : string;
  }
(** [Runtime.Mailbox.Bandwidth_exceeded], rebound; raised with [dst = -1]
    when a single payload exceeds [width] words. *)

exception Multi_payload of { src : int; phase : string; distinct : int }
(** Node [src] tried to ship [distinct] (≥ 2) different payloads in one
    round — illegal here regardless of their sizes. [phase] is the
    runtime phase current when the exchange ran. A printer is
    registered. *)

val name : string
(** ["bcast"]. *)

val create : int -> t
(** [create n] makes a broadcast clique of [n] nodes ([n > 0]). *)

val n : t -> int
(** Number of nodes. *)

val rounds : t -> int
(** Rounds elapsed (measured plus charged). *)

val words_sent : t -> int
(** Total words ever put on the air, counted received-side like the
    unicast kernels: each broadcast payload contributes
    [(n-1)·|payload|]. *)

val recovery_rounds : t -> int
(** Always 0 — an in-process kernel has no workers to lose. *)

val default_width : int
(** 2, like every clique kernel — the per-{e source} budget here. *)

val unicast : bool
(** [false] — this is the broadcast model. *)

val exchange :
  ?width:int -> t -> (int * int array) list array -> (int * int array) list array
(** One synchronous round. Each source's outbox is collapsed to its single
    on-air payload (listed destinations are advisory: everyone hears it);
    the result gives {e every} node the same src-ascending
    [(src, payload)] list over all sources that sent anything. Raises
    {!Multi_payload} on a multi-payload outbox, {!Bandwidth_exceeded}
    ([dst = -1]) on an oversized payload, [Invalid_argument] on bad
    destinations. One round. *)

val route :
  ?width:int -> t -> (int * int * int array) list -> (int * int array) list array
(** Deliver an arbitrary [(src, dst, payload)] multiset by sequential
    broadcasts: [max 1 (max_v #messages(v))] rounds, since each source
    airs one message per round. The returned inboxes keep the unicast
    contract — each message reaches its addressed destination only — so
    analytic callers behave identically while paying broadcast cost. *)

val broadcast : ?width:int -> t -> int array array -> int array array
(** The model's native operation: identical semantics and cost to the
    unicast kernels ({!Runtime.Cost.broadcast_rounds} = one round). *)

val charge : t -> int -> unit
(** Advance the round counter without communication (analytic costs). *)

val stats : t -> (string * int) list
(** [kernel.bcast.exchanges] (exchange calls) and [kernel.bcast.collapsed]
    (redundant per-destination entries merged into one on-air payload). *)
