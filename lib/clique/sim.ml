type kernel = Arena | Legacy

type t = {
  n : int;
  kernel : kernel;
  arena : Runtime.Arena.t option;
  mutable rounds : int;
  mutable words_sent : int;
}

exception Bandwidth_exceeded = Runtime.Mailbox.Bandwidth_exceeded

let name = "clique"

let forced_kernel : kernel option ref = ref None

let set_default_kernel k = forced_kernel := k

let default_kernel () =
  match !forced_kernel with
  | Some k -> k
  | None -> (
    match Sys.getenv_opt "CC_KERNEL" with
    | Some "legacy" -> Legacy
    | Some _ | None -> Arena)

let create ?kernel n =
  if n <= 0 then invalid_arg "Sim.create: need n > 0";
  let kernel =
    match kernel with Some k -> k | None -> default_kernel ()
  in
  let arena =
    match kernel with
    | Arena -> Some (Runtime.Arena.create ~n ())
    | Legacy -> None
  in
  { n; kernel; arena; rounds = 0; words_sent = 0 }

let n t = t.n

let kernel_of t = t.kernel

let rounds t = t.rounds

let words_sent t = t.words_sent

let default_width = 2

let deliver t ~width outboxes =
  match t.arena with
  | Some arena -> Runtime.Arena.deliver arena ~width outboxes
  | None -> Runtime.Mailbox.deliver ~n:t.n ~width outboxes

let exchange ?(width = default_width) t outboxes =
  let inboxes, words = deliver t ~width outboxes in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + 1;
  inboxes

let route ?(width = default_width) t msgs =
  let inboxes, words, batches = Runtime.Mailbox.route ~n:t.n ~width msgs in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + (batches * Runtime.Cost.lenzen_routing_rounds);
  inboxes

let broadcast ?(width = default_width) t values =
  let view, words = Runtime.Mailbox.broadcast ~n:t.n ~width values in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + Runtime.Cost.broadcast_rounds;
  view

let charge t r =
  if r < 0 then invalid_arg "Sim.charge: negative rounds";
  t.rounds <- t.rounds + r

let stats t =
  match t.arena with Some a -> Runtime.Arena.stats a | None -> []
