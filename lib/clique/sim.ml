type kernel = Arena | Legacy | Shard

type engine =
  | Local of Runtime.Arena.t option  (** [Some] = arena, [None] = legacy *)
  | Sharded of Socket.t

type t = {
  n : int;
  kernel : kernel;
  engine : engine;
  mutable rounds : int;
  mutable words_sent : int;
}

exception Bandwidth_exceeded = Runtime.Mailbox.Bandwidth_exceeded

let name = "clique"

let forced_kernel : kernel option ref = ref None

let set_default_kernel k = forced_kernel := k

let default_kernel () =
  match !forced_kernel with
  | Some k -> k
  | None -> (
    match Sys.getenv_opt "CC_KERNEL" with
    | Some "legacy" -> Legacy
    | Some "shard" -> Shard
    | Some "arena" -> Arena
    | Some _ | None ->
      if Runtime.Shard.default_shards () > 1 then Shard else Arena)

let create ?kernel n =
  if n <= 0 then invalid_arg "Sim.create: need n > 0";
  let kernel =
    match kernel with Some k -> k | None -> default_kernel ()
  in
  let engine =
    match kernel with
    | Arena -> Local (Some (Runtime.Arena.create ~n ()))
    | Legacy -> Local None
    | Shard -> Sharded (Socket.create n)
  in
  { n; kernel; engine; rounds = 0; words_sent = 0 }

let n t = t.n

let kernel_of t = t.kernel

let rounds t =
  match t.engine with Sharded s -> Socket.rounds s | Local _ -> t.rounds

let words_sent t =
  match t.engine with Sharded s -> Socket.words_sent s | Local _ -> t.words_sent

let recovery_rounds t =
  match t.engine with Sharded s -> Socket.recovery_rounds s | Local _ -> 0

let default_width = 2

let unicast = true

let deliver t ~width outboxes =
  match t.engine with
  | Local (Some arena) -> Runtime.Arena.deliver arena ~width outboxes
  | Local None -> Runtime.Mailbox.deliver ~n:t.n ~width outboxes
  | Sharded _ -> assert false

let exchange ?(width = default_width) t outboxes =
  match t.engine with
  | Sharded s -> Socket.exchange ~width s outboxes
  | Local _ ->
    let inboxes, words = deliver t ~width outboxes in
    t.words_sent <- t.words_sent + words;
    t.rounds <- t.rounds + 1;
    inboxes

let route ?(width = default_width) t msgs =
  match t.engine with
  | Sharded s -> Socket.route ~width s msgs
  | Local _ ->
    let inboxes, words, batches = Runtime.Mailbox.route ~n:t.n ~width msgs in
    t.words_sent <- t.words_sent + words;
    t.rounds <- t.rounds + (batches * Runtime.Cost.lenzen_routing_rounds);
    inboxes

let broadcast ?(width = default_width) t values =
  match t.engine with
  | Sharded s -> Socket.broadcast ~width s values
  | Local _ ->
    let view, words = Runtime.Mailbox.broadcast ~n:t.n ~width values in
    t.words_sent <- t.words_sent + words;
    t.rounds <- t.rounds + Runtime.Cost.broadcast_rounds;
    view

let charge t r =
  if r < 0 then invalid_arg "Sim.charge: negative rounds";
  match t.engine with
  | Sharded s -> Socket.charge s r
  | Local _ -> t.rounds <- t.rounds + r

let session t = match t.engine with Sharded s -> Some s | Local _ -> None

let stats t =
  match t.engine with
  | Local (Some a) -> Runtime.Arena.stats a
  | Local None -> []
  | Sharded s -> Socket.stats s
