type t = { n : int; mutable rounds : int; mutable words_sent : int }

exception Bandwidth_exceeded = Runtime.Mailbox.Bandwidth_exceeded

let name = "clique"

let create n =
  if n <= 0 then invalid_arg "Sim.create: need n > 0";
  { n; rounds = 0; words_sent = 0 }

let n t = t.n

let rounds t = t.rounds

let words_sent t = t.words_sent

let default_width = 2

let exchange ?(width = default_width) t outboxes =
  let inboxes, words = Runtime.Mailbox.deliver ~n:t.n ~width outboxes in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + 1;
  inboxes

let route ?(width = default_width) t msgs =
  let inboxes, words, batches = Runtime.Mailbox.route ~n:t.n ~width msgs in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + (batches * Runtime.Cost.lenzen_routing_rounds);
  inboxes

let broadcast ?(width = default_width) t values =
  let view, words = Runtime.Mailbox.broadcast ~n:t.n ~width values in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + Runtime.Cost.broadcast_rounds;
  view

let charge t r =
  if r < 0 then invalid_arg "Sim.charge: negative rounds";
  t.rounds <- t.rounds + r
