(** The CONGEST model (§2.1): the congested clique's restricted sibling,
    where nodes may only exchange messages with their *topological*
    neighbours. Built so the §1.1 cross-model comparisons are concrete: the
    same node programs (see {!Programs}) run on both kernels through
    [Runtime.Make], and the CONGEST round formulas of the related-work
    algorithms are kept next to the clique ones.

    Like {!Sim}, this module is a {!Runtime.TRANSPORT} instance: delivery
    and bandwidth checks are shared with the clique kernel through
    {!Runtime.Mailbox} (at most [width] words per edge per direction per
    round); the only difference is the edge check. *)

type t
(** A CONGEST session: the graph topology plus the shared delivery core. *)

exception Not_an_edge of { src : int; dst : int }
(** Raised when a message is addressed across a non-edge of the topology. *)

val name : string
(** ["congest"]. *)

val create : ?kernel:Sim.kernel -> Graph.t -> t
(** One node per vertex; links are exactly the graph's edges. [kernel]
    (default {!Sim.default_kernel}) picks the arena or legacy delivery
    engine, exactly as in {!Sim.create}. *)

val graph : t -> Graph.t
(** The topology the session was created on. *)

val n : t -> int
(** Number of nodes (the graph's vertex count). *)

val rounds : t -> int
(** Rounds elapsed so far. *)

val words_sent : t -> int
(** Total words ever sent (message-complexity measure). *)

val recovery_rounds : t -> int
(** Always 0 — an in-process kernel has no workers to lose. *)

val default_width : int
(** 2 — same per-edge budget as {!Sim.default_width}. *)

val unicast : bool
(** [true] — per-edge budgets, like the clique kernels. *)

val exchange :
  ?width:int -> t -> (int * int array) list array -> (int * int array) list array
(** Same contract as {!Sim.exchange}, except messages must follow edges —
    raises {!Not_an_edge} otherwise. *)

val route :
  ?width:int -> t -> (int * int * int array) list -> (int * int array) list array
(** Same batching arithmetic as {!Sim.route}, but every [(src, dst)] pair
    must be an edge of the graph — raises {!Not_an_edge} otherwise. *)

val broadcast : ?width:int -> t -> int array array -> int array array
(** All-to-all in one round needs all-to-all links: raises {!Not_an_edge}
    unless the graph is complete, then behaves like {!Sim.broadcast}. *)

val charge : t -> int -> unit
(** Advance the round counter without communication ([r ≥ 0]). *)

val stats : t -> (string * int) list
(** The arena's [kernel.arena.*] counters; empty on the legacy kernel. *)

val bfs : t -> int -> int array
(** Distributed BFS by flooding — the generic {!Programs.Make} program run
    on this kernel; returns hop distances ([-1] unreached) and advances the
    round counter by exactly the eccentricity of the source — the [D] in
    every CONGEST bound. *)

val bellman_ford : t -> int -> float array
(** Distributed Bellman–Ford on the edge weights; [O(n)] rounds measured. *)

val diameter : Graph.t -> int
(** Hop diameter (oracle, not distributed): the [D] parameter of the
    reference formulas; [max_int] when disconnected. *)

(** {1 §1.1 reference round formulas}

    The CONGEST-model competitors the paper compares against. These are used
    by the model-comparison bench (E7b) to show that the clique algorithms
    are "clearly always faster" than their CONGEST counterparts, as §1.1
    argues. Constants are dropped, like every reference curve (DESIGN.md). *)

val fglp_laplacian_rounds : n:int -> d:int -> eps:float -> int
(** FGLP+21: [n^{o(1)}(√n + D)·log(1/ε)]. *)

val fglp_maxflow_rounds : n:int -> m:int -> d:int -> u:int -> int
(** FGLP+21: [Õ(m^{3/7}U^{1/7}(n^{o(1)}(√n+D) + √n·D^{1/4}) + √m)]. *)

val fglp_mcf_rounds : n:int -> m:int -> d:int -> w:int -> int
(** FGLP+21: [Õ(m^{3/7+o(1)}(√n·D^{1/4} + D)·polylog W)]. *)

val fv22_bcc_mcf_rounds : n:int -> int
(** FV22 Broadcast Congested Clique min-cost flow: [Õ(√n)] (randomized). *)
