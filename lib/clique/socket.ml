(* The multi-process clique: a coordinator drives CC_SHARDS worker
   processes over framed sockets (DESIGN.md §11, §14). Workers are
   re-execs of the current binary — OCaml 5 forbids [Unix.fork] in any
   process that ever spawned a domain, and the coordinator's domain pools
   must stay usable — diverted into [worker_main] by this module's
   initializer when [CC_SHARD_WORKER] is present, or externally-launched
   remote processes ([bin/cc_worker], or any linking binary started with
   [CC_SHARD_REMOTE_WORKER]) dialing the coordinator's TCP rendezvous.
   Partitioning, ordering, and error selection live in [Runtime.Shard];
   framing and links live in [Wire]; this module is the protocol:

     coordinator                     worker s
     -----------                     --------
     bootstrap: accept Hello (or assign a remote slot), then
     Config(epoch, live table)   ->  build the worker mesh
                                 <-  Ready(epoch)
     Exchange(phase,width,expect,
              own-source batch)  ->
                                     batches by dst shard,
                                     one Peer frame per ordered
                                     (s,u) pair with traffic   -> peers
                                     merge + sort by gidx,
                                     arena delivery
                                  <- Inboxes slice | WidthErr | PeerDown

   Every round is one frame per (coordinator, worker) direction plus at
   most one frame per ordered (shard, shard) pair with cross traffic —
   the shard-level analogue of Lenzen batching. Results are bit-identical
   to the in-process kernels: same inbox contents and order, same errors
   at the same message, same sanitizer transcripts (those are computed
   from outboxes above the transport).

   Supervision (DESIGN.md §14): every blocking wait is bounded by
   CC_SHARD_TIMEOUT, every frame carries the session epoch, and a worker
   death — EOF, a read/write timeout, or a PeerDown report from a
   survivor's mesh — is handled per CC_SHARD_POLICY. [Fail] raises
   [Runtime.Shard.Shard_down] as before. [Respawn] kills and replaces the
   dead worker (exponential backoff, bounded attempts), bumps the epoch,
   rebuilds the entire mesh with fresh sockets via a Config round — which
   also discards any half-written frames of the aborted round — and
   replays the interrupted operation from its retained input (the
   operation's own argument: arena delivery is stateless across rounds,
   so the replay is bit-identical). [Drain] marks the shard dead, merges
   its node range into a surviving neighbour (epoch-versioned
   [Shard.Partition]), reconfigures, and replays degraded. Frames from a
   dead incarnation carry a stale epoch and are skipped on receipt, never
   mistaken for current traffic. The aborted attempt is charged one round
   to the transport's [recovery_rounds] counter, which [Runtime.Make]
   routes to the "recovery" ledger phase. *)

module Frame = Wire.Frame
module Link = Wire.Link
module Shard = Runtime.Shard
module Mailbox = Runtime.Mailbox

let name = "clique+shard"

let default_width = 2

let unicast = true

(* ------------------------------------------------------- frame protocol *)

let k_exchange = 1

let k_peer = 2

let k_inboxes = 3

let k_error = 4

let k_bcast = 5

let k_bcast_ok = 6

let k_peer_down = 7

let k_shutdown = 8

let k_hello = 9

let k_config = 10

let k_ready = 11

let k_assign = 12

let k_heartbeat = 13

let k_heartbeat_ack = 14

let put_msg w (m : Shard.msg) =
  Frame.Writer.int w m.gidx;
  Frame.Writer.int w m.src;
  Frame.Writer.int w m.dst;
  Frame.Writer.int w (Array.length m.pay);
  Array.iter (Frame.Writer.int w) m.pay

let get_pay r len =
  let pay = Array.make len 0 in
  for i = 0 to len - 1 do
    pay.(i) <- Frame.Reader.int r
  done;
  pay

let get_msg r : Shard.msg =
  let gidx = Frame.Reader.int r in
  let src = Frame.Reader.int r in
  let dst = Frame.Reader.int r in
  let len = Frame.Reader.int r in
  { gidx; src; dst; pay = get_pay r len }

let put_batch w msgs =
  Frame.Writer.int w (List.length msgs);
  List.iter (put_msg w) msgs

let get_batch r =
  let count = Frame.Reader.int r in
  let acc = ref [] in
  for _ = 1 to count do
    acc := get_msg r :: !acc
  done;
  List.rev !acc

(* Accept one connection, waiting at most until [deadline]. *)
let accept_deadline ~deadline ~tcp ~peer fd =
  let rec wait () =
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then raise (Link.Timeout { peer; after = remaining })
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> raise (Link.Timeout { peer; after = remaining })
      | _ :: _, _, _ -> Link.of_fd ~peer (Link.accept ~tcp_nodelay:tcp fd)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

(* ------------------------------------------------------- the peer mesh *)

exception Peer_dead of int

exception Mesh_timeout of int list

type rx = {
  peer : int;
  mutable hdr : Frame.header option;
  mutable buf : Bytes.t;
  mutable off : int;
  mutable frame : Frame.t option;
}

type tx = { tpeer : int; tbuf : Bytes.t; mutable toff : int }

(* One round of worker-to-worker traffic: send every outgoing batch and
   receive one frame from every peer in [expect], interleaved through
   select so opposing bulk sends cannot deadlock on full socket buffers.
   Returns the received frames plus (bytes_sent, bytes_recv) for the
   wire.* counters. Raises [Peer_dead u] on EOF/EPIPE from peer [u], and
   [Mesh_timeout] naming the still-pending peers once [deadline] passes —
   a worker blocked on a dead peer always comes back to report it. *)
let mesh_exchange ~deadline ~(peers : Link.t option array) ~sends ~expect =
  let k = Array.length expect in
  let link u = match peers.(u) with Some l -> l | None -> assert false in
  let txs =
    List.map (fun (u, payload) -> { tpeer = u; tbuf = payload; toff = 0 }) sends
  in
  let txs = ref txs in
  let rxs =
    Array.init k (fun u ->
        if expect.(u) then
          Some
            {
              peer = u;
              hdr = None;
              buf = Bytes.create Frame.header_bytes;
              off = 0;
              frame = None;
            }
        else None)
  in
  let bytes_sent = ref 0 and bytes_recv = ref 0 in
  let rx_pending () =
    let l = ref [] in
    Array.iter
      (function
        | Some rx when rx.frame = None -> l := rx :: !l
        | Some _ | None -> ())
      rxs;
    !l
  in
  let advance_rx rx got =
    rx.off <- rx.off + got;
    if rx.off = Bytes.length rx.buf then begin
      match rx.hdr with
      | None ->
        let hdr = Frame.decode_header rx.buf in
        rx.hdr <- Some hdr;
        rx.buf <- Bytes.create hdr.Frame.len;
        rx.off <- 0;
        if hdr.Frame.len = 0 then rx.frame <- Some (Frame.verify hdr rx.buf)
      | Some hdr -> rx.frame <- Some (Frame.verify hdr rx.buf)
    end
  in
  let rec loop () =
    let pending_rx = rx_pending () in
    if !txs = [] && pending_rx = [] then ()
    else begin
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then
        raise (Mesh_timeout (List.map (fun rx -> rx.peer) pending_rx));
      let rfds = List.map (fun rx -> Link.fd (link rx.peer)) pending_rx in
      let wfds = List.map (fun tx -> Link.fd (link tx.tpeer)) !txs in
      match Unix.select rfds wfds [] remaining with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], [], _ ->
        raise (Mesh_timeout (List.map (fun rx -> rx.peer) pending_rx))
      | readable, writable, _ ->
        List.iter
          (fun tx ->
            if List.mem (Link.fd (link tx.tpeer)) writable then begin
              let remaining = Bytes.length tx.tbuf - tx.toff in
              match
                Unix.single_write (Link.fd (link tx.tpeer)) tx.tbuf tx.toff
                  remaining
              with
              | got ->
                tx.toff <- tx.toff + got;
                bytes_sent := !bytes_sent + got
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception
                  Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                raise (Peer_dead tx.tpeer)
            end)
          !txs;
        txs := List.filter (fun tx -> tx.toff < Bytes.length tx.tbuf) !txs;
        List.iter
          (fun rx ->
            if List.mem (Link.fd (link rx.peer)) readable then begin
              let remaining = Bytes.length rx.buf - rx.off in
              if remaining = 0 then advance_rx rx 0
              else
                match
                  Unix.read (Link.fd (link rx.peer)) rx.buf rx.off remaining
                with
                | 0 -> raise (Peer_dead rx.peer)
                | got ->
                  bytes_recv := !bytes_recv + got;
                  advance_rx rx got
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  raise (Peer_dead rx.peer)
            end)
          pending_rx;
        loop ()
    end
  in
  loop ();
  let received = ref [] and frames_recv = ref 0 in
  Array.iter
    (function
      | Some rx ->
        incr frames_recv;
        (match rx.frame with
        | Some f -> received := (rx.peer, f) :: !received
        | None -> assert false)
      | None -> ())
    rxs;
  let frames_sent = List.length sends in
  List.iter
    (fun (u, payload) ->
      Link.note_sent (link u) ~bytes:(Bytes.length payload) ~frames:1)
    sends;
  Array.iter
    (function
      | Some rx ->
        let l = link rx.peer in
        Link.note_recv l
          ~bytes:
            (Frame.header_bytes
            + match rx.hdr with Some h -> h.Frame.len | None -> 0)
          ~frames:1
      | None -> ())
    rxs;
  (List.rev !received, !bytes_sent, !bytes_recv, frames_sent, !frames_recv)

(* ------------------------------------------------------------ the worker *)

type wstate = {
  w : int;
  wn : int;
  wk : int;
  mutable epoch : int;
  mutable lo : int;
  mutable hi : int;
  mutable wowner : int array;
  mutable walive : bool array;
  coord : Link.t;
  mutable peers : Link.t option array;
  mesh_fd : Unix.file_descr;
  tcp : bool;
  wtimeout : float;
  arena : Runtime.Arena.t;
  pool : Runtime.Pool.t;
}

(* Inbox slices, encoded in parallel over the worker's domain pool: per
   destination sizes are computed first, offsets prefix-summed, and each
   chunk writes only its own byte range — deterministic bytes for any
   CC_DOMAINS. Layout: [stats:4 ints][slice count][per dst: count, then
   (src, len, words) per entry in inbox-list order]. *)
let encode_reply ~pool ~stats slices =
  let m = Array.length slices in
  let entry_size l =
    List.fold_left (fun a (_, p) -> a + 16 + (8 * Array.length p)) 8 l
  in
  let offs = Array.make (m + 1) (8 * 5) in
  Array.iteri (fun i l -> offs.(i + 1) <- offs.(i) + entry_size l) slices;
  let buf = Bytes.create offs.(m) in
  let bs, br, fs, fr = stats in
  Bytes.set_int64_le buf 0 (Int64.of_int bs);
  Bytes.set_int64_le buf 8 (Int64.of_int br);
  Bytes.set_int64_le buf 16 (Int64.of_int fs);
  Bytes.set_int64_le buf 24 (Int64.of_int fr);
  Bytes.set_int64_le buf 32 (Int64.of_int m);
  Runtime.Pool.run pool ~n:m (fun clo chi ->
      for d = clo to chi - 1 do
        let p = ref offs.(d) in
        let put v =
          Bytes.set_int64_le buf !p (Int64.of_int v);
          p := !p + 8
        in
        put (List.length slices.(d));
        List.iter
          (fun (src, pay) ->
            put src;
            put (Array.length pay);
            Array.iter put pay)
          slices.(d)
      done);
  buf

(* Worker replies are deadline-bounded: a coordinator that stopped reading
   makes the worker exit (and be supervised) instead of wedging. *)
let reply st ~kind ~seq payload =
  Link.send
    ~deadline:(Unix.gettimeofday () +. st.wtimeout)
    st.coord
    { Frame.kind; src = st.w; dst = -1; seq; epoch = st.epoch; payload }

let overflow_payload (o : Shard.overflow) =
  let w = Frame.Writer.create ~hint:64 () in
  Frame.Writer.int w o.gidx;
  Frame.Writer.int w o.src;
  Frame.Writer.int w o.dst;
  Frame.Writer.int w o.words;
  Frame.Writer.int w o.width;
  Frame.Writer.contents w

(* Report dead or unresponsive mesh peers to the coordinator — the worker
   itself stays alive and waits for the recovery Config. *)
let report_down st ~seq suspects =
  let w = Frame.Writer.create ~hint:32 () in
  Frame.Writer.int w (List.length suspects);
  List.iter (Frame.Writer.int w) suspects;
  reply st ~kind:k_peer_down ~seq (Frame.Writer.contents w)

let handle_exchange st (f : Frame.t) =
  if f.epoch < st.epoch then true (* stale frame from before a recovery *)
  else begin
    let r = Frame.Reader.of_bytes f.payload in
    let phase = Frame.Reader.string r in
    let width = Frame.Reader.int r in
    let mask = Frame.Reader.int r in
    let msgs = get_batch r in
    Mailbox.set_context phase;
    let parts = Shard.partition_by_dst ~owner:st.wowner ~shards:st.wk msgs in
    let sends = ref [] in
    for u = st.wk - 1 downto 0 do
      if u <> st.w && parts.(u) <> [] then begin
        let w = Frame.Writer.create ~hint:256 () in
        put_batch w parts.(u);
        let frame =
          { Frame.kind = k_peer; src = st.w; dst = u; seq = f.seq;
            epoch = st.epoch; payload = Frame.Writer.contents w }
        in
        sends := (u, Frame.encode frame) :: !sends
      end
    done;
    let expect = Array.init st.wk (fun u -> mask land (1 lsl u) <> 0) in
    let deadline = Unix.gettimeofday () +. st.wtimeout in
    match mesh_exchange ~deadline ~peers:st.peers ~sends:!sends ~expect with
    | exception Peer_dead u ->
      report_down st ~seq:f.seq [ u ];
      true
    | exception Mesh_timeout us ->
      report_down st ~seq:f.seq us;
      true
    | received, bytes_sent, bytes_recv, frames_sent, frames_recv -> (
      let stale =
        List.filter_map
          (fun (u, (pf : Frame.t)) ->
            if pf.epoch <> st.epoch then Some u else None)
          received
      in
      if stale <> [] then begin
        report_down st ~seq:f.seq stale;
        true
      end
      else begin
        let peer_lists =
          List.map
            (fun (_, (pf : Frame.t)) ->
              get_batch (Frame.Reader.of_bytes pf.payload))
            received
        in
        let inbound = Shard.merge_inbound (parts.(st.w) :: peer_lists) in
        (match
           Shard.deliver_local ~arena:st.arena ~n:st.wn ~width ~lo:st.lo
             ~hi:st.hi inbound
         with
        | Shard.Overflow o ->
          reply st ~kind:k_error ~seq:f.seq (overflow_payload o)
        | Shard.Inboxes slices ->
          let payload =
            encode_reply ~pool:st.pool
              ~stats:(bytes_sent, bytes_recv, frames_sent, frames_recv)
              slices
          in
          reply st ~kind:k_inboxes ~seq:f.seq payload);
        true
      end)
  end

let handle_bcast st (f : Frame.t) =
  if f.epoch < st.epoch then true
  else begin
    let r = Frame.Reader.of_bytes f.payload in
    let phase = Frame.Reader.string r in
    let width = Frame.Reader.int r in
    let lo = Frame.Reader.int r in
    let count = Frame.Reader.int r in
    Mailbox.set_context phase;
    let values = Array.make count [||] in
    for i = 0 to count - 1 do
      values.(i) <- get_pay r (Frame.Reader.int r)
    done;
    let error = ref None in
    (try
       Array.iteri
         (fun i pay ->
           let w = Array.length pay in
           if w > width then begin
             error :=
               Some
                 { Shard.gidx = lo + i; src = lo + i; dst = -1; words = w;
                   width };
             raise Exit
           end)
         values
     with Exit -> ());
    (match !error with
    | Some o -> reply st ~kind:k_error ~seq:f.seq (overflow_payload o)
    | None ->
      let w = Frame.Writer.create ~hint:256 () in
      Frame.Writer.int w count;
      Array.iter
        (fun pay ->
          Frame.Writer.int w (Array.length pay);
          Array.iter (Frame.Writer.int w) pay)
        values;
      reply st ~kind:k_bcast_ok ~seq:f.seq (Frame.Writer.contents w));
    true
  end

(* A Config frame (re)builds the whole session view: epoch, the live
   table, every live worker's node range and mesh address. The worker
   closes all peer links — discarding any half-received frames of an
   aborted round — and re-forms the mesh with fresh sockets: connect to
   every lower live shard, accept every higher live one, all bounded by
   the session timeout. A stale hello from a previous epoch is dropped
   and the accept retried. *)
let handle_config st (f : Frame.t) =
  let r = Frame.Reader.of_bytes f.payload in
  let epoch = Frame.Reader.int r in
  if epoch < st.epoch then true
  else begin
    let alive = Array.make st.wk false in
    let ranges = Array.make st.wk (0, 0) in
    let addrs = Array.make st.wk "" in
    for u = 0 to st.wk - 1 do
      alive.(u) <- Frame.Reader.int r = 1;
      let lo = Frame.Reader.int r in
      let hi = Frame.Reader.int r in
      ranges.(u) <- (lo, hi);
      addrs.(u) <- Frame.Reader.string r
    done;
    if not alive.(st.w) then failwith "shard worker: configured as dead";
    Array.iter (function Some l -> Link.close l | None -> ()) st.peers;
    st.epoch <- epoch;
    st.walive <- alive;
    let lo, hi = ranges.(st.w) in
    st.lo <- lo;
    st.hi <- hi;
    let owner = Array.make st.wn (-1) in
    Array.iteri
      (fun u (ulo, uhi) ->
        if alive.(u) then
          for v = ulo to uhi - 1 do
            owner.(v) <- u
          done)
      ranges;
    st.wowner <- owner;
    let peers = Array.make st.wk None in
    let dial_peer u =
      let addr = addrs.(u) in
      let l =
        if String.starts_with ~prefix:"unix:" addr then
          Link.of_fd
            ~peer:(Printf.sprintf "shard%d" u)
            (Link.connect_unix (String.sub addr 5 (String.length addr - 5)))
        else
          Link.of_fd
            ~peer:(Printf.sprintf "shard%d" u)
            (Link.connect (String.sub addr 4 (String.length addr - 4)))
      in
      Link.send
        ~deadline:(Unix.gettimeofday () +. st.wtimeout)
        l
        { Frame.kind = k_hello; src = st.w; dst = u; seq = 0;
          epoch = st.epoch; payload = Bytes.create 0 };
      peers.(u) <- Some l
    in
    for u = 0 to st.w - 1 do
      if alive.(u) then dial_peer u
    done;
    let higher = ref 0 in
    for u = st.w + 1 to st.wk - 1 do
      if alive.(u) then incr higher
    done;
    let deadline = Unix.gettimeofday () +. st.wtimeout in
    let accepted = ref 0 in
    while !accepted < !higher do
      let l = accept_deadline ~deadline ~tcp:st.tcp ~peer:"shard" st.mesh_fd in
      match Link.recv ~deadline l with
      | exception (Link.Closed _ | Frame.Malformed _ | Link.Timeout _) ->
        Link.close l
      | h ->
        if h.Frame.epoch < st.epoch then Link.close l (* dead incarnation *)
        else if
          h.Frame.kind <> k_hello
          || h.Frame.src <= st.w
          || h.Frame.src >= st.wk
          || (not st.walive.(h.Frame.src))
          || Option.is_some peers.(h.Frame.src)
        then failwith "shard worker: bad mesh hello"
        else begin
          peers.(h.Frame.src) <- Some l;
          incr accepted
        end
    done;
    st.peers <- peers;
    reply st ~kind:k_ready ~seq:f.seq (Bytes.create 0);
    true
  end

let handle_heartbeat st (f : Frame.t) =
  reply st ~kind:k_heartbeat_ack ~seq:f.seq (Bytes.create 0);
  true

let worker_serve st =
  let continue = ref true in
  while !continue do
    match Link.recv st.coord with
    | exception Link.Closed _ -> continue := false
    | f ->
      if f.Frame.kind = k_shutdown then continue := false
      else if f.Frame.kind = k_exchange then continue := handle_exchange st f
      else if f.Frame.kind = k_bcast then continue := handle_bcast st f
      else if f.Frame.kind = k_config then continue := handle_config st f
      else if f.Frame.kind = k_heartbeat then continue := handle_heartbeat st f
      else begin
        Printf.eprintf "shard worker %d: unexpected frame kind %d\n%!" st.w
          f.Frame.kind;
        continue := false
      end
  done

(* ----------------------------------------------------- worker bootstrap *)

(* A spawned worker process is a re-exec of the current binary, started by
   the coordinator with CC_SHARD_WORKER="<shard>/<shards>/<n>/<epoch>/<addr>"
   in its environment; this module's initializer (bottom of file) diverts
   into [worker_main] before the program's own entry point ever runs. A
   remote worker is any process that calls [remote_worker addr] (the
   [cc_worker] launcher, or the CC_SHARD_REMOTE_WORKER diversion): it
   dials the coordinator, sends a hello with src = -1, and is assigned a
   reserved slot. *)

let dial addr ~peer =
  if String.starts_with ~prefix:"unix:" addr then
    Link.of_fd ~peer
      (Link.connect_unix (String.sub addr 5 (String.length addr - 5)))
  else if String.starts_with ~prefix:"tcp:" addr then
    Link.of_fd ~peer (Link.connect (String.sub addr 4 (String.length addr - 4)))
  else invalid_arg (Printf.sprintf "Socket: bad rendezvous address %S" addr)

let parse_spec spec =
  match String.split_on_char '/' spec with
  | s :: k :: n :: e :: rest when rest <> [] -> (
    match
      ( int_of_string_opt s,
        int_of_string_opt k,
        int_of_string_opt n,
        int_of_string_opt e )
    with
    | Some s, Some k, Some n, Some e -> (s, k, n, e, String.concat "/" rest)
    | _ -> failwith "CC_SHARD_WORKER: malformed spec")
  | _ -> failwith "CC_SHARD_WORKER: malformed spec"

(* The worker's own mesh listener. For TCP it binds the local address the
   coordinator connection runs over (correct on any host, remote
   included); for Unix-domain sessions, a per-shard path derived from the
   coordinator's. It stays open for the whole worker life — recovery
   Configs rebuild the mesh through it. *)
let mesh_listener ~coord ~coord_addr ~tag =
  if String.starts_with ~prefix:"tcp:" coord_addr then begin
    let host =
      match Unix.getsockname (Link.fd coord) with
      | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
      | Unix.ADDR_UNIX _ -> "127.0.0.1"
    in
    let fd = Link.listen (host ^ ":0") in
    let port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> 0
    in
    (fd, Printf.sprintf "tcp:%s:%d" host port, None, true)
  end
  else begin
    let path =
      Printf.sprintf "%s-%s"
        (String.sub coord_addr 5 (String.length coord_addr - 5))
        tag
    in
    (Link.listen_unix path, "unix:" ^ path, Some path, false)
  end

let worker_state ~s ~k ~n ~epoch ~coord ~mesh_fd ~tcp =
  {
    w = s;
    wn = n;
    wk = k;
    epoch;
    lo = 0;
    hi = 0;
    wowner = [||];
    walive = Array.make k true;
    coord;
    peers = Array.make k None;
    mesh_fd;
    tcp;
    wtimeout = Shard.default_timeout ();
    arena = Runtime.Arena.create ~n ();
    pool = Runtime.Pool.get (Runtime.Pool.default_domains ());
  }

let worker_boot spec =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let s, k, n, epoch, coord_addr = parse_spec spec in
  let coord = dial coord_addr ~peer:"coordinator" in
  let mesh_fd, mesh_addr, _mesh_path =
    let fd, a, p, _ =
      mesh_listener ~coord ~coord_addr ~tag:(Printf.sprintf "m%d" s)
    in
    (fd, a, p)
  in
  let tcp = String.starts_with ~prefix:"tcp:" coord_addr in
  let hello = Frame.Writer.create ~hint:64 () in
  Frame.Writer.string hello mesh_addr;
  Link.send coord
    { Frame.kind = k_hello; src = s; dst = -1; seq = 0; epoch;
      payload = Frame.Writer.contents hello };
  worker_serve (worker_state ~s ~k ~n ~epoch ~coord ~mesh_fd ~tcp)

(* Never returns: a worker leaves with [Unix._exit] so the parent's at_exit
   hooks (session closes, pool joins, channel flushes) stay the parent's. *)
let worker_main spec =
  match worker_boot spec with
  | () -> Unix._exit 0
  | exception e ->
    Printf.eprintf "shard worker: %s\n%!" (Printexc.to_string e);
    Unix._exit 1

let remote_boot addr =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let coord_addr =
    if
      String.starts_with ~prefix:"tcp:" addr
      || String.starts_with ~prefix:"unix:" addr
    then addr
    else "tcp:" ^ addr
  in
  (* A remote worker may legitimately start before its coordinator binds
     the rendezvous: retry refused dials until the session timeout. *)
  let coord =
    let deadline = Unix.gettimeofday () +. Shard.default_timeout () in
    let rec go () =
      match dial coord_addr ~peer:"coordinator" with
      | l -> l
      | exception
          Unix.Unix_error
            ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ETIMEDOUT), _, _)
        when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        go ()
    in
    go ()
  in
  let mesh_fd, mesh_addr, _mesh_path =
    let fd, a, p, _ =
      mesh_listener ~coord ~coord_addr
        ~tag:(Printf.sprintf "r%d" (Unix.getpid ()))
    in
    (fd, a, p)
  in
  let tcp = String.starts_with ~prefix:"tcp:" coord_addr in
  let hello = Frame.Writer.create ~hint:64 () in
  Frame.Writer.string hello mesh_addr;
  Link.send coord
    { Frame.kind = k_hello; src = -1; dst = -1; seq = 0; epoch = 0;
      payload = Frame.Writer.contents hello };
  let deadline = Unix.gettimeofday () +. Shard.default_timeout () in
  let a = Link.recv ~deadline coord in
  if a.Frame.kind <> k_assign then
    failwith "remote worker: expected an Assign frame";
  let r = Frame.Reader.of_bytes a.Frame.payload in
  let s = Frame.Reader.int r in
  let k = Frame.Reader.int r in
  let n = Frame.Reader.int r in
  let epoch = Frame.Reader.int r in
  worker_serve (worker_state ~s ~k ~n ~epoch ~coord ~mesh_fd ~tcp)

let remote_worker addr =
  match remote_boot addr with
  | () -> Unix._exit 0
  | exception e ->
    Printf.eprintf "shard remote worker: %s\n%!" (Printexc.to_string e);
    Unix._exit 1

(* ------------------------------------------------------ the coordinator *)

type state = Live | Down of int * string | Closed

type t = {
  n : int;
  k : int;
  tcp : bool;
  addr_str : string;
  lfd : Unix.file_descr;  (** stays open: respawns and remote joins dial it *)
  lpath : string option;
  policy : Shard.policy;
  timeout : float;
  hb_interval : float;
  max_respawns : int;
  backoff : float;
  remote : int;  (** slots [k - remote, k) are externally launched *)
  log : out_channel option;
  mutable part : Shard.Partition.t;
  mutable owner : int array;
  links : Link.t option array;
  addrs : string array;
  pids : int array;  (** -1 = remote or reaped *)
  mutable seq : int;
  mutable rounds : int;
  mutable recovery_rounds : int;
  mutable words_sent : int;
  mutable peer_bytes_sent : int;
  mutable peer_bytes_recv : int;
  mutable peer_frames : int;
  mutable crossings : int;
  mutable respawns : int;
  mutable drains : int;
  mutable deaths : int;
  mutable hb_sent : int;
  mutable hb_acked : int;
  mutable hb_missed : int;
  mutable last_hb : float;
  mutable state : state;
}

(* Worker deaths detected mid-operation; caught only by the supervisor
   loop below, which recovers per policy and replays. *)
exception Dead_workers of int list

exception Bandwidth_exceeded = Mailbox.Bandwidth_exceeded

let n t = t.n

let shards t = t.k

let pids t = Array.to_list t.pids

let rounds t = t.rounds

let recovery_rounds t = t.recovery_rounds

let words_sent t = t.words_sent

let epoch t = Shard.Partition.epoch t.part

let live_workers t = Shard.Partition.live t.part

let policy t = t.policy

let logf t fmt =
  Printf.ksprintf
    (fun line ->
      match t.log with
      | None -> ()
      | Some oc ->
        Printf.fprintf oc "[cc-shard %.3f epoch=%d] %s\n%!"
          (Unix.gettimeofday ()) (epoch t) line)
    fmt

(* Coordinator-side session registry. Sessions are created, closed and
   reaped on the coordinator's main domain only — the domain pool fans
   node-step closures, never session lifecycle — so the plain ref is
   race-free by construction (cc_lint L11 markers below record that
   invariant at each write). *)
let live : t list ref = ref []

let sigpipe_ignored = Atomic.make false

let reap_slot t s =
  (match t.links.(s) with
  | Some l ->
    Link.close l;
    t.links.(s) <- None
  | None -> ());
  if t.pids.(s) > 0 then begin
    (try Unix.kill t.pids.(s) Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] t.pids.(s)) with Unix.Unix_error _ -> ());
    t.pids.(s) <- -1
  end

let close_listener t =
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  match t.lpath with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ()

let reap_all t =
  for s = 0 to t.k - 1 do
    reap_slot t s
  done;
  close_listener t

let close t =
  match t.state with
  | Closed -> ()
  | Down _ ->
    t.state <- Closed;
    live := List.filter (fun s -> s != t) !live; (* cc_lint: allow L11 — main-domain-only session registry *)
    (match t.log with Some oc -> close_out_noerr oc | None -> ())
  | Live ->
    t.state <- Closed;
    live := List.filter (fun s -> s != t) !live; (* cc_lint: allow L11 — main-domain-only session registry *)
    Array.iter
      (function
        | Some l -> (
          try
            Link.send
              ~deadline:(Unix.gettimeofday () +. t.timeout)
              l
              { Frame.kind = k_shutdown; src = -1; dst = 0; seq = 0;
                epoch = epoch t; payload = Bytes.create 0 }
          with Link.Closed _ | Link.Timeout _ | Unix.Unix_error _ -> ())
        | None -> ())
      t.links;
    Array.iter (function Some l -> Link.close l | None -> ()) t.links;
    Array.iter
      (fun pid ->
        if pid > 0 then
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      t.pids;
    close_listener t;
    (match t.log with Some oc -> close_out_noerr oc | None -> ())

let shutdown_all () = List.iter close !live

let exit_hook_registered = Atomic.make false

(* Recovery failed (or the policy is fail-stop): kill and reap the whole
   family, then surface the structured error — callers never hang on a
   dead shard. *)
let session_down t ~shard ~during =
  logf t "session down: shard %d during %s" shard during;
  t.state <- Down (shard, during);
  reap_all t;
  (match t.log with Some oc -> close_out_noerr oc | None -> ());
  raise (Shard.Shard_down { shard; round = t.rounds; during })

let ensure_live t during =
  match t.state with
  | Live -> ()
  | Down (shard, _) ->
    raise (Shard.Shard_down { shard; round = t.rounds; during })
  | Closed -> raise (Shard.Shard_down { shard = -1; round = t.rounds; during })

let env_addr = "CC_SHARD_ADDR"

let env_worker = "CC_SHARD_WORKER"

let env_remote = "CC_SHARD_REMOTE"

let env_remote_worker = "CC_SHARD_REMOTE_WORKER"

let env_heartbeat = "CC_SHARD_HEARTBEAT"

let env_log = "CC_SHARD_LOG"

let env_respawns = "CC_SHARD_RESPAWNS"

let env_backoff = "CC_SHARD_BACKOFF"

(* The environment of a spawned worker: the parent's, with the worker spec
   pinned and the effective domain count made explicit ([Pool.set_default]
   forcings do not survive the exec). *)
let child_env spec =
  let skip e =
    String.starts_with ~prefix:(env_worker ^ "=") e
    || String.starts_with ~prefix:(env_remote_worker ^ "=") e
    || String.starts_with ~prefix:(Runtime.Pool.env_var ^ "=") e
  in
  Array.of_list
    (List.filter (fun e -> not (skip e)) (Array.to_list (Unix.environment ()))
    @ [
        Printf.sprintf "%s=%s" env_worker spec;
        Printf.sprintf "%s=%d" Runtime.Pool.env_var
          (Runtime.Pool.default_domains ());
      ])

let spawn_worker ~addr_str ~k ~n ~epoch s =
  Unix.create_process_env Sys.executable_name [| Sys.executable_name |]
    (child_env (Printf.sprintf "%d/%d/%d/%d/%s" s k n epoch addr_str))
    Unix.stdin Unix.stdout Unix.stderr

let session_counter = ref 0

(* -------------------------------------------- coordinator-side protocol *)

(* Read the next current-epoch frame from slot [s]: frames stamped with an
   older epoch are late traffic from before a recovery event — skipped,
   never interpreted. *)
let rec recv_current t ~deadline s =
  let l = match t.links.(s) with Some l -> l | None -> assert false in
  let f = Link.recv ~deadline l in
  if f.Frame.epoch < epoch t then recv_current t ~deadline s else f

let config_payload t =
  let w = Frame.Writer.create ~hint:256 () in
  Frame.Writer.int w (epoch t);
  for s = 0 to t.k - 1 do
    Frame.Writer.int w (if Shard.Partition.alive t.part s then 1 else 0);
    let lo, hi = Shard.Partition.bounds t.part s in
    Frame.Writer.int w lo;
    Frame.Writer.int w hi;
    Frame.Writer.string w t.addrs.(s)
  done;
  Frame.Writer.contents w

(* Push the current partition to every live worker and await their Ready
   frames. Returns the slots that failed to confirm — newly dead, to be
   handled by the caller's policy loop. *)
let reconfig t =
  let payload = config_payload t in
  let e = epoch t in
  let newly = ref [] in
  let lives = Shard.Partition.live_list t.part in
  List.iter
    (fun s ->
      match t.links.(s) with
      | None -> newly := s :: !newly
      | Some l -> (
        match
          Link.send
            ~deadline:(Unix.gettimeofday () +. t.timeout)
            l
            { Frame.kind = k_config; src = -1; dst = s; seq = 0; epoch = e;
              payload }
        with
        | () -> ()
        | exception (Link.Closed _ | Link.Timeout _) ->
          newly := s :: !newly))
    lives;
  if !newly = [] then begin
    (* Workers stuck in an aborted round's mesh only read the Config after
       their own mesh timeout fires — allow for both waits. *)
    let deadline = Unix.gettimeofday () +. (2.0 *. t.timeout) +. 1.0 in
    List.iter
      (fun s ->
        match recv_current t ~deadline s with
        | exception (Link.Closed _ | Link.Timeout _ | Frame.Malformed _) ->
          newly := s :: !newly
        | f -> if f.Frame.kind <> k_ready then newly := s :: !newly)
      lives
  end;
  List.sort_uniq compare !newly

(* Await hello frames (and assign remote slots) for the slot set [want] on
   the session listener. Used both at bootstrap and by respawn. Raises
   [Dead_workers] naming the still-missing slots on any failure — the
   caller cleans up or retries. The per-connection recv is bounded too: a
   client that connects but never sends its hello cannot wedge the
   rendezvous (it burns at most the remaining deadline, then fails it). *)
let await_hellos t ~deadline want =
  let missing = ref want in
  let fail () = raise (Dead_workers !missing) in
  let dead_child () =
    List.exists
      (fun s ->
        t.pids.(s) > 0
        &&
        match Unix.waitpid [ Unix.WNOHANG ] t.pids.(s) with
        | 0, _ -> false
        | _ -> true
        | exception Unix.Unix_error _ -> true)
      !missing
  in
  while !missing <> [] do
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then fail ();
    match Unix.select [ t.lfd ] [] [] (Float.min remaining 0.25) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> if dead_child () then fail ()
    | _ :: _, _, _ -> (
      let l = Link.of_fd ~peer:"worker" (Link.accept ~tcp_nodelay:t.tcp t.lfd) in
      match Link.recv ~deadline l with
      | exception (Link.Closed _ | Frame.Malformed _ | Link.Timeout _) ->
        Link.close l;
        fail ()
      | h ->
        let accept_slot s =
          t.addrs.(s) <-
            Frame.Reader.string (Frame.Reader.of_bytes h.Frame.payload);
          t.links.(s) <- Some l;
          missing := List.filter (fun u -> u <> s) !missing
        in
        if
          h.Frame.kind = k_hello
          && h.Frame.src >= 0
          && h.Frame.src < t.k - t.remote
          && List.mem h.Frame.src !missing
        then accept_slot h.Frame.src
        else if h.Frame.kind = k_hello && h.Frame.src = -1 then begin
          (* an external worker: assign the lowest waiting remote slot *)
          match List.filter (fun s -> s >= t.k - t.remote) !missing with
          | [] ->
            Link.close l;
            fail ()
          | s :: _ -> (
            let w = Frame.Writer.create ~hint:64 () in
            Frame.Writer.int w s;
            Frame.Writer.int w t.k;
            Frame.Writer.int w t.n;
            Frame.Writer.int w (epoch t);
            match
              Link.send ~deadline l
                { Frame.kind = k_assign; src = -1; dst = s; seq = 0;
                  epoch = epoch t; payload = Frame.Writer.contents w }
            with
            | () -> accept_slot s
            | exception (Link.Closed _ | Link.Timeout _) ->
              Link.close l;
              fail ())
        end
        else begin
          Link.close l;
          fail ()
        end)
  done

(* ------------------------------------------------------------- recovery *)

(* Policy-driven recovery from the death of [dead] workers. On return the
   session is reconfigured at a fresh epoch and the interrupted operation
   can be replayed; on failure the session is down (raises Shard_down). *)
let rec recover t ~during dead =
  let dead =
    List.sort_uniq compare
      (List.filter (fun s -> Shard.Partition.alive t.part s) dead)
  in
  match dead with
  | [] -> ()
  | first :: _ -> (
    t.deaths <- t.deaths + List.length dead;
    logf t "worker death: shards [%s] during %s (policy %s)"
      (String.concat "," (List.map string_of_int dead))
      during
      (Shard.policy_to_string t.policy);
    match t.policy with
    | Shard.Fail -> session_down t ~shard:first ~during
    | Shard.Drain ->
      List.iter (reap_slot t) dead;
      let part =
        List.fold_left
          (fun p d ->
            match Shard.Partition.drain p d with
            | p -> p
            | exception Invalid_argument _ ->
              session_down t ~shard:d ~during)
          t.part dead
      in
      t.part <- part;
      t.owner <- Shard.Partition.owners part;
      t.drains <- t.drains + List.length dead;
      logf t "drained shards [%s]; %d live"
        (String.concat "," (List.map string_of_int dead))
        (Shard.Partition.live t.part);
      (match reconfig t with
      | [] -> ()
      | newly -> recover t ~during newly)
    | Shard.Respawn -> respawn_loop t ~during dead 0)

and respawn_loop t ~during dead attempt =
  match dead with
  | [] -> ()
  | first :: _ ->
    if attempt > t.max_respawns then begin
      logf t "respawn attempts exhausted for shards [%s]"
        (String.concat "," (List.map string_of_int dead));
      session_down t ~shard:first ~during
    end;
    if attempt > 0 then begin
      let pause = t.backoff *. (2.0 ** float_of_int (attempt - 1)) in
      logf t "respawn attempt %d for shards [%s], backoff %.3fs" attempt
        (String.concat "," (List.map string_of_int dead))
        pause;
      Unix.sleepf pause
    end;
    List.iter (reap_slot t) dead;
    t.part <- Shard.Partition.bump t.part;
    let e = epoch t in
    List.iter
      (fun s ->
        if s < t.k - t.remote then
          t.pids.(s) <-
            spawn_worker ~addr_str:t.addr_str ~k:t.k ~n:t.n ~epoch:e s)
      dead;
    let deadline = Unix.gettimeofday () +. t.timeout in
    (match await_hellos t ~deadline dead with
    | () -> (
      t.respawns <- t.respawns + List.length dead;
      logf t "respawned shards [%s]"
        (String.concat "," (List.map string_of_int dead));
      match reconfig t with
      | [] -> ()
      | newly ->
        List.iter (reap_slot t) newly;
        respawn_loop t ~during
          (List.sort_uniq compare (newly @ dead))
          (attempt + 1))
    | exception Dead_workers missing ->
      respawn_loop t ~during
        (List.sort_uniq compare (missing @ dead))
        (attempt + 1))

(* The supervisor: run one operation attempt, and on worker death recover
   per policy, charge the aborted attempt to the recovery counter, and
   replay from the operation's retained input (its argument — nothing
   else carries state across rounds). *)
let rec supervised t ~during attempt =
  ensure_live t during;
  match attempt () with
  | v -> v
  | exception Dead_workers dead ->
    recover t ~during dead;
    t.rounds <- t.rounds + 1;
    t.recovery_rounds <- t.recovery_rounds + 1;
    logf t "replaying %s (round %d charged to recovery)" during t.rounds;
    supervised t ~during attempt

(* ------------------------------------------------------------ heartbeat *)

let heartbeat t =
  ensure_live t "heartbeat";
  t.seq <- t.seq + 1;
  let e = epoch t in
  let lives = Shard.Partition.live_list t.part in
  let dead = ref [] in
  List.iter
    (fun s ->
      match t.links.(s) with
      | None -> dead := s :: !dead
      | Some l -> (
        t.hb_sent <- t.hb_sent + 1;
        match
          Link.send
            ~deadline:(Unix.gettimeofday () +. t.timeout)
            l
            { Frame.kind = k_heartbeat; src = -1; dst = s; seq = t.seq;
              epoch = e; payload = Bytes.create 0 }
        with
        | () -> ()
        | exception (Link.Closed _ | Link.Timeout _) -> dead := s :: !dead))
    lives;
  if !dead = [] then begin
    let deadline = Unix.gettimeofday () +. (2.0 *. t.timeout) +. 1.0 in
    List.iter
      (fun s ->
        if not (List.mem s !dead) then
          match recv_current t ~deadline s with
          | exception (Link.Closed _ | Link.Timeout _ | Frame.Malformed _) ->
            dead := s :: !dead
          | f ->
            if f.Frame.kind = k_heartbeat_ack && f.Frame.seq = t.seq then
              t.hb_acked <- t.hb_acked + 1
            else dead := s :: !dead)
      lives
  end;
  match !dead with
  | [] -> ()
  | d ->
    t.hb_missed <- t.hb_missed + List.length d;
    logf t "heartbeat missed by shards [%s]"
      (String.concat "," (List.map string_of_int d));
    recover t ~during:"heartbeat" d

let maybe_heartbeat t =
  if t.hb_interval > 0.0 then begin
    let now = Unix.gettimeofday () in
    if now -. t.last_hb >= t.hb_interval then begin
      t.last_hb <- now;
      heartbeat t
    end
  end

(* ------------------------------------------------------------- creation *)

let getenv_float var =
  match Sys.getenv_opt var with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some x when x >= 0.0 -> Some x
    | _ -> None)
  | None -> None

let getenv_int var =
  match Sys.getenv_opt var with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some x when x >= 0 -> Some x
    | _ -> None)
  | None -> None

let create ?shards:requested ?addr ?remote ?policy ?timeout ?heartbeat
    ?max_respawns ?backoff ?log n =
  if n <= 0 then invalid_arg "Socket.create: need n > 0";
  let k =
    let r =
      match requested with Some k -> max 1 k | None -> Shard.default_shards ()
    in
    min r n
  in
  if k > 62 then invalid_arg "Socket.create: at most 62 shards";
  let policy = match policy with Some p -> p | None -> Shard.default_policy () in
  let timeout =
    match timeout with Some x when x > 0.0 -> x | _ -> Shard.default_timeout ()
  in
  let remote =
    let r =
      match remote with
      | Some r -> max 0 r
      | None -> ( match getenv_int env_remote with Some r -> r | None -> 0)
    in
    min r k
  in
  let hb_interval =
    match heartbeat with
    | Some x -> Float.max 0.0 x
    | None -> (
      match getenv_float env_heartbeat with Some x -> x | None -> 0.0)
  in
  let max_respawns =
    match max_respawns with
    | Some r -> max 0 r
    | None -> ( match getenv_int env_respawns with Some r -> r | None -> 3)
  in
  let backoff =
    match backoff with
    | Some b -> Float.max 0.0 b
    | None -> (
      match getenv_float env_backoff with Some b -> b | None -> 0.2)
  in
  let log =
    match log with
    | Some p -> Some p
    | None -> Sys.getenv_opt env_log
  in
  if not (Atomic.exchange sigpipe_ignored true) then
    if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = match addr with Some a -> Some a | None -> Sys.getenv_opt env_addr in
  if remote > 0 && addr = None then
    invalid_arg
      "Socket.create: remote workers need a TCP rendezvous (CC_SHARD_ADDR)";
  let lfd, addr_str, lpath =
    match addr with
    | None ->
      incr session_counter; (* cc_lint: allow L11 — sessions are created on the main domain only *)
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "cc-wire-%d-%d" (Unix.getpid ()) !session_counter)
      in
      (Link.listen_unix path, "unix:" ^ path, Some path)
    | Some a ->
      let fd = Link.listen a in
      let host, _ = Link.parse_addr a in
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> 0
      in
      (fd, Printf.sprintf "tcp:%s:%d" host port, None)
  in
  let log_oc =
    match log with
    | None -> None
    | Some path -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc -> Some oc
      | exception Sys_error _ -> None)
  in
  let t =
    {
      n;
      k;
      tcp = addr <> None;
      addr_str;
      lfd;
      lpath;
      policy;
      timeout;
      hb_interval;
      max_respawns;
      backoff;
      remote;
      log = log_oc;
      part = Shard.Partition.create ~shards:k ~n;
      owner = Shard.owners ~shards:k ~n;
      links = Array.make k None;
      addrs = Array.make k "";
      pids = Array.make k (-1);
      seq = 0;
      rounds = 0;
      recovery_rounds = 0;
      words_sent = 0;
      peer_bytes_sent = 0;
      peer_bytes_recv = 0;
      peer_frames = 0;
      crossings = 0;
      respawns = 0;
      drains = 0;
      deaths = 0;
      hb_sent = 0;
      hb_acked = 0;
      hb_missed = 0;
      last_hb = Unix.gettimeofday ();
      state = Live;
    }
  in
  let boot_fail ~shard ~during =
    reap_all t;
    (match t.log with Some oc -> close_out_noerr oc | None -> ());
    raise (Shard.Shard_down { shard; round = 0; during })
  in
  logf t "bootstrap: %d shards (%d remote), n=%d, policy=%s, timeout=%.1fs" k
    remote n
    (Shard.policy_to_string policy)
    timeout;
  (try
     for s = 0 to k - remote - 1 do
       t.pids.(s) <- spawn_worker ~addr_str ~k ~n ~epoch:1 s
     done
   with e ->
     reap_all t;
     raise e);
  let all = List.init k Fun.id in
  (match await_hellos t ~deadline:(Unix.gettimeofday () +. timeout) all with
  | () -> ()
  | exception Dead_workers missing ->
    boot_fail
      ~shard:(match missing with s :: _ -> s | [] -> -1)
      ~during:"hello");
  (match reconfig t with
  | [] -> ()
  | s :: _ -> boot_fail ~shard:s ~during:"mesh");
  logf t "bootstrap complete";
  live := t :: !live; (* cc_lint: allow L11 — main-domain-only session registry *)
  if not (Atomic.exchange exit_hook_registered true) then at_exit shutdown_all;
  t

(* ------------------------------------------------------- transport ops *)

type outcome =
  | Ok_inboxes of (int * int array) list array * (int * int * int * int)
  | Ok_bcast of int array array
  | Err of Shard.overflow

let read_overflow r : Shard.overflow =
  let gidx = Frame.Reader.int r in
  let src = Frame.Reader.int r in
  let dst = Frame.Reader.int r in
  let words = Frame.Reader.int r in
  let width = Frame.Reader.int r in
  { gidx; src; dst; words; width }

(* One reply from slot [s]: an outcome, or the slots it implicates as
   dead (itself on EOF/timeout/corruption, the peers it names on a
   PeerDown report). *)
let collect_reply t ~deadline s =
  match recv_current t ~deadline s with
  | exception (Link.Closed _ | Link.Timeout _ | Frame.Malformed _) ->
    `Dead [ s ]
  | f when f.Frame.kind = k_peer_down ->
    let r = Frame.Reader.of_bytes f.Frame.payload in
    let count = Frame.Reader.int r in
    let acc = ref [] in
    for _ = 1 to count do
      acc := Frame.Reader.int r :: !acc
    done;
    `Dead (if !acc = [] then [ s ] else !acc)
  | f when f.Frame.kind = k_error ->
    `Out (Err (read_overflow (Frame.Reader.of_bytes f.Frame.payload)))
  | f when f.Frame.kind = k_inboxes ->
    let r = Frame.Reader.of_bytes f.Frame.payload in
    let bs = Frame.Reader.int r in
    let br = Frame.Reader.int r in
    let fs = Frame.Reader.int r in
    let fr = Frame.Reader.int r in
    let m = Frame.Reader.int r in
    let slices = Array.make m [] in
    for d = 0 to m - 1 do
      let count = Frame.Reader.int r in
      let acc = ref [] in
      for _ = 1 to count do
        let src = Frame.Reader.int r in
        let len = Frame.Reader.int r in
        acc := (src, get_pay r len) :: !acc
      done;
      slices.(d) <- List.rev !acc
    done;
    `Out (Ok_inboxes (slices, (bs, br, fs, fr)))
  | f when f.Frame.kind = k_bcast_ok ->
    let r = Frame.Reader.of_bytes f.Frame.payload in
    let count = Frame.Reader.int r in
    let values = Array.make count [||] in
    for i = 0 to count - 1 do
      values.(i) <- get_pay r (Frame.Reader.int r)
    done;
    `Out (Ok_bcast values)
  | _ -> `Dead [ s ]

let send_to t s frame =
  match t.links.(s) with
  | None -> raise (Dead_workers [ s ])
  | Some l -> (
    match Link.send ~deadline:(Unix.gettimeofday () +. t.timeout) l frame with
    | () -> ()
    | exception (Link.Closed _ | Link.Timeout _) ->
      raise (Dead_workers [ s ]))

(* Of every violation found anywhere — the coordinator's range scan and
   each worker's width scan — the one at the minimal global arrival index
   is the one a single-process walk would have tripped on first. *)
let raise_first_error ~range_error errors =
  let candidates =
    (match range_error with
    | Some (gidx, message) -> [ (gidx, `Range message) ]
    | None -> [])
    @ List.map (fun (o : Shard.overflow) -> (o.gidx, `Width o)) errors
  in
  match List.sort (fun (a, _) (b, _) -> compare a b) candidates with
  | [] -> ()
  | (_, `Range message) :: _ -> invalid_arg message
  | (_, `Width (o : Shard.overflow)) :: _ ->
    raise
      (Mailbox.Bandwidth_exceeded
         {
           src = o.src;
           dst = o.dst;
           words = o.words;
           width = o.width;
           phase = Mailbox.current_context ();
         })

(* Collect one reply per live slot; on any death indication, short-circuit
   into [Dead_workers] (stale replies of the aborted round are skipped by
   the epoch filter after recovery). *)
let collect_all t ~each =
  let lives = Shard.Partition.live_list t.part in
  let deadline = Unix.gettimeofday () +. (2.0 *. t.timeout) +. 1.0 in
  let dead = ref [] in
  List.iter
    (fun s ->
      if !dead = [] then
        match collect_reply t ~deadline s with
        | `Dead d -> dead := d
        | `Out o -> each s o)
    lives;
  if !dead <> [] then raise (Dead_workers !dead)

let exchange ?(width = default_width) t outboxes =
  maybe_heartbeat t;
  let attempt () =
    t.seq <- t.seq + 1;
    let e = epoch t in
    let split =
      Shard.split_exchange ~owner:t.owner ~shards:t.k ~n:t.n ~width outboxes
    in
    let lives = Shard.Partition.live_list t.part in
    List.iter
      (fun s ->
        let w = Frame.Writer.create ~hint:512 () in
        Frame.Writer.string w (Mailbox.current_context ());
        Frame.Writer.int w width;
        let mask = ref 0 in
        Array.iteri
          (fun u from_u -> if from_u then mask := !mask lor (1 lsl u))
          split.expect.(s);
        Frame.Writer.int w !mask;
        put_batch w split.by_src_shard.(s);
        send_to t s
          { Frame.kind = k_exchange; src = -1; dst = s; seq = t.seq;
            epoch = e; payload = Frame.Writer.contents w })
      lives;
    let slices = Array.make t.k [||] in
    let errors = ref [] in
    collect_all t ~each:(fun s -> function
      | Ok_inboxes (sl, (bs, br, fs, fr)) ->
        slices.(s) <- sl;
        t.peer_bytes_sent <- t.peer_bytes_sent + bs;
        t.peer_bytes_recv <- t.peer_bytes_recv + br;
        t.peer_frames <- t.peer_frames + fs;
        ignore fr
      | Err o -> errors := o :: !errors
      | Ok_bcast _ -> raise (Dead_workers [ s ]));
    raise_first_error ~range_error:split.range_error !errors;
    let inboxes = Array.make t.n [] in
    List.iter
      (fun s ->
        let lo, _hi = Shard.Partition.bounds t.part s in
        Array.iteri (fun i box -> inboxes.(lo + i) <- box) slices.(s))
      lives;
    t.words_sent <- t.words_sent + split.words;
    t.crossings <- t.crossings + split.crossings;
    t.rounds <- t.rounds + 1;
    inboxes
  in
  supervised t ~during:"exchange" attempt

let broadcast ?(width = default_width) t values =
  maybe_heartbeat t;
  if Array.length values <> t.n then
    invalid_arg "Mailbox.broadcast: values array length mismatch";
  let attempt () =
    t.seq <- t.seq + 1;
    let e = epoch t in
    let lives = Shard.Partition.live_list t.part in
    List.iter
      (fun s ->
        let lo, hi = Shard.Partition.bounds t.part s in
        let w = Frame.Writer.create ~hint:256 () in
        Frame.Writer.string w (Mailbox.current_context ());
        Frame.Writer.int w width;
        Frame.Writer.int w lo;
        Frame.Writer.int w (hi - lo);
        for v = lo to hi - 1 do
          Frame.Writer.int w (Array.length values.(v));
          Array.iter (Frame.Writer.int w) values.(v)
        done;
        send_to t s
          { Frame.kind = k_bcast; src = -1; dst = s; seq = t.seq; epoch = e;
            payload = Frame.Writer.contents w })
      lives;
    let view = Array.make t.n [||] in
    let errors = ref [] in
    collect_all t ~each:(fun s -> function
      | Ok_bcast slice ->
        let lo, _ = Shard.Partition.bounds t.part s in
        Array.iteri (fun i pay -> view.(lo + i) <- pay) slice
      | Err o -> errors := o :: !errors
      | Ok_inboxes _ -> raise (Dead_workers [ s ]));
    raise_first_error ~range_error:None !errors;
    let words = ref 0 in
    Array.iter
      (fun pay -> words := !words + ((t.n - 1) * Array.length pay))
      values;
    t.words_sent <- t.words_sent + !words;
    t.rounds <- t.rounds + Runtime.Cost.broadcast_rounds;
    view
  in
  supervised t ~during:"broadcast" attempt

(* Lenzen routing stays a coordinator-side analytic path, exactly as on
   the in-process kernels: no charged workload drives [route] through the
   message stream, its cost model is [⌈load/(n·width)⌉] batches either
   way (DESIGN.md §11). *)
let route ?(width = default_width) t msgs =
  ensure_live t "route";
  let inboxes, words, batches = Mailbox.route ~n:t.n ~width msgs in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + (batches * Runtime.Cost.lenzen_routing_rounds);
  inboxes

let charge t r =
  if r < 0 then invalid_arg "Socket.charge: negative rounds";
  t.rounds <- t.rounds + r

let coordinator_bytes_sent t =
  Array.fold_left
    (fun a -> function Some l -> a + Link.bytes_sent l | None -> a)
    0 t.links

let coordinator_bytes_recv t =
  Array.fold_left
    (fun a -> function Some l -> a + Link.bytes_recv l | None -> a)
    0 t.links

let coordinator_frames t =
  Array.fold_left
    (fun a -> function
      | Some l -> a + Link.frames_sent l + Link.frames_recv l
      | None -> a)
    0 t.links

let stats t =
  [
    ("wire.frames", coordinator_frames t + t.peer_frames);
    ("wire.bytes_sent", coordinator_bytes_sent t + t.peer_bytes_sent);
    ("wire.bytes_recv", coordinator_bytes_recv t + t.peer_bytes_recv);
    ("shard.crossings", t.crossings);
    ("shard.shards", t.k);
    ("shard.live", Shard.Partition.live t.part);
    ("shard.epoch", epoch t);
    ("shard.deaths", t.deaths);
    ("shard.respawn", t.respawns);
    ("shard.drain", t.drains);
    ("shard.heartbeat.sent", t.hb_sent);
    ("shard.heartbeat.acked", t.hb_acked);
    ("shard.heartbeat.missed", t.hb_missed);
    ("shard.recovery_rounds", t.recovery_rounds);
  ]

(* --------------------------------------------------- worker diversion *)

(* Runs at module initialization — i.e. in every executable linking this
   library, before its own entry point. A process spawned by [create]
   carries the worker spec in its environment and never comes back; a
   process launched with CC_SHARD_REMOTE_WORKER=<addr> becomes a remote
   worker dialing that coordinator. *)
let () =
  match Sys.getenv_opt env_worker with
  | Some spec -> worker_main spec
  | None -> (
    match Sys.getenv_opt env_remote_worker with
    | Some addr -> remote_worker addr
    | None -> ())
