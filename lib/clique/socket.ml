(* The multi-process clique: a coordinator drives CC_SHARDS spawned worker
   processes over framed sockets (DESIGN.md §11). Workers are re-execs of
   the current binary — OCaml 5 forbids [Unix.fork] in any process that
   ever spawned a domain, and the coordinator's domain pools must stay
   usable — diverted into [worker_main] by this module's initializer when
   [CC_SHARD_WORKER] is present; links are wired by a socket rendezvous
   (hello / peer table / ready) rather than inherited descriptors.
   Partitioning, ordering, and error selection live in [Runtime.Shard];
   framing and links live in [Wire]; this module is the protocol:

     coordinator                     worker s
     -----------                     --------
     Exchange(phase,width,expect,
              own-source batch)  ->
                                     batches by dst shard,
                                     one Peer frame per ordered
                                     (s,u) pair with traffic   -> peers
                                     merge + sort by gidx,
                                     arena delivery
                                  <- Inboxes slice | WidthErr | PeerDown

   Every round is one frame per (coordinator, worker) direction plus at
   most one frame per ordered (shard, shard) pair with cross traffic —
   the shard-level analogue of Lenzen batching. Results are bit-identical
   to the in-process kernels: same inbox contents and order, same errors
   at the same message, same sanitizer transcripts (those are computed
   from outboxes above the transport). A worker that dies mid-round
   surfaces as [Runtime.Shard.Shard_down], never a hang. *)

module Frame = Wire.Frame
module Link = Wire.Link
module Shard = Runtime.Shard
module Mailbox = Runtime.Mailbox

let name = "clique+shard"

let default_width = 2

let unicast = true

(* ------------------------------------------------------- frame protocol *)

let k_exchange = 1

let k_peer = 2

let k_inboxes = 3

let k_error = 4

let k_bcast = 5

let k_bcast_ok = 6

let k_peer_down = 7

let k_shutdown = 8

let k_hello = 9

let k_peers = 10

let k_ready = 11

let put_msg w (m : Shard.msg) =
  Frame.Writer.int w m.gidx;
  Frame.Writer.int w m.src;
  Frame.Writer.int w m.dst;
  Frame.Writer.int w (Array.length m.pay);
  Array.iter (Frame.Writer.int w) m.pay

let get_pay r len =
  let pay = Array.make len 0 in
  for i = 0 to len - 1 do
    pay.(i) <- Frame.Reader.int r
  done;
  pay

let get_msg r : Shard.msg =
  let gidx = Frame.Reader.int r in
  let src = Frame.Reader.int r in
  let dst = Frame.Reader.int r in
  let len = Frame.Reader.int r in
  { gidx; src; dst; pay = get_pay r len }

let put_batch w msgs =
  Frame.Writer.int w (List.length msgs);
  List.iter (put_msg w) msgs

let get_batch r =
  let count = Frame.Reader.int r in
  let acc = ref [] in
  for _ = 1 to count do
    acc := get_msg r :: !acc
  done;
  List.rev !acc

(* ------------------------------------------------------- the peer mesh *)

exception Peer_dead of int

type rx = {
  peer : int;
  mutable hdr : Frame.header option;
  mutable buf : Bytes.t;
  mutable off : int;
  mutable frame : Frame.t option;
}

type tx = { tpeer : int; tbuf : Bytes.t; mutable toff : int }

(* One round of worker-to-worker traffic: send every outgoing batch and
   receive one frame from every peer in [expect], interleaved through
   select so opposing bulk sends cannot deadlock on full socket buffers.
   Returns the received frames plus (bytes_sent, bytes_recv) for the
   wire.* counters. Raises [Peer_dead u] on EOF/EPIPE from peer [u]. *)
let mesh_exchange ~(peers : Link.t option array) ~sends ~expect =
  let k = Array.length expect in
  let link u = match peers.(u) with Some l -> l | None -> assert false in
  let txs =
    List.map (fun (u, payload) -> { tpeer = u; tbuf = payload; toff = 0 }) sends
  in
  let txs = ref txs in
  let rxs =
    Array.init k (fun u ->
        if expect.(u) then
          Some
            {
              peer = u;
              hdr = None;
              buf = Bytes.create Frame.header_bytes;
              off = 0;
              frame = None;
            }
        else None)
  in
  let bytes_sent = ref 0 and bytes_recv = ref 0 in
  let rx_pending () =
    let l = ref [] in
    Array.iter
      (function
        | Some rx when rx.frame = None -> l := rx :: !l
        | Some _ | None -> ())
      rxs;
    !l
  in
  let advance_rx rx got =
    rx.off <- rx.off + got;
    if rx.off = Bytes.length rx.buf then begin
      match rx.hdr with
      | None ->
        let hdr = Frame.decode_header rx.buf in
        rx.hdr <- Some hdr;
        rx.buf <- Bytes.create hdr.Frame.len;
        rx.off <- 0;
        if hdr.Frame.len = 0 then rx.frame <- Some (Frame.verify hdr rx.buf)
      | Some hdr -> rx.frame <- Some (Frame.verify hdr rx.buf)
    end
  in
  let rec loop () =
    let pending_rx = rx_pending () in
    if !txs = [] && pending_rx = [] then ()
    else begin
      let rfds = List.map (fun rx -> Link.fd (link rx.peer)) pending_rx in
      let wfds = List.map (fun tx -> Link.fd (link tx.tpeer)) !txs in
      match Unix.select rfds wfds [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, writable, _ ->
        List.iter
          (fun tx ->
            if List.mem (Link.fd (link tx.tpeer)) writable then begin
              let remaining = Bytes.length tx.tbuf - tx.toff in
              match
                Unix.single_write (Link.fd (link tx.tpeer)) tx.tbuf tx.toff
                  remaining
              with
              | got ->
                tx.toff <- tx.toff + got;
                bytes_sent := !bytes_sent + got
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception
                  Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                raise (Peer_dead tx.tpeer)
            end)
          !txs;
        txs := List.filter (fun tx -> tx.toff < Bytes.length tx.tbuf) !txs;
        List.iter
          (fun rx ->
            if List.mem (Link.fd (link rx.peer)) readable then begin
              let remaining = Bytes.length rx.buf - rx.off in
              if remaining = 0 then advance_rx rx 0
              else
                match
                  Unix.read (Link.fd (link rx.peer)) rx.buf rx.off remaining
                with
                | 0 -> raise (Peer_dead rx.peer)
                | got ->
                  bytes_recv := !bytes_recv + got;
                  advance_rx rx got
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  raise (Peer_dead rx.peer)
            end)
          pending_rx;
        loop ()
    end
  in
  loop ();
  let received = ref [] and frames_recv = ref 0 in
  Array.iter
    (function
      | Some rx ->
        incr frames_recv;
        (match rx.frame with
        | Some f -> received := (rx.peer, f) :: !received
        | None -> assert false)
      | None -> ())
    rxs;
  let frames_sent = List.length sends in
  List.iter
    (fun (u, payload) ->
      Link.note_sent (link u) ~bytes:(Bytes.length payload) ~frames:1)
    sends;
  Array.iter
    (function
      | Some rx ->
        let l = link rx.peer in
        Link.note_recv l
          ~bytes:
            (Frame.header_bytes
            + match rx.hdr with Some h -> h.Frame.len | None -> 0)
          ~frames:1
      | None -> ())
    rxs;
  (List.rev !received, !bytes_sent, !bytes_recv, frames_sent, !frames_recv)

(* ------------------------------------------------------------ the worker *)

type worker = {
  w : int;
  wn : int;
  wk : int;
  lo : int;
  hi : int;
  wowner : int array;
  coord : Link.t;
  peers : Link.t option array;
  arena : Runtime.Arena.t;
  pool : Runtime.Pool.t;
}

(* Inbox slices, encoded in parallel over the worker's domain pool: per
   destination sizes are computed first, offsets prefix-summed, and each
   chunk writes only its own byte range — deterministic bytes for any
   CC_DOMAINS. Layout: [stats:4 ints][slice count][per dst: count, then
   (src, len, words) per entry in inbox-list order]. *)
let encode_reply ~pool ~stats slices =
  let m = Array.length slices in
  let entry_size l =
    List.fold_left (fun a (_, p) -> a + 16 + (8 * Array.length p)) 8 l
  in
  let offs = Array.make (m + 1) (8 * 5) in
  Array.iteri (fun i l -> offs.(i + 1) <- offs.(i) + entry_size l) slices;
  let buf = Bytes.create offs.(m) in
  let bs, br, fs, fr = stats in
  Bytes.set_int64_le buf 0 (Int64.of_int bs);
  Bytes.set_int64_le buf 8 (Int64.of_int br);
  Bytes.set_int64_le buf 16 (Int64.of_int fs);
  Bytes.set_int64_le buf 24 (Int64.of_int fr);
  Bytes.set_int64_le buf 32 (Int64.of_int m);
  Runtime.Pool.run pool ~n:m (fun clo chi ->
      for d = clo to chi - 1 do
        let p = ref offs.(d) in
        let put v =
          Bytes.set_int64_le buf !p (Int64.of_int v);
          p := !p + 8
        in
        put (List.length slices.(d));
        List.iter
          (fun (src, pay) ->
            put src;
            put (Array.length pay);
            Array.iter put pay)
          slices.(d)
      done);
  buf

let reply st ~kind ~seq payload =
  Link.send st.coord
    { Frame.kind; src = st.w; dst = -1; seq; payload }

let overflow_payload (o : Shard.overflow) =
  let w = Frame.Writer.create ~hint:64 () in
  Frame.Writer.int w o.gidx;
  Frame.Writer.int w o.src;
  Frame.Writer.int w o.dst;
  Frame.Writer.int w o.words;
  Frame.Writer.int w o.width;
  Frame.Writer.contents w

let handle_exchange st (f : Frame.t) =
  let r = Frame.Reader.of_bytes f.payload in
  let phase = Frame.Reader.string r in
  let width = Frame.Reader.int r in
  let mask = Frame.Reader.int r in
  let msgs = get_batch r in
  Mailbox.set_context phase;
  let parts = Shard.partition_by_dst ~owner:st.wowner ~shards:st.wk msgs in
  let sends = ref [] in
  for u = st.wk - 1 downto 0 do
    if u <> st.w && parts.(u) <> [] then begin
      let w = Frame.Writer.create ~hint:256 () in
      put_batch w parts.(u);
      let frame =
        { Frame.kind = k_peer; src = st.w; dst = u; seq = f.seq;
          payload = Frame.Writer.contents w }
      in
      sends := (u, Frame.encode frame) :: !sends
    end
  done;
  let expect = Array.init st.wk (fun u -> mask land (1 lsl u) <> 0) in
  match mesh_exchange ~peers:st.peers ~sends:!sends ~expect with
  | exception Peer_dead u ->
    let w = Frame.Writer.create ~hint:16 () in
    Frame.Writer.int w u;
    reply st ~kind:k_peer_down ~seq:f.seq (Frame.Writer.contents w);
    false
  | received, bytes_sent, bytes_recv, frames_sent, frames_recv ->
    let peer_lists =
      List.map
        (fun (_, (pf : Frame.t)) -> get_batch (Frame.Reader.of_bytes pf.payload))
        received
    in
    let inbound = Shard.merge_inbound (parts.(st.w) :: peer_lists) in
    (match
       Shard.deliver_local ~arena:st.arena ~n:st.wn ~width ~lo:st.lo ~hi:st.hi
         inbound
     with
    | Shard.Overflow o -> reply st ~kind:k_error ~seq:f.seq (overflow_payload o)
    | Shard.Inboxes slices ->
      let payload =
        encode_reply ~pool:st.pool
          ~stats:(bytes_sent, bytes_recv, frames_sent, frames_recv)
          slices
      in
      reply st ~kind:k_inboxes ~seq:f.seq payload);
    true

let handle_bcast st (f : Frame.t) =
  let r = Frame.Reader.of_bytes f.payload in
  let phase = Frame.Reader.string r in
  let width = Frame.Reader.int r in
  let lo = Frame.Reader.int r in
  let count = Frame.Reader.int r in
  Mailbox.set_context phase;
  let values = Array.make count [||] in
  for i = 0 to count - 1 do
    values.(i) <- get_pay r (Frame.Reader.int r)
  done;
  let error = ref None in
  (try
     Array.iteri
       (fun i pay ->
         let w = Array.length pay in
         if w > width then begin
           error :=
             Some
               { Shard.gidx = lo + i; src = lo + i; dst = -1; words = w; width };
           raise Exit
         end)
       values
   with Exit -> ());
  (match !error with
  | Some o -> reply st ~kind:k_error ~seq:f.seq (overflow_payload o)
  | None ->
    let w = Frame.Writer.create ~hint:256 () in
    Frame.Writer.int w count;
    Array.iter
      (fun pay ->
        Frame.Writer.int w (Array.length pay);
        Array.iter (Frame.Writer.int w) pay)
      values;
    reply st ~kind:k_bcast_ok ~seq:f.seq (Frame.Writer.contents w));
  true

let worker_serve st =
  let continue = ref true in
  while !continue do
    match Link.recv st.coord with
    | exception Link.Closed _ -> continue := false
    | f ->
      if f.Frame.kind = k_shutdown then continue := false
      else if f.Frame.kind = k_exchange then continue := handle_exchange st f
      else if f.Frame.kind = k_bcast then continue := handle_bcast st f
      else begin
        Printf.eprintf "shard worker %d: unexpected frame kind %d\n%!" st.w
          f.Frame.kind;
        continue := false
      end
  done

(* ----------------------------------------------------- worker bootstrap *)

(* A worker process is a re-exec of the current binary, spawned by the
   coordinator with CC_SHARD_WORKER="<shard>/<shards>/<n>/<addr>" in its
   environment; this module's initializer (bottom of file) diverts into
   [worker_main] before the program's own entry point ever runs. *)

let dial addr ~peer =
  if String.starts_with ~prefix:"unix:" addr then
    Link.of_fd ~peer
      (Link.connect_unix (String.sub addr 5 (String.length addr - 5)))
  else if String.starts_with ~prefix:"tcp:" addr then
    Link.of_fd ~peer (Link.connect (String.sub addr 4 (String.length addr - 4)))
  else invalid_arg (Printf.sprintf "Socket: bad rendezvous address %S" addr)

let parse_spec spec =
  match String.split_on_char '/' spec with
  | s :: k :: n :: rest when rest <> [] -> (
    match (int_of_string_opt s, int_of_string_opt k, int_of_string_opt n) with
    | Some s, Some k, Some n -> (s, k, n, String.concat "/" rest)
    | _ -> failwith "CC_SHARD_WORKER: malformed spec")
  | _ -> failwith "CC_SHARD_WORKER: malformed spec"

let worker_boot spec =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let s, k, n, coord_addr = parse_spec spec in
  let tcp = String.starts_with ~prefix:"tcp:" coord_addr in
  (* Own mesh listener first — its address rides in the hello, and every
     listener therefore exists before the coordinator broadcasts the peer
     table. *)
  let mesh_fd, mesh_addr, mesh_path =
    if tcp then begin
      let host, _ =
        Link.parse_addr (String.sub coord_addr 4 (String.length coord_addr - 4))
      in
      let fd = Link.listen (host ^ ":0") in
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> 0
      in
      (fd, Printf.sprintf "tcp:%s:%d" host port, None)
    end
    else begin
      let path =
        Printf.sprintf "%s-m%d"
          (String.sub coord_addr 5 (String.length coord_addr - 5))
          s
      in
      (Link.listen_unix path, "unix:" ^ path, Some path)
    end
  in
  let coord = dial coord_addr ~peer:"coordinator" in
  let hello = Frame.Writer.create ~hint:64 () in
  Frame.Writer.string hello mesh_addr;
  Link.send coord
    { Frame.kind = k_hello; src = s; dst = -1; seq = 0;
      payload = Frame.Writer.contents hello };
  let pf = Link.recv coord in
  if pf.Frame.kind <> k_peers then failwith "shard worker: expected peer table";
  let r = Frame.Reader.of_bytes pf.Frame.payload in
  let addrs = Array.make k "" in
  for u = 0 to k - 1 do
    addrs.(u) <- Frame.Reader.string r
  done;
  (* Full mesh: connect to every lower shard — the kernel completes those
     connects from the listener backlog, so nobody blocks on a peer that
     is itself still connecting — then accept every higher shard,
     identified by its hello frame (accept order is arbitrary). *)
  let peers = Array.make k None in
  for u = 0 to s - 1 do
    let l = dial addrs.(u) ~peer:(Printf.sprintf "shard%d" u) in
    Link.send l
      { Frame.kind = k_hello; src = s; dst = u; seq = 0;
        payload = Bytes.create 0 };
    peers.(u) <- Some l
  done;
  for _ = s + 1 to k - 1 do
    let l = Link.of_fd ~peer:"shard" (Link.accept ~tcp_nodelay:tcp mesh_fd) in
    let h = Link.recv l in
    if
      h.Frame.kind <> k_hello
      || h.Frame.src <= s
      || h.Frame.src >= k
      || Option.is_some peers.(h.Frame.src)
    then failwith "shard worker: bad mesh hello";
    peers.(h.Frame.src) <- Some l
  done;
  (try Unix.close mesh_fd with Unix.Unix_error _ -> ());
  (match mesh_path with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  Link.send coord
    { Frame.kind = k_ready; src = s; dst = -1; seq = 0;
      payload = Bytes.create 0 };
  let lo, hi = Shard.bounds ~shards:k ~n s in
  worker_serve
    {
      w = s;
      wn = n;
      wk = k;
      lo;
      hi;
      wowner = Shard.owners ~shards:k ~n;
      coord;
      peers;
      arena = Runtime.Arena.create ~n ();
      pool = Runtime.Pool.get (Runtime.Pool.default_domains ());
    }

(* Never returns: a worker leaves with [Unix._exit] so the parent's at_exit
   hooks (session closes, pool joins, channel flushes) stay the parent's. *)
let worker_main spec =
  match worker_boot spec with
  | () -> Unix._exit 0
  | exception e ->
    Printf.eprintf "shard worker: %s\n%!" (Printexc.to_string e);
    Unix._exit 1

(* ------------------------------------------------------ the coordinator *)

type state = Live | Down of int * string | Closed

type t = {
  n : int;
  k : int;
  owner : int array;
  links : Link.t array;
  pids : int array;
  mutable seq : int;
  mutable rounds : int;
  mutable words_sent : int;
  mutable peer_bytes_sent : int;
  mutable peer_bytes_recv : int;
  mutable peer_frames : int;
  mutable crossings : int;
  mutable state : state;
}

exception Bandwidth_exceeded = Mailbox.Bandwidth_exceeded

let n t = t.n

let shards t = t.k

let pids t = Array.to_list t.pids

let rounds t = t.rounds

let words_sent t = t.words_sent

(* Coordinator-side session registry. Sessions are created, closed and
   reaped on the coordinator's main domain only — the domain pool fans
   node-step closures, never session lifecycle — so the plain ref is
   race-free by construction (cc_lint L11 markers below record that
   invariant at each write). *)
let live : t list ref = ref []

let sigpipe_ignored = Atomic.make false

let reap_all t =
  Array.iter Link.close t.links;
  Array.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    t.pids

let close t =
  match t.state with
  | Closed -> ()
  | Down _ ->
    t.state <- Closed;
    live := List.filter (fun s -> s != t) !live (* cc_lint: allow L11 — main-domain-only session registry *)
  | Live ->
    t.state <- Closed;
    live := List.filter (fun s -> s != t) !live; (* cc_lint: allow L11 — main-domain-only session registry *)
    Array.iter
      (fun l ->
        try
          Link.send l
            { Frame.kind = k_shutdown; src = -1; dst = 0; seq = 0;
              payload = Bytes.create 0 }
        with Link.Closed _ | Unix.Unix_error _ -> ())
      t.links;
    Array.iter Link.close t.links;
    Array.iter
      (fun pid ->
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      t.pids

let shutdown_all () = List.iter close !live

let exit_hook_registered = Atomic.make false

(* A worker went away: kill and reap the whole family, then surface the
   structured error — callers never hang on a dead shard. *)
let session_down t ~shard ~during =
  t.state <- Down (shard, during);
  reap_all t;
  raise (Shard.Shard_down { shard; round = t.rounds; during })

let ensure_live t during =
  match t.state with
  | Live -> ()
  | Down (shard, _) ->
    raise (Shard.Shard_down { shard; round = t.rounds; during })
  | Closed -> raise (Shard.Shard_down { shard = -1; round = t.rounds; during })

let env_addr = "CC_SHARD_ADDR"

let env_worker = "CC_SHARD_WORKER"

(* The environment of a spawned worker: the parent's, with the worker spec
   pinned and the effective domain count made explicit ([Pool.set_default]
   forcings do not survive the exec). *)
let child_env spec =
  let skip e =
    String.starts_with ~prefix:(env_worker ^ "=") e
    || String.starts_with ~prefix:(Runtime.Pool.env_var ^ "=") e
  in
  Array.of_list
    (List.filter (fun e -> not (skip e)) (Array.to_list (Unix.environment ()))
    @ [
        Printf.sprintf "%s=%s" env_worker spec;
        Printf.sprintf "%s=%d" Runtime.Pool.env_var
          (Runtime.Pool.default_domains ());
      ])

let session_counter = ref 0

let create ?shards:requested ?addr n =
  if n <= 0 then invalid_arg "Socket.create: need n > 0";
  let k =
    let r =
      match requested with Some k -> max 1 k | None -> Shard.default_shards ()
    in
    min r n
  in
  if k > 62 then invalid_arg "Socket.create: at most 62 shards";
  if not (Atomic.exchange sigpipe_ignored true) then
    if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr = match addr with Some a -> Some a | None -> Sys.getenv_opt env_addr in
  let lfd, addr_str, lpath =
    match addr with
    | None ->
      incr session_counter; (* cc_lint: allow L11 — sessions are created on the main domain only *)
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "cc-wire-%d-%d" (Unix.getpid ()) !session_counter)
      in
      (Link.listen_unix path, "unix:" ^ path, Some path)
    | Some a ->
      let fd = Link.listen a in
      let host, _ = Link.parse_addr a in
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> 0
      in
      (fd, Printf.sprintf "tcp:%s:%d" host port, None)
  in
  let tcp = addr <> None in
  let pids = Array.make k (-1) in
  let pending = Array.make k None in
  let cleanup () =
    (try Unix.close lfd with Unix.Unix_error _ -> ());
    (match lpath with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ());
    Array.iter (function Some l -> Link.close l | None -> ()) pending;
    Array.iter
      (fun pid ->
        if pid > 0 then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
        end)
      pids
  in
  let boot_fail ~shard ~during =
    cleanup ();
    raise (Shard.Shard_down { shard; round = 0; during })
  in
  (* A child that died before completing its hello, if any. *)
  let dead_child () =
    let dead = ref None in
    Array.iteri
      (fun s pid ->
        if !dead = None && pid > 0 && pending.(s) = None then
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _ -> dead := Some s
          | exception Unix.Unix_error _ -> dead := Some s)
      pids;
    !dead
  in
  (try
     for s = 0 to k - 1 do
       pids.(s) <-
         Unix.create_process_env Sys.executable_name [| Sys.executable_name |]
           (child_env (Printf.sprintf "%d/%d/%d/%s" s k n addr_str))
           Unix.stdin Unix.stdout Unix.stderr
     done
   with e ->
     cleanup ();
     raise e);
  (* Hello phase: accept every worker — identified by its hello frame, the
     accept order being scheduling-dependent — while watching for children
     that died before connecting. *)
  let got = ref 0 in
  let addrs = Array.make k "" in
  while !got < k do
    match Unix.select [ lfd ] [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> (
      match dead_child () with
      | Some s -> boot_fail ~shard:s ~during:"spawn"
      | None -> ())
    | _ :: _, _, _ -> (
      let l = Link.of_fd ~peer:"worker" (Link.accept ~tcp_nodelay:tcp lfd) in
      match Link.recv l with
      | exception (Link.Closed _ | Frame.Malformed _) ->
        Link.close l;
        let shard = match dead_child () with Some s -> s | None -> -1 in
        boot_fail ~shard ~during:"hello"
      | h ->
        if
          h.Frame.kind <> k_hello
          || h.Frame.src < 0
          || h.Frame.src >= k
          || Option.is_some pending.(h.Frame.src)
        then begin
          Link.close l;
          boot_fail ~shard:(-1) ~during:"hello"
        end
        else begin
          addrs.(h.Frame.src) <-
            Frame.Reader.string (Frame.Reader.of_bytes h.Frame.payload);
          pending.(h.Frame.src) <- Some l;
          incr got
        end)
  done;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (match lpath with
  | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | None -> ());
  let links =
    Array.map (function Some l -> l | None -> assert false) pending
  in
  (* Peer table out, mesh establishment happens worker-side, readies in. *)
  let table =
    let w = Frame.Writer.create ~hint:256 () in
    Array.iter (Frame.Writer.string w) addrs;
    Frame.Writer.contents w
  in
  Array.iteri
    (fun s l ->
      match
        Link.send l
          { Frame.kind = k_peers; src = -1; dst = s; seq = 0; payload = table }
      with
      | () -> ()
      | exception Link.Closed _ -> boot_fail ~shard:s ~during:"mesh")
    links;
  Array.iteri
    (fun s l ->
      match Link.recv l with
      | exception (Link.Closed _ | Frame.Malformed _) ->
        boot_fail ~shard:s ~during:"mesh"
      | f -> if f.Frame.kind <> k_ready then boot_fail ~shard:s ~during:"mesh")
    links;
  let t =
    {
      n;
      k;
      owner = Shard.owners ~shards:k ~n;
      links;
      pids;
      seq = 0;
      rounds = 0;
      words_sent = 0;
      peer_bytes_sent = 0;
      peer_bytes_recv = 0;
      peer_frames = 0;
      crossings = 0;
      state = Live;
    }
  in
  live := t :: !live; (* cc_lint: allow L11 — main-domain-only session registry *)
  if not (Atomic.exchange exit_hook_registered true) then at_exit shutdown_all;
  t

(* ------------------------------------------------------- transport ops *)

type outcome =
  | Ok_inboxes of (int * int array) list array * (int * int * int * int)
  | Ok_bcast of int array array
  | Err of Shard.overflow

let read_overflow r : Shard.overflow =
  let gidx = Frame.Reader.int r in
  let src = Frame.Reader.int r in
  let dst = Frame.Reader.int r in
  let words = Frame.Reader.int r in
  let width = Frame.Reader.int r in
  { gidx; src; dst; words; width }

let collect_reply t ~during s =
  match Link.recv t.links.(s) with
  | exception Link.Closed _ -> session_down t ~shard:s ~during
  | exception Frame.Malformed _ -> session_down t ~shard:s ~during
  | f when f.Frame.kind = k_peer_down ->
    let r = Frame.Reader.of_bytes f.payload in
    session_down t ~shard:(Frame.Reader.int r) ~during
  | f when f.Frame.kind = k_error ->
    Err (read_overflow (Frame.Reader.of_bytes f.payload))
  | f when f.Frame.kind = k_inboxes ->
    let r = Frame.Reader.of_bytes f.payload in
    let bs = Frame.Reader.int r in
    let br = Frame.Reader.int r in
    let fs = Frame.Reader.int r in
    let fr = Frame.Reader.int r in
    let m = Frame.Reader.int r in
    let slices = Array.make m [] in
    for d = 0 to m - 1 do
      let count = Frame.Reader.int r in
      let acc = ref [] in
      for _ = 1 to count do
        let src = Frame.Reader.int r in
        let len = Frame.Reader.int r in
        acc := (src, get_pay r len) :: !acc
      done;
      slices.(d) <- List.rev !acc
    done;
    Ok_inboxes (slices, (bs, br, fs, fr))
  | f when f.Frame.kind = k_bcast_ok ->
    let r = Frame.Reader.of_bytes f.payload in
    let count = Frame.Reader.int r in
    let values = Array.make count [||] in
    for i = 0 to count - 1 do
      values.(i) <- get_pay r (Frame.Reader.int r)
    done;
    Ok_bcast values
  | _ -> session_down t ~shard:s ~during

let send_to t ~during s frame =
  match Link.send t.links.(s) frame with
  | () -> ()
  | exception Link.Closed _ -> session_down t ~shard:s ~during

(* Of every violation found anywhere — the coordinator's range scan and
   each worker's width scan — the one at the minimal global arrival index
   is the one a single-process walk would have tripped on first. *)
let raise_first_error ~range_error errors =
  let candidates =
    (match range_error with
    | Some (gidx, message) -> [ (gidx, `Range message) ]
    | None -> [])
    @ List.map (fun (o : Shard.overflow) -> (o.gidx, `Width o)) errors
  in
  match List.sort (fun (a, _) (b, _) -> compare a b) candidates with
  | [] -> ()
  | (_, `Range message) :: _ -> invalid_arg message
  | (_, `Width (o : Shard.overflow)) :: _ ->
    raise
      (Mailbox.Bandwidth_exceeded
         {
           src = o.src;
           dst = o.dst;
           words = o.words;
           width = o.width;
           phase = Mailbox.current_context ();
         })

let exchange ?(width = default_width) t outboxes =
  ensure_live t "exchange";
  t.seq <- t.seq + 1;
  let split =
    Shard.split_exchange ~owner:t.owner ~shards:t.k ~n:t.n ~width outboxes
  in
  for s = 0 to t.k - 1 do
    let w = Frame.Writer.create ~hint:512 () in
    Frame.Writer.string w (Mailbox.current_context ());
    Frame.Writer.int w width;
    let mask = ref 0 in
    Array.iteri
      (fun u from_u -> if from_u then mask := !mask lor (1 lsl u))
      split.expect.(s);
    Frame.Writer.int w !mask;
    put_batch w split.by_src_shard.(s);
    send_to t ~during:"exchange" s
      { Frame.kind = k_exchange; src = -1; dst = s; seq = t.seq;
        payload = Frame.Writer.contents w }
  done;
  let slices = Array.make t.k [||] in
  let errors = ref [] in
  for s = 0 to t.k - 1 do
    match collect_reply t ~during:"exchange" s with
    | Ok_inboxes (sl, (bs, br, fs, fr)) ->
      slices.(s) <- sl;
      t.peer_bytes_sent <- t.peer_bytes_sent + bs;
      t.peer_bytes_recv <- t.peer_bytes_recv + br;
      t.peer_frames <- t.peer_frames + fs;
      ignore fr
    | Err o -> errors := o :: !errors
    | Ok_bcast _ -> session_down t ~shard:s ~during:"exchange"
  done;
  raise_first_error ~range_error:split.range_error !errors;
  let inboxes = Array.make t.n [] in
  for s = 0 to t.k - 1 do
    let lo, _hi = Shard.bounds ~shards:t.k ~n:t.n s in
    Array.iteri (fun i box -> inboxes.(lo + i) <- box) slices.(s)
  done;
  t.words_sent <- t.words_sent + split.words;
  t.crossings <- t.crossings + split.crossings;
  t.rounds <- t.rounds + 1;
  inboxes

let broadcast ?(width = default_width) t values =
  ensure_live t "broadcast";
  if Array.length values <> t.n then
    invalid_arg "Mailbox.broadcast: values array length mismatch";
  t.seq <- t.seq + 1;
  for s = 0 to t.k - 1 do
    let lo, hi = Shard.bounds ~shards:t.k ~n:t.n s in
    let w = Frame.Writer.create ~hint:256 () in
    Frame.Writer.string w (Mailbox.current_context ());
    Frame.Writer.int w width;
    Frame.Writer.int w lo;
    Frame.Writer.int w (hi - lo);
    for v = lo to hi - 1 do
      Frame.Writer.int w (Array.length values.(v));
      Array.iter (Frame.Writer.int w) values.(v)
    done;
    send_to t ~during:"broadcast" s
      { Frame.kind = k_bcast; src = -1; dst = s; seq = t.seq;
        payload = Frame.Writer.contents w }
  done;
  let view = Array.make t.n [||] in
  let errors = ref [] in
  for s = 0 to t.k - 1 do
    match collect_reply t ~during:"broadcast" s with
    | Ok_bcast slice ->
      let lo, _ = Shard.bounds ~shards:t.k ~n:t.n s in
      Array.iteri (fun i pay -> view.(lo + i) <- pay) slice
    | Err o -> errors := o :: !errors
    | Ok_inboxes _ -> session_down t ~shard:s ~during:"broadcast"
  done;
  raise_first_error ~range_error:None !errors;
  let words = ref 0 in
  Array.iter (fun pay -> words := !words + ((t.n - 1) * Array.length pay)) values;
  t.words_sent <- t.words_sent + !words;
  t.rounds <- t.rounds + Runtime.Cost.broadcast_rounds;
  view

(* Lenzen routing stays a coordinator-side analytic path, exactly as on
   the in-process kernels: no charged workload drives [route] through the
   message stream, its cost model is [⌈load/(n·width)⌉] batches either
   way (DESIGN.md §11). *)
let route ?(width = default_width) t msgs =
  ensure_live t "route";
  let inboxes, words, batches = Mailbox.route ~n:t.n ~width msgs in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + (batches * Runtime.Cost.lenzen_routing_rounds);
  inboxes

let charge t r =
  if r < 0 then invalid_arg "Socket.charge: negative rounds";
  t.rounds <- t.rounds + r

let coordinator_bytes_sent t =
  Array.fold_left (fun a l -> a + Link.bytes_sent l) 0 t.links

let coordinator_bytes_recv t =
  Array.fold_left (fun a l -> a + Link.bytes_recv l) 0 t.links

let coordinator_frames t =
  Array.fold_left (fun a l -> a + Link.frames_sent l + Link.frames_recv l) 0
    t.links

let stats t =
  [
    ("wire.frames", coordinator_frames t + t.peer_frames);
    ("wire.bytes_sent", coordinator_bytes_sent t + t.peer_bytes_sent);
    ("wire.bytes_recv", coordinator_bytes_recv t + t.peer_bytes_recv);
    ("shard.crossings", t.crossings);
    ("shard.shards", t.k);
  ]

(* --------------------------------------------------- worker diversion *)

(* Runs at module initialization — i.e. in every executable linking this
   library, before its own entry point. A process spawned by [create]
   carries the worker spec in its environment and never comes back. *)
let () =
  match Sys.getenv_opt env_worker with
  | Some spec -> worker_main spec
  | None -> ()
