(** Kernel-independent node programs.

    Each program here is written once against {!Runtime.S} and runs
    unchanged on every {!Runtime.TRANSPORT} instance — the clique ({!Sim})
    and the CONGEST sibling ({!Congest}) — producing identical results and
    identical round counts wherever the communication pattern is legal on
    both. This is the "written once, run on both kernels" half of the
    runtime refactor: {!Kernel} holds the two standard instantiations. *)

module type S = sig
  type runtime

  val bfs : runtime -> Graph.t -> int -> int array
  (** [bfs rt g s]: distributed BFS by flooding under phase ["bfs"]; returns
      hop distances ([-1] unreached). Uses one {!Runtime.S.exchange} per
      level — eccentricity of [s] plus one rounds. Requires the runtime to
      have [Graph.n g] nodes. *)

  val bellman_ford : runtime -> Graph.t -> int -> float array
  (** Distributed Bellman–Ford on the edge weights under phase
      ["bellman-ford"], fixed-point encoded to fit the word model; [O(n)]
      rounds measured. *)

  val three_color :
    runtime ->
    ids:int array ->
    succ:int array ->
    pred:int array ->
    int array * int
  (** [three_color rt ~ids ~succ ~pred] runs Cole–Vishkin 3-coloring on the
      disjoint cycles given by successor/predecessor pointers, as real node
      programs under phase ["coloring"]: one round to learn the successor's
      color, one per color-reduction step, then three shift-down rounds.
      Returns the colors (in [{0,1,2}], proper on every ring) and the number
      of rounds used — [O(log* k) + 4], the quantity Theorem 1.4 charges.
      Requires at least 2 positions and a runtime of matching size. *)

  val boruvka : runtime -> Graph.t -> int list * float * int
  (** [boruvka rt g]: Borůvka MST on a connected graph via two
      {!Runtime.S.broadcast} rounds per phase (component labels under phase
      ["labels"], candidate edges under ["candidates"]). Returns
      [(sorted mst edge ids, weight, phases)]; the runtime's rounds advance
      by [2 · phases]. Ties are broken by edge id, so the result is the
      unique MST of the perturbed weights [(w, id)]. *)
end

module Make (R : Runtime.S) : S with type runtime = R.t
(** Instantiate the node programs over any runtime — every transport
    (clique, CONGEST, socket, broadcast) runs the same program text. *)
