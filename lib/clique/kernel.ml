module On_sim = Runtime.Make (Sim)
module On_congest = Runtime.Make (Congest)
module On_socket = Runtime.Make (Socket)
module On_bcast = Runtime.Make (Broadcast)
module Sim_programs = Programs.Make (On_sim)
module Congest_programs = Programs.Make (On_congest)
module Socket_programs = Programs.Make (On_socket)
module Bcast_programs = Programs.Make (On_bcast)

type t = On_sim.t

let clique ?phase n = On_sim.create ?phase (Sim.create n)

let congest ?phase g = On_congest.create ?phase (Congest.create g)

let bcast ?phase n = On_bcast.create ?phase (Broadcast.create n)

let charge = On_sim.charge

let rounds = On_sim.rounds

let words = On_sim.words

let phases = On_sim.phases

let phase_rounds = On_sim.phase_rounds

let with_phase = On_sim.with_phase

let on_round = On_sim.on_round

let report = On_sim.report
