(** The two standard runtime instantiations.

    [Runtime.Make] is applied exactly once per kernel here, so every layer
    of the repo shares the same runtime types: {!On_sim} is the congested
    clique ({!Sim} under the ledger), {!On_congest} its CONGEST sibling, and
    {!Sim_programs}/{!Congest_programs} are the generic node programs
    ({!Programs}) instantiated on each.

    The charged layers (sparsifier, solver, IPMs, rounding) talk to the
    clique runtime through the aliases below: [Kernel.clique n] replaces the
    old bare [Cost.create ()] ledger, and [Kernel.charge rt ~phase r] is the
    single entry point through which all analytic round charges flow. *)

module On_sim : Runtime.S with type transport = Sim.t
(** The congested-clique runtime — {!Sim} under the cost ledger. *)

module On_congest : Runtime.S with type transport = Congest.t
(** The CONGEST-model sibling — {!Congest} under the same ledger. *)

module On_socket : Runtime.S with type transport = Socket.t
(** The runtime over the raw multi-process socket transport ({!Socket}) —
    what the differential suite drives directly when it needs a session
    handle. Ordinary shard runs go through {!On_sim} with the [Shard]
    kernel instead. *)

module On_bcast : Runtime.S with type transport = Broadcast.t
(** The runtime over the Broadcast Congested Clique kernel
    ({!Broadcast}): one payload per source per round, heard by everyone.
    Its sanitizer enforces the broadcast width rule (DESIGN.md §13). *)

module Sim_programs : Programs.S with type runtime = On_sim.t
(** The generic node programs ({!Programs}) on the clique runtime. *)

module Congest_programs : Programs.S with type runtime = On_congest.t
(** The generic node programs on the CONGEST runtime. *)

module Socket_programs : Programs.S with type runtime = On_socket.t
(** The generic node programs on the raw socket-session runtime. *)

module Bcast_programs : Programs.S with type runtime = On_bcast.t
(** The generic node programs on the broadcast kernel — same results as
    on every unicast kernel (the receivers filter the wider inboxes). *)

type t = On_sim.t
(** The clique runtime — the type every charged layer carries. *)

val clique : ?phase:string -> int -> t
(** [clique n] is a fresh runtime over a fresh [n]-node clique. *)

val congest : ?phase:string -> Graph.t -> On_congest.t
(** [congest g] is a fresh runtime over a fresh CONGEST kernel on [g]. *)

val bcast : ?phase:string -> int -> On_bcast.t
(** [bcast n] is a fresh runtime over a fresh [n]-node broadcast clique. *)

(** Convenience delegates to {!On_sim} (so call sites read
    [Kernel.charge rt ~phase:"ipm" r]): *)

val charge : ?phase:string -> t -> int -> unit
(** {!Runtime.S.charge}: add analytic rounds under a ledger phase. *)

val rounds : t -> int
(** {!Runtime.S.rounds}: total rounds, measured plus charged. *)

val words : t -> int
(** {!Runtime.S.words}: total words sent on the transport. *)

val phases : t -> (string * int) list
(** {!Runtime.S.phases}: the per-phase round breakdown, sorted. *)

val phase_rounds : t -> string -> int
(** {!Runtime.S.phase_rounds}: rounds charged under one phase. *)

val with_phase : t -> string -> (unit -> 'a) -> 'a
(** {!Runtime.S.with_phase}: run a thunk with the ledger phase set. *)

val on_round : t -> (phase:string -> rounds:int -> words:int -> unit) -> unit
(** {!Runtime.S.on_round}: observe every round as it is recorded. *)

val report : t -> string
(** {!Runtime.S.report}: human-readable ledger summary. *)
