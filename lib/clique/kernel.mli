(** The two standard runtime instantiations.

    [Runtime.Make] is applied exactly once per kernel here, so every layer
    of the repo shares the same runtime types: {!On_sim} is the congested
    clique ({!Sim} under the ledger), {!On_congest} its CONGEST sibling, and
    {!Sim_programs}/{!Congest_programs} are the generic node programs
    ({!Programs}) instantiated on each.

    The charged layers (sparsifier, solver, IPMs, rounding) talk to the
    clique runtime through the aliases below: [Kernel.clique n] replaces the
    old bare [Cost.create ()] ledger, and [Kernel.charge rt ~phase r] is the
    single entry point through which all analytic round charges flow. *)

module On_sim : Runtime.S with type transport = Sim.t

module On_congest : Runtime.S with type transport = Congest.t

module On_socket : Runtime.S with type transport = Socket.t
(** The runtime over the raw multi-process socket transport ({!Socket}) —
    what the differential suite drives directly when it needs a session
    handle. Ordinary shard runs go through {!On_sim} with the [Shard]
    kernel instead. *)

module Sim_programs : Programs.S with type runtime = On_sim.t

module Congest_programs : Programs.S with type runtime = On_congest.t

module Socket_programs : Programs.S with type runtime = On_socket.t

type t = On_sim.t
(** The clique runtime — the type every charged layer carries. *)

val clique : ?phase:string -> int -> t
(** [clique n] is a fresh runtime over a fresh [n]-node clique. *)

val congest : ?phase:string -> Graph.t -> On_congest.t
(** [congest g] is a fresh runtime over a fresh CONGEST kernel on [g]. *)

(** Convenience delegates to {!On_sim} (so call sites read
    [Kernel.charge rt ~phase:"ipm" r]): *)

val charge : ?phase:string -> t -> int -> unit

val rounds : t -> int

val words : t -> int

val phases : t -> (string * int) list

val phase_rounds : t -> string -> int

val with_phase : t -> string -> (unit -> 'a) -> 'a

val on_round : t -> (phase:string -> rounds:int -> words:int -> unit) -> unit

val report : t -> string
