(* The Broadcast Congested Clique kernel (FV22, arXiv:2205.12059). One
   round gives every node ONE message of [width] words, heard by all n
   nodes; per-destination distinct payloads are a model violation, not a
   bandwidth question, so they raise [Multi_payload] rather than
   [Bandwidth_exceeded]. Delivery is deliberately simple — a shared
   src-ascending inbox replicated to every node — because the model says
   every node's inbox IS the global round transcript. *)

module Mailbox = Runtime.Mailbox
module Cost = Runtime.Cost

type t = {
  n : int;
  mutable rounds : int;
  mutable words_sent : int;
  mutable exchanges : int;
  mutable collapsed : int;
}

exception Bandwidth_exceeded = Mailbox.Bandwidth_exceeded

exception Multi_payload of { src : int; phase : string; distinct : int }

let () =
  Printexc.register_printer (function
    | Multi_payload { src; phase; distinct } ->
      Some
        (Printf.sprintf
           "Clique.Broadcast.Multi_payload(node %d ships %d distinct \
            payloads in phase %S; one payload per source per round)"
           src distinct phase)
    | _ -> None)

let name = "bcast"

let create n =
  if n <= 0 then invalid_arg "Broadcast.create: need n > 0";
  { n; rounds = 0; words_sent = 0; exchanges = 0; collapsed = 0 }

let n t = t.n

let rounds t = t.rounds

let words_sent t = t.words_sent

let recovery_rounds _ = 0

let default_width = 2

let unicast = false

(* Collapse one source's outbox to its single on-air payload. Checks run
   in the same order as the sanitizer's: width first (an oversized payload
   is a width error even when it is also duplicated), distinctness
   second. *)
let collapse t ~width ~src msgs =
  match msgs with
  | [] -> None
  | (_, first) :: _ ->
    let distinct = ref [] in
    List.iter
      (fun (dst, payload) ->
        if dst < 0 || dst >= t.n then
          invalid_arg
            (Printf.sprintf "Broadcast.exchange: destination %d out of range"
               dst);
        let w = Array.length payload in
        if w > width then
          raise
            (Bandwidth_exceeded
               {
                 src;
                 dst = -1;
                 words = w;
                 width;
                 phase = Mailbox.current_context ();
               });
        if not (List.exists (fun p -> p = payload) !distinct) then
          distinct := payload :: !distinct)
      msgs;
    (match !distinct with
    | [] | [ _ ] -> ()
    | ds ->
      raise
        (Multi_payload
           {
             src;
             phase = Mailbox.current_context ();
             distinct = List.length ds;
           }));
    t.collapsed <- t.collapsed + (List.length msgs - 1);
    Some first

let exchange ?(width = default_width) t outboxes =
  if Array.length outboxes <> t.n then
    invalid_arg "Broadcast.exchange: outboxes array length mismatch";
  (* The round's air: at most one (src, payload) per source, src-ascending
     because we scan sources in order. *)
  let air = ref [] in
  for src = t.n - 1 downto 0 do
    match collapse t ~width ~src outboxes.(src) with
    | None -> ()
    | Some payload ->
      air := (src, payload) :: !air;
      t.words_sent <- t.words_sent + ((t.n - 1) * Array.length payload)
  done;
  let air = !air in
  t.exchanges <- t.exchanges + 1;
  t.rounds <- t.rounds + 1;
  (* Every node hears the whole air, its own broadcast included; the list
     is immutable so all n slots can share it. *)
  Array.make t.n air

(* Routing an arbitrary (src, dst, payload) multiset over broadcasts:
   each source puts its messages on the air one per round, so the call
   takes [max_v #messages(v)] rounds and every payload is heard by all
   n - 1 others. The returned inboxes keep the unicast route contract —
   only the addressed destination consumes each message — so analytic
   callers behave identically; only the cost differs. *)
let route ?(width = default_width) t msgs =
  let inboxes = Array.make t.n [] in
  let per_src = Array.make t.n 0 in
  List.iter
    (fun (src, dst, payload) ->
      if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
        invalid_arg "Broadcast.route: endpoint out of range";
      let w = Array.length payload in
      if w > width then
        raise
          (Bandwidth_exceeded
             {
               src;
               dst = -1;
               words = w;
               width;
               phase = Mailbox.current_context ();
             });
      per_src.(src) <- per_src.(src) + 1;
      t.words_sent <- t.words_sent + ((t.n - 1) * w);
      inboxes.(dst) <- (src, payload) :: inboxes.(dst))
    msgs;
  Array.iteri (fun dst l -> inboxes.(dst) <- List.rev l) inboxes;
  let batches = Array.fold_left max 0 per_src in
  t.rounds <- t.rounds + max 1 batches;
  inboxes

(* [broadcast] is the model's native operation: unchanged semantics and
   cost relative to the unicast kernels. *)
let broadcast ?(width = default_width) t values =
  let view, words = Mailbox.broadcast ~n:t.n ~width values in
  t.words_sent <- t.words_sent + words;
  t.rounds <- t.rounds + Cost.broadcast_rounds;
  view

let charge t r =
  if r < 0 then invalid_arg "Broadcast.charge: negative rounds";
  t.rounds <- t.rounds + r

let stats t =
  [ ("kernel.bcast.exchanges", t.exchanges);
    ("kernel.bcast.collapsed", t.collapsed) ]
