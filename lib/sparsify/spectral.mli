(** Deterministic spectral sparsifiers in the congested clique — Theorem 3.3.

    The CGLNPS'20 pipeline, as the paper implements it (§3): repeatedly
    compute a (1/2, φ)-expander decomposition; replace every expander
    cluster by a sparse stand-in for its product demand graph; recurse on
    the crossing edges. Weighted graphs are handled by binary weight
    classes, costing the extra [log U] factor of the theorem. At the end the
    sparsifier is made known to every node (it is small enough to gather),
    which is what lets Theorem 1.1 do every preconditioner solve internally.

    Approximation quality is measured by {!Quality} (experiment E1); size
    and charged rounds follow the theorem's accounting. *)

type backend =
  | Buckets  (** degree-bucket expander stand-in ({!Product_demand.sparse}) *)
  | Bss_internal of int
      (** {!Bss.sparsify} with the given [d] on each cluster — the slow
          high-quality ablation of E8; only sensible for small inputs *)

type result = {
  sparsifier : Graph.t;  (** known to every node after [rounds] rounds *)
  levels : int;  (** decomposition recursion depth actually used *)
  classes : int;  (** number of binary weight classes (the [log U] factor) *)
  rounds : int;  (** charged congested-clique rounds *)
  phase_rounds : (string * int) list;
      (** ledger breakdown: ["decompose"] (all decomposition calls and their
          result broadcasts) and ["gather"] (making the sparsifier global) *)
}

val sparsify :
  ?phi:float ->
  ?gamma:float ->
  ?max_levels:int ->
  ?backend:backend ->
  ?model:Runtime.Model.t ->
  Graph.t ->
  result
(** [sparsify g]. [phi] (default 0.05) is the expander-decomposition target;
    [gamma] (default 0.25) only affects the charged round formula (it is the
    [n^{O(1/r²)}] knob of Theorem 3.2); [max_levels] (default
    [4·⌈log₂ m⌉ + 4]) caps the recursion — any leftover crossing edges are
    then kept verbatim, which can only improve quality. [model] (default
    {!Runtime.Model.default}, i.e. the [CC_MODEL] environment variable)
    selects unicast vs Broadcast Congested Clique {e accounting}: the
    computed sparsifier is bit-identical under both models, only the
    charged ["decompose"]/["gather"] rounds differ (DESIGN.md §13). *)

val size_bound : n:int -> u:float -> int
(** The [O(n log n log U)] edge-count bound of Theorem 3.3 with this
    implementation's constants; benches check [Graph.m sparsifier] against
    it. *)

val rounds_bound : n:int -> u:float -> gamma:float -> int
(** The [O(log n · log U · n^{O(γ)})] round bound, for reference curves. *)

val bcast_rounds_bound : n:int -> u:float -> int
(** The Broadcast Congested Clique counterpart: polylogarithmic per
    decomposition call ({!Expander.Decomposition.bcast_rounds_formula}),
    matching the [log^{O(1)} n · log U] shape of arXiv:2205.12059. The E11
    reference curve. *)
