type backend = Buckets | Bss_internal of int

type result = {
  sparsifier : Graph.t;
  levels : int;
  classes : int;
  rounds : int;
  phase_rounds : (string * int) list;
}

let weight_class w = int_of_float (Float.floor (Float.log2 w))

(* Sparsify one expander cluster: translate the induced-subgraph stand-in
   back to original vertex identifiers. *)
let cluster_sparsifier backend sub vs =
  let k = Graph.n sub in
  let translate h =
    Array.to_list (Graph.edges h)
    |> List.map (fun e -> { e with Graph.u = vs.(e.Graph.u); v = vs.(e.Graph.v) })
  in
  if k < 2 then []
  else begin
    match backend with
    | Buckets ->
      if Graph.m sub <= 2 * k then translate sub
      else begin
        (* Keep whichever representation is smaller — a cluster below the
           stand-in's own size would only grow. *)
        let candidate = Product_demand.sparse sub in
        if Graph.m candidate < Graph.m sub then translate candidate
        else translate sub
      end
    | Bss_internal d ->
      if Graph.m sub <= d * (k - 1) || not (Graph.is_connected sub) then
        translate sub
      else translate (Bss.sparsify ~d sub)
  end

let sparsify ?(phi = 0.05) ?(gamma = 0.25) ?max_levels ?(backend = Buckets)
    ?model g =
  let model =
    match model with Some m -> m | None -> Runtime.Model.default ()
  in
  let n = Graph.n g in
  let m = Graph.m g in
  let max_levels =
    match max_levels with
    | Some k -> k
    | None -> (4 * Runtime.Cost.log2_ceil (max m 2)) + 4
  in
  (* Binary weight classes (the log U factor of Theorem 3.3). *)
  let class_tbl = Hashtbl.create 8 in
  Array.iteri
    (fun id e ->
      let c = weight_class e.Graph.w in
      let cur = try Hashtbl.find class_tbl c with Not_found -> [] in
      Hashtbl.replace class_tbl c (id :: cur))
    (Graph.edges g);
  let class_list =
    Hashtbl.fold (fun c ids acc -> (c, List.rev ids) :: acc) class_tbl []
    |> List.sort compare
  in
  let rt = Clique.Kernel.clique (max 1 n) in
  let max_level_used = ref 0 in
  let sparsifier_edges = ref [] in
  List.iter
    (fun (_c, ids) ->
      let current = ref (Graph.sub_edges g ids) in
      let level = ref 0 in
      while Graph.m !current > 0 && !level < max_levels do
        incr level;
        max_level_used := max !max_level_used !level;
        let d = Expander.Decomposition.decompose ~phi ~gamma !current in
        (* The partition itself is model-independent; only its charged
           price differs. Unicast pays the Theorem 3.2 formula; broadcast
           pays the FV22 polylog recharge of the send-bound core
           (DESIGN.md §13). The one-round result broadcast costs the same
           either way — broadcasting is the model's native move. *)
        let decompose_rounds =
          match model with
          | Runtime.Model.Unicast -> d.Expander.Decomposition.rounds
          | Runtime.Model.Broadcast ->
            Expander.Decomposition.bcast_rounds_formula
              ~n:(Graph.n !current)
        in
        Clique.Kernel.charge rt ~phase:"decompose"
          (decompose_rounds + Runtime.Cost.broadcast_rounds);
        List.iter
          (fun vs ->
            let sub, _ = Graph.induced !current vs in
            sparsifier_edges :=
              cluster_sparsifier backend sub vs @ !sparsifier_edges)
          d.Expander.Decomposition.clusters;
        current := Graph.sub_edges !current d.Expander.Decomposition.crossing
      done;
      (* Level cap reached with edges remaining: keep them verbatim. *)
      if Graph.m !current > 0 then
        sparsifier_edges :=
          Array.to_list (Graph.edges !current) @ !sparsifier_edges)
    class_list;
  let h = Graph.reweight_simple (Graph.create n !sparsifier_edges) in
  (* Make the sparsifier globally known: gather all its edges everywhere. *)
  let u = Float.max 1. (Graph.max_weight g) in
  let bits_per_edge =
    (3 * Runtime.Cost.log2_ceil (max n 2))
    + Runtime.Cost.log2_ceil (int_of_float (Float.ceil u) + 1)
  in
  (* A gather is receive-bound, so the two models price it almost alike:
     ⌈m·w/(n-1)⌉ unicast vs ⌈m·w/n⌉ broadcast. *)
  Clique.Kernel.charge rt ~phase:"gather"
    (match model with
    | Runtime.Model.Unicast ->
      Runtime.Cost.gather_rounds ~n ~m:(Graph.m h) ~bits_per_edge
    | Runtime.Model.Broadcast ->
      Runtime.Cost.bcast_gather_rounds ~n ~m:(Graph.m h) ~bits_per_edge);
  {
    sparsifier = h;
    levels = !max_level_used;
    classes = List.length class_list;
    rounds = Clique.Kernel.rounds rt;
    phase_rounds = Clique.Kernel.phases rt;
  }

let size_bound ~n ~u =
  let logn = Runtime.Cost.log2_ceil (max n 2) in
  let logu = 1 + Runtime.Cost.log2_ceil (int_of_float (Float.ceil u) + 1) in
  (* Per weight class and level: O(n · degree) cluster edges with
     degree = O(log n); levels = O(log m) = O(log n). *)
  32 * n * (logn + 4) * (logn + 4) * logu

let rounds_bound ~n ~u ~gamma =
  let logn = Runtime.Cost.log2_ceil (max n 2) in
  let logu = 1 + Runtime.Cost.log2_ceil (int_of_float (Float.ceil u) + 1) in
  let per_call = Expander.Decomposition.rounds_formula ~n ~gamma in
  (4 * (logn + 1) * logu * (per_call + 1)) + (8 * (logn + 4) * (logn + 4) * logu)

let bcast_rounds_bound ~n ~u =
  (* Same envelope as [rounds_bound] with the per-decomposition cost
     swapped for the broadcast recharge: O(log n · log U · polylog n). *)
  let logn = Runtime.Cost.log2_ceil (max n 2) in
  let logu = 1 + Runtime.Cost.log2_ceil (int_of_float (Float.ceil u) + 1) in
  let per_call = Expander.Decomposition.bcast_rounds_formula ~n in
  (4 * (logn + 1) * logu * (per_call + 1)) + (8 * (logn + 4) * (logn + 4) * logu)
