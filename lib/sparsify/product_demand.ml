let weighted_degrees g =
  Array.init (Graph.n g) (fun v -> Graph.weighted_degree g v)

let scale_of g =
  let total = Graph.total_weight g in
  if total <= 0. then 0. else 2. /. total

let complete g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Product_demand.complete: need n >= 2";
  let d = weighted_degrees g in
  let s = scale_of g in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let w = s *. d.(u) *. d.(v) in
      if w > 0. then acc := { Graph.u; v; w } :: !acc
    done
  done;
  Graph.create n !acc

let default_degree n = 3 + Runtime.Cost.log2_ceil (max n 2)

let edge_count_bound ~n ~degree =
  let classes = Runtime.Cost.log2_ceil (max n 2) + 2 in
  (n * degree) + (classes * classes * degree)

(* Offsets 1, 2, 4, ... — the same deterministic circulant family as
   Gen.expander. *)
let circulant_offsets limit count =
  let rec loop o k acc =
    if k = 0 || o > limit then List.rev acc else loop (o * 2) (k - 1) (o :: acc)
  in
  if limit < 1 then [] else loop 1 count [ 1 ] |> List.sort_uniq compare

let sparse ?degree g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Product_demand.sparse: need n >= 2";
  let t = match degree with Some d -> max 1 d | None -> default_degree n in
  let d = weighted_degrees g in
  let s = scale_of g in
  (* Binary degree classes over vertices with positive degree. *)
  let buckets = Hashtbl.create 8 in
  for v = 0 to n - 1 do
    if d.(v) > 0. then begin
      let c = int_of_float (Float.floor (Float.log2 d.(v))) in
      let cur = try Hashtbl.find buckets c with Not_found -> [] in
      Hashtbl.replace buckets c (v :: cur)
    end
  done;
  let classes =
    Hashtbl.fold (fun c vs acc -> (c, Array.of_list (List.rev vs)) :: acc)
      buckets []
    |> List.sort compare
    |> List.map snd
    |> Array.of_list
  in
  let acc = ref [] in
  let add_edges pairs mass =
    (* Distribute [mass] over [pairs] proportionally to d_u·d_v. *)
    let z =
      List.fold_left (fun z (u, v) -> z +. (d.(u) *. d.(v))) 0. pairs
    in
    if z > 0. && mass > 0. then
      List.iter
        (fun (u, v) ->
          let w = mass *. d.(u) *. d.(v) /. z in
          if w > 0. then acc := { Graph.u; v; w } :: !acc)
        pairs
  in
  let k = Array.length classes in
  for i = 0 to k - 1 do
    let bi = classes.(i) in
    let si = Array.fold_left (fun z v -> z +. d.(v)) 0. bi in
    (* Intra-class circulant expander. *)
    let a = Array.length bi in
    if a >= 2 then begin
      let sq = Array.fold_left (fun z v -> z +. (d.(v) *. d.(v))) 0. bi in
      let mass = s *. ((si *. si) -. sq) /. 2. in
      let offsets = circulant_offsets (a / 2) t in
      let pairs = ref [] in
      List.iter
        (fun o ->
          for p = 0 to a - 1 do
            let q = (p + o) mod a in
            if q <> p then pairs := (bi.(min p q), bi.(max p q)) :: !pairs
          done)
        offsets;
      (* Deduplicate (each undirected pair appears from both endpoints, and
         wrap-around can revisit a pair when 2o = a). *)
      let tbl = Hashtbl.create 16 in
      let uniq =
        List.filter
          (fun (u, v) ->
            let key = (min u v, max u v) in
            if Hashtbl.mem tbl key then false
            else begin
              Hashtbl.replace tbl key ();
              true
            end)
          !pairs
      in
      add_edges uniq mass
    end;
    (* Inter-class bipartite circulants. *)
    for j = i + 1 to k - 1 do
      let bj = classes.(j) in
      let sj = Array.fold_left (fun z v -> z +. d.(v)) 0. bj in
      let mass = s *. si *. sj in
      let a = Array.length bi and b = Array.length bj in
      let reach = min t b in
      let pairs = ref [] in
      for p = 0 to a - 1 do
        for off = 0 to reach - 1 do
          pairs := (bi.(p), bj.((p + off) mod b)) :: !pairs
        done
      done;
      (* When the left class is tiny, some right vertices would be missed;
         sweep the other direction too. *)
      let covered = Hashtbl.create 16 in
      List.iter (fun (_, v) -> Hashtbl.replace covered v ()) !pairs;
      Array.iteri
        (fun q v ->
          if not (Hashtbl.mem covered v) then
            pairs := (bi.(q mod a), v) :: !pairs)
        bj;
      let tbl = Hashtbl.create 16 in
      let uniq =
        List.filter
          (fun (u, v) ->
            if Hashtbl.mem tbl (u, v) then false
            else begin
              Hashtbl.replace tbl (u, v) ();
              true
            end)
          !pairs
      in
      add_edges uniq mass
    done
  done;
  Graph.create n !acc
