let log_src = Logs.Src.create "repro.mincost" ~doc:"Theorem 1.3 min-cost-flow IPM"

module Log = (val Logs.src_log log_src : Logs.LOG)

type report = {
  f : Flow.t;
  cost : float;
  ipm_iterations : int;
  laplacian_solves : int;
  repair_augmentations : int;
  rounds : int;
  phase_rounds : (string * int) list;
}

let eta = 1. /. 14.

(* Shape reference for E6: CMSV run c_T·m^{1/2−3η} outer × m^{2η} inner
   iterations with c_T = 3·c_ρ·log W, c_ρ = 400√3·log^{1/3} W; we keep
   m^{3/7}·log W and drop the (enormous) constant so the curve is directly
   comparable to measured counts at bench sizes. *)
let iterations_reference ~m ~w =
  let mf = float_of_int (max m 2) in
  let lw = Float.max 1. (Float.log2 (float_of_int (max w 2))) in
  int_of_float (Float.ceil (lw *. (mf ** (0.5 -. eta))))

(* ---------------------------------------------------------------- lift *)

type lift = {
  lg : Digraph.t;
  m0 : int;
  v_aux : int;
  sigma_hat : int array;
}

let build_lift g ~sigma =
  if not (Digraph.is_unit_capacity g) then
    invalid_arg "Mcf_ipm.solve: capacities must be 1";
  let n = Digraph.n g in
  if Array.length sigma <> n then invalid_arg "Mcf_ipm.solve: sigma length";
  if Array.fold_left ( + ) 0 sigma <> 0 then
    invalid_arg "Mcf_ipm.solve: sigma must sum to zero";
  let v_aux = n in
  let big_cost =
    1 + Array.fold_left (fun a x -> a + abs x.Digraph.cost) 0 (Digraph.arcs g)
  in
  let arcs = ref (List.rev (Array.to_list (Digraph.arcs g))) in
  (* 2t(v) = 2σ(v) + deg_in − deg_out auxiliary unit arcs per vertex
     (Algorithm 7): with f = ½ everywhere they absorb exactly t(v). *)
  for v = 0 to n - 1 do
    let two_t =
      (2 * sigma.(v)) + Digraph.in_degree g v - Digraph.out_degree g v
    in
    for _ = 1 to abs two_t do
      if two_t > 0 then
        arcs := { Digraph.src = v; dst = v_aux; cap = 1; cost = big_cost } :: !arcs
      else
        arcs := { Digraph.src = v_aux; dst = v; cap = 1; cost = big_cost } :: !arcs
    done
  done;
  let lg = Digraph.create (n + 1) (List.rev !arcs) in
  let sigma_hat = Array.make (n + 1) 0 in
  Array.blit sigma 0 sigma_hat 0 n;
  { lg; m0 = Digraph.m g; v_aux; sigma_hat }

(* ------------------------------------------------------------------ IPM *)

(* One central-path iteration: Newton/electrical step at the current µ.
   Returns (rounds, ||ρ||₄). *)
let newton_step ~solver lift support f mu =
  let lg = lift.lg in
  let mh = Digraph.m lg in
  let nh = Digraph.n lg in
  let cost_of e = float_of_int (Digraph.arc lg e).Digraph.cost in
  let w = Array.make mh 0. in
  let gvec = Array.make mh 0. in
  for e = 0 to mh - 1 do
    let fe = f.(e) in
    let h = mu *. ((1. /. (fe *. fe)) +. (1. /. ((1. -. fe) *. (1. -. fe)))) in
    w.(e) <- 1. /. h;
    gvec.(e) <- cost_of e -. (mu /. fe) +. (mu /. (1. -. fe))
  done;
  (* rhs = B W g with (Bx)_v = inflow − outflow. *)
  let rhs = Linalg.Vec.create nh in
  Array.iteri
    (fun e a ->
      let x = w.(e) *. gvec.(e) in
      rhs.(a.Digraph.dst) <- rhs.(a.Digraph.dst) +. x;
      rhs.(a.Digraph.src) <- rhs.(a.Digraph.src) -. x)
    (Digraph.arcs lg);
  let elec =
    Electrical.compute ~solver ~support ~resistance:(fun e -> 1. /. w.(e)) ~b:rhs ()
  in
  let lambda = elec.Electrical.potentials in
  (* Δf = W(Bᵀλ − g); Bᵀλ on arc (u,v) is λ_v − λ_u. *)
  let df = Array.make mh 0. in
  Array.iteri
    (fun e a ->
      df.(e) <-
        w.(e) *. (lambda.(a.Digraph.dst) -. lambda.(a.Digraph.src) -. gvec.(e)))
    (Digraph.arcs lg);
  (* Congestion and step size. *)
  let rho4 = ref 0. in
  let gamma = ref 1. in
  for e = 0 to mh - 1 do
    let slack = Float.min f.(e) (1. -. f.(e)) in
    let r = Float.abs df.(e) /. slack in
    rho4 := !rho4 +. (r *. r *. r *. r);
    if Float.abs df.(e) > 1e-15 then
      gamma := Float.min !gamma (0.25 *. slack /. Float.abs df.(e))
  done;
  let rho4 = !rho4 ** 0.25 in
  for e = 0 to mh - 1 do
    f.(e) <- f.(e) +. (!gamma *. df.(e))
  done;
  (elec.Electrical.solver_rounds + 2, rho4)

(* Re-center the demand after float drift: one electrical correction. *)
let fix_demand ~solver lift support f =
  let lg = lift.lg in
  let nh = Digraph.n lg in
  let viol = Linalg.Vec.create nh in
  Array.iteri
    (fun e a ->
      viol.(a.Digraph.dst) <- viol.(a.Digraph.dst) +. f.(e);
      viol.(a.Digraph.src) <- viol.(a.Digraph.src) -. f.(e))
    (Digraph.arcs lg);
  for v = 0 to nh - 1 do
    viol.(v) <- viol.(v) +. float_of_int lift.sigma_hat.(v)
  done;
  let drift = Linalg.Vec.norm_inf viol in
  if drift < 1e-12 then 0
  else begin
    let w e =
      let fe = f.(e) in
      let slack = Float.min fe (1. -. fe) in
      slack *. slack
    in
    let elec =
      Electrical.compute ~solver ~support ~resistance:(fun e -> 1. /. w e)
        ~b:(Array.map (fun x -> -.x) viol)
        ()
    in
    Array.iteri
      (fun e fe ->
        let capped =
          let slack = 0.5 *. Float.min f.(e) (1. -. f.(e)) in
          Float.max (-.slack) (Float.min fe slack)
        in
        f.(e) <- f.(e) +. capped)
      elec.Electrical.flow;
    elec.Electrical.solver_rounds
  end

(* --------------------------------------------------------------- repair *)

(* Residual arcs for the unit-capacity integral flow: saturated arcs flip.
   Bellman–Ford negative-cycle cancelling until optimal. *)
let cancel_negative_cycles g f =
  let m = Digraph.m g in
  let n = Digraph.n g in
  let cancellations = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    (* Residual arc e: usable forward if f=0 (cost +c), backward if f=1
       (cost −c). Run BF from a virtual source connected to everyone. *)
    let dist = Array.make n 0. in
    let parent = Array.make n (-1) in
    (* residual arc code: 2e forward, 2e+1 backward *)
    let relaxed = ref true in
    let last_relaxed = ref (-1) in
    let iters = ref 0 in
    while !relaxed && !iters <= n do
      relaxed := false;
      incr iters;
      Array.iteri
        (fun e a ->
          let c = float_of_int a.Digraph.cost in
          if f.(e) < 0.5 then begin
            if dist.(a.Digraph.src) +. c < dist.(a.Digraph.dst) -. 1e-9 then begin
              dist.(a.Digraph.dst) <- dist.(a.Digraph.src) +. c;
              parent.(a.Digraph.dst) <- 2 * e;
              relaxed := true;
              last_relaxed := a.Digraph.dst
            end
          end
          else if dist.(a.Digraph.dst) -. c < dist.(a.Digraph.src) -. 1e-9 then begin
            dist.(a.Digraph.src) <- dist.(a.Digraph.dst) -. c;
            parent.(a.Digraph.src) <- (2 * e) + 1;
            relaxed := true;
            last_relaxed := a.Digraph.src
          end)
        (Digraph.arcs g)
    done;
    (* The loop exits either converged (last pass relaxed nothing) or still
       relaxing after n passes — only the latter certifies a cycle. *)
    if (not !relaxed) || !last_relaxed < 0 then continue_ := false
    else begin
      (* A vertex relaxed in round n+1 lies on / reaches a negative cycle:
         walk parents n steps to land on it, then trace the cycle. *)
      let v = ref !last_relaxed in
      for _ = 1 to n do
        let code = parent.(!v) in
        if code >= 0 then begin
          let e = code / 2 in
          let a = Digraph.arc g e in
          v := if code land 1 = 0 then a.Digraph.src else a.Digraph.dst
        end
      done;
      let start = !v in
      let cycle = ref [] in
      let cur = ref start in
      let rec trace () =
        let code = parent.(!cur) in
        let e = code / 2 in
        let a = Digraph.arc g e in
        cycle := code :: !cycle;
        cur := (if code land 1 = 0 then a.Digraph.src else a.Digraph.dst);
        if !cur <> start && List.length !cycle <= m + n then trace ()
      in
      trace ();
      if !cur <> start then continue_ := false
      else begin
        incr cancellations;
        List.iter
          (fun code ->
            let e = code / 2 in
            if code land 1 = 0 then f.(e) <- 1. else f.(e) <- 0.)
          !cycle
      end
    end
  done;
  !cancellations

(* Route remaining demand deficits along residual shortest paths. Returns
   None when some deficit cannot be routed (infeasible instance). *)
let route_deficits g sigma f =
  let n = Digraph.n g in
  let augmentations = ref 0 in
  let deficit () =
    let ex = Flow.excess g f in
    let supply = ref [] and demand = ref [] in
    for v = 0 to n - 1 do
      let d = ex.(v) +. float_of_int sigma.(v) in
      if d > 0.5 then supply := v :: !supply
      else if d < -0.5 then demand := v :: !demand
    done;
    (!supply, !demand)
  in
  let feasible = ref true in
  let continue_ = ref true in
  while !continue_ && !feasible do
    match deficit () with
    | [], [] -> continue_ := false
    | supply, demand when supply <> [] && demand <> [] ->
      (* Bellman–Ford over residual arcs from all surplus vertices. *)
      let dist = Array.make n infinity in
      let parent = Array.make n (-1) in
      List.iter (fun v -> dist.(v) <- 0.) supply;
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds <= n do
        changed := false;
        incr rounds;
        Array.iteri
          (fun e a ->
            let c = float_of_int a.Digraph.cost in
            if f.(e) < 0.5 then begin
              if
                dist.(a.Digraph.src) +. c < dist.(a.Digraph.dst) -. 1e-9
                && dist.(a.Digraph.src) < infinity
              then begin
                dist.(a.Digraph.dst) <- dist.(a.Digraph.src) +. c;
                parent.(a.Digraph.dst) <- 2 * e;
                changed := true
              end
            end
            else if
              dist.(a.Digraph.dst) -. c < dist.(a.Digraph.src) -. 1e-9
              && dist.(a.Digraph.dst) < infinity
            then begin
              dist.(a.Digraph.src) <- dist.(a.Digraph.dst) -. c;
              parent.(a.Digraph.src) <- (2 * e) + 1;
              changed := true
            end)
          (Digraph.arcs g)
      done;
      let target =
        List.fold_left
          (fun best v ->
            match best with
            | Some b when dist.(b) <= dist.(v) -> best
            | _ -> if dist.(v) < infinity then Some v else best)
          None demand
      in
      begin
        match target with
        | None -> feasible := false
        | Some t ->
          incr augmentations;
          let cur = ref t in
          let steps = ref 0 in
          while parent.(!cur) >= 0 && !steps <= n + 1 do
            incr steps;
            let code = parent.(!cur) in
            let e = code / 2 in
            let a = Digraph.arc g e in
            if code land 1 = 0 then begin
              f.(e) <- 1.;
              cur := a.Digraph.src
            end
            else begin
              f.(e) <- 0.;
              cur := a.Digraph.dst
            end
          done
      end
    | _ -> feasible := false
  done;
  if !feasible then Some !augmentations else None

(* ----------------------------------------------------------------- solve *)

(* Shared Repairing phase (Algorithm 10's role): gather, decompose through a
   super source/sink, quantize, cost-aware round, route deficits, cancel
   negative cycles, detect infeasibility via stuck auxiliary arcs. Returns
   the exact original-arc flow and the repair-operation count. *)
let round_and_repair lift f rt =
  let lg = lift.lg in
  let mh = Digraph.m lg in
  let n = Digraph.n lg - 1 in
  let grid_bits = Runtime.Cost.log2_ceil (8 * mh) + 1 in
  let delta = 1. /. float_of_int (1 lsl grid_bits) in
  Clique.Kernel.charge rt ~phase:"gather"
    (Runtime.Cost.gather_rounds ~n:(max n 2) ~m:mh
       ~bits_per_edge:((2 * Runtime.Cost.log2_ceil (max n 2)) + grid_bits));
  let ss = Digraph.n lg and tt = Digraph.n lg + 1 in
  let ext_arcs = ref [] in
  let ext_flow = ref [] in
  Array.iter (fun a -> ext_arcs := a :: !ext_arcs) (Digraph.arcs lg);
  Array.iteri (fun e _ -> ext_flow := f.(e) :: !ext_flow) (Digraph.arcs lg);
  Array.iteri
    (fun v s ->
      if s > 0 then begin
        ext_arcs := { Digraph.src = ss; dst = v; cap = s; cost = 0 } :: !ext_arcs;
        ext_flow := float_of_int s :: !ext_flow
      end
      else if s < 0 then begin
        ext_arcs := { Digraph.src = v; dst = tt; cap = -s; cost = 0 } :: !ext_arcs;
        ext_flow := float_of_int (-s) :: !ext_flow
      end)
    lift.sigma_hat;
  let ext = Digraph.create (Digraph.n lg + 2) (List.rev !ext_arcs) in
  let fx = Array.of_list (List.rev !ext_flow) in
  let items = Decompose.decompose ~tol:(delta /. 8.) ext ~s:ss ~t:tt fx in
  let paths = Decompose.quantize_paths ~delta items in
  let fq = Decompose.accumulate ext paths in
  let arc_cost e = float_of_int (Digraph.arc ext e).Digraph.cost in
  let rounded =
    if Array.for_all (fun x -> x = 0.) fq then
      { Rounding.Flow_rounding.f = fq; rounds = 0; levels = 0;
        phase_rounds = [] }
    else Rounding.Flow_rounding.round ~cost:arc_cost ext ~s:ss ~t:tt ~delta fq
  in
  Clique.Kernel.charge rt ~phase:"rounding"
    rounded.Rounding.Flow_rounding.rounds;
  let f_lift = Array.sub rounded.Rounding.Flow_rounding.f 0 mh in
  match route_deficits lg lift.sigma_hat f_lift with
  | None -> None
  | Some deficit_augs ->
    let cancels = cancel_negative_cycles lg f_lift in
    let repair = deficit_augs + cancels in
    Clique.Kernel.charge rt ~phase:"repair"
      ((repair + 1) * Runtime.Cost.apsp_rounds (max n 2));
    let aux_used =
      let used = ref false in
      for e = lift.m0 to mh - 1 do
        if f_lift.(e) > 0.5 then used := true
      done;
      !used
    in
    if aux_used then None else Some (Array.sub f_lift 0 lift.m0, repair)

let solve ?(solver = Electrical.Cg 1e-10) ?iteration_cap g ~sigma =
  let lift = build_lift g ~sigma in
  let lg = lift.lg in
  let mh = Digraph.m lg in
  let w_max = max 1 (Digraph.max_cost g) in
  let rt = Clique.Kernel.clique (max 1 (Digraph.n lg)) in
  let support = Graph.create (Digraph.n lg)
      (Array.to_list (Digraph.arcs lg)
      |> List.map (fun a ->
             { Graph.u = a.Digraph.src; v = a.Digraph.dst; w = 1. }))
  in
  let f = Array.make mh 0.5 in
  let mu = ref (float_of_int (1 + Digraph.max_cost lg)) in
  let mu_end = 1. /. (32. *. float_of_int mh) in
  let cap =
    match iteration_cap with
    | Some c -> c
    | None -> 150 + (20 * iterations_reference ~m:(Digraph.m g) ~w:w_max)
  in
  let iters = ref 0 in
  let solves = ref 0 in
  while !mu > mu_end && !iters < cap do
    incr iters;
    let step_rounds, rho4 = newton_step ~solver lift support f !mu in
    incr solves;
    Clique.Kernel.charge rt ~phase:"ipm" step_rounds;
    (* CMSV's µ-reduction rule: cap the rate by the observed congestion
       (this is where their Perturbation loop does its work). *)
    let delta = Float.min 0.125 (1. /. (8. *. Float.max rho4 1e-9)) in
    mu := !mu *. (1. -. delta);
    if !iters mod 8 = 0 then begin
      let r = fix_demand ~solver lift support f in
      if r > 0 then begin
        incr solves;
        Clique.Kernel.charge rt ~phase:"ipm" r
      end
    end
  done;
  Log.debug (fun k ->
      k "solve: m=%d iterations=%d final_mu=%.2e" mh !iters !mu);
  match round_and_repair lift f rt with
  | None -> None
  | Some (f_final, repair) ->
    Some
      {
        f = f_final;
        cost = Flow.cost g f_final;
        ipm_iterations = !iters;
        laplacian_solves = !solves;
        repair_augmentations = repair;
        rounds = Clique.Kernel.rounds rt;
        phase_rounds = Clique.Kernel.phases rt;
      }

(* §2.4: min-cost max s-t flow reduces to min-cost flow by binary search
   over the flow value. *)
let solve_max_flow_min_cost ?solver g ~s ~t =
  if s = t then invalid_arg "Mcf_ipm.solve_max_flow_min_cost: s = t";
  let n = Digraph.n g in
  let upper =
    List.fold_left (fun a id -> a + (Digraph.arc g id).Digraph.cap) 0
      (Digraph.out_arcs g s)
  in
  let probe_count = ref 0 in
  let attempt f =
    incr probe_count;
    let sigma = Array.make n 0 in
    sigma.(s) <- f;
    sigma.(t) <- -f;
    solve ?solver g ~sigma
  in
  (* Largest feasible value by binary search. *)
  let rec search lo hi best =
    if lo > hi then best
    else begin
      let mid = (lo + hi) / 2 in
      match attempt mid with
      | Some r -> search (mid + 1) hi (Some r)
      | None -> search lo (mid - 1) best
    end
  in
  match search 0 upper None with
  | None -> None
  | Some r -> Some (r, !probe_count)

let rounds_reference ~n ~m ~w =
  let solve_proxy = Linalg.Chebyshev.iteration_bound ~kappa:64. ~eps:1e-8 in
  (iterations_reference ~m ~w * solve_proxy)
  + (Runtime.Cost.log2_ceil (8 * m) * Euler.Orientation.rounds_reference ~n)
  + (int_of_float (Float.ceil ((float_of_int (max m 2) ** (3. /. 7.)) +. 1.))
    * Runtime.Cost.apsp_rounds n)
