let default_weight g id = float_of_int (Digraph.arc g id).Digraph.cost

let dijkstra g ?weight ?(usable = fun _ -> true) ~sources () =
  let weight = match weight with Some w -> w | None -> default_weight g in
  let n = Digraph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let pq = ref Pq.empty in
  List.iter
    (fun s ->
      dist.(s) <- 0.;
      pq := Pq.add (0., s) !pq)
    sources;
  while not (Pq.is_empty !pq) do
    let ((d, v) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if d <= dist.(v) then
      List.iter
        (fun id ->
          if usable id then begin
            let a = Digraph.arc g id in
            let w = weight id in
            if w < 0. then invalid_arg "Sssp.dijkstra: negative weight";
            let nd = d +. w in
            if nd < dist.(a.Digraph.dst) -. 1e-15 then begin
              dist.(a.Digraph.dst) <- nd;
              parent.(a.Digraph.dst) <- id;
              pq := Pq.add (nd, a.Digraph.dst) !pq
            end
          end)
        (Digraph.out_arcs g v)
  done;
  (dist, parent)

let bellman_ford g ?weight ?(usable = fun _ -> true) ~sources () =
  let weight = match weight with Some w -> w | None -> default_weight g in
  let n = Digraph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  List.iter (fun s -> dist.(s) <- 0.) sources;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    Array.iteri
      (fun id a ->
        if usable id && dist.(a.Digraph.src) < infinity then begin
          let nd = dist.(a.Digraph.src) +. weight id in
          if nd < dist.(a.Digraph.dst) -. 1e-12 then begin
            dist.(a.Digraph.dst) <- nd;
            parent.(a.Digraph.dst) <- id;
            changed := true
          end
        end)
      (Digraph.arcs g)
  done;
  if !changed then None else Some (dist, parent)

let path_to ~parent g v =
  let rec loop v acc =
    match parent.(v) with
    | -1 -> acc
    | id -> loop (Digraph.arc g id).Digraph.src (id :: acc)
  in
  loop v []

let charged_rounds ~n = Runtime.Cost.apsp_rounds n
