let log_src = Logs.Src.create "repro.maxflow" ~doc:"Theorem 1.2 max-flow IPM"

module Log = (val Logs.src_log log_src : Logs.LOG)

type report = {
  f : Flow.t;
  value : int;
  ipm_iterations : int;
  laplacian_solves : int;
  repair_augmentations : int;
  rounds : int;
  phase_rounds : (string * int) list;
}

let eta = 1. /. 14.

(* Shape reference for E5: the paper's budget is 100·(1/δ)·log U with
   δ = m^{η−1/2}; we drop the constant and the log factor so the curve is
   directly comparable to measured counts at bench sizes. *)
let iterations_reference ~m ~u =
  let mf = float_of_int (max m 2) and uf = float_of_int (max u 1) in
  int_of_float (Float.ceil ((mf ** (0.5 -. eta)) *. (uf ** (1. /. 7.))))

(* Two-sided residual capacities of the symmetrized instance:
   f_e ∈ (−u_e, u_e) strictly. *)
let slacks g f_rel e =
  let u = float_of_int (Digraph.arc g e).Digraph.cap in
  (u -. f_rel.(e), u +. f_rel.(e))

let resistance g f_rel e =
  if (Digraph.arc g e).Digraph.cap = 0 then
    (* Zero-capacity arcs can never carry flow: model them as (nearly)
       open circuits so the support graph stays well-formed. *)
    1e18
  else begin
    let up, um = slacks g f_rel e in
    (1. /. (up *. up)) +. (1. /. (um *. um))
  end

let support_of g =
  Graph.create (Digraph.n g)
    (Array.to_list (Digraph.arcs g)
    |> List.map (fun a -> { Graph.u = a.Digraph.src; v = a.Digraph.dst; w = 1. }))

(* One progress step: Augmentation (solve for the residual demand, step with
   congestion control) followed by Fixing (solve away the conservation
   drift). Returns (rounds charged, step value gained). *)
let progress_step ~solver g support f_rel ~s ~t ~remaining =
  let n = Digraph.n g in
  let b = Linalg.Vec.create n in
  b.(s) <- remaining;
  b.(t) <- b.(t) -. remaining;
  let res e = resistance g f_rel e in
  let elec = Electrical.compute ~solver ~support ~resistance:res ~b () in
  (* Largest safe step: stay strictly inside the box. *)
  let gamma = ref 1. in
  Array.iteri
    (fun e fe ->
      let fe = Float.abs fe in
      if fe > 1e-14 && (Digraph.arc g e).Digraph.cap > 0 then begin
        let up, um = slacks g f_rel e in
        gamma := Float.min !gamma (0.3 *. Float.min up um /. fe)
      end)
    elec.Electrical.flow;
  let gamma = !gamma in
  Array.iteri
    (fun e fe ->
      if (Digraph.arc g e).Digraph.cap > 0 then
        f_rel.(e) <- f_rel.(e) +. (gamma *. fe))
    elec.Electrical.flow;
  (* Fixing: push the (numerical) excess back where it belongs. *)
  let ex = Flow.excess g f_rel in
  ex.(s) <- 0.;
  ex.(t) <- 0.;
  let drift = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0. ex in
  let fix_rounds =
    if drift > 1e-12 then begin
      (* A flow with injections b has excess −b, so cancelling the excess
         means injecting b = +ex at the drifted vertices. *)
      let fix = Electrical.compute ~solver ~support ~resistance:res ~b:ex () in
      Array.iteri
        (fun e fe ->
          if (Digraph.arc g e).Digraph.cap > 0 then begin
            let up, um = slacks g f_rel e in
            let fe =
              (* never let the fix violate the box *)
              Float.max (-.(0.5 *. um)) (Float.min fe (0.5 *. up))
            in
            f_rel.(e) <- f_rel.(e) +. fe
          end)
        fix.Electrical.flow;
      fix.Electrical.solver_rounds
    end
    else 1
  in
  (elec.Electrical.solver_rounds + fix_rounds + 2, gamma *. remaining)

let max_flow ?(solver = Electrical.Cg 1e-10) ?iteration_cap g ~s ~t =
  if s = t then invalid_arg "Maxflow_ipm.max_flow: s = t";
  let n = Digraph.n g in
  let m = Digraph.m g in
  let u = max 1 (Digraph.max_capacity g) in
  let rt = Clique.Kernel.clique (max 1 n) in
  let zero_report value f =
    {
      f;
      value;
      ipm_iterations = 0;
      laplacian_solves = 0;
      repair_augmentations = 0;
      rounds = Clique.Kernel.rounds rt;
      phase_rounds = Clique.Kernel.phases rt;
    }
  in
  if m = 0 then zero_report 0 [||]
  else begin
    let support = support_of g in
    let cap_bound =
      List.fold_left
        (fun a id -> a + (Digraph.arc g id).Digraph.cap)
        0 (Digraph.out_arcs g s)
    in
    let target = float_of_int cap_bound in
    let f_rel = Array.make m 0. in
    let cap =
      match iteration_cap with
      | Some c -> c
      | None -> 100 + (20 * iterations_reference ~m ~u)
    in
    (* IPM phase: drive the symmetrized flow toward the target, stalling at
       the symmetrized optimum. *)
    let val_routed = ref 0. in
    let iters = ref 0 in
    let solves = ref 0 in
    let stall = ref 0 in
    while !iters < cap && !stall < 8 && target -. !val_routed > 0.125 do
      incr iters;
      let remaining = target -. !val_routed in
      let step_rounds, gained =
        progress_step ~solver g support f_rel ~s ~t ~remaining
      in
      solves := !solves + 2;
      Clique.Kernel.charge rt ~phase:"ipm" step_rounds;
      val_routed := !val_routed +. gained;
      if gained < 1e-6 *. Float.max target 1. then incr stall else stall := 0
    done;
    (* Gather the fractional flow so the grid snap can run internally. *)
    let grid_bits = Runtime.Cost.log2_ceil (4 * m) + 2 in
    let delta = 1. /. float_of_int (1 lsl grid_bits) in
    Clique.Kernel.charge rt ~phase:"gather"
      (Runtime.Cost.gather_rounds ~n ~m
         ~bits_per_edge:
           ((2 * Runtime.Cost.log2_ceil (max n 2))
           + Runtime.Cost.log2_ceil (u + 1)
           + grid_bits));
    (* Project the signed relaxation onto a directed-feasible grid flow: the
       largest flow dominated by the positive part of f_rel, computed
       internally (every node holds the gathered fractional flow) in exact
       grid units. This dominates any per-path filtering and conserves
       exactly on the grid. *)
    let grain = 1 lsl grid_bits in
    let projected_caps =
      Array.init m (fun e ->
          let x = Float.max 0. f_rel.(e) in
          int_of_float (Float.floor (x *. float_of_int grain)))
    in
    let dg =
      Digraph.create n
        (Array.to_list (Digraph.arcs g)
        |> List.mapi (fun e a -> { a with Digraph.cap = projected_caps.(e) }))
    in
    let f_units, _ = Dinic.max_flow dg ~s ~t in
    let f_dir = Array.map (fun x -> x /. float_of_int grain) f_units in
    (* Round to integrality with the Eulerian-orientation rounding. *)
    let rounded =
      if Array.for_all (fun x -> x = 0.) f_dir then
        { Rounding.Flow_rounding.f = f_dir; rounds = 0; levels = 0;
          phase_rounds = [] }
      else Rounding.Flow_rounding.round g ~s ~t ~delta f_dir
    in
    Clique.Kernel.charge rt ~phase:"rounding"
      rounded.Rounding.Flow_rounding.rounds;
    let f_int = Array.map int_of_float rounded.Rounding.Flow_rounding.f in
    (* Exact repair with augmenting paths. *)
    let f_final, _gained, repairs =
      Ford_fulkerson.augment_from g ~s ~t ~initial:f_int
    in
    Log.debug (fun k ->
        k "max_flow: m=%d ipm_iterations=%d routed=%.3f repairs=%d" m !iters
          !val_routed repairs);
    Clique.Kernel.charge rt ~phase:"repair"
      ((repairs + 1) * Runtime.Cost.apsp_rounds n);
    let value =
      let ex = Flow.excess g (Array.map float_of_int f_final) in
      int_of_float (Float.round (-.ex.(s)))
    in
    {
      f = Array.map float_of_int f_final;
      value;
      ipm_iterations = !iters;
      laplacian_solves = !solves;
      repair_augmentations = repairs;
      rounds = Clique.Kernel.rounds rt;
      phase_rounds = Clique.Kernel.phases rt;
    }
  end

let rounds_reference ~n ~m ~u =
  (* per progress step: two Theorem 1.1 solves at n^{o(1)} — proxied by the
     Chebyshev bound at a polylog κ — plus rounding and one repair. *)
  let solve_proxy =
    2 * Linalg.Chebyshev.iteration_bound ~kappa:64. ~eps:1e-8
  in
  (iterations_reference ~m ~u * solve_proxy)
  + (Runtime.Cost.log2_ceil (4 * m) * Euler.Orientation.rounds_reference ~n)
  + (2 * Runtime.Cost.apsp_rounds n)
