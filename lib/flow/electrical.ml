type t = {
  potentials : Linalg.Vec.t;
  flow : float array;
  energy : float;
  solver_rounds : int;
  solver_iterations : int;
}

type solver = Exact | Cg of float | Theorem_1_1 of float

let conductance_graph support resistance =
  Graph.create (Graph.n support)
    (Array.to_list (Graph.edges support)
    |> List.mapi (fun id e ->
           let r = resistance id in
           if r <= 0. then invalid_arg "Electrical: non-positive resistance";
           { e with Graph.w = 1. /. r }))

let compute ?(solver = Cg 1e-10) ~support ~resistance ~b () =
  let cg = conductance_graph support resistance in
  let b = Linalg.Vec.center b in
  let potentials, rounds, iters =
    match solver with
    | Exact ->
      let l = Graph.laplacian_dense cg in
      (Linalg.Dense.solve_grounded l b, 1, 1)
    | Cg tol ->
      let x, st = Linalg.Cg.solve_grounded ~tol (Graph.apply_laplacian cg) b in
      (x, st.Linalg.Cg.iterations * Runtime.Cost.matvec_rounds,
       st.Linalg.Cg.iterations)
    | Theorem_1_1 eps ->
      let r = Laplacian.Solver.solve ~eps cg b in
      (r.Laplacian.Solver.x, r.Laplacian.Solver.rounds,
       r.Laplacian.Solver.iterations)
  in
  let phi = potentials in
  let m = Graph.m support in
  let flow = Array.make m 0. in
  let energy = ref 0. in
  Array.iteri
    (fun id e ->
      let r = resistance id in
      let f = (phi.(e.Graph.u) -. phi.(e.Graph.v)) /. r in
      flow.(id) <- f;
      energy := !energy +. (r *. f *. f))
    (Graph.edges support);
  {
    potentials = phi;
    flow;
    energy = !energy;
    solver_rounds = rounds;
    solver_iterations = iters;
  }

let effective_resistance ?solver g u v =
  if u = v then 0.
  else begin
    let n = Graph.n g in
    let b =
      Linalg.Vec.sub (Linalg.Vec.basis n u) (Linalg.Vec.basis n v)
    in
    let r =
      compute ?solver ~support:g
        ~resistance:(fun id -> 1. /. (Graph.edge g id).Graph.w)
        ~b ()
    in
    r.potentials.(u) -. r.potentials.(v)
  end
