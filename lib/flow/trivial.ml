type report = { f : Flow.t; value : int; rounds : int }

let gather_rounds g =
  let n = Digraph.n g in
  let m = Digraph.m g in
  let u = max 1 (Digraph.max_capacity g) in
  let w = max 1 (Digraph.max_cost g) in
  let bits_per_edge =
    (2 * Runtime.Cost.log2_ceil (max n 2))
    + Runtime.Cost.log2_ceil (u + 1)
    + Runtime.Cost.log2_ceil (w + 1)
  in
  Runtime.Cost.gather_rounds ~n ~m ~bits_per_edge

let max_flow g ~s ~t =
  let f, value = Dinic.max_flow g ~s ~t in
  { f; value; rounds = gather_rounds g }

let min_cost_flow g ~sigma =
  match Mcf_ssp.solve g ~sigma with
  | None -> None
  | Some r -> Some (r.Mcf_ssp.f, r.Mcf_ssp.cost, gather_rounds g)

let rounds_reference ~n ~m ~u =
  let bits_per_edge =
    (2 * Runtime.Cost.log2_ceil (max n 2)) + Runtime.Cost.log2_ceil (u + 1)
  in
  Runtime.Cost.gather_rounds ~n ~m ~bits_per_edge
