type report = {
  f : Flow.t;
  cost : float;
  ipm_iterations : int;
  perturbations : int;
  laplacian_solves : int;
  repair_augmentations : int;
  rounds : int;
}

let eta = 1. /. 14.

(* Bipartite lift of Algorithm 7 over Mcf_ipm's G₁: P = V(G₁), plus one
   Q-vertex per lifted arc j, and edge pairs (2j, 2j+1):
   2j   = (src_j, q_j), cost c_j  ("e": carries the arc's flow)
   2j+1 = (dst_j, q_j), cost 0    ("ē": the slack partner). *)
type bip = {
  lift : Mcf_ipm.lift;
  support : Graph.t;  (** bipartite support, edge ids = 2j / 2j+1 *)
  np : int;  (** |P| *)
  nq : int;  (** |Q| = lifted arc count *)
  cost_of : float array;  (** per bipartite edge *)
  demand : Linalg.Vec.t;  (** injections: +b(u) on P, −1 on Q *)
}

let build g ~sigma =
  let lift = Mcf_ipm.build_lift g ~sigma in
  let lg = lift.Mcf_ipm.lg in
  let np = Digraph.n lg in
  let nq = Digraph.m lg in
  let q_of j = np + j in
  let edges = ref [] in
  let cost_of = Array.make (2 * nq) 0. in
  Array.iteri
    (fun j a ->
      edges :=
        { Graph.u = a.Digraph.dst; v = q_of j; w = 1. }
        :: { Graph.u = a.Digraph.src; v = q_of j; w = 1. }
        :: !edges;
      cost_of.(2 * j) <- float_of_int a.Digraph.cost)
    (Digraph.arcs lg);
  let support = Graph.create (np + nq) (List.rev !edges) in
  (* b(u) = σ(u) + deg_in^{G₁}(u) on P; every Q-vertex absorbs one unit. *)
  let demand = Linalg.Vec.create (np + nq) in
  for u = 0 to np - 1 do
    demand.(u) <-
      float_of_int (lift.Mcf_ipm.sigma_hat.(u) + Digraph.in_degree lg u)
  done;
  for j = 0 to nq - 1 do
    demand.(q_of j) <- -1.
  done;
  { lift; support; np; nq; cost_of; demand }

(* ν-weighted p-norm of ρ (CMSV's ‖·‖_{ν,p}). *)
let nu_norm nu rho p =
  let acc = ref 0. in
  Array.iteri (fun e r -> acc := !acc +. (nu.(e) *. (Float.abs r ** p))) rho;
  !acc ** (1. /. p)

(* Potential difference along bipartite edge e, oriented P→Q. *)
let dphi bip phi e =
  let edge = Graph.edge bip.support e in
  phi.(edge.Graph.u) -. phi.(edge.Graph.v)

let floor_pos x = Float.max x 1e-12

(* Resistances must stay strictly inside (0, ∞) for the Laplacian support. *)
let clamp_r x = Float.min (Float.max x 1e-12) 1e18

(* Algorithm 9, line by line. Mutates f and s; returns (ρ, rounds). The
   [floor_pos] guards keep the verbatim updates inside the cone when
   floating point would leave it; exactness never depends on them. *)
let progress ~solver bip f s nu =
  let m2 = 2 * bip.nq in
  (* line 1 *)
  let r = Array.init m2 (fun e -> clamp_r (nu.(e) /. (f.(e) *. f.(e)))) in
  (* line 2: solve L φ̂ = σ *)
  let elec1 =
    Electrical.compute ~solver ~support:bip.support
      ~resistance:(fun e -> r.(e))
      ~b:bip.demand ()
  in
  let phi1 = elec1.Electrical.potentials in
  (* line 3 *)
  let ftilde = Array.init m2 (fun e -> dphi bip phi1 e /. r.(e)) in
  let rho = Array.init m2 (fun e -> Float.abs ftilde.(e) /. f.(e)) in
  (* line 4 *)
  let delta = Float.min (1. /. (8. *. Float.max (nu_norm nu rho 4.) 1e-9)) 0.125 in
  (* line 5 *)
  let f' = Array.init m2 (fun e -> ((1. -. delta) *. f.(e)) +. (delta *. ftilde.(e))) in
  let s' =
    Array.init m2 (fun e ->
        floor_pos (s.(e) -. (delta /. (1. -. delta) *. dphi bip phi1 e)))
  in
  (* line 6 *)
  let fsharp =
    Array.init m2 (fun e ->
        floor_pos ((1. -. delta) *. f.(e) *. s.(e) /. s'.(e)))
  in
  (* line 7: σ' = divergence residue of f' − f# *)
  let sigma' = Linalg.Vec.create (bip.np + bip.nq) in
  Array.iteri
    (fun e edge ->
      let d = f'.(e) -. fsharp.(e) in
      sigma'.(edge.Graph.u) <- sigma'.(edge.Graph.u) +. d;
      sigma'.(edge.Graph.v) <- sigma'.(edge.Graph.v) -. d)
    (Graph.edges bip.support);
  (* line 8 *)
  let r2 =
    Array.init m2 (fun e ->
        clamp_r (s'.(e) *. s'.(e) /. ((1. -. delta) *. f.(e) *. s.(e))))
  in
  (* line 9 *)
  let elec2 =
    Electrical.compute ~solver ~support:bip.support
      ~resistance:(fun e -> r2.(e))
      ~b:sigma' ()
  in
  let phi2 = elec2.Electrical.potentials in
  (* lines 10–11 *)
  for e = 0 to m2 - 1 do
    let ft = dphi bip phi2 e /. r2.(e) in
    f.(e) <- fsharp.(e) +. ft;
    s.(e) <- floor_pos (s'.(e) -. (s'.(e) *. ft /. fsharp.(e)))
  done;
  (rho, elec1.Electrical.solver_rounds + elec2.Electrical.solver_rounds + 2)

(* Algorithm 8, for every Q vertex. *)
let perturb bip y f s nu =
  for j = 0 to bip.nq - 1 do
    let e = 2 * j and ebar = (2 * j) + 1 in
    let qv = bip.np + j in
    y.(qv) <- y.(qv) -. s.(e);
    nu.(e) <- 2. *. nu.(e);
    nu.(ebar) <- nu.(ebar) +. (nu.(e) *. f.(e) /. f.(ebar));
    (* y_v changed: refresh both incident slacks (s = c + y_u − y_v). *)
    let refresh ee =
      let edge = Graph.edge bip.support ee in
      s.(ee) <- bip.cost_of.(ee) +. y.(edge.Graph.u) -. y.(edge.Graph.v)
    in
    refresh e;
    refresh ebar
  done

let solve ?(solver = Electrical.Cg 1e-10) ?iteration_cap g ~sigma =
  let bip = build g ~sigma in
  let m2 = 2 * bip.nq in
  let mh = bip.nq in
  let w_max = Digraph.max_cost bip.lift.Mcf_ipm.lg in
  let rt = Clique.Kernel.clique (max 1 (bip.np + bip.nq)) in
  (* Algorithm 7, lines 11–13: the explicit initial central point. *)
  let cinf = Float.max 1. (float_of_int w_max) in
  let y = Linalg.Vec.create (bip.np + bip.nq) in
  for u = 0 to bip.np - 1 do
    y.(u) <- cinf
  done;
  let f = Array.make m2 0.5 in
  let s =
    Array.init m2 (fun e ->
        let edge = Graph.edge bip.support e in
        bip.cost_of.(e) +. y.(edge.Graph.u) -. y.(edge.Graph.v))
  in
  let nu = Array.init m2 (fun e -> s.(e) /. (2. *. cinf)) in
  let c_rho =
    400. *. sqrt 3.
    *. (Float.max 1. (log (float_of_int (max w_max 2))) ** (1. /. 3.))
  in
  let rho_threshold = c_rho *. (float_of_int (max mh 2) ** (0.5 -. eta)) in
  let mu_end = 1. /. (32. *. float_of_int (max mh 2)) in
  let cap =
    match iteration_cap with
    | Some c -> c
    | None -> 150 + (20 * Mcf_ipm.iterations_reference ~m:(Digraph.m g) ~w:(max w_max 1))
  in
  let mu_estimate () =
    let acc = ref 0. and k = ref 0 in
    for e = 0 to m2 - 1 do
      if nu.(e) > 1e-12 then begin
        acc := !acc +. (f.(e) *. s.(e) /. nu.(e));
        incr k
      end
    done;
    if !k = 0 then 0. else !acc /. float_of_int !k
  in
  let iters = ref 0 in
  let solves = ref 0 in
  let perturbations = ref 0 in
  let last_rho = ref (Array.make m2 0.) in
  let healthy = ref true in
  while !healthy && mu_estimate () > mu_end && !iters < cap do
    incr iters;
    (* Algorithm 6's while-loop: perturb while the ν,3-norm is too large. *)
    if !iters > 1 && nu_norm nu !last_rho 3. > rho_threshold then begin
      incr perturbations;
      perturb bip y f s nu;
      Clique.Kernel.charge rt ~phase:"ipm" 1
    end;
    let rho, rounds = progress ~solver bip f s nu in
    solves := !solves + 2;
    Clique.Kernel.charge rt ~phase:"ipm" rounds;
    last_rho := rho;
    (* Numerical safety: the verbatim updates can leave the box in floating
       point; the repair phase will still deliver the exact optimum. *)
    for e = 0 to m2 - 1 do
      if not (Float.is_finite f.(e)) then healthy := false
      else f.(e) <- Float.min (1. -. 1e-9) (Float.max 1e-9 f.(e))
    done
  done;
  (* Arc flows are the cost-carrying halves. *)
  let f_lift = Array.init mh (fun j -> f.(2 * j)) in
  match Mcf_ipm.round_and_repair bip.lift f_lift rt with
  | None -> None
  | Some (f_final, repair) ->
    Some
      {
        f = f_final;
        cost = Flow.cost g f_final;
        ipm_iterations = !iters;
        perturbations = !perturbations;
        laplacian_solves = !solves;
        repair_augmentations = repair;
        rounds = Clique.Kernel.rounds rt;
      }
