(** Ford–Fulkerson in the congested clique — the §1.1 deterministic baseline.

    Augmentation is Edmonds–Karp-style: each of the [|f*|] iterations finds
    a shortest augmenting path by one s-t reachability (BFS) query on the
    residual graph; reachability is charged at the CKKL'19 rate of
    [O(n^{0.158})] rounds per query, giving the paper's [O(|f*|·n^{0.158})]
    total. The comparison point for experiment E7 (the bench prints this
    note as the table footer). *)

type report = {
  f : Flow.t;
  value : int;
  iterations : int;  (** = number of augmenting paths = |f*| on unit steps *)
  rounds : int;  (** charged: (iterations + 1) · ⌈n^{0.158}⌉ *)
}

val max_flow : Digraph.t -> s:int -> t:int -> report

val augment_from :
  Digraph.t -> s:int -> t:int -> initial:int array -> int array * int * int
(** [augment_from g ~s ~t ~initial] augments a feasible integral flow to a
    maximum one; returns [(flow, value gained, iterations)]. The IPM's exact
    repair phase. Raises [Invalid_argument] on an infeasible start. *)

val rounds_reference : n:int -> value:int -> int
(** The [O(|f*|·n^{0.158})] reference curve for E7. *)
