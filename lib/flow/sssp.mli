(** Single-source shortest paths over digraphs with per-arc weights.

    In the congested clique the paper computes (approximate) shortest paths
    with the CKKL'19 distance-product algorithm in [O(n^{0.158})] rounds; we
    compute the same distances exactly with classical algorithms and charge
    {!Runtime.Cost.apsp_rounds} per call (DESIGN.md substitution 4). *)

val dijkstra :
  Digraph.t ->
  ?weight:(int -> float) ->
  ?usable:(int -> bool) ->
  sources:int list ->
  unit ->
  float array * int array
(** [(dist, parent_arc)] from the nearest source; non-negative weights
    ([weight] defaults to the arc cost; [usable] masks arcs, default all).
    Unreachable vertices get [infinity] and parent [-1]. *)

val bellman_ford :
  Digraph.t ->
  ?weight:(int -> float) ->
  ?usable:(int -> bool) ->
  sources:int list ->
  unit ->
  (float array * int array) option
(** Same contract but tolerates negative weights; [None] when a negative
    cycle is reachable. *)

val path_to : parent:int array -> Digraph.t -> int -> int list
(** Arc identifiers of the tree path ending at the vertex, source-first. *)

val charged_rounds : n:int -> int
(** The per-call round charge ([⌈n^{0.158}⌉]). *)
