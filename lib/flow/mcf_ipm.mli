(** Deterministic unit-capacity minimum-cost flow in the congested clique —
    Theorem 1.3, [Õ(m^{3/7}(n^{0.158} + n^{o(1)} polylog W))] rounds.

    The Cohen–Mądry–Sankowski–Vladu pipeline as the paper runs it (§6,
    Appendix C):
    + {b Initialization} (Algorithm 7) — an auxiliary vertex with
      [2|t(v)|] parallel unit arcs of cost [‖c‖₁] absorbs each vertex's
      imbalance [t(v) = σ(v) + (deg_in − deg_out)/2], so that [f = ½]
      {e everywhere} is a strictly interior demand-feasible start (we keep
      the lift in this direct arc form; CMSV's bipartite [P∪Q] re-encoding
      of the same box constraint is folded into the two-sided barrier — see
      DESIGN.md substitution 6);
    + {b Progress} (Algorithm 9) — central-path following: per iteration one
      weighted-Laplacian solve ([n^{o(1)}] rounds by Theorem 1.1) gives the
      Newton/electrical step, and the CMSV congestion rule
      [δ = min(1/8, 1/(8‖ρ‖₄))] caps the µ-reduction — the role their
      Perturbation step plays is served by the cap (measured, reported);
    + {b Repairing} (Algorithm 10) — cost-aware flow rounding (Lemma 4.2
      with the cost rule), then exact repair: deficit-routing shortest-path
      augmentations and negative-cycle cancellations on the residual graph,
      each charged the CKKL rate [O(n^{0.158})].

    The result is always the exact minimum-cost flow (validated against the
    successive-shortest-paths oracle in the test suite). *)

(** {1 Shared pipeline pieces}

    {!Cmsv_bipartite} (the verbatim Appendix C engine) reuses the lift and
    the Repairing phase, so they are exposed here. *)

type lift = {
  lg : Digraph.t;  (** original arcs first, auxiliary arcs after *)
  m0 : int;  (** number of original arcs *)
  v_aux : int;
  sigma_hat : int array;  (** demand extended with 0 at the auxiliary vertex *)
}

val build_lift : Digraph.t -> sigma:int array -> lift
(** Algorithm 7's [G₁]: the auxiliary vertex plus [2|t(v)|] imbalance arcs
    of cost [‖c‖₁]. Validates unit capacities and [Σσ = 0]. *)

val round_and_repair :
  lift -> float array -> Clique.Kernel.t -> (Flow.t * int) option
(** Algorithm 10's role: gather + grid quantization + cost-aware Lemma 4.2
    rounding + deficit routing + negative-cycle cancelling. [None] when the
    instance is infeasible (auxiliary arcs stay loaded). Returns the exact
    original-arc flow and the repair-operation count; charges its phases
    into the given runtime's ledger. *)

type report = {
  f : Flow.t;  (** exact integral min-cost flow on the input arcs *)
  cost : float;
  ipm_iterations : int;
  laplacian_solves : int;
  repair_augmentations : int;  (** deficit paths + negative-cycle cancels *)
  rounds : int;
  phase_rounds : (string * int) list;
}

val solve :
  ?solver:Electrical.solver ->
  ?iteration_cap:int ->
  Digraph.t ->
  sigma:int array ->
  report option
(** [solve g ~sigma] for a unit-capacity digraph and a demand vector summing
    to zero ([σ(v) > 0] = supply). [None] when the demand is infeasible.
    Raises [Invalid_argument] on non-unit capacities. *)

val solve_max_flow_min_cost :
  ?solver:Electrical.solver ->
  Digraph.t ->
  s:int ->
  t:int ->
  (report * int) option
(** Minimum-cost maximum s-t flow by the §2.4 reduction: binary search over
    the flow value with a demand-feasibility probe per step (each probe is a
    full Theorem 1.3 solve, so the round total multiplies by [log F*]).
    Returns the report at the optimum together with the number of probes;
    [None] only if even value 0 fails (never, for s ≠ t). *)

val iterations_reference : m:int -> w:int -> int
(** The [m^{3/7}·log W]-shaped progress curve for E6 (CMSV's constants are
    dropped so the reference is comparable to measured counts at bench
    sizes). *)

val rounds_reference : n:int -> m:int -> w:int -> int
