type report = { f : Flow.t; cost : float; augmentations : int; rounds : int }

(* Residual arcs: 2i forward (cost c_i), 2i+1 reverse (cost −c_i). *)
type residual = {
  n : int;
  heads : int array;
  caps : int array;
  costs : float array;
  adj : int list array;
}

let build g extra_arcs =
  let base = Array.to_list (Digraph.arcs g) in
  let all = Array.of_list (base @ extra_arcs) in
  let m = Array.length all in
  let n = Digraph.n g in
  let heads = Array.make (2 * m) 0 in
  let caps = Array.make (2 * m) 0 in
  let costs = Array.make (2 * m) 0. in
  let adj = Array.make n [] in
  Array.iteri
    (fun i a ->
      heads.(2 * i) <- a.Digraph.dst;
      caps.(2 * i) <- a.Digraph.cap;
      costs.(2 * i) <- float_of_int a.Digraph.cost;
      heads.((2 * i) + 1) <- a.Digraph.src;
      caps.((2 * i) + 1) <- 0;
      costs.((2 * i) + 1) <- -.float_of_int a.Digraph.cost;
      adj.(a.Digraph.src) <- (2 * i) :: adj.(a.Digraph.src);
      adj.(a.Digraph.dst) <- ((2 * i) + 1) :: adj.(a.Digraph.dst))
    all;
  { n; heads; caps; costs; adj }

let tails r =
  (* tail of residual arc id: head of its partner *)
  fun id -> r.heads.(id lxor 1)

(* One Dijkstra on reduced costs; returns (dist, parent residual arc). *)
let dijkstra r pi sources =
  let dist = Array.make r.n infinity in
  let parent = Array.make r.n (-1) in
  let module Pq = Set.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let pq = ref Pq.empty in
  List.iter
    (fun s ->
      dist.(s) <- 0.;
      pq := Pq.add (0., s) !pq)
    sources;
  while not (Pq.is_empty !pq) do
    let ((d, v) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if d <= dist.(v) +. 1e-12 then
      List.iter
        (fun id ->
          if r.caps.(id) > 0 then begin
            let u = r.heads.(id) in
            let w = r.costs.(id) +. pi.(v) -. pi.(u) in
            let w = if w < 0. then 0. else w in
            (* reduced costs are ≥ 0 up to float noise *)
            let nd = d +. w in
            if nd < dist.(u) -. 1e-12 then begin
              dist.(u) <- nd;
              parent.(u) <- id;
              pq := Pq.add (nd, u) !pq
            end
          end)
        r.adj.(v)
  done;
  (dist, parent)

let solve_internal g extra_arcs ~source ~sink =
  let r = build g extra_arcs in
  let pi = Array.make r.n 0. in
  (* Initial potentials via Bellman–Ford (costs may not be reachable-sorted;
     our costs are non-negative so zero potentials are already valid). *)
  let augmentations = ref 0 in
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let dist, parent = dijkstra r pi [ source ] in
    if dist.(sink) = infinity then continue_ := false
    else begin
      incr augmentations;
      (* Update potentials. *)
      for v = 0 to r.n - 1 do
        if dist.(v) < infinity then pi.(v) <- pi.(v) +. dist.(v)
      done;
      (* Bottleneck along the parent path. *)
      let rec bottleneck v acc =
        if v = source then acc
        else begin
          let id = parent.(v) in
          bottleneck (tails r id) (min acc r.caps.(id))
        end
      in
      let b = bottleneck sink max_int in
      let rec push v =
        if v <> source then begin
          let id = parent.(v) in
          r.caps.(id) <- r.caps.(id) - b;
          r.caps.(id lxor 1) <- r.caps.(id lxor 1) + b;
          push (tails r id)
        end
      in
      push sink;
      total := !total + b
    end
  done;
  (r, !total, !augmentations)

let flow_of_residual g r =
  Array.init (Digraph.m g) (fun i ->
      let a = Digraph.arc g i in
      float_of_int (a.Digraph.cap - r.caps.(2 * i)))

let solve g ~sigma =
  let n = Digraph.n g in
  if Array.length sigma <> n then invalid_arg "Mcf_ssp.solve: sigma length";
  if Array.fold_left ( + ) 0 sigma <> 0 then
    invalid_arg "Mcf_ssp.solve: sigma must sum to zero";
  (* Super source/sink routed through two fresh vertices. *)
  let g' =
    Digraph.create (n + 2)
      (Array.to_list (Digraph.arcs g))
  in
  let source = n and sink = n + 1 in
  let extra = ref [] in
  let supply = ref 0 in
  Array.iteri
    (fun v s ->
      if s > 0 then begin
        extra := { Digraph.src = source; dst = v; cap = s; cost = 0 } :: !extra;
        supply := !supply + s
      end
      else if s < 0 then
        extra := { Digraph.src = v; dst = sink; cap = -s; cost = 0 } :: !extra)
    sigma;
  let r, total, augmentations = solve_internal g' !extra ~source ~sink in
  if total < !supply then None
  else begin
    let f = flow_of_residual g' r in
    let f = Array.sub f 0 (Digraph.m g) in
    let cost =
      Array.to_list (Digraph.arcs g)
      |> List.mapi (fun i a -> float_of_int a.Digraph.cost *. f.(i))
      |> List.fold_left ( +. ) 0.
    in
    Some
      {
        f;
        cost;
        augmentations;
        rounds = (augmentations + 1) * Runtime.Cost.apsp_rounds n;
      }
  end

let solve_max_flow_min_cost g ~s ~t =
  let r, total, _ = solve_internal g [] ~source:s ~sink:t in
  let f = flow_of_residual g r in
  let cost =
    Array.to_list (Digraph.arcs g)
    |> List.mapi (fun i a -> float_of_int a.Digraph.cost *. f.(i))
    |> List.fold_left ( +. ) 0.
  in
  (f, total, cost)
