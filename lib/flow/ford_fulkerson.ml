type report = { f : Flow.t; value : int; iterations : int; rounds : int }

(* BFS augmenting paths on the residual graph, starting from an arbitrary
   feasible integral flow. Exposed separately because the IPM pipeline uses
   it as its exact repair phase (warm-started), while the §1.1 baseline
   starts from zero. Each iteration is one reachability query, charged at
   the CKKL rate. *)
let augment_from g ~s ~t ~initial =
  let m = Digraph.m g in
  let n = Digraph.n g in
  let forward =
    Array.init m (fun id -> (Digraph.arc g id).Digraph.cap - initial.(id))
  in
  let backward = Array.copy initial in
  Array.iteri
    (fun id slack ->
      if slack < 0 || backward.(id) < 0 then
        invalid_arg
          (Printf.sprintf "Ford_fulkerson: infeasible initial flow on arc %d"
             id))
    forward;
  let iterations = ref 0 in
  let gained = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let dist = Array.make n (-1) in
    let parent = Array.make n 0 in
    (* encodes (arc id, direction): 2id forward, 2id+1 reverse *)
    let q = Queue.create () in
    dist.(s) <- 0;
    Queue.add s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun id ->
          let a = Digraph.arc g id in
          if forward.(id) > 0 && dist.(a.Digraph.dst) < 0 then begin
            dist.(a.Digraph.dst) <- dist.(v) + 1;
            parent.(a.Digraph.dst) <- 2 * id;
            Queue.add a.Digraph.dst q
          end)
        (Digraph.out_arcs g v);
      List.iter
        (fun id ->
          let a = Digraph.arc g id in
          if backward.(id) > 0 && dist.(a.Digraph.src) < 0 then begin
            dist.(a.Digraph.src) <- dist.(v) + 1;
            parent.(a.Digraph.src) <- (2 * id) + 1;
            Queue.add a.Digraph.src q
          end)
        (Digraph.in_arcs g v)
    done;
    if dist.(t) < 0 then continue_ := false
    else begin
      incr iterations;
      let rec walk v acc =
        if v = s then acc
        else begin
          let code = parent.(v) in
          let id = code / 2 in
          let a = Digraph.arc g id in
          if code land 1 = 0 then walk a.Digraph.src ((id, true) :: acc)
          else walk a.Digraph.dst ((id, false) :: acc)
        end
      in
      let path = walk t [] in
      let bottleneck =
        List.fold_left
          (fun b (id, fwd) ->
            min b (if fwd then forward.(id) else backward.(id)))
          max_int path
      in
      List.iter
        (fun (id, fwd) ->
          if fwd then begin
            forward.(id) <- forward.(id) - bottleneck;
            backward.(id) <- backward.(id) + bottleneck
          end
          else begin
            backward.(id) <- backward.(id) - bottleneck;
            forward.(id) <- forward.(id) + bottleneck
          end)
        path;
      gained := !gained + bottleneck
    end
  done;
  (Array.copy backward, !gained, !iterations)

let max_flow g ~s ~t =
  let m = Digraph.m g in
  let zero = Array.make m 0 in
  let flow, value, iterations = augment_from g ~s ~t ~initial:zero in
  {
    f = Array.map float_of_int flow;
    value;
    iterations;
    rounds = (iterations + 1) * Runtime.Cost.apsp_rounds (Digraph.n g);
  }

let rounds_reference ~n ~value = (value + 1) * Runtime.Cost.apsp_rounds n
