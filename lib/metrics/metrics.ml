module Json = Json

type counter = { c_live : bool; mutable c_value : int }

type gauge = { g_live : bool; mutable g_value : float }

type histogram = { h_live : bool; h_buckets : int array }

type span = {
  s_live : bool;
  mutable s_count : int;
  mutable s_total : float;
  mutable s_min : float;
  mutable s_max : float;
}

type span_stats = { count : int; total_s : float; min_s : float; max_s : float }

type t = {
  enabled : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  spans : (string, span) Hashtbl.t;
}

let buckets = 16 (* mirrors Trace.buckets *)

let create ?(enabled = true) () =
  {
    enabled;
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 8;
    spans = Hashtbl.create 8;
  }

let disabled = create ~enabled:false ()

let enabled t = t.enabled

(* Shared dummies handed out by disabled registries: mutations test the
   [live] flag and return, so a handle is safe to keep unconditionally. *)
let dummy_counter = { c_live = false; c_value = 0 }

let dummy_gauge = { g_live = false; g_value = 0. }

let dummy_histogram = { h_live = false; h_buckets = [||] }

let dummy_span =
  { s_live = false; s_count = 0; s_total = 0.; s_min = 0.; s_max = 0. }

let get_or_create tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace tbl name v;
    v

let counter t name =
  if not t.enabled then dummy_counter
  else
    get_or_create t.counters name (fun () -> { c_live = true; c_value = 0 })

let incr ?(by = 1) c =
  if c.c_live then begin
    if by < 0 then invalid_arg "Metrics.incr: negative increment";
    c.c_value <- c.c_value + by
  end

let counter_value c = c.c_value

let gauge t name =
  if not t.enabled then dummy_gauge
  else get_or_create t.gauges name (fun () -> { g_live = true; g_value = 0. })

let set g v = if g.g_live then g.g_value <- v

let gauge_value g = g.g_value

let histogram t name =
  if not t.enabled then dummy_histogram
  else
    get_or_create t.histograms name (fun () ->
        { h_live = true; h_buckets = Array.make buckets 0 })

let bucket v =
  if v <= 0 then 0
  else begin
    let rec log2_ceil acc p = if p >= v + 1 then acc else log2_ceil (acc + 1) (p * 2) in
    min (buckets - 1) (log2_ceil 0 1)
  end

let observe h v =
  if h.h_live then begin
    let b = bucket v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

let histogram_buckets h =
  if h.h_live then Array.copy h.h_buckets else Array.make buckets 0

let span t name =
  if not t.enabled then dummy_span
  else
    get_or_create t.spans name (fun () ->
        { s_live = true; s_count = 0; s_total = 0.; s_min = 0.; s_max = 0. })

let add_duration s d =
  if s.s_live then begin
    let d = Float.max d 0. in
    s.s_min <- (if s.s_count = 0 then d else Float.min s.s_min d);
    s.s_max <- (if s.s_count = 0 then d else Float.max s.s_max d);
    s.s_count <- s.s_count + 1;
    s.s_total <- s.s_total +. d
  end

let time s f =
  if not s.s_live then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add_duration s (Unix.gettimeofday () -. t0)) f
  end

let span_stats s =
  { count = s.s_count; total_s = s.s_total; min_s = s.s_min; max_s = s.s_max }

let reset t =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) t.gauges;
  Hashtbl.iter (fun _ h -> Array.fill h.h_buckets 0 buckets 0) t.histograms;
  Hashtbl.iter
    (fun _ s ->
      s.s_count <- 0;
      s.s_total <- 0.;
      s.s_min <- 0.;
      s.s_max <- 0.)
    t.spans

let ingest_phases t ~prefix phases =
  if t.enabled then begin
    let total = ref 0 in
    List.iter
      (fun (phase, r) ->
        total := !total + r;
        incr ~by:r (counter t (prefix ^ "." ^ phase)))
      phases;
    incr ~by:!total (counter t (prefix ^ ".total"))
  end

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json t =
  let counters =
    List.map
      (fun (k, c) -> (k, Json.Int c.c_value))
      (sorted_bindings t.counters)
  in
  let gauges =
    List.map
      (fun (k, g) -> (k, Json.Float g.g_value))
      (sorted_bindings t.gauges)
  in
  let histograms =
    List.map
      (fun (k, h) ->
        ( k,
          Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.h_buckets))
        ))
      (sorted_bindings t.histograms)
  in
  let spans =
    List.map
      (fun (k, s) ->
        ( k,
          Json.Assoc
            [
              ("count", Json.Int s.s_count);
              ("total_s", Json.Float s.s_total);
              ("min_s", Json.Float s.s_min);
              ("max_s", Json.Float s.s_max);
            ] ))
      (sorted_bindings t.spans)
  in
  Json.Assoc
    [
      ("counters", Json.Assoc counters);
      ("gauges", Json.Assoc gauges);
      ("histograms", Json.Assoc histograms);
      ("spans", Json.Assoc spans);
    ]
