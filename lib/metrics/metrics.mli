(** A process-local metrics registry: named counters, gauges, power-of-two
    round histograms (the same bucketing as the runtime's [Trace]), and
    wall-clock spans.

    The registry is the collection point of the observability layer: a
    {!Runtime.Make} instance feeds its cost ledger and trace into one (see
    [Runtime.S.attach_metrics]), and the bench harness serializes one per
    experiment into the [BENCH_E<k>.json] files via {!to_json}.

    Overhead discipline: every mutation on a metric obtained from a
    disabled registry (or from {!disabled}) is a single boolean test — no
    allocation, no hashing — so instrumented code paths can keep their
    metric handles unconditionally. Instruments obtained from a disabled
    registry are shared dummies and are never registered.

    Determinism: the registry performs no I/O and reads no clock except in
    {!time}, which instrumented {e charged} code must not call (wall-clock
    is never a cost measure — cc_lint rule L2); {!to_json} sorts every
    name, so serialization is deterministic. *)

module Json = Json
(** Re-export: [Metrics.Json] is the library's JSON tree ({!Json}). *)

type t
(** A registry. *)

val create : ?enabled:bool -> unit -> t
(** A fresh registry, [enabled] by default. *)

val disabled : t
(** A shared always-disabled registry: every instrument obtained from it is
    a no-op dummy. *)

val enabled : t -> bool
(** Whether mutations on this registry's instruments take effect. *)

val reset : t -> unit
(** Zero every registered instrument (registration is kept). *)

(** {1 Counters} *)

type counter
(** A monotonically increasing integer. *)

val counter : t -> string -> counter
(** Get or create the counter named [name]. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1, must be ≥ 0) to the counter. *)

val counter_value : counter -> int
(** Current value. *)

(** {1 Gauges} *)

type gauge
(** A last-write-wins float. *)

val gauge : t -> string -> gauge
(** Get or create the gauge named [name]. *)

val set : gauge -> float -> unit
(** Overwrite the gauge's value. *)

val gauge_value : gauge -> float
(** Current value (0 before any {!set}). *)

(** {1 Histograms} *)

type histogram
(** A 16-bucket power-of-two histogram of non-negative integer samples:
    bucket 0 counts zeros, bucket [b ≥ 1] counts samples in
    [[2^{b-1}, 2^b)] — the same shape as [Trace.histogram]. *)

val histogram : t -> string -> histogram
(** Get or create the histogram named [name]. *)

val observe : histogram -> int -> unit
(** Record one sample (clamped to bucket 0 if negative). *)

val histogram_buckets : histogram -> int array
(** A copy of the 16 bucket counts. *)

(** {1 Wall-clock spans} *)

type span
(** Aggregated wall-clock timings: count, total, min, max (seconds). *)

type span_stats = { count : int; total_s : float; min_s : float; max_s : float }
(** Snapshot of a span's aggregates; [min_s]/[max_s] are 0 when
    [count = 0]. *)

val span : t -> string -> span
(** Get or create the span named [name]. *)

val time : span -> (unit -> 'a) -> 'a
(** [time sp f] runs [f] and folds its wall-clock duration into [sp]
    (exceptions propagate, the duration is still recorded). On a disabled
    registry the clock is never read. *)

val add_duration : span -> float -> unit
(** Fold an externally measured duration (seconds, ≥ 0) into the span —
    the hook for Bechamel-measured wall-clock stats. *)

val span_stats : span -> span_stats
(** Current aggregates. *)

(** {1 Ingestion and export} *)

val ingest_phases : t -> prefix:string -> (string * int) list -> unit
(** [ingest_phases t ~prefix phases] adds each [(phase, rounds)] pair to
    counter [prefix ^ "." ^ phase] and the sum to [prefix ^ ".total"] —
    how a [Cost.t] ledger's per-phase breakdown lands in a registry. *)

val to_json : t -> Json.t
(** The whole registry as one object with [counters], [gauges],
    [histograms] and [spans] sub-objects, each sorted by name. Histograms
    serialize as bucket arrays; spans as [{count, total_s, min_s, max_s}]. *)
