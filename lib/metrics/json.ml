type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ----------------------------------------------------------- serializer *)

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal spelling that parses back to the same bits, so a
   serialize/parse round trip is the identity on finite floats. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f

let to_string ?(minify = false) j =
  let buf = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if minify then "\":" else "\": ");
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* --------------------------------------------------------------- parser *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  (* UTF-8-encode one code point from a \uXXXX escape (surrogate pairs are
     combined by the caller). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' -> Buffer.add_char buf '"'; loop ()
        | '\\' -> Buffer.add_char buf '\\'; loop ()
        | '/' -> Buffer.add_char buf '/'; loop ()
        | 'n' -> Buffer.add_char buf '\n'; loop ()
        | 't' -> Buffer.add_char buf '\t'; loop ()
        | 'r' -> Buffer.add_char buf '\r'; loop ()
        | 'b' -> Buffer.add_char buf '\b'; loop ()
        | 'f' -> Buffer.add_char buf '\012'; loop ()
        | 'u' ->
          let cp = hex4 () in
          let cp =
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
               && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else cp
          in
          add_utf8 buf cp;
          loop ()
        | c -> fail (Printf.sprintf "invalid escape '\\%c'" c))
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' -> true
         | '.' | 'e' | 'E' | '+' | '-' ->
           is_float := true;
           true
         | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* Out of int range: fall back to float. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "invalid number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Assoc (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "at byte %d: %s" at msg)

(* ------------------------------------------------------------ accessors *)

let member k = function
  | Assoc fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> x = y
  | List x, List y ->
    List.length x = List.length y && List.for_all2 equal x y
  | Assoc x, Assoc y ->
    let sort = List.sort (fun (k, _) (k', _) -> compare k k') in
    let x = sort x and y = sort y in
    List.length x = List.length y
    && List.for_all2 (fun (k, v) (k', v') -> k = k' && equal v v') x y
  | _ -> false
