(** A minimal JSON tree with a deterministic serializer and a
    recursive-descent parser — hand-rolled (no new dependencies, like
    [lib/analysis]'s scanners) so the bench harness can emit
    [BENCH_E<k>.json] files and [bench_diff] can read them back.

    Serialization is deterministic: object fields are emitted in the order
    given, floats use the shortest decimal representation that round-trips
    through [float_of_string], and strings escape exactly the characters
    JSON requires (everything else, including UTF-8 multibyte sequences,
    passes through byte-for-byte). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list
      (** Field order is preserved by both serializer and parser. *)

val to_string : ?minify:bool -> t -> string
(** Serialize. Default is pretty-printed with two-space indentation (the
    committed-baseline format); [~minify:true] emits no whitespace.
    Non-finite floats have no JSON spelling and serialize as [null]. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte offset and
    message. Numbers without [.]/[e] that fit in [int] parse as [Int]. *)

val escape_string : string -> string
(** [escape_string s] is [s] with JSON string escapes applied (no
    surrounding quotes). Exposed for tests. *)

val member : string -> t -> t option
(** [member k j] is field [k] of [Assoc j], if both exist. *)

val to_int_opt : t -> int option
(** [Int] payload, if that's what it is. *)

val to_float_opt : t -> float option
(** [Float] payload, also accepting [Int] (as in JSON, [3] is a number). *)

val to_string_opt : t -> string option
(** [String] payload, if that's what it is. *)

val to_list_opt : t -> t list option
(** [List] payload, if that's what it is. *)

val equal : t -> t -> bool
(** Structural equality; [Assoc] compares unordered (field sets). *)
