(** Rule L12: AST-accurate hot-path allocation checking.

    Supersedes L8's lexical "current function" tracker. The hot set is
    read off the same [(* cc_lint: hot name ... *)] markers, but functions
    are located in the parse tree, so a hot function bound by a nested
    [let] (e.g. a closure built inside a factory) is found where the
    lexical column-0 tracker attributes its body to the wrong binding.
    Allocation primitives are the L8 set: [Hashtbl.create], [Array.make],
    [Bytes.create]. Findings suppressed by an allow marker naming [L12]
    (or [L8] — the rule it supersedes) on the offending line are
    dropped. *)

val findings : Ast.impl -> Lint.finding list
(** All unsuppressed L12 findings of one implementation, sorted. *)
