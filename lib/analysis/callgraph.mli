(** Module-qualified call graph over a set of parsed implementations.

    Every structure-level [let]-bound value (at any module depth, including
    functor bodies) becomes a node named [Unit.Sub.name], where [Unit] is
    the capitalized compilation-unit name of its file. Value references in
    a node's body (including inside nested [let]s — local shadowing is not
    modeled) become edges when they resolve to a known node, and are kept
    as raw module paths otherwise so sink predicates can match external
    primitives ([Random.int], [Unix.gettimeofday], [Domain.spawn]).

    Resolution is syntactic (DESIGN.md §12): bare names resolve within the
    defining file; qualified names resolve by longest-common-suffix match
    between the reference's module path and the candidates' module paths,
    after expanding file-local [module X = Y] aliases and the head of
    functor applications ([module R = Runtime.Make (T)] makes [R.f]
    resolve like [Runtime.Make.f]). No higher-order resolution: a function
    received as an argument is not traversed. *)

type node = {
  id : string;  (** ["Unit.Sub.name"], unique per definition site *)
  unit_name : string;  (** capitalized compilation-unit module *)
  path : string list;  (** enclosing module path, starting with [unit_name] *)
  name : string;  (** bound value name; ["<init:k>"] for [let () = ...] *)
  file : string;
  line : int;
}

type t
(** The resolved call graph: definitions, edges, unresolved references. *)

val build : Ast.impl list -> t
(** Construct the graph over the given implementations. *)

val nodes : t -> node list
(** Every definition, sorted by (file, line). *)

val defs_in_file : t -> string -> node list

val callees : t -> node -> node list
(** Resolved out-edges, deduplicated, in first-reference order. *)

val callers : t -> node -> node list

val externals : t -> node -> (string list * int) list
(** References (alias-expanded, with line numbers) that resolved to no
    known node: stdlib and runtime primitives, locals, and parameters. *)

val refs : t -> node -> (string list * int) list
(** Every reference in the node's body, resolved or not, alias-expanded. *)

val body : t -> node -> Parsetree.expression
(** The bound expression, for rule-specific AST walks. *)

val call_line : t -> caller:node -> callee:node -> int option
(** Line (in [caller.file]) of the first reference from caller to callee. *)

val resolve : t -> from:node -> string list -> node list
(** Resolve a flattened value longident as seen from [from]'s file; [[]]
    when it refers to nothing the graph knows. *)

val to_dot : t -> string
(** GraphViz rendering of the resolved call graph, one node per
    definition, clustered by file. *)
