let to_string (f : Lint.finding) =
  Printf.sprintf "%s:%d %s %s" f.file f.line (Rule.to_string f.rule) f.message

let print oc findings =
  List.iter (fun f -> Printf.fprintf oc "%s\n" (to_string f)) findings

let summary findings =
  match List.length findings with
  | 0 -> "cc_lint: clean"
  | 1 -> "cc_lint: 1 finding"
  | k -> Printf.sprintf "cc_lint: %d findings" k

(* The catalog range is derived from Rule.all, never hardcoded, so a new
   rule appears here (and in --rules) the moment it joins the variant. *)
let rules_range () =
  match (Rule.all, List.rev Rule.all) with
  | first :: _, last :: _ ->
    Printf.sprintf "%s-%s" (Rule.to_string first) (Rule.to_string last)
  | _ -> "none"

let rules_table () =
  String.concat "\n"
    (List.map
       (fun id -> Printf.sprintf "%-4s %s" (Rule.to_string id) (Rule.synopsis id))
       Rule.all)

let schema = "cc-lint/1"

let to_json ?(errors = []) findings =
  Metrics.Json.Assoc
    [
      ("schema", Metrics.Json.String schema);
      ("rules", Metrics.Json.String (rules_range ()));
      ("count", Metrics.Json.Int (List.length findings));
      ( "findings",
        Metrics.Json.List
          (List.map
             (fun (f : Lint.finding) ->
               Metrics.Json.Assoc
                 [
                   ("file", Metrics.Json.String f.file);
                   ("line", Metrics.Json.Int f.line);
                   ("rule", Metrics.Json.String (Rule.to_string f.rule));
                   ("message", Metrics.Json.String f.message);
                 ])
             findings) );
      ( "errors",
        Metrics.Json.List (List.map (fun e -> Metrics.Json.String e) errors) );
    ]

let print_json oc ?errors findings =
  output_string oc (Metrics.Json.to_string (to_json ?errors findings));
  output_char oc '\n'
