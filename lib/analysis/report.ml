let to_string (f : Lint.finding) =
  Printf.sprintf "%s:%d %s %s" f.file f.line (Rule.to_string f.rule) f.message

let print oc findings =
  List.iter (fun f -> Printf.fprintf oc "%s\n" (to_string f)) findings

let summary findings =
  match List.length findings with
  | 0 -> "cc_lint: clean"
  | 1 -> "cc_lint: 1 finding"
  | k -> Printf.sprintf "cc_lint: %d findings" k

let rules_table () =
  String.concat "\n"
    (List.map
       (fun id -> Printf.sprintf "%s  %s" (Rule.to_string id) (Rule.synopsis id))
       Rule.all)
