(* Filesystem traversal for the linter: collect every .ml/.mli under the
   given roots, skipping build artifacts and dot-directories. The linter
   runs on the developer's machine and in CI, never inside a charged layer,
   so plain Sys primitives are in-model here. *)

let skip_dir name =
  name = "_build" || name = "_opam"
  || (String.length name > 0 && name.[0] = '.')

let source_file name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let collect roots =
  let acc = ref [] in
  let rec visit path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if not (skip_dir entry) then visit (Filename.concat path entry))
        (Sys.readdir path)
    else if source_file path then acc := path :: !acc
  in
  List.iter
    (fun root ->
      if Sys.file_exists root then visit root
      else invalid_arg (Printf.sprintf "Walk.collect: no such path: %s" root))
    roots;
  List.sort_uniq compare !acc
