(* L12 — hot-path allocation from the parse tree (DESIGN.md §12). *)

let alloc_prims =
  [
    [ "Hashtbl"; "create" ];
    [ "Array"; "make" ];
    [ "Bytes"; "create" ];
  ]

let alloc_prim lid =
  (* Accept both bare and [Stdlib.]-qualified spellings. *)
  List.find_map
    (fun prim ->
      let l = List.length prim in
      let n = List.length lid in
      if n >= l && List.filteri (fun i _ -> i >= n - l) lid = prim then
        Some (String.concat "." prim)
      else None)
    alloc_prims

let findings (impl : Ast.impl) =
  let raw = Ast.raw_lines impl.src in
  let hot = Hashtbl.create 4 in
  Array.iter
    (fun line ->
      List.iter (fun nm -> Hashtbl.replace hot nm ()) (Rule.hot_names line))
    raw;
  if Hashtbl.length hot = 0 then []
  else begin
    let seen = Hashtbl.create 8 in
    let found = ref [] in
    Ast.iter_bindings
      (fun ~name ~line:_ expr ->
        if Hashtbl.mem hot name then
          Ast.iter_expressions
            (fun e ->
              match e.Parsetree.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                match alloc_prim (Ast.flatten txt) with
                | None -> ()
                | Some prim ->
                  let line = Ast.line_of_loc e.pexp_loc in
                  (* Hot bindings can nest inside hot bindings; one
                     finding per allocation site. *)
                  if not (Hashtbl.mem seen (line, prim)) then begin
                    Hashtbl.replace seen (line, prim) ();
                    found :=
                      {
                        Lint.file = impl.file;
                        line;
                        rule = Rule.L12;
                        message =
                          Printf.sprintf
                            "'%s' in hot function '%s': the round hot path \
                             reuses preallocated buffers (see Runtime.Arena)"
                            prim name;
                      }
                      :: !found
                  end)
              | _ -> ())
            expr)
      impl.structure;
    List.filter
      (fun (f : Lint.finding) ->
        let raw_line =
          if f.line - 1 < Array.length raw then raw.(f.line - 1) else ""
        in
        (* L12 supersedes L8: an existing [allow L8] marker keeps working. *)
        not (Rule.suppressed Rule.L12 raw_line)
        && not (Rule.suppressed Rule.L8 raw_line))
      !found
    |> List.sort Lint.compare_findings
  end
