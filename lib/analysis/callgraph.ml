(* Call-graph construction over compiler-libs parse trees (DESIGN.md §12).
   Purely syntactic: no typing environment, so resolution works on module
   paths — exact within a file, longest-common-suffix across files, with
   file-local module aliases (and functor-application heads) expanded. *)

type node = {
  id : string;
  unit_name : string;
  path : string list;
  name : string;
  file : string;
  line : int;
}

type def = {
  node : node;
  def_body : Parsetree.expression;
  def_refs : (string list * int) list;  (* raw, pre-alias-expansion *)
}

type t = {
  defs : (string, def) Hashtbl.t;  (* id -> def *)
  order : string list;  (* ids in (file, line) order *)
  by_name : (string, string) Hashtbl.t;  (* value name -> ids (multi) *)
  by_file : (string, string) Hashtbl.t;  (* file -> ids (multi) *)
  aliases : (string, string list) Hashtbl.t;  (* "file\x00M" -> target path *)
  edges : (string, (string * int) list) Hashtbl.t;  (* id -> (callee, line) *)
  redges : (string, string) Hashtbl.t;  (* callee id -> caller ids (multi) *)
  exts : (string, (string list * int) list) Hashtbl.t;  (* id -> unresolved *)
}

let unit_of_file file =
  String.capitalize_ascii Filename.(remove_extension (basename file))

(* ------------------------------------------------------------ collection *)

let rec pattern_var (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; loc } -> Some (txt, Ast.line_of_loc loc)
  | Ppat_constraint (p, _) -> pattern_var p
  | _ -> None

let collect_refs expr =
  let acc = ref [] in
  Ast.iter_expressions
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_ident { txt; loc } ->
        acc := (Ast.flatten txt, Ast.line_of_loc loc) :: !acc
      | _ -> ())
    expr;
  List.rev !acc

let alias_key file m = file ^ "\x00" ^ m

(* Head module identifier of a module expression, looking through functor
   applications and constraints: [Runtime.Make (T)] aliases to
   [Runtime.Make]. Structures return [None] (they define, not alias). *)
let rec module_alias_target (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_ident { txt; _ } -> Some (Longident.flatten txt)
  | Pmod_apply (f, _) -> module_alias_target f
  | Pmod_constraint (me, _) -> module_alias_target me
  | _ -> None

let collect_impl ~defs ~aliases (impl : Ast.impl) =
  let file = impl.file in
  let unit_name = unit_of_file file in
  let add_def ~path ~name ~line body =
    let id = String.concat "." path ^ "." ^ name in
    (* First definition of an id wins; a shadowing rebinding at the same
       path merges its references into the same node. *)
    match Hashtbl.find_opt defs id with
    | Some d ->
      Hashtbl.replace defs id
        { d with def_refs = d.def_refs @ collect_refs body }
    | None ->
      let node = { id; unit_name; path; name; file; line } in
      Hashtbl.replace defs id
        { node; def_body = body; def_refs = collect_refs body }
  in
  let rec walk_structure ~path items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match pattern_var vb.pvb_pat with
              | Some (name, line) -> add_def ~path ~name ~line vb.pvb_expr
              | None ->
                (* [let () = ...] and friends: module initialization code.
                   It cannot be called by name but it does call others, so
                   it gets a synthetic node and participates as a caller. *)
                let line = Ast.line_of_loc vb.pvb_pat.ppat_loc in
                add_def ~path ~name:(Printf.sprintf "<init:%d>" line) ~line
                  vb.pvb_expr)
            vbs
        | Pstr_module mb -> walk_module ~path mb
        | Pstr_recmodule mbs -> List.iter (walk_module ~path) mbs
        | Pstr_include { pincl_mod; _ } -> walk_module_expr ~path pincl_mod
        | _ -> ())
      items
  and walk_module ~path (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | None -> ()
    | Some name -> walk_named_module ~path ~name mb.pmb_expr
  and walk_named_module ~path ~name (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> walk_structure ~path:(path @ [ name ]) items
    | Pmod_functor (_, body) -> walk_named_module ~path ~name body
    | Pmod_constraint (me, _) -> walk_named_module ~path ~name me
    | _ -> (
      match module_alias_target me with
      | Some target -> Hashtbl.replace aliases (alias_key file name) target
      | None -> ())
  and walk_module_expr ~path (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> walk_structure ~path items
    | Pmod_constraint (me, _) -> walk_module_expr ~path me
    | _ -> ()
  in
  walk_structure ~path:[ unit_name ] impl.structure

(* ------------------------------------------------------------ resolution *)

(* Expand a file-local alias at the head of a module path, chasing chains
   ([module A = B] [module B = C.D]) with a small fuel bound to survive
   accidental cycles. *)
let expand_aliases t ~file mods =
  let rec go fuel mods =
    if fuel = 0 then mods
    else
      match mods with
      | [] -> []
      | m :: rest -> (
        match Hashtbl.find_opt t.aliases (alias_key file m) with
        | Some target -> go (fuel - 1) (target @ rest)
        | None -> mods)
  in
  go 4 mods

let common_suffix_len a b =
  let ra = List.rev a and rb = List.rev b in
  let rec go n = function
    | x :: xs, y :: ys when String.equal x y -> go (n + 1) (xs, ys)
    | _ -> n
  in
  go 0 (ra, rb)

let resolve t ~from lid =
  match List.rev lid with
  | [] -> []
  | name :: rev_mods -> (
    let mods = expand_aliases t ~file:from.file (List.rev rev_mods) in
    let candidates =
      Hashtbl.find_all t.by_name name
      |> List.filter_map (fun id -> Hashtbl.find_opt t.defs id)
      |> List.map (fun d -> d.node)
    in
    match mods with
    | [] ->
      (* Bare name: same file only, preferring the reference's own module
         path, then any enclosing/other path in the file. *)
      let same_file = List.filter (fun n -> n.file = from.file) candidates in
      let same_path = List.filter (fun n -> n.path = from.path) same_file in
      if same_path <> [] then same_path else same_file
    | _ -> (
      let scored =
        List.filter_map
          (fun n ->
            let s = common_suffix_len mods n.path in
            if s > 0 then Some (s, n) else None)
          candidates
      in
      match scored with
      | [] -> []
      | scored ->
        let best = List.fold_left (fun acc (s, _) -> max acc s) 0 scored in
        List.filter_map (fun (s, n) -> if s = best then Some n else None) scored
      ))

(* ----------------------------------------------------------------- build *)

let build impls =
  let defs = Hashtbl.create 512 in
  let aliases = Hashtbl.create 64 in
  List.iter (collect_impl ~defs ~aliases) impls;
  let t =
    {
      defs;
      order = [];
      by_name = Hashtbl.create 512;
      by_file = Hashtbl.create 64;
      aliases;
      edges = Hashtbl.create 512;
      redges = Hashtbl.create 512;
      exts = Hashtbl.create 512;
    }
  in
  let all = Hashtbl.fold (fun _ d acc -> d :: acc) defs [] in
  let all =
    List.sort
      (fun a b -> compare (a.node.file, a.node.line, a.node.id)
          (b.node.file, b.node.line, b.node.id))
      all
  in
  List.iter
    (fun d ->
      Hashtbl.add t.by_name d.node.name d.node.id;
      Hashtbl.add t.by_file d.node.file d.node.id)
    all;
  (* Resolve every reference once, populating edges and externals. *)
  List.iter
    (fun d ->
      let from = d.node in
      let seen = Hashtbl.create 8 in
      let edges = ref [] and exts = ref [] in
      List.iter
        (fun (lid, line) ->
          match resolve t ~from lid with
          | [] ->
            exts := (expand_aliases t ~file:from.file lid, line) :: !exts
          | targets ->
            List.iter
              (fun (n : node) ->
                if n.id <> from.id && not (Hashtbl.mem seen n.id) then begin
                  Hashtbl.replace seen n.id ();
                  edges := (n.id, line) :: !edges;
                  Hashtbl.add t.redges n.id from.id
                end)
              targets)
        d.def_refs;
      Hashtbl.replace t.edges from.id (List.rev !edges);
      Hashtbl.replace t.exts from.id (List.rev !exts))
    all;
  { t with order = List.map (fun d -> d.node.id) all }

(* --------------------------------------------------------------- queries *)

let find t id = Hashtbl.find_opt t.defs id

let nodes t = List.filter_map (fun id -> Option.map (fun d -> d.node) (find t id)) t.order

let defs_in_file t file =
  List.filter (fun n -> n.file = file) (nodes t)

let callees t node =
  match Hashtbl.find_opt t.edges node.id with
  | None -> []
  | Some es ->
    List.filter_map (fun (id, _) -> Option.map (fun d -> d.node) (find t id)) es

let callers t node =
  Hashtbl.find_all t.redges node.id
  |> List.filter_map (fun id -> Option.map (fun d -> d.node) (find t id))

let externals t node =
  match Hashtbl.find_opt t.exts node.id with None -> [] | Some es -> es

let refs t node =
  match find t node.id with
  | None -> []
  | Some d ->
    List.map
      (fun (lid, line) -> (expand_aliases t ~file:node.file lid, line))
      d.def_refs

let body t node =
  match find t node.id with
  | Some d -> d.def_body
  | None -> invalid_arg ("Callgraph.body: unknown node " ^ node.id)

let call_line t ~caller ~callee =
  match Hashtbl.find_opt t.edges caller.id with
  | None -> None
  | Some es ->
    List.find_map (fun (id, line) -> if id = callee.id then Some line else None) es

(* ------------------------------------------------------------------ dot *)

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  let cluster = ref 0 in
  let by_file = Hashtbl.create 32 in
  List.iter
    (fun n ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_file n.file) in
      Hashtbl.replace by_file n.file (n :: prev))
    (nodes t);
  let files =
    Hashtbl.fold (fun f _ acc -> f :: acc) by_file [] |> List.sort compare
  in
  List.iter
    (fun file ->
      let ns = List.rev (Hashtbl.find by_file file) in
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n" !cluster
           file);
      incr cluster;
      List.iter
        (fun n -> Buffer.add_string buf (Printf.sprintf "    \"%s\";\n" n.id))
        ns;
      Buffer.add_string buf "  }\n")
    files;
  List.iter
    (fun n ->
      List.iter
        (fun (c : node) ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\";\n" n.id c.id))
        (callees t n))
    (nodes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
