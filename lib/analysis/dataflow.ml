(* Reachability fixpoints over Callgraph (DESIGN.md §12). Both directions
   are plain BFS over the resolved edges, so witness paths are shortest by
   construction and the whole analysis is linear in edges. *)

type path = { hops : Callgraph.node list; sink : string; line : int }

type hit =
  | Direct of string * int  (* sink name, reference line *)
  | Via of string  (* id of the next hop toward the sink *)

let sinks_reachable g ~is_sink ~descend =
  let state : (string, hit) Hashtbl.t = Hashtbl.create 256 in
  let all = Callgraph.nodes g in
  (* Seed: nodes referencing a sink primitive directly. *)
  let frontier = Queue.create () in
  List.iter
    (fun n ->
      match
        List.find_opt (fun (lid, _) -> is_sink lid) (Callgraph.externals g n)
      with
      | Some (lid, line) ->
        Hashtbl.replace state n.Callgraph.id
          (Direct (String.concat "." lid, line));
        Queue.add n frontier
      | None -> ())
    all;
  (* Propagate callee -> caller, crossing only descendable callees. *)
  while not (Queue.is_empty frontier) do
    let n = Queue.pop frontier in
    if descend n then
      List.iter
        (fun (caller : Callgraph.node) ->
          if not (Hashtbl.mem state caller.id) then begin
            Hashtbl.replace state caller.id (Via n.Callgraph.id);
            Queue.add caller frontier
          end)
        (Callgraph.callers g n)
  done;
  let by_id = Hashtbl.create 256 in
  List.iter (fun (n : Callgraph.node) -> Hashtbl.replace by_id n.id n) all;
  fun (node : Callgraph.node) ->
    match Hashtbl.find_opt state node.id with
    | None -> None
    | Some first ->
      let rec chain acc (n : Callgraph.node) hit =
        match hit with
        | Direct (sink, line) -> (List.rev (n :: acc), sink, line)
        | Via next_id ->
          let next = Hashtbl.find by_id next_id in
          chain (n :: acc) next (Hashtbl.find state next_id)
      in
      let hops, sink, direct_line = chain [] node first in
      let line =
        match hops with
        | _ :: (second : Callgraph.node) :: _ ->
          Option.value ~default:node.line
            (Callgraph.call_line g ~caller:node ~callee:second)
        | _ -> direct_line
      in
      Some { hops; sink; line }

let reachable_from g ~roots =
  let seen = Hashtbl.create 256 in
  let frontier = Queue.create () in
  List.iter
    (fun (r : Callgraph.node) ->
      if not (Hashtbl.mem seen r.id) then begin
        Hashtbl.replace seen r.id ();
        Queue.add r frontier
      end)
    roots;
  while not (Queue.is_empty frontier) do
    let n = Queue.pop frontier in
    List.iter
      (fun (c : Callgraph.node) ->
        if not (Hashtbl.mem seen c.id) then begin
          Hashtbl.replace seen c.id ();
          Queue.add c frontier
        end)
      (Callgraph.callees g n)
  done;
  fun (n : Callgraph.node) -> Hashtbl.mem seen n.id
