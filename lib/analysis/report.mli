(** Machine-readable rendering of lint findings. *)

val to_string : Lint.finding -> string
(** One line: [file:line rule message]. *)

val print : out_channel -> Lint.finding list -> unit

val summary : Lint.finding list -> string
(** ["cc_lint: clean"] or a finding count, for the trailing stderr line. *)

val rules_range : unit -> string
(** ["L1-L12"]-style span, derived from {!Rule.all} so it can never go
    stale when the catalog grows. *)

val rules_table : unit -> string
(** The full rule catalog — every id in {!Rule.all}, one per line — for
    [cc_lint --rules]. *)

val schema : string
(** Schema tag embedded in the JSON rendering, ["cc-lint/1"]. *)

val to_json : ?errors:string list -> Lint.finding list -> Metrics.Json.t
(** Findings (plus parse [errors] from the semantic pass) as a JSON tree
    that round-trips through [Metrics.Json.of_string]: an object with
    [schema], [rules], [count], [findings] (file/line/rule/message
    records) and [errors]. *)

val print_json : out_channel -> ?errors:string list -> Lint.finding list -> unit
(** [to_json] serialized (pretty-printed) followed by a newline. *)
