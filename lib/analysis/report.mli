(** Machine-readable rendering of lint findings. *)

val to_string : Lint.finding -> string
(** One line: [file:line rule message]. *)

val print : out_channel -> Lint.finding list -> unit

val summary : Lint.finding list -> string
(** ["cc_lint: clean"] or a finding count, for the trailing stderr line. *)

val rules_table : unit -> string
(** The L1-L6 catalog, one rule per line, for [cc_lint --rules]. *)
