(** Compiler-frontend parsing for the semantic lint pass.

    A thin wrapper over [compiler-libs.common] (shipped with the OCaml
    distribution — no new opam dependency): sources are lexed and parsed
    with the compiler's own [Parse.implementation] / [Parse.interface], so
    the semantic rules (L10-L12) see exactly the tree the compiler sees —
    nested bindings, module aliases, functor applications, and the
    parse-time desugarings ([a.(i) <- v] becomes an [Array.set]
    application) that the lexical pass of {!Scan} cannot. *)

type impl = {
  file : string;  (** path the source was read from (or planted as) *)
  src : string;  (** raw source text, for marker/suppression lookup *)
  structure : Parsetree.structure;
}

val parse_impl : file:string -> string -> (impl, string) result
(** Parse an [.ml] source. [Error] carries a one-line [file:line message]
    description for lexer and syntax errors; the tree is never partially
    returned. *)

val parse_interface : file:string -> string -> (Parsetree.signature, string) result
(** Parse an [.mli] source, for syntax validation of interface files. *)

val line_of_loc : Location.t -> int
(** 1-based start line of a compiler location. *)

val flatten : Longident.t -> string list
(** [Longident.flatten]: [A.B.c] becomes [["A"; "B"; "c"]]. Works for the
    operator idents the parser synthesizes too ([":="], ["Array.set"]). *)

val raw_lines : string -> string array
(** The source split on newlines, 1-based access via [raw_lines.(line-1)];
    used to honor [(* cc_lint: allow .. *)] markers on semantic findings
    exactly as the lexical pass does. *)

val iter_expressions : (Parsetree.expression -> unit) -> Parsetree.expression -> unit
(** Depth-first visit of every sub-expression of an expression (including
    the expression itself), descending into nested [let]s, [fun] bodies,
    match arms, and local modules. *)

val iter_bindings :
  (name:string -> line:int -> Parsetree.expression -> unit) ->
  Parsetree.structure ->
  unit
(** Visit every [let]-bound value in the structure — at any depth: toplevel
    items, bindings nested inside other bindings' bodies, and bindings
    inside sub-modules — with its simple name (when the pattern is a plain
    variable), definition line, and bound expression. *)
