(** The model-hygiene rule catalog.

    Every reproduced claim (Theorems 1.1-1.4, Theorem 3.3) is deterministic
    and priced in congested-clique rounds with O(log n)-bit messages; each
    rule names one way a source file can silently step outside that model.
    Rules are identified as [L1]..[L9] and can be suppressed per line with a
    [(* cc_lint: allow L2 *)] comment (ids match case-insensitively). *)

type id = L1 | L2 | L3 | L4 | L5 | L6 | L7 | L8 | L9

val all : id list
(** In ascending order. *)

val to_string : id -> string

val of_string : string -> id option

val synopsis : id -> string
(** One-line description, used by [cc_lint --rules] and in messages. *)

val allow_marker : string
(** The literal suppression marker, ["cc_lint: allow"]. *)

val suppressed : id -> string -> bool
(** [suppressed id raw_line] is [true] iff the raw (uncommented-out) line
    carries a suppression marker naming [id]. The id tokens after the
    marker are matched case-insensitively ([l9] suppresses [L9]). *)

val hot_marker : string
(** The literal hot-path marker, ["cc_lint: hot"]. A comment
    [(* cc_lint: hot deliver *)] anywhere in a file declares the named
    top-level functions hot: rule [L8] then flags per-call allocation
    ([Hashtbl.create], [Array.make], [Bytes.create]) inside them. *)

val hot_names : string -> string list
(** [hot_names raw_line] is the list of function names the line's hot
    marker declares, or [[]] when it carries none. *)
