(** The model-hygiene rule catalog.

    Every reproduced claim (Theorems 1.1-1.4, Theorem 3.3) is deterministic
    and priced in congested-clique rounds with O(log n)-bit messages; each
    rule names one way a source file can silently step outside that model.
    Rules are identified as [L1]..[Ln] (the catalog range is whatever
    {!all} holds — never hardcode it) and can be suppressed per line with a
    [(* cc_lint: allow L2 *)] comment (ids match case-insensitively).
    [L1]-[L9] and [L13] are lexical (per-line, {!Scan}); the {!semantic}
    subset is computed from the compiler parse tree and call graph
    ({!Semantic}). *)

type id = L1 | L2 | L3 | L4 | L5 | L6 | L7 | L8 | L9 | L10 | L11 | L12 | L13
(** The rule catalog; see {!synopsis} for what each enforces. *)

val all : id list
(** In ascending order. *)

val semantic : id list
(** The rules emitted by the AST/call-graph pass ([cc_lint --semantic]):
    [L10] (transitive model purity), [L11] (domain-race detector), [L12]
    (AST-accurate hot-path allocation, superseding [L8]). *)

val to_string : id -> string
(** ["L1"] .. ["L13"] — the id as it appears in findings and markers. *)

val of_string : string -> id option
(** Inverse of {!to_string}, case-insensitive; [None] on unknown ids. *)

val synopsis : id -> string
(** One-line description, used by [cc_lint --rules] and in messages. *)

val allow_marker : string
(** The literal suppression marker, ["cc_lint: allow"]. *)

val suppressed : id -> string -> bool
(** [suppressed id raw_line] is [true] iff the raw (uncommented-out) line
    carries a suppression marker naming [id]. The id tokens after the
    marker are matched case-insensitively ([l9] suppresses [L9]). *)

val hot_marker : string
(** The literal hot-path marker, ["cc_lint: hot"]. A comment
    [(* cc_lint: hot deliver *)] anywhere in a file declares the named
    top-level functions hot: rule [L8] then flags per-call allocation
    ([Hashtbl.create], [Array.make], [Bytes.create]) inside them, and the
    semantic rule [L12] does the same from the parse tree — also catching
    hot functions bound by nested [let]s, which the lexical tracker cannot
    see. *)

val hot_names : string -> string list
(** [hot_names raw_line] is the list of function names the line's hot
    marker declares, or [[]] when it carries none. *)
