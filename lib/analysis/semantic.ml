(* Rules L10-L12 over the call graph (DESIGN.md §12). *)

type result = {
  findings : Lint.finding list;
  errors : string list;
  graph : Callgraph.t;
}

(* --------------------------------------------------- layer classification *)

let under dir path =
  let segs =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")
  in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.mem ("lib", dir) (pairs segs)

let in_lib path =
  match
    String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")
  with
  | "lib" :: _ -> true
  | _ -> false

(* L10 traversal boundary: the metered/driver/observability layers use
   Domain, Unix and wall-clock by design and under their own rules (L9,
   sanitizer, disabled-mode metrics); reaching *into* them from a charged
   layer is the sanctioned path, so the walk stops at their doorstep. *)
let traversal_stops file =
  Lint.transport_privileged file
  || Lint.wire_privileged file
  || under "fault" file
  || under "metrics" file

(* ------------------------------------------------------------- suppression *)

let raw_line_of lines_by_file file line =
  match Hashtbl.find_opt lines_by_file file with
  | None -> ""
  | Some (raw : string array) ->
    if line >= 1 && line <= Array.length raw then raw.(line - 1) else ""

let keep_unsuppressed lines_by_file findings =
  List.filter
    (fun (f : Lint.finding) ->
      not (Rule.suppressed f.rule (raw_line_of lines_by_file f.file f.line)))
    findings

(* ------------------------------------------------------------------- L10 *)

let socket_syscalls =
  [
    "socket"; "socketpair"; "connect"; "accept"; "bind"; "listen"; "read";
    "write"; "single_write";
  ]

(* Impure primitives, matched against alias-expanded unresolved references.
   The module segment is matched at the tail of the path so [Stdlib.Random]
   and [Random] both count; [Prng] (the seeded generator) resolves to a
   known node and never reaches this predicate. *)
let is_impure_sink lid =
  match List.rev lid with
  | name :: m :: _ -> (
    match m with
    | "Random" | "Domain" -> true
    | "Unix" ->
      name = "time" || name = "gettimeofday"
      || List.mem name socket_syscalls
    | "Sys" -> name = "time"
    | _ -> false)
  | _ -> false

let l10_findings graph =
  let reach =
    Dataflow.sinks_reachable graph ~is_sink:is_impure_sink
      ~descend:(fun (n : Callgraph.node) -> not (traversal_stops n.file))
  in
  List.filter_map
    (fun (n : Callgraph.node) ->
      if not (Lint.is_charged n.file) then None
      else
        match reach n with
        | None -> None
        | Some { Dataflow.hops; sink; line } ->
          let chain =
            String.concat " -> "
              (List.map (fun (h : Callgraph.node) -> h.id) hops @ [ sink ])
          in
          Some
            {
              Lint.file = n.file;
              line;
              rule = Rule.L10;
              message =
                Printf.sprintf
                  "impure primitive '%s' reachable from charged function \
                   '%s': %s"
                  sink n.id chain;
            })
    (Callgraph.nodes graph)

(* ------------------------------------------------------------------- L11 *)

(* A structure-level binding whose bound expression is mutable storage.
   Type information is out of reach, so this is the syntactic set: [ref]
   applications, mutable-container creators, and array literals. [Atomic.t]
   values are deliberately absent — Atomic is the sanctioned fix. *)
let mutable_heads =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
  ]

let rec expr_head (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) -> expr_head e
  | _ -> e

let mutable_global graph (n : Callgraph.node) =
  match (expr_head (Callgraph.body graph n)).pexp_desc with
  | Pexp_array _ -> true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let lid = Ast.flatten txt in
    List.exists
      (fun head ->
        let l = List.length head and k = List.length lid in
        k >= l && List.filteri (fun i _ -> i >= k - l) lid = head)
      mutable_heads
  | _ -> false

let suffix2 a b lid =
  match List.rev lid with
  | x :: y :: _ -> x = b && y = a
  | _ -> false

(* Files that orchestrate domain parallelism: any reference to [Domain.*]
   or to [Pool.run]/[Pool.get]. All their functions run (or publish work)
   concurrently with pool workers, so the whole file joins the region. *)
let domain_adjacent graph file =
  List.exists
    (fun n ->
      List.exists
        (fun (lid, _) ->
          (match lid with
          | _ :: _ -> (
            match List.rev lid with
            | _ :: m :: _ -> m = "Domain"
            | _ -> false)
          | [] -> false)
          || suffix2 "Pool" "run" lid
          || suffix2 "Pool" "get" lid)
        (Callgraph.refs graph n))
    (Callgraph.defs_in_file graph file)

(* Nodes referenced from the closure arguments of [Pool.run]/[Domain.spawn]
   call sites: the fan-out entry points. *)
let fanned_roots graph =
  let roots = ref [] in
  List.iter
    (fun (n : Callgraph.node) ->
      Ast.iter_expressions
        (fun e ->
          match e.Parsetree.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when suffix2 "Pool" "run" (Ast.flatten txt)
                 || suffix2 "Domain" "spawn" (Ast.flatten txt) ->
            List.iter
              (fun (_, (arg : Parsetree.expression)) ->
                Ast.iter_expressions
                  (fun a ->
                    match a.Parsetree.pexp_desc with
                    | Pexp_ident { txt; _ } ->
                      roots :=
                        Callgraph.resolve graph ~from:n (Ast.flatten txt)
                        @ !roots
                    | _ -> ())
                  arg)
              args
          | _ -> ())
        (Callgraph.body graph n))
    (Callgraph.nodes graph);
  !roots

let lock_disciplined graph n =
  List.exists
    (fun (lid, _) ->
      suffix2 "Mutex" "lock" lid || suffix2 "Mutex" "protect" lid)
    (Callgraph.refs graph n)

(* Mutating operations whose first (unlabeled) argument names the storage. *)
let mutating_ops =
  [
    ([ "Hashtbl" ], [ "add"; "replace"; "remove"; "reset"; "clear";
                      "filter_map_inplace" ]);
    ([ "Array" ], [ "set"; "fill"; "blit"; "unsafe_set" ]);
    ([ "Bytes" ], [ "set"; "fill"; "blit"; "unsafe_set" ]);
    ([ "Queue" ], [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]);
    ([ "Stack" ], [ "push"; "pop"; "clear" ]);
    ([ "Buffer" ], [ "add_string"; "add_char"; "add_bytes"; "clear"; "reset" ]);
  ]

let write_targets body =
  let acc = ref [] in
  let first_ident args =
    List.find_map
      (fun ((label : Asttypes.arg_label), (a : Parsetree.expression)) ->
        match (label, a.pexp_desc) with
        | Asttypes.Nolabel, Pexp_ident { txt; _ } -> Some (Ast.flatten txt)
        | _ -> None)
      args
  in
  Ast.iter_expressions
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
        let line = Ast.line_of_loc e.pexp_loc in
        match List.rev (Ast.flatten txt) with
        | (":=" | "incr" | "decr") :: ([] | [ "Stdlib" ]) -> (
          match first_ident args with
          | Some target -> acc := (target, "':='", line) :: !acc
          | None -> ())
        | op :: m :: _
          when List.exists
                 (fun (ms, ops) -> ms = [ m ] && List.mem op ops)
                 mutating_ops -> (
          match first_ident args with
          | Some target ->
            acc := (target, Printf.sprintf "'%s.%s'" m op, line) :: !acc
          | None -> ())
        | _ -> ())
      | Pexp_setfield
          ({ pexp_desc = Pexp_ident { txt; _ }; _ }, { txt = fld; _ }, _) ->
        acc :=
          ( Ast.flatten txt,
            Printf.sprintf "mutable field '%s' assignment"
              (String.concat "." (Ast.flatten fld)),
            Ast.line_of_loc e.pexp_loc )
          :: !acc
      | _ -> ())
    body;
  List.rev !acc

let l11_findings graph =
  let all = Callgraph.nodes graph in
  let adjacency = Hashtbl.create 16 in
  let file_adjacent file =
    match Hashtbl.find_opt adjacency file with
    | Some b -> b
    | None ->
      let b = domain_adjacent graph file in
      Hashtbl.replace adjacency file b;
      b
  in
  let region_roots =
    fanned_roots graph
    @ List.filter (fun (n : Callgraph.node) -> file_adjacent n.file) all
  in
  let in_region = Dataflow.reachable_from graph ~roots:region_roots in
  let globals = Hashtbl.create 32 in
  List.iter
    (fun (n : Callgraph.node) ->
      if mutable_global graph n then Hashtbl.replace globals n.id n)
    all;
  List.concat_map
    (fun (n : Callgraph.node) ->
      if not (in_lib n.file) || not (in_region n) || lock_disciplined graph n
      then []
      else
        List.filter_map
          (fun (target, op, line) ->
            let defs = Callgraph.resolve graph ~from:n target in
            List.find_map
              (fun (d : Callgraph.node) ->
                match Hashtbl.find_opt globals d.id with
                | None -> None
                | Some g ->
                  Some
                    {
                      Lint.file = n.file;
                      line;
                      rule = Rule.L11;
                      message =
                        Printf.sprintf
                          "%s write to top-level mutable '%s' (%s:%d) from \
                           domain-fanned region function '%s' without \
                           Atomic/Mutex discipline"
                          op g.id g.file g.line n.id;
                    })
              defs)
          (write_targets (Callgraph.body graph n)))
    all

(* --------------------------------------------------------------- driver *)

let analyze sources =
  let errors = ref [] in
  let impls = ref [] in
  let lines_by_file = Hashtbl.create 64 in
  List.iter
    (fun (file, src) ->
      Hashtbl.replace lines_by_file file (Ast.raw_lines src);
      if Filename.check_suffix file ".mli" then begin
        match Ast.parse_interface ~file src with
        | Ok _ -> ()
        | Error e -> errors := e :: !errors
      end
      else
        match Ast.parse_impl ~file src with
        | Ok impl -> impls := impl :: !impls
        | Error e -> errors := e :: !errors)
    sources;
  let impls = List.rev !impls in
  let graph = Callgraph.build impls in
  let findings =
    l10_findings graph @ l11_findings graph
    @ List.concat_map Hotpath.findings impls
  in
  {
    findings =
      keep_unsuppressed lines_by_file findings
      |> List.sort_uniq Lint.compare_findings;
    errors = List.rev !errors;
    graph;
  }

let analyze_paths roots =
  let read file =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    (file, src)
  in
  analyze (List.map read (Walk.collect roots))
