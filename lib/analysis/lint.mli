(** The model-compliance linter.

    Walks OCaml sources and enforces the hygiene rules of {!Rule}: charged
    layers ([lib/sparsify], [lib/laplacian], [lib/flow], [lib/euler],
    [lib/rounding], [lib/expander]) must be deterministic and free of
    wall-clock state (L1, L2); transports may only be driven through the
    [Runtime] ledger outside [lib/runtime] and [lib/clique] (L3); [Obj.magic]
    (L4) and catch-all handlers (L5) are forbidden everywhere; every [lib]
    module ships an [.mli] (L6); raw socket syscalls are confined to
    [lib/wire] and the socket transport (L9). Scanning is purely lexical
    (see {!Scan}), so sources can be checked in memory without a
    compiler. *)

type finding = { file : string; line : int; rule : Rule.id; message : string }
(** One lint hit, pointing at the offending source line. *)

val compare_findings : finding -> finding -> int
(** Orders by file, then line, then rule id. *)

val scan_source : file:string -> string -> finding list
(** Lint an in-memory source. [file] determines which rules apply (charged
    layer? transport-privileged?); it does not need to exist on disk.
    Findings suppressed by a [(* cc_lint: allow Lk *)] marker on their line
    are dropped. Sorted by {!compare_findings}. *)

val scan_file : string -> finding list
(** [scan_source] over the contents of a file on disk. *)

val missing_mlis : string list -> finding list
(** L6 over a path set: every [lib/**.ml] without a sibling [.mli] in the
    same list yields a finding at line 1. *)

val lint_paths : string list -> finding list
(** Lint every [.ml]/[.mli] under the given roots (see {!Walk.collect}),
    including the L6 interface check over the collected set. *)

val is_charged : string -> bool
(** Whether a path lies in a charged (round-priced) layer. *)

val transport_privileged : string -> bool
(** Whether a path may touch [Sim]/[Congest] directly: [lib/runtime],
    [lib/clique], and the harness trees ([test/], [bench/]) that exercise
    transport primitives by design. *)

val wire_privileged : string -> bool
(** Whether a path may issue raw socket syscalls ([Unix.socket],
    [Unix.connect], [Unix.read], [Unix.write], ...): [lib/wire/**] and
    [lib/clique/socket.ml] only. Rule L9 flags them everywhere else. *)
