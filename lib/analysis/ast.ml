(* Parsing through the compiler's own frontend (compiler-libs.common).
   The linter runs on the developer's machine and in CI, never inside a
   charged layer, so allocating freely here is in-model. *)

type impl = {
  file : string;
  src : string;
  structure : Parsetree.structure;
}

let line_of_loc (loc : Location.t) = loc.loc_start.pos_lnum

let describe_error ~file = function
  | Syntaxerr.Error err ->
    let loc = Syntaxerr.location_of_error err in
    Printf.sprintf "%s:%d syntax error" file (line_of_loc loc)
  | Lexer.Error (_, loc) ->
    Printf.sprintf "%s:%d lexer error" file (line_of_loc loc)
  | e -> Printf.sprintf "%s:1 parse failure: %s" file (Printexc.to_string e)

let with_lexbuf ~file src parse =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  (* The compiler's error reporter must not print to stderr on its own;
     parse exceptions are caught and rendered as one-line strings. *)
  match parse lexbuf with
  | v -> Ok v
  | exception (Syntaxerr.Error _ as e) -> Error (describe_error ~file e)
  | exception (Lexer.Error _ as e) -> Error (describe_error ~file e)

let parse_impl ~file src =
  match with_lexbuf ~file src Parse.implementation with
  | Ok structure -> Ok { file; src; structure }
  | Error e -> Error e

let parse_interface ~file src = with_lexbuf ~file src Parse.interface

let flatten = Longident.flatten

let raw_lines src = Array.of_list (String.split_on_char '\n' src)

(* Depth-first expression traversal via Ast_iterator: the default iterator
   already recurses through every syntactic category (match arms, local
   modules, classes), so overriding [expr] alone visits each
   sub-expression exactly once. *)
let iter_expressions f expr =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr

let iter_bindings f structure =
  let visit_vb it (vb : Parsetree.value_binding) =
    (match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; loc } -> f ~name:txt ~line:(line_of_loc loc) vb.pvb_expr
    | _ -> ());
    Ast_iterator.default_iterator.value_binding it vb
  in
  let it =
    { Ast_iterator.default_iterator with value_binding = visit_vb }
  in
  it.structure it structure
