type finding = { file : string; line : int; rule : Rule.id; message : string }

let compare_findings a b =
  compare (a.file, a.line, Rule.to_string a.rule) (b.file, b.line, Rule.to_string b.rule)

(* ------------------------------------------------- path classification *)

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let under dir path =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.mem ("lib", dir) (pairs (segments path))

let charged_layers =
  [ "sparsify"; "laplacian"; "flow"; "euler"; "rounding"; "expander" ]

let is_charged path = List.exists (fun d -> under d path) charged_layers

(* The directories allowed to touch transports directly: the kernels
   themselves, the runtime that meters them, and the harness trees —
   tests and benchmarks exercise Sim/Congest primitives on purpose, and
   became lintable when the CI gate widened to [lib bin bench test]. *)
let harness path =
  match segments path with
  | ("test" | "bench") :: _ -> true
  | _ -> false

let transport_privileged path =
  under "runtime" path || under "clique" path || harness path

(* The only code allowed to issue raw socket syscalls: the wire layer
   itself and the socket transport built directly on it. Everything else
   must go through Wire.Link so framing, checksums and the byte counters
   cannot be bypassed. *)
let wire_privileged path =
  under "wire" path
  || (under "clique" path && Filename.basename path = "socket.ml")

(* The only lib code allowed to name Shard_down: the supervisor that
   raises and recovers from it (the socket coordinator and the fault
   drivers) and its definition site. Charged layers must let it propagate
   (L13) — recovery without re-certification is not recovery. Harness
   trees (test/, bench/, bin/) assert on it freely. *)
let supervisor_privileged path =
  under "fault" path
  || (under "clique" path
     && List.mem (Filename.basename path) [ "socket.ml"; "socket.mli" ])
  || (under "runtime" path
     && List.mem (Filename.basename path) [ "shard.ml"; "shard.mli" ])

let is_lib_module path =
  match segments path with "lib" :: _ :: _ -> true | _ -> false

(* ------------------------------------------------------- token matching *)

let boundary_before line i = i = 0 || not (Scan.is_ident_char line.[i - 1])

let boundary_after line j =
  j >= String.length line || not (Scan.is_ident_char line.[j])

(* All start positions of [tok] in [line] at identifier boundaries. A token
   ending in a non-identifier character (the trailing dot of [Random.]) needs
   no right boundary: whatever follows the dot cannot extend the token. *)
let token_positions line tok =
  let tl = String.length tok and ll = String.length line in
  let needs_right = tl > 0 && Scan.is_ident_char tok.[tl - 1] in
  let rec loop i acc =
    if i + tl > ll then List.rev acc
    else if
      String.sub line i tl = tok
      && boundary_before line i
      && ((not needs_right) || boundary_after line (i + tl))
    then loop (i + 1) (i :: acc)
    else loop (i + 1) acc
  in
  loop 0 []

let mentions line tok = token_positions line tok <> []

(* [with] +spaces+ [_] +spaces+ [->] — the lexical shape of a catch-all
   handler. A [match] earlier on the line means the [_] is an ordinary
   wildcard pattern, not an exception catch-all. *)
let catch_all line =
  match token_positions line "with" with
  | [] -> false
  | positions ->
    let matches = token_positions line "match" in
    List.exists
      (fun i ->
        (not (List.exists (fun m -> m < i) matches))
        &&
        let len = String.length line in
        let j = ref (i + 4) in
        while !j < len && line.[!j] = ' ' do
          incr j
        done;
        if !j < len && line.[!j] = '_' && boundary_after line (!j + 1) then begin
          incr j;
          while !j < len && line.[!j] = ' ' do
            incr j
          done;
          !j + 1 < len && line.[!j] = '-' && line.[!j + 1] = '>'
        end
        else false)
      positions

(* ----------------------------------------------------------- the rules *)

let transport_ops = [ "exchange"; "route"; "broadcast"; "charge" ]

let transport_tokens =
  List.concat_map
    (fun m -> List.map (fun op -> m ^ "." ^ op) transport_ops)
    [ "Sim"; "Congest" ]

let entropy_tokens = [ "Random." ]

(* Recovery belongs to the driver above the algorithms: a charged layer
   that catches Fault_detected or re-runs itself through Recover.run is
   making resilience decisions the ledger can no longer attribute. *)
let recovery_tokens = [ "Fault_detected"; "Recover.run" ]

let wallclock_tokens = [ "Unix."; "Sys.time" ]

(* Per-call allocation primitives the round hot path must not reach for:
   arena-style kernels size their buffers once and reset them. *)
let alloc_tokens = [ "Hashtbl.create"; "Array.make"; "Bytes.create" ]

(* Raw socket syscalls (L9). [Unix.select] is deliberately absent: waiting
   on descriptors does not move bytes, and drivers may multiplex. *)
let socket_tokens =
  [
    "Unix.socket";
    "Unix.socketpair";
    "Unix.connect";
    "Unix.accept";
    "Unix.bind";
    "Unix.listen";
    "Unix.read";
    "Unix.write";
    "Unix.single_write";
  ]

(* The top-level binding a column-0 [let] / [let rec] / [and] line opens,
   if any — the lexical "current function" tracker rule L8 scopes hot
   regions with. Nested (indented) bindings stay inside the enclosing
   function on purpose: a hot function's local helpers are hot too. *)
let toplevel_binding code_line =
  let len = String.length code_line in
  let after_kw kw =
    let kl = String.length kw in
    if len > kl && String.sub code_line 0 kl = kw && code_line.[kl] = ' ' then
      Some (kl + 1)
    else None
  in
  let start =
    match after_kw "let rec" with
    | Some i -> Some i
    | None -> (
      match after_kw "let" with Some i -> Some i | None -> after_kw "and")
  in
  match start with
  | None -> None
  | Some i ->
    let i = ref i in
    while !i < len && code_line.[!i] = ' ' do
      incr i
    done;
    let j = ref !i in
    while !j < len && Scan.is_ident_char code_line.[!j] do
      incr j
    done;
    if !j > !i then Some (String.sub code_line !i (!j - !i)) else None

let line_findings ~file ~charged ~privileged ~wire_ok ~supervisor_ok ~hot
    lineno code_line =
  let found = ref [] in
  let add rule message = found := (rule, message) :: !found in
  if charged then begin
    List.iter
      (fun tok ->
        if mentions code_line tok then
          add Rule.L1
            (Printf.sprintf
               "'%s' in charged layer: the seeded Graph.Prng is the only \
                sanctioned entropy"
               tok))
      entropy_tokens;
    List.iter
      (fun tok ->
        if mentions code_line tok then
          add Rule.L2
            (Printf.sprintf
               "'%s' in charged layer: rounds, not wall-clock, are the cost \
                measure"
               tok))
      wallclock_tokens;
    List.iter
      (fun tok ->
        if mentions code_line tok then
          add Rule.L7
            (Printf.sprintf
               "'%s' in charged layer: recovery decisions belong to the \
                driver (Fault.Recover), not the algorithms"
               tok))
      recovery_tokens
  end;
  if not privileged then
    List.iter
      (fun tok ->
        if mentions code_line tok then
          add Rule.L3
            (Printf.sprintf
               "direct transport call '%s' bypasses the Runtime ledger" tok))
      transport_tokens;
  if not wire_ok then
    List.iter
      (fun tok ->
        if mentions code_line tok then
          add Rule.L9
            (Printf.sprintf
               "raw socket call '%s' outside the wire layer: use Wire.Link so \
                framing and byte accounting apply"
               tok))
      socket_tokens;
  if hot then
    List.iter
      (fun tok ->
        if mentions code_line tok then
          add Rule.L8
            (Printf.sprintf
               "'%s' in hot-path function: the round hot path reuses \
                preallocated buffers (see Runtime.Arena)"
               tok))
      alloc_tokens;
  if not supervisor_ok then
    if mentions code_line "Shard_down" then
      add Rule.L13
        "Shard_down outside the supervisor layer: let it propagate — only \
         lib/clique/socket.ml and lib/fault/ may handle a dead worker";
  if mentions code_line "Obj.magic" then
    add Rule.L4 "Obj.magic is forbidden";
  if catch_all code_line then
    add Rule.L5
      "catch-all handler 'with _ ->' can swallow model violations; match \
       specific exceptions";
  List.rev_map
    (fun (rule, message) -> { file; line = lineno; rule; message })
    !found

let scan_source ~file src =
  let charged = is_charged file in
  let privileged = transport_privileged file in
  let wire_ok = wire_privileged file in
  let supervisor_ok = (not (is_lib_module file)) || supervisor_privileged file in
  (* [strip] preserves newlines, so raw and code line arrays are parallel. *)
  let raw = Array.of_list (Scan.lines src) in
  let code = Array.of_list (Scan.lines (Scan.strip src)) in
  (* Hot markers live in comments, so they are read off the raw lines;
     the set is per-file and applies to the whole file regardless of where
     the marker sits. *)
  let hot_set = Hashtbl.create 4 in
  Array.iter
    (fun raw_line ->
      List.iter (fun nm -> Hashtbl.replace hot_set nm ()) (Rule.hot_names raw_line))
    raw;
  let current = ref "" in
  let findings = ref [] in
  Array.iteri
    (fun idx code_line ->
      (match toplevel_binding code_line with
      | Some nm -> current := nm
      | None -> ());
      let hot = Hashtbl.mem hot_set !current in
      line_findings ~file ~charged ~privileged ~wire_ok ~supervisor_ok ~hot
        (idx + 1) code_line
      |> List.iter (fun f ->
             if not (Rule.suppressed f.rule raw.(idx)) then
               findings := f :: !findings))
    code;
  List.sort compare_findings !findings

let scan_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  scan_source ~file src

(* ------------------------------------------------------------------ L6 *)

let missing_mlis paths =
  let set = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace set p ()) paths;
  List.filter_map
    (fun p ->
      if
        Filename.check_suffix p ".ml"
        && is_lib_module p
        && not (Hashtbl.mem set (p ^ "i"))
      then
        Some
          {
            file = p;
            line = 1;
            rule = Rule.L6;
            message = "lib module has no interface; add a sibling .mli";
          }
      else None)
    paths
  |> List.sort compare_findings

let lint_paths roots =
  let files = Walk.collect roots in
  let per_file = List.concat_map scan_file files in
  List.sort compare_findings (per_file @ missing_mlis files)
