type id = L1 | L2 | L3 | L4 | L5 | L6 | L7 | L8 | L9 | L10 | L11 | L12 | L13

let all = [ L1; L2; L3; L4; L5; L6; L7; L8; L9; L10; L11; L12; L13 ]

let to_string = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"
  | L7 -> "L7"
  | L8 -> "L8"
  | L9 -> "L9"
  | L10 -> "L10"
  | L11 -> "L11"
  | L12 -> "L12"
  | L13 -> "L13"

let of_string = function
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | "L5" -> Some L5
  | "L6" -> Some L6
  | "L7" -> Some L7
  | "L8" -> Some L8
  | "L9" -> Some L9
  | "L10" -> Some L10
  | "L11" -> Some L11
  | "L12" -> Some L12
  | "L13" -> Some L13
  | _ -> None

(* The semantic (AST/call-graph) rules, shipped by the --semantic pass. *)
let semantic = [ L10; L11; L12 ]

let synopsis = function
  | L1 ->
    "unsanctioned entropy in a charged layer (Random.*; use the seeded \
     Graph.Prng)"
  | L2 ->
    "wall-clock or OS state in a charged layer (Unix.*, Sys.time): rounds \
     are the only cost measure"
  | L3 ->
    "transport call bypassing the Runtime ledger (Sim./Congest. \
     exchange/route/broadcast/charge outside lib/runtime and lib/clique)"
  | L4 -> "Obj.magic defeats the type discipline the round accounting rests on"
  | L5 ->
    "catch-all exception handler (try ... with _ ->) can swallow \
     Bandwidth_exceeded and sanitizer violations"
  | L6 -> "lib module without an .mli interface"
  | L7 ->
    "recovery logic inside a charged layer (catching Fault_detected or \
     calling Recover.run): verify-and-retry belongs to the driver"
  | L8 ->
    "allocation in a hot-path function (Hashtbl.create, Array.make or \
     Bytes.create inside a function named by a (* cc_lint: hot ... *) \
     marker): the round hot path preallocates and reuses"
  | L9 ->
    "raw socket I/O outside the wire layer (Unix.socket, connect, accept, \
     read, write, ...): all inter-process bytes go through Wire.Link so \
     framing, checksums and byte accounting cannot be bypassed"
  | L10 ->
    "[semantic] impure primitive (Random.*, Unix.time/gettimeofday, \
     Sys.time, Domain.*, raw sockets) reachable through the call graph \
     from a charged-layer function; the finding prints the offending call \
     chain hop by hop"
  | L11 ->
    "[semantic] top-level mutable state (ref cells, global Hashtbl/Array \
     values, mutable record fields) written from the domain-fanned region \
     without Atomic/Mutex discipline: a data race across Pool workers"
  | L12 ->
    "[semantic] allocation inside a (* cc_lint: hot ... *) function, \
     AST-accurate: unlike L8's lexical tracker it sees nested let \
     bindings, so hot closures defined inside factories are covered"
  | L13 ->
    "Shard_down handled outside the supervisor layer: only the socket \
     coordinator (lib/clique/socket.ml), the fault drivers (lib/fault/), \
     and the definition site may name the exception — a charged layer \
     that catches it papers over a dead worker without certification"

let allow_marker = "cc_lint: allow"

let hot_marker = "cc_lint: hot"

(* The function names a [(* cc_lint: hot deliver exchange *)]-style marker
   on this raw line declares hot, in order; [] when the line carries no
   marker. The marker is per-file: [Lint.scan_source] unions every line's
   names before walking the code. *)
let hot_names raw_line =
  let len = String.length raw_line in
  let mlen = String.length hot_marker in
  let rec find i =
    if i + mlen > len then []
    else if String.sub raw_line i mlen = hot_marker then names (i + mlen) []
    else find (i + 1)
  and names i acc =
    if i >= len then List.rev acc
    else if raw_line.[i] = ' ' || raw_line.[i] = ',' then names (i + 1) acc
    else if raw_line.[i] = '*' then List.rev acc
    else begin
      let j = ref i in
      while
        !j < len
        && raw_line.[!j] <> ' '
        && raw_line.[!j] <> ','
        && raw_line.[!j] <> '*'
      do
        incr j
      done;
      names !j (String.sub raw_line i (!j - i) :: acc)
    end
  in
  find 0

(* A raw source line suppresses [id] iff it carries a
   [(* cc_lint: allow L2 L5 *)]-style marker naming that id. Id tokens
   match case-insensitively, so [(* cc_lint: allow l9 *)] works too. *)
let suppressed id raw_line =
  let name = String.lowercase_ascii (to_string id) in
  let len = String.length raw_line in
  let mlen = String.length allow_marker in
  let rec find i =
    if i + mlen > len then false
    else if String.sub raw_line i mlen = allow_marker then ids (i + mlen)
    else find (i + 1)
  and ids i =
    (* Scan the id list following the marker: uppercase-L tokens until the
       comment closes or the line ends. *)
    let rec loop i =
      if i >= len then false
      else if raw_line.[i] = ' ' || raw_line.[i] = ',' then loop (i + 1)
      else if i + 1 < len && raw_line.[i] = '*' && raw_line.[i + 1] = ')' then
        false
      else begin
        let j = ref i in
        while
          !j < len
          && raw_line.[!j] <> ' '
          && raw_line.[!j] <> ','
          && raw_line.[!j] <> '*'
        do
          incr j
        done;
        if String.lowercase_ascii (String.sub raw_line i (!j - i)) = name then
          true
        else loop !j
      end
    in
    loop i
  in
  find 0
