(** Interprocedural reachability over the call graph.

    Two fixpoints, both BFS so witness paths are shortest:

    - {!sinks_reachable} runs upward from sink primitives: a node whose
      body references a sink directly seeds the frontier, and sink
      knowledge propagates callee-to-caller — but only through callees
      satisfying [descend] (a privileged layer is a sanctioned boundary:
      what it does internally is its own rules' business). The result maps
      each node to a shortest witness chain, hop by hop, ending at the
      primitive.

    - {!reachable_from} runs forward from a root set, for region analyses
      (everything a pool-fanned closure can call). *)

type path = {
  hops : Callgraph.node list;  (** root first, direct caller of sink last *)
  sink : string;  (** the primitive, e.g. ["Random.int"] *)
  line : int;
      (** line in [List.hd hops].file of the reference that starts the
          chain: the sink reference itself for direct hits, the call to
          the next hop otherwise *)
}

val sinks_reachable :
  Callgraph.t ->
  is_sink:(string list -> bool) ->
  descend:(Callgraph.node -> bool) ->
  Callgraph.node ->
  path option
(** [sinks_reachable g ~is_sink ~descend] precomputes the fixpoint on
    first use and then answers per-node queries in O(path). [is_sink] is
    applied to alias-expanded unresolved references. *)

val reachable_from :
  Callgraph.t -> roots:Callgraph.node list -> Callgraph.node -> bool
(** Forward closure membership: the roots themselves are included. *)
