(** Lexical pre-pass for the linter.

    [strip src] returns [src] with every comment, string literal, and
    character literal replaced by spaces (newlines preserved), so that token
    rules match only real code and findings keep their line numbers. The
    scanner understands nested comments, escapes inside double-quoted
    strings, brace-pipe quoted strings (with optional delimiter ids), and
    distinguishes character literals from type variables and primed
    identifiers. *)

val strip : string -> string
(** Blank out comments and string/char literal contents, preserving
    layout (byte-for-byte line/column positions). *)

val lines : string -> string list
(** Split on ['\n'] (no trailing-newline special-casing). *)

val is_ident_char : char -> bool
(** Identifier continuation characters, used for token-boundary checks. *)
