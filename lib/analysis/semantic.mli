(** The semantic (AST + call-graph) lint pass: rules L10-L12.

    Where the lexical pass of {!Lint} sees one line at a time, this pass
    parses every implementation with the compiler's own frontend
    ({!Ast}), builds a module-qualified call graph ({!Callgraph}), and
    runs interprocedural reachability ({!Dataflow}):

    - {b L10 — transitive model purity.} An impure primitive ([Random.*],
      [Unix.time]/[Unix.gettimeofday], [Sys.time], [Domain.*], raw socket
      syscalls) reachable through any call chain from a function defined
      in a charged layer is a violation even when the primitive lives
      three helpers away in [lib/core]. Traversal does not descend into
      the sanctioned infrastructure layers ([lib/runtime], [lib/clique],
      [lib/wire], [lib/fault], [lib/metrics]) — calling the metered
      runtime is the model, not a violation. The finding prints the chain
      hop by hop.

    - {b L11 — domain-race detector.} Top-level mutable state (ref cells,
      global [Hashtbl]/[Array]/[Bytes]/array-literal values) written from
      the domain-fanned region — functions in files that orchestrate
      [Domain]/[Pool] plus everything reachable from closures passed to
      [Pool.run]/[Domain.spawn] — is flagged unless the enclosing
      function uses [Mutex.lock]/[Mutex.protect], the state is managed
      through [Atomic], or the line carries an allow marker. Scoped to
      [lib/]: harness globals in tests are out of model.

    - {b L12 — AST-accurate hot-path allocation} (see {!Hotpath}).

    Findings honor the same per-line [(* cc_lint: allow Lk *)] markers as
    the lexical pass. *)

type result = {
  findings : Lint.finding list;  (** sorted, suppressions applied *)
  errors : string list;
      (** files that failed to parse, as [file:line message] strings; they
          are excluded from the graph rather than aborting the run *)
  graph : Callgraph.t;  (** for [--graph] dumps and tests *)
}

val analyze : (string * string) list -> result
(** [analyze sources] over [(file, contents)] pairs. [.ml] files are
    parsed and analyzed; [.mli] files are syntax-checked only (a parse
    failure is reported in [errors]). Paths decide layer scoping exactly
    as in the lexical pass and need not exist on disk. *)

val analyze_paths : string list -> result
(** [analyze] over every [.ml]/[.mli] under the given roots
    (see {!Walk.collect}). *)

val traversal_stops : string -> bool
(** Whether L10 reachability refuses to descend into functions of this
    file: the transport/wire-privileged layers plus [lib/fault] and
    [lib/metrics], whose primitive use is governed by their own rules. *)
