(** Source-tree traversal for the linter. *)

val collect : string list -> string list
(** All [.ml]/[.mli] files under the given roots (a root that is itself a
    file is kept if it is a source file), sorted and deduplicated.
    [_build], [_opam], and dot-directories are skipped. Raises
    [Invalid_argument] on a nonexistent root. *)

val source_file : string -> bool
(** Whether a filename has a linted extension. *)
