(* Lexical pre-pass: blank out comments, string literals, and character
   literals so token rules never fire on prose or data. Purely a character
   scanner — no ppx, no compiler-libs — which is all the line-level rules
   need. Newlines are preserved so findings keep their line numbers. *)

type state =
  | Code
  | Comment of int  (* nesting depth *)
  | Str  (* "..." *)
  | Quoted of string  (* {id|...|id}; the string is the delimiter id *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_lower c = (c >= 'a' && c <= 'z') || c = '_'

(* A ['] at [i] starts a character literal (as opposed to a type variable or
   a primed identifier) iff it closes within a few characters: ['x'] or an
   escape ['\n'], ['\123'], ['\xFF']. *)
let char_literal_end src i =
  let len = String.length src in
  if i + 2 < len && src.[i + 1] <> '\\' && src.[i + 1] <> '\'' && src.[i + 2] = '\''
  then Some (i + 2)
  else if i + 1 < len && src.[i + 1] = '\\' then begin
    let j = ref (i + 2) in
    while !j < len && !j <= i + 6 && src.[!j] <> '\'' do
      incr j
    done;
    if !j < len && src.[!j] = '\'' then Some !j else None
  end
  else None

(* A quoted-string opener (brace, optional lowercase delimiter id, pipe) at
   position [i]: return the delimiter id. *)
let quoted_open src i =
  let len = String.length src in
  if i >= len || src.[i] <> '{' then None
  else begin
    let j = ref (i + 1) in
    while !j < len && is_lower src.[!j] do
      incr j
    done;
    if !j < len && src.[!j] = '|' then Some (String.sub src (i + 1) (!j - i - 1))
    else None
  end

let strip src =
  let len = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let state = ref Code in
  let i = ref 0 in
  while !i < len do
    let c = src.[!i] in
    (match !state with
    | Code ->
      if c = '(' && !i + 1 < len && src.[!i + 1] = '*' then begin
        state := Comment 1;
        blank !i;
        blank (!i + 1);
        incr i
      end
      else if c = '"' then begin
        state := Str;
        blank !i
      end
      else if c = '\'' && (!i = 0 || not (is_ident_char src.[!i - 1])) then begin
        match char_literal_end src !i with
        | Some e ->
          for k = !i to e do
            blank k
          done;
          i := e
        | None -> ()
      end
      else begin
        match quoted_open src !i with
        | Some delim ->
          state := Quoted delim;
          for k = !i to !i + String.length delim + 1 do
            blank k
          done;
          i := !i + String.length delim + 1
        | None -> ()
      end
    | Comment d ->
      if c = '(' && !i + 1 < len && src.[!i + 1] = '*' then begin
        state := Comment (d + 1);
        blank !i;
        blank (!i + 1);
        incr i
      end
      else if c = '*' && !i + 1 < len && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        incr i;
        state := (if d = 1 then Code else Comment (d - 1))
      end
      else blank !i
    | Str ->
      if c = '\\' && !i + 1 < len then begin
        blank !i;
        blank (!i + 1);
        incr i
      end
      else if c = '"' then begin
        blank !i;
        state := Code
      end
      else blank !i
    | Quoted delim ->
      let close = "|" ^ delim ^ "}" in
      let clen = String.length close in
      if c = '|' && !i + clen <= len && String.sub src !i clen = close then begin
        for k = !i to !i + clen - 1 do
          blank k
        done;
        i := !i + clen - 1;
        state := Code
      end
      else blank !i);
    incr i
  done;
  Bytes.to_string out

let lines s = String.split_on_char '\n' s
