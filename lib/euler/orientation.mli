(** Deterministic Eulerian orientations in the congested clique —
    Theorem 1.4, in [O(log n · log* n)] rounds.

    The algorithm, exactly as the paper's proof runs it:
    + every node pairs its incident edges internally (round-free) — this
      implicitly decomposes the edge set into closed trails;
    + [O(log n)] contraction iterations: each ring of active trail positions
      is 3-colored with Cole–Vishkin in [O(log* n)] rounds ({!Coloring}),
      a maximal matching is read off the coloring, the higher-ID endpoint of
      every matched link stays active, and the ≤ 3-long runs of deactivated
      positions are bridged in a constant number of rounds using Lenzen
      routing (many rings share clique links, which is where the congested
      clique's power is used);
    + the [O(1)] survivors of each ring elect a leader, which picks the
      ring's direction; the contraction is replayed in reverse to inform
      every position.

    Orienting every edge along its trail's traversal direction makes
    in-degree equal out-degree at every node, because a closed trail enters
    a vertex exactly as often as it leaves it.

    Round counts are measured per component: the Cole–Vishkin chains run as
    node programs on the clique runtime ({!Clique.Kernel.Sim_programs}) and
    report their real lengths; the constant-round contraction and reverse
    phases charge the model constants from {!Runtime.Cost}. Everything flows
    through one phase-tagged ledger, reported in [phase_rounds]. *)

type ring_edge = {
  edge : int;  (** edge identifier in the input graph *)
  along : bool;  (** [true] when the trail traverses the edge u→v as stored *)
}

type selector =
  | Cole_vishkin  (** deterministic, [O(log* n)] rounds per iteration *)
  | Sampling of int64
      (** the paper's randomized remark after Theorem 1.4: select each
          active position by a (seeded) coin flip instead of coloring,
          removing the [log* n] factor; a ring that would lose every
          position keeps its highest ID *)

type result = {
  orientation : bool array;
      (** per edge id: [true] = oriented u→v as stored in the graph *)
  rounds : int;  (** congested-clique rounds (forward + decision + reverse) *)
  rings : int;  (** number of closed trails in the decomposition *)
  iterations : int;  (** contraction iterations (the [log n] factor) *)
  coloring_rounds : int;  (** total rounds spent inside Cole–Vishkin *)
  phase_rounds : (string * int) list;
      (** ledger breakdown: ["coloring"], ["bridge"], ["reverse"],
          ["decision"] (sorted; empty for an edgeless graph) *)
}

val is_eulerian : Graph.t -> bool
(** Every vertex has even degree. *)

val orient :
  ?selector:selector -> ?choose:(ring_edge list -> bool) -> Graph.t -> result
(** [orient g] computes an Eulerian orientation of the Eulerian multigraph
    [g]. Raises [Invalid_argument] if some degree is odd.

    [choose] is the leader's per-ring direction rule: it receives the ring's
    edges in trail order and returns [true] to keep the trail direction,
    [false] to flip the whole ring. The default keeps the trail direction
    (the paper's "arbitrarily picks"); flow rounding supplies the
    cost-comparison rule of Lemma 4.2 (and the force-(t,s)-forward rule)
    here — this is exactly the information the leader has, since it "knows
    the cycle implicitly". *)

val check : Graph.t -> bool array -> bool
(** [check g orientation]: in-degree equals out-degree at every vertex. *)

val rounds_reference : n:int -> int
(** The [O(log n · log* n)] reference curve for the E3 bench, with this
    implementation's constants. *)
