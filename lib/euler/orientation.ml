type selector = Cole_vishkin | Sampling of int64

type ring_edge = { edge : int; along : bool }

type result = {
  orientation : bool array;
  rounds : int;
  rings : int;
  iterations : int;
  coloring_rounds : int;
  phase_rounds : (string * int) list;
}

let is_eulerian g =
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if Graph.degree g v land 1 = 1 then ok := false
  done;
  !ok

(* Step 1 (internal): each vertex pairs its incident edges; following the
   pairs decomposes the edge multiset into closed trails. [partner.(v)] maps
   an incident edge id to the edge it is paired with at v. *)
let build_trails g =
  let n = Graph.n g in
  let m = Graph.m g in
  let partner = Array.init n (fun _ -> Hashtbl.create 4) in
  for v = 0 to n - 1 do
    let incident = List.map snd (Graph.adj g v) in
    let rec pair_up = function
      | [] -> ()
      | [ _ ] -> invalid_arg "Orientation: odd degree"
      | a :: b :: rest ->
        Hashtbl.replace partner.(v) a b;
        Hashtbl.replace partner.(v) b a;
        pair_up rest
    in
    pair_up incident
  done;
  let used = Array.make m false in
  let trails = ref [] in
  for e0 = 0 to m - 1 do
    if not used.(e0) then begin
      let start_edge = Graph.edge g e0 in
      let trail = ref [] in
      let cur = ref e0 in
      let from = ref start_edge.Graph.u in
      let closed = ref false in
      while not !closed do
        used.(!cur) <- true;
        let e = Graph.edge g !cur in
        let along = e.Graph.u = !from in
        trail := { edge = !cur; along } :: !trail;
        let arrive = if along then e.Graph.v else e.Graph.u in
        let nxt = Hashtbl.find partner.(arrive) !cur in
        if used.(nxt) then begin
          (* The trail can only close at its start pair. *)
          assert (nxt = e0 && arrive = start_edge.Graph.u);
          closed := true
        end
        else begin
          cur := nxt;
          from := arrive
        end
      done;
      trails := List.rev !trail :: !trails
    end
  done;
  List.rev !trails

(* One contraction iteration over all rings simultaneously: 3-color the
   active positions, keep the higher-ID endpoint of each matched link.
   With [Sampling], survivors are chosen by coin flips instead (the paper's
   randomized remark: drops the log* n coloring rounds). *)
let contract_once ?rng ~succ ~pred ~active ~eligible ~ring_of () =
  let positions =
    Array.of_list
      (List.filter
         (fun i -> active.(i) && eligible i)
         (List.init (Array.length succ) Fun.id))
  in
  let k = Array.length positions in
  let index = Hashtbl.create k in
  Array.iteri (fun slot p -> Hashtbl.replace index p slot) positions;
  let s = Array.map (fun p -> Hashtbl.find index succ.(p)) positions in
  let p = Array.map (fun q -> Hashtbl.find index pred.(q)) positions in
  let ids = Array.copy positions in
  let keep = Array.make k false in
  let cv_rounds =
    match rng with
    | None ->
      (* The coloring chain runs as real node programs over the active
         positions; only its measured round count flows back (charged into
         the orientation's ledger by the caller). *)
      let rt = Clique.Kernel.clique k in
      let colors, cv_rounds =
        Clique.Kernel.Sim_programs.three_color rt ~ids ~succ:s ~pred:p
      in
      let matched =
        Coloring.maximal_matching_on_cycles ~colors ~succ:s ~pred:p
      in
      (* Mark the higher-ID endpoint of every matched link; everyone else is
         deactivated and bridged over. *)
      Array.iteri
        (fun i m ->
          if m then begin
            let j = s.(i) in
            if ids.(i) > ids.(j) then keep.(i) <- true else keep.(j) <- true
          end)
        matched;
      cv_rounds
    | Some rng ->
      (* Randomized selection: one coin flip each, zero coloring rounds.
         Guarantee a survivor per ring by retaining the max-ID position of
         any ring the coins would wipe out. *)
      Array.iteri (fun i _ -> keep.(i) <- Prng.bool rng) positions;
      let ring_best = Hashtbl.create 16 in
      Array.iteri
        (fun i pos ->
          let r = ring_of pos in
          match Hashtbl.find_opt ring_best r with
          | Some (_, best_id) when best_id >= ids.(i) -> ()
          | _ -> Hashtbl.replace ring_best r (i, ids.(i)))
        positions;
      let ring_alive = Hashtbl.create 16 in
      Array.iteri
        (fun i pos -> if keep.(i) then Hashtbl.replace ring_alive (ring_of pos) ())
        positions;
      Hashtbl.iter
        (fun r (i, _) -> if not (Hashtbl.mem ring_alive r) then keep.(i) <- true)
        ring_best;
      (* Also never keep a whole ring intact forever: if every position of a
         ring survived the flips, drop its minimum-ID one. *)
      let ring_total = Hashtbl.create 16 in
      Array.iteri
        (fun i pos ->
          let r = ring_of pos in
          let tot, kept, mn =
            match Hashtbl.find_opt ring_total r with
            | Some x -> x
            | None -> (0, 0, None)
          in
          let mn =
            match mn with
            | Some (j, best) when best <= ids.(i) -> Some (j, best)
            | _ -> Some (i, ids.(i))
          in
          Hashtbl.replace ring_total r
            (tot + 1, (kept + if keep.(i) then 1 else 0), mn))
        positions;
      Hashtbl.iter
        (fun _ (tot, kept, mn) ->
          if tot > 1 && kept = tot then
            match mn with Some (i, _) -> keep.(i) <- false | None -> ())
        ring_total;
      0
  in
  Array.iteri (fun slot p -> if not keep.(slot) then active.(p) <- false)
    positions;
  (* Rebuild succ/pred chains among survivors by walking each bridged run
     (this is the 4-round both-directions forwarding, delivered by Lenzen
     routing in the clique). *)
  Array.iteri
    (fun slot pos ->
      if keep.(slot) then begin
        let q = ref succ.(pos) in
        while not active.(!q) do
          q := succ.(!q)
        done;
        succ.(pos) <- !q;
        pred.(!q) <- pos
      end)
    positions;
  cv_rounds

let orient ?(selector = Cole_vishkin) ?(choose = fun (_ : ring_edge list) -> true) g =
  if not (is_eulerian g) then
    invalid_arg "Orientation.orient: graph has an odd-degree vertex";
  let m = Graph.m g in
  let trails = build_trails g in
  let orientation = Array.make m true in
  if m = 0 then
    {
      orientation;
      rounds = 0;
      rings = 0;
      iterations = 0;
      coloring_rounds = 0;
      phase_rounds = [];
    }
  else begin
    (* Flatten the trails into global positions. *)
    let total = List.fold_left (fun a t -> a + List.length t) 0 trails in
    let succ = Array.make total 0 in
    let pred = Array.make total 0 in
    let ring_of = Array.make total 0 in
    let ring_sizes = Array.make (List.length trails) 0 in
    let content = Array.make total { edge = 0; along = true } in
    let offset = ref 0 in
    List.iteri
      (fun r trail ->
        let len = List.length trail in
        ring_sizes.(r) <- len;
        List.iteri
          (fun i re ->
            let pos = !offset + i in
            content.(pos) <- re;
            ring_of.(pos) <- r;
            succ.(pos) <- !offset + ((i + 1) mod len);
            pred.(pos) <- !offset + ((i + len - 1) mod len))
          trail;
        offset := !offset + len)
      trails;
    let rng =
      match selector with
      | Cole_vishkin -> None
      | Sampling seed -> Some (Prng.create seed)
    in
    let rt = Clique.Kernel.clique (max 1 (Graph.n g)) in
    let active = Array.make total true in
    let active_per_ring = Array.copy ring_sizes in
    let iterations = ref 0 in
    let coloring_rounds = ref 0 in
    let forward_rounds = ref 0 in
    let needs_work () = Array.exists (fun c -> c > 1) active_per_ring in
    while needs_work () do
      incr iterations;
      (* Rings already down to a single survivor are done; only multi-active
         rings participate (a singleton has succ = itself and no link to
         color). *)
      let eligible pos = active_per_ring.(ring_of.(pos)) > 1 in
      let cv =
        contract_once ?rng ~succ ~pred ~active ~eligible
          ~ring_of:(fun pos -> ring_of.(pos))
          ()
      in
      coloring_rounds := !coloring_rounds + cv;
      (* CV exchange + the constant-round bridged forwarding via routing. *)
      Clique.Kernel.charge rt ~phase:"coloring" cv;
      Clique.Kernel.charge rt ~phase:"bridge" Runtime.Cost.lenzen_routing_rounds;
      forward_rounds := !forward_rounds + cv + Runtime.Cost.lenzen_routing_rounds;
      Array.fill active_per_ring 0 (Array.length active_per_ring) 0;
      Array.iteri
        (fun pos a ->
          if a then
            active_per_ring.(ring_of.(pos)) <-
              active_per_ring.(ring_of.(pos)) + 1)
        active
    done;
    (* Each surviving leader decides its ring's direction; the reverse phase
       replays the contraction to spread the decision. *)
    let rings = List.length trails in
    let ring_members = Array.make rings [] in
    for pos = total - 1 downto 0 do
      ring_members.(ring_of.(pos)) <- content.(pos) :: ring_members.(ring_of.(pos))
    done;
    for r = 0 to rings - 1 do
      let keep_direction = choose ring_members.(r) in
      List.iter
        (fun re ->
          orientation.(re.edge) <- (if keep_direction then re.along else not re.along))
        ring_members.(r)
    done;
    (* Spreading the decision replays the contraction backwards (same round
       count as the forward phase), plus the O(1)-round leader election. *)
    Clique.Kernel.charge rt ~phase:"reverse" !forward_rounds;
    Clique.Kernel.charge rt ~phase:"decision" 4;
    {
      orientation;
      rounds = Clique.Kernel.rounds rt;
      rings;
      iterations = !iterations;
      coloring_rounds = !coloring_rounds;
      phase_rounds = Clique.Kernel.phases rt;
    }
  end

let check g orientation =
  let n = Graph.n g in
  let balance = Array.make n 0 in
  Array.iteri
    (fun id e ->
      let u, v =
        if orientation.(id) then (e.Graph.u, e.Graph.v)
        else (e.Graph.v, e.Graph.u)
      in
      balance.(u) <- balance.(u) + 1;
      balance.(v) <- balance.(v) - 1)
    (Graph.edges g);
  Array.for_all (( = ) 0) balance

let rounds_reference ~n =
  let logn = Runtime.Cost.log2_ceil (max n 2) in
  let logstar = Coloring.log_star (max n 2) in
  2 * logn * (logstar + 5 + Runtime.Cost.lenzen_routing_rounds)
