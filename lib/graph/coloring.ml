let lowest_differing_bit a b =
  let x = a lxor b in
  if x = 0 then invalid_arg "Coloring.cv_step: adjacent colors equal";
  let rec loop i x = if x land 1 = 1 then i else loop (i + 1) (x lsr 1) in
  loop 0 x

let cv_combine c cs =
  let k = lowest_differing_bit c cs in
  (2 * k) + ((c lsr k) land 1)

let cv_step colors ~succ =
  Array.mapi (fun i c -> cv_combine c colors.(succ.(i))) colors

let max_color colors = Array.fold_left max 0 colors

let is_proper colors ~succ =
  let ok = ref true in
  Array.iteri
    (fun i c ->
      if succ.(i) <> i && colors.(succ.(i)) = c then ok := false)
    colors;
  !ok

let maximal_matching_on_cycles ~colors ~succ ~pred =
  let k = Array.length colors in
  let matched_vertex = Array.make k false in
  let matched = Array.make k false in
  for c = 0 to 2 do
    for i = 0 to k - 1 do
      if colors.(i) = c then begin
        let j = succ.(i) in
        if (not matched_vertex.(i)) && not matched_vertex.(j) then begin
          matched.(i) <- true;
          matched_vertex.(i) <- true;
          matched_vertex.(j) <- true
        end
      end
    done
  done;
  ignore pred;
  matched

let log_star n =
  let rec loop n acc = if n <= 1 then acc else loop (int_of_float (Float.log2 (float_of_int n))) (acc + 1) in
  if n <= 1 then 0 else loop n 0
