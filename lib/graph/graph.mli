(** Undirected weighted multigraphs.

    This is the input type of the Laplacian pipeline: vertices are
    [0 .. n-1] (vertex [i] is congested-clique node [i]), and each edge
    carries a positive weight. Parallel edges are allowed — they arise
    naturally in the flow-rounding subroutine — and self-loops are rejected
    because they do not contribute to a Laplacian. *)

type edge = { u : int; v : int; w : float }

type t

val create : int -> edge list -> t
(** [create n edges] builds a graph on vertices [0..n-1]. Raises
    [Invalid_argument] on out-of-range endpoints, self-loops, or
    non-positive weights. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges (counting multiplicity). *)

val edges : t -> edge array

val edge : t -> int -> edge
(** [edge g i] is the edge with identifier [i], [0 ≤ i < m g]. *)

val adj : t -> int -> (int * int) list
(** [adj g v] lists [(neighbor, edge_id)] pairs incident to [v]; parallel
    edges appear once per copy. *)

val degree : t -> int -> int
(** Unweighted degree (number of incident edge endpoints). *)

val weighted_degree : t -> int -> float

val total_weight : t -> float

val max_weight : t -> float
(** Largest edge weight ([0.] on the empty graph) — the paper's [U]. *)

val laplacian : t -> Linalg.Csr.t
(** The graph Laplacian [L = D − A] as a sparse matrix. Parallel edges sum. *)

val laplacian_dense : t -> Linalg.Dense.t

val apply_laplacian : t -> Linalg.Vec.t -> Linalg.Vec.t
(** [apply_laplacian g x] is [L_G x] computed edge-by-edge without
    materializing [L] — the one-round matvec of the clique model. *)

val apply_laplacian_into : t -> Linalg.Vec.t -> Linalg.Vec.t -> unit
(** [apply_laplacian_into g x y] sets [y <- L_G x] without allocating
    ([y] must not alias [x]); the [apply_into] operator shape consumed by
    {!Linalg.Cg.solve_into} and {!Linalg.Chebyshev.solve_into}. *)

val quadratic_form : t -> Linalg.Vec.t -> float
(** [quadratic_form g x = xᵀ L_G x = Σ_e w_e (x_u − x_v)²]. *)

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced by the vertex set [vs] with
    vertices renumbered [0..k-1]; also returns the map from new to old ids
    (which is [vs] itself, for convenience). *)

val sub_edges : t -> int list -> t
(** [sub_edges g ids] keeps only the edges with the given identifiers (same
    vertex set). *)

val union : t -> t -> t
(** Edge union of two graphs on the same vertex set. *)

val map_weights : (edge -> float) -> t -> t

val scale_weights : float -> t -> t

val is_connected : t -> bool

val reweight_simple : t -> t
(** Collapses parallel edges by summing weights, producing a simple graph
    with the same Laplacian. *)

val equal_structure : t -> t -> bool
(** Same vertex count and same multiset of (endpoints, weight) edges. *)

val pp : Format.formatter -> t -> unit
