(** Deterministic Cole–Vishkin coloring of cycles (CV86, GPS87).

    Step 2a of the paper's Eulerian-orientation algorithm (Theorem 1.4)
     3-colors each cycle in [O(log* n)] communication rounds, derives a
    maximal matching from the coloring, and marks the higher-ID endpoint of
    every matched edge. This module implements the color-reduction chain:

    - start from unique [O(log n)]-bit identifiers;
    - one Cole–Vishkin step maps a [k]-bit coloring to a [2⌈log k⌉+2]-bit
      coloring using only each vertex's and its successor's colors (one round
      of communication each);
    - iterate until 6 colors remain ([O(log* n)] steps), then three
      shift-and-recolor rounds reduce 6 to 3.

    A cycle cover is given by successor/predecessor arrays over positions
    [0..k-1]; several disjoint cycles may be packed into one array.

    This module holds only the node-local arithmetic of the chain; the
    communication schedule (who tells whom its color each round) lives in
    the kernel-independent node program [Clique.Programs.S.three_color]. *)

val cv_combine : int -> int -> int
(** [cv_combine c cs] is one position's Cole–Vishkin update: combine own
    color [c] with successor color [cs] into the index of the lowest
    differing bit paired with own bit value there. Requires [c <> cs];
    the results of adjacent positions stay distinct. *)

val cv_step : int array -> succ:int array -> int array
(** One Cole–Vishkin reduction step applied at every position at once:
    [cv_step colors ~succ] maps position [i] to
    [cv_combine colors.(i) colors.(succ.(i))]. Requires adjacent colors
    distinct; preserves that invariant. *)

val max_color : int array -> int
(** Largest color in use — the chain's termination predicate
    (reduce while [max_color ≥ 6]). *)

val is_proper : int array -> succ:int array -> bool

val maximal_matching_on_cycles :
  colors:int array -> succ:int array -> pred:int array -> bool array
(** [maximal_matching_on_cycles ~colors ~succ ~pred] greedily matches cycle
    edges [(i, succ i)] by processing color classes in increasing order;
    returns [matched] with [matched.(i) = true] iff edge [(i, succ.(i))] is
    in the matching. The result is a maximal matching on every cycle. *)

val log_star : int -> int
(** Iterated logarithm, for the E3 bench's reference curve. *)
