type edge = { u : int; v : int; w : float }

type t = {
  n : int;
  edges : edge array;
  adj : (int * int) list array; (* per vertex: (neighbor, edge id) *)
}

let build_adj n edges =
  let adj = Array.make n [] in
  Array.iteri
    (fun id e ->
      adj.(e.u) <- (e.v, id) :: adj.(e.u);
      adj.(e.v) <- (e.u, id) :: adj.(e.v))
    edges;
  adj

let create n edge_list =
  List.iter
    (fun e ->
      if e.u < 0 || e.u >= n || e.v < 0 || e.v >= n then
        invalid_arg
          (Printf.sprintf "Graph.create: edge (%d,%d) out of range" e.u e.v);
      if e.u = e.v then
        invalid_arg (Printf.sprintf "Graph.create: self-loop at %d" e.u);
      if e.w <= 0. then
        invalid_arg
          (Printf.sprintf "Graph.create: non-positive weight %g on (%d,%d)"
             e.w e.u e.v))
    edge_list;
  let edges = Array.of_list edge_list in
  { n; edges; adj = build_adj n edges }

let n g = g.n

let m g = Array.length g.edges

let edges g = g.edges

let edge g i = g.edges.(i)

let adj g v = g.adj.(v)

let degree g v = List.length g.adj.(v)

let weighted_degree g v =
  List.fold_left (fun acc (_, id) -> acc +. g.edges.(id).w) 0. g.adj.(v)

let total_weight g = Array.fold_left (fun acc e -> acc +. e.w) 0. g.edges

let max_weight g = Array.fold_left (fun acc e -> Float.max acc e.w) 0. g.edges

let laplacian g =
  let triplets = ref [] in
  Array.iter
    (fun e ->
      triplets :=
        (e.u, e.u, e.w) :: (e.v, e.v, e.w) :: (e.u, e.v, -.e.w)
        :: (e.v, e.u, -.e.w) :: !triplets)
    g.edges;
  Linalg.Csr.of_triplets ~rows:g.n ~cols:g.n !triplets

let laplacian_dense g =
  let d = Array.make_matrix g.n g.n 0. in
  Array.iter
    (fun e ->
      d.(e.u).(e.u) <- d.(e.u).(e.u) +. e.w;
      d.(e.v).(e.v) <- d.(e.v).(e.v) +. e.w;
      d.(e.u).(e.v) <- d.(e.u).(e.v) -. e.w;
      d.(e.v).(e.u) <- d.(e.v).(e.u) -. e.w)
    g.edges;
  d

(* cc_lint: hot apply_laplacian_into *)
let apply_laplacian_into g x y =
  if Array.length x <> g.n then
    invalid_arg "Graph.apply_laplacian_into: dimension mismatch";
  if Array.length y <> g.n then
    invalid_arg "Graph.apply_laplacian_into: output dimension mismatch";
  Linalg.Vec.fill y 0.;
  let edges = g.edges in
  for i = 0 to Array.length edges - 1 do
    let e = edges.(i) in
    let d = e.w *. (x.(e.u) -. x.(e.v)) in
    y.(e.u) <- y.(e.u) +. d;
    y.(e.v) <- y.(e.v) -. d
  done

let apply_laplacian g x =
  if Array.length x <> g.n then
    invalid_arg "Graph.apply_laplacian: dimension mismatch";
  let y = Linalg.Vec.create g.n in
  apply_laplacian_into g x y;
  y

let quadratic_form g x =
  Array.fold_left
    (fun acc e ->
      let d = x.(e.u) -. x.(e.v) in
      acc +. (e.w *. d *. d))
    0. g.edges

let induced g vs =
  let index = Array.make g.n (-1) in
  Array.iteri (fun new_id old_id -> index.(old_id) <- new_id) vs;
  let edge_list =
    Array.to_list g.edges
    |> List.filter_map (fun e ->
           if index.(e.u) >= 0 && index.(e.v) >= 0 then
             Some { u = index.(e.u); v = index.(e.v); w = e.w }
           else None)
  in
  (create (Array.length vs) edge_list, vs)

let sub_edges g ids =
  create g.n (List.map (fun id -> g.edges.(id)) ids)

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: vertex count mismatch";
  create a.n (Array.to_list a.edges @ Array.to_list b.edges)

let map_weights f g =
  create g.n (List.map (fun e -> { e with w = f e }) (Array.to_list g.edges))

let scale_weights s g = map_weights (fun e -> s *. e.w) g

let is_connected g =
  if g.n = 0 then true
  else begin
    let seen = Array.make g.n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let count = ref 1 in
    let rec loop () =
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        List.iter
          (fun (u, _) ->
            if not seen.(u) then begin
              seen.(u) <- true;
              incr count;
              stack := u :: !stack
            end)
          g.adj.(v);
        loop ()
    in
    loop ();
    !count = g.n
  end

let reweight_simple g =
  let tbl = Hashtbl.create (m g) in
  Array.iter
    (fun e ->
      let key = (min e.u e.v, max e.u e.v) in
      let cur = try Hashtbl.find tbl key with Not_found -> 0. in
      Hashtbl.replace tbl key (cur +. e.w))
    g.edges;
  let edge_list =
    Hashtbl.fold (fun (u, v) w acc -> { u; v; w } :: acc) tbl []
  in
  create g.n edge_list

let canonical_edges g =
  Array.to_list g.edges
  |> List.map (fun e -> (min e.u e.v, max e.u e.v, e.w))
  |> List.sort compare

let equal_structure a b = a.n = b.n && canonical_edges a = canonical_edges b

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d@," g.n (m g);
  Array.iter (fun e -> Format.fprintf fmt "%d -- %d (w=%g)@," e.u e.v e.w) g.edges;
  Format.fprintf fmt "@]"
