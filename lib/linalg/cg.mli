(** Conjugate gradients on symmetric positive semi-definite operators.

    Used in two places: (a) as the *baseline* Laplacian solver that the
    benchmarks compare the paper's preconditioned-Chebyshev solver against
    (experiment E8), and (b) as the inner exact-ish solver for moderately
    large sparsifier Laplacians where a dense Cholesky would be wasteful.

    The implementation is a zero-allocation workspace kernel
    ({!Workspace}, {!solve_into}); the original allocating entry points
    ({!solve}, {!solve_grounded}) are thin wrappers over it with
    bit-identical results. *)

type stats = {
  iterations : int;
  residual : float;  (** final ‖b − A x‖₂ *)
  converged : bool;
}

(** Preallocated iteration state. One workspace serves any number of
    sequential solves of the same dimension — the throughput daemon caches
    one per graph fingerprint and reuses it across requests. A workspace
    must not be shared between concurrent solves. *)
module Workspace : sig
  type t = { x : Vec.t; r : Vec.t; p : Vec.t; ap : Vec.t }

  val create : int -> t
  (** [create n] allocates the four iteration vectors for dimension [n]. *)

  val dim : t -> int
end

val solve_into :
  ?max_iters:int ->
  ?tol:float ->
  ?x0:Vec.t ->
  Workspace.t ->
  (Vec.t -> Vec.t -> unit) ->
  Vec.t ->
  stats
(** [solve_into ws apply_into b] runs CG with all state in [ws]; the
    solution is left in [ws.x]. [apply_into src dst] must set
    [dst <- A src] without touching any other workspace buffer. After the
    workspace warm-up, each iteration performs zero heap allocations
    (asserted via [Gc.minor_words] deltas in the test suite). Raises
    [Invalid_argument] if [Workspace.dim ws <> Vec.dim b]. Stopping rules
    and arithmetic are bit-identical to {!solve}. *)

val solve :
  ?max_iters:int ->
  ?tol:float ->
  ?x0:Vec.t ->
  (Vec.t -> Vec.t) ->
  Vec.t ->
  Vec.t * stats
(** [solve apply b] runs CG on the operator [apply] with right-hand side [b]
    until the relative residual drops below [tol] (default [1e-10]) or
    [max_iters] (default [10 * dim]) iterations elapse. For singular Laplacian
    operators the caller must supply [b] orthogonal to the kernel; the iterate
    then stays in the range. Allocating wrapper over {!solve_into}. *)

val solve_grounded :
  ?max_iters:int -> ?tol:float -> (Vec.t -> Vec.t) -> Vec.t -> Vec.t * stats
(** Like {!solve} but first centers [b] (projects out the all-ones kernel of a
    connected Laplacian) and re-centers the solution. *)
