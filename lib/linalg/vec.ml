type t = float array

let create n = Array.make n 0.

let init = Array.init

let copy = Array.copy

let dim = Array.length

let of_list = Array.of_list

let basis n i =
  let v = create n in
  v.(i) <- 1.;
  v

let constant n c = Array.make n c

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length x) (Array.length y))

(* Zero-allocation kernels: every [_into] writes its full result into a
   caller-owned destination and allocates nothing. The element expressions
   are kept literally identical to the allocating wrappers below so the two
   paths are bit-identical (pinned by test_linalg). *)
(* cc_lint: hot add_into sub_into scale_into axpy_into copy_into fill center_into *)

let add_into x y dst =
  check_dims "add_into" x y;
  check_dims "add_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- x.(i) +. y.(i)
  done

let sub_into x y dst =
  check_dims "sub_into" x y;
  check_dims "sub_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- x.(i) -. y.(i)
  done

let scale_into a x dst =
  check_dims "scale_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- a *. x.(i)
  done

let axpy_into a x y dst =
  check_dims "axpy_into" x y;
  check_dims "axpy_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- (a *. x.(i)) +. y.(i)
  done

let copy_into x dst =
  check_dims "copy_into" x dst;
  Array.blit x 0 dst 0 (Array.length x)

let fill dst c = Array.fill dst 0 (Array.length dst) c

let add x y =
  check_dims "add" x y;
  let dst = create (Array.length x) in
  add_into x y dst;
  dst

let sub x y =
  check_dims "sub" x y;
  let dst = create (Array.length x) in
  sub_into x y dst;
  dst

let scale a x =
  let dst = create (Array.length x) in
  scale_into a x dst;
  dst

let axpy a x y =
  check_dims "axpy" x y;
  let dst = create (Array.length x) in
  axpy_into a x y dst;
  dst

let axpy_inplace a x y =
  check_dims "axpy_inplace" x y;
  axpy_into a x y y

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0. x

let dist2 x y =
  check_dims "dist2" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let sum x = Array.fold_left ( +. ) 0. x

let mean x =
  if Array.length x = 0 then 0. else sum x /. float_of_int (Array.length x)

let center_into x dst =
  check_dims "center_into" x dst;
  let n = Array.length x in
  (* Mean inlined: a cross-function call returning [float] would box the
     result, defeating the zero-allocation contract of the hot kernels. *)
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. x.(i)
  done;
  let m = if n = 0 then 0. else !s /. float_of_int n in
  for i = 0 to n - 1 do
    dst.(i) <- x.(i) -. m
  done

let center x =
  let dst = create (Array.length x) in
  center_into x dst;
  dst

let normalize x =
  let n = norm2 x in
  (* A zero vector must still come back fresh: returning [x] itself would
     alias the caller's buffer, and a later in-place write through the
     "normalized" result would corrupt the original. *)
  if n = 0. then copy x else scale (1. /. n) x

let map2 f x y =
  check_dims "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let equal ?(eps = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > eps then ok := false
  done;
  !ok

let pp fmt x =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i xi ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" xi)
    x;
  Format.fprintf fmt "|]"
