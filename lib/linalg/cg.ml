type stats = { iterations : int; residual : float; converged : bool }

module Workspace = struct
  type t = { x : Vec.t; r : Vec.t; p : Vec.t; ap : Vec.t }

  let create n =
    { x = Vec.create n; r = Vec.create n; p = Vec.create n; ap = Vec.create n }

  let dim ws = Vec.dim ws.x
end

(* Steady-state-zero-allocation CG. Every buffer lives in the workspace; the
   dot products and norms are inlined because a call returning [float] boxes
   its result, which would charge one minor word per iteration. The element
   expressions reproduce the historical allocating implementation literally,
   so [solve] (a thin wrapper over this kernel) stays bit-identical to the
   seed solver — pinned by the differential test in test_linalg. *)
(* cc_lint: hot solve_into *)
let solve_into ?max_iters ?(tol = 1e-10) ?x0 (ws : Workspace.t) apply_into b =
  let n = Vec.dim b in
  if Workspace.dim ws <> n then
    invalid_arg "Cg.solve_into: workspace dimension mismatch";
  let max_iters = match max_iters with Some k -> k | None -> 10 * n in
  let x = ws.Workspace.x
  and r = ws.Workspace.r
  and p = ws.Workspace.p
  and ap = ws.Workspace.ap in
  (match x0 with Some x0 -> Vec.copy_into x0 x | None -> Vec.fill x 0.);
  (* r <- b - A x *)
  apply_into x ap;
  for i = 0 to n - 1 do
    r.(i) <- b.(i) -. ap.(i)
  done;
  Vec.copy_into r p;
  let rs = ref 0. in
  for i = 0 to n - 1 do
    rs := !rs +. (r.(i) *. r.(i))
  done;
  let nb_acc = ref 0. in
  for i = 0 to n - 1 do
    nb_acc := !nb_acc +. (b.(i) *. b.(i))
  done;
  let nb = sqrt !nb_acc in
  let target = tol *. Float.max nb 1e-300 in
  let iters = ref 0 in
  (try
     while !iters < max_iters && sqrt !rs > target do
       apply_into p ap;
       let pap = ref 0. in
       for i = 0 to n - 1 do
         pap := !pap +. (p.(i) *. ap.(i))
       done;
       if !pap <= 0. then raise Exit;
       let alpha = !rs /. !pap in
       for i = 0 to n - 1 do
         x.(i) <- (alpha *. p.(i)) +. x.(i)
       done;
       let nalpha = -.alpha in
       for i = 0 to n - 1 do
         r.(i) <- (nalpha *. ap.(i)) +. r.(i)
       done;
       let rs' = ref 0. in
       for i = 0 to n - 1 do
         rs' := !rs' +. (r.(i) *. r.(i))
       done;
       let beta = !rs' /. !rs in
       for i = 0 to n - 1 do
         p.(i) <- r.(i) +. (beta *. p.(i))
       done;
       rs := !rs';
       incr iters
     done
   with Exit -> ());
  let residual = sqrt !rs in
  { iterations = !iters; residual; converged = residual <= target }

let solve ?max_iters ?tol ?x0 apply b =
  let ws = Workspace.create (Vec.dim b) in
  let apply_into src dst = Vec.copy_into (apply src) dst in
  let st = solve_into ?max_iters ?tol ?x0 ws apply_into b in
  (ws.Workspace.x, st)

let solve_grounded ?max_iters ?tol apply b =
  let b = Vec.center b in
  let x, st = solve ?max_iters ?tol apply b in
  (Vec.center x, st)
