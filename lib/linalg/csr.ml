type t = {
  n_rows : int;
  n_cols : int;
  row_ptr : int array; (* length n_rows + 1 *)
  col_idx : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

let rows a = a.n_rows

let cols a = a.n_cols

let nnz a = Array.length a.values

let of_triplets ~rows:n_rows ~cols:n_cols triplets =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= n_rows || j < 0 || j >= n_cols then
        invalid_arg
          (Printf.sprintf "Csr.of_triplets: index (%d,%d) out of range" i j))
    triplets;
  let sorted =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) -> compare (i1, j1) (i2, j2))
      triplets
  in
  (* Merge duplicates, drop zeros. *)
  let merged = ref [] in
  List.iter
    (fun (i, j, v) ->
      match !merged with
      | (i', j', v') :: rest when i = i' && j = j' ->
        merged := (i, j, v +. v') :: rest
      | _ -> merged := (i, j, v) :: !merged)
    sorted;
  let entries = List.rev (List.filter (fun (_, _, v) -> v <> 0.) !merged) in
  let m = List.length entries in
  let row_ptr = Array.make (n_rows + 1) 0 in
  let col_idx = Array.make m 0 in
  let values = Array.make m 0. in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    entries;
  for i = 0 to n_rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  { n_rows; n_cols; row_ptr; col_idx; values }

let iter_row a i f =
  for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
    f a.col_idx.(k) a.values.(k)
  done

let iter a f =
  for i = 0 to a.n_rows - 1 do
    iter_row a i (fun j v -> f i j v)
  done

let get a i j =
  let r = ref 0. in
  iter_row a i (fun j' v -> if j = j' then r := v);
  !r

(* cc_lint: hot mul_vec_into *)
let mul_vec_into a x y =
  if Array.length x <> a.n_cols then
    invalid_arg "Csr.mul_vec_into: dimension mismatch";
  if Array.length y <> a.n_rows then
    invalid_arg "Csr.mul_vec_into: output dimension mismatch";
  for i = 0 to a.n_rows - 1 do
    let s = ref 0. in
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      s := !s +. (a.values.(k) *. x.(a.col_idx.(k)))
    done;
    y.(i) <- !s
  done

let mul_vec a x =
  if Array.length x <> a.n_cols then
    invalid_arg "Csr.mul_vec: dimension mismatch";
  let y = Vec.create a.n_rows in
  mul_vec_into a x y;
  y

let mul_vec_transpose a x =
  if Array.length x <> a.n_rows then
    invalid_arg "Csr.mul_vec_transpose: dimension mismatch";
  let y = Vec.create a.n_cols in
  iter a (fun i j v -> y.(j) <- y.(j) +. (v *. x.(i)));
  y

let diag a =
  let d = Vec.create (min a.n_rows a.n_cols) in
  iter a (fun i j v -> if i = j then d.(i) <- v);
  d

let triplets_of a =
  let acc = ref [] in
  iter a (fun i j v -> acc := (i, j, v) :: !acc);
  List.rev !acc

let transpose a =
  of_triplets ~rows:a.n_cols ~cols:a.n_rows
    (List.map (fun (i, j, v) -> (j, i, v)) (triplets_of a))

let scale s a = { a with values = Array.map (fun v -> s *. v) a.values }

let add a b =
  if a.n_rows <> b.n_rows || a.n_cols <> b.n_cols then
    invalid_arg "Csr.add: dimension mismatch";
  of_triplets ~rows:a.n_rows ~cols:a.n_cols (triplets_of a @ triplets_of b)

let to_dense a =
  let d = Array.make_matrix a.n_rows a.n_cols 0. in
  iter a (fun i j v -> d.(i).(j) <- v);
  d

let of_dense ?(eps = 0.) d =
  let n = Array.length d in
  let m = if n = 0 then 0 else Array.length d.(0) in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to m - 1 do
      if Float.abs d.(i).(j) > eps then acc := (i, j, d.(i).(j)) :: !acc
    done
  done;
  of_triplets ~rows:n ~cols:m !acc

let is_symmetric ?(eps = 1e-9) a =
  a.n_rows = a.n_cols
  &&
  let ok = ref true in
  iter a (fun i j v -> if Float.abs (v -. get a j i) > eps then ok := false);
  !ok

let pp fmt a =
  Format.fprintf fmt "@[<v>csr %dx%d nnz=%d@," a.n_rows a.n_cols (nnz a);
  iter a (fun i j v -> Format.fprintf fmt "(%d,%d)=%g@," i j v);
  Format.fprintf fmt "@]"
