type t = float array array

let create n = Array.make_matrix n n 0.

let init n f = Array.init n (fun i -> Array.init n (fun j -> f i j))

let dim a = Array.length a

let copy a = Array.map Array.copy a

let identity n = init n (fun i j -> if i = j then 1. else 0.)

let transpose a =
  let n = dim a in
  init n (fun i j -> a.(j).(i))

let mul a b =
  let n = dim a in
  if dim b <> n then invalid_arg "Dense.mul: dimension mismatch";
  let c = create n in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let aik = a.(i).(k) in
      if aik <> 0. then
        for j = 0 to n - 1 do
          c.(i).(j) <- c.(i).(j) +. (aik *. b.(k).(j))
        done
    done
  done;
  c

(* cc_lint: hot mul_vec_into cholesky_solve_into *)
let mul_vec_into a x y =
  let n = dim a in
  if Array.length x <> n then
    invalid_arg "Dense.mul_vec_into: dimension mismatch";
  if Array.length y <> n then
    invalid_arg "Dense.mul_vec_into: output dimension mismatch";
  (* Row dot products inlined: a call returning [float] would box the
     result on every row, breaking the zero-allocation contract. The
     accumulation order matches [Vec.dot] exactly (bit-identical). *)
  for i = 0 to n - 1 do
    let row = a.(i) in
    let acc = ref 0. in
    for j = 0 to n - 1 do
      acc := !acc +. (row.(j) *. x.(j))
    done;
    y.(i) <- !acc
  done

let mul_vec a x =
  let n = dim a in
  if Array.length x <> n then invalid_arg "Dense.mul_vec: dimension mismatch";
  let y = Vec.create n in
  mul_vec_into a x y;
  y

let add a b =
  let n = dim a in
  init n (fun i j -> a.(i).(j) +. b.(i).(j))

let sub a b =
  let n = dim a in
  init n (fun i j -> a.(i).(j) -. b.(i).(j))

let scale s a = Array.map (fun row -> Array.map (fun x -> s *. x) row) a

let is_symmetric ?(eps = 1e-9) a =
  let n = dim a in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (a.(i).(j) -. a.(j).(i)) > eps then ok := false
    done
  done;
  !ok

let cholesky ?(shift = 0.) a =
  let n = dim a in
  let l = create n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref (a.(i).(j) +. if i = j then shift else 0.) in
      for k = 0 to j - 1 do
        s := !s -. (l.(i).(k) *. l.(j).(k))
      done;
      if i = j then begin
        if !s <= 0. then
          failwith
            (Printf.sprintf "Dense.cholesky: non-positive pivot %g at %d" !s i);
        l.(i).(i) <- sqrt !s
      end
      else l.(i).(j) <- !s /. l.(j).(j)
    done
  done;
  l

let cholesky_solve_into l b scratch x =
  let n = dim l in
  if Array.length b <> n then
    invalid_arg "Dense.cholesky_solve_into: dimension mismatch";
  if Array.length scratch <> n || Array.length x <> n then
    invalid_arg "Dense.cholesky_solve_into: output dimension mismatch";
  (* forward: l y = b, with y in the caller's scratch buffer *)
  let y = scratch in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (l.(i).(k) *. y.(k))
    done;
    y.(i) <- !s /. l.(i).(i)
  done;
  (* backward: lᵀ x = y *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (l.(k).(i) *. x.(k))
    done;
    x.(i) <- !s /. l.(i).(i)
  done

let cholesky_solve l b =
  let n = dim l in
  if Array.length b <> n then
    invalid_arg "Dense.cholesky_solve: dimension mismatch";
  let scratch = Vec.create n in
  let x = Vec.create n in
  cholesky_solve_into l b scratch x;
  x

let solve_spd ?(shift = 0.) a b = cholesky_solve (cholesky ~shift a) b

let inverse_spd ?(shift = 0.) a =
  let n = dim a in
  let l = cholesky ~shift a in
  let inv = create n in
  for j = 0 to n - 1 do
    let col = cholesky_solve l (Vec.basis n j) in
    for i = 0 to n - 1 do
      inv.(i).(j) <- col.(i)
    done
  done;
  inv

let solve_grounded a b =
  let n = dim a in
  if n = 0 then [||]
  else if n = 1 then [| 0. |]
  else begin
    (* Delete row/column 0; the reduced matrix of a connected Laplacian is
       SPD (it is a principal submatrix with strictly dominant diagonal in
       at least one row of every component attached to vertex 0). *)
    let m = n - 1 in
    let a' = init m (fun i j -> a.(i + 1).(j + 1)) in
    let b' = Array.init m (fun i -> b.(i + 1)) in
    let x' = solve_spd ~shift:1e-12 a' b' in
    let x = Vec.create n in
    for i = 0 to m - 1 do
      x.(i + 1) <- x'.(i)
    done;
    Vec.center x
  end

let deterministic_start n =
  (* Fixed full-support start vector with sign changes so it is unlikely to be
     orthogonal to the dominant eigenvector; deterministic by construction. *)
  let v =
    Vec.init n (fun i ->
        let s = if i land 1 = 0 then 1. else -1. in
        s *. (1. +. (float_of_int ((i * 2654435761) land 0xffff) /. 65536.)))
  in
  Vec.normalize v

let power_iteration ?(iters = 200) ?(tol = 1e-10) apply n =
  let v = ref (deterministic_start n) in
  let lambda = ref 0. in
  (try
     for _ = 1 to iters do
       let w = apply !v in
       let nw = Vec.norm2 w in
       if nw = 0. then raise Exit;
       let w = Vec.scale (1. /. nw) w in
       let l = Vec.dot w (apply w) in
       if Float.abs (l -. !lambda) <= tol *. Float.max 1. (Float.abs l) then begin
         lambda := l;
         v := w;
         raise Exit
       end;
       lambda := l;
       v := w
     done
   with Exit -> ());
  (!lambda, !v)

let eig_bounds_spd a =
  let n = dim a in
  (* Upper bound: Gershgorin discs. *)
  let hi = ref 0. in
  for i = 0 to n - 1 do
    let r = ref 0. in
    for j = 0 to n - 1 do
      if j <> i then r := !r +. Float.abs a.(i).(j)
    done;
    hi := Float.max !hi (a.(i).(i) +. !r)
  done;
  (* Lower bound: inverse power iteration using a Cholesky factorization. *)
  let l = cholesky ~shift:1e-12 a in
  let mu, _ = power_iteration (fun v -> cholesky_solve l v) n in
  let lo = if mu > 0. then 1. /. mu else 0. in
  (lo, !hi)

let pp fmt a =
  Format.fprintf fmt "@[<v>";
  Array.iter (fun row -> Format.fprintf fmt "%a@," Vec.pp row) a;
  Format.fprintf fmt "@]"
