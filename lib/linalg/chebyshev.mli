(** Preconditioned Chebyshev iteration — Theorem 2.2 of the paper
    (Peng's formulation of the classical method, cf. Saad, Axelsson).

    Given symmetric PSD operators [A], [B] with [A ≼ B ≼ κ·A], the iteration
    applies a linear operator [Z ≈ A†] to the right-hand side using
    [O(√κ · log(1/ε))] iterations, each consisting of one product with [A],
    one solve with [B], and O(1) vector operations — which is exactly the
    per-iteration round cost the congested-clique solver charges
    (Corollary 2.3): the matvec is one communication round, the [B]-solve is
    internal because every node knows the sparsifier. *)

type stats = {
  iterations : int;
  residual : float;  (** final ‖b − A x‖₂ / ‖b‖₂ *)
  converged : bool;
}

val iteration_bound : kappa:float -> eps:float -> int
(** The a-priori iteration count [⌈√κ · ln(2/ε)⌉ + 1] of Theorem 2.2,
    used by the round-accounting layer and the E2 bench. *)

(** Preallocated iteration state for {!solve_into}: the five vectors
    ([x], [r], [z], [d], [ad]) of the semi-iteration. Reusable across
    sequential solves of the same dimension; not safe to share between
    concurrent solves. *)
module Workspace : sig
  type t = { x : Vec.t; r : Vec.t; z : Vec.t; d : Vec.t; ad : Vec.t }

  val create : int -> t

  val dim : t -> int
end

val solve_into :
  ?max_iters:int ->
  ?tol:float ->
  apply_a_into:(Vec.t -> Vec.t -> unit) ->
  solve_b_into:(Vec.t -> Vec.t -> unit) ->
  kappa:float ->
  Workspace.t ->
  Vec.t ->
  stats
(** [solve_into ~apply_a_into ~solve_b_into ~kappa ws b] is the
    zero-allocation kernel behind {!solve}: all iteration state lives in
    [ws] and the solution is left in [ws.x]. [apply_a_into src dst] must set
    [dst <- A src] and [solve_b_into src dst] must set [dst <- B† src],
    each writing every entry of [dst] and allocating nothing if the whole
    iteration is to stay allocation-free. Raises [Invalid_argument] on a
    workspace dimension mismatch. Bit-identical to {!solve}. *)

val solve :
  ?max_iters:int ->
  ?tol:float ->
  apply_a:(Vec.t -> Vec.t) ->
  solve_b:(Vec.t -> Vec.t) ->
  kappa:float ->
  Vec.t ->
  Vec.t * stats
(** [solve ~apply_a ~solve_b ~kappa b] approximates [A† b]. [solve_b] must
    apply [B†] (the preconditioner solve). [kappa] is the relative condition
    number bound [A ≼ B ≼ κA]. Stops when the relative residual is ≤ [tol]
    (default [1e-10]) or after [max_iters] (default {!iteration_bound} with
    [eps = tol]) iterations.

    For singular (Laplacian) operators, pass [b] in the range; intermediate
    vectors are kept centered by the caller's [solve_b]. *)

val solve_grounded :
  ?max_iters:int ->
  ?tol:float ->
  apply_a:(Vec.t -> Vec.t) ->
  solve_b:(Vec.t -> Vec.t) ->
  kappa:float ->
  Vec.t ->
  Vec.t * stats
(** Like {!solve} but centers [b] first and re-centers the result — the right
    entry point for connected-graph Laplacian systems. *)
