(** Dense square matrices and the direct factorizations used for the
    internal (node-local) solves of the congested-clique algorithms.

    Matrices are row-major [float array array]. These routines are only ever
    applied to the *sparsified* graphs (size [O(n log n)] edges on [n]
    vertices), so cubic-time factorizations are acceptable: in the congested
    clique every node holds the whole sparsifier and solves internally
    (Theorem 1.1's proof), which is exactly what these functions model. *)

type t = float array array

val create : int -> t
(** [create n] is the [n × n] zero matrix. *)

val init : int -> (int -> int -> float) -> t

val dim : t -> int

val copy : t -> t

val identity : int -> t

val transpose : t -> t

val mul : t -> t -> t

val mul_vec : t -> Vec.t -> Vec.t

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into a x y] sets [y <- A x] without allocating; [y] must not
    alias [x] or a row of [a]. Same [apply_into] operator shape as
    {!Csr.mul_vec_into}. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val is_symmetric : ?eps:float -> t -> bool

val cholesky : ?shift:float -> t -> t
(** [cholesky a] returns the lower-triangular [l] with [l * lᵀ = a + shift·I].
    [a] must be symmetric positive definite (after the shift).
    Raises [Failure] if a non-positive pivot is met. *)

val cholesky_solve : t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [l lᵀ x = b] by forward/back substitution. *)

val cholesky_solve_into : t -> Vec.t -> Vec.t -> Vec.t -> unit
(** [cholesky_solve_into l b scratch x] solves [l lᵀ x = b] without
    allocating: the forward-substitution intermediate lives in [scratch] and
    the solution in [x]. [b], [scratch] and [x] must be pairwise distinct
    buffers of dimension [dim l]. Bit-identical to {!cholesky_solve}. *)

val solve_spd : ?shift:float -> t -> Vec.t -> Vec.t
(** One-shot symmetric-positive-definite solve via Cholesky. *)

val inverse_spd : ?shift:float -> t -> t
(** Inverse of an SPD matrix via Cholesky solves, column by column. *)

val solve_grounded : t -> Vec.t -> Vec.t
(** [solve_grounded l b] solves a *singular* Laplacian system [l x = b] with
    [b ⊥ 1] by grounding vertex 0 (deleting its row/column), solving the
    resulting SPD system, and re-centering the solution so that [x ⊥ 1].
    This computes [L† b] exactly for a connected Laplacian. *)

val power_iteration :
  ?iters:int -> ?tol:float -> (Vec.t -> Vec.t) -> int -> float * Vec.t
(** [power_iteration apply n] runs deterministic power iteration on the
    operator [apply] over dimension [n], started from a fixed deterministic
    vector. Returns [(rayleigh_quotient, unit eigvec estimate)]. *)

val eig_bounds_spd : t -> float * float
(** [eig_bounds_spd a] returns [(lo, hi)]: a lower bound on the smallest and
    an upper bound on the largest eigenvalue of SPD [a]
    (Gershgorin for [hi]; inverse power iteration for [lo]). *)

val pp : Format.formatter -> t -> unit
