type stats = { iterations : int; residual : float; converged : bool }

let iteration_bound ~kappa ~eps =
  let eps = Float.max eps 1e-300 in
  int_of_float (Float.ceil (sqrt (Float.max kappa 1.) *. log (2. /. eps))) + 1

module Workspace = struct
  type t = { x : Vec.t; r : Vec.t; z : Vec.t; d : Vec.t; ad : Vec.t }

  let create n =
    {
      x = Vec.create n;
      r = Vec.create n;
      z = Vec.create n;
      d = Vec.create n;
      ad = Vec.create n;
    }

  let dim ws = Vec.dim ws.x
end

(* Chebyshev semi-iteration for the preconditioned system B†A x = B†b whose
   spectrum (on the range) lies in [1/κ, 1]. Cf. Saad, "Iterative Methods for
   Sparse Linear Systems", Alg. 12.1.

   Zero-allocation workspace kernel: all five iteration vectors are
   caller-owned, the norms are inlined (a call returning [float] boxes its
   result), and the element expressions reproduce the historical allocating
   loop literally — including the [1. *.] and [(-1.) *.] factors the seed
   inherited from [Vec.axpy_inplace] — so the [solve] wrapper is
   bit-identical to the seed solver. *)
(* cc_lint: hot solve_into *)
let solve_into ?max_iters ?(tol = 1e-10) ~apply_a_into ~solve_b_into ~kappa
    (ws : Workspace.t) b =
  let n = Vec.dim b in
  if Workspace.dim ws <> n then
    invalid_arg "Chebyshev.solve_into: workspace dimension mismatch";
  let max_iters =
    match max_iters with
    | Some k -> k
    | None -> iteration_bound ~kappa ~eps:tol
  in
  let lmin = 1. /. Float.max kappa 1. in
  let lmax = 1. in
  let theta = (lmax +. lmin) /. 2. in
  let delta = (lmax -. lmin) /. 2. in
  let sigma1 = theta /. delta in
  let x = ws.Workspace.x
  and r = ws.Workspace.r
  and z = ws.Workspace.z
  and d = ws.Workspace.d
  and ad = ws.Workspace.ad in
  Vec.fill x 0.;
  Vec.copy_into b r;
  let nb_acc = ref 0. in
  for i = 0 to n - 1 do
    nb_acc := !nb_acc +. (r.(i) *. r.(i))
  done;
  let nb = Float.max (sqrt !nb_acc) 1e-300 in
  solve_b_into r z;
  let inv_theta = 1. /. theta in
  for i = 0 to n - 1 do
    d.(i) <- inv_theta *. z.(i)
  done;
  let rho_prev = ref (1. /. sigma1) in
  let iters = ref 0 in
  let residual = ref (sqrt !nb_acc /. nb) in
  (try
     while !iters < max_iters do
       for i = 0 to n - 1 do
         x.(i) <- (1. *. d.(i)) +. x.(i)
       done;
       apply_a_into d ad;
       for i = 0 to n - 1 do
         r.(i) <- ((-1.) *. ad.(i)) +. r.(i)
       done;
       let nr_acc = ref 0. in
       for i = 0 to n - 1 do
         nr_acc := !nr_acc +. (r.(i) *. r.(i))
       done;
       residual := sqrt !nr_acc /. nb;
       incr iters;
       if !residual <= tol then raise Exit;
       solve_b_into r z;
       let rho = 1. /. ((2. *. sigma1) -. !rho_prev) in
       let c1 = rho *. !rho_prev in
       let c2 = 2. *. rho /. delta in
       for i = 0 to n - 1 do
         d.(i) <- (c1 *. d.(i)) +. (c2 *. z.(i))
       done;
       rho_prev := rho
     done
   with Exit -> ());
  { iterations = !iters; residual = !residual; converged = !residual <= tol }

let solve ?max_iters ?tol ~apply_a ~solve_b ~kappa b =
  let ws = Workspace.create (Vec.dim b) in
  let apply_a_into src dst = Vec.copy_into (apply_a src) dst in
  let solve_b_into src dst = Vec.copy_into (solve_b src) dst in
  let st = solve_into ?max_iters ?tol ~apply_a_into ~solve_b_into ~kappa ws b in
  (ws.Workspace.x, st)

let solve_grounded ?max_iters ?tol ~apply_a ~solve_b ~kappa b =
  let b = Vec.center b in
  let x, st = solve ?max_iters ?tol ~apply_a ~solve_b ~kappa b in
  (Vec.center x, st)
