(** Compressed-sparse-row matrices.

    This is the representation used for graph Laplacians of the *input*
    graphs: a congested-clique node never materializes the dense [n × n]
    Laplacian, it only needs matrix–vector products (one round each in the
    model, since row [i] lives at node [i]). *)

type t

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** Builds a CSR matrix from [(row, col, value)] triplets. Duplicate
    coordinates are summed; explicit zeros are dropped. Raises
    [Invalid_argument] on out-of-range indices. *)

val rows : t -> int

val cols : t -> int

val nnz : t -> int

val get : t -> int -> int -> float
(** [get a i j] is entry [(i, j)]; [O(row degree)] lookup. *)

val mul_vec : t -> Vec.t -> Vec.t

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into a x y] sets [y <- A x] without allocating; [y] must not
    alias [x]. This is the [apply_into] operator shape the workspace solvers
    ({!Cg.solve_into}, {!Chebyshev.solve_into}) consume. *)

val mul_vec_transpose : t -> Vec.t -> Vec.t

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row a i f] applies [f col value] to every stored entry of row [i]. *)

val iter : t -> (int -> int -> float -> unit) -> unit

val diag : t -> Vec.t

val transpose : t -> t

val scale : float -> t -> t

val add : t -> t -> t

val to_dense : t -> Dense.t

val of_dense : ?eps:float -> Dense.t -> t
(** Entries with absolute value ≤ [eps] (default 0) are dropped. *)

val is_symmetric : ?eps:float -> t -> bool

val pp : Format.formatter -> t -> unit
