(** Dense float vectors.

    A vector is a [float array]; these helpers keep the numerical code in the
    rest of the library free of index bookkeeping. All binary operations
    require equal lengths and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of dimension [n]. *)

val constant : int -> float -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y], allocating a fresh vector. *)

val axpy_inplace : float -> t -> t -> unit
(** [axpy_inplace a x y] updates [y <- a*x + y]. *)

(** {2 Zero-allocation kernels}

    Each [_into] variant writes its full result into a caller-owned
    destination and performs no heap allocation; destinations follow the
    operator convention of {!Csr.mul_vec_into} (output parameter last).
    Element expressions are bit-identical to the allocating functions above,
    which are thin wrappers over these kernels. *)

val add_into : t -> t -> t -> unit
(** [add_into x y dst] sets [dst <- x + y]. [dst] may alias [x] or [y]. *)

val sub_into : t -> t -> t -> unit
(** [sub_into x y dst] sets [dst <- x - y]. [dst] may alias [x] or [y]. *)

val scale_into : float -> t -> t -> unit
(** [scale_into a x dst] sets [dst <- a*x]. [dst] may alias [x]. *)

val axpy_into : float -> t -> t -> t -> unit
(** [axpy_into a x y dst] sets [dst <- a*x + y]. [dst] may alias [y] (this is
    exactly {!axpy_inplace}) but must not alias [x]. *)

val copy_into : t -> t -> unit
(** [copy_into x dst] blits [x] over [dst]. *)

val fill : t -> float -> unit
(** [fill dst c] sets every entry of [dst] to [c]. *)

val center_into : t -> t -> unit
(** [center_into x dst] sets [dst <- x - mean x]. [dst] may alias [x]. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val dist2 : t -> t -> float
(** [dist2 x y] is [norm2 (sub x y)] without the intermediate allocation. *)

val sum : t -> float

val mean : t -> float

val center : t -> t
(** [center x] subtracts the mean from every entry; the result is orthogonal
    to the all-ones vector, i.e. lies in the range of a connected Laplacian. *)

val normalize : t -> t
(** [normalize x] is [x / ||x||]. The result is always a fresh vector, even
    when the norm is 0 (a zero input comes back as a zero *copy*, never the
    input array itself — aliasing the argument would let an in-place write
    through the result corrupt the caller's buffer). *)

val map2 : (float -> float -> float) -> t -> t -> t

val equal : ?eps:float -> t -> t -> bool
(** Entrywise comparison up to absolute tolerance [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
