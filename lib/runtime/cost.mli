(** Round accounting for the charged-cost layer of the simulator.

    The congested clique measures complexity in synchronous rounds (§2.1).
    Subroutines that we execute centrally-but-faithfully (matrix–vector
    products, broadcasts, internal solves, the IPM control flow) charge here
    exactly the rounds the paper's analysis assigns them; genuinely
    message-passing subroutines (the {!Transport.S} kernels) report their
    measured rounds into the same counter via {!Runtime.Make}. Each charge
    is tagged with a phase name so experiment
    reports can break a total down (e.g. "sparsify" vs "chebyshev" vs
    "augment"). *)

type t
(** A mutable ledger: one running total plus a per-phase breakdown. *)

val create : unit -> t
(** A fresh, empty ledger. *)

val charge : t -> phase:string -> int -> unit
(** [charge t ~phase r] adds [r] rounds under [phase]. [r ≥ 0]. *)

val rounds : t -> int
(** Total rounds charged so far. *)

val phase_rounds : t -> string -> int
(** Rounds charged under one phase (0 for a phase never charged). *)

val phases : t -> (string * int) list
(** All phases with their totals, sorted by phase name. *)

val reset : t -> unit
(** Zero the total and forget every phase. *)

val merge_into : t -> t -> unit
(** [merge_into src dst] adds all of [src]'s phases into [dst]. *)

val recovery_phase : string
(** ["recovery"] — the phase every replayed or retried round is charged
    to, by both [Fault.Recover]'s verify-and-retry driver and the shard
    supervisor's round replay ({!Runtime.Make} splits the transport's
    [recovery_rounds] delta off into it automatically). *)

(** {1 Model constants and cost formulas}

    These are the concrete round counts the paper cites; they are defined in
    one place so that the accounting in algorithms and the reference curves
    in benches cannot drift apart. *)

val lenzen_routing_rounds : int
(** 16 — routing any multiset with ≤ n sends and receives per node
    (Lenzen 2013, as used in Theorem 1.4's proof). *)

val broadcast_rounds : int
(** 1 — every node sends one word to every other node. *)

val matvec_rounds : int
(** 1 — a Laplacian matrix–vector product: node [i] holds row [i] and [x_i],
    sends [x_i] to its neighbours, sums locally. *)

val apsp_rounds : int -> int
(** [⌈n^0.158⌉] — the CKKL'19 distance-product round bound charged per
    (approximate) APSP/SSSP call (see DESIGN.md substitution 4). *)

val log2_ceil : int -> int
(** [⌈log₂ k⌉] for [k ≥ 1] (0 for [k ≤ 1]) — the word-size arithmetic used
    throughout the cost formulas. *)

val gather_rounds : n:int -> m:int -> bits_per_edge:int -> int
(** Rounds for the trivial algorithm of §1.1: make all [m] edges (each
    [bits_per_edge/⌈log n⌉] words) globally known — [O(n log U)] total. *)

val bcast_gather_rounds : n:int -> m:int -> bits_per_edge:int -> int
(** The same gather in the Broadcast Congested Clique (arXiv:2205.12059):
    [⌈m·words/n⌉] rounds, since a gather is receive-bound and per round
    every node hears all [n] broadcast words — broadcast loses essentially
    nothing on globally-known steps (DESIGN.md §13). *)
