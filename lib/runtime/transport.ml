(** The [TRANSPORT] signature: what a message kernel must provide so that
    {!Runtime.Make} can drive node programs on it and account for every
    round in one ledger.

    Two instances live in [lib/clique]: [Sim] (the congested clique itself —
    all ordered pairs may talk) and [Congest] (the topology-restricted
    sibling — messages only along graph edges). Both enforce bandwidth
    through the shared {!Mailbox} and raise
    {!Mailbox.Bandwidth_exceeded} when a round would carry more than
    [width] words over one ordered pair. *)

module type S = sig
  type t

  val name : string
  (** Kernel name for reports ("clique", "congest"). *)

  val n : t -> int
  (** Number of nodes. *)

  val default_width : int
  (** Per-ordered-pair word budget used when a call omits [?width]; the
      sanitizer asserts against the same value the kernel enforces. *)

  val unicast : bool
  (** Width rule the kernel enforces: [true] when each ordered pair gets
      its own [width]-word budget (the standard clique / CONGEST rule),
      [false] when each {e source} gets one payload per round that every
      node receives (the Broadcast Congested Clique rule,
      arXiv:2205.12059). The runtime picks the matching sanitizer check
      ({!Sanitize.check_exchange} vs
      {!Sanitize.check_exchange_broadcast}) off this flag. *)

  val rounds : t -> int
  (** Rounds elapsed on this transport so far (measured + charged). *)

  val words_sent : t -> int
  (** Total words ever sent (message-complexity measure). *)

  val recovery_rounds : t -> int
  (** Of {!rounds}, how many were consumed replaying operations after a
      worker death (DESIGN.md §14). Always 0 on in-process kernels. *)

  val exchange :
    ?width:int ->
    t ->
    (int * int array) list array ->
    (int * int array) list array
  (** One synchronous round: [outboxes.(v)] is node [v]'s [(dst, payload)]
      list; the result is the inboxes, [(src, payload)] per node. At most
      [width] words (default {!default_width}) per ordered pair. *)

  val route :
    ?width:int ->
    t ->
    (int * int * int array) list ->
    (int * int array) list array
  (** Lenzen routing of an arbitrary [(src, dst, payload)] multiset;
      [⌈load / (n·width)⌉] batches of {!Cost.lenzen_routing_rounds} rounds
      where [load] is the max words any node sends or receives. *)

  val broadcast : ?width:int -> t -> int array array -> int array array
  (** Every node sends [values.(v)] (at most [width] words) to all others;
      returns the shared global view. One round. *)

  val charge : t -> int -> unit
  (** Advance the round counter without communication (a node-local stand-in
      for a subroutine whose rounds are charged analytically). *)

  val stats : t -> (string * int) list
  (** Kernel-internal counters (full metric names, e.g.
      [kernel.arena.resets]), exported into a registry by
      [Runtime.S.export_metrics]. May be empty. *)
end
