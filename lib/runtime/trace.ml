type event = { seq : int; phase : string; rounds : int; words : int }

type t = {
  capacity : int;
  mutable events : event array;  (* allocated lazily, length = capacity *)
  mutable count : int;  (* events ever recorded; buffer keeps the tail *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Trace.create: need capacity > 0";
  { capacity; events = [||]; count = 0 }

let capacity t = t.capacity

let recorded t = t.count

let record t ~phase ~rounds ~words =
  let e = { seq = t.count; phase; rounds; words } in
  if Array.length t.events = 0 then t.events <- Array.make t.capacity e;
  t.events.(t.count mod t.capacity) <- e;
  t.count <- t.count + 1

let to_list t =
  let k = min t.count t.capacity in
  List.init k (fun i -> t.events.((t.count - k + i) mod t.capacity))

let buckets = 16

let bucket rounds =
  if rounds <= 0 then 0
  else min (buckets - 1) (Cost.log2_ceil (rounds + 1))

let histogram t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let h =
        match Hashtbl.find_opt tbl e.phase with
        | Some h -> h
        | None ->
          let h = Array.make buckets 0 in
          Hashtbl.replace tbl e.phase h;
          h
      in
      let b = bucket e.rounds in
      h.(b) <- h.(b) + 1)
    (to_list t);
  Hashtbl.fold (fun phase h acc -> (phase, h) :: acc) tbl []
  |> List.sort compare

let pp_histogram fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (phase, h) ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt "%-14s" phase;
      Array.iteri
        (fun b c -> if c > 0 then Format.fprintf fmt " 2^%d:%d" b c)
        h)
    (histogram t);
  Format.fprintf fmt "@]"
