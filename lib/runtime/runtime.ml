module Cost = Cost
module Trace = Trace
module Mailbox = Mailbox
module Sanitize = Sanitize
module Arena = Arena
module Pool = Pool
module Shard = Shard
module Model = Model

module type TRANSPORT = Transport.S

module type S = sig
  type transport

  type t

  val kernel : string

  val unicast : bool

  val create :
    ?phase:string ->
    ?trace_capacity:int ->
    ?sanitize:bool ->
    ?domains:int ->
    transport ->
    t

  val transport : t -> transport

  val n : t -> int

  val domains : t -> int

  val ledger : t -> Cost.t

  val trace : t -> Trace.t

  val sanitized : t -> bool

  val sanitizer : t -> Sanitize.t option

  val rounds : t -> int

  val words : t -> int

  val phases : t -> (string * int) list

  val phase_rounds : t -> string -> int

  val current_phase : t -> string

  val set_phase : t -> string -> unit

  val with_phase : t -> string -> (unit -> 'a) -> 'a

  val on_round : t -> (phase:string -> rounds:int -> words:int -> unit) -> unit

  val attach_metrics : t -> Metrics.t -> unit

  val export_metrics : t -> Metrics.t -> unit

  val exchange :
    ?width:int ->
    t ->
    (int * int array) list array ->
    (int * int array) list array

  val exchange_map :
    ?width:int ->
    t ->
    (int -> (int * int array) list) ->
    (int * int array) list array

  val route :
    ?width:int ->
    t ->
    (int * int * int array) list ->
    (int * int array) list array

  val broadcast : ?width:int -> t -> int array array -> int array array

  val charge : ?phase:string -> t -> int -> unit

  val report : t -> string
end

module Make (T : TRANSPORT) = struct
  type transport = T.t

  type t = {
    tr : T.t;
    ledger : Cost.t;
    trace : Trace.t;
    san : Sanitize.t option;
    (* Rounds already on the transport when this runtime was created; the
       drift check compares the ledger against the counter's movement. *)
    base_rounds : int;
    pool : Pool.t;
    mutable phase : string;
    mutable words : int;
    mutable hooks : (phase:string -> rounds:int -> words:int -> unit) list;
    (* Registry [exchange_map] observes the domain-imbalance histogram
       into; set by [attach_metrics], disabled until then. *)
    mutable metrics : Metrics.t;
  }

  let kernel = T.name

  let unicast = T.unicast

  let create ?(phase = "main") ?(trace_capacity = 256) ?sanitize ?domains tr =
    let sanitize =
      match sanitize with Some b -> b | None -> Sanitize.enabled_default ()
    in
    let domains =
      match domains with Some d -> max 1 d | None -> Pool.default_domains ()
    in
    {
      tr;
      ledger = Cost.create ();
      trace = Trace.create trace_capacity;
      san = (if sanitize then Some (Sanitize.create ()) else None);
      base_rounds = T.rounds tr;
      pool = Pool.get domains;
      phase;
      words = 0;
      hooks = [];
      metrics = Metrics.disabled;
    }

  let transport t = t.tr

  let n t = T.n t.tr

  let domains t = Pool.size t.pool

  let ledger t = t.ledger

  let trace t = t.trace

  let sanitized t = t.san <> None

  let sanitizer t = t.san

  let rounds t = Cost.rounds t.ledger

  let words t = t.words

  let phases t = Cost.phases t.ledger

  let phase_rounds t phase = Cost.phase_rounds t.ledger phase

  let current_phase t = t.phase

  let set_phase t phase = t.phase <- phase

  let with_phase t phase f =
    let saved = t.phase in
    t.phase <- phase;
    Fun.protect ~finally:(fun () -> t.phase <- saved) f

  let on_round t hook = t.hooks <- t.hooks @ [ hook ]

  let observe t ~phase ~rounds ~words =
    Cost.charge t.ledger ~phase rounds;
    t.words <- t.words + words;
    if rounds > 0 || words > 0 then begin
      Trace.record t.trace ~phase ~rounds ~words;
      List.iter (fun hook -> hook ~phase ~rounds ~words) t.hooks
    end

  let sanitize_event t ~phase ~op ~width ~rounds ~words ~event =
    match t.san with
    | None -> ()
    | Some s ->
      let sizes, content = event () in
      Sanitize.record s ~phase ~op ~width ~rounds ~words ~sizes ~content;
      Sanitize.check_phase s ~phase ~op ~rounds;
      Sanitize.check_drift ~phase
        ~ledger:(Cost.rounds t.ledger)
        ~transport:(T.rounds t.tr - t.base_rounds)

  (* Every communication call is measured against the transport's own
     counters, so measured and charged rounds land in the same ledger. The
     mailbox context is set for the duration so delivery errors (and fault
     schedules scoped to a phase) know where in the pipeline they fired.
     Rounds the transport spent replaying after a worker death are split
     off into the "recovery" ledger phase — the algorithm's own phase
     keeps its deterministic cost, and recovery overhead stays visible. *)
  let wrap t ~op ~width ~event f =
    let r0 = T.rounds t.tr
    and w0 = T.words_sent t.tr
    and rec0 = T.recovery_rounds t.tr in
    Mailbox.set_context t.phase;
    let result =
      Fun.protect ~finally:(fun () -> Mailbox.set_context "main") f
    in
    let rounds = T.rounds t.tr - r0
    and words = T.words_sent t.tr - w0
    and recovered = T.recovery_rounds t.tr - rec0 in
    let recovered = min recovered rounds in
    observe t ~phase:t.phase ~rounds:(rounds - recovered) ~words;
    if recovered > 0 then
      observe t ~phase:Cost.recovery_phase ~rounds:recovered ~words:0;
    sanitize_event t ~phase:t.phase ~op ~width ~rounds ~words ~event;
    result

  let effective_width width =
    match width with Some w -> w | None -> T.default_width

  let exchange ?width t outboxes =
    let w = effective_width width in
    if t.san <> None then
      if T.unicast then Sanitize.check_exchange ~phase:t.phase ~width:w outboxes
      else Sanitize.check_exchange_broadcast ~phase:t.phase ~width:w outboxes;
    wrap t ~op:Sanitize.Exchange ~width:w
      ~event:(fun () -> Sanitize.exchange_event outboxes)
      (fun () -> T.exchange ?width t.tr outboxes)

  (* Per-node outbox construction fanned over the domain pool. Each chunk
     writes only its own slots of [out], and the chunk partition is fixed
     by (size, n) alone, so the merged outbox array — and with it rounds,
     words, and sanitizer transcripts — is bit-identical to a sequential
     run. The imbalance histogram records, per call, the spread
     (max - min) of messages produced across chunks. *)
  let exchange_map ?width t f =
    let n = T.n t.tr in
    let out = Array.make n [] in
    let k = Pool.size t.pool in
    if k <= 1 || n < k then
      for v = 0 to n - 1 do
        out.(v) <- f v
      done
    else begin
      Pool.run t.pool ~n (fun lo hi ->
          for v = lo to hi - 1 do
            out.(v) <- f v
          done);
      if Metrics.enabled t.metrics then begin
        let worst = ref 0 and best = ref max_int in
        for w = 0 to k - 1 do
          let lo, hi = Pool.chunk_bounds ~size:k ~n w in
          let msgs = ref 0 in
          for v = lo to hi - 1 do
            msgs := !msgs + List.length out.(v)
          done;
          worst := max !worst !msgs;
          best := min !best !msgs
        done;
        Metrics.observe
          (Metrics.histogram t.metrics "kernel.domain.imbalance")
          (!worst - !best)
      end
    end;
    exchange ?width t out

  let route ?width t msgs =
    let w = effective_width width in
    if t.san <> None then Sanitize.check_route ~phase:t.phase ~width:w msgs;
    wrap t ~op:Sanitize.Route ~width:w
      ~event:(fun () -> Sanitize.route_event msgs)
      (fun () -> T.route ?width t.tr msgs)

  let broadcast ?width t values =
    let w = effective_width width in
    if t.san <> None then
      Sanitize.check_broadcast ~phase:t.phase ~width:w values;
    wrap t ~op:Sanitize.Broadcast ~width:w
      ~event:(fun () -> Sanitize.broadcast_event values)
      (fun () -> T.broadcast ?width t.tr values)

  let attach_metrics t m =
    if Metrics.enabled m then begin
      t.metrics <- m;
      let rounds_c = Metrics.counter m "runtime.rounds" in
      let words_c = Metrics.counter m "runtime.words" in
      let events_c = Metrics.counter m "runtime.events" in
      let hist = Metrics.histogram m "runtime.event_rounds" in
      on_round t (fun ~phase ~rounds ~words ->
          Metrics.incr ~by:rounds rounds_c;
          Metrics.incr ~by:words words_c;
          Metrics.incr events_c;
          Metrics.observe hist rounds;
          Metrics.incr ~by:rounds (Metrics.counter m ("phase." ^ phase ^ ".rounds")))
    end

  let export_metrics t m =
    if Metrics.enabled m then begin
      Metrics.ingest_phases m ~prefix:("ledger." ^ kernel) (phases t);
      Metrics.set (Metrics.gauge m ("ledger." ^ kernel ^ ".words"))
        (float_of_int t.words);
      Metrics.set (Metrics.gauge m "kernel.domains")
        (float_of_int (Pool.size t.pool));
      List.iter
        (fun (name, v) -> Metrics.incr ~by:v (Metrics.counter m name))
        (T.stats t.tr)
    end

  let charge ?phase t r =
    let phase = match phase with Some p -> p | None -> t.phase in
    T.charge t.tr r;
    observe t ~phase ~rounds:r ~words:0;
    sanitize_event t ~phase ~op:Sanitize.Charge ~width:0 ~rounds:r ~words:0
      ~event:(fun () -> ([], []))

  let report t =
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "[%s n=%d] rounds=%d words=%d" kernel (n t) (rounds t)
         (words t));
    List.iter
      (fun (phase, r) ->
        Buffer.add_string buf (Printf.sprintf "\n  %-14s %8d" phase r))
      (phases t);
    let hist = Format.asprintf "%a" Trace.pp_histogram t.trace in
    if hist <> "" then begin
      Buffer.add_string buf "\n  trace histogram (rounds per event):\n  ";
      Buffer.add_string buf (String.concat "\n  " (String.split_on_char '\n' hist))
    end;
    Buffer.contents buf
end
