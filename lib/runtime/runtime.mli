(** One communication substrate for every layer of the reproduction.

    The congested clique measures complexity in synchronous rounds (§2.1).
    This library defines the {!TRANSPORT} signature a message kernel must
    implement (the clique itself and its CONGEST sibling live in
    [lib/clique]), and the {!Make} functor that turns a transport into a
    {e runtime}: every communication call and every analytic charge flows
    through a single phase-tagged {!Cost.t} ledger, is recorded in a
    {!Trace.t} ring buffer, and is reported to any registered
    [on_round] observers. Node programs written against {!S} run unchanged
    on every kernel and always produce the same per-phase round
    breakdown. *)

module Cost = Cost
module Trace = Trace
module Mailbox = Mailbox
module Sanitize = Sanitize
module Arena = Arena
module Pool = Pool
module Shard = Shard
module Model = Model

module type TRANSPORT = Transport.S

(** The runtime interface node programs and charged layers are written
    against. *)
module type S = sig
  type transport
  (** The underlying kernel state. *)

  type t

  val kernel : string
  (** The transport's {!Transport.S.name}. *)

  val unicast : bool
  (** The transport's {!Transport.S.unicast} flag: whether per-destination
      distinct payloads are legal in one round. When [false], the
      sanitizer enforces the broadcast width rule
      ({!Sanitize.check_exchange_broadcast}) on every exchange. *)

  val create :
    ?phase:string ->
    ?trace_capacity:int ->
    ?sanitize:bool ->
    ?domains:int ->
    transport ->
    t
  (** A fresh runtime (empty ledger and trace) over an existing transport.
      [phase] (default ["main"]) is the initial ledger tag;
      [trace_capacity] (default 256) bounds the event ring. [sanitize]
      (default {!Sanitize.enabled_default}, i.e. the [CC_SANITIZE]
      environment variable) turns on the dynamic model-compliance checks
      and determinism transcripts of {!Sanitize}. [domains] (default
      {!Pool.default_domains}, i.e. the [CC_DOMAINS] environment variable)
      is the parallelism {!exchange_map} fans per-node steps over —
      results are bit-identical for every value. *)

  val transport : t -> transport
  (** The kernel this runtime wraps (shared, not copied). *)

  val n : t -> int
  (** Number of nodes of the underlying kernel. *)

  val domains : t -> int
  (** The domain-pool width {!exchange_map} uses (≥ 1). *)

  val ledger : t -> Cost.t
  (** The single cost ledger all calls charge into. *)

  val trace : t -> Trace.t
  (** The bounded event ring every call records into. *)

  val sanitized : t -> bool
  (** Whether this runtime runs the dynamic {!Sanitize} checks. *)

  val sanitizer : t -> Sanitize.t option
  (** The sanitizer state (for reading transcript hashes), if enabled. *)

  val rounds : t -> int
  (** Total rounds this runtime has charged (= ledger total). *)

  val words : t -> int
  (** Total words sent through this runtime. *)

  val phases : t -> (string * int) list
  (** Per-phase round totals, sorted by phase name. *)

  val phase_rounds : t -> string -> int
  (** Rounds charged under one phase (0 if never charged). *)

  val current_phase : t -> string
  (** The phase new charges land under. *)

  val set_phase : t -> string -> unit
  (** Switch the current phase permanently (prefer {!with_phase}). *)

  val with_phase : t -> string -> (unit -> 'a) -> 'a
  (** [with_phase t p f] runs [f] with the current phase set to [p],
      restoring the previous phase afterwards (also on exceptions). *)

  val on_round : t -> (phase:string -> rounds:int -> words:int -> unit) -> unit
  (** Register an observer called after every call that moved rounds or
      words (communication and analytic charges alike). *)

  val attach_metrics : t -> Metrics.t -> unit
  (** [attach_metrics t m] registers an {!on_round} observer mirroring the
      ledger into registry [m] live: counters [runtime.rounds],
      [runtime.words], [runtime.events] and [phase.<p>.rounds], plus the
      [runtime.event_rounds] histogram. A no-op (nothing registered) when
      [m] is disabled, so instrumentation costs one boolean test. *)

  val export_metrics : t -> Metrics.t -> unit
  (** [export_metrics t m] snapshots the ledger into [m] after the fact:
      per-phase counters under [ledger.<kernel>.<phase>] (plus [.total])
      and a [ledger.<kernel>.words] gauge. Useful when the runtime was not
      instrumented from creation. *)

  val exchange :
    ?width:int ->
    t ->
    (int * int array) list array ->
    (int * int array) list array
  (** {!Transport.S.exchange}, measured into the ledger under the current
      phase. *)

  val exchange_map :
    ?width:int ->
    t ->
    (int -> (int * int array) list) ->
    (int * int array) list array
  (** [exchange_map t step] is [exchange t [|step 0; ...; step (n-1)|]]
      with the per-node outbox construction fanned over the runtime's
      domain pool ({!domains} fixed contiguous chunks). [step v] must be a
      proper node program step: it may read shared pre-round state but
      must not mutate anything other than node [v]'s own slots. Rounds,
      words, and sanitizer transcripts are bit-identical to the
      sequential run for every domain count. Observes the
      [kernel.domain.imbalance] histogram when metrics are attached. *)

  val route :
    ?width:int ->
    t ->
    (int * int * int array) list ->
    (int * int array) list array
  (** {!Transport.S.route}, measured into the ledger. *)

  val broadcast : ?width:int -> t -> int array array -> int array array
  (** {!Transport.S.broadcast}, measured into the ledger. *)

  val charge : ?phase:string -> t -> int -> unit
  (** [charge ?phase t r] adds [r] analytically-derived rounds under
      [phase] (default: the current phase), advancing the transport's
      counter too so measured and charged totals agree. [r ≥ 0]. *)

  val report : t -> string
  (** Human-readable summary: kernel, totals, per-phase breakdown, and the
      trace's per-phase event-size histogram. *)
end

module Make (T : TRANSPORT) : S with type transport = T.t
(** The functor is applicative: [Make (Sim)] names the same types wherever
    it is applied, so instances can be shared across modules. *)
