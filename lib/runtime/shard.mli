(** Shard partitioning and order-preserving reassembly (DESIGN.md §11).

    Node IDs are split across [CC_SHARDS] contiguous ranges (the same
    fixed partition as [Pool.chunk_bounds]). This module holds every
    order-sensitive piece of multi-process delivery — and none of the
    I/O, which lives in [Clique.Socket] on top of [Wire]:

    every message is tagged with its {e global arrival index} [gidx], the
    position the in-process kernels would process it at (source ascending,
    outbox order). Workers re-sort inbound traffic by [gidx] before
    delivering on a local arena, and the coordinator resolves competing
    errors by minimal [gidx] — which together make sharded rounds
    bit-identical to single-process rounds: same inbox contents and order,
    same error at the same message. *)

val env_var : string
(** ["CC_SHARDS"]. *)

val default_shards : unit -> int
(** The shard count a transport uses when none is forced: the value set by
    {!set_default} if any, else [CC_SHARDS] when set to a positive
    integer, else 1. *)

val set_default : int option -> unit
(** Force (or, with [None], unforce) {!default_shards} — the test-suite
    hook, overriding the environment. *)

exception Shard_down of { shard : int; round : int; during : string }
(** A worker process died or its socket reached EOF mid-operation. Raised
    by the socket transport (never a hang), naming the shard and the round
    it went down in. *)

val bounds : shards:int -> n:int -> int -> int * int
(** [bounds ~shards ~n s] is shard [s]'s half-open node range — the fixed
    partition [Pool.chunk_bounds ~size:shards ~n s]. *)

val owners : shards:int -> n:int -> int array
(** [owners.(v)] is the shard owning node [v]. *)

type msg = { gidx : int; src : int; dst : int; pay : int array }

type split = {
  by_src_shard : msg list array;
      (** shard [s]'s sources' messages, gidx-ascending. *)
  expect : bool array array;
      (** [expect.(d).(s)]: worker [d] should await a peer batch from [s]. *)
  words : int;  (** total payload words (counted on success). *)
  crossings : int;  (** messages whose src and dst live on different shards. *)
  messages : int;
  range_error : (int * string) option;
      (** first out-of-range destination: its gidx and the exact
          [Invalid_argument] message the in-process kernels raise. The
          walk stops recording there. *)
}

val split_exchange :
  owner:int array ->
  shards:int ->
  n:int ->
  width:int ->
  (int * int array) list array ->
  split
(** Coordinator-side split of one round's outboxes by source shard.
    Raises [Invalid_argument] on an outbox array length mismatch (same
    message as [Mailbox.deliver]). *)

val partition_by_dst : owner:int array -> shards:int -> msg list -> msg list array
(** Worker-side regrouping of its own sources' messages by destination
    shard, gidx order preserved within each group. *)

val merge_inbound : msg list list -> msg list
(** Merge gidx-ascending lists into one gidx-ascending stream. *)

type overflow = { gidx : int; src : int; dst : int; words : int; width : int }

val first_overflow : n:int -> width:int -> msg list -> overflow option
(** First per-ordered-pair width overflow of a gidx-ascending stream —
    complete for the pairs this worker owns, since all messages of a pair
    land on the destination's shard. *)

type delivery =
  | Inboxes of (int * int array) list array
      (** per destination in [lo, hi), in the arena's inbox order. *)
  | Overflow of overflow

val deliver_local :
  arena:Arena.t ->
  n:int ->
  width:int ->
  lo:int ->
  hi:int ->
  msg list ->
  delivery
(** Deliver a worker's gidx-ascending inbound stream on its local arena
    and slice out destinations [lo, hi). Bit-identical to the slices of a
    single-process delivery of the full round. *)
