(** Shard partitioning and order-preserving reassembly (DESIGN.md §11).

    Node IDs are split across [CC_SHARDS] contiguous ranges (the same
    fixed partition as [Pool.chunk_bounds]). This module holds every
    order-sensitive piece of multi-process delivery — and none of the
    I/O, which lives in [Clique.Socket] on top of [Wire]:

    every message is tagged with its {e global arrival index} [gidx], the
    position the in-process kernels would process it at (source ascending,
    outbox order). Workers re-sort inbound traffic by [gidx] before
    delivering on a local arena, and the coordinator resolves competing
    errors by minimal [gidx] — which together make sharded rounds
    bit-identical to single-process rounds: same inbox contents and order,
    same error at the same message. *)

val env_var : string
(** ["CC_SHARDS"]. *)

val default_shards : unit -> int
(** The shard count a transport uses when none is forced: the value set by
    {!set_default} if any, else [CC_SHARDS] when set to a positive
    integer, else 1. *)

val set_default : int option -> unit
(** Force (or, with [None], unforce) {!default_shards} — the test-suite
    hook, overriding the environment. *)

(** What the socket supervisor does when a worker dies mid-session
    (DESIGN.md §14): [Fail] propagates {!Shard_down} (the pre-supervision
    behaviour), [Respawn] replaces the worker and replays the interrupted
    operation, [Drain] hands the dead shard's node range to survivors and
    continues degraded. *)
type policy = Fail | Respawn | Drain

val policy_env : string
(** ["CC_SHARD_POLICY"]. *)

val timeout_env : string
(** ["CC_SHARD_TIMEOUT"]. *)

val policy_of_string : string -> policy option
(** Case-insensitive ["fail"]/["respawn"]/["drain"]. *)

val policy_to_string : policy -> string

val default_policy : unit -> policy
(** The policy a transport uses when none is passed: the value set by
    {!set_default_policy} if any, else a recognized [CC_SHARD_POLICY],
    else [Fail] — an unrecognized value falls back to fail-stop, the
    behaviour an operator already expects. *)

val set_default_policy : policy option -> unit

val default_timeout : unit -> float
(** Seconds every supervised blocking wait is bounded by: the value set
    by {!set_default_timeout} if any, else a positive [CC_SHARD_TIMEOUT],
    else 30. *)

val set_default_timeout : float option -> unit

exception Shard_down of { shard : int; round : int; during : string }
(** A worker process died or its socket reached EOF mid-operation and the
    active policy could not (or, under [Fail], would not) recover. Raised
    by the socket transport (never a hang), naming the shard and the round
    it went down in.

    Layering rule (cc_lint L13): only the supervisor layer —
    [lib/clique/socket.ml] and [lib/fault/] — may catch this exception.
    Charged algorithm layers must let it propagate, otherwise a dead
    worker could be silently papered over without certification. *)

val bounds : shards:int -> n:int -> int -> int * int
(** [bounds ~shards ~n s] is shard [s]'s half-open node range — the fixed
    partition [Pool.chunk_bounds ~size:shards ~n s].

    Edge cases, pinned by the drain reassignment logic: ranges are
    monotone and concatenate to [[0, n)] for {e every} [shards >= 1],
    including [n = 0] (all ranges empty) and [n < shards] (exactly [n]
    singleton ranges, the rest empty); a shard [s] with
    [s * n mod shards = 0] starts exactly at [s * n / shards]. *)

val owners : shards:int -> n:int -> int array
(** [owners.(v)] is the shard owning node [v]. Length [n]; the empty
    array when [n = 0]. Every entry is a shard with a non-empty range, so
    when [n < shards] exactly [n] distinct shards appear (ascending, one
    singleton each — which [n] is [Pool.chunk_bounds]'s business). *)

(** Epoch-versioned live partition — the coordinator's view of which
    shards are alive and which node range each one currently owns. Epoch
    starts at 1 and is bumped by every supervision event; receivers use
    it to reject late frames from dead incarnations. *)
module Partition : sig
  type t

  val create : shards:int -> n:int -> t
  (** All shards alive, ranges = {!bounds}, epoch 1. *)

  val shards : t -> int

  val n : t -> int

  val epoch : t -> int

  val alive : t -> int -> bool

  val bounds : t -> int -> int * int
  (** Shard [s]'s current half-open range (empty once drained). *)

  val live : t -> int
  (** Count of live shards. *)

  val live_list : t -> int list
  (** Live shard ids, ascending. *)

  val owners : t -> int array
  (** [owners.(v)] over the live ranges. Equal to
      [owners ~shards ~n] while every shard is alive. *)

  val bump : t -> t
  (** Epoch + 1, everything else unchanged (used by respawn, which
      restores the same ranges under a new incarnation). *)

  val drain : t -> int -> t
  (** Mark a shard dead and merge its range into the nearest live
      predecessor (extending upward), or the nearest live successor when
      no live shard precedes it. Live ranges stay contiguous and still
      concatenate to [[0, n)]; epoch is bumped. Raises
      [Invalid_argument] if the shard is already dead or is the last one
      alive. *)
end

type msg = { gidx : int; src : int; dst : int; pay : int array }

type split = {
  by_src_shard : msg list array;
      (** shard [s]'s sources' messages, gidx-ascending. *)
  expect : bool array array;
      (** [expect.(d).(s)]: worker [d] should await a peer batch from [s]. *)
  words : int;  (** total payload words (counted on success). *)
  crossings : int;  (** messages whose src and dst live on different shards. *)
  messages : int;
  range_error : (int * string) option;
      (** first out-of-range destination: its gidx and the exact
          [Invalid_argument] message the in-process kernels raise. The
          walk stops recording there. *)
}

val split_exchange :
  owner:int array ->
  shards:int ->
  n:int ->
  width:int ->
  (int * int array) list array ->
  split
(** Coordinator-side split of one round's outboxes by source shard.
    Raises [Invalid_argument] on an outbox array length mismatch (same
    message as [Mailbox.deliver]). *)

val partition_by_dst : owner:int array -> shards:int -> msg list -> msg list array
(** Worker-side regrouping of its own sources' messages by destination
    shard, gidx order preserved within each group. *)

val merge_inbound : msg list list -> msg list
(** Merge gidx-ascending lists into one gidx-ascending stream. *)

type overflow = { gidx : int; src : int; dst : int; words : int; width : int }

val first_overflow : n:int -> width:int -> msg list -> overflow option
(** First per-ordered-pair width overflow of a gidx-ascending stream —
    complete for the pairs this worker owns, since all messages of a pair
    land on the destination's shard. *)

type delivery =
  | Inboxes of (int * int array) list array
      (** per destination in [lo, hi), in the arena's inbox order. *)
  | Overflow of overflow

val deliver_local :
  arena:Arena.t ->
  n:int ->
  width:int ->
  lo:int ->
  hi:int ->
  msg list ->
  delivery
(** Deliver a worker's gidx-ascending inbound stream on its local arena
    and slice out destinations [lo, hi). Bit-identical to the slices of a
    single-process delivery of the full round. *)
