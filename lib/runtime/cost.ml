type t = { mutable total : int; phases : (string, int) Hashtbl.t }

let create () = { total = 0; phases = Hashtbl.create 16 }

let charge t ~phase r =
  if r < 0 then invalid_arg "Cost.charge: negative round count";
  t.total <- t.total + r;
  let cur = try Hashtbl.find t.phases phase with Not_found -> 0 in
  Hashtbl.replace t.phases phase (cur + r)

let rounds t = t.total

let phase_rounds t phase =
  try Hashtbl.find t.phases phase with Not_found -> 0

let phases t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.phases []
  |> List.sort compare

let reset t =
  t.total <- 0;
  Hashtbl.reset t.phases

let merge_into src dst =
  List.iter (fun (phase, r) -> charge dst ~phase r) (phases src)

(* The ledger phase every replayed or retried round is charged to — the
   fault layer's verify-and-retry driver and the shard supervisor's
   round replay both use it, so recovery overhead is one line item. *)
let recovery_phase = "recovery"

let lenzen_routing_rounds = 16

let broadcast_rounds = 1

let matvec_rounds = 1

let apsp_rounds n =
  int_of_float (Float.ceil (float_of_int (max n 2) ** 0.158))

let log2_ceil k =
  if k <= 1 then 0
  else begin
    let rec loop acc v = if v >= k then acc else loop (acc + 1) (v * 2) in
    loop 0 1
  end

let gather_rounds ~n ~m ~bits_per_edge =
  (* Every node must learn all m edges. A node can receive n-1 words of
     ⌈log n⌉ bits per round, so m edges of w words take ⌈m·w/(n-1)⌉ rounds
     (Lenzen routing makes this exact up to the constant). *)
  let word_bits = max 1 (log2_ceil n) in
  let words = max 1 ((bits_per_edge + word_bits - 1) / word_bits) in
  let per_round = max 1 (n - 1) in
  ((m * words) + per_round - 1) / per_round

let bcast_gather_rounds ~n ~m ~bits_per_edge =
  (* The broadcast twin: per round the air carries n broadcast words and
     every node hears all of them, so receive bandwidth — the binding
     resource of a gather — is the same as unicast up to n/(n-1). The m
     edges are spread one word per node per round: ⌈m·w/n⌉ rounds. *)
  let word_bits = max 1 (log2_ceil n) in
  let words = max 1 ((bits_per_edge + word_bits - 1) / word_bits) in
  ((m * words) + n - 1) / max 1 n
