(* Dynamic model-compliance sanitizer. When enabled on a runtime
   (explicitly or via CC_SANITIZE=1), every communication call and analytic
   charge is (1) pre-checked against the per-link width bound with the
   offending phase in the error, (2) folded into two running FNV-1a
   transcript hashes, and (3) cross-checked for drift between the transport
   round counter and the Cost ledger and for rounds leaking into the
   default "main" phase after setup. *)

exception Violation of { phase : string; kind : string; detail : string }

let () =
  Printexc.register_printer (function
    | Violation { phase; kind; detail } ->
      Some
        (Printf.sprintf "Runtime.Sanitize.Violation(%s in phase %S: %s)" kind
           phase detail)
    | _ -> None)

let violation ~phase ~kind fmt =
  Printf.ksprintf
    (fun detail -> raise (Violation { phase; kind; detail }))
    fmt

(* ------------------------------------------------------- enabling logic *)

let env_var = "CC_SANITIZE"

let forced : bool option ref = ref None

let set_default b = forced := b

let enabled_default () =
  match !forced with
  | Some b -> b
  | None -> (
    match Sys.getenv_opt env_var with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

(* ------------------------------------------------------------ FNV-1a 64 *)

(* One shared fold for transcripts and frame checksums: [Wire.Fnv] keeps
   the historical encodings (ints as 8 sign-extended LE bytes, strings
   0xff-terminated), so transcript hashes are unchanged by the move. *)

let fnv_offset = Wire.Fnv.offset

let hash_int = Wire.Fnv.add_int

let hash_string = Wire.Fnv.add_string

let hash_ints = Wire.Fnv.add_ints

(* ------------------------------------------------------------ the state *)

type op = Exchange | Route | Broadcast | Charge

let op_code = function Exchange -> 1 | Route -> 2 | Broadcast -> 3 | Charge -> 4

let op_name = function
  | Exchange -> "exchange"
  | Route -> "route"
  | Broadcast -> "broadcast"
  | Charge -> "charge"

type transcript = { events : int; shape_hash : int64; content_hash : int64 }

type t = {
  mutable n_events : int;
  mutable shape : int64;
  mutable content : int64;
  mutable named_phase_seen : bool;
}

let create () =
  {
    n_events = 0;
    shape = fnv_offset;
    content = fnv_offset;
    named_phase_seen = false;
  }

let transcript t =
  { events = t.n_events; shape_hash = t.shape; content_hash = t.content }

let default_phase = "main"

(* ---------------------------------------------------- event description *)

(* [sizes] is the multiset of payload widths (sorted before hashing, so the
   shape hash is invariant under node-identifier permutations: a relabelled
   run of a label-oblivious deterministic algorithm sends the same multiset
   of message sizes in every round). [content] additionally pins endpoints
   and payload words, so it is the run-twice bit-identity check. *)

let exchange_event outboxes =
  let sizes = ref [] and content = ref [] in
  Array.iteri
    (fun src msgs ->
      List.iter
        (fun (dst, payload) ->
          let w = Array.length payload in
          sizes := w :: !sizes;
          content := src :: dst :: w :: Array.to_list payload @ !content)
        msgs)
    outboxes;
  (!sizes, !content)

let route_event msgs =
  let sizes = ref [] and content = ref [] in
  List.iter
    (fun (src, dst, payload) ->
      let w = Array.length payload in
      sizes := w :: !sizes;
      content := src :: dst :: w :: Array.to_list payload @ !content)
    msgs;
  (!sizes, !content)

let broadcast_event values =
  let sizes = ref [] and content = ref [] in
  Array.iteri
    (fun v payload ->
      let w = Array.length payload in
      sizes := w :: !sizes;
      content := v :: w :: Array.to_list payload @ !content)
    values;
  (!sizes, !content)

let record t ~phase ~op ~width ~rounds ~words ~sizes ~content =
  t.n_events <- t.n_events + 1;
  let shape = t.shape in
  let shape = hash_string shape phase in
  let shape = hash_int shape (op_code op) in
  let shape = hash_int shape width in
  let shape = hash_int shape rounds in
  let shape = hash_int shape words in
  let shape = hash_int shape (List.length sizes) in
  t.shape <- hash_ints shape (List.sort compare sizes);
  let c = t.content in
  let c = hash_string c phase in
  let c = hash_int c (op_code op) in
  let c = hash_int c width in
  let c = hash_int c rounds in
  let c = hash_int c words in
  t.content <- hash_ints c content

(* -------------------------------------------------------------- checks *)

let check_exchange ~phase ~width outboxes =
  let pair_words = Hashtbl.create 64 in
  Array.iteri
    (fun src msgs ->
      List.iter
        (fun (dst, payload) ->
          let w = Array.length payload in
          let key = (src, dst) in
          let cur =
            match Hashtbl.find_opt pair_words key with Some c -> c | None -> 0
          in
          let total = cur + w in
          if total > width then
            violation ~phase ~kind:"width"
              "exchange sends %d words over link (%d,%d), width bound is %d"
              total src dst width;
          Hashtbl.replace pair_words key total)
        msgs)
    outboxes;
  (* Second pass: a sender listing the same destination twice in one
     outbox is almost always a program bug (the kernel would silently
     concatenate the payloads into one round). Runs after the width pass so
     an outbox that is both duplicated and oversized reports the width
     violation first, as it always has. *)
  Array.iteri
    (fun src msgs ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (dst, _) ->
          if Hashtbl.mem seen dst then
            violation ~phase ~kind:"duplicate-dst"
              "exchange outbox of node %d lists destination %d more than \
               once; merge the payloads into one message"
              src dst;
          Hashtbl.add seen dst ())
        msgs)
    outboxes

let check_exchange_broadcast ~phase ~width outboxes =
  (* Width pass first, mirroring [check_exchange]: an outbox that is both
     oversized and multi-payload reports the width violation. *)
  Array.iteri
    (fun src msgs ->
      List.iter
        (fun (_, payload) ->
          let w = Array.length payload in
          if w > width then
            violation ~phase ~kind:"width"
              "broadcast-model payload of %d words at node %d exceeds width \
               %d"
              w src width)
        msgs)
    outboxes;
  (* Broadcast width rule: one distinct payload per source per round. A
     source may list many destinations (or repeat one), but every listed
     payload must be the same words — that is the message everyone hears. *)
  Array.iteri
    (fun src msgs ->
      let distinct = ref [] in
      List.iter
        (fun (_, payload) ->
          if not (List.exists (fun p -> p = payload) !distinct) then
            distinct := payload :: !distinct)
        msgs;
      let k = List.length !distinct in
      if k > 1 then
        violation ~phase ~kind:"broadcast-width"
          "node %d ships %d distinct payloads in one round; the broadcast \
           model allows one payload per source per round"
          src k)
    outboxes

let check_route ~phase ~width msgs =
  List.iter
    (fun (src, dst, payload) ->
      let w = Array.length payload in
      if w > width then
        violation ~phase ~kind:"width"
          "routed payload of %d words from %d to %d exceeds width %d" w src
          dst width)
    msgs

let check_broadcast ~phase ~width values =
  Array.iteri
    (fun v payload ->
      let w = Array.length payload in
      if w > width then
        violation ~phase ~kind:"width"
          "broadcast payload of %d words at node %d exceeds width %d" w v
          width)
    values

let check_phase t ~phase ~op ~rounds =
  if rounds > 0 then begin
    if phase = default_phase && t.named_phase_seen then
      violation ~phase ~kind:"phase-attribution"
        "%d rounds (%s) charged under the default %S phase after setup; \
         wrap the call in with_phase or pass ~phase"
        rounds (op_name op) default_phase
    else if phase <> default_phase then t.named_phase_seen <- true
  end

let check_drift ~phase ~ledger ~transport =
  if ledger <> transport then
    violation ~phase ~kind:"ledger-drift"
      "cost ledger has %d rounds but the transport counter moved %d; some \
       rounds bypassed the runtime"
      ledger transport
