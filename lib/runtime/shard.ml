(* Shard-aware partitioning of the clique (DESIGN.md §11). Node IDs are
   split into CC_SHARDS contiguous ranges — the same fixed partition the
   domain pool uses ([Pool.chunk_bounds]) — and all the order-sensitive
   logic of multi-process delivery lives here, free of any I/O:

   - the coordinator-side split of a round's outboxes by source shard,
     tagging every message with its global arrival index [gidx] (the
     position the in-process kernels would process it at: src ascending,
     outbox order);
   - the worker-side regrouping of local + peer traffic back into per-source
     outboxes, in exactly that order, so the existing arena kernel delivers
     bit-identical inbox slices;
   - the first-error selection that reproduces the in-process kernels'
     error behavior across process boundaries: of all range and width
     violations found anywhere, the one with the minimal [gidx] wins,
     because that is the message a single-process walk would have tripped
     on first. *)

let env_var = "CC_SHARDS"

let forced : int option ref = ref None

let set_default k = forced := k

let default_shards () =
  match !forced with
  | Some k -> max 1 k
  | None -> (
    match Sys.getenv_opt env_var with
    | Some s -> ( match int_of_string_opt s with Some k when k > 0 -> k | _ -> 1)
    | None -> 1)

exception Shard_down of { shard : int; round : int; during : string }

let () =
  Printexc.register_printer (function
    | Shard_down { shard; round; during } ->
      Some
        (Printf.sprintf
           "Runtime.Shard.Shard_down(shard %d went away during %s at round %d)"
           shard during round)
    | _ -> None)

let bounds ~shards ~n s = Pool.chunk_bounds ~size:shards ~n s

(* owners.(v) = the shard whose [bounds] range contains node v. *)
let owners ~shards ~n =
  let tbl = Array.make n 0 in
  for s = 0 to shards - 1 do
    let lo, hi = bounds ~shards ~n s in
    for v = lo to hi - 1 do
      tbl.(v) <- s
    done
  done;
  tbl

type msg = { gidx : int; src : int; dst : int; pay : int array }

type split = {
  by_src_shard : msg list array;
  expect : bool array array;
  words : int;
  crossings : int;
  messages : int;
  range_error : (int * string) option;
}

let split_exchange ~owner ~shards ~n ~width outboxes =
  if Array.length outboxes <> n then
    invalid_arg "Mailbox.deliver: outbox array length mismatch";
  let acc = Array.make shards [] in
  let traffic = Array.make (shards * shards) false in
  let words = ref 0 and crossings = ref 0 and messages = ref 0 in
  let gidx = ref 0 in
  let range_error = ref None in
  (* The walk stops recording at the first out-of-range destination: the
     in-process kernels raise there, so no later message may influence any
     observable outcome (a width overflow after it must lose the min-gidx
     race anyway, and delivery never happens). *)
  (try
     for src = 0 to n - 1 do
       List.iter
         (fun (dst, pay) ->
           if dst < 0 || dst >= n then begin
             range_error :=
               Some
                 ( !gidx,
                   Printf.sprintf
                     "Mailbox.deliver: destination %d out of range (src=%d, \
                      phase=%S, width=%d)"
                     dst src (Mailbox.current_context ()) width );
             raise Exit
           end;
           let s = owner.(src) and d = owner.(dst) in
           acc.(s) <- { gidx = !gidx; src; dst; pay } :: acc.(s);
           traffic.((s * shards) + d) <- true;
           if s <> d then incr crossings;
           words := !words + Array.length pay;
           incr messages;
           incr gidx)
         outboxes.(src)
     done
   with Exit -> ());
  let expect =
    Array.init shards (fun d ->
        Array.init shards (fun s -> s <> d && traffic.((s * shards) + d)))
  in
  {
    by_src_shard = Array.map List.rev acc;
    expect;
    words = !words;
    crossings = !crossings;
    messages = !messages;
    range_error = !range_error;
  }

(* Worker side: its own sources' messages regrouped by destination shard,
   preserving gidx order within each group. *)
let partition_by_dst ~owner ~shards msgs =
  let acc = Array.make shards [] in
  List.iter (fun m -> acc.(owner.(m.dst)) <- m :: acc.(owner.(m.dst))) msgs;
  Array.map List.rev acc

let compare_gidx a b = compare a.gidx b.gidx

(* Merge the worker's inbound message lists (each gidx-ascending) into one
   gidx-ascending stream. gidx order equals (src, outbox position) order —
   the exact walk order of [Mailbox.deliver] and [Arena.deliver]. *)
let merge_inbound lists = List.sort compare_gidx (List.concat lists)

type overflow = { gidx : int; src : int; dst : int; words : int; width : int }

(* First width overflow of the worker's inbound stream, in gidx order.
   Every message of an ordered pair (src, dst) lands on dst's shard, so
   per-pair accumulation is complete here and the local first overflow is
   the global first for pairs this worker owns. *)
let first_overflow ~n ~width msgs =
  let pair_words = Hashtbl.create 64 in
  let rec scan = function
    | [] -> None
    | (m : msg) :: rest ->
      let key = (m.src * n) + m.dst in
      let cur = match Hashtbl.find_opt pair_words key with Some c -> c | None -> 0 in
      let total = cur + Array.length m.pay in
      if total > width then
        Some { gidx = m.gidx; src = m.src; dst = m.dst; words = total; width }
      else begin
        Hashtbl.replace pair_words key total;
        scan rest
      end
  in
  scan msgs

type delivery =
  | Inboxes of (int * int array) list array  (** per dst in [lo, hi), arena order *)
  | Overflow of overflow

(* Rebuild per-source outboxes from the gidx-ascending stream and run the
   local arena over them. Restricted to destinations in [lo, hi) the
   rebuilt walk order equals the global walk order, so the arena's inbox
   slices — including their reverse-arrival list order — are bit-identical
   to the slices a single-process delivery would produce. *)
let deliver_local ~arena ~n ~width ~lo ~hi msgs =
  match first_overflow ~n ~width msgs with
  | Some o -> Overflow o
  | None ->
    let outboxes = Array.make n [] in
    List.iter
      (fun (m : msg) -> outboxes.(m.src) <- (m.dst, m.pay) :: outboxes.(m.src))
      msgs;
    Array.iteri (fun s l -> outboxes.(s) <- List.rev l) outboxes;
    let inboxes, _words = Arena.deliver arena ~width outboxes in
    Inboxes (Array.sub inboxes lo (hi - lo))
