(* Shard-aware partitioning of the clique (DESIGN.md §11). Node IDs are
   split into CC_SHARDS contiguous ranges — the same fixed partition the
   domain pool uses ([Pool.chunk_bounds]) — and all the order-sensitive
   logic of multi-process delivery lives here, free of any I/O:

   - the coordinator-side split of a round's outboxes by source shard,
     tagging every message with its global arrival index [gidx] (the
     position the in-process kernels would process it at: src ascending,
     outbox order);
   - the worker-side regrouping of local + peer traffic back into per-source
     outboxes, in exactly that order, so the existing arena kernel delivers
     bit-identical inbox slices;
   - the first-error selection that reproduces the in-process kernels'
     error behavior across process boundaries: of all range and width
     violations found anywhere, the one with the minimal [gidx] wins,
     because that is the message a single-process walk would have tripped
     on first. *)

let env_var = "CC_SHARDS"

let forced : int option ref = ref None

let set_default k = forced := k

let default_shards () =
  match !forced with
  | Some k -> max 1 k
  | None -> (
    match Sys.getenv_opt env_var with
    | Some s -> ( match int_of_string_opt s with Some k when k > 0 -> k | _ -> 1)
    | None -> 1)

(* ------------------------------------------------- supervision policy *)

type policy = Fail | Respawn | Drain

let policy_env = "CC_SHARD_POLICY"

let timeout_env = "CC_SHARD_TIMEOUT"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "fail" -> Some Fail
  | "respawn" -> Some Respawn
  | "drain" -> Some Drain
  | _ -> None

let policy_to_string = function
  | Fail -> "fail"
  | Respawn -> "respawn"
  | Drain -> "drain"

let forced_policy : policy option ref = ref None

let set_default_policy p = forced_policy := p

(* An unrecognized CC_SHARD_POLICY value falls back to fail-stop: the
   conservative default is the one whose behaviour a surprised operator
   already expects from the pre-supervision transport. *)
let default_policy () =
  match !forced_policy with
  | Some p -> p
  | None -> (
    match Sys.getenv_opt policy_env with
    | Some s -> ( match policy_of_string s with Some p -> p | None -> Fail)
    | None -> Fail)

let forced_timeout : float option ref = ref None

let set_default_timeout x = forced_timeout := x

let default_timeout () =
  match !forced_timeout with
  | Some x -> x
  | None -> (
    match Sys.getenv_opt timeout_env with
    | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some x when x > 0.0 -> x
      | _ -> 30.0)
    | None -> 30.0)

exception Shard_down of { shard : int; round : int; during : string }

let () =
  Printexc.register_printer (function
    | Shard_down { shard; round; during } ->
      Some
        (Printf.sprintf
           "Runtime.Shard.Shard_down(shard %d went away during %s at round %d)"
           shard during round)
    | _ -> None)

let bounds ~shards ~n s = Pool.chunk_bounds ~size:shards ~n s

(* owners.(v) = the shard whose [bounds] range contains node v. *)
let owners ~shards ~n =
  let tbl = Array.make n 0 in
  for s = 0 to shards - 1 do
    let lo, hi = bounds ~shards ~n s in
    for v = lo to hi - 1 do
      tbl.(v) <- s
    done
  done;
  tbl

(* Epoch-versioned live partition, the data structure behind the drain
   policy. Starts as the fixed [bounds] partition at epoch 1; every
   supervision event bumps the epoch, and draining a shard merges its
   node range into the nearest live neighbour so the concatenation of
   live ranges always covers [0, n) contiguously — which is what lets a
   survivor's [deliver_local] keep using a plain [Array.sub] slice. *)
module Partition = struct
  type t = {
    n : int;
    ranges : (int * int) array;
    alive : bool array;
    epoch : int;
  }

  let create ~shards ~n =
    if shards < 1 then invalid_arg "Shard.Partition.create: shards < 1";
    {
      n;
      ranges = Array.init shards (fun s -> bounds ~shards ~n s);
      alive = Array.make shards true;
      epoch = 1;
    }

  let shards t = Array.length t.ranges

  let n t = t.n

  let epoch t = t.epoch

  let alive t s = t.alive.(s)

  let bounds t s = t.ranges.(s)

  let live t =
    Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive

  let live_list t =
    let acc = ref [] in
    for s = Array.length t.alive - 1 downto 0 do
      if t.alive.(s) then acc := s :: !acc
    done;
    !acc

  (* owners.(v) over the live ranges only. With every shard alive this is
     exactly [owners ~shards ~n]. *)
  let owners t =
    let tbl = Array.make t.n (-1) in
    Array.iteri
      (fun s (lo, hi) ->
        if t.alive.(s) then
          for v = lo to hi - 1 do
            tbl.(v) <- s
          done)
      t.ranges;
    tbl

  let bump t = { t with epoch = t.epoch + 1 }

  (* Mark shard [d] dead and hand its node range to the nearest live
     predecessor (extending that range upward) or, when no live shard
     precedes it, the nearest live successor (extending downward). The
     drained shard keeps an empty range at the new boundary, so repeated
     drains preserve the invariant that live ranges concatenate to
     [0, n). Epoch is bumped. Raises [Invalid_argument] if [d] is already
     dead or if it is the last live shard — the caller must check [live]
     and fail the session rather than drain into nothing. *)
  let drain t d =
    if d < 0 || d >= shards t then invalid_arg "Shard.Partition.drain: bad shard";
    if not t.alive.(d) then invalid_arg "Shard.Partition.drain: already dead";
    if live t <= 1 then invalid_arg "Shard.Partition.drain: no survivor";
    let alive = Array.copy t.alive in
    let ranges = Array.copy t.ranges in
    alive.(d) <- false;
    let lo, hi = ranges.(d) in
    if hi > lo then begin
      let pred = ref (-1) in
      for s = d - 1 downto 0 do
        if !pred < 0 && alive.(s) then pred := s
      done;
      if !pred >= 0 then begin
        let plo, _phi = ranges.(!pred) in
        ranges.(!pred) <- (plo, hi);
        ranges.(d) <- (hi, hi)
      end
      else begin
        let succ = ref (-1) in
        for s = shards t - 1 downto d + 1 do
          if alive.(s) then succ := s
        done;
        (* [live t > 1] guarantees a successor exists here. *)
        let _slo, shi = ranges.(!succ) in
        ranges.(!succ) <- (lo, shi);
        ranges.(d) <- (lo, lo)
      end
    end;
    { t with alive; ranges; epoch = t.epoch + 1 }
end

type msg = { gidx : int; src : int; dst : int; pay : int array }

type split = {
  by_src_shard : msg list array;
  expect : bool array array;
  words : int;
  crossings : int;
  messages : int;
  range_error : (int * string) option;
}

let split_exchange ~owner ~shards ~n ~width outboxes =
  if Array.length outboxes <> n then
    invalid_arg "Mailbox.deliver: outbox array length mismatch";
  let acc = Array.make shards [] in
  let traffic = Array.make (shards * shards) false in
  let words = ref 0 and crossings = ref 0 and messages = ref 0 in
  let gidx = ref 0 in
  let range_error = ref None in
  (* The walk stops recording at the first out-of-range destination: the
     in-process kernels raise there, so no later message may influence any
     observable outcome (a width overflow after it must lose the min-gidx
     race anyway, and delivery never happens). *)
  (try
     for src = 0 to n - 1 do
       List.iter
         (fun (dst, pay) ->
           if dst < 0 || dst >= n then begin
             range_error :=
               Some
                 ( !gidx,
                   Printf.sprintf
                     "Mailbox.deliver: destination %d out of range (src=%d, \
                      phase=%S, width=%d)"
                     dst src (Mailbox.current_context ()) width );
             raise Exit
           end;
           let s = owner.(src) and d = owner.(dst) in
           acc.(s) <- { gidx = !gidx; src; dst; pay } :: acc.(s);
           traffic.((s * shards) + d) <- true;
           if s <> d then incr crossings;
           words := !words + Array.length pay;
           incr messages;
           incr gidx)
         outboxes.(src)
     done
   with Exit -> ());
  let expect =
    Array.init shards (fun d ->
        Array.init shards (fun s -> s <> d && traffic.((s * shards) + d)))
  in
  {
    by_src_shard = Array.map List.rev acc;
    expect;
    words = !words;
    crossings = !crossings;
    messages = !messages;
    range_error = !range_error;
  }

(* Worker side: its own sources' messages regrouped by destination shard,
   preserving gidx order within each group. *)
let partition_by_dst ~owner ~shards msgs =
  let acc = Array.make shards [] in
  List.iter (fun m -> acc.(owner.(m.dst)) <- m :: acc.(owner.(m.dst))) msgs;
  Array.map List.rev acc

let compare_gidx a b = compare a.gidx b.gidx

(* Merge the worker's inbound message lists (each gidx-ascending) into one
   gidx-ascending stream. gidx order equals (src, outbox position) order —
   the exact walk order of [Mailbox.deliver] and [Arena.deliver]. *)
let merge_inbound lists = List.sort compare_gidx (List.concat lists)

type overflow = { gidx : int; src : int; dst : int; words : int; width : int }

(* First width overflow of the worker's inbound stream, in gidx order.
   Every message of an ordered pair (src, dst) lands on dst's shard, so
   per-pair accumulation is complete here and the local first overflow is
   the global first for pairs this worker owns. *)
let first_overflow ~n ~width msgs =
  let pair_words = Hashtbl.create 64 in
  let rec scan = function
    | [] -> None
    | (m : msg) :: rest ->
      let key = (m.src * n) + m.dst in
      let cur = match Hashtbl.find_opt pair_words key with Some c -> c | None -> 0 in
      let total = cur + Array.length m.pay in
      if total > width then
        Some { gidx = m.gidx; src = m.src; dst = m.dst; words = total; width }
      else begin
        Hashtbl.replace pair_words key total;
        scan rest
      end
  in
  scan msgs

type delivery =
  | Inboxes of (int * int array) list array  (** per dst in [lo, hi), arena order *)
  | Overflow of overflow

(* Rebuild per-source outboxes from the gidx-ascending stream and run the
   local arena over them. Restricted to destinations in [lo, hi) the
   rebuilt walk order equals the global walk order, so the arena's inbox
   slices — including their reverse-arrival list order — are bit-identical
   to the slices a single-process delivery would produce. *)
let deliver_local ~arena ~n ~width ~lo ~hi msgs =
  match first_overflow ~n ~width msgs with
  | Some o -> Overflow o
  | None ->
    let outboxes = Array.make n [] in
    List.iter
      (fun (m : msg) -> outboxes.(m.src) <- (m.dst, m.pay) :: outboxes.(m.src))
      msgs;
    Array.iteri (fun s l -> outboxes.(s) <- List.rev l) outboxes;
    let inboxes, _words = Arena.deliver arena ~width outboxes in
    Inboxes (Array.sub inboxes lo (hi - lo))
