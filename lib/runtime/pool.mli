(** A persistent domain pool for intra-round parallelism.

    Node programs within one synchronous round are independent by the
    model's definition, so a runtime may evaluate per-node steps on
    several OCaml domains ([Runtime.S.exchange_map]). Pools are process
    global and cached by size: the worker domains are spawned once on
    first use and parked on a condition variable between jobs, so a round
    costs two lock round-trips, not a domain spawn. All pools are joined
    at process exit.

    Determinism: {!run} always partitions [0..n-1] into [size] fixed
    contiguous chunks ([chunk_bounds]); each worker writes only to the
    slots of its own chunk, and {!run} returns only after every chunk
    completed — so the filled result array is independent of scheduling,
    and a parallel run is bit-identical to a sequential one. *)

type t
(** A pool of worker domains (the caller counts as worker 0). *)

val env_var : string
(** ["CC_DOMAINS"] — the shard coordinator pins it in worker environments
    so [set_default] forcings survive the exec. *)

val default_domains : unit -> int
(** The domain count a runtime uses when [create] omits [~domains]: the
    value forced by {!set_default} if any, else the [CC_DOMAINS]
    environment variable when set to a positive integer, else 1. *)

val set_default : int option -> unit
(** Force (or, with [None], unforce) the {!default_domains} result —
    the test-suite hook, overriding the environment. *)

val get : int -> t
(** [get k] returns the process-wide pool of [k] domains, spawning its
    [k-1] workers on first request. [k <= 1] yields the sequential pool
    (no domains are ever spawned for it). *)

val size : t -> int
(** Total parallelism including the caller, ≥ 1. *)

val chunk_bounds : size:int -> n:int -> int -> int * int
(** [chunk_bounds ~size ~n w] is the half-open range [(lo, hi)] of items
    worker [w] processes out of [0..n-1] — the fixed balanced partition
    [lo = w*n/size], [hi = (w+1)*n/size]. *)

val shutdown_all : unit -> unit
(** Stop and join every spawned pool and forget them; the next {!get}
    spawns afresh. Runs automatically at process exit. A runtime still
    holding a shut-down pool degrades safely: {!run} detects the stop
    flag and executes the identical fixed chunk schedule sequentially. *)

val reset_after_fork : unit -> unit
(** Drop every inherited pool record without joining — the parent's
    domains do not exist in a forked child. Call first thing after
    [Unix.fork] in any process that intends to keep running OCaml code
    (note that OCaml 5 forbids [fork] once any domain was ever spawned;
    the shard runtime therefore spawns workers by re-exec instead). *)

val run : t -> n:int -> (int -> int -> unit) -> unit
(** [run t ~n f] calls [f lo hi] once per chunk of the fixed partition of
    [0..n-1], chunks executing concurrently on the pool's domains (the
    caller runs chunk 0). [f] must only write state owned by its own
    chunk. Exceptions raised by any chunk are re-raised in the caller
    after all chunks finished. Not reentrant: [f] must not call {!run} on
    the same pool. *)
