(* Persistent domain pools (DESIGN.md §10). One pool per requested size,
   created lazily and kept for the process lifetime; workers park on a
   condition variable between jobs. The job protocol is generation-counted:
   publishing a job bumps [gen], each worker runs it exactly once and
   reports back through [pending]. *)

let env_var = "CC_DOMAINS"

let forced : int option ref = ref None

(* Set during process bootstrap (shard workers pin their domain count
   before the first pool exists), never while workers run. *)
let set_default d = forced := d (* cc_lint: allow L11 — bootstrap-only, precedes any domain *)

let default_domains () =
  match !forced with
  | Some d -> max 1 d
  | None -> (
    match Sys.getenv_opt env_var with
    | Some s -> ( match int_of_string_opt s with Some d when d > 0 -> d | _ -> 1)
    | None -> 1)

type shared = {
  m : Mutex.t;
  cv : Condition.t;
  mutable job : int -> int -> unit;
  mutable job_n : int;
  mutable gen : int;
  mutable pending : int;
  mutable failed : exn option;
  mutable stop : bool;
}

type t = {
  size : int;
  shared : shared option;
  domains : unit Domain.t array;
}

let size t = t.size

let chunk_bounds ~size ~n w = (w * n / size, (w + 1) * n / size)

(* Worker [w] of a [size]-wide pool: park until a new generation appears,
   run the fixed chunk, report completion. The first exception of a
   generation wins; the others are dropped (the caller re-raises one). *)
let worker shared ~size w () =
  let last = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock shared.m;
    while (not shared.stop) && shared.gen = !last do
      Condition.wait shared.cv shared.m
    done;
    if shared.stop then begin
      Mutex.unlock shared.m;
      continue := false
    end
    else begin
      last := shared.gen;
      let f = shared.job and n = shared.job_n in
      Mutex.unlock shared.m;
      (try
         let lo, hi = chunk_bounds ~size ~n w in
         f lo hi
       with e ->
         Mutex.lock shared.m;
         if shared.failed = None then shared.failed <- Some e;
         Mutex.unlock shared.m);
      Mutex.lock shared.m;
      shared.pending <- shared.pending - 1;
      if shared.pending = 0 then Condition.broadcast shared.cv;
      Mutex.unlock shared.m
    end
  done

(* Pool registry: only the main domain creates, looks up, or resets pools
   ([get] is called from runtime construction, never from a worker), so
   the plain Hashtbl is race-free; the L11 markers record that invariant
   at each write site. *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4

let exit_hook_registered = Atomic.make false

let sequential = { size = 1; shared = None; domains = [||] }

let shutdown_all () =
  Hashtbl.iter
    (fun _ p ->
      match p.shared with
      | None -> ()
      | Some s ->
        Mutex.lock s.m;
        s.stop <- true;
        Condition.broadcast s.cv;
        Mutex.unlock s.m;
        Array.iter Domain.join p.domains)
    pools;
  Hashtbl.reset pools

(* In a forked child the parent's domains do not exist (fork copies only
   the calling thread), so the inherited pool records are dead weight that
   must never be joined or signaled. Dropping them lets the child spawn
   fresh pools lazily. *)
let reset_after_fork () = Hashtbl.reset pools (* cc_lint: allow L11 — child is single-threaded at this point *)

let spawn k =
  let shared =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      job = (fun _ _ -> ());
      job_n = 0;
      gen = 0;
      pending = 0;
      failed = None;
      stop = false;
    }
  in
  let domains =
    Array.init (k - 1) (fun w -> Domain.spawn (worker shared ~size:k (w + 1)))
  in
  if not (Atomic.exchange exit_hook_registered true) then at_exit shutdown_all;
  { size = k; shared = Some shared; domains }

let get k =
  if k <= 1 then sequential
  else
    match Hashtbl.find_opt pools k with
    | Some p -> p
    | None ->
      let p = spawn k in
      Hashtbl.replace pools k p; (* cc_lint: allow L11 — pools are created on the main domain only *)
      p

(* Publish a job generation and run chunk 0 on the caller; entered with
   [s.m] held. *)
let run_parallel s ~size:k ~n f =
    s.job <- f;
    s.job_n <- n;
    s.pending <- k - 1;
    s.failed <- None;
    s.gen <- s.gen + 1;
    Condition.broadcast s.cv;
    Mutex.unlock s.m;
    let caller_exn =
      let lo, hi = chunk_bounds ~size:k ~n 0 in
      try
        f lo hi;
        None
      with e -> Some e
    in
    Mutex.lock s.m;
    while s.pending > 0 do
      Condition.wait s.cv s.m
    done;
    let worker_exn = s.failed in
    Mutex.unlock s.m;
    (match caller_exn with Some e -> raise e | None -> ());
    (match worker_exn with Some e -> raise e | None -> ())

let run t ~n f =
  match t.shared with
  | None -> f 0 n
  | Some s ->
    let k = t.size in
    Mutex.lock s.m;
    if s.stop then begin
      (* The pool was shut down after this handle was captured (e.g. by
         the at-exit hook, or an explicit [shutdown_all]): run the same
         fixed chunk schedule sequentially — bit-identical results, no
         domains involved. *)
      Mutex.unlock s.m;
      for w = 0 to k - 1 do
        let lo, hi = chunk_bounds ~size:k ~n w in
        f lo hi
      done
    end
    else run_parallel s ~size:k ~n f
