(** Shared delivery and bandwidth-check core of every {!Transport.S}
    instance. The kernels ([Sim], [Congest]) differ only in which ordered
    pairs may talk — expressed through the [?check] callback — and in how
    they count rounds; the per-pair word accounting, load computation, and
    batching arithmetic live here exactly once. *)

exception
  Bandwidth_exceeded of {
    src : int;
    dst : int;
    words : int;
    width : int;
    phase : string;
  }
(** A round would carry more than [width] words over the ordered pair
    [(src, dst)] ([dst = -1] for a broadcast payload that is itself too
    wide). [phase] is the runtime phase current when the delivery ran (see
    {!set_context}), so the error names where in the pipeline it fired. A
    printer is registered: uncaught, the exception prints all five
    fields. *)

val set_context : string -> unit
(** [set_context phase] records the phase delivery errors should name.
    Called by [Runtime.Make] around every transport call; defaults to
    ["main"]. *)

val current_context : unit -> string
(** The phase last recorded with {!set_context} (phase-scoped fault
    schedules read it to decide whether a rule applies). *)

val deliver :
  n:int ->
  width:int ->
  ?check:(src:int -> dst:int -> unit) ->
  (int * int array) list array ->
  (int * int array) list array * int
(** [deliver ~n ~width outboxes] performs one round's worth of delivery:
    validates destinations, runs [check] on every (src, dst) pair (the hook
    where [Congest] rejects non-edges), enforces that the words accumulated
    over each ordered pair stay ≤ [width], and returns
    [(inboxes, total_words)]. *)

val route :
  n:int ->
  width:int ->
  ?check:(src:int -> dst:int -> unit) ->
  (int * int * int array) list ->
  (int * int array) list array * int * int
(** [route ~n ~width msgs] delivers an arbitrary [(src, dst, payload)]
    multiset and returns [(inboxes, total_words, batches)] where
    [batches = max 1 ⌈load / (n·width)⌉] and [load] is the maximum number of
    words any single node sends or receives. A single payload wider than
    [width] words does not fit any message and raises
    {!Bandwidth_exceeded}. *)

val broadcast :
  n:int -> width:int -> int array array -> int array array * int
(** [broadcast ~n ~width values] checks every [values.(v)] fits in [width]
    words and returns [(copy of values, total_words)] with
    [total_words = Σ (n-1)·|values.(v)|]. *)
