(* Communication-model selector: unicast clique vs broadcast congested
   clique (FV22, arXiv:2205.12059). The charged pipelines take the model
   as a value; transports declare their width rule via [Transport.S.unicast].
   Selection precedence mirrors the other runtime knobs (CC_KERNEL,
   CC_DOMAINS): forced override first, then the environment. *)

type t = Unicast | Broadcast

let env_var = "CC_MODEL"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "broadcast" | "bcast" -> Some Broadcast
  | "unicast" | "clique" -> Some Unicast
  | _ -> None

let forced : t option ref = ref None
let set_default m = forced := m

let default () =
  match !forced with
  | Some m -> m
  | None -> (
      match Sys.getenv_opt env_var with
      | None -> Unicast
      | Some s -> ( match of_string s with Some m -> m | None -> Unicast))

let name = function Unicast -> "unicast" | Broadcast -> "broadcast"
