(** Dynamic model-compliance sanitizer for {!Runtime.Make}.

    The paper's claims are deterministic round bounds over O(log n)-bit
    links, so a runtime in sanitizer mode checks, on every communication
    call and analytic charge:

    - {b width}: the per-ordered-pair word bound, asserted {e before} the
      transport runs so the raised {!Violation} names the offending phase;
    - {b determinism transcripts}: two running FNV-1a (64-bit) hashes. The
      {e shape} hash folds in phase, operation, width, rounds, words, and
      the {e sorted multiset} of payload sizes — invariant under node-ID
      permutation for label-oblivious algorithms, so a test can relabel the
      input and require a bit-identical hash. The {e content} hash
      additionally pins endpoints and payload words — the run-twice
      bit-identity check.
    - {b ledger drift}: the {!Cost.t} total must equal the rounds the
      transport counter moved since the runtime was created;
    - {b phase attribution}: once any named phase has been charged, further
      rounds under the default ["main"] phase are a violation (work is
      escaping the per-phase breakdown).

    Enabled per runtime via [Runtime.Make(T).create ~sanitize:true], or
    globally with the [CC_SANITIZE=1] environment variable (values [1],
    [true], [yes], [on]); {!set_default} overrides the environment from
    test code. *)

exception Violation of { phase : string; kind : string; detail : string }
(** [kind] is one of ["width"], ["duplicate-dst"], ["broadcast-width"],
    ["phase-attribution"], ["ledger-drift"]. A printer is registered, so
    uncaught violations print readably. *)

val env_var : string
(** ["CC_SANITIZE"]. *)

val enabled_default : unit -> bool
(** What [create ?sanitize] defaults to: {!set_default}'s override if any,
    else the environment. *)

val set_default : bool option -> unit
(** [set_default (Some b)] forces the default; [set_default None] restores
    environment control. *)

type t
(** Per-runtime sanitizer state: transcript hashes plus the
    phase-attribution flag. *)

val create : unit -> t
(** Fresh sanitizer state (empty transcripts). *)

type op = Exchange | Route | Broadcast | Charge
(** The four runtime operations an event can record. *)

type transcript = { events : int; shape_hash : int64; content_hash : int64 }
(** Running determinism digests; see the module preamble for what each
    hash covers. *)

val transcript : t -> transcript
(** Snapshot of the current transcript hashes and event count. *)

val default_phase : string
(** ["main"]. *)

(** {1 Hooks called by [Runtime.Make]} *)

val exchange_event : (int * int array) list array -> int list * int list
(** [(sizes, content)] of an exchange's outboxes. *)

val route_event : (int * int * int array) list -> int list * int list
(** [(sizes, content)] of a route call's message multiset. *)

val broadcast_event : int array array -> int list * int list
(** [(sizes, content)] of a broadcast's per-node values. *)

val record :
  t ->
  phase:string ->
  op:op ->
  width:int ->
  rounds:int ->
  words:int ->
  sizes:int list ->
  content:int list ->
  unit
(** Fold one event into both transcript hashes. [sizes] is sorted
    internally; [content] is hashed in the given order. *)

val check_exchange :
  phase:string -> width:int -> (int * int array) list array -> unit
(** Pre-check an exchange's per-pair word totals against [width]; raises
    {!Violation} naming [phase] on overflow. *)

val check_exchange_broadcast :
  phase:string -> width:int -> (int * int array) list array -> unit
(** The broadcast-model width rule (DESIGN.md §13): every payload at most
    [width] words, and every source's outbox carries {e one} distinct
    payload — per-destination variation raises a ["broadcast-width"]
    {!Violation} naming [phase]. Used by runtimes whose transport says
    [unicast = false]. *)

val check_route :
  phase:string -> width:int -> (int * int * int array) list -> unit
(** Pre-check a route's payload sizes against [width]. *)

val check_broadcast : phase:string -> width:int -> int array array -> unit
(** Pre-check a broadcast's per-node value sizes against [width]. *)

val check_phase : t -> phase:string -> op:op -> rounds:int -> unit
(** Flag rounds landing on the default phase after a named phase charged
    (the phase-attribution rule). *)

val check_drift : phase:string -> ledger:int -> transport:int -> unit
(** Raise unless the ledger total equals the transport counter's movement
    (the dynamic face of lint rule L3). *)
