exception
  Bandwidth_exceeded of {
    src : int;
    dst : int;
    words : int;
    width : int;
    phase : string;
  }

(* The phase the enclosing runtime call is charging under; set by
   [Runtime.Make.wrap] around each transport call so delivery errors can
   name where in the pipeline they fired even though the mailbox itself is
   phase-oblivious. *)
let context = ref "main"

(* Written by the runtime wrapper on the coordinating domain around each
   transport call; the pool-fanned step closures only build outboxes and
   never touch the context. *)
let set_context phase = context := phase (* cc_lint: allow L11 — coordinator-domain-only phase context *)

let current_context () = !context

let () =
  Printexc.register_printer (function
    | Bandwidth_exceeded { src; dst; words; width; phase } ->
      Some
        (Printf.sprintf
           "Runtime.Mailbox.Bandwidth_exceeded(src=%d, dst=%d: %d words over \
            width %d in phase %S)"
           src dst words width phase)
    | _ -> None)

let deliver ~n ~width ?check outboxes =
  if Array.length outboxes <> n then
    invalid_arg "Mailbox.deliver: outbox array length mismatch";
  let inboxes = Array.make n [] in
  let pair_words = Hashtbl.create 64 in
  let words = ref 0 in
  Array.iteri
    (fun src msgs ->
      List.iter
        (fun (dst, payload) ->
          if dst < 0 || dst >= n then
            invalid_arg
              (Printf.sprintf
                 "Mailbox.deliver: destination %d out of range (src=%d, \
                  phase=%S, width=%d)"
                 dst src !context width);
          (match check with Some f -> f ~src ~dst | None -> ());
          let w = Array.length payload in
          (* Int key: a boxed (src, dst) tuple here allocated (and hashed
             structurally) once per message on the hot path. *)
          let key = (src * n) + dst in
          let cur = try Hashtbl.find pair_words key with Not_found -> 0 in
          let total = cur + w in
          if total > width then
            raise
              (Bandwidth_exceeded
                 { src; dst; words = total; width; phase = !context });
          Hashtbl.replace pair_words key total;
          words := !words + w;
          inboxes.(dst) <- (src, payload) :: inboxes.(dst))
        msgs)
    outboxes;
  (inboxes, !words)

let route ~n ~width ?check msgs =
  let sent = Array.make n 0 in
  let received = Array.make n 0 in
  let inboxes = Array.make n [] in
  let words = ref 0 in
  List.iter
    (fun (src, dst, payload) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg
          (Printf.sprintf
             "Mailbox.route: endpoint out of range (src=%d, dst=%d, phase=%S, \
              width=%d)"
             src dst !context width);
      (match check with Some f -> f ~src ~dst | None -> ());
      let w = Array.length payload in
      if w > width then
        raise
          (Bandwidth_exceeded { src; dst; words = w; width; phase = !context });
      sent.(src) <- sent.(src) + w;
      received.(dst) <- received.(dst) + w;
      words := !words + w;
      inboxes.(dst) <- (src, payload) :: inboxes.(dst))
    msgs;
  let max_load = ref 0 in
  for v = 0 to n - 1 do
    max_load := max !max_load (max sent.(v) received.(v))
  done;
  let capacity = n * width in
  let batches = max 1 ((!max_load + capacity - 1) / capacity) in
  (inboxes, !words, batches)

let broadcast ~n ~width values =
  if Array.length values <> n then
    invalid_arg "Mailbox.broadcast: values array length mismatch";
  let words = ref 0 in
  Array.iteri
    (fun src payload ->
      let w = Array.length payload in
      if w > width then
        raise
          (Bandwidth_exceeded
             { src; dst = -1; words = w; width; phase = !context });
      words := !words + ((n - 1) * w))
    values;
  (Array.copy values, !words)
