(* The arena message kernel (DESIGN.md §10). All round-hot state lives in
   flat arrays sized once and reused: a reset is a handful of scalar writes
   plus an epoch bump, never an O(n²) clear or a reallocation. *)

type t = {
  n : int;
  (* Flat message table, in arrival order (src ascending, outbox order).
     [pay] stores references to the senders' payload arrays — the legacy
     path shares them with receivers too, so no words are copied. *)
  mutable cap : int;
  mutable src : int array;
  mutable dst : int array;
  mutable pay : int array array;
  mutable count : int;
  (* Counting-sort scratch: per-destination message counts, then prefix
     starts; [slot] is the arrival-order permutation into dst slices. *)
  counts : int array;
  starts : int array;
  fill : int array;
  mutable slot : int array;
  (* Per-link width accounting, keyed src * n + dst. The dense table is
     epoch-stamped: a cell is live iff its stamp equals the current epoch,
     so resetting costs one increment. *)
  dense : bool;
  pair_words : int array;
  pair_epoch : int array;
  mutable epoch : int;
  sparse : (int, int) Hashtbl.t;
  (* Stats (kernel.arena.* counters). *)
  mutable resets : int;
  mutable grows : int;
  mutable slot_words_reused : int;
}

let no_payload : int array = [||]

let dense_threshold_default () =
  match Sys.getenv_opt "CC_DENSE_WIDTH_MAX" with
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> 1024)
  | None -> 1024

let create ?dense_threshold ~n () =
  if n <= 0 then invalid_arg "Arena.create: need n > 0";
  let threshold =
    match dense_threshold with
    | Some v -> v
    | None -> dense_threshold_default ()
  in
  let dense = n <= threshold in
  let cap = 64 in
  {
    n;
    cap;
    src = Array.make cap 0;
    dst = Array.make cap 0;
    pay = Array.make cap no_payload;
    count = 0;
    counts = Array.make n 0;
    starts = Array.make (n + 1) 0;
    fill = Array.make n 0;
    slot = Array.make cap 0;
    dense;
    pair_words = (if dense then Array.make (n * n) 0 else [||]);
    pair_epoch = (if dense then Array.make (n * n) 0 else [||]);
    epoch = 0;
    sparse = (if dense then Hashtbl.create 1 else Hashtbl.create 256);
    resets = 0;
    grows = 0;
    slot_words_reused = 0;
  }

let n t = t.n

let uses_dense_table t = t.dense

let grow t =
  let cap = 2 * t.cap in
  let src = Array.make cap 0
  and dst = Array.make cap 0
  and pay = Array.make cap no_payload
  and slot = Array.make cap 0 in
  Array.blit t.src 0 src 0 t.count;
  Array.blit t.dst 0 dst 0 t.count;
  Array.blit t.pay 0 pay 0 t.count;
  t.src <- src;
  t.dst <- dst;
  t.pay <- pay;
  t.slot <- slot;
  t.cap <- cap;
  t.grows <- t.grows + 1

(* Accumulated words over the ordered pair, read-modify-write. *)
let pair_add t ~src ~dst w =
  let key = (src * t.n) + dst in
  if t.dense then begin
    let cur = if t.pair_epoch.(key) = t.epoch then t.pair_words.(key) else 0 in
    let total = cur + w in
    t.pair_epoch.(key) <- t.epoch;
    t.pair_words.(key) <- total;
    total
  end
  else begin
    let cur = match Hashtbl.find_opt t.sparse key with Some c -> c | None -> 0 in
    let total = cur + w in
    Hashtbl.replace t.sparse key total;
    total
  end

(* cc_lint: hot deliver *)

let deliver t ~width ?check outboxes =
  if Array.length outboxes <> t.n then
    invalid_arg "Mailbox.deliver: outbox array length mismatch";
  (* Round reset: scalar writes plus an epoch bump. *)
  let cap_before = t.cap in
  t.count <- 0;
  t.epoch <- t.epoch + 1;
  t.resets <- t.resets + 1;
  if not t.dense then Hashtbl.reset t.sparse;
  Array.fill t.counts 0 t.n 0;
  let words = ref 0 in
  (* Pass 1: validate, width-account, and append to the flat message table
     in arrival order — the same order the legacy path walks, so errors
     fire at the identical message with identical fields. *)
  let n = t.n in
  for s = 0 to n - 1 do
    List.iter
      (fun (d, payload) ->
        if d < 0 || d >= n then
          invalid_arg
            (Printf.sprintf
               "Mailbox.deliver: destination %d out of range (src=%d, \
                phase=%S, width=%d)"
               d s (Mailbox.current_context ()) width);
        (match check with Some f -> f ~src:s ~dst:d | None -> ());
        let w = Array.length payload in
        let total = pair_add t ~src:s ~dst:d w in
        if total > width then
          raise
            (Mailbox.Bandwidth_exceeded
               {
                 src = s;
                 dst = d;
                 words = total;
                 width;
                 phase = Mailbox.current_context ();
               });
        if t.count = t.cap then grow t;
        let i = t.count in
        t.src.(i) <- s;
        t.dst.(i) <- d;
        t.pay.(i) <- payload;
        t.count <- i + 1;
        t.counts.(d) <- t.counts.(d) + 1;
        words := !words + w)
      outboxes.(s)
  done;
  t.slot_words_reused <- t.slot_words_reused + min t.count cap_before;
  (* Pass 2: counting sort. [starts.(d)] is the first slot of destination
     [d]'s contiguous slice; scattering in arrival order keeps each slice
     sorted by arrival. *)
  let acc = ref 0 in
  for d = 0 to n - 1 do
    t.starts.(d) <- !acc;
    acc := !acc + t.counts.(d)
  done;
  t.starts.(n) <- !acc;
  Array.fill t.fill 0 n 0;
  for i = 0 to t.count - 1 do
    let d = t.dst.(i) in
    t.slot.(t.starts.(d) + t.fill.(d)) <- i;
    t.fill.(d) <- t.fill.(d) + 1
  done;
  (* Pass 3: materialize the inboxes (the result escapes, so the array and
     list spines are the only fresh allocations). Consing the slice
     front-to-back reverses it — exactly the order the legacy path's
     repeated cons produced. *)
  let inboxes = Array.make n [] in (* cc_lint: allow L8 — escapes to the caller *)
  for d = 0 to n - 1 do
    let lo = t.starts.(d) and hi = t.starts.(d + 1) in
    let box = ref [] in
    for s = lo to hi - 1 do
      let i = t.slot.(s) in
      box := (t.src.(i), t.pay.(i)) :: !box
    done;
    inboxes.(d) <- !box
  done;
  (inboxes, !words)

let stats t =
  [
    ("kernel.arena.dense", if t.dense then 1 else 0);
    ("kernel.arena.grows", t.grows);
    ("kernel.arena.resets", t.resets);
    ("kernel.arena.slot_words_reused", t.slot_words_reused);
  ]
