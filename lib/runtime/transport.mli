(** The [TRANSPORT] signature a message kernel implements so that
    {!Runtime.Make} can drive node programs on it; see the implementation
    file for the full per-operation contracts. Instances live in
    [lib/clique] ([Sim], [Congest]). *)

module type S = sig
  type t
  (** The kernel's mutable state (nodes, counters, topology). *)

  val name : string
  (** Kernel identifier reported by the runtime (e.g. ["clique"]). *)

  val n : t -> int
  (** Number of nodes. *)

  val default_width : int
  (** Per-ordered-pair word budget used when a call omits [?width]. *)

  val unicast : bool
  (** Whether one source may ship distinct per-destination payloads in a
      single round. [false] on broadcast-model kernels, where every node
      sends one payload per round, heard by everyone. *)

  val rounds : t -> int
  (** Rounds elapsed on this kernel so far (measured plus charged). *)

  val words_sent : t -> int
  (** Total words ever sent (the message-complexity measure). *)

  val recovery_rounds : t -> int
  (** Of {!rounds}, how many were consumed replaying operations after a
      worker death (DESIGN.md §14). Always 0 on in-process kernels; the
      runtime charges these to the ["recovery"] ledger phase instead of
      the phase the interrupted operation ran under. *)

  val exchange :
    ?width:int ->
    t ->
    (int * int array) list array ->
    (int * int array) list array
  (** One synchronous round: [outboxes.(v)] is node [v]'s [(dst, payload)]
      list; returns the inboxes. *)

  val route :
    ?width:int ->
    t ->
    (int * int * int array) list ->
    (int * int array) list array
  (** Deliver an arbitrary [(src, dst, payload)] multiset (Lenzen-batched
      on the clique kernel). *)

  val broadcast : ?width:int -> t -> int array array -> int array array
  (** Every node sends [values.(v)] to all others; returns the shared
      global view. *)

  val charge : t -> int -> unit
  (** Advance the round counter without communication (analytic costs). *)

  val stats : t -> (string * int) list
  (** Kernel-internal counters under full metric names ([kernel.*]); may
      be empty. *)
end
