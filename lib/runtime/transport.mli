(** The [TRANSPORT] signature a message kernel implements so that
    {!Runtime.Make} can drive node programs on it; see the implementation
    file for the full per-operation contracts. Instances live in
    [lib/clique] ([Sim], [Congest]). *)

module type S = sig
  type t

  val name : string

  val n : t -> int

  val default_width : int
  (** Per-ordered-pair word budget used when a call omits [?width]. *)

  val rounds : t -> int

  val words_sent : t -> int

  val exchange :
    ?width:int ->
    t ->
    (int * int array) list array ->
    (int * int array) list array

  val route :
    ?width:int ->
    t ->
    (int * int * int array) list ->
    (int * int array) list array

  val broadcast : ?width:int -> t -> int array array -> int array array

  val charge : t -> int -> unit
end
