(** Observability for the runtime: a bounded ring buffer of communication
    events plus a per-phase histogram of event sizes.

    Every communication call and every analytic charge that goes through a
    {!Runtime.Make} instance records one event here (phase, rounds, words).
    The buffer keeps the most recent [capacity] events — enough to see what
    a phase is doing without ever growing with the computation. *)

type event = { seq : int; phase : string; rounds : int; words : int }
(** [seq] is the global event index (monotonically increasing even after
    the ring wraps). *)

type t
(** The event ring buffer. *)

val create : int -> t
(** [create capacity] — a ring keeping the last [capacity] events.
    Raises [Invalid_argument] if [capacity ≤ 0]. *)

val capacity : t -> int
(** The fixed ring size this trace was created with. *)

val recorded : t -> int
(** Events ever recorded (may exceed {!capacity}). *)

val record : t -> phase:string -> rounds:int -> words:int -> unit
(** Append one event (evicting the oldest once the ring is full). *)

val to_list : t -> event list
(** Retained events, oldest first. *)

val histogram : t -> (string * int array) list
(** Per phase (sorted by name), a histogram over retained events: bucket
    [b ≥ 1] counts events whose round cost is in [[2^{b-1}, 2^b)]; bucket 0
    counts zero-round events (pure word traffic). *)

val pp_histogram : Format.formatter -> t -> unit
(** Print {!histogram} one phase per line, non-empty buckets as [2^b:count]. *)
