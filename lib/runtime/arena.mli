(** The arena message kernel: a reusable per-round delivery buffer.

    One [Arena.t] is sized once per simulation and reused every round: the
    flat message table (parallel [src]/[dst]/payload-reference arrays), the
    counting-sort scratch, and the per-link width table are {e reset}, not
    reallocated, on each {!deliver}. Delivery is a counting sort into
    contiguous per-destination slices, so building the inboxes is two
    linear passes with no hashing and no per-message key allocation —
    unlike the legacy {!Mailbox.deliver} path, which pays a [Hashtbl]
    lookup per message.

    Per-link width accounting uses a dense [n*n] int table indexed by
    [src * n + dst] and invalidated by epoch stamps (so a round reset is
    O(1), not O(n²)); above a configurable node-count threshold the table
    would be too large and the arena falls back to an int-keyed [Hashtbl].

    Semantics are bit-identical to {!Mailbox.deliver}: same validation
    order, same error payloads, same inbox contents in the same list
    order, and the same sharing of sender payload arrays. The differential
    suite ([test_kernel_equiv]) asserts this across workloads. *)

type t
(** A delivery arena for a fixed number of nodes. *)

val create : ?dense_threshold:int -> n:int -> unit -> t
(** [create ~n ()] sizes an arena for [n] nodes. The dense width table is
    used iff [n <= dense_threshold] (default: {!dense_threshold_default});
    beyond it the per-link accounting falls back to an int-keyed
    [Hashtbl] whose memory scales with traffic, not [n²]. *)

val dense_threshold_default : unit -> int
(** The default dense-table cutoff: [CC_DENSE_WIDTH_MAX] when set to a
    positive integer, else 1024 (an [n=1024] table is 8 MB; [n²] ints grow
    quadratically past that). *)

val n : t -> int
(** The node count the arena was sized for. *)

val uses_dense_table : t -> bool
(** Whether per-link widths are accounted in the dense [n*n] table. *)

val deliver :
  t ->
  width:int ->
  ?check:(src:int -> dst:int -> unit) ->
  (int * int array) list array ->
  (int * int array) list array * int
(** Drop-in replacement for {!Mailbox.deliver} over this arena's [n]:
    validates destinations in the same order, runs [check] on every
    (src, dst), enforces the per-ordered-pair [width] bound (raising
    {!Mailbox.Bandwidth_exceeded} with identical fields), and returns
    [(inboxes, total_words)] with inbox lists in the legacy order. *)

val stats : t -> (string * int) list
(** Cumulative [kernel.arena.*] counters, sorted by name: [resets] (rounds
    delivered), [grows] (capacity doublings), [slot_words_reused] (message
    slots served from already-allocated capacity), [dense] (1 iff the
    dense width table is active). Exported into a {!Metrics.t} registry by
    [Runtime.S.export_metrics] via [Transport.S.stats]. *)
