(** Which congested-clique communication model a run is accounted in.

    [Unicast] is the standard model of the source paper (§2.1): every
    ordered pair of nodes may exchange a distinct [O(log n)]-bit message
    per round. [Broadcast] is the Broadcast Congested Clique of Forster &
    de Vos (arXiv:2205.12059): per round every node ships {e one} message
    of [O(log n)] bits, received by all other nodes — per-destination
    distinct payloads are illegal.

    The model is a property of a {e run}, selected by the [CC_MODEL]
    environment variable (values [broadcast]/[bcast] vs anything else) or
    forced from test code with {!set_default}. Transports declare which
    width rule they enforce through {!Transport.S.unicast}; the charged
    pipelines ([Sparsify.Spectral], [Laplacian.Solver]) take a [?model]
    argument defaulting to {!default} and switch their round accounting
    accordingly (DESIGN.md §13). *)

type t = Unicast | Broadcast

val env_var : string
(** ["CC_MODEL"]. *)

val default : unit -> t
(** The model [?model] arguments default to: {!set_default}'s override if
    any, else [Broadcast] when [CC_MODEL] is [broadcast] or [bcast]
    (case-insensitive), else [Unicast]. *)

val set_default : t option -> unit
(** [set_default (Some m)] forces {!default}; [None] restores environment
    control — the test-suite hook for running whole charged pipelines
    under a chosen model. *)

val name : t -> string
(** ["unicast"] / ["broadcast"] — the spelling used in bench row keys and
    reports. *)

val of_string : string -> t option
(** Parse a [CC_MODEL] value; [None] for unrecognized spellings. *)
