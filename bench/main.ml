(* Benchmark harness: regenerates every claim of the paper (there are no
   tables/figures — it is a brief announcement — so the "experiments" E1..E8
   are the theorem round-complexity claims and the §1.1 comparisons; see
   DESIGN.md §3 and EXPERIMENTS.md for the index).

   Three parts:
   1. round-count experiment series (the reproduction target: rounds in the
      congested-clique model, measured by the instrumented runtime);
   2. Bechamel wall-clock benches, one Test.make per experiment kernel;
   3. machine-readable telemetry: every experiment also lands in a
      schema-versioned BENCH_E<k>.json (schema: DESIGN.md §8), the input of
      the bin/bench_diff regression gate.

   Environment:
   - CC_BENCH_MODE=reduced  shrink every sweep and the Bechamel quota (the
     CI configuration; the committed bench/baseline was produced this way)
   - CC_BENCH_OUT=<dir>     where the BENCH_*.json files go (default ".") *)

module J = Metrics.Json

let reduced =
  match Sys.getenv_opt "CC_BENCH_MODE" with
  | Some ("reduced" | "ci") -> true
  | _ -> false

let mode = if reduced then "reduced" else "full"

let out_dir = Option.value (Sys.getenv_opt "CC_BENCH_OUT") ~default:"."

let () =
  (* Create the output directory (and parents) if needed, so pointing
     CC_BENCH_OUT at a fresh path just works. *)
  let rec ensure dir =
    if not (Sys.file_exists dir) then begin
      let parent = Filename.dirname dir in
      if parent <> dir then ensure parent;
      Sys.mkdir dir 0o755
    end
  in
  ensure out_dir

(* In reduced mode every sweep keeps a prefix/subset of the full instance
   list, so reduced rows are a subset of full rows (same keys). *)
let sizes ~full ~reduced:r = if reduced then r else full

let line = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* Unified per-phase round breakdown, printed after the totals of every
   experiment: each algorithm charges into one runtime ledger, so the
   breakdown always sums to the reported rounds. *)
let phases_str ps =
  "["
  ^ String.concat " " (List.map (fun (p, r) -> Printf.sprintf "%s=%d" p r) ps)
  ^ "]"

(* ------------------------------------------------- telemetry assembly *)

type series = { s_name : string; s_seed : int64; s_rows : J.t list }

type experiment = {
  x_id : string;
  x_title : string;
  x_series : series list;
  x_registry : Metrics.t;
  x_note : string option;
}

(* One registry per experiment: every row's per-phase breakdown is ingested
   (counters rounds.<phase> / rounds.total), row totals feed the row_rounds
   histogram, and the matching Bechamel estimate lands in a span — so the
   "metrics" section of each BENCH file is a faithful aggregate of the
   series it sits next to. *)
let row registry ~key ?(params = []) ?ref_rounds ?(stats = []) ~rounds ~phases
    () =
  Metrics.ingest_phases registry ~prefix:"rounds" phases;
  Metrics.incr (Metrics.counter registry "rows");
  Metrics.observe (Metrics.histogram registry "row_rounds") rounds;
  J.Assoc
    [
      ("key", J.String key);
      ("params", J.Assoc params);
      ( "rounds",
        J.Assoc
          ([ ("total", J.Int rounds) ]
          @ (match ref_rounds with
            | Some r -> [ ("ref", J.Int r) ]
            | None -> [])
          @ [
              ( "phases",
                J.Assoc (List.map (fun (p, r) -> (p, J.Int r)) phases) );
            ]) );
      ("stats", J.Assoc stats);
    ]

let experiment ~id ~title ?note registry series =
  {
    x_id = id;
    x_title = title;
    x_series = series;
    x_registry = registry;
    x_note = note;
  }

(* Resolve HEAD by hand (reading .git directly keeps the harness free of
   subprocesses); overridable via GIT_REV for odd checkouts. *)
let git_rev () =
  match Sys.getenv_opt "GIT_REV" with
  | Some r -> r
  | None -> (
    let read_first_line path =
      if Sys.file_exists path then begin
        let ic = open_in path in
        let l = try input_line ic with End_of_file -> "" in
        close_in ic;
        Some (String.trim l)
      end
      else None
    in
    let rec find_git dir depth =
      if depth > 6 then None
      else if Sys.file_exists (Filename.concat dir ".git") then
        Some (Filename.concat dir ".git")
      else find_git (Filename.concat dir Filename.parent_dir_name) (depth + 1)
    in
    match find_git "." 0 with
    | None -> "unknown"
    | Some git -> (
      match read_first_line (Filename.concat git "HEAD") with
      | None -> "unknown"
      | Some head ->
        let prefix = "ref: " in
        if String.length head > String.length prefix
           && String.sub head 0 (String.length prefix) = prefix
        then
          let r =
            String.sub head (String.length prefix)
              (String.length head - String.length prefix)
          in
          Option.value (read_first_line (Filename.concat git r))
            ~default:"unknown"
        else head))

let write_bench x ~wall_clock =
  (* Attach this experiment's Bechamel estimates ("repro/e<k>-..." kernels)
     both to the JSON and, as spans, to the registry. *)
  let mine =
    List.filter
      (fun (name, _) ->
        let tag = String.lowercase_ascii x.x_id ^ "-" in
        String.length name >= String.length tag
        && String.sub name 0 (String.length tag) = tag)
      wall_clock
  in
  List.iter
    (fun (name, ns) ->
      Metrics.add_duration (Metrics.span x.x_registry ("wall." ^ name))
        (ns /. 1e9))
    mine;
  let json =
    J.Assoc
      ([
         ("schema_version", J.Int 1);
         ("experiment", J.String x.x_id);
         ("title", J.String x.x_title);
         ("mode", J.String mode);
         ("git_rev", J.String (git_rev ()));
       ]
      @ (match x.x_note with
        | Some n -> [ ("note", J.String n) ]
        | None -> [])
      @ [
          ( "series",
            J.List
              (List.map
                 (fun s ->
                   J.Assoc
                     [
                       ("name", J.String s.s_name);
                       ("seed", J.Int (Int64.to_int s.s_seed));
                       ("rows", J.List s.s_rows);
                     ])
                 x.x_series) );
          ( "wall_clock",
            J.Assoc
              (List.map
                 (fun (name, ns) ->
                   (name, J.Assoc [ ("time_per_run_ns", J.Float ns) ]))
                 mine) );
          ("metrics", Metrics.to_json x.x_registry);
        ])
  in
  let path = Filename.concat out_dir ("BENCH_" ^ x.x_id ^ ".json") in
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc;
  path

(* ------------------------------------------------------------------- E1 *)

let e1_sparsifier () =
  header
    "E1 | Theorem 3.3 - deterministic spectral sparsifier: size O(n log n \
     log U), measured alpha";
  let reg = Metrics.create () in
  Printf.printf "%6s %6s %4s %8s %10s %8s %10s %12s\n" "n" "m" "U" "|E(H)|"
    "alpha" "rounds" "ref" "size-bound";
  let rows =
    List.map
      (fun (n, u) ->
        let g =
          if u = 1 then Gen.connected_gnp ~seed:3L n 0.5
          else Gen.weighted_gnp ~seed:3L n 0.5 u
        in
        let r = Sparsify.Spectral.sparsify g in
        let h = r.Sparsify.Spectral.sparsifier in
        let alpha = Sparsify.Quality.approximation_factor g h in
        let ref_rounds =
          Sparsify.Spectral.rounds_bound ~n ~u:(float_of_int u) ~gamma:0.25
        in
        let size_bound = Sparsify.Spectral.size_bound ~n ~u:(float_of_int u) in
        Printf.printf "%6d %6d %4d %8d %10.2f %8d %10d %12d  %s\n" n
          (Graph.m g) u (Graph.m h) alpha r.Sparsify.Spectral.rounds
          ref_rounds size_bound
          (phases_str r.Sparsify.Spectral.phase_rounds);
        row reg
          ~key:(Printf.sprintf "n=%d u=%d" n u)
          ~params:[ ("n", J.Int n); ("u", J.Int u) ]
          ~ref_rounds
          ~stats:
            [
              ("m", J.Int (Graph.m g));
              ("sparsifier_edges", J.Int (Graph.m h));
              ("alpha", J.Float alpha);
              ("size_bound", J.Int size_bound);
            ]
          ~rounds:r.Sparsify.Spectral.rounds
          ~phases:r.Sparsify.Spectral.phase_rounds ())
      (sizes
         ~full:[ (40, 1); (60, 1); (80, 1); (100, 1); (60, 16); (60, 256) ]
         ~reduced:[ (40, 1); (60, 16) ])
  in
  experiment ~id:"E1"
    ~title:
      "Theorem 3.3 - deterministic spectral sparsifier: size O(n log n log \
       U), measured alpha"
    reg
    [ { s_name = "size-and-alpha"; s_seed = 3L; s_rows = rows } ]

(* ------------------------------------------------------------------- E2 *)

let e2_solver () =
  header
    "E2 | Theorem 1.1 / Corollary 2.3 - Laplacian solver: iterations ~ \
     sqrt(kappa) log(1/eps), rounds ~ n^{o(1)} log(U/eps)";
  let reg = Metrics.create () in
  let n = 60 in
  let g = Gen.weighted_gnp ~seed:5L n 0.3 8 in
  let b = Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1)) in
  let sp = Sparsify.Spectral.sparsify g in
  Printf.printf "eps sweep at n=%d m=%d (sparsifier reused):\n" n (Graph.m g);
  Printf.printf "%10s %6s %8s %10s %14s %12s\n" "eps" "iters" "ref" "rounds"
    "measured err" "cg rounds";
  let eps_rows =
    List.map
      (fun eps ->
        let r = Laplacian.Solver.solve_with_sparsifier ~eps g sp b in
        let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
        let reference =
          Linalg.Chebyshev.iteration_bound ~kappa:r.Laplacian.Solver.kappa ~eps
        in
        let cg = Laplacian.Solver.solve_cg_baseline ~eps g b in
        Printf.printf "%10.0e %6d %8d %10d %14.2e %12d  %s\n" eps
          r.Laplacian.Solver.iterations reference r.Laplacian.Solver.rounds
          err cg.Laplacian.Solver.rounds
          (phases_str r.Laplacian.Solver.phase_rounds);
        row reg
          ~key:(Printf.sprintf "eps=%.0e" eps)
          ~params:[ ("n", J.Int n); ("eps", J.Float eps) ]
          ~stats:
            [
              ("iterations", J.Int r.Laplacian.Solver.iterations);
              ("iteration_bound", J.Int reference);
              ("error", J.Float err);
              ("cg_rounds", J.Int cg.Laplacian.Solver.rounds);
            ]
          ~rounds:r.Laplacian.Solver.rounds
          ~phases:r.Laplacian.Solver.phase_rounds ())
      (sizes
         ~full:[ 1e-1; 1e-2; 1e-4; 1e-6; 1e-8 ]
         ~reduced:[ 1e-2; 1e-6 ])
  in
  Printf.printf "\nn sweep at eps=1e-6 (full pipeline incl. sparsifier):\n";
  Printf.printf "%6s %6s %8s %8s %10s\n" "n" "m" "iters" "rounds" "kappa";
  let n_rows =
    List.map
      (fun n ->
        let g = Gen.connected_gnp ~seed:7L n 0.3 in
        let b =
          Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1))
        in
        let r = Laplacian.Solver.solve ~eps:1e-6 g b in
        Printf.printf "%6d %6d %8d %8d %10.2f  %s\n" n (Graph.m g)
          r.Laplacian.Solver.iterations r.Laplacian.Solver.rounds
          r.Laplacian.Solver.kappa
          (phases_str r.Laplacian.Solver.phase_rounds);
        row reg
          ~key:(Printf.sprintf "n=%d" n)
          ~params:[ ("n", J.Int n); ("eps", J.Float 1e-6) ]
          ~stats:
            [
              ("m", J.Int (Graph.m g));
              ("iterations", J.Int r.Laplacian.Solver.iterations);
              ("kappa", J.Float r.Laplacian.Solver.kappa);
            ]
          ~rounds:r.Laplacian.Solver.rounds
          ~phases:r.Laplacian.Solver.phase_rounds ())
      (sizes ~full:[ 30; 60; 90; 120 ] ~reduced:[ 30; 60 ])
  in
  experiment ~id:"E2"
    ~title:
      "Theorem 1.1 / Corollary 2.3 - Laplacian solver: iterations ~ \
       sqrt(kappa) log(1/eps), rounds ~ n^{o(1)} log(U/eps)"
    reg
    [
      { s_name = "eps-sweep"; s_seed = 5L; s_rows = eps_rows };
      { s_name = "n-sweep"; s_seed = 7L; s_rows = n_rows };
    ]

(* ------------------------------------------------------------------- E3 *)

let e3_euler () =
  header
    "E3 | Theorem 1.4 - Eulerian orientation: O(log n log* n) rounds \
     (trivial algorithm: Theta(n))";
  let reg = Metrics.create () in
  Printf.printf "%7s %8s %8s %7s %10s %10s %10s\n" "n" "m" "rounds" "iters"
    "ref" "random" "trivial";
  let rows =
    List.map
      (fun n ->
        let g = Gen.cycle_union ~seed:5L n (max 3 (n / 16)) in
        let r = Euler.Orientation.orient g in
        assert (Euler.Orientation.check g r.Euler.Orientation.orientation);
        (* The paper's randomized remark: sampling instead of coloring. *)
        let rnd =
          Euler.Orientation.orient ~selector:(Euler.Orientation.Sampling 1L) g
        in
        assert (Euler.Orientation.check g rnd.Euler.Orientation.orientation);
        let ref_rounds = Euler.Orientation.rounds_reference ~n in
        Printf.printf "%7d %8d %8d %7d %10d %10d %10d  %s\n" n (Graph.m g)
          r.Euler.Orientation.rounds r.Euler.Orientation.iterations ref_rounds
          rnd.Euler.Orientation.rounds n
          (phases_str r.Euler.Orientation.phase_rounds);
        row reg
          ~key:(Printf.sprintf "n=%d" n)
          ~params:[ ("n", J.Int n) ]
          ~ref_rounds
          ~stats:
            [
              ("m", J.Int (Graph.m g));
              ("iterations", J.Int r.Euler.Orientation.iterations);
              ("random_rounds", J.Int rnd.Euler.Orientation.rounds);
              ("trivial_rounds", J.Int n);
            ]
          ~rounds:r.Euler.Orientation.rounds
          ~phases:r.Euler.Orientation.phase_rounds ())
      (sizes
         ~full:[ 64; 128; 256; 512; 1024; 2048; 4096 ]
         ~reduced:[ 64; 128; 256 ])
  in
  experiment ~id:"E3"
    ~title:
      "Theorem 1.4 - Eulerian orientation: O(log n log* n) rounds (trivial \
       algorithm: Theta(n))"
    reg
    [ { s_name = "n-sweep"; s_seed = 5L; s_rows = rows } ]

(* ------------------------------------------------------------------- E4 *)

let e4_rounding () =
  header
    "E4 | Lemma 4.2 - flow rounding: O(log n log* n log(1/Delta)) rounds";
  let reg = Metrics.create () in
  let g = Gen.layered_network ~seed:11L 4 4 6 in
  let t = Digraph.n g - 1 in
  let f, v = Dinic.max_flow g ~s:0 ~t in
  Printf.printf
    "network: n=%d m=%d |f*|=%d; rounding (2/3)*f at grain delta=2^-k\n"
    (Digraph.n g) (Digraph.m g) v;
  Printf.printf "%4s %12s %8s %8s %14s\n" "k" "delta" "rounds" "levels"
    "value kept";
  let rows =
    List.map
      (fun k ->
        let delta = 1. /. float_of_int (1 lsl k) in
        (* 2/3 has an infinite binary expansion, so after flooring to the
           grid every level keeps odd digits and must orient. *)
        let frac = Array.map (fun x -> 2. /. 3. *. x) f in
        let items = Decompose.decompose g ~s:0 ~t frac in
        let q =
          Decompose.accumulate g (Decompose.quantize_paths ~delta items)
        in
        let r = Rounding.Flow_rounding.round g ~s:0 ~t ~delta q in
        assert (Flow.is_integral r.Rounding.Flow_rounding.f);
        assert (Flow.is_feasible g ~s:0 ~t ~f:r.Rounding.Flow_rounding.f);
        let kept = Flow.value g ~s:0 ~f:r.Rounding.Flow_rounding.f in
        Printf.printf "%4d %12g %8d %8d %14g  %s\n" k delta
          r.Rounding.Flow_rounding.rounds r.Rounding.Flow_rounding.levels kept
          (phases_str r.Rounding.Flow_rounding.phase_rounds);
        row reg
          ~key:(Printf.sprintf "k=%d" k)
          ~params:[ ("k", J.Int k); ("delta", J.Float delta) ]
          ~stats:
            [
              ("levels", J.Int r.Rounding.Flow_rounding.levels);
              ("value_kept", J.Float kept);
            ]
          ~rounds:r.Rounding.Flow_rounding.rounds
          ~phases:r.Rounding.Flow_rounding.phase_rounds ())
      (sizes ~full:[ 2; 4; 6; 8; 10; 12 ] ~reduced:[ 2; 6 ])
  in
  experiment ~id:"E4"
    ~title:"Lemma 4.2 - flow rounding: O(log n log* n log(1/Delta)) rounds"
    reg
    [ { s_name = "grain-sweep"; s_seed = 11L; s_rows = rows } ]

(* ------------------------------------------------------------------- E5 *)

let e5_maxflow () =
  header
    "E5 | Theorem 1.2 - max flow: m^{3/7+o(1)} U^{1/7} rounds vs baselines";
  let reg = Metrics.create () in
  Printf.printf "%5s %5s %4s %5s %9s %9s %10s %9s %9s %8s\n" "n" "m" "U"
    "|f*|" "ipm-iter" "iter-ref" "ipm-rnds" "ff-rnds" "triv-rnds" "repairs";
  let run key params g u =
    let n = Digraph.n g in
    let r = Maxflow_ipm.max_flow g ~s:0 ~t:(n - 1) in
    let ff = Ford_fulkerson.max_flow g ~s:0 ~t:(n - 1) in
    let triv = Trivial.max_flow g ~s:0 ~t:(n - 1) in
    assert (r.Maxflow_ipm.value = ff.Ford_fulkerson.value);
    Printf.printf "%5d %5d %4d %5d %9d %9d %10d %9d %9d %8d  %s\n" n
      (Digraph.m g) u r.Maxflow_ipm.value r.Maxflow_ipm.ipm_iterations
      (Maxflow_ipm.iterations_reference ~m:(Digraph.m g) ~u)
      r.Maxflow_ipm.rounds ff.Ford_fulkerson.rounds triv.Trivial.rounds
      r.Maxflow_ipm.repair_augmentations
      (phases_str r.Maxflow_ipm.phase_rounds);
    row reg ~key
      ~params:(params @ [ ("u", J.Int u) ])
      ~stats:
        [
          ("n", J.Int n);
          ("m", J.Int (Digraph.m g));
          ("value", J.Int r.Maxflow_ipm.value);
          ("ipm_iterations", J.Int r.Maxflow_ipm.ipm_iterations);
          ( "iteration_bound",
            J.Int (Maxflow_ipm.iterations_reference ~m:(Digraph.m g) ~u) );
          ("ff_rounds", J.Int ff.Ford_fulkerson.rounds);
          ("trivial_rounds", J.Int triv.Trivial.rounds);
          ("repair_augmentations", J.Int r.Maxflow_ipm.repair_augmentations);
        ]
      ~rounds:r.Maxflow_ipm.rounds ~phases:r.Maxflow_ipm.phase_rounds ()
  in
  Printf.printf "m sweep (layered networks, U = 8):\n";
  let m_rows =
    List.map
      (fun layers ->
        run
          (Printf.sprintf "layers=%d" layers)
          [ ("layers", J.Int layers) ]
          (Gen.layered_network ~seed:13L layers 4 8)
          8)
      (sizes ~full:[ 2; 3; 4; 5; 6 ] ~reduced:[ 2; 3 ])
  in
  Printf.printf "U sweep (fixed 4x4 layered topology):\n";
  let u_rows =
    List.map
      (fun u ->
        run (Printf.sprintf "u=%d" u) []
          (Gen.layered_network ~seed:13L 4 4 u)
          u)
      (sizes ~full:[ 1; 8; 64 ] ~reduced:[ 1; 8 ])
  in
  experiment ~id:"E5"
    ~title:
      "Theorem 1.2 - max flow: m^{3/7+o(1)} U^{1/7} rounds vs baselines"
    reg
    [
      { s_name = "m-sweep"; s_seed = 13L; s_rows = m_rows };
      { s_name = "u-sweep"; s_seed = 13L; s_rows = u_rows };
    ]

(* ------------------------------------------------------------------- E6 *)

let e6_mincost () =
  header
    "E6 | Theorem 1.3 - unit-capacity min-cost flow: ~m^{3/7}(n^{0.158} + \
     polylog W) rounds";
  let reg = Metrics.create () in
  Printf.printf "%5s %5s %5s %9s %9s %10s %10s %8s\n" "n" "m" "W" "ipm-iter"
    "iter-ref" "ipm-rnds" "ssp-rnds" "repairs";
  let run key params g sigma w =
    match (Mcf_ipm.solve g ~sigma, Mcf_ssp.solve g ~sigma) with
    | Some r, Some oracle ->
      assert (Float.abs (r.Mcf_ipm.cost -. oracle.Mcf_ssp.cost) < 1e-6);
      Printf.printf "%5d %5d %5d %9d %9d %10d %10d %8d  %s\n" (Digraph.n g)
        (Digraph.m g) w r.Mcf_ipm.ipm_iterations
        (Mcf_ipm.iterations_reference ~m:(Digraph.m g) ~w)
        r.Mcf_ipm.rounds oracle.Mcf_ssp.rounds r.Mcf_ipm.repair_augmentations
        (phases_str r.Mcf_ipm.phase_rounds);
      Some
        (row reg ~key
           ~params:(params @ [ ("w", J.Int w) ])
           ~stats:
             [
               ("n", J.Int (Digraph.n g));
               ("m", J.Int (Digraph.m g));
               ("cost", J.Float r.Mcf_ipm.cost);
               ("ipm_iterations", J.Int r.Mcf_ipm.ipm_iterations);
               ( "iteration_bound",
                 J.Int (Mcf_ipm.iterations_reference ~m:(Digraph.m g) ~w) );
               ("ssp_rounds", J.Int oracle.Mcf_ssp.rounds);
               ( "repair_augmentations",
                 J.Int r.Mcf_ipm.repair_augmentations );
             ]
           ~rounds:r.Mcf_ipm.rounds ~phases:r.Mcf_ipm.phase_rounds ())
    | None, None ->
      Printf.printf "      (infeasible instance skipped)\n";
      None
    | _ -> failwith "ipm/oracle feasibility disagreement"
  in
  Printf.printf "m sweep (random unit-capacity instances, W = 10):\n";
  let m_rows =
    List.filter_map
      (fun (n, m) ->
        let g, sigma = Gen.random_mcf ~seed:17L n m 10 in
        run (Printf.sprintf "n=%d m=%d" n m) [] g sigma 10)
      (sizes
         ~full:[ (8, 16); (10, 28); (12, 40); (14, 56) ]
         ~reduced:[ (8, 16); (10, 28) ])
  in
  Printf.printf "W sweep (fixed topology):\n";
  let w_rows =
    List.filter_map
      (fun w ->
        let g, sigma = Gen.random_mcf ~seed:19L 10 30 w in
        run (Printf.sprintf "w=%d" w) [] g sigma w)
      (sizes ~full:[ 2; 16; 128 ] ~reduced:[ 2; 16 ])
  in
  Printf.printf
    "engine comparison (same instance; direct two-sided barrier vs verbatim\n\
    \ Appendix C bipartite lift):\n";
  let g, sigma = Gen.random_mcf ~seed:17L 10 28 10 in
  let engine_rows =
    match (Mcf_ipm.solve g ~sigma, Cmsv_bipartite.solve g ~sigma) with
    | Some d, Some v ->
      Printf.printf
        "  direct:   cost=%g iters=%d rounds=%d %s\n\
        \  verbatim: cost=%g iters=%d rounds=%d perturbations=%d\n"
        d.Mcf_ipm.cost d.Mcf_ipm.ipm_iterations d.Mcf_ipm.rounds
        (phases_str d.Mcf_ipm.phase_rounds)
        v.Cmsv_bipartite.cost v.Cmsv_bipartite.ipm_iterations
        v.Cmsv_bipartite.rounds v.Cmsv_bipartite.perturbations;
      [
        row reg ~key:"engine=direct"
          ~stats:
            [
              ("cost", J.Float d.Mcf_ipm.cost);
              ("ipm_iterations", J.Int d.Mcf_ipm.ipm_iterations);
            ]
          ~rounds:d.Mcf_ipm.rounds ~phases:d.Mcf_ipm.phase_rounds ();
        row reg ~key:"engine=verbatim-appendix-c"
          ~stats:
            [
              ("cost", J.Float v.Cmsv_bipartite.cost);
              ("ipm_iterations", J.Int v.Cmsv_bipartite.ipm_iterations);
              ("perturbations", J.Int v.Cmsv_bipartite.perturbations);
            ]
          ~rounds:v.Cmsv_bipartite.rounds ~phases:[] ();
      ]
    | _ ->
      Printf.printf "  (instance infeasible)\n";
      []
  in
  experiment ~id:"E6"
    ~title:
      "Theorem 1.3 - unit-capacity min-cost flow: ~m^{3/7}(n^{0.158} + \
       polylog W) rounds"
    reg
    [
      { s_name = "m-sweep"; s_seed = 17L; s_rows = m_rows };
      { s_name = "w-sweep"; s_seed = 19L; s_rows = w_rows };
      { s_name = "engine-comparison"; s_seed = 17L; s_rows = engine_rows };
    ]

(* ------------------------------------------------------------------- E7 *)

(* Satellite fix: this caveat previously lived only in ford_fulkerson.mli,
   leaving the printed table unexplained. *)
let e7_note =
  "ff augmentation is Edmonds-Karp-style: each of the |f*| iterations finds \
   a shortest augmenting path by one s-t reachability query on the residual \
   graph, charged at the CKKL'19 rate of ceil(n^0.158) rounds (see \
   lib/flow/ford_fulkerson.mli); ff-worst is the resulting \
   O(|f*| n^0.158) curve."

let e7_baselines () =
  header
    "E7 | baselines of 1.1 - Ford-Fulkerson O(|f*| n^{0.158}) vs trivial \
     O(n log U): crossover at |f*| = o(n^{0.842} log U)";
  let reg = Metrics.create () in
  Printf.printf "%5s %5s %6s %7s %10s %10s %12s %10s\n" "n" "m" "U" "|f*|"
    "ff-rounds" "ff-worst" "triv-rounds" "ipm-rnds";
  let rows =
    List.map
      (fun u ->
        let g = Gen.layered_network ~seed:23L 4 4 u in
        let n = Digraph.n g in
        let ff = Ford_fulkerson.max_flow g ~s:0 ~t:(n - 1) in
        let triv = Trivial.max_flow g ~s:0 ~t:(n - 1) in
        let ipm = Maxflow_ipm.max_flow g ~s:0 ~t:(n - 1) in
        let worst =
          Ford_fulkerson.rounds_reference ~n ~value:ff.Ford_fulkerson.value
        in
        Printf.printf "%5d %5d %6d %7d %10d %10d %12d %10d  %s\n" n
          (Digraph.m g) u ff.Ford_fulkerson.value ff.Ford_fulkerson.rounds
          worst triv.Trivial.rounds ipm.Maxflow_ipm.rounds
          (phases_str ipm.Maxflow_ipm.phase_rounds);
        row reg
          ~key:(Printf.sprintf "u=%d" u)
          ~params:[ ("u", J.Int u) ]
          ~ref_rounds:worst
          ~stats:
            [
              ("n", J.Int n);
              ("m", J.Int (Digraph.m g));
              ("value", J.Int ff.Ford_fulkerson.value);
              ("iterations", J.Int ff.Ford_fulkerson.iterations);
              ("trivial_rounds", J.Int triv.Trivial.rounds);
              ("ipm_rounds", J.Int ipm.Maxflow_ipm.rounds);
            ]
          ~rounds:ff.Ford_fulkerson.rounds ~phases:[] ())
      (sizes ~full:[ 1; 4; 16; 64; 256 ] ~reduced:[ 1; 16 ])
  in
  Printf.printf "note: %s\n" e7_note;
  (reg, rows)

(* ------------------------------------------------------------------ E7b *)

let e7b_models reg =
  header
    "E7b | model comparison - congested clique vs CONGEST (FGLP+21) vs \
     Broadcast Congested Clique (FV22) reference curves";
  Printf.printf "%9s %11s %6s %13s %15s %11s\n" "n" "m" "D" "clique-ref"
    "congest-ref" "bcc-ref";
  let rows =
    List.map
      (fun (n, d) ->
        let m = n * 50 in
        let clique = Maxflow_ipm.rounds_reference ~n ~m ~u:16 in
        let congest = Clique.Congest.fglp_maxflow_rounds ~n ~m ~d ~u:16 in
        let bcc = Clique.Congest.fv22_bcc_mcf_rounds ~n in
        Printf.printf "%9d %11d %6d %13d %15d %11d\n" n m d clique congest
          bcc;
        row reg
          ~key:(Printf.sprintf "n=%d" n)
          ~params:[ ("n", J.Int n); ("m", J.Int m); ("d", J.Int d) ]
          ~stats:
            [ ("congest_ref", J.Int congest); ("bcc_ref", J.Int bcc) ]
          ~rounds:clique ~phases:[] ())
      [ (1000, 10); (10000, 15); (100000, 20); (1000000, 25) ]
  in
  Printf.printf
    "(BCC column is FV22's randomized sqrt(n) min-cost flow - the paper's\n\
    \ only deterministic competitors are the trivial and FF baselines of E7)\n";
  rows

let e7_combined () =
  let reg, e7_rows = e7_baselines () in
  let e7b_rows = e7b_models reg in
  experiment ~id:"E7"
    ~title:
      "baselines of 1.1 - Ford-Fulkerson O(|f*| n^{0.158}) vs trivial O(n \
       log U); E7b cross-model reference curves"
    ~note:e7_note reg
    [
      { s_name = "u-sweep"; s_seed = 23L; s_rows = e7_rows };
      (* E7b: closed-form curves, no seeded input; 0 marks "no seed". *)
      { s_name = "e7b-model-comparison"; s_seed = 0L; s_rows = e7b_rows };
    ]

(* ------------------------------------------------------------------- E8 *)

let e8_ablations () =
  header "E8 | ablations - sparsifier backend and solver choice";
  let reg = Metrics.create () in
  Printf.printf "sparsifier backend on G(36, 0.5):\n";
  let g = Gen.connected_gnp ~seed:29L 36 0.5 in
  Printf.printf "%22s %8s %10s\n" "backend" "|E(H)|" "alpha";
  let report name h =
    let alpha = Sparsify.Quality.approximation_factor g h in
    Printf.printf "%22s %8d %10.2f\n" name (Graph.m h) alpha;
    row reg
      ~key:("backend=" ^ name)
      ~stats:
        [ ("sparsifier_edges", J.Int (Graph.m h)); ("alpha", J.Float alpha) ]
      ~rounds:0 ~phases:[] ()
  in
  (* Bound one at a time so the table prints top-to-bottom (list literals
     evaluate right-to-left). *)
  let b1 = report "input (identity)" g in
  let b2 =
    report "buckets (Thm 3.3)"
      (Sparsify.Spectral.sparsify g).Sparsify.Spectral.sparsifier
  in
  let b3 = report "bss d=4" (Sparsify.Bss.sparsify ~d:4 g) in
  let b4 = report "bss d=6" (Sparsify.Bss.sparsify ~d:6 g) in
  let b5 = report "spanning tree" (Sparsify.Tree.max_weight_spanning_tree g) in
  let b6 =
    report "sampling (randomized)" (Sparsify.Sampling.sparsify ~seed:1L g)
  in
  let backend_rows = [ b1; b2; b3; b4; b5; b6 ] in
  Printf.printf
    "\nsolver rounds at eps=1e-8 (preconditioned Chebyshev vs plain CG):\n";
  Printf.printf "%22s %12s %12s\n" "graph" "cheby-rnds" "cg-rnds";
  let solver_rows =
    List.map
      (fun (name, g) ->
        let n = Graph.n g in
        let b =
          Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1))
        in
        let r = Laplacian.Solver.solve ~eps:1e-8 g b in
        let cg = Laplacian.Solver.solve_cg_baseline ~eps:1e-8 g b in
        Printf.printf "%22s %12d %12d  %s\n" name r.Laplacian.Solver.rounds
          cg.Laplacian.Solver.rounds
          (phases_str r.Laplacian.Solver.phase_rounds);
        row reg ~key:("graph=" ^ name)
          ~stats:[ ("cg_rounds", J.Int cg.Laplacian.Solver.rounds) ]
          ~rounds:r.Laplacian.Solver.rounds
          ~phases:r.Laplacian.Solver.phase_rounds ())
      (sizes
         ~full:
           [
             ("expander(64)", Gen.expander 64 8);
             ("barbell(32)", Gen.barbell 32);
             ("grid 8x8", Gen.grid 8 8);
             ("gnp(64, 0.2)", Gen.connected_gnp ~seed:31L 64 0.2);
           ]
         ~reduced:
           [ ("barbell(32)", Gen.barbell 32); ("grid 8x8", Gen.grid 8 8) ])
  in
  experiment ~id:"E8"
    ~title:"ablations - sparsifier backend and solver choice" reg
    [
      { s_name = "sparsifier-backend"; s_seed = 29L; s_rows = backend_rows };
      { s_name = "solver-choice"; s_seed = 31L; s_rows = solver_rows };
    ]

(* ------------------------------------------------------------------- E9 *)

(* Kernel-throughput microbenchmark: a synthetic all-to-all workload (every
   node sends a 1-word payload to every other node at the default width 2)
   driven through both delivery engines. The deterministic series asserts
   the engines bit-identical (inboxes, words, rounds) and records the
   counters; the wall-clock comparison lands in the Bechamel section below
   ("e9-arena-n<k>" vs "e9-legacy-n<k>") and in BENCH_E9.json. *)

let e9_rounds = 8

let e9_sizes = sizes ~full:[ 64; 128; 256; 512; 1024 ] ~reduced:[ 64; 128; 256 ]

(* Outboxes are built once and reused across rounds, so the measurement is
   delivery, not workload construction. Payload arrays are shared by
   reference on both paths (neither kernel copies). *)
let e9_outboxes n =
  Array.init n (fun v ->
      List.filter_map
        (fun d -> if d = v then None else Some (d, [| v land 0xffff |]))
        (List.init n Fun.id))

let e9_kernel () =
  header
    "E9 | kernel throughput - arena vs legacy delivery on all-to-all \
     exchange (1-word payloads, width 2)";
  let reg = Metrics.create () in
  Printf.printf "%6s %10s %10s %8s %8s\n" "n" "msgs/rnd" "words" "rounds"
    "equal";
  let rows =
    List.map
      (fun n ->
        let outboxes = e9_outboxes n in
        let arena = Clique.Sim.create ~kernel:Clique.Sim.Arena n in
        let legacy = Clique.Sim.create ~kernel:Clique.Sim.Legacy n in
        let equal = ref true in
        for _ = 1 to e9_rounds do
          let a = Clique.Sim.exchange arena outboxes in
          let l = Clique.Sim.exchange legacy outboxes in
          equal := !equal && a = l
        done;
        assert !equal;
        assert (Clique.Sim.words_sent arena = Clique.Sim.words_sent legacy);
        assert (Clique.Sim.rounds arena = Clique.Sim.rounds legacy);
        let words = Clique.Sim.words_sent arena in
        Printf.printf "%6d %10d %10d %8d %8s\n" n
          (n * (n - 1))
          words
          (Clique.Sim.rounds arena)
          (if !equal then "yes" else "NO");
        row reg
          ~key:(Printf.sprintf "n=%d" n)
          ~params:[ ("n", J.Int n) ]
          ~stats:
            (( "messages_per_round", J.Int (n * (n - 1)) )
             :: ("words", J.Int words)
             :: List.map
                  (fun (k, v) -> (k, J.Int v))
                  (Clique.Sim.stats arena))
          ~rounds:(Clique.Sim.rounds arena)
          ~phases:[] ())
      e9_sizes
  in
  experiment ~id:"E9"
    ~title:
      "kernel throughput - arena vs legacy delivery on all-to-all exchange"
    ~note:
      "rows assert the two kernels bit-identical (inboxes, words, rounds); \
       the wall_clock section carries the arena-vs-legacy comparison"
    reg
    [ { s_name = "all-to-all"; s_seed = 0L; s_rows = rows } ]

(* ------------------------------------------------------------------ E10 *)

(* Sharded execution: the same all-to-all workload as E9 driven through the
   socket transport at 1, 2 and 4 worker processes. Every row asserts the
   sharded session bit-identical to the in-process arena (inboxes, words,
   rounds — the refactor's core claim), and lands the wire.* counters in
   its stats; the wall_clock section carries the shards scaling curve
   ("e10-shards<k>-n<j>"). *)

let e10_rounds = 4

let e10_shard_counts = sizes ~full:[ 1; 2; 4 ] ~reduced:[ 1; 2 ]

let e10_sizes = sizes ~full:[ 64; 128; 256 ] ~reduced:[ 64; 128 ]

let e10_sharded () =
  header
    "E10 | sharded execution - socket transport (worker processes, framed \
     links) vs in-process arena on all-to-all exchange";
  let reg = Metrics.create () in
  Printf.printf "%6s %7s %8s %8s %12s %12s %8s\n" "n" "shards" "rounds"
    "frames" "bytes-sent" "crossings" "equal";
  let rows =
    List.concat_map
      (fun n ->
        let outboxes = e9_outboxes n in
        let arena = Clique.Sim.create ~kernel:Clique.Sim.Arena n in
        let reference = ref [||] in
        for _ = 1 to e10_rounds do
          reference := Clique.Sim.exchange arena outboxes
        done;
        List.map
          (fun shards ->
            let t = Clique.Socket.create ~shards n in
            let last = ref [||] in
            for _ = 1 to e10_rounds do
              last := Clique.Socket.exchange t outboxes
            done;
            let equal =
              !last = !reference
              && Clique.Socket.rounds t = Clique.Sim.rounds arena
              && Clique.Socket.words_sent t = Clique.Sim.words_sent arena
            in
            assert equal;
            let st = Clique.Socket.stats t in
            let stat name = Option.value (List.assoc_opt name st) ~default:0 in
            let rounds = Clique.Socket.rounds t in
            let words = Clique.Socket.words_sent t in
            Printf.printf "%6d %7d %8d %8d %12d %12d %8s\n" n
              (Clique.Socket.shards t) rounds (stat "wire.frames")
              (stat "wire.bytes_sent") (stat "shard.crossings")
              (if equal then "yes" else "NO");
            Clique.Socket.close t;
            row reg
              ~key:(Printf.sprintf "n=%d shards=%d" n shards)
              ~params:[ ("n", J.Int n); ("shards", J.Int shards) ]
              ~stats:
                (("messages_per_round", J.Int (n * (n - 1)))
                 :: ("words", J.Int words)
                 :: List.map (fun (k, v) -> (k, J.Int v)) st)
              ~rounds ~phases:[] ())
          e10_shard_counts)
      e10_sizes
  in
  experiment ~id:"E10"
    ~title:
      "sharded execution - socket transport vs in-process arena on \
       all-to-all exchange"
    ~note:
      "rows assert the sharded session bit-identical to the arena kernel \
       (inboxes, words, rounds) at every shard count; stats carry the \
       wire.*/shard.* counters and the wall_clock section the shards \
       scaling"
    reg
    [ { s_name = "shards-sweep"; s_seed = 0L; s_rows = rows } ]

(* ------------------------------------------------------------------ E11 *)

(* Unicast vs Broadcast Congested Clique (Forster-de Vos, arXiv:2205.12059).
   Every pipeline runs under both accounting models with an explicit
   [~model] argument — the experiment is deliberately CC_MODEL-independent —
   and the outputs are asserted bit-identical: the model changes what a
   round may carry, not what the algorithm computes. Receive-bound phases
   (gather, matvec) cost the same in both models; the send-bound
   expander-decomposition core is recharged to the FV22 polylog stand-in,
   which is *more* expensive at bench sizes (the crossover is asymptotic —
   DESIGN.md section 13 carries the honest story). A third series drives the
   node programs on the live Broadcast transport and asserts
   round-for-round parity with the unicast sim. *)

let e11_sizes =
  sizes
    ~full:[ (40, 1); (60, 1); (80, 1); (60, 16) ]
    ~reduced:[ (40, 1); (60, 16) ]

let e11_program_sizes = sizes ~full:[ 24; 40 ] ~reduced:[ 24 ]

let e11_models () =
  header
    "E11 | broadcast congested clique - unicast vs broadcast round \
     accounting, outputs bit-identical (arXiv:2205.12059)";
  let reg = Metrics.create () in
  Printf.printf "sparsify (identical sparsifier asserted per size):\n";
  Printf.printf "%6s %4s %10s %8s %8s %9s %8s\n" "n" "u" "model" "rounds"
    "ref" "decompose" "gather";
  let sparsify_rows =
    List.concat_map
      (fun (n, u) ->
        let g =
          if u = 1 then Gen.connected_gnp ~seed:3L n 0.5
          else Gen.weighted_gnp ~seed:3L n 0.5 u
        in
        let ru = Sparsify.Spectral.sparsify ~model:Runtime.Model.Unicast g in
        let rb = Sparsify.Spectral.sparsify ~model:Runtime.Model.Broadcast g in
        assert (
          Graph.edges ru.Sparsify.Spectral.sparsifier
          = Graph.edges rb.Sparsify.Spectral.sparsifier);
        assert (
          ru.Sparsify.Spectral.levels = rb.Sparsify.Spectral.levels
          && ru.Sparsify.Spectral.classes = rb.Sparsify.Spectral.classes);
        let mk model (r : Sparsify.Spectral.result) ref_rounds =
          let phase p =
            Option.value (List.assoc_opt p r.phase_rounds) ~default:0
          in
          Printf.printf "%6d %4d %10s %8d %8d %9d %8d\n" n u model r.rounds
            ref_rounds (phase "decompose") (phase "gather");
          row reg
            ~key:(Printf.sprintf "%s n=%d u=%d" model n u)
            ~params:
              [ ("model", J.String model); ("n", J.Int n); ("u", J.Int u) ]
            ~ref_rounds
            ~stats:
              [
                ("sparsifier_edges", J.Int (Graph.m r.sparsifier));
                ("levels", J.Int r.levels);
                ("classes", J.Int r.classes);
              ]
            ~rounds:r.rounds ~phases:r.phase_rounds ()
        in
        (* Bind one at a time: list literals evaluate right-to-left, which
           would print the broadcast row first. *)
        let row_u =
          mk "unicast" ru
            (Sparsify.Spectral.rounds_bound ~n ~u:(float_of_int u)
               ~gamma:0.25)
        in
        let row_b =
          mk "broadcast" rb
            (Sparsify.Spectral.bcast_rounds_bound ~n ~u:(float_of_int u))
        in
        [ row_u; row_b ])
      e11_sizes
  in
  Printf.printf
    "\nsolve at n=60 (identical solution and iterations asserted):\n";
  Printf.printf "%10s %6s %8s %14s\n" "model" "iters" "rounds"
    "sparsify-phase";
  let solve_rows =
    let n = 60 in
    let g = Gen.weighted_gnp ~seed:5L n 0.3 8 in
    let b =
      Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1))
    in
    let su = Laplacian.Solver.solve ~eps:1e-6 ~model:Runtime.Model.Unicast g b in
    let sb =
      Laplacian.Solver.solve ~eps:1e-6 ~model:Runtime.Model.Broadcast g b
    in
    assert (su.Laplacian.Solver.x = sb.Laplacian.Solver.x);
    assert (su.Laplacian.Solver.iterations = sb.Laplacian.Solver.iterations);
    let mk model (r : Laplacian.Solver.report) =
      let phase p = Option.value (List.assoc_opt p r.phase_rounds) ~default:0 in
      Printf.printf "%10s %6d %8d %14d\n" model r.iterations r.rounds
        (phase "sparsify");
      row reg
        ~key:(Printf.sprintf "%s n=%d" model n)
        ~params:
          [ ("model", J.String model); ("n", J.Int n); ("eps", J.Float 1e-6) ]
        ~stats:
          [
            ("iterations", J.Int r.iterations);
            ("sparsifier_edges", J.Int r.sparsifier_edges);
          ]
        ~rounds:r.rounds ~phases:r.phase_rounds ()
    in
    let row_u = mk "unicast" su in
    let row_b = mk "broadcast" sb in
    [ row_u; row_b ]
  in
  Printf.printf
    "\nnode programs on the live transports (round-for-round parity):\n";
  Printf.printf "%6s %14s %8s %12s %12s\n" "n" "program" "rounds" "uni-words"
    "bcast-words";
  let program_rows =
    List.concat_map
      (fun n ->
        let g = Gen.connected_gnp ~seed:11L n 0.3 in
        (* Explicit arena kernel so the row is CC_KERNEL/CC_SHARDS-proof;
           E9/E10 already pin all delivery engines bit-identical. *)
        let measure name fu fb =
          let urt =
            Clique.Kernel.On_sim.create
              (Clique.Sim.create ~kernel:Clique.Sim.Arena n)
          in
          let brt = Clique.Kernel.bcast n in
          let ru = fu urt and rb = fb brt in
          assert (ru = rb);
          let rounds = Clique.Kernel.On_sim.rounds urt in
          assert (rounds = Clique.Kernel.On_bcast.rounds brt);
          let uw = Clique.Kernel.On_sim.words urt in
          let bw = Clique.Kernel.On_bcast.words brt in
          Printf.printf "%6d %14s %8d %12d %12d\n" n name rounds uw bw;
          row reg
            ~key:(Printf.sprintf "%s n=%d" name n)
            ~params:[ ("program", J.String name); ("n", J.Int n) ]
            ~stats:
              [
                ("unicast_words", J.Int uw); ("broadcast_words", J.Int bw);
              ]
            ~rounds ~phases:[] ()
        in
        let row_bfs =
          measure "bfs"
            (fun rt -> Clique.Kernel.Sim_programs.bfs rt g 0)
            (fun rt -> Clique.Kernel.Bcast_programs.bfs rt g 0)
        in
        let row_bf =
          measure "bellman-ford"
            (fun rt -> Clique.Kernel.Sim_programs.bellman_ford rt g 0)
            (fun rt -> Clique.Kernel.Bcast_programs.bellman_ford rt g 0)
        in
        [ row_bfs; row_bf ])
      e11_program_sizes
  in
  experiment ~id:"E11"
    ~title:
      "broadcast congested clique - unicast vs broadcast round accounting \
       (identical outputs)"
    ~note:
      "rows assert outputs bit-identical across models (sparsifier edges, \
       solver solution and iterations, program answers and round totals); \
       only the charged decompose/gather accounting differs. The broadcast \
       decomposition recharge (FV22 polylog stand-in) is costlier at these \
       sizes - the crossover is asymptotic; see DESIGN.md section 13 and \
       EXPERIMENTS.md E11"
    reg
    [
      { s_name = "sparsify"; s_seed = 3L; s_rows = sparsify_rows };
      { s_name = "solve"; s_seed = 5L; s_rows = solve_rows };
      { s_name = "programs"; s_seed = 11L; s_rows = program_rows };
    ]

(* ------------------------------------------------------------------ E12 *)

(* Shard supervision and certified recovery (DESIGN.md section 14): the
   E10 all-to-all workload driven through the socket transport while
   workers are probed and killed. Three series:
   - "heartbeat": explicit liveness probes between rounds — rows assert
     every probe acked, none missed, and that probing charges no rounds;
   - "kill-respawn": SIGKILL one worker mid-run under [Respawn] — rows
     assert the final inboxes bit-identical to the in-process arena and
     land the replayed round in the "recovery" phase (the hard gate);
   - "kill-drain": SIGKILL one worker under [Drain] — survivors absorb
     the dead shard's node range (epoch bump) and the output stays
     bit-identical on the degraded session. *)

let e12_rounds = 4

let e12_sizes = sizes ~full:[ 48; 96 ] ~reduced:[ 48 ]

let e12_probes = 3

let e12_reference n =
  let arena = Clique.Sim.create ~kernel:Clique.Sim.Arena n in
  let outboxes = e9_outboxes n in
  let r = ref [||] in
  for _ = 1 to e12_rounds do
    r := Clique.Sim.exchange arena outboxes
  done;
  (!r, Clique.Sim.rounds arena)

(* Mirror of the coordinator's own death handling: SIGKILL, then reap so
   the bench never leaves a zombie even if recovery respawns first. *)
let e12_kill t slot =
  let pid = List.nth (Clique.Socket.pids t) slot in
  Unix.kill pid Sys.sigkill;
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let e12_resilience () =
  header
    "E12 | shard supervision - heartbeat overhead and certified recovery \
     from worker death (respawn replay, drain degradation)";
  let reg = Metrics.create () in
  let stat st name = Option.value (List.assoc_opt name st) ~default:0 in
  Printf.printf "%14s %6s %7s %8s %10s %8s %6s %8s\n" "series" "n" "shards"
    "rounds" "recovery" "deaths" "epoch" "equal";
  let print_row series n t equal =
    Printf.printf "%14s %6d %7d %8d %10d %8d %6d %8s\n" series n
      (Clique.Socket.shards t) (Clique.Socket.rounds t)
      (Clique.Socket.recovery_rounds t)
      (stat (Clique.Socket.stats t) "shard.deaths")
      (Clique.Socket.epoch t)
      (if equal then "yes" else "NO")
  in
  let socket_stats t =
    List.map (fun (k, v) -> (k, J.Int v)) (Clique.Socket.stats t)
  in
  let heartbeat_rows =
    List.map
      (fun n ->
        let reference, ref_rounds = e12_reference n in
        let outboxes = e9_outboxes n in
        let t = Clique.Socket.create ~shards:2 n in
        let last = ref [||] in
        for _ = 1 to e12_rounds do
          for _ = 1 to e12_probes do
            Clique.Socket.heartbeat t
          done;
          last := Clique.Socket.exchange t outboxes
        done;
        let st = Clique.Socket.stats t in
        let sent = stat st "shard.heartbeat.sent" in
        let equal =
          !last = reference
          && Clique.Socket.rounds t = ref_rounds
          && Clique.Socket.recovery_rounds t = 0
          && sent = e12_rounds * e12_probes * Clique.Socket.live_workers t
          && stat st "shard.heartbeat.acked" = sent
          && stat st "shard.heartbeat.missed" = 0
        in
        assert equal;
        print_row "heartbeat" n t equal;
        let r =
          row reg
            ~key:(Printf.sprintf "n=%d probes=%d" n e12_probes)
            ~params:[ ("n", J.Int n); ("probes", J.Int e12_probes) ]
            ~stats:(socket_stats t) ~ref_rounds
            ~rounds:(Clique.Socket.rounds t) ~phases:[] ()
        in
        Clique.Socket.close t;
        r)
      e12_sizes
  in
  let kill_rows policy name shards victim =
    List.map
      (fun n ->
        let reference, ref_rounds = e12_reference n in
        let outboxes = e9_outboxes n in
        let t =
          Clique.Socket.create ~shards ~policy ~timeout:10.0 ~backoff:0.05 n
        in
        let last = ref [||] in
        for r = 1 to e12_rounds do
          if r = e12_rounds / 2 then e12_kill t victim;
          last := Clique.Socket.exchange t outboxes
        done;
        let recovery = Clique.Socket.recovery_rounds t in
        let st = Clique.Socket.stats t in
        let equal =
          !last = reference
          && Clique.Socket.rounds t = ref_rounds + recovery
          && recovery = 1
          && stat st "shard.deaths" = 1
          && Clique.Socket.epoch t > 1
        in
        assert equal;
        print_row name n t equal;
        let r =
          row reg
            ~key:(Printf.sprintf "n=%d shards=%d" n shards)
            ~params:[ ("n", J.Int n); ("shards", J.Int shards) ]
            ~stats:(socket_stats t) ~ref_rounds
            ~rounds:(Clique.Socket.rounds t)
            ~phases:[ ("recovery", recovery) ]
            ()
        in
        Clique.Socket.close t;
        r)
      e12_sizes
  in
  let respawn_rows = kill_rows Runtime.Shard.Respawn "kill-respawn" 2 1 in
  let drain_rows = kill_rows Runtime.Shard.Drain "kill-drain" 3 1 in
  experiment ~id:"E12"
    ~title:
      "shard supervision - heartbeat overhead and certified recovery from \
       worker death"
    ~note:
      "rows assert recovery bit-identical to the in-process arena: respawn \
       replays the interrupted round (charged to the recovery phase, the \
       hard gate), drain reassigns the dead shard's range under a bumped \
       epoch, and heartbeat probes ack cleanly without charging rounds"
    reg
    [
      { s_name = "heartbeat"; s_seed = 0L; s_rows = heartbeat_rows };
      { s_name = "kill-respawn"; s_seed = 0L; s_rows = respawn_rows };
      { s_name = "kill-drain"; s_seed = 0L; s_rows = drain_rows };
    ]

(* ------------------------------------------------------------------ E13 *)

(* Throughput service (DESIGN.md section 15): the cc_serve daemon driven
   in-process over a Unix-domain socket. Three series:
   - "naive": every request carries nocache, so the daemon re-prepares the
     sparsifier + kappa estimate per request (the per-request baseline);
   - "batched": the same requests against the artifact cache — one miss
     builds the prepared handle, every later request reuses it. Rows
     assert identical solution fingerprints across both paths and a
     >= 2x jobs/sec speedup for the cache-hit path (the PR gate);
   - "zero-alloc": Gc.minor_words deltas around the workspace CG and
     Chebyshev kernels — 20 extra steady-state iterations must allocate
     exactly zero words (native backend).
   The rounds subtree (the bench_diff hard gate) carries the solver's
   charged rounds, which the prepared path replays bit-identically;
   jobs/sec and latency percentiles land in stats (informational). *)

(* (n, requests per series) *)
let e13_sizes = sizes ~full:[ (40, 40); (80, 24) ] ~reduced:[ (40, 12) ]

let e13_percentile sorted p =
  let len = Array.length sorted in
  if len = 0 then 0.
  else sorted.(min (len - 1) (int_of_float (p *. float_of_int (len - 1))))

let e13_request client body =
  let t0 = Unix.gettimeofday () in
  let reply =
    Serve.Client.request_string
      ~deadline:(Unix.gettimeofday () +. 60.)
      client body
  in
  let dt = Unix.gettimeofday () -. t0 in
  if not (Serve.Client.ok reply) then
    failwith
      (Option.value
         (Serve.Client.error_message reply)
         ~default:"cc_serve refused a bench request");
  (reply, dt)

let e13_field path reply =
  let rec go j = function
    | [] -> Some j
    | k :: rest -> (
      match J.member k j with Some v -> go v rest | None -> None)
  in
  go reply path

let e13_str path reply =
  match e13_field path reply with Some (J.String s) -> s | _ -> ""

let e13_int path reply =
  match e13_field path reply with
  | Some v -> Option.value (J.to_int_opt v) ~default:(-1)
  | None -> -1

let e13_solve_body ~id ~n ~nocache =
  Printf.sprintf
    {|{"id":%d,"kind":"solve","graph":{"gen":"connected_gnp","n":%d,"p":0.25,"seed":7}%s}|}
    id n
    (if nocache then {|,"nocache":true|} else "")

(* Run [requests] identical solves and return (fnv, rounds, jobs/sec,
   latencies). [warm] sends one untimed request first — for the batched
   series it is the cache miss that builds the prepared handle, leaving
   the timed window pure cache-hit. *)
let e13_run client ~n ~requests ~nocache ~warm =
  if warm then ignore (e13_request client (e13_solve_body ~id:0 ~n ~nocache));
  let lat = Array.make requests 0. in
  let fnv = ref "" and rounds = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to requests - 1 do
    let reply, dt =
      e13_request client (e13_solve_body ~id:(i + 1) ~n ~nocache)
    in
    lat.(i) <- dt *. 1000.;
    let f = e13_str [ "result"; "x_fnv" ] reply in
    if !fnv = "" then fnv := f
    else assert (!fnv = f) (* every reply bit-identical *);
    rounds := e13_int [ "result"; "rounds" ] reply
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.sort compare lat;
  (!fnv, !rounds, float_of_int requests /. elapsed, lat)

let e13_minor_words_per_extra_iteration () =
  (* Delta-of-deltas: iterations 5 -> 25 of each workspace kernel must
     allocate the same number of minor words, i.e. the steady-state loop
     is allocation-free. Meaningful on the native backend only. *)
  let g = Gen.connected_gnp ~seed:21L 60 0.15 in
  let l = Graph.laplacian g in
  let b =
    Linalg.Vec.center
      (Linalg.Vec.init 60 (fun i -> float_of_int ((i * 7) mod 11) -. 5.))
  in
  let cg_ws = Linalg.Cg.Workspace.create 60 in
  let apply_into src dst = Linalg.Csr.mul_vec_into l src dst in
  let run_cg k =
    ignore (Linalg.Cg.solve_into ~max_iters:k ~tol:0. cg_ws apply_into b)
  in
  let ch_ws = Linalg.Chebyshev.Workspace.create 60 in
  let solve_b_into src dst = Linalg.Vec.scale_into 0.125 src dst in
  let run_ch k =
    ignore
      (Linalg.Chebyshev.solve_into ~max_iters:k ~tol:0.
         ~apply_a_into:apply_into ~solve_b_into ~kappa:64. ch_ws b)
  in
  let delta f =
    let w0 = Gc.minor_words () in
    f ();
    Gc.minor_words () -. w0
  in
  run_cg 2;
  run_ch 2;
  let cg = (delta (fun () -> run_cg 25) -. delta (fun () -> run_cg 5)) /. 20. in
  let ch = (delta (fun () -> run_ch 25) -. delta (fun () -> run_ch 5)) /. 20. in
  (cg, ch)

let e13_throughput () =
  header
    "E13 | throughput service - batched cc_serve scheduler vs per-request \
     preparation, zero-alloc solver kernels";
  let reg = Metrics.create () in
  Printf.printf "%9s %6s %6s %10s %10s %10s %9s\n" "series" "n" "jobs"
    "jobs/sec" "p50 ms" "p99 ms" "speedup";
  let daemon_rows =
    List.map
      (fun (n, requests) ->
        let config =
          {
            Serve.Daemon.addr =
              Printf.sprintf "unix:/tmp/cc-bench-e13-%d-%d.sock"
                (Unix.getpid ()) n;
            jobs = 2;
            cache_cap = 16;
            policy = Serve.Exec.Off;
            max_bytes = 8 * 1024 * 1024;
          }
        in
        let t = Serve.Daemon.start config in
        let client = Serve.Client.connect (Serve.Daemon.addr t) in
        let naive_fnv, naive_rounds, naive_jps, naive_lat =
          e13_run client ~n ~requests ~nocache:true ~warm:false
        in
        let hit_fnv, hit_rounds, hit_jps, hit_lat =
          e13_run client ~n ~requests ~nocache:false ~warm:true
        in
        Serve.Client.close client;
        Serve.Daemon.stop t;
        Serve.Daemon.wait t;
        let speedup = hit_jps /. naive_jps in
        (* The PR gate: amortizing preparation across requests must pay at
           least 2x; bit-identity across both paths is non-negotiable. *)
        assert (naive_fnv = hit_fnv);
        assert (naive_rounds = hit_rounds);
        assert (speedup >= 2.);
        let print_series name jps lat speedup_str =
          Printf.printf "%9s %6d %6d %10.1f %10.3f %10.3f %9s\n" name n
            requests jps
            (e13_percentile lat 0.5)
            (e13_percentile lat 0.99)
            speedup_str
        in
        print_series "naive" naive_jps naive_lat "";
        print_series "batched" hit_jps hit_lat
          (Printf.sprintf "%.1fx" speedup);
        let mk name jps lat extra =
          row reg
            ~key:(Printf.sprintf "%s n=%d jobs=%d" name n requests)
            ~params:[ ("n", J.Int n); ("requests", J.Int requests) ]
            ~stats:
              ([
                 ("jobs_per_sec", J.Float jps);
                 ("p50_ms", J.Float (e13_percentile lat 0.5));
                 ("p99_ms", J.Float (e13_percentile lat 0.99));
                 ("x_fnv", J.String naive_fnv);
               ]
              @ extra)
            ~rounds:naive_rounds
            ~phases:[ ("chebyshev", naive_rounds) ]
            ()
        in
        ( mk "naive" naive_jps naive_lat [],
          mk "batched" hit_jps hit_lat
            [ ("speedup_vs_naive", J.Float speedup) ] ))
      e13_sizes
  in
  let naive_rows = List.map fst daemon_rows in
  let batched_rows = List.map snd daemon_rows in
  let cg_words, ch_words = e13_minor_words_per_extra_iteration () in
  let native = Sys.backend_type = Sys.Native in
  if native then begin
    assert (cg_words = 0.);
    assert (ch_words = 0.)
  end;
  Printf.printf
    "zero-alloc: %.1f words/extra CG iteration, %.1f words/extra Chebyshev \
     iteration%s\n"
    cg_words ch_words
    (if native then " (asserted zero)" else " (bytecode, not asserted)");
  let zero_alloc_rows =
    [
      row reg ~key:"cg-chebyshev n=60"
        ~params:[ ("n", J.Int 60) ]
        ~stats:
          [
            ("cg_words_per_iter", J.Float cg_words);
            ("chebyshev_words_per_iter", J.Float ch_words);
            ("asserted", J.Bool native);
          ]
        ~rounds:0 ~phases:[] ();
    ]
  in
  experiment ~id:"E13"
    ~title:
      "throughput service - batched solve scheduler vs per-request \
       preparation"
    ~note:
      "naive re-prepares sparsifier+kappa per request (nocache); batched \
       reuses the cached prepared handle; rows assert bit-identical \
       solution fingerprints, identical charged rounds, >= 2x jobs/sec, \
       and zero minor-words per steady-state solver iteration"
    reg
    [
      { s_name = "naive"; s_seed = 7L; s_rows = naive_rows };
      { s_name = "batched"; s_seed = 7L; s_rows = batched_rows };
      { s_name = "zero-alloc"; s_seed = 0L; s_rows = zero_alloc_rows };
    ]

(* -------------------------------------------------- Bechamel wall-clock *)

let wall_clock () =
  header "wall-clock kernels (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let e1 =
    Test.make ~name:"e1-sparsify-gnp60"
      (Staged.stage (fun () ->
           ignore
             (Sparsify.Spectral.sparsify (Gen.connected_gnp ~seed:3L 60 0.4))))
  in
  let e2 =
    let g = Gen.connected_gnp ~seed:5L 60 0.3 in
    let sp = Sparsify.Spectral.sparsify g in
    let b = Linalg.Vec.sub (Linalg.Vec.basis 60 0) (Linalg.Vec.basis 60 59) in
    Test.make ~name:"e2-solve-n60"
      (Staged.stage (fun () ->
           ignore (Laplacian.Solver.solve_with_sparsifier ~eps:1e-6 g sp b)))
  in
  let e3 =
    let g = Gen.cycle_union ~seed:5L 512 16 in
    Test.make ~name:"e3-euler-n512"
      (Staged.stage (fun () -> ignore (Euler.Orientation.orient g)))
  in
  let e4 =
    let g = Gen.layered_network ~seed:11L 3 3 6 in
    let t = Digraph.n g - 1 in
    let f, _ = Dinic.max_flow g ~s:0 ~t in
    let items =
      Decompose.decompose g ~s:0 ~t (Array.map (fun x -> 0.75 *. x) f)
    in
    let q =
      Decompose.accumulate g (Decompose.quantize_paths ~delta:0.125 items)
    in
    Test.make ~name:"e4-rounding"
      (Staged.stage (fun () ->
           ignore (Rounding.Flow_rounding.round g ~s:0 ~t ~delta:0.125 q)))
  in
  let e5 =
    let g = Gen.layered_network ~seed:13L 3 3 6 in
    Test.make ~name:"e5-maxflow-ipm"
      (Staged.stage (fun () ->
           ignore (Maxflow_ipm.max_flow g ~s:0 ~t:(Digraph.n g - 1))))
  in
  let e6 =
    let g, sigma = Gen.random_mcf ~seed:17L 8 16 10 in
    Test.make ~name:"e6-mincost-ipm"
      (Staged.stage (fun () -> ignore (Mcf_ipm.solve g ~sigma)))
  in
  let e7 =
    let g = Gen.layered_network ~seed:23L 4 4 16 in
    Test.make ~name:"e7-ford-fulkerson"
      (Staged.stage (fun () ->
           ignore (Ford_fulkerson.max_flow g ~s:0 ~t:(Digraph.n g - 1))))
  in
  let e8 =
    let g = Gen.connected_gnp ~seed:29L 24 0.5 in
    Test.make ~name:"e8-bss-d6"
      (Staged.stage (fun () -> ignore (Sparsify.Bss.sparsify ~d:6 g)))
  in
  let e9 =
    (* One persistent sim per (kernel, n): the arena's whole point is buffer
       reuse across rounds, so the measured loop is exchange alone. *)
    List.concat_map
      (fun n ->
        let outboxes = e9_outboxes n in
        let mk kernel kname =
          let sim = Clique.Sim.create ~kernel n in
          Test.make ~name:(Printf.sprintf "e9-%s-n%d" kname n)
            (Staged.stage (fun () -> ignore (Clique.Sim.exchange sim outboxes)))
        in
        [ mk Clique.Sim.Arena "arena"; mk Clique.Sim.Legacy "legacy" ])
      e9_sizes
  in
  let e10 =
    (* One persistent socket session per (shards, n): workers stay up across
       the measured loop, so the cost is a framed round, not a spawn. *)
    List.concat_map
      (fun n ->
        let outboxes = e9_outboxes n in
        List.map
          (fun shards ->
            let t = Clique.Socket.create ~shards n in
            Test.make ~name:(Printf.sprintf "e10-shards%d-n%d" shards n)
              (Staged.stage (fun () ->
                   ignore (Clique.Socket.exchange t outboxes))))
          e10_shard_counts)
      e10_sizes
  in
  let e11 =
    (* Broadcast delivery on the same all-to-all workload as E9: each
       source's outbox is one payload fanned to everyone, i.e. already
       broadcast-legal, so "e11-bcast-n<k>" is directly comparable to
       "e9-arena-n<k>" (same logical round, different delivery kernel). *)
    List.map
      (fun n ->
        let outboxes = e9_outboxes n in
        let t = Clique.Broadcast.create n in
        Test.make ~name:(Printf.sprintf "e11-bcast-n%d" n)
          (Staged.stage (fun () ->
               ignore (Clique.Broadcast.exchange t outboxes))))
      e9_sizes
  in
  let tests =
    Test.make_grouped ~name:"repro"
      ([ e1; e2; e3; e4; e5; e6; e7; e8 ] @ e9 @ e10 @ e11)
  in
  let quota = if reduced then 0.05 else 1.0 in
  let cfg =
    Benchmark.cfg ~limit:(if reduced then 5 else 20)
      ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  Printf.printf "%30s %16s\n" "kernel" "time/run";
  List.filter_map
    (fun (name, est) ->
      (* Strip the "repro/" group prefix for the JSON keys. *)
      let short =
        match String.index_opt name '/' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      match Analyze.OLS.estimates est with
      | Some (t :: _) ->
        if t > 1e9 then Printf.printf "%30s %13.2f s \n" name (t /. 1e9)
        else if t > 1e6 then Printf.printf "%30s %13.2f ms\n" name (t /. 1e6)
        else Printf.printf "%30s %13.2f us\n" name (t /. 1e3);
        Some (short, t)
      | _ ->
        Printf.printf "%30s %16s\n" name "n/a";
        None)
    (List.sort compare rows)

let () =
  Printf.printf
    "Reproduction benches: 'The Laplacian Paradigm in Deterministic \
     Congested Clique' (PODC 2023)%s\n"
    (if reduced then " [reduced mode]" else "");
  (* Bind one at a time: list literals evaluate right-to-left, which would
     print E8 first. *)
  let x1 = e1_sparsifier () in
  let x2 = e2_solver () in
  let x3 = e3_euler () in
  let x4 = e4_rounding () in
  let x5 = e5_maxflow () in
  let x6 = e6_mincost () in
  let x7 = e7_combined () in
  let x8 = e8_ablations () in
  let x9 = e9_kernel () in
  let x10 = e10_sharded () in
  let x11 = e11_models () in
  let x12 = e12_resilience () in
  let x13 = e13_throughput () in
  let experiments =
    [ x1; x2; x3; x4; x5; x6; x7; x8; x9; x10; x11; x12; x13 ]
  in
  let wall = wall_clock () in
  (* E9 headline: arena-vs-legacy speedup at the largest size measured. *)
  let biggest = List.fold_left max 0 e9_sizes in
  (match
     ( List.assoc_opt (Printf.sprintf "e9-arena-n%d" biggest) wall,
       List.assoc_opt (Printf.sprintf "e9-legacy-n%d" biggest) wall )
   with
  | Some a, Some l when a > 0. ->
    Printf.printf
      "\nE9: arena delivery %.2fx vs legacy at n=%d (%.2f us vs %.2f us per \
       round)\n"
      (l /. a) biggest (a /. 1e3) (l /. 1e3)
  | _ -> ());
  let paths = List.map (fun x -> write_bench x ~wall_clock:wall) experiments in
  Printf.printf "\ntelemetry: wrote %s (schema v1, mode=%s)\n"
    (String.concat " " paths) mode;
  Printf.printf "\nall experiment series completed.\n"
