(* Benchmark harness: regenerates every claim of the paper (there are no
   tables/figures — it is a brief announcement — so the "experiments" E1..E8
   are the theorem round-complexity claims and the §1.1 comparisons; see
   DESIGN.md §3 and EXPERIMENTS.md for the index).

   Two parts:
   1. round-count experiment series (the reproduction target: rounds in the
      congested-clique model, measured by the instrumented runtime);
   2. Bechamel wall-clock benches, one Test.make per experiment kernel. *)

let line = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* Unified per-phase round breakdown, printed after the totals of every
   experiment: each algorithm charges into one runtime ledger, so the
   breakdown always sums to the reported rounds. *)
let phases_str ps =
  "["
  ^ String.concat " " (List.map (fun (p, r) -> Printf.sprintf "%s=%d" p r) ps)
  ^ "]"

(* ------------------------------------------------------------------- E1 *)

let e1_sparsifier () =
  header
    "E1 | Theorem 3.3 - deterministic spectral sparsifier: size O(n log n \
     log U), measured alpha";
  Printf.printf "%6s %6s %4s %8s %10s %8s %10s %12s\n" "n" "m" "U" "|E(H)|"
    "alpha" "rounds" "ref" "size-bound";
  List.iter
    (fun (n, u) ->
      let g =
        if u = 1 then Gen.connected_gnp ~seed:3L n 0.5
        else Gen.weighted_gnp ~seed:3L n 0.5 u
      in
      let r = Sparsify.Spectral.sparsify g in
      let h = r.Sparsify.Spectral.sparsifier in
      let alpha = Sparsify.Quality.approximation_factor g h in
      Printf.printf "%6d %6d %4d %8d %10.2f %8d %10d %12d  %s\n" n (Graph.m g)
        u (Graph.m h) alpha r.Sparsify.Spectral.rounds
        (Sparsify.Spectral.rounds_bound ~n ~u:(float_of_int u) ~gamma:0.25)
        (Sparsify.Spectral.size_bound ~n ~u:(float_of_int u))
        (phases_str r.Sparsify.Spectral.phase_rounds))
    [ (40, 1); (60, 1); (80, 1); (100, 1); (60, 16); (60, 256) ]

(* ------------------------------------------------------------------- E2 *)

let e2_solver () =
  header
    "E2 | Theorem 1.1 / Corollary 2.3 - Laplacian solver: iterations ~ \
     sqrt(kappa) log(1/eps), rounds ~ n^{o(1)} log(U/eps)";
  let n = 60 in
  let g = Gen.weighted_gnp ~seed:5L n 0.3 8 in
  let b = Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1)) in
  let sp = Sparsify.Spectral.sparsify g in
  Printf.printf "eps sweep at n=%d m=%d (sparsifier reused):\n" n (Graph.m g);
  Printf.printf "%10s %6s %8s %10s %14s %12s\n" "eps" "iters" "ref" "rounds"
    "measured err" "cg rounds";
  List.iter
    (fun eps ->
      let r = Laplacian.Solver.solve_with_sparsifier ~eps g sp b in
      let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
      let reference =
        Linalg.Chebyshev.iteration_bound ~kappa:r.Laplacian.Solver.kappa ~eps
      in
      let cg = Laplacian.Solver.solve_cg_baseline ~eps g b in
      Printf.printf "%10.0e %6d %8d %10d %14.2e %12d  %s\n" eps
        r.Laplacian.Solver.iterations reference r.Laplacian.Solver.rounds err
        cg.Laplacian.Solver.rounds
        (phases_str r.Laplacian.Solver.phase_rounds))
    [ 1e-1; 1e-2; 1e-4; 1e-6; 1e-8 ];
  Printf.printf "\nn sweep at eps=1e-6 (full pipeline incl. sparsifier):\n";
  Printf.printf "%6s %6s %8s %8s %10s\n" "n" "m" "iters" "rounds" "kappa";
  List.iter
    (fun n ->
      let g = Gen.connected_gnp ~seed:7L n 0.3 in
      let b =
        Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1))
      in
      let r = Laplacian.Solver.solve ~eps:1e-6 g b in
      Printf.printf "%6d %6d %8d %8d %10.2f  %s\n" n (Graph.m g)
        r.Laplacian.Solver.iterations r.Laplacian.Solver.rounds
        r.Laplacian.Solver.kappa
        (phases_str r.Laplacian.Solver.phase_rounds))
    [ 30; 60; 90; 120 ]

(* ------------------------------------------------------------------- E3 *)

let e3_euler () =
  header
    "E3 | Theorem 1.4 - Eulerian orientation: O(log n log* n) rounds \
     (trivial algorithm: Theta(n))";
  Printf.printf "%7s %8s %8s %7s %10s %10s %10s\n" "n" "m" "rounds" "iters"
    "ref" "random" "trivial";
  List.iter
    (fun n ->
      let g = Gen.cycle_union ~seed:5L n (max 3 (n / 16)) in
      let r = Euler.Orientation.orient g in
      assert (Euler.Orientation.check g r.Euler.Orientation.orientation);
      (* The paper's randomized remark: sampling instead of coloring. *)
      let rnd =
        Euler.Orientation.orient ~selector:(Euler.Orientation.Sampling 1L) g
      in
      assert (Euler.Orientation.check g rnd.Euler.Orientation.orientation);
      Printf.printf "%7d %8d %8d %7d %10d %10d %10d  %s\n" n (Graph.m g)
        r.Euler.Orientation.rounds r.Euler.Orientation.iterations
        (Euler.Orientation.rounds_reference ~n)
        rnd.Euler.Orientation.rounds n
        (phases_str r.Euler.Orientation.phase_rounds))
    [ 64; 128; 256; 512; 1024; 2048; 4096 ]

(* ------------------------------------------------------------------- E4 *)

let e4_rounding () =
  header
    "E4 | Lemma 4.2 - flow rounding: O(log n log* n log(1/Delta)) rounds";
  let g = Gen.layered_network ~seed:11L 4 4 6 in
  let t = Digraph.n g - 1 in
  let f, v = Dinic.max_flow g ~s:0 ~t in
  Printf.printf
    "network: n=%d m=%d |f*|=%d; rounding (2/3)*f at grain delta=2^-k\n"
    (Digraph.n g) (Digraph.m g) v;
  Printf.printf "%4s %12s %8s %8s %14s\n" "k" "delta" "rounds" "levels"
    "value kept";
  List.iter
    (fun k ->
      let delta = 1. /. float_of_int (1 lsl k) in
      (* 2/3 has an infinite binary expansion, so after flooring to the grid
         every level keeps odd digits and must orient. *)
      let frac = Array.map (fun x -> 2. /. 3. *. x) f in
      let items = Decompose.decompose g ~s:0 ~t frac in
      let q = Decompose.accumulate g (Decompose.quantize_paths ~delta items) in
      let r = Rounding.Flow_rounding.round g ~s:0 ~t ~delta q in
      assert (Flow.is_integral r.Rounding.Flow_rounding.f);
      assert (Flow.is_feasible g ~s:0 ~t ~f:r.Rounding.Flow_rounding.f);
      Printf.printf "%4d %12g %8d %8d %14g  %s\n" k delta
        r.Rounding.Flow_rounding.rounds r.Rounding.Flow_rounding.levels
        (Flow.value g ~s:0 ~f:r.Rounding.Flow_rounding.f)
        (phases_str r.Rounding.Flow_rounding.phase_rounds))
    [ 2; 4; 6; 8; 10; 12 ]

(* ------------------------------------------------------------------- E5 *)

let e5_maxflow () =
  header
    "E5 | Theorem 1.2 - max flow: m^{3/7+o(1)} U^{1/7} rounds vs baselines";
  Printf.printf "%5s %5s %4s %5s %9s %9s %10s %9s %9s %8s\n" "n" "m" "U"
    "|f*|" "ipm-iter" "iter-ref" "ipm-rnds" "ff-rnds" "triv-rnds" "repairs";
  let run g u =
    let n = Digraph.n g in
    let r = Maxflow_ipm.max_flow g ~s:0 ~t:(n - 1) in
    let ff = Ford_fulkerson.max_flow g ~s:0 ~t:(n - 1) in
    let triv = Trivial.max_flow g ~s:0 ~t:(n - 1) in
    assert (r.Maxflow_ipm.value = ff.Ford_fulkerson.value);
    Printf.printf "%5d %5d %4d %5d %9d %9d %10d %9d %9d %8d  %s\n" n
      (Digraph.m g) u r.Maxflow_ipm.value r.Maxflow_ipm.ipm_iterations
      (Maxflow_ipm.iterations_reference ~m:(Digraph.m g) ~u)
      r.Maxflow_ipm.rounds ff.Ford_fulkerson.rounds triv.Trivial.rounds
      r.Maxflow_ipm.repair_augmentations
      (phases_str r.Maxflow_ipm.phase_rounds)
  in
  Printf.printf "m sweep (layered networks, U = 8):\n";
  List.iter
    (fun layers -> run (Gen.layered_network ~seed:13L layers 4 8) 8)
    [ 2; 3; 4; 5; 6 ];
  Printf.printf "U sweep (fixed 4x4 layered topology):\n";
  List.iter (fun u -> run (Gen.layered_network ~seed:13L 4 4 u) u) [ 1; 8; 64 ]

(* ------------------------------------------------------------------- E6 *)

let e6_mincost () =
  header
    "E6 | Theorem 1.3 - unit-capacity min-cost flow: ~m^{3/7}(n^{0.158} + \
     polylog W) rounds";
  Printf.printf "%5s %5s %5s %9s %9s %10s %10s %8s\n" "n" "m" "W" "ipm-iter"
    "iter-ref" "ipm-rnds" "ssp-rnds" "repairs";
  let run g sigma w =
    match (Mcf_ipm.solve g ~sigma, Mcf_ssp.solve g ~sigma) with
    | Some r, Some oracle ->
      assert (Float.abs (r.Mcf_ipm.cost -. oracle.Mcf_ssp.cost) < 1e-6);
      Printf.printf "%5d %5d %5d %9d %9d %10d %10d %8d  %s\n" (Digraph.n g)
        (Digraph.m g) w r.Mcf_ipm.ipm_iterations
        (Mcf_ipm.iterations_reference ~m:(Digraph.m g) ~w)
        r.Mcf_ipm.rounds oracle.Mcf_ssp.rounds r.Mcf_ipm.repair_augmentations
        (phases_str r.Mcf_ipm.phase_rounds)
    | None, None -> Printf.printf "      (infeasible instance skipped)\n"
    | _ -> failwith "ipm/oracle feasibility disagreement"
  in
  Printf.printf "m sweep (random unit-capacity instances, W = 10):\n";
  List.iter
    (fun (n, m) ->
      let g, sigma = Gen.random_mcf ~seed:17L n m 10 in
      run g sigma 10)
    [ (8, 16); (10, 28); (12, 40); (14, 56) ];
  Printf.printf "W sweep (fixed topology):\n";
  List.iter
    (fun w ->
      let g, sigma = Gen.random_mcf ~seed:19L 10 30 w in
      run g sigma w)
    [ 2; 16; 128 ];
  Printf.printf
    "engine comparison (same instance; direct two-sided barrier vs verbatim\n\
    \ Appendix C bipartite lift):\n";
  let g, sigma = Gen.random_mcf ~seed:17L 10 28 10 in
  (match (Mcf_ipm.solve g ~sigma, Cmsv_bipartite.solve g ~sigma) with
  | Some d, Some v ->
    Printf.printf
      "  direct:   cost=%g iters=%d rounds=%d %s\n\
      \  verbatim: cost=%g iters=%d rounds=%d perturbations=%d\n"
      d.Mcf_ipm.cost d.Mcf_ipm.ipm_iterations d.Mcf_ipm.rounds
      (phases_str d.Mcf_ipm.phase_rounds)
      v.Cmsv_bipartite.cost v.Cmsv_bipartite.ipm_iterations
      v.Cmsv_bipartite.rounds v.Cmsv_bipartite.perturbations
  | _ -> Printf.printf "  (instance infeasible)\n")

(* ------------------------------------------------------------------- E7 *)

let e7_baselines () =
  header
    "E7 | baselines of 1.1 - Ford-Fulkerson O(|f*| n^{0.158}) vs trivial \
     O(n log U): crossover at |f*| = o(n^{0.842} log U)";
  Printf.printf "%5s %5s %6s %7s %10s %10s %12s %10s\n" "n" "m" "U" "|f*|"
    "ff-rounds" "ff-worst" "triv-rounds" "ipm-rnds";
  List.iter
    (fun u ->
      let g = Gen.layered_network ~seed:23L 4 4 u in
      let n = Digraph.n g in
      let ff = Ford_fulkerson.max_flow g ~s:0 ~t:(n - 1) in
      let triv = Trivial.max_flow g ~s:0 ~t:(n - 1) in
      let ipm = Maxflow_ipm.max_flow g ~s:0 ~t:(n - 1) in
      Printf.printf "%5d %5d %6d %7d %10d %10d %12d %10d  %s\n" n
        (Digraph.m g) u ff.Ford_fulkerson.value ff.Ford_fulkerson.rounds
        (Ford_fulkerson.rounds_reference ~n ~value:ff.Ford_fulkerson.value)
        triv.Trivial.rounds ipm.Maxflow_ipm.rounds
        (phases_str ipm.Maxflow_ipm.phase_rounds))
    [ 1; 4; 16; 64; 256 ]

(* ------------------------------------------------------------------ E7b *)

let e7b_models () =
  header
    "E7b | model comparison - congested clique vs CONGEST (FGLP+21) vs \
     Broadcast Congested Clique (FV22) reference curves";
  Printf.printf "%9s %11s %6s %13s %15s %11s\n" "n" "m" "D" "clique-ref"
    "congest-ref" "bcc-ref";
  List.iter
    (fun (n, d) ->
      let m = n * 50 in
      Printf.printf "%9d %11d %6d %13d %15d %11d\n" n m d
        (Maxflow_ipm.rounds_reference ~n ~m ~u:16)
        (Clique.Congest.fglp_maxflow_rounds ~n ~m ~d ~u:16)
        (Clique.Congest.fv22_bcc_mcf_rounds ~n))
    [ (1000, 10); (10000, 15); (100000, 20); (1000000, 25) ];
  Printf.printf
    "(BCC column is FV22's randomized sqrt(n) min-cost flow - the paper's\n\
    \ only deterministic competitors are the trivial and FF baselines of E7)\n"

(* ------------------------------------------------------------------- E8 *)

let e8_ablations () =
  header "E8 | ablations - sparsifier backend and solver choice";
  Printf.printf "sparsifier backend on G(36, 0.5):\n";
  let g = Gen.connected_gnp ~seed:29L 36 0.5 in
  Printf.printf "%22s %8s %10s\n" "backend" "|E(H)|" "alpha";
  let report name h =
    Printf.printf "%22s %8d %10.2f\n" name (Graph.m h)
      (Sparsify.Quality.approximation_factor g h)
  in
  report "input (identity)" g;
  report "buckets (Thm 3.3)"
    (Sparsify.Spectral.sparsify g).Sparsify.Spectral.sparsifier;
  report "bss d=4" (Sparsify.Bss.sparsify ~d:4 g);
  report "bss d=6" (Sparsify.Bss.sparsify ~d:6 g);
  report "spanning tree" (Sparsify.Tree.max_weight_spanning_tree g);
  report "sampling (randomized)" (Sparsify.Sampling.sparsify ~seed:1L g);
  Printf.printf
    "\nsolver rounds at eps=1e-8 (preconditioned Chebyshev vs plain CG):\n";
  Printf.printf "%22s %12s %12s\n" "graph" "cheby-rnds" "cg-rnds";
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let b =
        Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1))
      in
      let r = Laplacian.Solver.solve ~eps:1e-8 g b in
      let cg = Laplacian.Solver.solve_cg_baseline ~eps:1e-8 g b in
      Printf.printf "%22s %12d %12d  %s\n" name r.Laplacian.Solver.rounds
        cg.Laplacian.Solver.rounds
        (phases_str r.Laplacian.Solver.phase_rounds))
    [
      ("expander(64)", Gen.expander 64 8);
      ("barbell(32)", Gen.barbell 32);
      ("grid 8x8", Gen.grid 8 8);
      ("gnp(64, 0.2)", Gen.connected_gnp ~seed:31L 64 0.2);
    ]

(* -------------------------------------------------- Bechamel wall-clock *)

let wall_clock () =
  header "wall-clock kernels (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let e1 =
    Test.make ~name:"e1-sparsify-gnp60"
      (Staged.stage (fun () ->
           ignore
             (Sparsify.Spectral.sparsify (Gen.connected_gnp ~seed:3L 60 0.4))))
  in
  let e2 =
    let g = Gen.connected_gnp ~seed:5L 60 0.3 in
    let sp = Sparsify.Spectral.sparsify g in
    let b = Linalg.Vec.sub (Linalg.Vec.basis 60 0) (Linalg.Vec.basis 60 59) in
    Test.make ~name:"e2-solve-n60"
      (Staged.stage (fun () ->
           ignore (Laplacian.Solver.solve_with_sparsifier ~eps:1e-6 g sp b)))
  in
  let e3 =
    let g = Gen.cycle_union ~seed:5L 512 16 in
    Test.make ~name:"e3-euler-n512"
      (Staged.stage (fun () -> ignore (Euler.Orientation.orient g)))
  in
  let e4 =
    let g = Gen.layered_network ~seed:11L 3 3 6 in
    let t = Digraph.n g - 1 in
    let f, _ = Dinic.max_flow g ~s:0 ~t in
    let items =
      Decompose.decompose g ~s:0 ~t (Array.map (fun x -> 0.75 *. x) f)
    in
    let q =
      Decompose.accumulate g (Decompose.quantize_paths ~delta:0.125 items)
    in
    Test.make ~name:"e4-rounding"
      (Staged.stage (fun () ->
           ignore (Rounding.Flow_rounding.round g ~s:0 ~t ~delta:0.125 q)))
  in
  let e5 =
    let g = Gen.layered_network ~seed:13L 3 3 6 in
    Test.make ~name:"e5-maxflow-ipm"
      (Staged.stage (fun () ->
           ignore (Maxflow_ipm.max_flow g ~s:0 ~t:(Digraph.n g - 1))))
  in
  let e6 =
    let g, sigma = Gen.random_mcf ~seed:17L 8 16 10 in
    Test.make ~name:"e6-mincost-ipm"
      (Staged.stage (fun () -> ignore (Mcf_ipm.solve g ~sigma)))
  in
  let e7 =
    let g = Gen.layered_network ~seed:23L 4 4 16 in
    Test.make ~name:"e7-ford-fulkerson"
      (Staged.stage (fun () ->
           ignore (Ford_fulkerson.max_flow g ~s:0 ~t:(Digraph.n g - 1))))
  in
  let e8 =
    let g = Gen.connected_gnp ~seed:29L 24 0.5 in
    Test.make ~name:"e8-bss-d6"
      (Staged.stage (fun () -> ignore (Sparsify.Bss.sparsify ~d:6 g)))
  in
  let tests =
    Test.make_grouped ~name:"repro" [ e1; e2; e3; e4; e5; e6; e7; e8 ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  Printf.printf "%30s %16s\n" "kernel" "time/run";
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (t :: _) ->
        if t > 1e9 then Printf.printf "%30s %13.2f s \n" name (t /. 1e9)
        else if t > 1e6 then Printf.printf "%30s %13.2f ms\n" name (t /. 1e6)
        else Printf.printf "%30s %13.2f us\n" name (t /. 1e3)
      | _ -> Printf.printf "%30s %16s\n" name "n/a")
    (List.sort compare rows)

let () =
  Printf.printf
    "Reproduction benches: 'The Laplacian Paradigm in Deterministic \
     Congested Clique' (PODC 2023)\n";
  e1_sparsifier ();
  e2_solver ();
  e3_euler ();
  e4_rounding ();
  e5_maxflow ();
  e6_mincost ();
  e7_baselines ();
  e7b_models ();
  e8_ablations ();
  wall_clock ();
  Printf.printf "\nall experiment series completed.\n"
