(* cc_lint — model-compliance linter for the congested-clique reproduction.

   Usage: cc_lint [--rules] [--semantic | --no-semantic] [--graph]
                  [--json] [PATH ...]                 (default paths: lib bin)

   The lexical rules (L1-L9, Analysis.Lint) always run and stay the fast
   path. --semantic additionally parses every implementation with the
   compiler frontend, builds the module-qualified call graph, and runs the
   interprocedural rules L10-L12 (Analysis.Semantic); because L12
   supersedes L8 with AST-accurate scoping, the lexical L8 findings are
   dropped when the semantic pass runs. --graph dumps the call graph as
   GraphViz DOT to stdout and exits. --json renders findings through the
   dependency-free Metrics.Json instead of line-per-finding text.

   Exit codes: 0 clean, 1 findings (or semantic parse errors), 2 usage. *)

let usage () =
  prerr_endline
    "usage: cc_lint [--rules] [--semantic | --no-semantic] [--graph] \
     [--json] [PATH ...]   (default: lib bin)";
  exit 2

type opts = {
  semantic : bool;
  graph : bool;
  json : bool;
  roots : string list;
}

let parse_args args =
  let rec go opts = function
    | [] -> opts
    | "--semantic" :: rest -> go { opts with semantic = true } rest
    | "--no-semantic" :: rest -> go { opts with semantic = false } rest
    | "--graph" :: rest -> go { opts with graph = true; semantic = true } rest
    | "--json" :: rest -> go { opts with json = true } rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | path :: rest -> go { opts with roots = opts.roots @ [ path ] } rest
  in
  let opts =
    go { semantic = false; graph = false; json = false; roots = [] } args
  in
  if opts.roots = [] then { opts with roots = [ "lib"; "bin" ] } else opts

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--rules" args then begin
    print_endline (Analysis.Report.rules_table ());
    exit 0
  end;
  let opts = parse_args args in
  match
    let lexical = Analysis.Lint.lint_paths opts.roots in
    if not opts.semantic then (lexical, [])
    else begin
      let sem = Analysis.Semantic.analyze_paths opts.roots in
      if opts.graph then begin
        print_string (Analysis.Callgraph.to_dot sem.graph);
        exit 0
      end;
      (* L12 sees everything L8 sees plus nested bindings: keep one
         finding per allocation site, the AST-accurate one. *)
      let lexical =
        List.filter (fun f -> f.Analysis.Lint.rule <> Analysis.Rule.L8) lexical
      in
      ( List.sort Analysis.Lint.compare_findings (lexical @ sem.findings),
        sem.errors )
    end
  with
  | findings, errors ->
    List.iter (fun e -> prerr_endline ("cc_lint: parse error: " ^ e)) errors;
    if opts.json then
      Analysis.Report.print_json stdout ~errors findings
    else Analysis.Report.print stdout findings;
    prerr_endline (Analysis.Report.summary findings);
    exit (if findings = [] && errors = [] then 0 else 1)
  | exception Invalid_argument msg ->
    prerr_endline ("cc_lint: " ^ msg);
    exit 2
