(* cc_lint — model-compliance linter for the congested-clique reproduction.

   Usage: cc_lint [--rules] [PATH ...]        (default paths: lib bin)

   Prints one machine-readable line per finding (file:line rule message)
   and exits 1 iff any finding survived suppression, 2 on usage errors. *)

let usage () =
  prerr_endline "usage: cc_lint [--rules] [PATH ...]   (default: lib bin)";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--help" args || List.mem "-h" args then usage ();
  if List.mem "--rules" args then begin
    print_endline (Analysis.Report.rules_table ());
    exit 0
  end;
  let roots = match args with [] -> [ "lib"; "bin" ] | paths -> paths in
  match Analysis.Lint.lint_paths roots with
  | [] ->
    prerr_endline (Analysis.Report.summary []);
    exit 0
  | findings ->
    Analysis.Report.print stdout findings;
    prerr_endline (Analysis.Report.summary findings);
    exit 1
  | exception Invalid_argument msg ->
    prerr_endline ("cc_lint: " ^ msg);
    exit 2
