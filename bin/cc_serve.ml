(* The batched solve daemon (DESIGN.md §15).

     cc_serve                        # serve CC_SERVE_ADDR until Shutdown
     cc_serve --addr unix:/tmp/s     # override the address
     cc_serve --call '<json>'        # one-shot client: send a job, print
                                     # the reply, exit 0 iff ok

   Knobs (env): CC_SERVE_ADDR, CC_SERVE_JOBS, CC_SERVE_CACHE,
   CC_SERVE_POLICY (none | verify | recover). *)

let usage () =
  prerr_endline
    "usage: cc_serve [--addr ADDR] [--jobs N] [--cache N] [--policy P]\n\
    \       cc_serve --call JSON [--addr ADDR]\n\
     env: CC_SERVE_ADDR CC_SERVE_JOBS CC_SERVE_CACHE CC_SERVE_POLICY";
  exit 2

let fail msg =
  prerr_endline ("cc_serve: " ^ msg);
  exit 1

type opts = {
  mutable addr : string option;
  mutable jobs : int option;
  mutable cache : int option;
  mutable policy : string option;
  mutable call : string option;
}

let parse_args () =
  let o = { addr = None; jobs = None; cache = None; policy = None; call = None } in
  let rec go = function
    | [] -> o
    | "--addr" :: v :: rest ->
      o.addr <- Some v;
      go rest
    | "--jobs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        o.jobs <- Some n;
        go rest
      | _ -> fail ("--jobs must be a positive integer, got " ^ v))
    | "--cache" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        o.cache <- Some n;
        go rest
      | _ -> fail ("--cache must be a positive integer, got " ^ v))
    | "--policy" :: v :: rest ->
      o.policy <- Some v;
      go rest
    | "--call" :: v :: rest ->
      o.call <- Some v;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

let () =
  let o = parse_args () in
  let config =
    match Serve.Daemon.config_of_env () with
    | Ok c -> c
    | Error msg -> fail msg
  in
  let config =
    {
      config with
      Serve.Daemon.addr = Option.value o.addr ~default:config.Serve.Daemon.addr;
      jobs = Option.value o.jobs ~default:config.Serve.Daemon.jobs;
      cache_cap = Option.value o.cache ~default:config.Serve.Daemon.cache_cap;
      policy =
        (match o.policy with
        | None -> config.Serve.Daemon.policy
        | Some p -> (
          match Serve.Exec.policy_of_string p with
          | Ok p -> p
          | Error msg -> fail msg));
    }
  in
  match o.call with
  | Some body ->
    let client =
      match Serve.Client.connect config.Serve.Daemon.addr with
      | c -> c
      | exception Unix.Unix_error (e, _, _) ->
        fail
          (Printf.sprintf "cannot reach %s: %s" config.Serve.Daemon.addr
             (Unix.error_message e))
    in
    let reply = Serve.Client.request_string client body in
    Serve.Client.close client;
    print_endline (Serve.Client.Json.to_string reply);
    exit (if Serve.Client.ok reply then 0 else 1)
  | None ->
    let t = Serve.Daemon.start config in
    Printf.printf "cc_serve: listening on %s (%d workers, cache %d, policy %s)\n%!"
      (Serve.Daemon.addr t) config.Serve.Daemon.jobs
      config.Serve.Daemon.cache_cap
      (Serve.Exec.policy_name config.Serve.Daemon.policy);
    Serve.Daemon.wait t
