(* Remote shard worker launcher (DESIGN.md §14). Run on any host that can
   reach a coordinator started with CC_SHARD_ADDR and CC_SHARD_REMOTE:

     cc_worker tcp:host:port      # or host:port, or unix:/path
     CC_SHARD_ADDR=host:port cc_worker

   Dials the rendezvous, is assigned a reserved shard slot, and serves
   rounds until the session shuts down. Never returns. *)

let () =
  let addr =
    if Array.length Sys.argv > 1 then Some Sys.argv.(1)
    else Sys.getenv_opt Clique.Socket.env_addr
  in
  match addr with
  | Some a -> Clique.Socket.remote_worker a
  | None ->
    prerr_endline
      "usage: cc_worker <host:port>   (or set CC_SHARD_ADDR)";
    exit 2
