(* bench_diff — the regression gate over BENCH_*.json telemetry.

   Usage:
     bench_diff [options] OLD NEW

   OLD and NEW are either two directories containing BENCH_E<k>.json files
   (the committed baseline vs a fresh run) or two individual files. The
   round series of seeded experiments are bit-for-bit deterministic, so any
   drift in the "rounds" subtree of any row is a hard failure; "stats"
   differences are reported but never fail (floats may drift across
   platforms); wall-clock is gated by a ratio threshold and is meant to run
   as a soft CI step. Policy: DESIGN.md §8.

   Exit codes: 0 no drift, 1 drift detected, 2 usage or parse error. *)

module J = Metrics.Json

let threshold = ref 1.5

let check_wallclock = ref true

let paths = ref []

let usage = "usage: bench_diff [--wallclock-threshold R] [--no-wallclock] OLD NEW"

let spec =
  [
    ( "--wallclock-threshold",
      Arg.Set_float threshold,
      "R  fail when new/old time-per-run exceeds R (default 1.5)" );
    ( "--no-wallclock",
      Arg.Clear check_wallclock,
      "  compare round series only (the hard gate)" );
  ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_diff: " ^ s); exit 2) fmt

let drift = ref 0

let notes = ref 0

let fail_drift fmt =
  Printf.ksprintf
    (fun s ->
      incr drift;
      Printf.printf "DRIFT %s\n" s)
    fmt

let note fmt =
  Printf.ksprintf
    (fun s ->
      incr notes;
      Printf.printf "note  %s\n" s)
    fmt

let load path =
  let ic = try open_in_bin path with Sys_error e -> die "%s" e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match J.of_string s with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

let str_field name j =
  match J.member name j with
  | Some (J.String s) -> s
  | _ -> die "missing string field %S" name

let get_rows series_j =
  match J.member "rows" series_j with
  | Some (J.List rows) ->
    List.map (fun r -> (Option.value ~default:"?" (Option.bind (J.member "key" r) J.to_string_opt), r)) rows
  | _ -> []

let get_series exp_j =
  match J.member "series" exp_j with
  | Some (J.List ss) ->
    List.map (fun s -> (str_field "name" s, get_rows s)) ss
  | _ -> die "experiment %s has no series list" (str_field "experiment" exp_j)

(* The hard gate: the "rounds" subtree (total, ref, per-phase breakdown)
   must be structurally identical for every row key present in OLD. *)
let compare_rows ~id ~series_name old_rows new_rows =
  List.iter
    (fun (key, old_row) ->
      match List.assoc_opt key new_rows with
      | None -> fail_drift "%s %s: row %S disappeared" id series_name key
      | Some new_row -> (
        let old_rounds = J.member "rounds" old_row
        and new_rounds = J.member "rounds" new_row in
        (match (old_rounds, new_rounds) with
        | Some o, Some n ->
          if not (J.equal o n) then
            fail_drift "%s %s %s: rounds %s -> %s" id series_name key
              (J.to_string ~minify:true o)
              (J.to_string ~minify:true n)
        | _ -> fail_drift "%s %s %s: malformed rounds field" id series_name key);
        match (J.member "stats" old_row, J.member "stats" new_row) with
        | Some o, Some n when not (J.equal o n) ->
          note "%s %s %s: stats %s -> %s (informational)" id series_name key
            (J.to_string ~minify:true o)
            (J.to_string ~minify:true n)
        | _ -> ()))
    old_rows;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key old_rows) then
        note "%s %s: new row %S (not in baseline)" id series_name key)
    new_rows

(* The soft gate. The full per-kernel ratio table is printed even when every
   row passes — CI logs then show the trend, not just the failures. *)
let compare_wallclock ~id old_j new_j =
  let entries j =
    match J.member "wall_clock" j with Some (J.Assoc kv) -> kv | _ -> []
  in
  let time j =
    Option.bind (J.member "time_per_run_ns" j) J.to_float_opt
  in
  List.iter
    (fun (kernel, old_entry) ->
      match List.assoc_opt kernel (entries new_j) with
      | None -> note "%s wall-clock kernel %S missing in new run" id kernel
      | Some new_entry -> (
        match (time old_entry, time new_entry) with
        | Some o, Some n when o > 0. ->
          let ratio = n /. o in
          if ratio > !threshold then
            fail_drift
              "%s wall-clock %-24s %12.0f ns -> %12.0f ns  %.2fx (threshold \
               %.2fx)"
              id kernel o n ratio !threshold
          else
            Printf.printf "wall  %s %-24s %12.0f ns -> %12.0f ns  %.2fx%s\n"
              id kernel o n ratio
              (if ratio < 1. /. !threshold then "  (improved)" else "")
        | _ -> note "%s wall-clock %s: missing estimate" id kernel))
    (entries old_j)

let compare_files old_path new_path =
  let old_j = load old_path and new_j = load new_path in
  let version j =
    match J.member "schema_version" j with Some (J.Int v) -> v | _ -> -1
  in
  if version old_j <> version new_j then
    die "%s and %s have different schema versions (%d vs %d)" old_path
      new_path (version old_j) (version new_j);
  let id = str_field "experiment" old_j in
  if str_field "experiment" new_j <> id then
    die "%s is %s but %s is %s" old_path id new_path
      (str_field "experiment" new_j);
  let old_mode = str_field "mode" old_j and new_mode = str_field "mode" new_j in
  if old_mode <> new_mode then
    die
      "mode mismatch for %s (%s vs %s): a reduced run only compares \
       against a reduced baseline"
      id old_mode new_mode;
  let new_series = get_series new_j in
  List.iter
    (fun (name, old_rows) ->
      match List.assoc_opt name new_series with
      | None -> fail_drift "%s: series %S disappeared" id name
      | Some new_rows -> compare_rows ~id ~series_name:name old_rows new_rows)
    (get_series old_j);
  if !check_wallclock then compare_wallclock ~id old_j new_j

let bench_files dir =
  let all = try Sys.readdir dir with Sys_error e -> die "%s" e in
  Array.to_list all
  |> List.filter (fun f ->
         String.length f > 6
         && String.sub f 0 6 = "BENCH_"
         && Filename.check_suffix f ".json")
  |> List.sort compare

let () =
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  match List.rev !paths with
  | [ old_p; new_p ] ->
    (if Sys.is_directory old_p && Sys.is_directory new_p then begin
       let old_files = bench_files old_p and new_files = bench_files new_p in
       if old_files = [] then die "no BENCH_*.json files in %s" old_p;
       List.iter
         (fun f ->
           if List.mem f new_files then
             compare_files (Filename.concat old_p f) (Filename.concat new_p f)
           else fail_drift "%s missing from %s" f new_p)
         old_files;
       List.iter
         (fun f ->
           if not (List.mem f old_files) then
             note "%s not in baseline %s" f old_p)
         new_files
     end
     else if (not (Sys.is_directory old_p)) && not (Sys.is_directory new_p)
     then compare_files old_p new_p
     else die "OLD and NEW must both be directories or both be files");
    if !drift > 0 then begin
      Printf.printf "bench_diff: %d drift(s), %d note(s)\n" !drift !notes;
      exit 1
    end
    else Printf.printf "bench_diff: no drift (%d note(s))\n" !notes
  | _ -> die "%s" usage
