(* Tests for Eulerian orientation (Theorem 1.4). *)

module Graph_gen = Gen

let check_orient ?choose g =
  let r = Euler.Orientation.orient ?choose g in
  Alcotest.(check bool) "balanced orientation" true
    (Euler.Orientation.check g r.Euler.Orientation.orientation);
  r

let test_single_cycle () =
  let g = Graph_gen.cycle 7 in
  let r = check_orient g in
  Alcotest.(check int) "one ring" 1 r.Euler.Orientation.rings

let test_two_parallel_edges () =
  let g =
    Graph.create 2
      [ { Graph.u = 0; v = 1; w = 1. }; { Graph.u = 0; v = 1; w = 1. } ]
  in
  let r = check_orient g in
  (* The two copies must take opposite directions. *)
  Alcotest.(check bool) "opposite" true
    (r.Euler.Orientation.orientation.(0)
    <> r.Euler.Orientation.orientation.(1))

let test_hypercube () =
  (* Hypercube of even dimension is Eulerian. *)
  let g = Graph_gen.hypercube 4 in
  Alcotest.(check bool) "eulerian" true (Euler.Orientation.is_eulerian g);
  ignore (check_orient g)

let test_complete_odd () =
  (* K_n with odd n: all degrees even. *)
  let g = Graph_gen.complete 9 in
  ignore (check_orient g)

let test_even_gnp_family () =
  List.iter
    (fun seed ->
      let g = Graph_gen.even_gnp ~seed:(Int64.of_int seed) 40 0.2 in
      ignore (check_orient g))
    [ 1; 2; 3; 4; 5; 6 ]

let test_cycle_union_family () =
  List.iter
    (fun (n, k, seed) ->
      let g = Graph_gen.cycle_union ~seed:(Int64.of_int seed) n k in
      ignore (check_orient g))
    [ (10, 3, 1); (25, 6, 2); (50, 10, 3); (100, 12, 4) ]

let test_odd_degree_rejected () =
  let g = Graph_gen.path 3 in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Euler.Orientation.orient g);
       false
     with Invalid_argument _ -> true)

let test_empty_graph () =
  let g = Graph.create 5 [] in
  let r = Euler.Orientation.orient g in
  Alcotest.(check int) "no rounds" 0 r.Euler.Orientation.rounds

let test_round_scaling () =
  (* Measured rounds grow like log n · log* n: compare n = 64 and n = 1024
     single cycles — ratio should be ≈ log ratio (log* equal), well below
     linear. *)
  let r1 = check_orient (Graph_gen.cycle 64) in
  let r2 = check_orient (Graph_gen.cycle 1024) in
  let rounds1 = r1.Euler.Orientation.rounds in
  let rounds2 = r2.Euler.Orientation.rounds in
  Alcotest.(check bool)
    (Printf.sprintf "sublinear growth: %d -> %d" rounds1 rounds2)
    true
    (rounds2 < 4 * rounds1);
  Alcotest.(check bool) "within reference curve" true
    (rounds2 <= Euler.Orientation.rounds_reference ~n:1024)

let test_iterations_logarithmic () =
  let r = check_orient (Graph_gen.cycle 512) in
  Alcotest.(check bool)
    (Printf.sprintf "iterations=%d" r.Euler.Orientation.iterations)
    true
    (r.Euler.Orientation.iterations <= 11)

let test_choose_flip () =
  (* Flipping every ring still balances. *)
  let g = Graph_gen.cycle_union ~seed:9L 30 5 in
  let r = check_orient ~choose:(fun _ -> false) g in
  let r' = check_orient ~choose:(fun _ -> true) g in
  (* Same ring structure, opposite orientations. *)
  Alcotest.(check int) "same rings" r.Euler.Orientation.rings
    r'.Euler.Orientation.rings

let test_choose_sees_whole_ring () =
  let g = Graph_gen.cycle 6 in
  let seen = ref 0 in
  let choose edges =
    seen := List.length edges;
    true
  in
  ignore (check_orient ~choose g);
  Alcotest.(check int) "leader sees all 6 edges" 6 !seen

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"orientation always balanced (even_gnp)" ~count:30
      small_nat
      (fun seed ->
        let g =
          Graph_gen.even_gnp ~seed:(Int64.of_int (seed + 1)) 24 0.25
        in
        let r = Euler.Orientation.orient g in
        Euler.Orientation.check g r.Euler.Orientation.orientation);
    Test.make ~name:"orientation always balanced (cycle unions)" ~count:30
      (pair (int_range 5 60) (int_range 1 8))
      (fun (n, k) ->
        let g = Graph_gen.cycle_union ~seed:(Int64.of_int (n + k)) n k in
        let r = Euler.Orientation.orient g in
        Euler.Orientation.check g r.Euler.Orientation.orientation);
    Test.make ~name:"every edge gets exactly one direction" ~count:20
      small_nat
      (fun seed ->
        let g = Graph_gen.even_gnp ~seed:(Int64.of_int (seed + 77)) 20 0.3 in
        let r = Euler.Orientation.orient g in
        Array.length r.Euler.Orientation.orientation = Graph.m g);
  ]

let suite =
  [
    Alcotest.test_case "single cycle" `Quick test_single_cycle;
    Alcotest.test_case "two parallel edges" `Quick test_two_parallel_edges;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "complete K9" `Quick test_complete_odd;
    Alcotest.test_case "even gnp family" `Quick test_even_gnp_family;
    Alcotest.test_case "cycle union family" `Quick test_cycle_union_family;
    Alcotest.test_case "odd degree rejected" `Quick test_odd_degree_rejected;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "round scaling log n log* n" `Quick test_round_scaling;
    Alcotest.test_case "iterations logarithmic" `Quick
      test_iterations_logarithmic;
    Alcotest.test_case "choose flip" `Quick test_choose_flip;
    Alcotest.test_case "choose sees whole ring" `Quick
      test_choose_sees_whole_ring;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* ------------------------------------------- randomized selector (remark) *)

let test_randomized_orientation_balanced () =
  List.iter
    (fun seed ->
      let g = Graph_gen.even_gnp ~seed:(Int64.of_int seed) 40 0.2 in
      let r =
        Euler.Orientation.orient
          ~selector:(Euler.Orientation.Sampling (Int64.of_int (seed * 7)))
          g
      in
      Alcotest.(check bool) "balanced" true
        (Euler.Orientation.check g r.Euler.Orientation.orientation))
    [ 1; 2; 3; 4; 5 ]

let test_randomized_drops_coloring_rounds () =
  let g = Graph_gen.cycle 2048 in
  let det = Euler.Orientation.orient g in
  let rnd =
    Euler.Orientation.orient ~selector:(Euler.Orientation.Sampling 5L) g
  in
  Alcotest.(check bool) "balanced" true
    (Euler.Orientation.check g rnd.Euler.Orientation.orientation);
  Alcotest.(check int) "no coloring rounds" 0
    rnd.Euler.Orientation.coloring_rounds;
  Alcotest.(check bool)
    (Printf.sprintf "fewer rounds: %d < %d" rnd.Euler.Orientation.rounds
       det.Euler.Orientation.rounds)
    true
    (rnd.Euler.Orientation.rounds < det.Euler.Orientation.rounds)

let suite =
  suite
  @ [
      Alcotest.test_case "randomized selector balanced" `Quick
        test_randomized_orientation_balanced;
      Alcotest.test_case "randomized drops coloring rounds" `Quick
        test_randomized_drops_coloring_rounds;
    ]
