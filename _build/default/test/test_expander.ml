(* Tests for conductance, Fiedler approximation, expander decomposition. *)

module Graph_gen = Gen

let test_conductance_complete () =
  (* K4: any cut S of size 1 has cut 3, vol 3 → φ = 1. Size-2 cuts: cut 4,
     vol 6 → 2/3. Exact conductance = 2/3. *)
  let g = Graph_gen.complete 4 in
  Alcotest.(check (float 1e-9)) "K4 conductance" (2. /. 3.)
    (Expander.Conductance.exact g)

let test_conductance_path () =
  (* Path on 4: cutting the middle edge: cut 1, vol min = 3 → 1/3;
     cutting an end edge: 1/1 = 1... vol of single endpoint = 1, cut 1 → 1.
     middle cut vol(S)=deg0+deg1=1+2=3 → 1/3. Exact = 1/3. *)
  let g = Graph_gen.path 4 in
  Alcotest.(check (float 1e-9)) "P4 conductance" (1. /. 3.)
    (Expander.Conductance.exact g)

let test_conductance_of_cut_barbell () =
  let g = Graph_gen.barbell 6 in
  let inside = Array.init 12 (fun v -> v < 6) in
  let phi = Expander.Conductance.of_cut g inside in
  (* bridge weight 1; vol side = 6·5 + 1 = 31 *)
  Alcotest.(check (float 1e-9)) "bridge cut" (1. /. 31.) phi

let test_fiedler_lambda2_path_vs_exact () =
  let g = Graph_gen.path 8 in
  let exact = Expander.Fiedler.lambda2_exact g in
  let approx, _ = Expander.Fiedler.approx ~iters:2000 g in
  Alcotest.(check bool) "approx close to exact" true
    (Float.abs (exact -. approx) < 0.05 *. Float.max exact 0.05)

let test_fiedler_lambda2_complete () =
  (* Normalized Laplacian of K_n has λ₂ = n/(n−1). *)
  let g = Graph_gen.complete 8 in
  let exact = Expander.Fiedler.lambda2_exact g in
  Alcotest.(check (float 1e-6)) "K8 normalized λ₂" (8. /. 7.) exact

let test_fiedler_sweep_finds_barbell_cut () =
  let g = Graph_gen.barbell 8 in
  let _, x = Expander.Fiedler.approx g in
  let inside, phi = Expander.Conductance.sweep_cut g x in
  (* The sweep should find (nearly) the bridge cut. *)
  Alcotest.(check bool) "sparse cut found" true (phi < 0.05);
  let size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 inside in
  Alcotest.(check bool) "balanced-ish" true (size >= 2 && size <= 14)

let test_decomposition_expander_stays_whole () =
  (* A good expander should come back as (nearly) one cluster. *)
  let g = Graph_gen.expander 64 8 in
  let d = Expander.Decomposition.decompose ~phi:0.05 g in
  Alcotest.(check bool) "valid" true (Expander.Decomposition.check g d);
  Alcotest.(check bool) "few clusters" true
    (List.length d.Expander.Decomposition.clusters <= 4);
  Alcotest.(check bool) "few crossing edges" true
    (Expander.Decomposition.crossing_fraction g d <= 0.5)

let test_decomposition_barbell_splits () =
  let g = Graph_gen.barbell 10 in
  let d = Expander.Decomposition.decompose ~phi:0.05 g in
  Alcotest.(check bool) "valid" true (Expander.Decomposition.check g d);
  Alcotest.(check bool) "at least two clusters" true
    (List.length d.Expander.Decomposition.clusters >= 2);
  (* Only the bridge should cross. *)
  Alcotest.(check bool) "few crossing" true
    (List.length d.Expander.Decomposition.crossing <= 3)

let test_decomposition_planted_partition () =
  let g = Graph_gen.planted_partition ~seed:21L 40 0.5 0.02 in
  let d = Expander.Decomposition.decompose ~phi:0.05 g in
  Alcotest.(check bool) "valid" true (Expander.Decomposition.check g d);
  (* Crossing fraction stays well below the dense intra-community part. *)
  Alcotest.(check bool) "crossing fraction < 1/4" true
    (Expander.Decomposition.crossing_fraction g d < 0.25)

let test_decomposition_clusters_certified () =
  (* Every accepted cluster of size ≥ 3 should have measured conductance
     within a constant factor of the target (Cheeger slack is √). *)
  let g = Graph_gen.connected_gnp ~seed:33L 60 0.12 in
  let phi = 0.05 in
  let d = Expander.Decomposition.decompose ~phi g in
  Alcotest.(check bool) "valid" true (Expander.Decomposition.check g d);
  List.iter
    (fun vs ->
      if Array.length vs >= 3 && Array.length vs <= 16 then begin
        let sub, _ = Graph.induced g vs in
        if Graph.m sub > 0 && Graph.is_connected sub then begin
          let measured = Expander.Conductance.exact sub in
          if measured < phi then
            Alcotest.failf "cluster of size %d has conductance %f < %f"
              (Array.length vs) measured phi
        end
      end)
    d.Expander.Decomposition.clusters

let test_decomposition_disconnected () =
  let g =
    Graph.create 6
      [
        { Graph.u = 0; v = 1; w = 1. };
        { Graph.u = 1; v = 2; w = 1. };
        { Graph.u = 3; v = 4; w = 1. };
      ]
  in
  let d = Expander.Decomposition.decompose g in
  Alcotest.(check bool) "valid" true (Expander.Decomposition.check g d);
  Alcotest.(check int) "no crossing edges" 0
    (List.length d.Expander.Decomposition.crossing)

let test_rounds_formula_monotone () =
  let r1 = Expander.Decomposition.rounds_formula ~n:100 ~gamma:0.25 in
  let r2 = Expander.Decomposition.rounds_formula ~n:10000 ~gamma:0.25 in
  Alcotest.(check bool) "monotone" true (r2 > r1);
  (* Sub-linear in n. *)
  Alcotest.(check bool) "sublinear" true (r2 < 10000)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"decomposition always partitions" ~count:30 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 3)) 24 0.15
        in
        let d = Expander.Decomposition.decompose g in
        Expander.Decomposition.check g d);
    Test.make ~name:"sweep conductance >= exact" ~count:20 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 11)) 10 0.4
        in
        let _, x = Expander.Fiedler.approx g in
        let _, phi_sweep = Expander.Conductance.sweep_cut g x in
        let phi_exact = Expander.Conductance.exact g in
        phi_sweep >= phi_exact -. 1e-9);
    Test.make ~name:"cheeger: sweep <= sqrt(2 λ2)" ~count:20 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 17)) 12 0.3
        in
        let lambda2 = Expander.Fiedler.lambda2_exact g in
        let _, x = Expander.Fiedler.approx ~iters:2000 g in
        let _, phi_sweep = Expander.Conductance.sweep_cut g x in
        (* Cheeger rounding guarantee with slack for approximation error. *)
        phi_sweep <= sqrt (2. *. lambda2) +. 0.1);
  ]

let suite =
  [
    Alcotest.test_case "conductance K4" `Quick test_conductance_complete;
    Alcotest.test_case "conductance P4" `Quick test_conductance_path;
    Alcotest.test_case "conductance barbell cut" `Quick
      test_conductance_of_cut_barbell;
    Alcotest.test_case "fiedler approx vs exact" `Quick
      test_fiedler_lambda2_path_vs_exact;
    Alcotest.test_case "fiedler K8 exact" `Quick test_fiedler_lambda2_complete;
    Alcotest.test_case "sweep finds barbell cut" `Quick
      test_fiedler_sweep_finds_barbell_cut;
    Alcotest.test_case "decomposition: expander whole" `Slow
      test_decomposition_expander_stays_whole;
    Alcotest.test_case "decomposition: barbell splits" `Quick
      test_decomposition_barbell_splits;
    Alcotest.test_case "decomposition: planted partition" `Quick
      test_decomposition_planted_partition;
    Alcotest.test_case "decomposition: clusters certified" `Quick
      test_decomposition_clusters_certified;
    Alcotest.test_case "decomposition: disconnected" `Quick
      test_decomposition_disconnected;
    Alcotest.test_case "rounds formula" `Quick test_rounds_formula_monotone;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* --------------------------------------------------- additional coverage *)

let test_decomposition_phi_extremes () =
  let g = Graph_gen.connected_gnp ~seed:91L 40 0.3 in
  (* A tiny φ accepts almost anything: few clusters. *)
  let loose = Expander.Decomposition.decompose ~phi:1e-6 g in
  (* A large φ must cut a lot: many clusters. *)
  let tight = Expander.Decomposition.decompose ~phi:0.45 g in
  Alcotest.(check bool) "loose coarser than tight" true
    (List.length loose.Expander.Decomposition.clusters
    <= List.length tight.Expander.Decomposition.clusters);
  Alcotest.(check bool) "both valid" true
    (Expander.Decomposition.check g loose && Expander.Decomposition.check g tight)

let test_fiedler_barbell_gap () =
  (* λ₂ of a barbell is tiny (low conductance). *)
  let g = Graph_gen.barbell 10 in
  let lambda2 = Expander.Fiedler.lambda2_exact g in
  Alcotest.(check bool)
    (Printf.sprintf "λ₂=%g small" lambda2)
    true (lambda2 < 0.05);
  let expander_g = Graph_gen.expander 20 8 in
  let lambda2' = Expander.Fiedler.lambda2_exact expander_g in
  Alcotest.(check bool)
    (Printf.sprintf "expander λ₂=%g large" lambda2')
    true (lambda2' > 0.2)

let test_sweep_cut_weighted () =
  (* A heavy cluster pair connected by a light edge: sweep finds it even
     with weights. *)
  let edges =
    [
      { Graph.u = 0; v = 1; w = 10. };
      { Graph.u = 1; v = 2; w = 10. };
      { Graph.u = 0; v = 2; w = 10. };
      { Graph.u = 3; v = 4; w = 10. };
      { Graph.u = 4; v = 5; w = 10. };
      { Graph.u = 3; v = 5; w = 10. };
      { Graph.u = 2; v = 3; w = 0.1 };
    ]
  in
  let g = Graph.create 6 edges in
  let _, x = Expander.Fiedler.approx g in
  let inside, phi = Expander.Conductance.sweep_cut g x in
  Alcotest.(check bool) "finds the light bridge" true (phi < 0.01);
  let size = Array.fold_left (fun a b -> if b then a + 1 else a) 0 inside in
  Alcotest.(check int) "balanced halves" 3 size

let suite =
  suite
  @ [
      Alcotest.test_case "decomposition phi extremes" `Quick
        test_decomposition_phi_extremes;
      Alcotest.test_case "fiedler barbell vs expander gap" `Quick
        test_fiedler_barbell_gap;
      Alcotest.test_case "weighted sweep cut" `Quick test_sweep_cut_weighted;
    ]
