test/test_clique.ml: Alcotest Array Clique Float Gen Graph Int64 List Maxflow_ipm Printf QCheck QCheck_alcotest Test Traversal
