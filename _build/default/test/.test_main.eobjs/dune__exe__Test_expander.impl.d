test/test_expander.ml: Alcotest Array Expander Float Gen Graph Int64 List Printf QCheck QCheck_alcotest Test
