test/test_sparsify.ml: Alcotest Array Float Gen Graph Int64 Linalg List Printf QCheck QCheck_alcotest Sparsify Test
