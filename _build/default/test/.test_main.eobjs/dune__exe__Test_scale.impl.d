test/test_scale.ml: Alcotest Clique Digraph Dinic Euler Gen Graph Laplacian Linalg List Maxflow_ipm Mcf_ipm Mcf_ssp Printf Sparsify
