test/test_flow.ml: Alcotest Array Clique Decompose Digraph Dinic Electrical Float Flow Ford_fulkerson Gen Graph Int64 Linalg List Maxflow_ipm Printf QCheck QCheck_alcotest Rounding Sssp Test Trivial
