test/test_graph.ml: Alcotest Array Coloring Digraph Expander Gen Graph Hashtbl Int64 Linalg List Matching Mcf_ssp Printf QCheck QCheck_alcotest Test Traversal Unionfind
