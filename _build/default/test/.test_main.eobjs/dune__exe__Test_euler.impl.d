test/test_euler.ml: Alcotest Array Euler Gen Graph Int64 List Printf QCheck QCheck_alcotest Test
