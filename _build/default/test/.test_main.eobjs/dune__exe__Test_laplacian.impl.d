test/test_laplacian.ml: Alcotest Array Gen Graph Int64 Laplacian Linalg List Printf QCheck QCheck_alcotest Sparsify Test
