test/test_linalg.ml: Alcotest Array Float Gen Graph Int64 Linalg List QCheck QCheck_alcotest Test
