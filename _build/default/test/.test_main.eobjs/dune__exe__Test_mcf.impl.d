test/test_mcf.ml: Alcotest Array Clique Cmsv_bipartite Digraph Float Flow Gen Int64 List Mcf_ipm Mcf_ssp QCheck QCheck_alcotest Test
