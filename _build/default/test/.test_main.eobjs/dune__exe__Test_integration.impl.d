test/test_integration.ml: Alcotest Array Clique Core Decompose Digraph Dinic Electrical Float Flow Gen Graph Laplacian Linalg List Maxflow_ipm Mcf_ipm Mcf_ssp Printf Rounding Sparsify String
