(* Tests for product-demand graphs, BSS, the CGLNPS pipeline, and quality
   measurement. *)

module Graph_gen = Gen

let test_quality_identity () =
  let g = Graph_gen.connected_gnp ~seed:2L 20 0.3 in
  let alpha = Sparsify.Quality.approximation_factor g g in
  Alcotest.(check bool) "alpha(G,G) = 1" true
    (alpha >= 1. -. 1e-6 && alpha < 1.01)

let test_quality_scaled () =
  let g = Graph_gen.connected_gnp ~seed:2L 15 0.3 in
  let h = Graph.scale_weights 4. g in
  (* L_G = (1/4) L_H: α = 4 *)
  let alpha = Sparsify.Quality.approximation_factor g h in
  Alcotest.(check bool) "alpha(G,4G) = 4" true
    (alpha > 3.9 && alpha < 4.1);
  (* ...but the pencil condition number is 1: perfect preconditioner. *)
  let kappa = Sparsify.Quality.relative_condition g h in
  Alcotest.(check bool) "kappa = 1" true (kappa < 1.01)

let test_quality_tree_vs_cycle () =
  (* H = spanning path of a cycle: known α = n-ish (resistance). *)
  let g = Graph_gen.cycle 8 in
  let h = Graph_gen.path 8 in
  let alpha = Sparsify.Quality.approximation_factor g h in
  Alcotest.(check bool) "path approximates cycle poorly" true (alpha > 2.)

let test_product_demand_complete_mass () =
  let g = Graph_gen.connected_gnp ~seed:5L 12 0.4 in
  let pd = Sparsify.Product_demand.complete g in
  (* Complete graph on the support. *)
  Alcotest.(check int) "complete" (12 * 11 / 2) (Graph.m pd)

let test_product_demand_sparse_mass_preserved () =
  let g = Graph_gen.connected_gnp ~seed:6L 40 0.3 in
  let pd_complete = Sparsify.Product_demand.complete g in
  let pd_sparse = Sparsify.Product_demand.sparse g in
  let total_c = Graph.total_weight pd_complete in
  let total_s = Graph.total_weight pd_sparse in
  Alcotest.(check bool) "total demand preserved" true
    (Float.abs (total_c -. total_s) < 1e-6 *. total_c);
  Alcotest.(check bool) "actually sparse" true
    (Graph.m pd_sparse < Graph.m pd_complete)

let test_product_demand_approximates_expander () =
  (* On an expander cluster, the product demand graph is a good spectral
     stand-in (CGLNPS: 4/φ²). *)
  let g = Graph_gen.expander 32 8 in
  let pd = Sparsify.Product_demand.complete g in
  let alpha = Sparsify.Quality.approximation_factor g pd in
  Alcotest.(check bool)
    (Printf.sprintf "alpha = %f finite and moderate" alpha)
    true
    (Float.is_finite alpha && alpha < 50.)

let test_product_demand_sparse_quality () =
  let g = Graph_gen.expander 48 8 in
  let pd_c = Sparsify.Product_demand.complete g in
  let pd_s = Sparsify.Product_demand.sparse g in
  let alpha = Sparsify.Quality.approximation_factor pd_c pd_s in
  Alcotest.(check bool)
    (Printf.sprintf "sparse vs complete alpha = %f" alpha)
    true
    (Float.is_finite alpha && alpha < 60.)

let test_bss_sparsifies () =
  let g = Graph_gen.connected_gnp ~seed:8L 24 0.5 in
  let h = Sparsify.Bss.sparsify ~d:6 g in
  Alcotest.(check bool) "fewer edges" true (Graph.m h <= 6 * 23);
  Alcotest.(check bool) "substantially fewer" true (Graph.m h < Graph.m g);
  let alpha = Sparsify.Quality.approximation_factor g h in
  Alcotest.(check bool)
    (Printf.sprintf "bss alpha = %f" alpha)
    true
    (Float.is_finite alpha && alpha < 10.)

let test_bss_small_input_passthrough () =
  let g = Graph_gen.path 5 in
  let h = Sparsify.Bss.sparsify ~d:4 g in
  Alcotest.(check bool) "unchanged" true (Graph.equal_structure g h)

let test_spectral_pipeline_basic () =
  let g = Graph_gen.connected_gnp ~seed:13L 60 0.3 in
  let r = Sparsify.Spectral.sparsify g in
  let h = r.Sparsify.Spectral.sparsifier in
  Alcotest.(check int) "same vertex count" 60 (Graph.n h);
  Alcotest.(check bool) "rounds positive" true (r.Sparsify.Spectral.rounds > 0);
  Alcotest.(check bool) "connected" true (Graph.is_connected h);
  let alpha = Sparsify.Quality.approximation_factor g h in
  Alcotest.(check bool)
    (Printf.sprintf "pipeline alpha = %f" alpha)
    true
    (Float.is_finite alpha && alpha < 200.)

let test_spectral_pipeline_sparsifies_dense () =
  let g = Graph_gen.connected_gnp ~seed:14L 80 0.6 in
  let r = Sparsify.Spectral.sparsify g in
  let h = r.Sparsify.Spectral.sparsifier in
  Alcotest.(check bool)
    (Printf.sprintf "m(H)=%d < m(G)=%d" (Graph.m h) (Graph.m g))
    true
    (Graph.m h < Graph.m g);
  Alcotest.(check bool) "within size bound" true
    (Graph.m h
    <= Sparsify.Spectral.size_bound ~n:80 ~u:(Graph.max_weight g))

let test_spectral_pipeline_weighted () =
  let g = Graph_gen.weighted_gnp ~seed:15L 40 0.4 64 in
  let r = Sparsify.Spectral.sparsify g in
  Alcotest.(check bool) "multiple weight classes" true
    (r.Sparsify.Spectral.classes > 1);
  let alpha =
    Sparsify.Quality.approximation_factor g r.Sparsify.Spectral.sparsifier
  in
  Alcotest.(check bool)
    (Printf.sprintf "weighted alpha = %f" alpha)
    true
    (Float.is_finite alpha && alpha < 400.)

let test_spectral_barbell () =
  (* The pipeline must keep the bridge; otherwise the sparsifier is
     disconnected and α = ∞. *)
  let g = Graph_gen.barbell 12 in
  let r = Sparsify.Spectral.sparsify g in
  Alcotest.(check bool) "connected" true
    (Graph.is_connected r.Sparsify.Spectral.sparsifier)

let test_spectral_preconditions_chebyshev () =
  (* End-to-end: sparsifier as Chebyshev preconditioner beats its κ bound. *)
  let g = Graph_gen.connected_gnp ~seed:16L 50 0.4 in
  let r = Sparsify.Spectral.sparsify g in
  let h = r.Sparsify.Spectral.sparsifier in
  let kappa = Sparsify.Quality.relative_condition g h in
  Alcotest.(check bool) "kappa finite" true (Float.is_finite kappa);
  let lh = Graph.laplacian_dense h in
  let b =
    Linalg.Vec.center
      (Linalg.Vec.init 50 (fun i -> float_of_int ((i * 13) mod 11)))
  in
  let x, st =
    Linalg.Chebyshev.solve_grounded
      ~apply_a:(Graph.apply_laplacian g)
      ~solve_b:(fun v -> Linalg.Dense.solve_grounded lh (Linalg.Vec.center v))
      ~kappa ~tol:1e-8
      ~max_iters:(Linalg.Chebyshev.iteration_bound ~kappa ~eps:1e-8)
      b
  in
  Alcotest.(check bool)
    (Printf.sprintf "converged in %d iters (κ=%f)" st.Linalg.Chebyshev.iterations
       kappa)
    true st.Linalg.Chebyshev.converged;
  let res = Linalg.Vec.sub (Graph.apply_laplacian g x) b in
  Alcotest.(check bool) "residual small" true
    (Linalg.Vec.norm2 res <= 1e-6 *. Linalg.Vec.norm2 b)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sparsifier always connected on connected input" ~count:15
      small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 41)) 30 0.3
        in
        let r = Sparsify.Spectral.sparsify g in
        Graph.is_connected r.Sparsify.Spectral.sparsifier);
    Test.make ~name:"sparsifier alpha finite" ~count:10 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 53)) 25 0.35
        in
        let r = Sparsify.Spectral.sparsify g in
        Float.is_finite
          (Sparsify.Quality.approximation_factor g
             r.Sparsify.Spectral.sparsifier));
  ]

let suite =
  [
    Alcotest.test_case "quality identity" `Quick test_quality_identity;
    Alcotest.test_case "quality scaled" `Quick test_quality_scaled;
    Alcotest.test_case "quality path vs cycle" `Quick test_quality_tree_vs_cycle;
    Alcotest.test_case "product demand complete" `Quick
      test_product_demand_complete_mass;
    Alcotest.test_case "product demand mass preserved" `Quick
      test_product_demand_sparse_mass_preserved;
    Alcotest.test_case "product demand approximates expander" `Quick
      test_product_demand_approximates_expander;
    Alcotest.test_case "product demand sparse quality" `Quick
      test_product_demand_sparse_quality;
    Alcotest.test_case "bss sparsifies" `Slow test_bss_sparsifies;
    Alcotest.test_case "bss passthrough" `Quick test_bss_small_input_passthrough;
    Alcotest.test_case "pipeline basic" `Quick test_spectral_pipeline_basic;
    Alcotest.test_case "pipeline sparsifies dense" `Quick
      test_spectral_pipeline_sparsifies_dense;
    Alcotest.test_case "pipeline weighted" `Quick test_spectral_pipeline_weighted;
    Alcotest.test_case "pipeline barbell connected" `Quick test_spectral_barbell;
    Alcotest.test_case "pipeline preconditions chebyshev" `Quick
      test_spectral_preconditions_chebyshev;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* ------------------------------------------------------------------ Tree *)

let test_tree_is_spanning () =
  let g = Graph_gen.connected_gnp ~seed:61L 30 0.3 in
  let t = Sparsify.Tree.max_weight_spanning_tree g in
  Alcotest.(check int) "n-1 edges" 29 (Graph.m t);
  Alcotest.(check bool) "connected" true (Graph.is_connected t)

let test_tree_dominated () =
  (* L_T ≼ L_G since T ⊆ G: the pencil's lower extreme is ≥ 1. *)
  let g = Graph_gen.connected_gnp ~seed:62L 20 0.4 in
  let t = Sparsify.Tree.max_weight_spanning_tree g in
  let lmin, _ = Sparsify.Quality.pencil_bounds g t in
  Alcotest.(check bool) "T dominated by G" true (lmin >= 1. -. 1e-6)

let test_tree_stretch_bounds_condition () =
  let g = Graph_gen.connected_gnp ~seed:63L 20 0.4 in
  let t = Sparsify.Tree.max_weight_spanning_tree g in
  let kappa = Sparsify.Quality.relative_condition g t in
  let bound = Sparsify.Tree.stretch_bound g t in
  Alcotest.(check bool)
    (Printf.sprintf "kappa %.2f <= stretch bound %.2f" kappa bound)
    true
    (kappa <= bound +. 1e-6)

let test_tree_worse_than_sparsifier_on_cycle_rich () =
  (* On an expander the tree preconditioner's κ is much worse than the
     Theorem 3.3 sparsifier's — the reason the paper builds sparsifiers. *)
  let g = Graph_gen.expander 48 8 in
  let t = Sparsify.Tree.max_weight_spanning_tree g in
  let sp = (Sparsify.Spectral.sparsify g).Sparsify.Spectral.sparsifier in
  let k_tree = Sparsify.Quality.relative_condition g t in
  let k_sp = Sparsify.Quality.relative_condition g sp in
  Alcotest.(check bool)
    (Printf.sprintf "tree κ=%.1f > sparsifier κ=%.1f" k_tree k_sp)
    true (k_tree > k_sp)

let suite =
  suite
  @ [
      Alcotest.test_case "tree spanning" `Quick test_tree_is_spanning;
      Alcotest.test_case "tree dominated" `Quick test_tree_dominated;
      Alcotest.test_case "tree stretch bound" `Quick
        test_tree_stretch_bounds_condition;
      Alcotest.test_case "tree vs sparsifier" `Quick
        test_tree_worse_than_sparsifier_on_cycle_rich;
    ]

(* ------------------------------------- randomized sampling backend (remark) *)

let test_foster_theorem () =
  (* Leverage scores of a connected graph sum to n − 1. *)
  let g = Graph_gen.connected_gnp ~seed:71L 25 0.3 in
  let total =
    Array.fold_left ( +. ) 0. (Sparsify.Sampling.leverage_scores g)
  in
  Alcotest.(check (float 1e-6)) "Foster: sum = n-1" 24. total

let test_leverage_scores_tree_edges () =
  (* On a tree every edge has leverage exactly 1. *)
  let g = Graph_gen.path 8 in
  Array.iter
    (fun s -> Alcotest.(check (float 1e-8)) "bridge leverage" 1. s)
    (Sparsify.Sampling.leverage_scores g)

let test_sampling_sparsifier_quality () =
  let g = Graph_gen.connected_gnp ~seed:72L 50 0.6 in
  let h = Sparsify.Sampling.sparsify ~seed:1L g in
  Alcotest.(check bool) "sparser" true (Graph.m h < Graph.m g);
  let alpha = Sparsify.Quality.approximation_factor g h in
  Alcotest.(check bool)
    (Printf.sprintf "alpha = %f" alpha)
    true
    (Float.is_finite alpha && alpha < 20.)

let test_sampling_deterministic_given_seed () =
  let g = Graph_gen.connected_gnp ~seed:73L 30 0.4 in
  let h1 = Sparsify.Sampling.sparsify ~seed:9L g in
  let h2 = Sparsify.Sampling.sparsify ~seed:9L g in
  Alcotest.(check bool) "same seed same graph" true
    (Graph.equal_structure h1 h2)

let suite =
  suite
  @ [
      Alcotest.test_case "foster theorem" `Quick test_foster_theorem;
      Alcotest.test_case "tree leverage" `Quick test_leverage_scores_tree_edges;
      Alcotest.test_case "sampling sparsifier quality" `Quick
        test_sampling_sparsifier_quality;
      Alcotest.test_case "sampling deterministic per seed" `Quick
        test_sampling_deterministic_given_seed;
    ]
