(* Scale stress tests: the full pipelines on the largest instances the suite
   exercises (marked slow; they still run in the default profile). *)

module Graph_gen = Gen

let test_solver_n200 () =
  let n = 200 in
  let g = Graph_gen.connected_gnp ~seed:201L n 0.08 in
  let b = Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1)) in
  let r = Laplacian.Solver.solve ~eps:1e-6 g b in
  let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
  Alcotest.(check bool) (Printf.sprintf "err=%g" err) true (err <= 1e-6)

let test_orientation_n8192 () =
  let g = Graph_gen.cycle_union ~seed:202L 8192 64 in
  let r = Euler.Orientation.orient g in
  Alcotest.(check bool) "balanced" true
    (Euler.Orientation.check g r.Euler.Orientation.orientation);
  Alcotest.(check bool) "rounds logarithmic" true
    (r.Euler.Orientation.rounds
    <= Euler.Orientation.rounds_reference ~n:8192)

let test_maxflow_m200 () =
  let g = Graph_gen.layered_network ~seed:203L 8 6 6 in
  let t = Digraph.n g - 1 in
  let r = Maxflow_ipm.max_flow g ~s:0 ~t in
  Alcotest.(check int) "exact at scale" (Dinic.max_flow_value g ~s:0 ~t)
    r.Maxflow_ipm.value

let test_mcf_m120 () =
  let g, sigma = Graph_gen.random_mcf ~seed:204L 20 100 12 in
  match (Mcf_ipm.solve g ~sigma, Mcf_ssp.solve g ~sigma) with
  | Some r, Some oracle ->
    Alcotest.(check (float 1e-6)) "exact at scale" oracle.Mcf_ssp.cost
      r.Mcf_ipm.cost
  | None, None -> ()
  | _ -> Alcotest.fail "feasibility disagreement"

let test_mst_n500 () =
  let g = Graph_gen.connected_gnp ~seed:205L 500 0.02 in
  let r = Clique.Boruvka.minimum_spanning_tree g in
  Alcotest.(check int) "spans" 499 (List.length r.Clique.Boruvka.edges);
  Alcotest.(check bool) "few phases" true (r.Clique.Boruvka.phases <= 10)

let test_sparsifier_n160_dense () =
  let g = Graph_gen.connected_gnp ~seed:206L 160 0.5 in
  let r = Sparsify.Spectral.sparsify g in
  let h = r.Sparsify.Spectral.sparsifier in
  Alcotest.(check bool)
    (Printf.sprintf "compressed %d -> %d" (Graph.m g) (Graph.m h))
    true
    (Graph.m h < Graph.m g / 2);
  Alcotest.(check bool) "connected" true (Graph.is_connected h)

let suite =
  [
    Alcotest.test_case "solver n=200" `Slow test_solver_n200;
    Alcotest.test_case "orientation n=8192" `Slow test_orientation_n8192;
    Alcotest.test_case "maxflow m~200" `Slow test_maxflow_m200;
    Alcotest.test_case "mcf m~120" `Slow test_mcf_m120;
    Alcotest.test_case "mst n=500" `Slow test_mst_n500;
    Alcotest.test_case "sparsifier n=160 dense" `Slow
      test_sparsifier_n160_dense;
  ]
