lib/laplacian/solver.ml: Array Clique Float Graph Linalg Logs Sparsify
