lib/laplacian/solver.mli: Graph Linalg Sparsify
