(** Deterministic SplitMix64 pseudo-random stream.

    The paper's algorithms are deterministic; the only consumer of this
    module is the *workload generator* ({!Gen}), so that benchmarks and tests
    run on reproducible inputs. Algorithm code must never use it. *)

type t

val create : int64 -> t
(** [create seed] starts a stream; equal seeds give equal streams. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
