let edge u v w = { Graph.u; v; w }

let path n =
  Graph.create n (List.init (max 0 (n - 1)) (fun i -> edge i (i + 1) 1.))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.create n (List.init n (fun i -> edge i ((i + 1) mod n) 1.))

let star n =
  Graph.create n (List.init (max 0 (n - 1)) (fun i -> edge 0 (i + 1) 1.))

let complete ?(w = 1.) n =
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := edge i j w :: !acc
    done
  done;
  Graph.create n !acc

let complete_bipartite a b =
  let acc = ref [] in
  for i = 0 to a - 1 do
    for j = 0 to b - 1 do
      acc := edge i (a + j) 1. :: !acc
    done
  done;
  Graph.create (a + b) !acc

let grid r c =
  let id i j = (i * c) + j in
  let acc = ref [] in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if j + 1 < c then acc := edge (id i j) (id i (j + 1)) 1. :: !acc;
      if i + 1 < r then acc := edge (id i j) (id (i + 1) j) 1. :: !acc
    done
  done;
  Graph.create (r * c) !acc

let hypercube d =
  let n = 1 lsl d in
  let acc = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if v < u then acc := edge v u 1. :: !acc
    done
  done;
  Graph.create n !acc

let circulant n offsets =
  let offsets =
    List.sort_uniq compare
      (List.filter_map
         (fun o ->
           let o = ((o mod n) + n) mod n in
           if o = 0 then None else Some (min o (n - o)))
         offsets)
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun o ->
      for i = 0 to n - 1 do
        let j = (i + o) mod n in
        let key = (min i j, max i j) in
        if not (Hashtbl.mem tbl key) then Hashtbl.replace tbl key ()
      done)
    offsets;
  let acc = Hashtbl.fold (fun (u, v) () l -> edge u v 1. :: l) tbl [] in
  Graph.create n acc

let expander n d =
  let rec offsets o k acc =
    if k = 0 || o >= n / 2 then List.rev acc
    else offsets (o * 2) (k - 1) (o :: acc)
  in
  circulant n (offsets 1 (max 1 (d / 2)) [ 1 ])

let gnp ?(seed = 42L) n p =
  let rng = Prng.create seed in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.float rng 1. < p then acc := edge i j 1. :: !acc
    done
  done;
  Graph.create n !acc

let connected_gnp ?(seed = 42L) n p =
  let rng = Prng.create seed in
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle rng perm;
  let backbone =
    List.init (max 0 (n - 1)) (fun i -> edge perm.(i) perm.(i + 1) 1.)
  in
  let acc = ref backbone in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.float rng 1. < p then acc := edge i j 1. :: !acc
    done
  done;
  Graph.reweight_simple (Graph.create n !acc)

let weighted_gnp ?(seed = 42L) n p u =
  let rng = Prng.create (Int64.add seed 1L) in
  let g = connected_gnp ~seed n p in
  Graph.map_weights (fun _ -> float_of_int (1 + Prng.int rng u)) g

let planted_partition ?(seed = 42L) n p_in p_out =
  let rng = Prng.create seed in
  let half = n / 2 in
  let side v = if v < half then 0 else 1 in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = if side i = side j then p_in else p_out in
      if Prng.float rng 1. < p then acc := edge i j 1. :: !acc
    done
  done;
  (* Keep each side connected so conductance is well defined per cluster. *)
  let backbone =
    List.init (max 0 (half - 1)) (fun i -> edge i (i + 1) 1.)
    @ List.init
        (max 0 (n - half - 1))
        (fun i -> edge (half + i) (half + i + 1) 1.)
    @ [ edge 0 half 1. ]
  in
  Graph.reweight_simple (Graph.create n (backbone @ !acc))

let barbell k =
  if k < 3 then invalid_arg "Gen.barbell: need k >= 3";
  let acc = ref [ edge (k - 1) k 1. ] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      acc := edge i j 1. :: edge (k + i) (k + j) 1. :: !acc
    done
  done;
  Graph.create (2 * k) !acc

let even_gnp ?(seed = 42L) n p =
  let g = connected_gnp ~seed n p in
  let odd =
    List.filter (fun v -> Graph.degree g v land 1 = 1)
      (List.init n (fun i -> i))
  in
  (* Odd-degree vertices come in pairs; joining consecutive ones fixes
     parity. A pair might already be adjacent — the multigraph copy is fine
     for Eulerian orientation. *)
  let rec pair_up acc = function
    | [] -> acc
    | [ _ ] -> assert false
    | a :: b :: rest -> pair_up (edge a b 1. :: acc) rest
  in
  let extra = pair_up [] odd in
  Graph.create n (Array.to_list (Graph.edges g) @ extra)

let cycle_union ?(seed = 42L) n k =
  if n < 3 then invalid_arg "Gen.cycle_union: need n >= 3";
  let rng = Prng.create seed in
  let acc = ref [] in
  for c = 0 to k - 1 do
    let len = 3 + Prng.int rng (max 1 (n - 3)) in
    let verts = Array.init n (fun i -> i) in
    Prng.shuffle rng verts;
    let cyc = Array.sub verts 0 len in
    (* The first cycle covers everything so the multigraph is connected. *)
    let cyc = if c = 0 then Array.init n (fun i -> verts.(i)) else cyc in
    let l = Array.length cyc in
    for i = 0 to l - 1 do
      acc := edge cyc.(i) cyc.((i + 1) mod l) 1. :: !acc
    done
  done;
  Graph.create n !acc

let arc src dst cap cost = { Digraph.src; dst; cap; cost }

let layered_network ?(seed = 42L) layers width maxcap =
  if layers < 1 || width < 1 then invalid_arg "Gen.layered_network";
  let rng = Prng.create seed in
  let n = (layers * width) + 2 in
  let s = 0 and t = n - 1 in
  let id l w = 1 + (l * width) + w in
  let acc = ref [] in
  for w = 0 to width - 1 do
    acc := arc s (id 0 w) (1 + Prng.int rng maxcap) 0 :: !acc;
    acc := arc (id (layers - 1) w) t (1 + Prng.int rng maxcap) 0 :: !acc
  done;
  for l = 0 to layers - 2 do
    for w1 = 0 to width - 1 do
      for w2 = 0 to width - 1 do
        if w1 = w2 || Prng.float rng 1. < 0.6 then
          acc := arc (id l w1) (id (l + 1) w2) (1 + Prng.int rng maxcap) 0 :: !acc
      done
    done
  done;
  Digraph.create n !acc

let random_network ?(seed = 42L) n m maxcap =
  if n < 2 then invalid_arg "Gen.random_network: need n >= 2";
  let rng = Prng.create seed in
  let acc = ref [] in
  (* Backbone guaranteeing s-t reachability. *)
  for i = 0 to n - 2 do
    acc := arc i (i + 1) (1 + Prng.int rng maxcap) 0 :: !acc
  done;
  let count = ref 0 in
  while !count < m do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      acc := arc u v (1 + Prng.int rng maxcap) 0 :: !acc;
      incr count
    end
  done;
  Digraph.create n !acc

let unit_bipartite ?(seed = 42L) k p =
  let rng = Prng.create seed in
  let n = (2 * k) + 2 in
  let s = 0 and t = n - 1 in
  let left i = 1 + i and right j = 1 + k + j in
  let acc = ref [] in
  for i = 0 to k - 1 do
    acc := arc s (left i) 1 0 :: arc (right i) t 1 0 :: !acc
  done;
  for i = 0 to k - 1 do
    let degree = ref 0 in
    for j = 0 to k - 1 do
      if Prng.float rng 1. < p then begin
        acc := arc (left i) (right j) 1 0 :: !acc;
        incr degree
      end
    done;
    if !degree = 0 then acc := arc (left i) (right (Prng.int rng k)) 1 0 :: !acc
  done;
  Digraph.create n !acc

let random_mcf ?(seed = 42L) n m maxcost =
  if n < 2 then invalid_arg "Gen.random_mcf: need n >= 2";
  let rng = Prng.create seed in
  let acc = ref [] in
  for i = 0 to n - 2 do
    acc := arc i (i + 1) 1 (1 + Prng.int rng maxcost) :: !acc
  done;
  let count = ref 0 in
  while !count < m do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      acc := arc u v 1 (1 + Prng.int rng maxcost) :: !acc;
      incr count
    end
  done;
  let g = Digraph.create n !acc in
  (* Build a trivially feasible demand: route one unit across each of a few
     distinct arcs (each unit can be satisfied by that very arc). *)
  let sigma = Array.make n 0 in
  let m_total = Digraph.m g in
  let used = Hashtbl.create 16 in
  let wanted = 1 + Prng.int rng (max 1 (n / 4)) in
  let placed = ref 0 in
  let attempts = ref 0 in
  while !placed < wanted && !attempts < 50 * wanted do
    incr attempts;
    let id = Prng.int rng m_total in
    if not (Hashtbl.mem used id) then begin
      Hashtbl.replace used id ();
      let a = Digraph.arc g id in
      sigma.(a.Digraph.src) <- sigma.(a.Digraph.src) + 1;
      sigma.(a.Digraph.dst) <- sigma.(a.Digraph.dst) - 1;
      incr placed
    end
  done;
  (g, sigma)
