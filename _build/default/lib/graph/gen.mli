(** Deterministic workload generators for tests, examples and benchmarks.

    Every generator is a pure function of its parameters (including [seed]),
    so experiment series are reproducible run-to-run. *)

(** {1 Undirected graphs} *)

val path : int -> Graph.t

val cycle : int -> Graph.t

val star : int -> Graph.t

val complete : ?w:float -> int -> Graph.t

val complete_bipartite : int -> int -> Graph.t

val grid : int -> int -> Graph.t
(** [grid r c] is the r×c grid graph on [r*c] vertices. *)

val hypercube : int -> Graph.t
(** [hypercube d] has [2^d] vertices; every vertex has even degree iff [d] is
    even, making it a handy Eulerian test case. *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets] connects [i] to [i ± o mod n] for each offset;
    offsets are deduplicated. *)

val expander : int -> int -> Graph.t
(** [expander n d] is a deterministic d-ish-regular circulant expander
    (offsets [1, 2, 4, 8, ...]): conductance bounded away from 0 in practice,
    used to exercise the "already an expander" path of the decomposition. *)

val gnp : ?seed:int64 -> int -> float -> Graph.t
(** Erdős–Rényi-style deterministic graph: every pair is an edge when the
    seeded PRNG says so. *)

val connected_gnp : ?seed:int64 -> int -> float -> Graph.t
(** [gnp] plus a random Hamiltonian path so the result is connected. *)

val weighted_gnp : ?seed:int64 -> int -> float -> int -> Graph.t
(** [weighted_gnp n p u]: integer weights drawn uniformly from [1..u]. *)

val planted_partition : ?seed:int64 -> int -> float -> float -> Graph.t
(** [planted_partition n p_in p_out]: two communities of [n/2]; a sparse cut
    the expander decomposition must find. *)

val barbell : int -> Graph.t
(** Two [k]-cliques joined by a single edge — conductance [Θ(1/k²)]. *)

(** {1 Eulerian graphs} *)

val even_gnp : ?seed:int64 -> int -> float -> Graph.t
(** A [connected_gnp] graph patched to have all-even degrees by matching up
    odd-degree vertices (valid input for Theorem 1.4). *)

val cycle_union : ?seed:int64 -> int -> int -> Graph.t
(** [cycle_union n k] is a multigraph union of [k] random cycles covering
    all of [0..n-1]; Eulerian by construction. *)

(** {1 Directed flow networks} *)

val layered_network : ?seed:int64 -> int -> int -> int -> Digraph.t
(** [layered_network layers width maxcap]: source 0, sink last; dense random
    arcs between consecutive layers — the classic max-flow benchmark family. *)

val random_network : ?seed:int64 -> int -> int -> int -> Digraph.t
(** [random_network n m maxcap]: [m] random arcs plus a guaranteed
    source-sink backbone. Source is 0, sink is [n-1]. *)

val unit_bipartite : ?seed:int64 -> int -> float -> Digraph.t
(** Unit-capacity bipartite matching instance (2k+2 vertices: source, k left,
    k right, sink), the motivating workload of CMSV min-cost flow. *)

val random_mcf : ?seed:int64 -> int -> int -> int -> Digraph.t * int array
(** [random_mcf n m maxcost]: a unit-capacity digraph with costs in
    [1..maxcost] and a feasible demand vector [σ] (sums to zero), built by
    routing a hidden feasible flow. *)
