lib/graph/traversal.ml: Array Digraph Graph List Queue Unionfind
