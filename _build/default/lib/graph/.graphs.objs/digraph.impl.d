lib/graph/digraph.ml: Array Format Graph List Printf
