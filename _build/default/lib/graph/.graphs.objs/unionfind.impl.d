lib/graph/unionfind.ml: Array
