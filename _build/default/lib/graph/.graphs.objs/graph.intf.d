lib/graph/graph.mli: Format Linalg
