lib/graph/unionfind.mli:
