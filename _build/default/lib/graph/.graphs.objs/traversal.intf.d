lib/graph/traversal.mli: Digraph Graph
