lib/graph/prng.mli:
