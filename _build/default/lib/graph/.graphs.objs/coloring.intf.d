lib/graph/coloring.mli:
