lib/graph/gen.ml: Array Digraph Graph Hashtbl Int64 List Prng
