lib/graph/gen.mli: Digraph Graph
