lib/graph/coloring.ml: Array Float
