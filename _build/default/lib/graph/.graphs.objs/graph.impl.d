lib/graph/graph.ml: Array Float Format Hashtbl Linalg List Printf
