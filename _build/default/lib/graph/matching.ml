let maximal g =
  let used = Array.make (Graph.n g) false in
  let acc = ref [] in
  Array.iteri
    (fun id e ->
      if (not used.(e.Graph.u)) && not used.(e.Graph.v) then begin
        used.(e.Graph.u) <- true;
        used.(e.Graph.v) <- true;
        acc := id :: !acc
      end)
    (Graph.edges g);
  List.rev !acc

let is_matching g ids =
  let used = Array.make (Graph.n g) false in
  let ok = ref true in
  List.iter
    (fun id ->
      let e = Graph.edge g id in
      if used.(e.Graph.u) || used.(e.Graph.v) then ok := false;
      used.(e.Graph.u) <- true;
      used.(e.Graph.v) <- true)
    ids;
  !ok

let is_maximal g ids =
  is_matching g ids
  &&
  let used = Array.make (Graph.n g) false in
  List.iter
    (fun id ->
      let e = Graph.edge g id in
      used.(e.Graph.u) <- true;
      used.(e.Graph.v) <- true)
    ids;
  Array.for_all
    (fun e -> used.(e.Graph.u) || used.(e.Graph.v))
    (Graph.edges g)
