(** Graph traversals and connectivity used throughout the pipeline. *)

val bfs : Graph.t -> int -> int array
(** [bfs g s] is the array of hop distances from [s]; unreachable vertices
    get [-1]. *)

val components : Graph.t -> int array * int
(** [components g] labels every vertex with a component id in
    [0..k-1] and returns [k]. *)

val component_members : Graph.t -> int array list
(** Vertex sets of the connected components, each sorted ascending. *)

val bfs_digraph : Digraph.t -> ?residual_cap:(int -> int) -> int -> int array * int array
(** [bfs_digraph g s] runs BFS over arcs with positive capacity
    ([residual_cap] maps an arc id to its usable capacity; defaults to the
    static capacity). Returns [(dist, parent_arc)] where [parent_arc.(v)] is
    the arc used to reach [v] ([-1] at the source/unreached). *)

val spanning_forest : Graph.t -> int list
(** Edge identifiers of a BFS spanning forest. *)
