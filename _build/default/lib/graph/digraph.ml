type arc = { src : int; dst : int; cap : int; cost : int }

type t = {
  n : int;
  arcs : arc array;
  out_adj : int list array;
  in_adj : int list array;
}

let create n arc_list =
  List.iter
    (fun a ->
      if a.src < 0 || a.src >= n || a.dst < 0 || a.dst >= n then
        invalid_arg
          (Printf.sprintf "Digraph.create: arc (%d,%d) out of range" a.src
             a.dst);
      if a.src = a.dst then
        invalid_arg (Printf.sprintf "Digraph.create: self-loop at %d" a.src);
      if a.cap < 0 then invalid_arg "Digraph.create: negative capacity";
      if a.cost < 0 then invalid_arg "Digraph.create: negative cost")
    arc_list;
  let arcs = Array.of_list arc_list in
  let out_adj = Array.make n [] in
  let in_adj = Array.make n [] in
  Array.iteri
    (fun id a ->
      out_adj.(a.src) <- id :: out_adj.(a.src);
      in_adj.(a.dst) <- id :: in_adj.(a.dst))
    arcs;
  { n; arcs; out_adj; in_adj }

let n g = g.n

let m g = Array.length g.arcs

let arcs g = g.arcs

let arc g i = g.arcs.(i)

let out_arcs g v = g.out_adj.(v)

let in_arcs g v = g.in_adj.(v)

let out_degree g v = List.length g.out_adj.(v)

let in_degree g v = List.length g.in_adj.(v)

let max_capacity g = Array.fold_left (fun acc a -> max acc a.cap) 0 g.arcs

let max_cost g = Array.fold_left (fun acc a -> max acc a.cost) 0 g.arcs

let is_unit_capacity g = Array.for_all (fun a -> a.cap = 1) g.arcs

let reverse g =
  create g.n
    (Array.to_list g.arcs
    |> List.map (fun a -> { a with src = a.dst; dst = a.src }))

let underlying g =
  Graph.create g.n
    (Array.to_list g.arcs
    |> List.map (fun a -> { Graph.u = a.src; v = a.dst; w = 1. }))

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph n=%d m=%d@," g.n (m g);
  Array.iter
    (fun a ->
      Format.fprintf fmt "%d -> %d (cap=%d cost=%d)@," a.src a.dst a.cap a.cost)
    g.arcs;
  Format.fprintf fmt "@]"
