(** Directed graphs with integer capacities and costs — the input type of the
    flow problems (§2.4).

    Arcs are identified by their index in [arcs]. Parallel arcs and
    antiparallel pairs are permitted; self-loops are rejected. *)

type arc = { src : int; dst : int; cap : int; cost : int }

type t

val create : int -> arc list -> t
(** Raises [Invalid_argument] on out-of-range endpoints, self-loops, negative
    capacity or negative cost. *)

val n : t -> int

val m : t -> int

val arcs : t -> arc array

val arc : t -> int -> arc

val out_arcs : t -> int -> int list
(** Arc identifiers leaving the vertex. *)

val in_arcs : t -> int -> int list

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val max_capacity : t -> int
(** The paper's [U] ([0] on arc-free graphs). *)

val max_cost : t -> int
(** The paper's [W]. *)

val is_unit_capacity : t -> bool

val reverse : t -> t

val underlying : t -> Graph.t
(** Forgets orientation, capacity and cost; weight 1 per arc (multigraph). *)

val pp : Format.formatter -> t -> unit
