let bfs g s =
  let dist = Array.make (Graph.n g) (-1) in
  let q = Queue.create () in
  dist.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (u, _) ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u q
        end)
      (Graph.adj g v)
  done;
  dist

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let k = ref 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let q = Queue.create () in
      label.(s) <- !k;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        List.iter
          (fun (u, _) ->
            if label.(u) < 0 then begin
              label.(u) <- !k;
              Queue.add u q
            end)
          (Graph.adj g v)
      done;
      incr k
    end
  done;
  (label, !k)

let component_members g =
  let label, k = components g in
  let buckets = Array.make k [] in
  for v = Graph.n g - 1 downto 0 do
    buckets.(label.(v)) <- v :: buckets.(label.(v))
  done;
  Array.to_list (Array.map Array.of_list buckets)

let bfs_digraph g ?residual_cap s =
  let cap =
    match residual_cap with
    | Some f -> f
    | None -> fun id -> (Digraph.arc g id).Digraph.cap
  in
  let n = Digraph.n g in
  let dist = Array.make n (-1) in
  let parent_arc = Array.make n (-1) in
  let q = Queue.create () in
  dist.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun id ->
        let a = Digraph.arc g id in
        if cap id > 0 && dist.(a.Digraph.dst) < 0 then begin
          dist.(a.Digraph.dst) <- dist.(v) + 1;
          parent_arc.(a.Digraph.dst) <- id;
          Queue.add a.Digraph.dst q
        end)
      (Digraph.out_arcs g v)
  done;
  (dist, parent_arc)

let spanning_forest g =
  let uf = Unionfind.create (Graph.n g) in
  let acc = ref [] in
  Array.iteri
    (fun id e ->
      if Unionfind.union uf e.Graph.u e.Graph.v then acc := id :: !acc)
    (Graph.edges g);
  List.rev !acc
