(** Maximal matchings on general graphs (greedy reference implementation).

    The distributed cycle matching lives in {!Coloring}; this module provides
    the centralized greedy used by tests as an oracle and by the expander
    pipeline for degree reductions. *)

val maximal : Graph.t -> int list
(** Edge identifiers of a greedy maximal matching (first-come order). *)

val is_matching : Graph.t -> int list -> bool
(** No two selected edges share a vertex. *)

val is_maximal : Graph.t -> int list -> bool
(** Every non-selected edge shares a vertex with a selected one. *)
