type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value is non-negative as a native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
