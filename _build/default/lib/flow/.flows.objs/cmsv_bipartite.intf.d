lib/flow/cmsv_bipartite.mli: Digraph Electrical Flow
