lib/flow/electrical.ml: Array Clique Graph Laplacian Linalg List
