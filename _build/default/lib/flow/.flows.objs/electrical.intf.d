lib/flow/electrical.mli: Graph Linalg
