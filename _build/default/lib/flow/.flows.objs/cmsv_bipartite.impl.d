lib/flow/cmsv_bipartite.ml: Array Clique Digraph Electrical Float Flow Graph Linalg List Mcf_ipm
