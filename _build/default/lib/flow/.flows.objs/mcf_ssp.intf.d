lib/flow/mcf_ssp.mli: Digraph Flow
