lib/flow/mcf_ipm.mli: Clique Digraph Electrical Flow
