lib/flow/dinic.mli: Digraph Flow
