lib/flow/decompose.mli: Digraph
