lib/flow/flow.ml: Array Digraph Float
