lib/flow/sssp.mli: Digraph
