lib/flow/maxflow_ipm.ml: Array Clique Digraph Dinic Electrical Euler Float Flow Ford_fulkerson Graph Linalg List Logs Rounding
