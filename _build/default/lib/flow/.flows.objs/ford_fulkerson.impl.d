lib/flow/ford_fulkerson.ml: Array Clique Digraph Flow List Printf Queue
