lib/flow/mcf_ipm.ml: Array Clique Decompose Digraph Electrical Euler Float Flow Graph Linalg List Logs Rounding
