lib/flow/trivial.mli: Digraph Flow
