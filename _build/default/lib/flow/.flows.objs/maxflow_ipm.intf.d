lib/flow/maxflow_ipm.mli: Digraph Electrical Flow
