lib/flow/mcf_ssp.ml: Array Clique Digraph Flow List Set
