lib/flow/flow.mli: Digraph
