lib/flow/ford_fulkerson.mli: Digraph Flow
