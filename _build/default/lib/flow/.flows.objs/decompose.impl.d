lib/flow/decompose.ml: Array Digraph Float List
