lib/flow/trivial.ml: Clique Digraph Dinic Flow Mcf_ssp
