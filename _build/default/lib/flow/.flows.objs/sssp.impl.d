lib/flow/sssp.ml: Array Clique Digraph List Set
