lib/flow/dinic.ml: Array Digraph List Queue
