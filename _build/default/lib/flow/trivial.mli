(** The trivial [O(n log U)]-round algorithm of §1.1: gather every edge at
    every node, then solve internally. The second comparison point of
    experiment E7 (and the crossover partner of the IPM algorithms on dense
    inputs). *)

type report = {
  f : Flow.t;
  value : int;
  rounds : int;  (** charged gather cost: [⌈m·words/(n−1)⌉] ≈ O(n log U) *)
}

val max_flow : Digraph.t -> s:int -> t:int -> report

val min_cost_flow : Digraph.t -> sigma:int array -> (Flow.t * float * int) option
(** Internal successive-shortest-paths after the same gather; [None] when the
    demand is infeasible. Returns (flow, cost, rounds). *)

val rounds_reference : n:int -> m:int -> u:int -> int
