(** Successive shortest paths with potentials — the exact min-cost-flow
    engine.

    Three roles: (a) the test oracle for the CMSV interior point method,
    (b) the internal solver of the trivial gather-everything baseline, and
    (c) a distributed baseline in its own right ([#augmentations] SSSP
    calls, each charged [O(n^{0.158})] rounds). *)

type report = {
  f : Flow.t;
  cost : float;
  augmentations : int;
  rounds : int;  (** charged: augmentations · ⌈n^{0.158}⌉ *)
}

val solve : Digraph.t -> sigma:int array -> report option
(** [solve g ~sigma] finds a minimum-cost flow satisfying the demand vector
    ([σ(v) > 0] = [v] supplies [σ(v)] units); [None] when infeasible.
    [σ] must sum to zero. *)

val solve_max_flow_min_cost :
  Digraph.t -> s:int -> t:int -> Flow.t * int * float
(** Minimum-cost maximum s-t flow: [(flow, value, cost)]. *)
