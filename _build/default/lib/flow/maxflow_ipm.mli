(** Deterministic maximum flow in the congested clique — Theorem 1.2,
    [m^{3/7+o(1)} U^{1/7}] rounds.

    Mądry's interior-point pipeline as the paper runs it (§5, Appendix B):
    + {b IPM phase} — augmenting electrical flows: per progress step one
      Augmentation solve and one Fixing solve (two Laplacian systems,
      [n^{o(1)}] rounds each by Theorem 1.1), with step sizes controlled by
      the congestion of the electrical flow, on the two-sided-capacity
      symmetrization of the input ([u⁺_e = u⁻_e = u_e], Mądry's setting;
      this replaces his preconditioning-edge + Boosting machinery — see
      DESIGN.md substitution 6 — and makes [f = 0] a strictly interior
      start);
    + {b rounding} — the fractional flow is gathered (its size is one word
      per arc), projected onto the largest directed-feasible flow dominated
      by its positive part — an internal exact computation on [Δ = Θ(1/m)]
      grid units, so grid conservation is exact — and rounded to integrality
      with {!Rounding.Flow_rounding} (Lemma 4.2);
    + {b repair} — remaining deficit is closed with augmenting paths on the
      residual graph, each charged the CKKL reachability rate
      [O(n^{0.158})]; the paper needs one augmentation, our relaxation may
      need a few more on non-layered instances (reported, and exactness is
      unconditional).

    The result is always the exact maximum flow (validated against Dinic in
    the test suite). *)

type report = {
  f : Flow.t;  (** exact integral maximum flow *)
  value : int;
  ipm_iterations : int;  (** progress steps actually taken *)
  laplacian_solves : int;
  repair_augmentations : int;
  rounds : int;  (** total charged rounds *)
  phase_rounds : (string * int) list;
      (** "ipm", "gather", "rounding", "repair" *)
}

val max_flow :
  ?solver:Electrical.solver ->
  ?iteration_cap:int ->
  Digraph.t ->
  s:int ->
  t:int ->
  report
(** [max_flow g ~s ~t]. [solver] selects the Laplacian backend for the
    electrical flows (default [Cg 1e-10]; use [Theorem_1_1] for full-fidelity
    round accounting, at real wall-clock cost). [iteration_cap] bounds the
    IPM phase (default [100 + 20·iterations_reference]); exactness never depends
    on the cap. *)

val iterations_reference : m:int -> u:int -> int
(** The [m^{3/7} U^{1/7}]-shaped progress-step curve for E5 ([η = 1/14];
    the paper's [100·log U] constant is dropped so the reference is
    comparable to measured counts at bench sizes). *)

val rounds_reference : n:int -> m:int -> u:int -> int
(** [iterations_reference · (solver rounds per step)] + rounding + one
    repair — the E5 reference total. *)
