(** Electrical flows — the inner object of both interior point methods.

    An electrical flow on an undirected support with per-edge resistances
    [r_e] and demand [b] is [f_e = (φ_u − φ_v)/r_e] where [L φ = b] with
    conductances [1/r_e]. One IPM iteration computes exactly one or two of
    these, each a Laplacian solve (Theorem 1.1: [n^{o(1)}] rounds). *)

type t = {
  potentials : Linalg.Vec.t;  (** φ, centered *)
  flow : float array;  (** per support edge, positive in the u→v direction *)
  energy : float;  (** Σ r_e f_e² *)
  solver_rounds : int;  (** rounds charged by the Laplacian solve *)
  solver_iterations : int;
}

type solver =
  | Exact  (** dense grounded Cholesky — oracle for tests and small runs *)
  | Cg of float  (** distributed CG with the given tolerance *)
  | Theorem_1_1 of float
      (** the paper's solver ({!Laplacian.Solver.solve}), with its ε;
          slow per call but gives the true round accounting *)

val compute :
  ?solver:solver ->
  support:Graph.t ->
  resistance:(int -> float) ->
  b:Linalg.Vec.t ->
  unit ->
  t
(** [compute ~support ~resistance ~b ()] solves the electrical-flow problem
    on [support] (edge ids of [support] index [resistance] and the output
    [flow]). [b] must sum to 0 and be supported on one connected component.
    Default solver: [Cg 1e-10]. *)

val effective_resistance :
  ?solver:solver -> Graph.t -> int -> int -> float
(** [effective_resistance g u v] with resistances = 1/weight: the energy of a
    unit u→v electrical flow — used by examples and tests (and a classic
    Laplacian-paradigm quantity in its own right). *)
