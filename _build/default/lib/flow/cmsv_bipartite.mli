(** The CMSV interior point method, verbatim — Appendix C's Algorithms 7–9
    on the bipartite lift.

    {!Mcf_ipm} folds CMSV's bipartite encoding into a two-sided barrier on
    the direct arc form (numerically friendlier, same structure); this
    module instead implements the appendix {e as written}:

    - {b Initialization} (Algorithm 7): auxiliary vertex [v_aux] with
      [2|t(v)|] imbalance arcs of cost [‖c‖₁], then the bipartite graph
      [G = (P ∪ Q, E)] with an edge-vertex [e_uv] per lifted arc, demands
      [b(u) = σ(u) + deg_in(u)], [b(e_uv) = 1], and the explicit central
      initial point [f = ½], [y], [s = c + yᵤ − y_v], [ν = s/(2‖c‖∞)],
      [µ̂ = ‖c‖∞];
    - {b Perturbation} (Algorithm 8): [y_v ← y_v − s_e], [ν_e ← 2ν_e],
      [ν_ē ← ν_ē + ν_e f_e / f_ē], fired while [‖ρ‖_{ν,3} > c_ρ·m^{1/2−η}];
    - {b Progress} (Algorithm 9): resistances [r_e = ν_e/f_e²], two
      electrical solves, the [δ = min(1/(8‖ρ‖_{ν,4}), 1/8)] step, and the
      [f#]/[s'] updates, line by line.

    The fractional bipartite flow maps back to arc flows
    ([f_arc = f_{(u,e_uv)}]), and the same rounding + repair pipeline as
    {!Mcf_ipm} makes the result exact — so this engine is validated against
    the same oracles, and the bench compares the two engines' measured
    iteration counts (both are Õ(m^{3/7}) shapes in the paper). *)

type report = {
  f : Flow.t;  (** exact integral min-cost flow on the input arcs *)
  cost : float;
  ipm_iterations : int;
  perturbations : int;  (** Algorithm 8 firings *)
  laplacian_solves : int;
  repair_augmentations : int;
  rounds : int;
}

val solve :
  ?solver:Electrical.solver ->
  ?iteration_cap:int ->
  Digraph.t ->
  sigma:int array ->
  report option
(** Same contract as {!Mcf_ipm.solve}. *)
