(** Flow vectors and their invariants (§2.4).

    A flow on a digraph is a per-arc [float array] (fractional during the
    interior point method, integral at the end). These helpers state the
    §2.4 definitions once so that every algorithm and every test checks the
    same conditions. *)

type t = float array

val excess : Digraph.t -> t -> t
(** [excess g f] is inflow minus outflow per vertex. *)

val value : Digraph.t -> s:int -> f:t -> float
(** Net flow out of the source. *)

val cost : Digraph.t -> t -> float

val conservation_violation : Digraph.t -> s:int -> t:int -> f:t -> float
(** Max |excess| over vertices other than [s], [t]. *)

val demand_violation : Digraph.t -> sigma:int array -> f:t -> float
(** Max |excess(v) + σ(v)| — condition (1') with the convention that
    [σ(v) > 0] means [v] supplies σ(v) units. *)

val capacity_violation : Digraph.t -> f:t -> float
(** Max of [f_e − u_e] and [−f_e] over arcs (0 when [0 ≤ f ≤ u]). *)

val is_feasible : ?tol:float -> Digraph.t -> s:int -> t:int -> f:t -> bool

val is_integral : ?tol:float -> t -> bool

val round_to_int : t -> int array
(** Nearest-integer snapshot (for reporting integral flows). *)
