(* Residual network: arc 2i is the forward copy of input arc i, arc 2i+1 its
   reverse. *)

type residual = {
  n : int;
  heads : int array;
  caps : int array; (* mutable residual capacities *)
  adj : int list array; (* per vertex: residual arc ids *)
}

let build g =
  let n = Digraph.n g in
  let m = Digraph.m g in
  let heads = Array.make (2 * m) 0 in
  let caps = Array.make (2 * m) 0 in
  let adj = Array.make n [] in
  Array.iteri
    (fun i a ->
      heads.(2 * i) <- a.Digraph.dst;
      caps.(2 * i) <- a.Digraph.cap;
      heads.((2 * i) + 1) <- a.Digraph.src;
      caps.((2 * i) + 1) <- 0;
      adj.(a.Digraph.src) <- (2 * i) :: adj.(a.Digraph.src);
      adj.(a.Digraph.dst) <- ((2 * i) + 1) :: adj.(a.Digraph.dst))
    (Digraph.arcs g);
  { n; heads; caps; adj }

let bfs_levels r s =
  let level = Array.make r.n (-1) in
  let q = Queue.create () in
  level.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun id ->
        let u = r.heads.(id) in
        if r.caps.(id) > 0 && level.(u) < 0 then begin
          level.(u) <- level.(v) + 1;
          Queue.add u q
        end)
      r.adj.(v)
  done;
  level

let rec dfs r level iter v t pushed =
  if v = t then pushed
  else begin
    let rec try_arcs () =
      match iter.(v) with
      | [] -> 0
      | id :: rest ->
        let u = r.heads.(id) in
        if r.caps.(id) > 0 && level.(u) = level.(v) + 1 then begin
          let got = dfs r level iter u t (min pushed r.caps.(id)) in
          if got > 0 then begin
            r.caps.(id) <- r.caps.(id) - got;
            r.caps.(id lxor 1) <- r.caps.(id lxor 1) + got;
            got
          end
          else begin
            iter.(v) <- rest;
            try_arcs ()
          end
        end
        else begin
          iter.(v) <- rest;
          try_arcs ()
        end
    in
    try_arcs ()
  end

let run g ~s ~t =
  if s = t then invalid_arg "Dinic.max_flow: s = t";
  let r = build g in
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let level = bfs_levels r s in
    if level.(t) < 0 then continue_ := false
    else begin
      let iter = Array.map (fun l -> l) r.adj in
      let rec pump () =
        let got = dfs r level iter s t max_int in
        if got > 0 then begin
          total := !total + got;
          pump ()
        end
      in
      pump ()
    end
  done;
  (r, !total)

let max_flow g ~s ~t =
  let r, total = run g ~s ~t in
  let m = Digraph.m g in
  let f =
    Array.init m (fun i ->
        let a = Digraph.arc g i in
        float_of_int (a.Digraph.cap - r.caps.(2 * i)))
  in
  (f, total)

let max_flow_value g ~s ~t = snd (run g ~s ~t)

let min_cut g ~s ~t =
  let r, _ = run g ~s ~t in
  let level = bfs_levels r s in
  Array.map (fun l -> l >= 0) level
