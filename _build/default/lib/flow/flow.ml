type t = float array

let excess g f =
  let ex = Array.make (Digraph.n g) 0. in
  Array.iteri
    (fun id a ->
      ex.(a.Digraph.dst) <- ex.(a.Digraph.dst) +. f.(id);
      ex.(a.Digraph.src) <- ex.(a.Digraph.src) -. f.(id))
    (Digraph.arcs g);
  ex

let value g ~s ~f =
  let ex = excess g f in
  -.ex.(s)

let cost g f =
  let acc = ref 0. in
  Array.iteri
    (fun id a -> acc := !acc +. (float_of_int a.Digraph.cost *. f.(id)))
    (Digraph.arcs g);
  !acc

let conservation_violation g ~s ~t ~f =
  let ex = excess g f in
  let worst = ref 0. in
  Array.iteri
    (fun v e -> if v <> s && v <> t then worst := Float.max !worst (Float.abs e))
    ex;
  !worst

let demand_violation g ~sigma ~f =
  let ex = excess g f in
  let worst = ref 0. in
  Array.iteri
    (fun v e ->
      worst := Float.max !worst (Float.abs (e +. float_of_int sigma.(v))))
    ex;
  !worst

let capacity_violation g ~f =
  let worst = ref 0. in
  Array.iteri
    (fun id a ->
      worst := Float.max !worst (f.(id) -. float_of_int a.Digraph.cap);
      worst := Float.max !worst (-.f.(id)))
    (Digraph.arcs g);
  !worst

let is_feasible ?(tol = 1e-9) g ~s ~t ~f =
  conservation_violation g ~s ~t ~f <= tol && capacity_violation g ~f <= tol

let is_integral ?(tol = 1e-9) f =
  Array.for_all (fun x -> Float.abs (x -. Float.round x) <= tol) f

let round_to_int f = Array.map (fun x -> int_of_float (Float.round x)) f
