(** Dinic's max-flow algorithm — the exact sequential reference.

    Not a congested-clique algorithm: this is the test/bench oracle every
    distributed result is validated against, and the internal solver of the
    trivial gather-everything baseline (§1.1). *)

val max_flow : Digraph.t -> s:int -> t:int -> Flow.t * int
(** [max_flow g ~s ~t] returns the per-arc integral flow and its value.
    Raises [Invalid_argument] if [s = t]. *)

val max_flow_value : Digraph.t -> s:int -> t:int -> int

val min_cut : Digraph.t -> s:int -> t:int -> bool array
(** Source side of a minimum s-t cut (by BFS on the final residual). *)
