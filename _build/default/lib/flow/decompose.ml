type item =
  | Path of { arcs : int list; amount : float }
  | Cycle of { arcs : int list; amount : float }

(* Walk forward along the arc with the largest remaining flow, peeling off a
   cycle whenever the walk revisits a vertex. A dead end (every outgoing
   residue ≤ tol while we entered with > tol — possible because sub-tolerance
   dribble is invisible) is resolved by backtracking: the offending entering
   arc is zeroed (conservation bounds it by degree·tol) and the walk resumes
   one step earlier. Every call either extracts an item or zeroes at least
   one arc, so the decomposition terminates after ≤ 2m calls. *)
let decompose ?(tol = 1e-9) g ~s ~t f =
  let m = Digraph.m g in
  let rem = Array.copy f in
  Array.iter
    (fun x -> if x < -.tol then invalid_arg "Decompose: negative flow")
    rem;
  let items = ref [] in
  let next_arc v =
    List.fold_left
      (fun best id ->
        if rem.(id) > tol then
          match best with
          | Some b when rem.(b) >= rem.(id) -> best
          | _ -> Some id
        else best)
      None (Digraph.out_arcs g v)
  in
  let extract_from start ~expect_path =
    let on_path = Array.make (Digraph.n g) (-1) in
    let walk = ref [] in
    (* reversed arc list *)
    let len = ref 0 in
    let v = ref start in
    on_path.(start) <- 0;
    let rebuild kept =
      Array.fill on_path 0 (Array.length on_path) (-1);
      on_path.(start) <- 0;
      walk := [];
      let pos = ref 0 in
      List.iter
        (fun e ->
          walk := e :: !walk;
          incr pos;
          on_path.((Digraph.arc g e).Digraph.dst) <- !pos)
        kept;
      len := List.length kept
    in
    let finished = ref false in
    while not !finished do
      if expect_path && !v = t && !len > 0 then begin
        let arcs = List.rev !walk in
        let amount =
          List.fold_left (fun a id -> Float.min a rem.(id)) infinity arcs
        in
        List.iter (fun id -> rem.(id) <- rem.(id) -. amount) arcs;
        items := Path { arcs; amount } :: !items;
        finished := true
      end
      else begin
        match next_arc !v with
        | None ->
          if !len = 0 then finished := true
          else begin
            (* Dead end: zero the entering arc and back up one step. *)
            match !walk with
            | [] -> finished := true
            | last :: rest ->
              rem.(last) <- 0.;
              on_path.(!v) <- -1;
              walk := rest;
              decr len;
              v := (Digraph.arc g last).Digraph.src
          end
        | Some id ->
          let dst = (Digraph.arc g id).Digraph.dst in
          if on_path.(dst) >= 0 then begin
            let pos = on_path.(dst) in
            let all = List.rev (id :: !walk) in
            let in_cycle = List.filteri (fun i _ -> i >= pos) all in
            let amount =
              List.fold_left (fun a e -> Float.min a rem.(e)) infinity in_cycle
            in
            List.iter (fun e -> rem.(e) <- rem.(e) -. amount) in_cycle;
            items := Cycle { arcs = in_cycle; amount } :: !items;
            let kept = List.filteri (fun i _ -> i < pos) (List.rev !walk) in
            rebuild kept;
            v := dst;
            if not expect_path then finished := true
          end
          else begin
            walk := id :: !walk;
            incr len;
            v := dst;
            on_path.(dst) <- !len
          end
      end
    done
  in
  (* Phase 1: peel s→t paths while the flow still carries net value out of
     s. Driving this by the net excess (not by leftover outgoing residue)
     keeps circulations through s out of the path phase. *)
  let net_out_of_s () =
    List.fold_left (fun a id -> a +. rem.(id)) 0. (Digraph.out_arcs g s)
    -. List.fold_left (fun a id -> a +. rem.(id)) 0. (Digraph.in_arcs g s)
  in
  let guard = ref 0 in
  while net_out_of_s () > tol && !guard < (4 * m) + 4 do
    incr guard;
    extract_from s ~expect_path:true
  done;
  (* Phase 2: the rest is (approximately) a circulation; peel cycles. *)
  let rec first_loaded e =
    if e >= m then None else if rem.(e) > tol then Some e else first_loaded (e + 1)
  in
  let guard2 = ref 0 in
  let continue_ = ref true in
  while !continue_ && !guard2 < (4 * m) + 4 do
    incr guard2;
    match first_loaded 0 with
    | None -> continue_ := false
    | Some e -> extract_from (Digraph.arc g e).Digraph.src ~expect_path:false
  done;
  List.rev !items

let accumulate g items =
  let f = Array.make (Digraph.m g) 0. in
  List.iter
    (fun item ->
      let arcs, amount =
        match item with
        | Path { arcs; amount } -> (arcs, amount)
        | Cycle { arcs; amount } -> (arcs, amount)
      in
      List.iter (fun id -> f.(id) <- f.(id) +. amount) arcs)
    items;
  f

let quantize_paths ~delta items =
  List.filter_map
    (fun item ->
      match item with
      | Cycle _ -> None
      | Path { arcs; amount } ->
        let q = delta *. Float.of_int (int_of_float (amount /. delta)) in
        if q <= 0. then None else Some (Path { arcs; amount = q }))
    items
