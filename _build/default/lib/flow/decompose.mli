(** Path/cycle decomposition of a non-negative flow.

    Used by the max-flow pipeline to (a) snap a fractional interior-point
    flow onto the Δ-grid path-by-path — which preserves exact grid
    conservation, the precondition of {!Rounding.Flow_rounding} — and (b)
    drop circulation through the preconditioning arcs (see DESIGN.md
    substitution 6). Any flow decomposes into at most [m] paths/cycles. *)

type item =
  | Path of { arcs : int list; amount : float }
      (** s→t path, arc ids in order *)
  | Cycle of { arcs : int list; amount : float }

val decompose :
  ?tol:float -> Digraph.t -> s:int -> t:int -> float array -> item list
(** Requires [f ≥ 0] conserving (up to [tol], default 1e-9) at every vertex
    other than [s], [t]. The items reconstruct [f] up to [m·tol]. *)

val accumulate : Digraph.t -> item list -> float array
(** Inverse of {!decompose}: sum the items back into a per-arc flow. *)

val quantize_paths : delta:float -> item list -> item list
(** Keep only paths, with amounts floored to multiples of [delta]; drops
    cycles and zero-amount paths. The result accumulates to a grid-exact
    conserving flow whose value is within [#paths·delta] of the input's. *)
