lib/euler/orientation.mli: Graph
