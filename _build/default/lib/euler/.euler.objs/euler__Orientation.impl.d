lib/euler/orientation.ml: Array Clique Coloring Fun Graph Hashtbl List Prng
