(** The CONGEST model (§2.1): the congested clique's restricted sibling,
    where nodes may only exchange messages with their *topological*
    neighbours. Built so the §1.1 cross-model comparisons are concrete: the
    same primitive (e.g. BFS) runs on both kernels, and the CONGEST round
    formulas of the related-work algorithms are kept next to the clique
    ones.

    Like {!Sim}, delivery is real and bandwidth is enforced (at most [width]
    words per edge per direction per round). *)

type t

exception Not_an_edge of { src : int; dst : int }

val create : Graph.t -> t
(** One node per vertex; links are exactly the graph's edges. *)

val rounds : t -> int

val exchange :
  ?width:int -> t -> (int * int array) list array -> (int * int array) list array
(** Same contract as {!Sim.exchange}, except messages must follow edges —
    raises {!Not_an_edge} otherwise. *)

val bfs : t -> int -> int array
(** Distributed BFS by flooding: node programs on this kernel; returns hop
    distances ([-1] unreached) and advances the round counter by exactly the
    eccentricity of the source — the [D] in every CONGEST bound. *)

val bellman_ford : t -> int -> float array
(** Distributed Bellman–Ford on the edge weights; [O(n)] rounds measured. *)

val diameter : Graph.t -> int
(** Hop diameter (oracle, not distributed): the [D] parameter of the
    reference formulas; [max_int] when disconnected. *)

(** {1 §1.1 reference round formulas}

    The CONGEST-model competitors the paper compares against. These are used
    by the model-comparison bench (E7b) to show that the clique algorithms
    are "clearly always faster" than their CONGEST counterparts, as §1.1
    argues. Constants are dropped, like every reference curve (DESIGN.md). *)

val fglp_laplacian_rounds : n:int -> d:int -> eps:float -> int
(** FGLP+21: [n^{o(1)}(√n + D)·log(1/ε)]. *)

val fglp_maxflow_rounds : n:int -> m:int -> d:int -> u:int -> int
(** FGLP+21: [Õ(m^{3/7}U^{1/7}(n^{o(1)}(√n+D) + √n·D^{1/4}) + √m)]. *)

val fglp_mcf_rounds : n:int -> m:int -> d:int -> w:int -> int
(** FGLP+21: [Õ(m^{3/7+o(1)}(√n·D^{1/4} + D)·polylog W)]. *)

val fv22_bcc_mcf_rounds : n:int -> int
(** FV22 Broadcast Congested Clique min-cost flow: [Õ(√n)] (randomized). *)
