(** Synchronous message-passing kernel — the congested clique itself (§2.1).

    [n] nodes, identified [0..n-1], proceed in synchronous rounds. In one
    round every ordered pair of nodes may exchange one message of
    [O(log n)] bits, modeled as at most [width] machine words per ordered
    pair ([width = 2] by default: a tag word plus a value word). Exceeding
    the budget raises {!Bandwidth_exceeded} — algorithms cannot cheat.

    The genuinely distributed subroutines (Eulerian orientation and its
    Cole–Vishkin coloring) run on this kernel; their round counts are
    *measured*, not charged. *)

type t

exception Bandwidth_exceeded of { src : int; dst : int; words : int }

val create : int -> t
(** [create n] makes a clique of [n] nodes. *)

val n : t -> int

val rounds : t -> int
(** Rounds elapsed so far. *)

val words_sent : t -> int
(** Total words ever sent (message-complexity measure). *)

val exchange :
  ?width:int -> t -> (int * int array) list array -> (int * int array) list array
(** [exchange t outboxes] performs one synchronous round. [outboxes.(v)] is
    node [v]'s list of [(dst, payload)] messages; the result [inboxes.(v)] is
    the list of [(src, payload)] received by [v], in unspecified order.
    Raises {!Bandwidth_exceeded} if some ordered pair carries more than
    [width] words (default 2). Increments {!rounds} by 1. *)

val route :
  t -> (int * int * int array) list -> (int * int array) list array
(** [route t msgs] delivers an arbitrary multiset of [(src, dst, payload)]
    messages using the Lenzen routing subroutine: requires every node to send
    at most [n·width] and receive at most [n·width] words, executes the
    delivery, and advances the round counter by
    [⌈load⌉ · Cost.lenzen_routing_rounds] where [load] is the max
    words-per-node divided by [n] (so a within-bound batch costs exactly 16
    rounds, like the paper's step 2b). Raises [Invalid_argument] on
    out-of-range endpoints. *)

val broadcast : t -> int array array -> int array array
(** [broadcast t values] has every node send [values.(v)] (at most [width]
    words) to all others; returns the array of all values (the global view
    every node now shares). One round. *)

val charge : t -> int -> unit
(** Advance the round counter without communication (used when a node-local
    computation stands for a subroutine whose rounds are charged, e.g. the
    final O(1)-size cycle leader election). *)
