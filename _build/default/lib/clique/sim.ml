type t = { n : int; mutable rounds : int; mutable words_sent : int }

exception Bandwidth_exceeded of { src : int; dst : int; words : int }

let create n =
  if n <= 0 then invalid_arg "Sim.create: need n > 0";
  { n; rounds = 0; words_sent = 0 }

let n t = t.n

let rounds t = t.rounds

let words_sent t = t.words_sent

let default_width = 2

let exchange ?(width = default_width) t outboxes =
  if Array.length outboxes <> t.n then
    invalid_arg "Sim.exchange: outbox array length mismatch";
  let inboxes = Array.make t.n [] in
  let pair_words = Hashtbl.create 64 in
  Array.iteri
    (fun src msgs ->
      List.iter
        (fun (dst, payload) ->
          if dst < 0 || dst >= t.n then
            invalid_arg
              (Printf.sprintf "Sim.exchange: destination %d out of range" dst);
          let w = Array.length payload in
          let key = (src, dst) in
          let cur = try Hashtbl.find pair_words key with Not_found -> 0 in
          let total = cur + w in
          if total > width then
            raise (Bandwidth_exceeded { src; dst; words = total });
          Hashtbl.replace pair_words key total;
          t.words_sent <- t.words_sent + w;
          inboxes.(dst) <- (src, payload) :: inboxes.(dst))
        msgs)
    outboxes;
  t.rounds <- t.rounds + 1;
  inboxes

let route t msgs =
  let width = default_width in
  let sent = Array.make t.n 0 in
  let received = Array.make t.n 0 in
  let inboxes = Array.make t.n [] in
  List.iter
    (fun (src, dst, payload) ->
      if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
        invalid_arg "Sim.route: endpoint out of range";
      let w = Array.length payload in
      sent.(src) <- sent.(src) + w;
      received.(dst) <- received.(dst) + w;
      t.words_sent <- t.words_sent + w;
      inboxes.(dst) <- (src, payload) :: inboxes.(dst))
    msgs;
  let max_load = ref 0 in
  for v = 0 to t.n - 1 do
    max_load := max !max_load (max sent.(v) received.(v))
  done;
  let capacity = t.n * width in
  let batches = max 1 ((!max_load + capacity - 1) / capacity) in
  t.rounds <- t.rounds + (batches * Cost.lenzen_routing_rounds);
  inboxes

let broadcast t values =
  if Array.length values <> t.n then
    invalid_arg "Sim.broadcast: values array length mismatch";
  Array.iter
    (fun payload ->
      t.words_sent <- t.words_sent + ((t.n - 1) * Array.length payload))
    values;
  t.rounds <- t.rounds + Cost.broadcast_rounds;
  Array.copy values

let charge t r =
  if r < 0 then invalid_arg "Sim.charge: negative rounds";
  t.rounds <- t.rounds + r
