lib/clique/boruvka.ml: Array Fun Graph Hashtbl List Sim Unionfind
