lib/clique/boruvka.mli: Graph
