lib/clique/congest.ml: Array Float Graph Hashtbl List Sim Traversal
