lib/clique/congest.mli: Graph
