lib/clique/cost.ml: Float Hashtbl List
