lib/clique/sim.mli:
