lib/clique/cost.mli:
