lib/clique/sim.ml: Array Cost Hashtbl List Printf
