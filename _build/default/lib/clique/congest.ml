type t = {
  graph : Graph.t;
  neighbors : (int, unit) Hashtbl.t array;
  mutable rounds : int;
}

exception Not_an_edge of { src : int; dst : int }

let create graph =
  let n = Graph.n graph in
  let neighbors = Array.init n (fun _ -> Hashtbl.create 4) in
  Array.iter
    (fun e ->
      Hashtbl.replace neighbors.(e.Graph.u) e.Graph.v ();
      Hashtbl.replace neighbors.(e.Graph.v) e.Graph.u ())
    (Graph.edges graph);
  { graph; neighbors; rounds = 0 }

let rounds t = t.rounds

let exchange ?(width = 2) t outboxes =
  let n = Graph.n t.graph in
  if Array.length outboxes <> n then
    invalid_arg "Congest.exchange: outbox array length mismatch";
  let inboxes = Array.make n [] in
  let pair_words = Hashtbl.create 64 in
  Array.iteri
    (fun src msgs ->
      List.iter
        (fun (dst, payload) ->
          if dst < 0 || dst >= n then
            invalid_arg "Congest.exchange: destination out of range";
          if not (Hashtbl.mem t.neighbors.(src) dst) then
            raise (Not_an_edge { src; dst });
          let key = (src, dst) in
          let cur = try Hashtbl.find pair_words key with Not_found -> 0 in
          let total = cur + Array.length payload in
          if total > width then
            raise (Sim.Bandwidth_exceeded { src; dst; words = total });
          Hashtbl.replace pair_words key total;
          inboxes.(dst) <- (src, payload) :: inboxes.(dst))
        msgs)
    outboxes;
  t.rounds <- t.rounds + 1;
  inboxes

let bfs t s =
  let n = Graph.n t.graph in
  let dist = Array.make n (-1) in
  dist.(s) <- 0;
  let frontier = ref [ s ] in
  while !frontier <> [] do
    let outboxes = Array.make n [] in
    List.iter
      (fun v ->
        outboxes.(v) <-
          Hashtbl.fold
            (fun u () acc -> (u, [| dist.(v) |]) :: acc)
            t.neighbors.(v) [])
      !frontier;
    let inboxes = exchange t outboxes in
    let next = ref [] in
    Array.iteri
      (fun v msgs ->
        if dist.(v) < 0 then
          List.iter
            (fun (_, payload) ->
              if dist.(v) < 0 then begin
                dist.(v) <- payload.(0) + 1;
                next := v :: !next
              end)
            msgs)
      inboxes;
    frontier := !next
  done;
  dist

let bellman_ford t s =
  let n = Graph.n t.graph in
  let dist = Array.make n infinity in
  dist.(s) <- 0.;
  let scale = 1024. in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Every node with a finite distance tells its neighbours (fixed-point
       encoded to fit the word model). *)
    let outboxes = Array.make n [] in
    for v = 0 to n - 1 do
      if dist.(v) < infinity then
        outboxes.(v) <-
          Hashtbl.fold
            (fun u () acc ->
              (u, [| int_of_float (Float.round (dist.(v) *. scale)) |]) :: acc)
            t.neighbors.(v) []
    done;
    let inboxes = exchange t outboxes in
    Array.iteri
      (fun v msgs ->
        List.iter
          (fun (src, payload) ->
            let d_src = float_of_int payload.(0) /. scale in
            (* Lightest edge between src and v. *)
            let w = ref infinity in
            List.iter
              (fun (u, id) ->
                if u = src then w := Float.min !w (Graph.edge t.graph id).Graph.w)
              (Graph.adj t.graph v);
            let cand = d_src +. !w in
            if cand < dist.(v) -. 1e-9 then begin
              dist.(v) <- cand;
              changed := true
            end)
          msgs)
      inboxes
  done;
  dist

let diameter g =
  let n = Graph.n g in
  let worst = ref 0 in
  (try
     for s = 0 to n - 1 do
       let dist = Traversal.bfs g s in
       Array.iter
         (fun d ->
           if d < 0 then begin
             worst := max_int;
             raise Exit
           end
           else worst := max !worst d)
         dist
     done
   with Exit -> ());
  !worst

(* --------------------------------------------------- §1.1 reference curves *)

let fglp_laplacian_rounds ~n ~d ~eps =
  let nf = float_of_int (max n 2) in
  int_of_float
    (Float.ceil ((sqrt nf +. float_of_int d) *. log (2. /. Float.max eps 1e-30)))

let fglp_maxflow_rounds ~n ~m ~d ~u =
  let nf = float_of_int (max n 2) and mf = float_of_int (max m 2) in
  let df = float_of_int (max d 1) in
  let per_iter = sqrt nf +. df +. (sqrt nf *. (df ** 0.25)) in
  int_of_float
    (Float.ceil
       (((mf ** (3. /. 7.)) *. (float_of_int (max u 1) ** (1. /. 7.)) *. per_iter)
       +. sqrt mf))

let fglp_mcf_rounds ~n ~m ~d ~w =
  let nf = float_of_int (max n 2) and mf = float_of_int (max m 2) in
  let df = float_of_int (max d 1) in
  let lw = Float.max 1. (Float.log2 (float_of_int (max w 2))) in
  int_of_float
    (Float.ceil ((mf ** (3. /. 7.)) *. ((sqrt nf *. (df ** 0.25)) +. df) *. lw))

let fv22_bcc_mcf_rounds ~n =
  int_of_float (Float.ceil (sqrt (float_of_int (max n 2))))
