type result = { edges : int list; weight : float; rounds : int; phases : int }

let edge_key g id =
  let e = Graph.edge g id in
  (e.Graph.w, id)

let kruskal g =
  let ids = List.init (Graph.m g) Fun.id in
  let sorted =
    List.sort (fun a b -> compare (edge_key g a) (edge_key g b)) ids
  in
  let uf = Unionfind.create (Graph.n g) in
  List.filter
    (fun id ->
      let e = Graph.edge g id in
      Unionfind.union uf e.Graph.u e.Graph.v)
    sorted

let minimum_spanning_tree g =
  if not (Graph.is_connected g) then
    invalid_arg "Boruvka.minimum_spanning_tree: graph must be connected";
  let n = Graph.n g in
  let sim = Sim.create n in
  let label = Array.init n (fun v -> v) in
  let chosen = ref [] in
  let phases = ref 0 in
  let components = ref n in
  while !components > 1 do
    incr phases;
    (* Round 1: everyone learns every node's component label. *)
    let labels =
      Array.map (fun l -> l.(0)) (Sim.broadcast sim (Array.map (fun l -> [| l |]) label))
    in
    (* Locally: each node picks its lightest edge leaving its component. *)
    let candidate = Array.make n (-1) in
    for v = 0 to n - 1 do
      List.iter
        (fun (u, id) ->
          if labels.(u) <> labels.(v) then
            match candidate.(v) with
            | -1 -> candidate.(v) <- id
            | best -> if edge_key g id < edge_key g best then candidate.(v) <- id)
        (Graph.adj g v)
    done;
    (* Round 2: broadcast the candidates; everyone now shares the merge
       decisions and applies them identically. *)
    let shared =
      Array.map (fun c -> c.(0))
        (Sim.broadcast sim (Array.map (fun c -> [| c |]) candidate))
    in
    (* Per component, keep only its lightest candidate, then union. *)
    let best_of_component = Hashtbl.create 16 in
    Array.iteri
      (fun v id ->
        if id >= 0 then begin
          let c = labels.(v) in
          match Hashtbl.find_opt best_of_component c with
          | None -> Hashtbl.replace best_of_component c id
          | Some cur ->
            if edge_key g id < edge_key g cur then
              Hashtbl.replace best_of_component c id
        end)
      shared;
    let uf = Unionfind.create n in
    (* Rebuild current components, then merge along the selected edges. *)
    for v = 0 to n - 1 do
      ignore (Unionfind.union uf v labels.(v))
    done;
    Hashtbl.iter
      (fun _ id ->
        let e = Graph.edge g id in
        if Unionfind.union uf e.Graph.u e.Graph.v then chosen := id :: !chosen)
      best_of_component;
    for v = 0 to n - 1 do
      label.(v) <- Unionfind.find uf v
    done;
    components := Unionfind.count uf
  done;
  let edges = List.sort_uniq compare !chosen in
  let weight =
    List.fold_left (fun acc id -> acc +. (Graph.edge g id).Graph.w) 0. edges
  in
  { edges; weight; rounds = Sim.rounds sim; phases = !phases }
