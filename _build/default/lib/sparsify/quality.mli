(** Measuring spectral approximation quality (Definition 2.1).

    The substituted sparsifier constructions (DESIGN.md §4) come with
    *measured* rather than proven approximation factors; this module computes
    them: the smallest [α ≥ 1] with [(1/α)·L_H ≼ L_G ≼ α·L_H]. *)

val approximation_factor : Graph.t -> Graph.t -> float
(** [approximation_factor g h] for connected [g], [h] on the same vertex set
    (both Laplacians restricted to the range, i.e. vertex 0 grounded).
    Computed via the extreme generalized eigenvalues of the pencil
    [(L_G, L_H)] by power iteration on [R_H^{-T} A_G R_H^{-1}] — [O(n³)],
    intended for test/bench sizes. Returns [infinity] when either grounded
    matrix fails to factor (disconnected input). *)

val relative_condition : Graph.t -> Graph.t -> float
(** [relative_condition g h] is [κ] with [L_G ≼ α·L_H ≼ κ·L_G] for the best
    scaling — i.e. [λmax/λmin] of the pencil. This is the [κ] fed to
    preconditioned Chebyshev (after scaling [B := α·L_H], Corollary 2.3). *)

val pencil_bounds : Graph.t -> Graph.t -> float * float
(** [(λmin, λmax)] of the pencil [(L_G, L_H)] on the grounded space. *)
