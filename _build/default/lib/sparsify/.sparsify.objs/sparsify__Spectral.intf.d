lib/sparsify/spectral.mli: Graph
