lib/sparsify/tree.mli: Graph
