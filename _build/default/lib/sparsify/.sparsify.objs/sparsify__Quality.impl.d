lib/sparsify/quality.ml: Array Float Graph Linalg
