lib/sparsify/quality.mli: Graph
