lib/sparsify/product_demand.mli: Graph
