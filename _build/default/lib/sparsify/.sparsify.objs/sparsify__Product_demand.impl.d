lib/sparsify/product_demand.ml: Array Clique Float Graph Hashtbl List
