lib/sparsify/spectral.ml: Array Bss Clique Expander Float Graph Hashtbl List Product_demand
