lib/sparsify/bss.ml: Array Float Graph Linalg
