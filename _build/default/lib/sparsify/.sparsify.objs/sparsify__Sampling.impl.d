lib/sparsify/sampling.ml: Array Float Graph Linalg Prng
