lib/sparsify/sampling.mli: Graph
