lib/sparsify/tree.ml: Array Fun Graph Hashtbl List Queue Unionfind
