lib/sparsify/bss.mli: Graph
