(** Spectral sparsification by effective-resistance sampling
    (Spielman–Srivastava) — the *randomized* sparsifier that the paper's
    remark after Theorem 1.3 alludes to: swapping it (or FV22's solver) for
    the deterministic Theorem 3.3 construction turns the [n^{o(1)}] factors
    into [polylog n].

    Kept as an explicitly-randomized ablation backend (seeded, so benches
    stay reproducible); all headline pipelines remain deterministic. *)

val sparsify : ?seed:int64 -> ?c:float -> Graph.t -> Graph.t
(** [sparsify g] samples [⌈c·n·ln n⌉] edges (default [c = 8]) with
    probability proportional to [w_e·R_eff(e)] (leverage scores, computed
    exactly via the grounded pseudoinverse — [O(n³)], bench scale) and
    reweights each pick by [w_e/(q·p_e)]. Requires a connected input with
    [n ≥ 2]. *)

val leverage_scores : Graph.t -> float array
(** [w_e·R_eff(e)] per edge; they sum to [n − 1] on a connected graph
    (Foster's theorem — tested). *)
