(** Product demand graphs and their deterministic internal sparsification.

    Theorem 3.3's proof replaces each expander cluster [G'] by (a sparsifier
    of) the *product demand graph* [H(deg_{G'})]: the complete graph on
    [V(G')] with weights [deg(u)·deg(v)], scaled by [2/|E(G')|] — a
    [4/φ²]-approximation of [G'] when [Φ(G') ≥ φ] (CGLNPS'20).

    The KLPS'16 near-linear internal sparsifier is substituted (DESIGN.md
    substitution 3) by a deterministic degree-bucket expander construction:
    sort vertices into binary degree classes; between every pair of classes
    place an explicit circulant expander carrying that class pair's share of
    the total demand. The approximation factor is measured by
    {!Quality.approximation_factor} in tests and in experiment E1. *)

val complete : Graph.t -> Graph.t
(** [complete g'] is the scaled product demand graph [2/|E| · H(deg_{g'})]
    (a complete graph; only for analysis and tests on small clusters).
    Isolated vertices are left isolated. Requires [Graph.n g' ≥ 2]. *)

val sparse : ?degree:int -> Graph.t -> Graph.t
(** [sparse g'] is the deterministic sparse stand-in for [complete g']:
    [O(n·degree + (#degree classes)²·degree)] edges with the same total
    weight between and within degree classes. [degree] defaults to
    [3 + ⌈log₂ n⌉]. *)

val edge_count_bound : n:int -> degree:int -> int
(** Upper bound on [Graph.m (sparse g')] used by the size accounting of
    Theorem 3.3. *)
