let grounded g =
  let n = Graph.n g in
  let l = Graph.laplacian_dense g in
  Linalg.Dense.init (n - 1) (fun i j -> l.(i + 1).(j + 1))

(* Extreme eigenvalues of the pencil (A, B): eigenvalues of
   C = R^{-T} A R^{-1} where B = Rᵀ R. λmax by power iteration on C; λmin as
   1/λmax(C^{-1}) with C^{-1} = R A^{-1} Rᵀ applied via solves. *)
let pencil_bounds g h =
  if Graph.n g <> Graph.n h then
    invalid_arg "Quality.pencil_bounds: vertex count mismatch";
  if Graph.n g < 2 then invalid_arg "Quality.pencil_bounds: need n >= 2";
  try
    let a = grounded g and b = grounded h in
    let rb = Linalg.Dense.cholesky ~shift:1e-12 b in
    (* rb is lower triangular: b = rb rbᵀ. C = rb^{-1} a rb^{-T}. *)
    let k = Linalg.Dense.dim a in
    let forward_sub l x =
      (* solve l y = x *)
      let y = Linalg.Vec.create k in
      for i = 0 to k - 1 do
        let s = ref x.(i) in
        for j = 0 to i - 1 do
          s := !s -. (l.(i).(j) *. y.(j))
        done;
        y.(i) <- !s /. l.(i).(i)
      done;
      y
    in
    let backward_sub l x =
      (* solve lᵀ y = x *)
      let y = Linalg.Vec.create k in
      for i = k - 1 downto 0 do
        let s = ref x.(i) in
        for j = i + 1 to k - 1 do
          s := !s -. (l.(j).(i) *. y.(j))
        done;
        y.(i) <- !s /. l.(i).(i)
      done;
      y
    in
    let apply_c x =
      forward_sub rb (Linalg.Dense.mul_vec a (backward_sub rb x))
    in
    let la = Linalg.Dense.cholesky ~shift:1e-12 a in
    let apply_c_inv x =
      (* C^{-1} = rbᵀ a^{-1} rb *)
      let y = Linalg.Dense.mul_vec rb x in
      let z = Linalg.Dense.cholesky_solve la y in
      Linalg.Dense.mul_vec (Linalg.Dense.transpose rb) z
    in
    let lmax, _ = Linalg.Dense.power_iteration ~iters:500 apply_c k in
    let inv_lmin, _ = Linalg.Dense.power_iteration ~iters:500 apply_c_inv k in
    let lmin = if inv_lmin > 0. then 1. /. inv_lmin else 0. in
    (lmin, lmax)
  with Failure _ -> (0., infinity)

let approximation_factor g h =
  let lmin, lmax = pencil_bounds g h in
  if lmin <= 0. then infinity else Float.max lmax (1. /. lmin)

let relative_condition g h =
  let lmin, lmax = pencil_bounds g h in
  if lmin <= 0. then infinity else lmax /. lmin
