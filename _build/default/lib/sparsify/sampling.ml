let leverage_scores g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Sampling.leverage_scores: need n >= 2";
  let l = Graph.laplacian_dense g in
  (* Grounded inverse gives effective resistances:
     R(u,v) = (e_u − e_v)ᵀ L† (e_u − e_v). *)
  let reduced = Linalg.Dense.init (n - 1) (fun i j -> l.(i + 1).(j + 1)) in
  let chol = Linalg.Dense.cholesky ~shift:1e-12 reduced in
  let solve b =
    let b = Linalg.Vec.center b in
    let b' = Array.sub b 1 (n - 1) in
    let x' = Linalg.Dense.cholesky_solve chol b' in
    let x = Linalg.Vec.create n in
    Array.blit x' 0 x 1 (n - 1);
    x
  in
  Array.map
    (fun e ->
      let b =
        Linalg.Vec.sub (Linalg.Vec.basis n e.Graph.u) (Linalg.Vec.basis n e.Graph.v)
      in
      let x = solve b in
      e.Graph.w *. (x.(e.Graph.u) -. x.(e.Graph.v)))
    (Graph.edges g)

let sparsify ?(seed = 99L) ?(c = 8.) g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Sampling.sparsify: need n >= 2";
  if not (Graph.is_connected g) then
    invalid_arg "Sampling.sparsify: input must be connected";
  let scores = leverage_scores g in
  let total = Array.fold_left ( +. ) 0. scores in
  let q =
    int_of_float (Float.ceil (c *. float_of_int n *. log (float_of_int (max n 2))))
  in
  let rng = Prng.create seed in
  (* Accumulate repeated picks into one weight per edge. *)
  let picks = Array.make (Graph.m g) 0 in
  for _ = 1 to q do
    let r = Prng.float rng total in
    let acc = ref 0. in
    let chosen = ref (Graph.m g - 1) in
    (try
       Array.iteri
         (fun e s ->
           acc := !acc +. s;
           if !acc >= r then begin
             chosen := e;
             raise Exit
           end)
         scores
     with Exit -> ());
    picks.(!chosen) <- picks.(!chosen) + 1
  done;
  let edges = ref [] in
  Array.iteri
    (fun e k ->
      if k > 0 then begin
        let edge = Graph.edge g e in
        let p = scores.(e) /. total in
        let w = edge.Graph.w *. float_of_int k /. (float_of_int q *. p) in
        edges := { edge with Graph.w } :: !edges
      end)
    picks;
  Graph.create n !edges
