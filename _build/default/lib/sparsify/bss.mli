(** Deterministic Batson–Spielman–Srivastava spectral sparsification
    ("twice-Ramanujan sparsifiers").

    The high-quality (and expensive, [O(d·n·m·n²)]) deterministic sparsifier
    backend: barrier-potential selection of [≈ d·(n−1)] reweighted edges.
    Used (a) as the E8 ablation against the degree-bucket construction and
    (b) as an optional internal sparsifier for small product-demand cliques.
    The implementation follows the barrier mechanics — upper/lower potentials
    [Φ^u, Φ_l], per-step shifts [δ_U, δ_L], and the [U_A(v) ≤ L_A(v)] edge
    selection rule — with the resulting approximation factor *measured* by
    {!Quality} rather than taken on faith (DESIGN.md §4). *)

val sparsify : ?d:int -> Graph.t -> Graph.t
(** [sparsify ~d g] returns a reweighted subgraph with at most [d·(n−1)]
    edges. [d] defaults to 8. [g] must be connected with [n ≥ 2]; raises
    [Invalid_argument] otherwise. If [g] already has ≤ [d·(n−1)] edges it is
    returned unchanged. *)
