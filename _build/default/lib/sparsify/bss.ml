(* Barrier-potential sparsification, following BSS "Twice-Ramanujan
   Sparsifiers": maintain M = Σ t_e v_e v_eᵀ where the v_e put the grounded
   Laplacian in isotropic position; every step shifts both barriers and picks
   an edge whose rank-one update keeps both potentials from growing. *)

let forward_sub l x =
  let k = Array.length x in
  let y = Linalg.Vec.create k in
  for i = 0 to k - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (l.(i).(j) *. y.(j))
    done;
    y.(i) <- !s /. l.(i).(i)
  done;
  y

let sparsify ?(d = 8) g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Bss.sparsify: need n >= 2";
  if not (Graph.is_connected g) then
    invalid_arg "Bss.sparsify: input must be connected";
  let k = n - 1 in
  let m = Graph.m g in
  let budget = d * k in
  if m <= budget then g
  else begin
    let lap = Graph.laplacian_dense g in
    let a = Linalg.Dense.init k (fun i j -> lap.(i + 1).(j + 1)) in
    let r = Linalg.Dense.cholesky ~shift:1e-12 a in
    (* Isotropic edge vectors v_e = r^{-1} b_e. *)
    let vecs =
      Array.map
        (fun e ->
          let b = Linalg.Vec.create k in
          let sw = sqrt e.Graph.w in
          if e.Graph.u > 0 then b.(e.Graph.u - 1) <- sw;
          if e.Graph.v > 0 then b.(e.Graph.v - 1) <- b.(e.Graph.v - 1) -. sw;
          forward_sub r b)
        (Graph.edges g)
    in
    let sd = sqrt (float_of_int d) in
    let delta_u = (sd +. 1.) /. (sd -. 1.) in
    let delta_l = 1. in
    let eps = 0.25 in
    let kf = float_of_int k in
    let u = ref (kf /. eps) in
    let lo = ref (-.kf /. eps) in
    let msum = Linalg.Dense.create k in
    let coeffs = Array.make m 0. in
    let phi_u = ref eps and phi_l = ref eps in
    (try
       for _step = 1 to budget do
         let u' = !u +. delta_u and l' = !lo +. delta_l in
         let shifted_u =
           Linalg.Dense.init k (fun i j ->
               (if i = j then u' else 0.) -. msum.(i).(j))
         in
         let shifted_l =
           Linalg.Dense.init k (fun i j ->
               msum.(i).(j) -. if i = j then l' else 0.)
         in
         let xu = Linalg.Dense.inverse_spd shifted_u in
         let xl = Linalg.Dense.inverse_spd shifted_l in
         let tr mmat =
           let s = ref 0. in
           for i = 0 to k - 1 do
             s := !s +. mmat.(i).(i)
           done;
           !s
         in
         let phi_u' = tr xu and phi_l' = tr xl in
         let dphi_u = !phi_u -. phi_u' in
         let dphi_l = phi_l' -. !phi_l in
         if dphi_u <= 0. || dphi_l <= 0. then raise Exit;
         (* Score every edge. *)
         let best = ref (-1) in
         let best_gap = ref neg_infinity in
         let best_ua = ref 0. and best_la = ref 0. in
         for e = 0 to m - 1 do
           let v = vecs.(e) in
           let xuv = Linalg.Dense.mul_vec xu v in
           let xlv = Linalg.Dense.mul_vec xl v in
           let q1 = Linalg.Vec.dot v xuv in
           let q2 = Linalg.Vec.dot xuv xuv in
           let p1 = Linalg.Vec.dot v xlv in
           let p2 = Linalg.Vec.dot xlv xlv in
           let ua = (q2 /. dphi_u) +. q1 in
           let la = (p2 /. dphi_l) -. p1 in
           let gap = la -. ua in
           if gap > !best_gap then begin
             best_gap := gap;
             best := e;
             best_ua := ua;
             best_la := la
           end
         done;
         if !best < 0 then raise Exit;
         let v = vecs.(!best) in
         let t =
           if !best_gap >= 0. then 2. /. (!best_ua +. !best_la)
           else 1. /. Float.max !best_ua 1e-12
         in
         (* Keep u'I − M positive definite: t·vᵀXu v < 1. *)
         let xuv = Linalg.Dense.mul_vec xu v in
         let xlv = Linalg.Dense.mul_vec xl v in
         let q1 = Linalg.Vec.dot v xuv in
         let t = if t *. q1 >= 0.95 then 0.5 /. Float.max q1 1e-12 else t in
         for i = 0 to k - 1 do
           for j = 0 to k - 1 do
             msum.(i).(j) <- msum.(i).(j) +. (t *. v.(i) *. v.(j))
           done
         done;
         coeffs.(!best) <- coeffs.(!best) +. t;
         (* Sherman–Morrison trace updates. *)
         let p1 = Linalg.Vec.dot v xlv in
         let q2 = Linalg.Vec.dot xuv xuv in
         let p2 = Linalg.Vec.dot xlv xlv in
         phi_u := phi_u' +. (t *. q2 /. (1. -. (t *. q1)));
         phi_l := phi_l' -. (t *. p2 /. (1. +. (t *. p1)));
         u := u';
         lo := l'
       done
     with Exit | Failure _ -> ());
    let scale =
      if !lo > 0. then 1. /. sqrt (!u *. !lo) else 1. /. Float.max !u 1.
    in
    let edge_list = ref [] in
    Array.iteri
      (fun e t ->
        if t > 0. then begin
          let edge = Graph.edge g e in
          edge_list := { edge with Graph.w = edge.Graph.w *. t *. scale } :: !edge_list
        end)
      coeffs;
    Graph.create n !edge_list
  end
