(** Spanning-tree preconditioners — the classical (Vaidya-style) alternative
    the Laplacian paradigm superseded, kept as an E8 ablation backend.

    A maximum-weight spanning tree is a valid preconditioner ([L_T ≼ L_G]
    since [T ⊆ G]), but its pencil condition grows with the tree's stretch —
    measuring it against the Theorem 3.3 sparsifier's κ on the same inputs
    shows exactly why the paper builds sparsifiers instead. *)

val max_weight_spanning_tree : Graph.t -> Graph.t
(** Kruskal on descending weight (ties by edge id). Requires a connected
    input; the result keeps the original weights. *)

val stretch_bound : Graph.t -> Graph.t -> float
(** [stretch_bound g t]: Σ_e w_e · R_T(e) over non-tree edges — the classical
    condition-number upper bound for the tree preconditioner (computed via
    tree path resistances; [O(n·m)]). *)
