let max_weight_spanning_tree g =
  if not (Graph.is_connected g) then
    invalid_arg "Tree.max_weight_spanning_tree: graph must be connected";
  let ids = List.init (Graph.m g) Fun.id in
  let key id =
    let e = Graph.edge g id in
    (-.e.Graph.w, id)
  in
  let sorted = List.sort (fun a b -> compare (key a) (key b)) ids in
  let uf = Unionfind.create (Graph.n g) in
  let kept =
    List.filter
      (fun id ->
        let e = Graph.edge g id in
        Unionfind.union uf e.Graph.u e.Graph.v)
      sorted
  in
  Graph.sub_edges g kept

(* Path resistance in the tree between u and v: sum of 1/w along the unique
   path, found by BFS parent tracing. *)
let tree_path_resistance t u v =
  let n = Graph.n t in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let q = Queue.create () in
  let seen = Array.make n false in
  seen.(u) <- true;
  Queue.add u q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    List.iter
      (fun (y, id) ->
        if not seen.(y) then begin
          seen.(y) <- true;
          parent.(y) <- x;
          parent_edge.(y) <- id;
          Queue.add y q
        end)
      (Graph.adj t x)
  done;
  let rec walk v acc =
    if v = u then acc
    else
      walk parent.(v) (acc +. (1. /. (Graph.edge t parent_edge.(v)).Graph.w))
  in
  walk v 0.

let stretch_bound g t =
  let tree_ids = Hashtbl.create (Graph.m t) in
  Array.iter
    (fun e ->
      Hashtbl.replace tree_ids (min e.Graph.u e.Graph.v, max e.Graph.u e.Graph.v) ())
    (Graph.edges t);
  Array.fold_left
    (fun acc e ->
      let key = (min e.Graph.u e.Graph.v, max e.Graph.u e.Graph.v) in
      if Hashtbl.mem tree_ids key then acc
      else acc +. (e.Graph.w *. tree_path_resistance t e.Graph.u e.Graph.v))
    (float_of_int (Graph.m t))
    (Graph.edges g)
