lib/rounding/flow_rounding.mli: Digraph
