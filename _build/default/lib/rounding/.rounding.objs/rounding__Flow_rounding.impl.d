lib/rounding/flow_rounding.ml: Array Clique Digraph Euler Float Graph List Printf
