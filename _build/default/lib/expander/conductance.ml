let volume g inside =
  let acc = ref 0. in
  for v = 0 to Graph.n g - 1 do
    if inside.(v) then acc := !acc +. Graph.weighted_degree g v
  done;
  !acc

let cut_weight g inside =
  Array.fold_left
    (fun acc e ->
      if inside.(e.Graph.u) <> inside.(e.Graph.v) then acc +. e.Graph.w
      else acc)
    0. (Graph.edges g)

let of_cut g inside =
  let vol_in = volume g inside in
  let vol_out =
    Array.fold_left (fun acc e -> acc +. (2. *. e.Graph.w)) 0. (Graph.edges g)
    -. vol_in
  in
  let denom = Float.min vol_in vol_out in
  if denom <= 0. then infinity else cut_weight g inside /. denom

let exact g =
  let n = Graph.n g in
  if n > 20 then invalid_arg "Conductance.exact: too large (n > 20)";
  if n < 2 then infinity
  else begin
    let best = ref infinity in
    (* Enumerate subsets containing vertex 0 (complement symmetry). *)
    for mask = 1 to (1 lsl (n - 1)) - 1 do
      let inside = Array.make n false in
      inside.(0) <- true;
      for b = 0 to n - 2 do
        if (mask lsr b) land 1 = 1 then inside.(b + 1) <- true
      done;
      let all = Array.for_all (fun x -> x) inside in
      if not all then best := Float.min !best (of_cut g inside)
    done;
    (* Also the cuts not containing vertex 0 are complements: covered. *)
    !best
  end

let sweep_cut g x =
  let n = Graph.n g in
  if n < 2 then ([| true |], infinity)
  else begin
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare x.(a) x.(b)) order;
    let inside = Array.make n false in
    let total_vol =
      Array.fold_left (fun acc e -> acc +. (2. *. e.Graph.w)) 0.
        (Graph.edges g)
    in
    let vol_in = ref 0. in
    let cut = ref 0. in
    let best = ref infinity in
    let best_prefix = ref 1 in
    for k = 0 to n - 2 do
      let v = order.(k) in
      inside.(v) <- true;
      vol_in := !vol_in +. Graph.weighted_degree g v;
      (* Adding v flips the crossing status of each incident edge. *)
      List.iter
        (fun (u, id) ->
          let w = (Graph.edge g id).Graph.w in
          if inside.(u) then cut := !cut -. w else cut := !cut +. w)
        (Graph.adj g v);
      let denom = Float.min !vol_in (total_vol -. !vol_in) in
      let phi = if denom <= 0. then infinity else !cut /. denom in
      if phi < !best then begin
        best := phi;
        best_prefix := k + 1
      end
    done;
    let result = Array.make n false in
    for k = 0 to !best_prefix - 1 do
      result.(order.(k)) <- true
    done;
    (result, !best)
  end
