let inv_sqrt_degrees g =
  Array.init (Graph.n g) (fun v ->
      let d = Graph.weighted_degree g v in
      if d > 0. then 1. /. sqrt d else 0.)

let normalized_apply g x =
  let n = Graph.n g in
  if Array.length x <> n then
    invalid_arg "Fiedler.normalized_apply: dimension mismatch";
  let isd = inv_sqrt_degrees g in
  let y = Linalg.Vec.create n in
  (* N x = D^{-1/2} L D^{-1/2} x, computed edge-by-edge. *)
  Array.iter
    (fun e ->
      let u = e.Graph.u and v = e.Graph.v and w = e.Graph.w in
      let xu = x.(u) *. isd.(u) and xv = x.(v) *. isd.(v) in
      let d = w *. (xu -. xv) in
      y.(u) <- y.(u) +. (d *. isd.(u));
      y.(v) <- y.(v) -. (d *. isd.(v)))
    (Graph.edges g);
  y

let approx ?(iters = 400) g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Fiedler.approx: need n >= 2";
  (* Kernel direction of N is D^{1/2} 1. *)
  let u0 =
    Linalg.Vec.normalize
      (Array.init n (fun v ->
           let d = Graph.weighted_degree g v in
           sqrt (Float.max d 0.)))
  in
  let deflate x =
    let c = Linalg.Vec.dot x u0 in
    Linalg.Vec.axpy (-.c) u0 x
  in
  (* Power iteration on M = 2I − N; dominant eigenpair on u0⊥ is (2−λ₂). *)
  let apply_m x =
    let nx = normalized_apply g x in
    Array.init n (fun i -> (2. *. x.(i)) -. nx.(i))
  in
  let start =
    Linalg.Vec.normalize
      (deflate
         (Linalg.Vec.init n (fun i ->
              let s = if i land 1 = 0 then 1. else -1. in
              s *. (1. +. (float_of_int ((i * 2654435761) land 0xffff) /. 65536.)))))
  in
  let v = ref start in
  let mu = ref 0. in
  for _ = 1 to iters do
    let w = deflate (apply_m !v) in
    let nw = Linalg.Vec.norm2 w in
    if nw > 0. then begin
      let w = Linalg.Vec.scale (1. /. nw) w in
      mu := Linalg.Vec.dot w (apply_m w);
      v := w
    end
  done;
  let lambda2 = Float.max 0. (2. -. !mu) in
  (* Rescale for sweep rounding: order vertices by (D^{-1/2} x). *)
  let isd = inv_sqrt_degrees g in
  let x = Array.mapi (fun i xi -> xi *. isd.(i)) !v in
  (lambda2, x)

(* Jacobi eigenvalue iteration on the dense normalized Laplacian. *)
let lambda2_exact g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Fiedler.lambda2_exact: need n >= 2";
  let isd = inv_sqrt_degrees g in
  let a = Array.make_matrix n n 0. in
  for v = 0 to n - 1 do
    if Graph.weighted_degree g v > 0. then a.(v).(v) <- 1.
  done;
  Array.iter
    (fun e ->
      let u = e.Graph.u and v = e.Graph.v and w = e.Graph.w in
      let x = -.w *. isd.(u) *. isd.(v) in
      a.(u).(v) <- a.(u).(v) +. x;
      a.(v).(u) <- a.(v).(u) +. x)
    (Graph.edges g);
  let off_norm () =
    let s = ref 0. in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    sqrt !s
  in
  let sweeps = ref 0 in
  while off_norm () > 1e-12 && !sweeps < 100 do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        if Float.abs a.(p).(q) > 1e-15 then begin
          let theta = (a.(q).(q) -. a.(p).(p)) /. (2. *. a.(p).(q)) in
          let t =
            let s = if theta >= 0. then 1. else -1. in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
          in
          let c = 1. /. sqrt ((t *. t) +. 1.) in
          let s = t *. c in
          for k = 0 to n - 1 do
            let akp = a.(k).(p) and akq = a.(k).(q) in
            a.(k).(p) <- (c *. akp) -. (s *. akq);
            a.(k).(q) <- (s *. akp) +. (c *. akq)
          done;
          for k = 0 to n - 1 do
            let apk = a.(p).(k) and aqk = a.(q).(k) in
            a.(p).(k) <- (c *. apk) -. (s *. aqk);
            a.(q).(k) <- (s *. apk) +. (c *. aqk)
          done
        end
      done
    done
  done;
  let eigs = Array.init n (fun i -> a.(i).(i)) in
  Array.sort compare eigs;
  eigs.(1)
