(** Deterministic approximate Fiedler vectors.

    Substitute for the spectral engine inside the Chang–Saranurak expander
    decomposition (DESIGN.md, substitution 2). Power iteration on the
    deflated, shifted normalized Laplacian from a fixed starting vector —
    no randomness, so the whole decomposition stays deterministic as the
    paper requires. *)

val normalized_apply : Graph.t -> Linalg.Vec.t -> Linalg.Vec.t
(** Applies [N = D^{-1/2} L D^{-1/2}] edge-by-edge. Isolated vertices are
    treated as fixed points ([N x]_v = 0). *)

val approx : ?iters:int -> Graph.t -> float * Linalg.Vec.t
(** [approx g] returns [(λ₂ estimate, x)] where [x] approximates the Fiedler
    vector of the *normalized* Laplacian, already rescaled by [D^{-1/2}] so
    that {!Conductance.sweep_cut} can consume it directly. [λ₂ ∈ [0, 2]].
    Requires [Graph.n g ≥ 2]. *)

val lambda2_exact : Graph.t -> float
(** Exact [λ₂] of the normalized Laplacian via dense eigendecomposition
    (Jacobi iteration); [O(n³)] — a test oracle for {!approx}. *)
