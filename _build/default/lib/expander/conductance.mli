(** Conductance (Definition 3.1) and sweep cuts.

    Volumes use weighted degrees, which coincides with the unweighted
    definition on weight-1 graphs — the case the decomposition pipeline
    actually runs on (weights are handled by binary weight classes in
    Theorem 3.3). *)

val volume : Graph.t -> bool array -> float
(** [volume g inside] is [Σ_{v ∈ S} deg_w(v)]. *)

val cut_weight : Graph.t -> bool array -> float
(** Total weight of edges with exactly one endpoint in the set. *)

val of_cut : Graph.t -> bool array -> float
(** [of_cut g s = w(E(S, S̄)) / min(vol S, vol S̄)]; [infinity] when either
    side is empty or has zero volume. *)

val exact : Graph.t -> float
(** Exact conductance [Φ(G)] by enumerating all cuts — exponential; only for
    [n ≤ 20] (raises [Invalid_argument] beyond). Test oracle. *)

val sweep_cut : Graph.t -> Linalg.Vec.t -> bool array * float
(** [sweep_cut g x] orders vertices by [x] and returns the best of the [n−1]
    prefix cuts together with its conductance — the Cheeger rounding used by
    the deterministic decomposition. *)
