lib/expander/fiedler.mli: Graph Linalg
