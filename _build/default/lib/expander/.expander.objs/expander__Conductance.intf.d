lib/expander/conductance.mli: Graph Linalg
