lib/expander/fiedler.ml: Array Float Graph Linalg
