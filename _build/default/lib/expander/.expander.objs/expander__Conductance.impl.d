lib/expander/conductance.ml: Array Float Graph List
