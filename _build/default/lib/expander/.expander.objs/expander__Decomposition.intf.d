lib/expander/decomposition.mli: Graph
