lib/expander/decomposition.ml: Array Clique Conductance Fiedler Float Graph List Traversal
