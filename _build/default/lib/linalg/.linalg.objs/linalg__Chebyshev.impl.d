lib/linalg/chebyshev.ml: Array Float Vec
