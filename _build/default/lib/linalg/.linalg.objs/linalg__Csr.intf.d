lib/linalg/csr.mli: Dense Format Vec
