lib/linalg/dense.ml: Array Float Format Printf Vec
