lib/linalg/csr.ml: Array Float Format List Printf Vec
