(** Dense float vectors.

    A vector is a [float array]; these helpers keep the numerical code in the
    rest of the library free of index bookkeeping. All binary operations
    require equal lengths and raise [Invalid_argument] otherwise. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of dimension [n]. *)

val constant : int -> float -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y], allocating a fresh vector. *)

val axpy_inplace : float -> t -> t -> unit
(** [axpy_inplace a x y] updates [y <- a*x + y]. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val dist2 : t -> t -> float
(** [dist2 x y] is [norm2 (sub x y)] without the intermediate allocation. *)

val sum : t -> float

val mean : t -> float

val center : t -> t
(** [center x] subtracts the mean from every entry; the result is orthogonal
    to the all-ones vector, i.e. lies in the range of a connected Laplacian. *)

val normalize : t -> t
(** [normalize x] is [x / ||x||]; returns [x] unchanged if the norm is 0. *)

val map2 : (float -> float -> float) -> t -> t -> t

val equal : ?eps:float -> t -> t -> bool
(** Entrywise comparison up to absolute tolerance [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
