type stats = { iterations : int; residual : float; converged : bool }

let solve ?max_iters ?(tol = 1e-10) ?x0 apply b =
  let n = Vec.dim b in
  let max_iters = match max_iters with Some k -> k | None -> 10 * n in
  let x = match x0 with Some x -> Vec.copy x | None -> Vec.create n in
  let r = Vec.sub b (apply x) in
  let p = Vec.copy r in
  let rs = ref (Vec.dot r r) in
  let nb = Vec.norm2 b in
  let target = tol *. Float.max nb 1e-300 in
  let iters = ref 0 in
  (try
     while !iters < max_iters && sqrt !rs > target do
       let ap = apply p in
       let pap = Vec.dot p ap in
       if pap <= 0. then raise Exit;
       let alpha = !rs /. pap in
       Vec.axpy_inplace alpha p x;
       Vec.axpy_inplace (-.alpha) ap r;
       let rs' = Vec.dot r r in
       let beta = rs' /. !rs in
       for i = 0 to n - 1 do
         p.(i) <- r.(i) +. (beta *. p.(i))
       done;
       rs := rs';
       incr iters
     done
   with Exit -> ());
  let residual = sqrt !rs in
  (x, { iterations = !iters; residual; converged = residual <= target })

let solve_grounded ?max_iters ?tol apply b =
  let b = Vec.center b in
  let x, st = solve ?max_iters ?tol apply b in
  (Vec.center x, st)
