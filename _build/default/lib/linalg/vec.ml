type t = float array

let create n = Array.make n 0.

let init = Array.init

let copy = Array.copy

let dim = Array.length

let of_list = Array.of_list

let basis n i =
  let v = create n in
  v.(i) <- 1.;
  v

let constant n c = Array.make n c

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length x) (Array.length y))

let add x y =
  check_dims "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dims "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun xi -> a *. xi) x

let axpy a x y =
  check_dims "axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let axpy_inplace a x y =
  check_dims "axpy_inplace" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0. x

let dist2 x y =
  check_dims "dist2" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let sum x = Array.fold_left ( +. ) 0. x

let mean x =
  if Array.length x = 0 then 0. else sum x /. float_of_int (Array.length x)

let center x =
  let m = mean x in
  Array.map (fun xi -> xi -. m) x

let normalize x =
  let n = norm2 x in
  if n = 0. then x else scale (1. /. n) x

let map2 f x y =
  check_dims "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let equal ?(eps = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if Float.abs (x.(i) -. y.(i)) > eps then ok := false
  done;
  !ok

let pp fmt x =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i xi ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" xi)
    x;
  Format.fprintf fmt "|]"
