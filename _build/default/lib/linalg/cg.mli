(** Conjugate gradients on symmetric positive semi-definite operators.

    Used in two places: (a) as the *baseline* Laplacian solver that the
    benchmarks compare the paper's preconditioned-Chebyshev solver against
    (experiment E8), and (b) as the inner exact-ish solver for moderately
    large sparsifier Laplacians where a dense Cholesky would be wasteful. *)

type stats = {
  iterations : int;
  residual : float;  (** final ‖b − A x‖₂ *)
  converged : bool;
}

val solve :
  ?max_iters:int ->
  ?tol:float ->
  ?x0:Vec.t ->
  (Vec.t -> Vec.t) ->
  Vec.t ->
  Vec.t * stats
(** [solve apply b] runs CG on the operator [apply] with right-hand side [b]
    until the relative residual drops below [tol] (default [1e-10]) or
    [max_iters] (default [10 * dim]) iterations elapse. For singular Laplacian
    operators the caller must supply [b] orthogonal to the kernel; the iterate
    then stays in the range. *)

val solve_grounded :
  ?max_iters:int -> ?tol:float -> (Vec.t -> Vec.t) -> Vec.t -> Vec.t * stats
(** Like {!solve} but first centers [b] (projects out the all-ones kernel of a
    connected Laplacian) and re-centers the solution. *)
