type stats = { iterations : int; residual : float; converged : bool }

let iteration_bound ~kappa ~eps =
  let eps = Float.max eps 1e-300 in
  int_of_float (Float.ceil (sqrt (Float.max kappa 1.) *. log (2. /. eps))) + 1

(* Chebyshev semi-iteration for the preconditioned system B†A x = B†b whose
   spectrum (on the range) lies in [1/κ, 1]. Cf. Saad, "Iterative Methods for
   Sparse Linear Systems", Alg. 12.1. *)
let solve ?max_iters ?(tol = 1e-10) ~apply_a ~solve_b ~kappa b =
  let n = Vec.dim b in
  let max_iters =
    match max_iters with
    | Some k -> k
    | None -> iteration_bound ~kappa ~eps:tol
  in
  let lmin = 1. /. Float.max kappa 1. in
  let lmax = 1. in
  let theta = (lmax +. lmin) /. 2. in
  let delta = (lmax -. lmin) /. 2. in
  let sigma1 = theta /. delta in
  let x = Vec.create n in
  let r = Vec.copy b in
  let nb = Float.max (Vec.norm2 b) 1e-300 in
  let z = solve_b r in
  let d = Vec.scale (1. /. theta) z in
  let rho_prev = ref (1. /. sigma1) in
  let iters = ref 0 in
  let residual = ref (Vec.norm2 r /. nb) in
  (try
     while !iters < max_iters do
       Vec.axpy_inplace 1. d x;
       let ad = apply_a d in
       Vec.axpy_inplace (-1.) ad r;
       residual := Vec.norm2 r /. nb;
       incr iters;
       if !residual <= tol then raise Exit;
       let z = solve_b r in
       let rho = 1. /. ((2. *. sigma1) -. !rho_prev) in
       let c1 = rho *. !rho_prev in
       let c2 = 2. *. rho /. delta in
       for i = 0 to n - 1 do
         d.(i) <- (c1 *. d.(i)) +. (c2 *. z.(i))
       done;
       rho_prev := rho
     done
   with Exit -> ());
  (x, { iterations = !iters; residual = !residual; converged = !residual <= tol })

let solve_grounded ?max_iters ?tol ~apply_a ~solve_b ~kappa b =
  let b = Vec.center b in
  let x, st = solve ?max_iters ?tol ~apply_a ~solve_b ~kappa b in
  (Vec.center x, st)
