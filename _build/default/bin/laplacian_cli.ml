(* Command-line front end: run each of the paper's algorithms on generated
   workloads and print results plus congested-clique round accounting.

     laplacian_cli solve    --n 80 --density 0.2 --eps 1e-6
     laplacian_cli sparsify --n 100 --density 0.4 --max-weight 16
     laplacian_cli euler    --n 512 --cycles 20
     laplacian_cli maxflow  --layers 4 --width 4 --maxcap 8
     laplacian_cli mincost  --n 12 --arcs 30 --maxcost 10 *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  let doc = "Print per-phase debug traces from the solver pipelines." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let seed_arg =
  let doc = "Deterministic workload seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let n_arg default =
  let doc = "Number of vertices." in
  Arg.(value & opt int default & info [ "n"; "vertices" ] ~doc)

let density_arg =
  let doc = "Edge density of the generated graph." in
  Arg.(value & opt float 0.2 & info [ "density" ] ~doc)

let run_solve n density eps seed verbose =
  setup_logs verbose;
  let g = Core.Gen.weighted_gnp ~seed:(Int64.of_int seed) n density 8 in
  let b = Core.Vec.sub (Core.Vec.basis n 0) (Core.Vec.basis n (n - 1)) in
  let x, r = Core.solve_laplacian ~eps g b in
  Printf.printf "n=%d m=%d eps=%g\n" n (Core.Graph.m g) eps;
  Printf.printf "rounds=%d iterations=%d kappa=%.3f sparsifier_edges=%d\n"
    r.Core.Solver.rounds r.Core.Solver.iterations r.Core.Solver.kappa
    r.Core.Solver.sparsifier_edges;
  Format.printf "phases: %a@." Core.pp_phases r.Core.Solver.phase_rounds;
  Printf.printf "error in ||.||_L: %.3e (target %.1e)\n"
    (Core.Solver.error_in_l_norm g x b)
    eps

let solve_cmd =
  let eps =
    Arg.(value & opt float 1e-6 & info [ "eps" ] ~doc:"Target precision.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Theorem 1.1: deterministic Laplacian solve")
    Term.(const run_solve $ n_arg 80 $ density_arg $ eps $ seed_arg $ verbose_arg)

let run_sparsify n density u seed verbose =
  setup_logs verbose;
  let g = Core.Gen.weighted_gnp ~seed:(Int64.of_int seed) n density u in
  let r = Core.spectral_sparsifier g in
  let h = r.Core.Sparsifier.sparsifier in
  Printf.printf "n=%d m=%d U=%d\n" n (Core.Graph.m g) u;
  Printf.printf "sparsifier: %d edges (bound %d), %d levels, %d classes\n"
    (Core.Graph.m h)
    (Core.Sparsifier.size_bound ~n ~u:(float_of_int u))
    r.Core.Sparsifier.levels r.Core.Sparsifier.classes;
  Printf.printf "rounds=%d\n" r.Core.Sparsifier.rounds;
  Printf.printf "measured alpha=%.3f  pencil condition=%.3f\n"
    (Core.Quality.approximation_factor g h)
    (Core.Quality.relative_condition g h)

let sparsify_cmd =
  let u =
    Arg.(value & opt int 8 & info [ "max-weight" ] ~doc:"Max edge weight U.")
  in
  Cmd.v
    (Cmd.info "sparsify" ~doc:"Theorem 3.3: deterministic spectral sparsifier")
    Term.(const run_sparsify $ n_arg 100 $ density_arg $ u $ seed_arg $ verbose_arg)

let run_euler n cycles seed verbose =
  setup_logs verbose;
  let g = Core.Gen.cycle_union ~seed:(Int64.of_int seed) n cycles in
  let r = Core.eulerian_orientation g in
  assert (Core.Orientation.check g r.Core.Orientation.orientation);
  Printf.printf "n=%d m=%d rings=%d\n" n (Core.Graph.m g)
    r.Core.Orientation.rings;
  Printf.printf
    "rounds=%d (reference %d)  iterations=%d  coloring rounds=%d\n"
    r.Core.Orientation.rounds
    (Core.Orientation.rounds_reference ~n)
    r.Core.Orientation.iterations r.Core.Orientation.coloring_rounds

let euler_cmd =
  let cycles =
    Arg.(value & opt int 8 & info [ "cycles" ] ~doc:"Cycles in the union.")
  in
  Cmd.v
    (Cmd.info "euler" ~doc:"Theorem 1.4: Eulerian orientation")
    Term.(const run_euler $ n_arg 256 $ cycles $ seed_arg $ verbose_arg)

let run_maxflow layers width maxcap seed verbose =
  setup_logs verbose;
  let g =
    Core.Gen.layered_network ~seed:(Int64.of_int seed) layers width maxcap
  in
  let n = Core.Digraph.n g in
  let r = Core.max_flow g ~s:0 ~t:(n - 1) in
  let ff = Core.Ford_fulkerson.max_flow g ~s:0 ~t:(n - 1) in
  let triv = Core.Trivial.max_flow g ~s:0 ~t:(n - 1) in
  Printf.printf "n=%d m=%d U=%d\n" n (Core.Digraph.m g) maxcap;
  Printf.printf "max flow value=%d\n" r.Core.Maxflow.value;
  Printf.printf "IPM:            rounds=%-6d (iterations=%d, repairs=%d)\n"
    r.Core.Maxflow.rounds r.Core.Maxflow.ipm_iterations
    r.Core.Maxflow.repair_augmentations;
  Printf.printf "Ford-Fulkerson: rounds=%-6d (iterations=%d)\n"
    ff.Core.Ford_fulkerson.rounds ff.Core.Ford_fulkerson.iterations;
  Printf.printf "Trivial gather: rounds=%-6d\n" triv.Core.Trivial.rounds;
  assert (r.Core.Maxflow.value = ff.Core.Ford_fulkerson.value)

let maxflow_cmd =
  let layers =
    Arg.(value & opt int 4 & info [ "layers" ] ~doc:"Network layers.")
  in
  let width =
    Arg.(value & opt int 4 & info [ "width" ] ~doc:"Junctions per layer.")
  in
  let maxcap =
    Arg.(value & opt int 8 & info [ "maxcap" ] ~doc:"Max capacity U.")
  in
  Cmd.v
    (Cmd.info "maxflow" ~doc:"Theorem 1.2: exact maximum flow")
    Term.(const run_maxflow $ layers $ width $ maxcap $ seed_arg $ verbose_arg)

let run_mincost n arcs maxcost seed verbose =
  setup_logs verbose;
  let g, sigma = Core.Gen.random_mcf ~seed:(Int64.of_int seed) n arcs maxcost in
  Printf.printf "n=%d m=%d W=%d\n" n (Core.Digraph.m g) maxcost;
  match Core.min_cost_flow g ~sigma with
  | None -> Printf.printf "instance infeasible\n"
  | Some r ->
    Printf.printf "optimal cost=%g rounds=%d iterations=%d repairs=%d\n"
      r.Core.Mincostflow.cost r.Core.Mincostflow.rounds
      r.Core.Mincostflow.ipm_iterations r.Core.Mincostflow.repair_augmentations;
    (match Core.Mcf_ssp.solve g ~sigma with
    | Some oracle ->
      Printf.printf "SSP oracle cost=%g (agrees: %b)\n" oracle.Core.Mcf_ssp.cost
        (Float.abs (oracle.Core.Mcf_ssp.cost -. r.Core.Mincostflow.cost) < 1e-6)
    | None -> assert false)

let mincost_cmd =
  let arcs =
    Arg.(value & opt int 30 & info [ "arcs" ] ~doc:"Random arcs to add.")
  in
  let maxcost =
    Arg.(value & opt int 10 & info [ "maxcost" ] ~doc:"Max arc cost W.")
  in
  Cmd.v
    (Cmd.info "mincost" ~doc:"Theorem 1.3: unit-capacity min-cost flow")
    Term.(const run_mincost $ n_arg 12 $ arcs $ maxcost $ seed_arg $ verbose_arg)

let run_mst n density seed verbose =
  setup_logs verbose;
  let g = Core.Gen.connected_gnp ~seed:(Int64.of_int seed) n density in
  let g =
    Core.Graph.map_weights
      (fun e -> 1. +. float_of_int (((e.Core.Graph.u * 31) + e.Core.Graph.v) mod 23))
      g
  in
  let r = Core.minimum_spanning_tree g in
  Printf.printf "n=%d m=%d\n" n (Core.Graph.m g);
  Printf.printf "mst weight=%g edges=%d phases=%d rounds=%d (trivial: %d)\n"
    r.Core.Boruvka.weight
    (List.length r.Core.Boruvka.edges)
    r.Core.Boruvka.phases r.Core.Boruvka.rounds n

let mst_cmd =
  Cmd.v
    (Cmd.info "mst" ~doc:"Boruvka MST on the message-passing kernel")
    Term.(const run_mst $ n_arg 100 $ density_arg $ seed_arg $ verbose_arg)

let main_cmd =
  let doc = "the Laplacian paradigm in the deterministic congested clique" in
  Cmd.group
    (Cmd.info "laplacian_cli" ~version:Core.version ~doc)
    [ solve_cmd; sparsify_cmd; euler_cmd; maxflow_cmd; mincost_cmd; mst_cmd ]

let () = exit (Cmd.eval main_cmd)
