(* Rush-hour throughput: maximum flow on a layered road network.

   The workload from the paper's motivation: a directed capacitated network,
   solved exactly with the Theorem 1.2 interior-point pipeline, and compared
   against the two deterministic baselines of §1.1 — Ford–Fulkerson at
   O(|f*|·n^0.158) rounds and the trivial gather-everything algorithm at
   O(n log U) rounds.

   Run with: dune exec examples/traffic_maxflow.exe *)

let () =
  let layers = 5 and width = 5 and maxcap = 12 in
  let g = Core.Gen.layered_network ~seed:21L layers width maxcap in
  let n = Core.Digraph.n g in
  let s = 0 and t = n - 1 in
  Printf.printf "road network: %d junctions, %d road segments, cap <= %d\n" n
    (Core.Digraph.m g) maxcap;

  let ipm = Core.max_flow g ~s ~t in
  Printf.printf "\nTheorem 1.2 (IPM + rounding + repair):\n";
  Printf.printf "  max flow        = %d vehicles/unit time\n"
    ipm.Core.Maxflow.value;
  Printf.printf "  rounds          = %d\n" ipm.Core.Maxflow.rounds;
  Printf.printf "  ipm iterations  = %d (%d Laplacian solves)\n"
    ipm.Core.Maxflow.ipm_iterations ipm.Core.Maxflow.laplacian_solves;
  Printf.printf "  repair paths    = %d\n"
    ipm.Core.Maxflow.repair_augmentations;
  Format.printf "  phases: %a@." Core.pp_phases ipm.Core.Maxflow.phase_rounds;

  let ff = Core.Ford_fulkerson.max_flow g ~s ~t in
  Printf.printf "\nFord–Fulkerson baseline (§1.1):\n";
  Printf.printf "  value  = %d (must agree)\n" ff.Core.Ford_fulkerson.value;
  Printf.printf "  rounds = %d (= (|f*| iterations + 1)·⌈n^0.158⌉)\n"
    ff.Core.Ford_fulkerson.rounds;

  let triv = Core.Trivial.max_flow g ~s ~t in
  Printf.printf "\nTrivial gather-everything baseline (§1.1):\n";
  Printf.printf "  value  = %d (must agree)\n" triv.Core.Trivial.value;
  Printf.printf "  rounds = %d\n" triv.Core.Trivial.rounds;

  assert (ipm.Core.Maxflow.value = ff.Core.Ford_fulkerson.value);
  assert (ipm.Core.Maxflow.value = triv.Core.Trivial.value);

  (* Where does the min cut sit? *)
  let cut = Core.Dinic.min_cut g ~s ~t in
  let cut_size =
    Array.fold_left (fun a inside -> if inside then a + 1 else a) 0 cut
  in
  Printf.printf "\nbottleneck: %d junctions on the source side of the min cut\n"
    cut_size
