(* Electrical grid analysis with the Laplacian paradigm.

   A power-distribution grid is modeled as a resistor network (grid graph
   with heterogeneous line conductances). We use the library to answer three
   classic questions:

   1. What are the node voltages for a given injection pattern?
      (one Laplacian solve — Theorem 1.1)
   2. How "electrically far" are two substations?
      (effective resistance)
   3. Can we compress the network model without distorting its spectral
      behaviour? (Theorem 3.3 sparsifier + measured approximation factor)

   Run with: dune exec examples/electrical_grid.exe *)

let () =
  let rows = 8 and cols = 10 in
  let base = Core.Gen.grid rows cols in
  (* Heterogeneous line conductances: a deterministic pattern of strong
     trunk lines and weak distribution lines. *)
  let g =
    Core.Graph.map_weights
      (fun e ->
        if (e.Core.Graph.u + e.Core.Graph.v) mod 7 = 0 then 10.
        else 1. +. float_of_int ((e.Core.Graph.u * 13 + e.Core.Graph.v) mod 4))
      base
  in
  let n = Core.Graph.n g in
  Printf.printf "grid: %dx%d  n=%d m=%d\n" rows cols n (Core.Graph.m g);

  (* 1. Voltages: inject 5A at the top-left corner, draw 5A at bottom-right,
     one amp split over the two adjacent corners. *)
  let b = Core.Vec.create n in
  b.(0) <- 5.;
  b.(cols - 1) <- 1.;
  b.(n - cols) <- 1.;
  b.(n - 1) <- -7.;
  let x, report = Core.solve_laplacian ~eps:1e-8 g b in
  Printf.printf "voltage solve: %d rounds, %d Chebyshev iterations\n"
    report.Core.Solver.rounds report.Core.Solver.iterations;
  Printf.printf "voltage drop corner-to-corner: %.4f\n" (x.(0) -. x.(n - 1));

  (* 2. Effective resistance between the two far corners. *)
  let reff = Core.effective_resistance g 0 (n - 1) in
  Printf.printf "effective resistance 0 <-> %d: %.4f\n" (n - 1) reff;

  (* 3. Spectral compression of the grid model. *)
  let sp = Core.spectral_sparsifier g in
  let h = sp.Core.Sparsifier.sparsifier in
  let alpha = Core.Quality.approximation_factor g h in
  Printf.printf
    "sparsifier: %d -> %d edges in %d rounds, measured alpha = %.2f\n"
    (Core.Graph.m g) (Core.Graph.m h) sp.Core.Sparsifier.rounds alpha;

  (* Sanity: the compressed model answers the voltage question almost
     identically (relative L-norm error below the solver epsilon). *)
  let x_h, _ = Core.solve_laplacian ~eps:1e-8 h b in
  let drop_h = x_h.(0) -. x_h.(n - 1) in
  Printf.printf "voltage drop on sparsifier: %.4f (vs %.4f)\n" drop_h
    (x.(0) -. x.(n - 1))
