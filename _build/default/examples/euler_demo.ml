(* Eulerian orientations at scale — Theorem 1.4's O(log n · log* n) rounds.

   Orients Eulerian multigraphs of increasing size and prints the measured
   round counts next to the log n · log* n reference curve, demonstrating
   the exponential gap to the trivial Θ(n) algorithm.

   Run with: dune exec examples/euler_demo.exe *)

let () =
  Printf.printf "%8s %8s %10s %12s %12s %8s\n" "n" "m" "rounds" "iterations"
    "reference" "rings";
  List.iter
    (fun n ->
      let g = Core.Gen.cycle_union ~seed:5L n (max 3 (n / 16)) in
      let r = Core.eulerian_orientation g in
      assert (Core.Orientation.check g r.Core.Orientation.orientation);
      Printf.printf "%8d %8d %10d %12d %12d %8d\n" n (Core.Graph.m g)
        r.Core.Orientation.rounds r.Core.Orientation.iterations
        (Core.Orientation.rounds_reference ~n)
        r.Core.Orientation.rings)
    [ 16; 64; 256; 1024; 4096 ];

  (* The cost-aware variant used inside flow rounding: pick each cycle's
     direction to keep the cheap side. *)
  Printf.printf "\ncost-aware orientation of a 40-vertex Eulerian graph:\n";
  let g = Core.Gen.even_gnp ~seed:9L 40 0.2 in
  let cost_of ring =
    (* keep the trail direction iff it is at least as cheap *)
    let fwd, bwd =
      List.fold_left
        (fun (f, b) re ->
          let c = float_of_int (re.Core.Orientation.edge mod 5) in
          if re.Core.Orientation.along then (f +. c, b) else (f, b +. c))
        (0., 0.) ring
    in
    fwd <= bwd
  in
  let r = Core.Orientation.orient ~choose:cost_of g in
  assert (Core.Orientation.check g r.Core.Orientation.orientation);
  Printf.printf "  oriented %d edges across %d cycles in %d rounds\n"
    (Core.Graph.m g) r.Core.Orientation.rings r.Core.Orientation.rounds
