(* Quickstart: solve a Laplacian system on the congested clique.

   Builds a random weighted graph, solves L_G x = b to three precisions
   with the Theorem 1.1 solver, and reports the error in the metric the
   theorem promises together with the per-phase round accounting.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let n = 60 in
  let g = Core.Gen.weighted_gnp ~seed:7L n 0.2 16 in
  Printf.printf "graph: n=%d m=%d U=%g\n" n (Core.Graph.m g)
    (Core.Graph.max_weight g);

  (* A demand vector: +1 at one vertex, -1 at another (this computes
     effective-resistance potentials). *)
  let b =
    Core.Vec.sub (Core.Vec.basis n 0) (Core.Vec.basis n (n - 1))
  in

  List.iter
    (fun eps ->
      let x, report = Core.solve_laplacian ~eps g b in
      let err = Core.Solver.error_in_l_norm g x b in
      Printf.printf
        "eps=%-8g  rounds=%-6d  chebyshev iterations=%-4d  kappa=%-8.2f  \
         measured ‖x−L†b‖_L/‖L†b‖_L = %.2e\n"
        eps report.Core.Solver.rounds report.Core.Solver.iterations
        report.Core.Solver.kappa err;
      Format.printf "    phases: %a@." Core.pp_phases
        report.Core.Solver.phase_rounds)
    [ 1e-2; 1e-5; 1e-8 ];

  (* The potentials themselves are useful: their difference is the
     effective resistance between the two endpoints. *)
  let x, _ = Core.solve_laplacian ~eps:1e-8 g b in
  Printf.printf "effective resistance between 0 and %d: %.6f\n" (n - 1)
    (x.(0) -. x.(n - 1))
