(* Courier assignment: unit-capacity minimum-cost flow.

   k couriers must each take one delivery job; courier i can do job j at a
   given cost. This bipartite assignment is the motivating workload of the
   CMSV algorithm that Theorem 1.3 implements in the congested clique.

   Run with: dune exec examples/logistics_mincost.exe *)

let () =
  let k = 6 in
  let n = (2 * k) + 2 in
  let s = 0 and t = n - 1 in
  let courier i = 1 + i and job j = 1 + k + j in
  (* Deterministic cost surface with structure: couriers prefer nearby
     jobs. *)
  let cost_of i j = 1 + (abs (i - j) * 3) + ((i * j) mod 2) in
  let arcs = ref [] in
  for i = 0 to k - 1 do
    arcs := { Core.Digraph.src = s; dst = courier i; cap = 1; cost = 0 } :: !arcs;
    arcs := { Core.Digraph.src = job i; dst = t; cap = 1; cost = 0 } :: !arcs;
    for j = 0 to k - 1 do
      arcs :=
        { Core.Digraph.src = courier i; dst = job j; cap = 1; cost = cost_of i j }
        :: !arcs
    done
  done;
  let g = Core.Digraph.create n !arcs in
  let sigma = Array.make n 0 in
  sigma.(s) <- k;
  sigma.(t) <- -k;

  Printf.printf "assignment: %d couriers, %d jobs, %d arcs\n" k k
    (Core.Digraph.m g);

  match Core.min_cost_flow g ~sigma with
  | None -> failwith "assignment is feasible by construction"
  | Some r ->
    Printf.printf "\nTheorem 1.3 (CMSV IPM + rounding + repair):\n";
    Printf.printf "  optimal total cost = %g\n" r.Core.Mincostflow.cost;
    Printf.printf "  rounds             = %d\n" r.Core.Mincostflow.rounds;
    Printf.printf "  ipm iterations     = %d\n"
      r.Core.Mincostflow.ipm_iterations;
    Printf.printf "  repair operations  = %d\n"
      r.Core.Mincostflow.repair_augmentations;
    Format.printf "  phases: %a@." Core.pp_phases
      r.Core.Mincostflow.phase_rounds;

    (* Print the assignment. *)
    Printf.printf "\nassignment found:\n";
    Array.iteri
      (fun id a ->
        if
          r.Core.Mincostflow.f.(id) > 0.5
          && a.Core.Digraph.src >= 1
          && a.Core.Digraph.src <= k
        then
          Printf.printf "  courier %d -> job %d (cost %d)\n"
            (a.Core.Digraph.src - 1)
            (a.Core.Digraph.dst - 1 - k)
            a.Core.Digraph.cost)
      (Core.Digraph.arcs g);

    (* Cross-check with the sequential oracle. *)
    (match Core.Mcf_ssp.solve g ~sigma with
    | Some oracle ->
      Printf.printf "\nSSP oracle cost: %g (must agree)\n"
        oracle.Core.Mcf_ssp.cost;
      assert (Float.abs (oracle.Core.Mcf_ssp.cost -. r.Core.Mincostflow.cost) < 1e-6)
    | None -> assert false)
