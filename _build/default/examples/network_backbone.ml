(* Backbone selection across models.

   A telecom operator wants a cheapest backbone (minimum spanning tree) of
   its fiber network, and wants to understand what running distributed
   algorithms on this network costs in different models. This example runs
   Borůvka as real node programs on the congested-clique kernel, compares
   against the Kruskal oracle, and then contrasts BFS round costs in the
   CONGEST model (limited to fiber links) with the all-to-all clique.

   Run with: dune exec examples/network_backbone.exe *)

let () =
  let n = 120 in
  let base = Core.Gen.connected_gnp ~seed:33L n 0.08 in
  (* Link costs: deterministic "distance-like" weights. *)
  let g =
    Core.Graph.map_weights
      (fun e ->
        1. +. float_of_int (((e.Core.Graph.u * 31) + (e.Core.Graph.v * 17)) mod 97))
      base
  in
  Printf.printf "fiber network: %d sites, %d links\n" n (Core.Graph.m g);

  let mst = Core.minimum_spanning_tree g in
  Printf.printf "\nbackbone (Boruvka on the clique kernel):\n";
  Printf.printf "  %d links, total cost %.0f\n"
    (List.length mst.Core.Boruvka.edges)
    mst.Core.Boruvka.weight;
  Printf.printf "  %d phases, %d measured broadcast rounds (trivial: %d)\n"
    mst.Core.Boruvka.phases mst.Core.Boruvka.rounds n;
  let oracle = Core.Boruvka.kruskal g in
  let oracle_weight =
    List.fold_left (fun a id -> a +. (Core.Graph.edge g id).Core.Graph.w) 0. oracle
  in
  assert (Float.abs (oracle_weight -. mst.Core.Boruvka.weight) < 1e-9);
  Printf.printf "  (matches the Kruskal oracle: %.0f)\n" oracle_weight;

  (* Model contrast: BFS from headquarters. *)
  Printf.printf "\nBFS from site 0, by model:\n";
  let congest = Core.Congest.create g in
  let dist = Core.Congest.bfs congest 0 in
  let ecc = Array.fold_left max 0 dist in
  Printf.printf "  CONGEST (messages on fiber links only): %d rounds\n"
    (Core.Congest.rounds congest);
  Printf.printf "  congested clique (all-to-all): 1 broadcast round\n";
  Printf.printf "  network hop-eccentricity of site 0: %d\n" ecc;
  Printf.printf "  hop diameter D = %d (the parameter in every §1.1 CONGEST bound)\n"
    (Core.Congest.diameter g);

  (* The §1.1 reference curves at this size. *)
  let m = Core.Graph.m g in
  let d = Core.Congest.diameter g in
  Printf.printf "\nmax-flow reference rounds at this topology (U = 16):\n";
  Printf.printf "  congested clique (Thm 1.2 shape): %d\n"
    (Core.Maxflow.rounds_reference ~n ~m ~u:16);
  Printf.printf "  CONGEST (FGLP+21 shape):          %d\n"
    (Core.Congest.fglp_maxflow_rounds ~n ~m ~d ~u:16);
  Printf.printf
    "  (at this tiny n with D = %d the CONGEST curve is still ahead; the\n\
    \   clique's n^{o(1)}-per-iteration advantage takes over as n grows —\n\
    \   see bench E7b for the crossover)\n"
    d
