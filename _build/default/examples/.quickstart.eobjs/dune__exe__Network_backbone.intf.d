examples/network_backbone.mli:
