examples/logistics_mincost.mli:
