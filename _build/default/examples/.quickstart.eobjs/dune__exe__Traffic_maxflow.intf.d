examples/traffic_maxflow.mli:
