examples/euler_demo.ml: Core List Printf
