examples/network_backbone.ml: Array Core Float List Printf
