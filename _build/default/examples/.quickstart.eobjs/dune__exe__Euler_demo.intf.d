examples/euler_demo.mli:
