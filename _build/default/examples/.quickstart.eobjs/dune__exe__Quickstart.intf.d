examples/quickstart.mli:
