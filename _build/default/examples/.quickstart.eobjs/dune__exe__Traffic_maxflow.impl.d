examples/traffic_maxflow.ml: Array Core Format Printf
