examples/electrical_grid.ml: Array Core Printf
