examples/logistics_mincost.ml: Array Core Float Format Printf
