(* Protocol and scheduling tests for the cc_serve daemon, run against a
   real daemon on a Unix-domain socket in a fresh temp path per test.
   Standalone executable: the suite spawns domains (workers + listener)
   per daemon and several daemons per run. *)

(* cc_lint: allow L9 *)

module Json = Metrics.Json
module Link = Wire.Link

let sock_counter = ref 0

let fresh_addr () =
  incr sock_counter;
  Printf.sprintf "unix:/tmp/cc-serve-test-%d-%d.sock" (Unix.getpid ())
    !sock_counter

let with_daemon ?(jobs = 2) ?(cache = 8) ?(policy = Serve.Exec.Off)
    ?(max_bytes = 8 * 1024 * 1024) f =
  let config =
    {
      Serve.Daemon.addr = fresh_addr ();
      jobs;
      cache_cap = cache;
      policy;
      max_bytes;
    }
  in
  let t = Serve.Daemon.start config in
  let finish () =
    Serve.Daemon.stop t;
    Serve.Daemon.wait t
  in
  match f (Serve.Daemon.addr t) with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let deadline () = Unix.gettimeofday () +. 30.

let request addr body =
  let c = Serve.Client.connect addr in
  let r = Serve.Client.request_string ~deadline:(deadline ()) c body in
  Serve.Client.close c;
  r

let get path j =
  let rec go j = function
    | [] -> Some j
    | k :: rest -> ( match Json.member k j with
      | Some v -> go v rest
      | None -> None)
  in
  go j path

let get_string path j =
  match get path j with Some (Json.String s) -> s | _ -> ""

let get_int path j =
  match get path j with
  | Some v -> ( match Json.to_int_opt v with Some i -> i | None -> -1)
  | None -> -1

let get_float path j =
  match get path j with
  | Some v -> ( match Json.to_float_opt v with Some f -> f | None -> nan)
  | None -> nan

let get_bool path j = match get path j with Some (Json.Bool b) -> b | _ -> false

let check_ok name j = Alcotest.(check bool) (name ^ ": ok") true (Serve.Client.ok j)

let check_refused name j =
  Alcotest.(check bool) (name ^ ": refused") false (Serve.Client.ok j);
  Alcotest.(check bool)
    (name ^ ": has error message") true
    (Serve.Client.error_message j <> None)

let solve_req ?(extra = "") ?(id = 1) ?(n = 24) ?(seed = 7) () =
  Printf.sprintf
    {|{"id":%d,"kind":"solve","graph":{"gen":"connected_gnp","n":%d,"p":0.25,"seed":%d}%s}|}
    id n seed extra

let mst_req ?(extra = "") ?(id = 1) () =
  Printf.sprintf
    {|{"id":%d,"kind":"mst","graph":{"gen":"weighted_gnp","n":20,"p":0.35,"u":40,"seed":5}%s}|}
    id extra

(* ------------------------------------------------------------ protocol *)

let test_malformed_json_keeps_connection () =
  with_daemon (fun addr ->
      (* drive the link directly: a frame whose payload is not JSON *)
      let fd = Link.connect_unix (String.sub addr 5 (String.length addr - 5)) in
      let link = Link.of_fd ~peer:"test" fd in
      Link.send link
        {
          Wire.Frame.kind = Serve.Job.frame_job;
          src = 0;
          dst = 0;
          seq = 9;
          epoch = 0;
          payload = Bytes.of_string "this is not json";
        };
      let reply = Link.recv ~deadline:(deadline ()) link in
      Alcotest.(check int) "error frame kind" Serve.Job.frame_error
        reply.Wire.Frame.kind;
      let body =
        match Json.of_string (Bytes.to_string reply.Wire.Frame.payload) with
        | Ok j -> j
        | Error e -> Alcotest.fail e
      in
      check_refused "malformed json" body;
      (* the stream is still synchronized: a well-formed request works *)
      Link.send link
        (Serve.Job.frame ~kind:Serve.Job.frame_job ~id:10
           (Json.Assoc [ ("id", Json.Int 10); ("kind", Json.String "stats") ]));
      let reply2 = Link.recv ~deadline:(deadline ()) link in
      Alcotest.(check int) "result frame kind" Serve.Job.frame_result
        reply2.Wire.Frame.kind;
      Link.close link)

let test_unknown_kind_refused () =
  with_daemon (fun addr ->
      check_refused "unknown kind" (request addr {|{"id":3,"kind":"florp"}|}))

let test_bad_graph_refused () =
  with_daemon (fun addr ->
      check_refused "unknown generator"
        (request addr
           {|{"kind":"solve","graph":{"gen":"petersen","n":10,"p":0.5}}|});
      check_refused "missing graph" (request addr {|{"kind":"solve"}|});
      check_refused "rhs length"
        (request addr
           {|{"kind":"solve","graph":{"gen":"grid","rows":2,"cols":2},"b":[1,2,3]}|}))

let test_oversized_frame_refused_connection_kept () =
  with_daemon ~max_bytes:256 (fun addr ->
      let c = Serve.Client.connect addr in
      let pad = String.make 400 'x' in
      let big =
        Serve.Client.request_string ~deadline:(deadline ()) c
          (Printf.sprintf {|{"id":4,"kind":"stats","pad":"%s"}|} pad)
      in
      check_refused "oversized" big;
      Alcotest.(check bool)
        "names the limit" true
        (match Serve.Client.error_message big with
        | Some m ->
          let has_sub s sub =
            let n = String.length s and k = String.length sub in
            let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
            go 0
          in
          has_sub m "exceeds"
        | None -> false);
      (* same connection still serves normal requests *)
      let small =
        Serve.Client.request_string ~deadline:(deadline ()) c
          {|{"id":5,"kind":"stats"}|}
      in
      check_ok "small after oversized" small;
      Serve.Client.close c)

let test_corrupt_stream_closed () =
  with_daemon (fun addr ->
      let fd = Link.connect_unix (String.sub addr 5 (String.length addr - 5)) in
      let link = Link.of_fd ~peer:"test" fd in
      (* 40 bytes of garbage: the header parse fails and the daemon must
         reply with an error and hang up (stream desynchronized). *)
      let garbage = Bytes.make 40 'Z' in
      let written = Unix.write fd garbage 0 (Bytes.length garbage) (* cc_lint: allow L9 *) in
      Alcotest.(check int) "garbage written" 40 written;
      let reply = Link.recv ~deadline:(deadline ()) link in
      Alcotest.(check int) "error frame" Serve.Job.frame_error
        reply.Wire.Frame.kind;
      Alcotest.(check bool)
        "connection closed" true
        (match Link.recv ~deadline:(deadline ()) link with
        | _ -> false
        | exception Link.Closed _ -> true);
      Link.close link)

(* ---------------------------------------------------------- scheduling *)

let test_queue_timeout () =
  (* One worker, three slow guard jobs: the 1 ms-deadline job lands
     behind them in the FIFO queue, and the guards cannot all drain
     within the 20 ms head start, so by dequeue time it is long
     expired. (One guard is not enough — a single n=80 preparation
     takes ~40 ms and occasionally finished before the timed job was
     enqueued.) *)
  with_daemon ~jobs:1 (fun addr ->
      let fast = Serve.Client.connect addr in
      let guards =
        List.map
          (fun id ->
            let c = Serve.Client.connect addr in
            let result = ref None in
            let d =
              Domain.spawn (fun () ->
                  result :=
                    Some
                      (Serve.Client.request_string ~deadline:(deadline ()) c
                         (solve_req ~id ~n:80 ~extra:{|,"nocache":true|} ())))
            in
            (c, result, d))
          [ 20; 22; 23 ]
      in
      Unix.sleepf 0.02;  (* let the first guard reach the worker *)
      let timed =
        Serve.Client.request_string ~deadline:(deadline ()) fast
          (mst_req ~id:21 ~extra:{|,"timeout_ms":1|} ())
      in
      List.iter (fun (_, _, d) -> Domain.join d) guards;
      check_refused "timed out" timed;
      Alcotest.(check bool)
        "mentions timeout" true
        (match Serve.Client.error_message timed with
        | Some m ->
          let has_sub s sub =
            let n = String.length s and k = String.length sub in
            let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
            go 0
          in
          has_sub m "timed out"
        | None -> false);
      List.iter
        (fun (c, result, _) ->
          (match !result with
          | Some r -> check_ok "guard job still completed" r
          | None -> Alcotest.fail "guard job never returned");
          Serve.Client.close c)
        guards;
      Serve.Client.close fast)

let test_cache_hit_identical_output () =
  with_daemon (fun addr ->
      let req =
        solve_req ~id:30 ~extra:{|,"return_x":true,"eps":1e-7|} ()
      in
      let r1 = request addr req in
      let r2 = request addr req in
      check_ok "first" r1;
      check_ok "second" r2;
      Alcotest.(check string)
        "cache miss then hit" "miss"
        (get_string [ "metrics"; "cache" ] r1);
      Alcotest.(check string)
        "hit" "hit"
        (get_string [ "metrics"; "cache" ] r2);
      Alcotest.(check string)
        "same x fingerprint"
        (get_string [ "result"; "x_fnv" ] r1)
        (get_string [ "result"; "x_fnv" ] r2);
      (* the full vectors, not just the hashes *)
      Alcotest.(check bool)
        "x lists identical" true
        (match (get [ "result"; "x" ] r1, get [ "result"; "x" ] r2) with
        | Some a, Some b -> Json.equal a b
        | _ -> false);
      Alcotest.(check int)
        "identical rounds ledger"
        (get_int [ "result"; "rounds" ] r1)
        (get_int [ "result"; "rounds" ] r2))

let test_concurrent_clients () =
  with_daemon ~jobs:3 (fun addr ->
      let worker k () =
        let c = Serve.Client.connect addr in
        let rs =
          List.init 3 (fun i ->
              Serve.Client.request_string ~deadline:(deadline ()) c
                (solve_req ~id:((k * 10) + i) ()))
        in
        Serve.Client.close c;
        rs
      in
      let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
      let replies = List.concat_map Domain.join domains in
      Alcotest.(check int) "all replied" 12 (List.length replies);
      List.iter (check_ok "concurrent solve") replies;
      let fnvs =
        List.sort_uniq compare
          (List.map (fun r -> get_string [ "result"; "x_fnv" ] r) replies)
      in
      Alcotest.(check int) "one consistent answer" 1 (List.length fnvs))

(* ------------------------------------------------- certification policy *)

let truthful_weight addr =
  let r = request addr (mst_req ~id:40 ()) in
  check_ok "truthful mst" r;
  get_float [ "result"; "weight" ] r

let inject_req () = mst_req ~id:41 ~extra:{|,"inject":true,"nocache":true|} ()

let test_policy_off_lets_corruption_escape () =
  with_daemon ~policy:Serve.Exec.Off (fun addr ->
      let truth = truthful_weight addr in
      let r = request addr (inject_req ()) in
      check_ok "uncertified reply" r;
      Alcotest.(check (float 1e-9))
        "corrupt weight escaped" (truth +. 1.)
        (get_float [ "result"; "weight" ] r))

let test_policy_verify_refuses () =
  with_daemon ~policy:Serve.Exec.Verify (fun addr ->
      let r = request addr (inject_req ()) in
      check_refused "verify refuses corruption" r;
      (* and certifies honest answers *)
      check_ok "honest job passes" (request addr (mst_req ~id:42 ()));
      (* the seeded solve rhs is NOT centered: the validator must measure
         the residual against the centered b the solver actually answers,
         or an honest solve is refused *)
      check_ok "honest solve passes" (request addr (solve_req ~id:43 ())))

let test_policy_recover_certifies () =
  with_daemon ~policy:Serve.Exec.Recover (fun addr ->
      let truth = truthful_weight addr in
      let r = request addr (inject_req ()) in
      check_ok "recovered reply" r;
      Alcotest.(check (float 1e-9))
        "certified weight" truth
        (get_float [ "result"; "weight" ] r);
      Alcotest.(check int) "two attempts" 2 (get_int [ "metrics"; "attempts" ] r);
      Alcotest.(check bool)
        "marked recovered" true
        (get_bool [ "metrics"; "recovered" ] r))

(* ----------------------------------------------------- stats & shutdown *)

let test_stats_and_shutdown () =
  let config =
    {
      Serve.Daemon.addr = fresh_addr ();
      jobs = 2;
      cache_cap = 8;
      policy = Serve.Exec.Off;
      max_bytes = 1024 * 1024;
    }
  in
  let t = Serve.Daemon.start config in
  let addr = Serve.Daemon.addr t in
  check_ok "job before stats" (request addr (mst_req ~id:50 ()));
  ignore (request addr (mst_req ~id:51 ()));
  let s = request addr {|{"id":52,"kind":"stats"}|} in
  check_ok "stats" s;
  Alcotest.(check bool)
    "received counted" true
    (get_int [ "result"; "jobs_received" ] s >= 2);
  Alcotest.(check int) "workers" 2 (get_int [ "result"; "workers" ] s);
  Alcotest.(check string) "policy" "none" (get_string [ "result"; "policy" ] s);
  Alcotest.(check bool)
    "cache hits counted" true
    (get_int [ "result"; "cache"; "hits" ] s >= 1);
  let bye = request addr {|{"id":53,"kind":"shutdown"}|} in
  check_ok "shutdown acknowledged" bye;
  Alcotest.(check bool)
    "stopping" true
    (get_bool [ "result"; "stopping" ] bye);
  Serve.Daemon.wait t;
  Alcotest.(check bool)
    "socket gone" true
    (match Serve.Client.connect addr with
    | c ->
      Serve.Client.close c;
      false
    | exception Unix.Unix_error _ -> true)

(* --------------------------------------------------------------- codec *)

let test_job_parse_roundtrip () =
  let ok s = match Serve.Job.parse_string s with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  let j = ok (solve_req ~id:7 ~extra:{|,"solver":"cg","timeout_ms":250|} ()) in
  Alcotest.(check int) "id" 7 j.Serve.Job.id;
  Alcotest.(check bool)
    "timeout parsed" true
    (j.Serve.Job.timeout_ms = Some 250.);
  (match j.Serve.Job.payload with
  | Serve.Job.Solve { solver = Serve.Job.Cg_baseline; g; _ } ->
    Alcotest.(check int) "generated nodes" 24 (Graph.n g)
  | _ -> Alcotest.fail "expected a cg solve");
  let explicit =
    ok
      {|{"kind":"mst","graph":{"n":3,"edges":[[0,1,1.5],[1,2,2.0],[0,2,4.0]]}}|}
  in
  (match explicit.Serve.Job.payload with
  | Serve.Job.Mst { g } ->
    Alcotest.(check int) "explicit nodes" 3 (Graph.n g);
    Alcotest.(check int) "explicit edges" 3 (Graph.m g)
  | _ -> Alcotest.fail "expected an mst job");
  match Serve.Job.parse_string "[1,2,3]" with
  | Ok _ -> Alcotest.fail "array accepted as request"
  | Error _ -> ()

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "malformed json keeps connection" `Quick
            test_malformed_json_keeps_connection;
          Alcotest.test_case "unknown kind refused" `Quick
            test_unknown_kind_refused;
          Alcotest.test_case "bad instances refused" `Quick
            test_bad_graph_refused;
          Alcotest.test_case "oversized frame refused, connection kept" `Quick
            test_oversized_frame_refused_connection_kept;
          Alcotest.test_case "corrupt stream closed" `Quick
            test_corrupt_stream_closed;
          Alcotest.test_case "job codec" `Quick test_job_parse_roundtrip;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "queue timeout" `Quick test_queue_timeout;
          Alcotest.test_case "cache hit returns identical output" `Quick
            test_cache_hit_identical_output;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
        ] );
      ( "policy",
        [
          Alcotest.test_case "off lets corruption escape" `Quick
            test_policy_off_lets_corruption_escape;
          Alcotest.test_case "verify refuses" `Quick test_policy_verify_refuses;
          Alcotest.test_case "recover certifies" `Quick
            test_policy_recover_certifies;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "stats and shutdown" `Quick
            test_stats_and_shutdown;
        ] );
    ]
