let () =
  Alcotest.run "repro"
    [
      ("linalg", Test_linalg.suite);
      ("graph", Test_graph.suite);
      ("clique", Test_clique.suite);
      ("runtime", Test_runtime.suite);
      ("wire", Test_wire.suite);
      ("sanitize", Test_sanitize.suite);
      ("determinism", Test_determinism.suite);
      (* The analysis suite runs as its own executable (test_analysis.exe):
         linking compiler-libs.common here would shadow the unwrapped
         Coloring/Matching modules of lib/graph with the compiler's own
         register-allocator units of the same names. *)
      ("metrics", Test_metrics.suite);
      ("expander", Test_expander.suite);
      ("sparsify", Test_sparsify.suite);
      ("laplacian", Test_laplacian.suite);
      ("euler", Test_euler.suite);
      ("flow", Test_flow.suite);
      ("mcf", Test_mcf.suite);
      ("integration", Test_integration.suite);
      ("scale", Test_scale.suite);
    ]
