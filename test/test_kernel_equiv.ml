(* The kernel differential suite: the arena message kernel, the
   domain-parallel round execution, and the multi-process socket transport
   must be bit-identical to the legacy sequential path — same rounds, same
   words, same inbox lists, same sanitizer transcript hashes (shape and
   content), same errors — across real workloads, every domain count, and
   every shard count. Runs standalone so CI can sweep the environment:

     CC_DOMAINS=4 dune exec test/test_kernel_equiv.exe
     CC_KERNEL=legacy dune exec test/test_kernel_equiv.exe
     CC_SHARDS=2 dune exec test/test_kernel_equiv.exe *)

module San = Runtime.Sanitize
module A = Runtime.Arena
module M = Runtime.Mailbox
module K = Clique.Kernel
module S = Fault.Schedule
module FSim = Fault.Inject.Make (Clique.Sim)
module FRt = Runtime.Make (FSim)
module FP = Clique.Programs.Make (FRt)
module B = Clique.Broadcast
module FBc = Fault.Inject.Make (Clique.Broadcast)
module FBRt = Runtime.Make (FBc)
module FBP = Clique.Programs.Make (FBRt)

(* ------------------------------------------------------ shared fixtures *)

let n = 24

let g = Gen.connected_gnp ~seed:5L n 0.3

let gw = Gen.weighted_gnp ~seed:9L n 0.4 16

let ring k =
  let succ = Array.init k (fun i -> (i + 1) mod k) in
  let pred = Array.init k (fun i -> (i + k - 1) mod k) in
  let ids = Array.init k (fun i -> (i * 53) + 2) in
  (ids, succ, pred)

(* Every configuration the suite must prove equivalent: the two in-process
   delivery engines crossed with 1, 2 and 4 domains, plus the loopback
   socket transport crossed over CC_SHARDS in {1,2,4} x CC_DOMAINS in
   {1,2} (the domain pool applies per shard there). Creating a socket
   session joins all live domain pools before forking; later in-process
   configs re-spawn them lazily, so mixing the legs is safe in any
   order. *)
let configs =
  [
    (Clique.Sim.Arena, 1, 1);
    (Clique.Sim.Arena, 2, 1);
    (Clique.Sim.Arena, 4, 1);
    (Clique.Sim.Legacy, 1, 1);
    (Clique.Sim.Legacy, 2, 1);
    (Clique.Sim.Legacy, 4, 1);
    (Clique.Sim.Shard, 1, 1);
    (Clique.Sim.Shard, 2, 1);
    (Clique.Sim.Shard, 1, 2);
    (Clique.Sim.Shard, 2, 2);
    (Clique.Sim.Shard, 1, 4);
    (Clique.Sim.Shard, 2, 4);
  ]

let config_name (k, d, s) =
  match k with
  | Clique.Sim.Arena -> Printf.sprintf "arena/domains=%d" d
  | Clique.Sim.Legacy -> Printf.sprintf "legacy/domains=%d" d
  | Clique.Sim.Shard -> Printf.sprintf "shard/shards=%d/domains=%d" s d

let with_config (kernel, domains, shards) f =
  Clique.Sim.set_default_kernel (Some kernel);
  Runtime.Pool.set_default (Some domains);
  Runtime.Shard.set_default (Some shards);
  Fun.protect
    ~finally:(fun () ->
      Clique.Socket.shutdown_all ();
      Clique.Sim.set_default_kernel None;
      Runtime.Pool.set_default None;
      Runtime.Shard.set_default None)
    f

(* A run's identity: ledger totals plus the sanitizer's two FNV-1a
   transcript digests. Content-hash equality pins endpoints and payload
   words of every message of every round. *)
let signature_t = Alcotest.(pair (triple int int int) (pair int64 int64))

let signature rounds words sanitizer =
  match sanitizer with
  | Some s ->
    let tr = San.transcript s in
    ((rounds, words, tr.San.events), (tr.San.shape_hash, tr.San.content_hash))
  | None -> Alcotest.fail "differential runs must be sanitized"

let check_all_equal what = function
  | [] | [ _ ] -> ()
  | (ref_cfg, ref_sig) :: rest ->
    List.iter
      (fun (cfg, s) ->
        Alcotest.check signature_t
          (Printf.sprintf "%s: %s == %s" what cfg ref_cfg)
          ref_sig s)
      rest

(* -------------------------------------------- program-level equivalence *)

(* BFS + Bellman-Ford + Cole-Vishkin + Boruvka in one sanitized runtime:
   every exchange_map fan-out, every broadcast, every charged round of all
   four programs folds into one transcript. *)
let drive_programs () =
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create n) in
  ignore (K.Sim_programs.bfs rt g 0);
  ignore (K.Sim_programs.bellman_ford rt gw 0);
  let ids, succ, pred = ring n in
  ignore (K.Sim_programs.three_color rt ~ids ~succ ~pred);
  ignore (K.Sim_programs.boruvka rt g);
  signature (K.On_sim.rounds rt) (K.On_sim.words rt) (K.On_sim.sanitizer rt)

let test_programs_equivalent () =
  check_all_equal "programs"
    (List.map
       (fun c -> (config_name c, with_config c drive_programs))
       configs)

(* The E1 workload: the full charged sparsifier pipeline builds its own
   runtime internally, so this exercises kernel selection through
   [Sim.default_kernel] exactly as the bench harness does. *)
let test_sparsifier_equivalent () =
  let runs =
    List.map
      (fun c ->
        ( config_name c,
          with_config c (fun () ->
              let r = Sparsify.Spectral.sparsify gw in
              ( r.Sparsify.Spectral.rounds,
                r.Sparsify.Spectral.phase_rounds,
                Graph.m r.Sparsify.Spectral.sparsifier )) ))
      configs
  in
  match runs with
  | [] -> ()
  | (ref_cfg, ref_run) :: rest ->
    List.iter
      (fun (cfg, run) ->
        Alcotest.(check (triple int (list (pair string int)) int))
          (Printf.sprintf "sparsifier: %s == %s" cfg ref_cfg)
          ref_run run)
      rest

(* ----------------------------------------------- chaos-path equivalence *)

(* A nonempty fault schedule must inject bit-identically on the arena
   path: the injector draws on (round, coordinates), all of which the
   arena reproduces exactly. Events are compared verbatim. No Truncate
   here: these raw programs are driven without checker/recovery armor, and
   a zero-word payload would crash them on every kernel alike. *)
let chaos_schedule =
  S.create ~seed:23
    [ S.rule S.Drop 0.15; S.rule S.Corrupt 0.15; S.rule S.Stall 0.05 ]

let drive_chaos () =
  let tr = FSim.inject ~schedule:chaos_schedule (Clique.Sim.create n) in
  let rt = FRt.create ~sanitize:true tr in
  ignore (FP.bfs rt g 0);
  ignore (FP.bellman_ford rt gw 0);
  ( signature (FRt.rounds rt) (FRt.words rt) (FRt.sanitizer rt),
    FSim.injected_total tr,
    FSim.injected tr,
    List.map (Format.asprintf "%a" Fault.Inject.pp_event) (FSim.events tr) )

let test_chaos_equivalent () =
  let runs =
    List.map (fun c -> (config_name c, with_config c drive_chaos)) configs
  in
  let _, (_, ref_total, _, _) = List.hd runs in
  Alcotest.(check bool)
    "schedule is actually injecting (nonempty cross-check)" true
    (ref_total > 0);
  match runs with
  | [] -> ()
  | (ref_cfg, (ref_sig, ref_total, ref_counts, ref_events)) :: rest ->
    List.iter
      (fun (cfg, (s, total, counts, events)) ->
        Alcotest.check signature_t
          (Printf.sprintf "chaos transcript: %s == %s" cfg ref_cfg)
          ref_sig s;
        Alcotest.(check int)
          (Printf.sprintf "chaos injected total: %s == %s" cfg ref_cfg)
          ref_total total;
        Alcotest.(check (list (pair string int)))
          (Printf.sprintf "chaos injected counts: %s == %s" cfg ref_cfg)
          ref_counts counts;
        Alcotest.(check (list string))
          (Printf.sprintf "chaos event log: %s == %s" cfg ref_cfg)
          ref_events events)
      rest

(* ------------------------------------------------- direct arena parity *)

let inboxes_t = Alcotest.(array (list (pair int (array int))))

(* A deterministic mixed workload: fan-outs, repeated pairs (within
   width), empty outboxes, self-messages. *)
let workload k =
  Array.init k (fun v ->
      if v mod 3 = 2 then []
      else
        [
          ((v + 1) mod k, [| v; v * 2 |]);
          ((v + 1) mod k, [||]);
          ((v * 5 + 2) mod k, [| v |]);
          (v, [| 42 |]);
        ])

let deliver_both ?dense_threshold k width outboxes =
  let arena = A.create ?dense_threshold ~n:k () in
  let a = A.deliver arena ~width outboxes in
  let l = M.deliver ~n:k ~width outboxes in
  (arena, a, l)

let test_arena_matches_mailbox () =
  List.iter
    (fun k ->
      let outboxes = workload k in
      let _, (ai, aw), (li, lw) = deliver_both k 4 outboxes in
      Alcotest.check inboxes_t
        (Printf.sprintf "inbox lists identical in order (n=%d)" k)
        li ai;
      Alcotest.(check int) "words identical" lw aw)
    [ 3; 8; 24 ]

let test_arena_sparse_fallback () =
  let k = 16 in
  let outboxes = workload k in
  let dense = A.create ~n:k () in
  let sparse = A.create ~dense_threshold:0 ~n:k () in
  Alcotest.(check bool) "default is dense at small n" true
    (A.uses_dense_table dense);
  Alcotest.(check bool) "threshold 0 forces the Hashtbl fallback" false
    (A.uses_dense_table sparse);
  let d = A.deliver dense ~width:4 outboxes in
  let s = A.deliver sparse ~width:4 outboxes in
  let l = M.deliver ~n:k ~width:4 outboxes in
  Alcotest.check inboxes_t "dense == legacy" (fst l) (fst d);
  Alcotest.check inboxes_t "sparse == legacy" (fst l) (fst s);
  Alcotest.(check int) "words agree" (snd l) (snd d);
  Alcotest.(check int) "words agree (sparse)" (snd l) (snd s)

(* Reuse across rounds is the arena's point: same instance, many rounds,
   including a width bump mid-stream; every round must match legacy. *)
let test_arena_reuse_across_rounds () =
  let k = 10 in
  let arena = A.create ~n:k () in
  for r = 1 to 6 do
    let width = if r = 4 then 7 else 4 in
    let outboxes =
      Array.init k (fun v ->
          List.init (r mod 3) (fun i -> ((v + i + 1) mod k, [| r; v; i |])))
    in
    let a = A.deliver arena ~width outboxes in
    let l = M.deliver ~n:k ~width outboxes in
    Alcotest.check inboxes_t
      (Printf.sprintf "round %d identical" r)
      (fst l) (fst a);
    Alcotest.(check int) "words" (snd l) (snd a)
  done;
  let resets = List.assoc "kernel.arena.resets" (A.stats arena) in
  Alcotest.(check int) "one reset per deliver" 6 resets

let exn_to_string = function
  | Ok _ -> "no exception"
  | Error e -> Printexc.to_string e

let capture f = match f () with v -> Ok v | exception e -> Error e

(* Errors must fire at the identical message with identical fields on
   every accounting backend. *)
let test_arena_error_parity () =
  let k = 8 in
  let over =
    (* 1->3 accumulates 1+2 words at width 2: the second message trips. *)
    [| []; [ (3, [| 7 |]); (3, [| 8; 9 |]) ]; []; [ (0, [| 1 |]) ]; [];
       []; []; [] |]
  in
  let out_of_range = [| [ (k, [| 1 |]) ]; []; []; []; []; []; []; [] |] in
  List.iter
    (fun (what, outboxes, width) ->
      let legacy = capture (fun () -> M.deliver ~n:k ~width outboxes) in
      List.iter
        (fun (backend, dense_threshold) ->
          let arena = A.create ~dense_threshold ~n:k () in
          let got = capture (fun () -> A.deliver arena ~width outboxes) in
          Alcotest.(check string)
            (Printf.sprintf "%s on %s == legacy" what backend)
            (exn_to_string legacy) (exn_to_string got))
        [ ("dense", 1024); ("sparse", 0) ])
    [
      ("pair over budget", over, 2);
      ("dst out of range", out_of_range, 2);
    ]

(* The CONGEST edge check runs through the arena's ?check hook; a
   non-edge must raise identically on every kernel (the Shard selection
   falls back to the in-process arena for CONGEST instances). *)
let test_congest_check_parity () =
  let path = Gen.path 4 in
  List.iter
    (fun kernel ->
      let c = Clique.Congest.create ~kernel path in
      Alcotest.(check bool)
        (Printf.sprintf "non-edge raises on %s"
           (config_name (kernel, 1, 1)))
        true
        (try
           ignore (Clique.Congest.exchange c [| [ (2, [| 1 |]) ]; []; []; [] |]);
           false
         with Clique.Congest.Not_an_edge { src = 0; dst = 2 } -> true))
    [ Clique.Sim.Arena; Clique.Sim.Legacy; Clique.Sim.Shard ]

(* ------------------------------------------ broadcast-model equivalence *)

(* All four node programs on the broadcast kernel vs a unicast reference:
   same answers, same rounds. Every exchange and broadcast costs one round
   in either model and the receivers' adjacency/identity filters make the
   wider broadcast inboxes semantically transparent, so the round totals
   coincide exactly; only words differ. *)
let test_broadcast_programs_match_unicast () =
  let ids, succ, pred = ring n in
  let urt = K.On_sim.create ~sanitize:true (Clique.Sim.create n) in
  let u_bfs = K.Sim_programs.bfs urt g 0 in
  let u_bf = K.Sim_programs.bellman_ford urt gw 0 in
  let u_col, u_col_rounds = K.Sim_programs.three_color urt ~ids ~succ ~pred in
  let u_mst, u_w, u_phases = K.Sim_programs.boruvka urt g in
  let brt = K.On_bcast.create ~sanitize:true (B.create n) in
  let b_bfs = K.Bcast_programs.bfs brt g 0 in
  let b_bf = K.Bcast_programs.bellman_ford brt gw 0 in
  let b_col, b_col_rounds = K.Bcast_programs.three_color brt ~ids ~succ ~pred in
  let b_mst, b_w, b_phases = K.Bcast_programs.boruvka brt g in
  Alcotest.(check (array int)) "bfs distances" u_bfs b_bfs;
  Alcotest.(check (array (float 1e-9))) "bellman-ford distances" u_bf b_bf;
  Alcotest.(check (array int)) "cycle colors" u_col b_col;
  Alcotest.(check int) "coloring rounds" u_col_rounds b_col_rounds;
  Alcotest.(check (list int)) "mst edges" u_mst b_mst;
  Alcotest.(check (float 1e-9)) "mst weight" u_w b_w;
  Alcotest.(check int) "boruvka phases" u_phases b_phases;
  Alcotest.(check int)
    "round totals coincide across models"
    (K.On_sim.rounds urt) (K.On_bcast.rounds brt)

(* The charged pipelines under explicit ~model: the computed sparsifier
   and solver output are bit-identical; only the accounting moves, and
   each total stays under its own model's reference bound. *)
let test_broadcast_sparsify_solver_same_outputs () =
  let u = Sparsify.Spectral.sparsify ~model:Runtime.Model.Unicast gw in
  let b = Sparsify.Spectral.sparsify ~model:Runtime.Model.Broadcast gw in
  Alcotest.(check bool) "same sparsifier edges" true
    (Graph.edges u.Sparsify.Spectral.sparsifier
    = Graph.edges b.Sparsify.Spectral.sparsifier);
  Alcotest.(check int) "same levels" u.Sparsify.Spectral.levels
    b.Sparsify.Spectral.levels;
  Alcotest.(check int) "same classes" u.Sparsify.Spectral.classes
    b.Sparsify.Spectral.classes;
  let uw = Float.max 1. (Graph.max_weight gw) in
  Alcotest.(check bool) "unicast rounds under unicast bound" true
    (u.Sparsify.Spectral.rounds
    <= Sparsify.Spectral.rounds_bound ~n ~u:uw ~gamma:0.25);
  Alcotest.(check bool) "broadcast rounds under broadcast bound" true
    (b.Sparsify.Spectral.rounds
    <= Sparsify.Spectral.bcast_rounds_bound ~n ~u:uw);
  Alcotest.(check bool) "accounting actually differs" true
    (u.Sparsify.Spectral.rounds <> b.Sparsify.Spectral.rounds);
  let rhs = Linalg.Vec.init n (fun i -> float_of_int (i mod 5) -. 2.) in
  let su = Laplacian.Solver.solve ~model:Runtime.Model.Unicast gw rhs in
  let sb = Laplacian.Solver.solve ~model:Runtime.Model.Broadcast gw rhs in
  Alcotest.(check (array (float 1e-12))) "same solution"
    su.Laplacian.Solver.x sb.Laplacian.Solver.x;
  Alcotest.(check int) "same chebyshev iterations"
    su.Laplacian.Solver.iterations sb.Laplacian.Solver.iterations;
  List.iter
    (fun phase ->
      Alcotest.(check int)
        (phase ^ " phase is model-independent")
        (List.assoc phase su.Laplacian.Solver.phase_rounds)
        (List.assoc phase sb.Laplacian.Solver.phase_rounds))
    [ "chebyshev"; "kappa-estimate" ];
  Alcotest.(check bool) "sparsify phase is recharged" true
    (List.assoc "sparsify" su.Laplacian.Solver.phase_rounds
    <> List.assoc "sparsify" sb.Laplacian.Solver.phase_rounds)

(* Chaos on the broadcast transport: the injector draws once per source
   per exchange there, and the whole run must be deterministic — two
   identically-seeded runs give the same transcripts and event logs. *)
let drive_bcast_chaos () =
  let tr = FBc.inject ~schedule:chaos_schedule (B.create n) in
  let rt = FBRt.create ~sanitize:true tr in
  ignore (FBP.bfs rt g 0);
  ignore (FBP.bellman_ford rt gw 0);
  ( signature (FBRt.rounds rt) (FBRt.words rt) (FBRt.sanitizer rt),
    FBc.injected_total tr,
    FBc.injected tr,
    List.map (Format.asprintf "%a" Fault.Inject.pp_event) (FBc.events tr) )

let test_broadcast_chaos_deterministic () =
  let s1, t1, c1, e1 = drive_bcast_chaos () in
  let s2, t2, c2, e2 = drive_bcast_chaos () in
  Alcotest.(check bool) "schedule is actually injecting" true (t1 > 0);
  Alcotest.check signature_t "broadcast chaos transcript repeats" s1 s2;
  Alcotest.(check int) "injected totals repeat" t1 t2;
  Alcotest.(check (list (pair string int))) "injected counts repeat" c1 c2;
  Alcotest.(check (list string)) "event logs repeat" e1 e2

(* Direct transport semantics: collapse of redundant per-destination
   entries, deliver-to-everyone inboxes, the Multi_payload error, and the
   sequential-broadcast cost of route. *)
let test_broadcast_transport_semantics () =
  let t = B.create 4 in
  let inboxes =
    B.exchange t [| [ (1, [| 7; 8 |]); (2, [| 7; 8 |]) ]; []; [ (0, [| 5 |]) ]; [] |]
  in
  let expected = [ (0, [| 7; 8 |]); (2, [| 5 |]) ] in
  Array.iteri
    (fun v inbox ->
      Alcotest.check
        Alcotest.(list (pair int (array int)))
        (Printf.sprintf "node %d hears the whole air, src-ascending" v)
        expected inbox)
    inboxes;
  Alcotest.(check int) "one round" 1 (B.rounds t);
  Alcotest.(check int) "words are (n-1) per on-air payload word"
    ((3 * 2) + (3 * 1))
    (B.words_sent t);
  Alcotest.(check (list (pair string int)))
    "collapse counted"
    [ ("kernel.bcast.exchanges", 1); ("kernel.bcast.collapsed", 1) ]
    (B.stats t);
  (* Distinct payloads from one source are a model violation... *)
  Alcotest.(check bool) "multi-payload raises" true
    (try
       ignore (B.exchange t [| [ (1, [| 1 |]); (2, [| 2 |]) ]; []; []; [] |]);
       false
     with B.Multi_payload { src = 0; distinct = 2; _ } -> true);
  (* ...and an oversized payload is a width error with dst = -1. *)
  Alcotest.(check bool) "oversized payload raises" true
    (try
       ignore (B.exchange t [| [ (1, [| 1; 2; 3 |]) ]; []; []; [] |]);
       false
     with B.Bandwidth_exceeded { src = 0; dst = -1; words = 3; width = 2; _ }
     -> true);
  (* route airs each source's messages one per round: 2 rounds here. *)
  let t = B.create 4 in
  let inboxes =
    B.route t [ (0, 1, [| 1 |]); (0, 2, [| 2 |]); (3, 1, [| 9 |]) ]
  in
  Alcotest.(check int) "route rounds = max per-src count" 2 (B.rounds t);
  Alcotest.check
    Alcotest.(list (pair int (array int)))
    "route keeps addressed delivery"
    [ (0, [| 1 |]); (3, [| 9 |]) ]
    inboxes.(1)

(* ------------------------------------------------------------ the suite *)

let () =
  Alcotest.run "kernel-equiv"
    [
      ( "differential",
        [
          Alcotest.test_case "programs: arena x domains bit-identical" `Quick
            test_programs_equivalent;
          Alcotest.test_case "sparsifier (E1): kernel-independent" `Quick
            test_sparsifier_equivalent;
          Alcotest.test_case "chaos: faults inject bit-identically" `Quick
            test_chaos_equivalent;
        ] );
      ( "broadcast",
        [
          Alcotest.test_case "programs: same answers and rounds as unicast"
            `Quick test_broadcast_programs_match_unicast;
          Alcotest.test_case "sparsify/solve: outputs model-independent"
            `Quick test_broadcast_sparsify_solver_same_outputs;
          Alcotest.test_case "chaos: deterministic on the broadcast kernel"
            `Quick test_broadcast_chaos_deterministic;
          Alcotest.test_case "transport: collapse, air, errors, route cost"
            `Quick test_broadcast_transport_semantics;
        ] );
      ( "arena",
        [
          Alcotest.test_case "deliver matches mailbox" `Quick
            test_arena_matches_mailbox;
          Alcotest.test_case "dense/sparse width accounting" `Quick
            test_arena_sparse_fallback;
          Alcotest.test_case "reuse across rounds" `Quick
            test_arena_reuse_across_rounds;
          Alcotest.test_case "error parity (budget, range)" `Quick
            test_arena_error_parity;
          Alcotest.test_case "congest edge-check parity" `Quick
            test_congest_check_parity;
        ] );
    ]
