(* Tests for the congested-clique runtime: bandwidth enforcement, routing,
   round accounting. *)

let test_exchange_delivers () =
  let sim = Clique.Sim.create 4 in
  let outboxes =
    [| [ (1, [| 42 |]) ]; [ (2, [| 7 |]) ]; []; [ (0, [| 9 |]) ] |]
  in
  let inboxes = Clique.Sim.exchange sim outboxes in
  Alcotest.(check int) "one round" 1 (Clique.Sim.rounds sim);
  Alcotest.(check bool) "node 1 got 42" true
    (List.exists (fun (src, p) -> src = 0 && p = [| 42 |]) inboxes.(1));
  Alcotest.(check bool) "node 0 got 9" true
    (List.exists (fun (src, p) -> src = 3 && p = [| 9 |]) inboxes.(0));
  Alcotest.(check int) "words counted" 3 (Clique.Sim.words_sent sim)

let test_exchange_bandwidth_enforced () =
  let sim = Clique.Sim.create 3 in
  (* 3 words on one ordered pair exceeds the default width of 2. *)
  let outboxes = [| [ (1, [| 1; 2; 3 |]) ]; []; [] |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Clique.Sim.exchange sim outboxes);
       false
     with Clique.Sim.Bandwidth_exceeded _ -> true)

let test_exchange_bandwidth_accumulates () =
  let sim = Clique.Sim.create 3 in
  (* Two separate messages to the same destination also exceed the width. *)
  let outboxes = [| [ (1, [| 1 |]); (1, [| 2; 3 |]) ]; []; [] |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Clique.Sim.exchange sim outboxes);
       false
     with Clique.Sim.Bandwidth_exceeded _ -> true)

let test_route_within_lenzen_bound () =
  let n = 8 in
  let sim = Clique.Sim.create n in
  (* Everyone sends one word to everyone: n·(n−1) messages, well within the
     ≤ n-per-node bound: constant rounds. *)
  let msgs = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then msgs := (src, dst, [| src |]) :: !msgs
    done
  done;
  let inboxes = Clique.Sim.route sim !msgs in
  Alcotest.(check int) "constant rounds" Runtime.Cost.lenzen_routing_rounds
    (Clique.Sim.rounds sim);
  Alcotest.(check int) "everyone hears n-1" (n - 1) (List.length inboxes.(0))

let test_route_overload_charges_batches () =
  let n = 4 in
  let sim = Clique.Sim.create n in
  (* Node 0 receives 3n·width words: needs 3 batches. *)
  let width = 2 in
  let msgs = ref [] in
  for _ = 1 to 3 * n * width do
    msgs := (1, 0, [| 5 |]) :: !msgs
  done;
  ignore (Clique.Sim.route sim !msgs);
  Alcotest.(check int) "3 batches" (3 * Runtime.Cost.lenzen_routing_rounds)
    (Clique.Sim.rounds sim)

let test_broadcast () =
  let sim = Clique.Sim.create 5 in
  let values = Array.init 5 (fun i -> [| i * i |]) in
  let view = Clique.Sim.broadcast sim values in
  Alcotest.(check int) "one round" 1 (Clique.Sim.rounds sim);
  Alcotest.(check int) "global view" 16 view.(4).(0)

let test_cost_phases () =
  let c = Runtime.Cost.create () in
  Runtime.Cost.charge c ~phase:"a" 3;
  Runtime.Cost.charge c ~phase:"b" 4;
  Runtime.Cost.charge c ~phase:"a" 2;
  Alcotest.(check int) "total" 9 (Runtime.Cost.rounds c);
  Alcotest.(check int) "phase a" 5 (Runtime.Cost.phase_rounds c "a");
  Alcotest.(check (list (pair string int)))
    "phases sorted"
    [ ("a", 5); ("b", 4) ]
    (Runtime.Cost.phases c);
  let d = Runtime.Cost.create () in
  Runtime.Cost.merge_into c d;
  Alcotest.(check int) "merged" 9 (Runtime.Cost.rounds d);
  Runtime.Cost.reset c;
  Alcotest.(check int) "reset" 0 (Runtime.Cost.rounds c)

let test_cost_rejects_negative () =
  let c = Runtime.Cost.create () in
  Alcotest.(check bool) "raises" true
    (try
       Runtime.Cost.charge c ~phase:"x" (-1);
       false
     with Invalid_argument _ -> true)

let test_log2_ceil () =
  Alcotest.(check int) "1" 0 (Runtime.Cost.log2_ceil 1);
  Alcotest.(check int) "2" 1 (Runtime.Cost.log2_ceil 2);
  Alcotest.(check int) "3" 2 (Runtime.Cost.log2_ceil 3);
  Alcotest.(check int) "1024" 10 (Runtime.Cost.log2_ceil 1024);
  Alcotest.(check int) "1025" 11 (Runtime.Cost.log2_ceil 1025)

let test_apsp_rounds () =
  (* ⌈n^0.158⌉: sublinear and monotone. *)
  Alcotest.(check bool) "monotone" true
    (Runtime.Cost.apsp_rounds 10000 >= Runtime.Cost.apsp_rounds 100);
  Alcotest.(check bool) "tiny" true (Runtime.Cost.apsp_rounds 100 <= 3);
  Alcotest.(check bool) "sublinear" true (Runtime.Cost.apsp_rounds 100000 <= 7)

let test_gather_rounds_scaling () =
  (* Gathering m = n²/4 edges at every node costs ≈ n/4 · words rounds:
     linear in n — this is what makes the trivial algorithm O(n log U). *)
  let r1 = Runtime.Cost.gather_rounds ~n:100 ~m:2500 ~bits_per_edge:28 in
  let r2 = Runtime.Cost.gather_rounds ~n:200 ~m:10000 ~bits_per_edge:30 in
  Alcotest.(check bool)
    (Printf.sprintf "%d -> %d roughly doubles" r1 r2)
    true
    (r2 > r1 && r2 <= 4 * r1)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"route delivers every message" ~count:30
      (pair (int_range 2 10) (int_range 1 30))
      (fun (n, k) ->
        let sim = Clique.Sim.create n in
        let msgs =
          List.init k (fun i -> (i mod n, (i + 1) mod n, [| i |]))
        in
        let msgs = List.filter (fun (a, b, _) -> a <> b) msgs in
        let inboxes = Clique.Sim.route sim msgs in
        let received = Array.fold_left (fun a l -> a + List.length l) 0 inboxes in
        received = List.length msgs);
    Test.make ~name:"cost totals equal sum of phases" ~count:30
      (list_of_size (Gen.int_range 0 20)
         (pair (string_gen_of_size (Gen.return 2) Gen.printable) (int_range 0 50)))
      (fun charges ->
        let c = Runtime.Cost.create () in
        List.iter (fun (p, r) -> Runtime.Cost.charge c ~phase:p r) charges;
        Runtime.Cost.rounds c
        = List.fold_left (fun a (_, r) -> a + r) 0
            (Runtime.Cost.phases c));
  ]

let suite =
  [
    Alcotest.test_case "exchange delivers" `Quick test_exchange_delivers;
    Alcotest.test_case "bandwidth enforced" `Quick
      test_exchange_bandwidth_enforced;
    Alcotest.test_case "bandwidth accumulates" `Quick
      test_exchange_bandwidth_accumulates;
    Alcotest.test_case "route within Lenzen bound" `Quick
      test_route_within_lenzen_bound;
    Alcotest.test_case "route overload batches" `Quick
      test_route_overload_charges_batches;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "cost phases" `Quick test_cost_phases;
    Alcotest.test_case "cost rejects negative" `Quick test_cost_rejects_negative;
    Alcotest.test_case "log2 ceil" `Quick test_log2_ceil;
    Alcotest.test_case "apsp rounds" `Quick test_apsp_rounds;
    Alcotest.test_case "gather rounds scaling" `Quick test_gather_rounds_scaling;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* ---------------------------------------------------------------- Boruvka *)

module Graph_gen = Gen

let mst_weight g ids =
  List.fold_left (fun a id -> a +. (Graph.edge g id).Graph.w) 0. ids

let test_boruvka_path () =
  let g = Graph_gen.path 10 in
  let r = Clique.Boruvka.minimum_spanning_tree g in
  Alcotest.(check int) "all edges" 9 (List.length r.Clique.Boruvka.edges);
  Alcotest.(check (float 1e-9)) "weight" 9. r.Clique.Boruvka.weight

let test_boruvka_matches_kruskal () =
  List.iter
    (fun seed ->
      let g =
        Graph.map_weights
          (fun e -> 1. +. float_of_int ((e.Graph.u * 7 + e.Graph.v * 13) mod 19))
          (Graph_gen.connected_gnp ~seed:(Int64.of_int seed) 40 0.2)
      in
      let r = Clique.Boruvka.minimum_spanning_tree g in
      let oracle = Clique.Boruvka.kruskal g in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "weight (seed %d)" seed)
        (mst_weight g oracle) r.Clique.Boruvka.weight;
      Alcotest.(check int) "n-1 edges" 39 (List.length r.Clique.Boruvka.edges))
    [ 1; 2; 3; 4; 5 ]

let test_boruvka_rounds_logarithmic () =
  let g = Graph_gen.connected_gnp ~seed:7L 200 0.05 in
  let r = Clique.Boruvka.minimum_spanning_tree g in
  (* 2 broadcast rounds per phase, O(log n) phases. *)
  Alcotest.(check bool)
    (Printf.sprintf "rounds=%d phases=%d" r.Clique.Boruvka.rounds
       r.Clique.Boruvka.phases)
    true
    (r.Clique.Boruvka.rounds = 2 * r.Clique.Boruvka.phases
    && r.Clique.Boruvka.phases <= 9)

let test_boruvka_rejects_disconnected () =
  let g = Graph.create 4 [ { Graph.u = 0; v = 1; w = 1. } ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Clique.Boruvka.minimum_spanning_tree g);
       false
     with Invalid_argument _ -> true)

(* ---------------------------------------------------------------- Congest *)

let test_congest_rejects_non_edges () =
  let g = Graph_gen.path 4 in
  let c = Clique.Congest.create g in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Clique.Congest.exchange c [| [ (3, [| 1 |]) ]; []; []; [] |]);
       false
     with Clique.Congest.Not_an_edge _ -> true)

let test_congest_bfs_takes_eccentricity_rounds () =
  let g = Graph_gen.path 10 in
  let c = Clique.Congest.create g in
  let dist = Clique.Congest.bfs c 0 in
  Alcotest.(check int) "distance to far end" 9 dist.(9);
  (* Flooding needs one final round in which the last frontier discovers
     nobody (termination detection). *)
  Alcotest.(check int) "rounds = eccentricity + 1" 10 (Clique.Congest.rounds c)

let test_congest_bfs_matches_oracle () =
  let g = Graph_gen.connected_gnp ~seed:9L 30 0.15 in
  let c = Clique.Congest.create g in
  let dist = Clique.Congest.bfs c 0 in
  let oracle = Traversal.bfs g 0 in
  Alcotest.(check bool) "distances agree" true (dist = oracle)

let test_congest_bellman_ford () =
  let g =
    Graph.create 3
      [
        { Graph.u = 0; v = 1; w = 1. };
        { Graph.u = 1; v = 2; w = 1. };
        { Graph.u = 0; v = 2; w = 5. };
      ]
  in
  let c = Clique.Congest.create g in
  let dist = Clique.Congest.bellman_ford c 0 in
  Alcotest.(check (float 1e-2)) "shortest via middle" 2. dist.(2)

let test_congest_diameter () =
  Alcotest.(check int) "path" 9 (Clique.Congest.diameter (Graph_gen.path 10));
  Alcotest.(check int) "complete" 1
    (Clique.Congest.diameter (Graph_gen.complete 6));
  let disconnected = Graph.create 3 [ { Graph.u = 0; v = 1; w = 1. } ] in
  Alcotest.(check int) "disconnected" max_int
    (Clique.Congest.diameter disconnected)

let test_congest_reference_ordering () =
  (* The whole point of §1.1: clique rounds beat CONGEST rounds. *)
  (* The separation is asymptotic: at n = 10^6 the CONGEST per-iteration
     cost √n + √n·D^{1/4} dwarfs the clique's n^{o(1)} solve. *)
  let n = 1_000_000 and m = 100_000_000 and d = 50 and u = 16 in
  let congest = Clique.Congest.fglp_maxflow_rounds ~n ~m ~d ~u in
  let clique = Maxflow_ipm.rounds_reference ~n ~m ~u in
  Alcotest.(check bool)
    (Printf.sprintf "clique %d < congest %d" clique congest)
    true (clique < congest)

let boruvka_qcheck =
  let open QCheck in
  [
    Test.make ~name:"boruvka = kruskal weight" ~count:25 small_nat
      (fun seed ->
        let g =
          Graph.map_weights
            (fun e -> 1. +. float_of_int ((e.Graph.u + (3 * e.Graph.v)) mod 11))
            (Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 101)) 20 0.3)
        in
        let r = Clique.Boruvka.minimum_spanning_tree g in
        Float.abs (r.Clique.Boruvka.weight -. mst_weight g (Clique.Boruvka.kruskal g))
        < 1e-9);
    Test.make ~name:"congest bfs = centralized bfs" ~count:25 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 203)) 16 0.3
        in
        let c = Clique.Congest.create g in
        Clique.Congest.bfs c 0 = Traversal.bfs g 0);
  ]

let suite =
  suite
  @ [
      Alcotest.test_case "boruvka path" `Quick test_boruvka_path;
      Alcotest.test_case "boruvka = kruskal" `Quick test_boruvka_matches_kruskal;
      Alcotest.test_case "boruvka rounds logarithmic" `Quick
        test_boruvka_rounds_logarithmic;
      Alcotest.test_case "boruvka rejects disconnected" `Quick
        test_boruvka_rejects_disconnected;
      Alcotest.test_case "congest rejects non-edges" `Quick
        test_congest_rejects_non_edges;
      Alcotest.test_case "congest bfs rounds" `Quick
        test_congest_bfs_takes_eccentricity_rounds;
      Alcotest.test_case "congest bfs oracle" `Quick
        test_congest_bfs_matches_oracle;
      Alcotest.test_case "congest bellman-ford" `Quick test_congest_bellman_ford;
      Alcotest.test_case "congest diameter" `Quick test_congest_diameter;
      Alcotest.test_case "congest vs clique reference" `Quick
        test_congest_reference_ordering;
    ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) boruvka_qcheck
