(* Tests for the Theorem 1.1 solver: error metric, iteration scaling, round
   accounting, baselines. *)

module Graph_gen = Gen

let demand n =
  Linalg.Vec.center (Linalg.Vec.init n (fun i -> float_of_int ((i * 17) mod 13)))

let test_solver_meets_error_bound () =
  let n = 50 in
  let g = Graph_gen.connected_gnp ~seed:100L n 0.3 in
  let b = demand n in
  List.iter
    (fun eps ->
      let r = Laplacian.Solver.solve ~eps g b in
      let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
      if err > eps then
        Alcotest.failf "L-norm error %g exceeds eps %g" err eps)
    [ 1e-2; 1e-4; 1e-6 ]

let test_solver_weighted_graph () =
  let n = 40 in
  let g = Graph_gen.weighted_gnp ~seed:101L n 0.3 32 in
  let b = demand n in
  let r = Laplacian.Solver.solve ~eps:1e-5 g b in
  let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
  Alcotest.(check bool)
    (Printf.sprintf "err=%g" err)
    true (err <= 1e-5)

let test_solver_iterations_grow_with_precision () =
  let n = 45 in
  let g = Graph_gen.connected_gnp ~seed:102L n 0.25 in
  let b = demand n in
  let r1 = Laplacian.Solver.solve ~eps:1e-2 g b in
  let r2 = Laplacian.Solver.solve ~eps:1e-8 g b in
  Alcotest.(check bool) "more precision, more iterations" true
    (r2.Laplacian.Solver.iterations >= r1.Laplacian.Solver.iterations)

let test_solver_rounds_breakdown () =
  let n = 40 in
  let g = Graph_gen.connected_gnp ~seed:103L n 0.3 in
  let b = demand n in
  let r = Laplacian.Solver.solve g b in
  let phases = List.map fst r.Laplacian.Solver.phase_rounds in
  List.iter
    (fun p ->
      if not (List.mem p phases) then Alcotest.failf "missing phase %s" p)
    [ "sparsify"; "kappa-estimate"; "chebyshev" ];
  let total =
    List.fold_left (fun a (_, r) -> a + r) 0 r.Laplacian.Solver.phase_rounds
  in
  Alcotest.(check int) "phases sum to total" r.Laplacian.Solver.rounds total

let test_solver_reuse_sparsifier () =
  let n = 40 in
  let g = Graph_gen.connected_gnp ~seed:104L n 0.3 in
  let sp = Sparsify.Spectral.sparsify g in
  let b = demand n in
  let r = Laplacian.Solver.solve_with_sparsifier g sp b in
  let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
  Alcotest.(check bool) "reused sparsifier solves" true (err < 1e-4);
  (* No sparsify phase charged. *)
  Alcotest.(check bool) "no sparsify charge" true
    (not (List.mem_assoc "sparsify" r.Laplacian.Solver.phase_rounds))

let test_cg_baseline_solves () =
  let n = 40 in
  let g = Graph_gen.connected_gnp ~seed:105L n 0.3 in
  let b = demand n in
  let r = Laplacian.Solver.solve_cg_baseline ~eps:1e-6 g b in
  let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
  Alcotest.(check bool) "baseline error" true (err < 1e-5);
  Alcotest.(check bool) "rounds = iterations" true
    (r.Laplacian.Solver.rounds = r.Laplacian.Solver.iterations)

let test_solver_iterative_inner () =
  let n = 60 in
  let g = Graph_gen.connected_gnp ~seed:106L n 0.2 in
  let b = demand n in
  let r = Laplacian.Solver.solve ~inner:Laplacian.Solver.Iterative g b in
  let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
  Alcotest.(check bool) "iterative inner solves" true (err < 1e-4)

let test_solver_on_structured_graphs () =
  List.iter
    (fun (name, g) ->
      let n = Graph.n g in
      let b = demand n in
      let r = Laplacian.Solver.solve ~eps:1e-4 g b in
      let err = Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b in
      if err > 1e-4 then Alcotest.failf "%s: error %g" name err)
    [
      ("grid 6x8", Graph_gen.grid 6 8);
      ("cycle 50", Graph_gen.cycle 50);
      ("expander 48", Graph_gen.expander 48 8);
      ("barbell 15", Graph_gen.barbell 15);
      ("star 40", Graph_gen.star 40);
    ]

let test_solver_path_effective_resistance () =
  (* On a path, L†(e_s − e_t) gives potentials with difference = distance. *)
  let n = 10 in
  let g = Graph_gen.path n in
  let b = Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1)) in
  let r = Laplacian.Solver.solve ~eps:1e-8 g b in
  let x = r.Laplacian.Solver.x in
  Alcotest.(check (float 1e-4)) "effective resistance of P10"
    (float_of_int (n - 1))
    (x.(0) -. x.(n - 1))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"solver meets bound on random graphs" ~count:8 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 61)) 30 0.3
        in
        let b = demand 30 in
        let r = Laplacian.Solver.solve ~eps:1e-4 g b in
        Laplacian.Solver.error_in_l_norm g r.Laplacian.Solver.x b <= 1e-4);
  ]

let suite =
  [
    Alcotest.test_case "meets Theorem 1.1 error bound" `Quick
      test_solver_meets_error_bound;
    Alcotest.test_case "weighted graphs" `Quick test_solver_weighted_graph;
    Alcotest.test_case "iterations grow with precision" `Quick
      test_solver_iterations_grow_with_precision;
    Alcotest.test_case "round breakdown consistent" `Quick
      test_solver_rounds_breakdown;
    Alcotest.test_case "sparsifier reuse" `Quick test_solver_reuse_sparsifier;
    Alcotest.test_case "cg baseline" `Quick test_cg_baseline_solves;
    Alcotest.test_case "iterative inner solver" `Quick
      test_solver_iterative_inner;
    Alcotest.test_case "structured graphs" `Quick
      test_solver_on_structured_graphs;
    Alcotest.test_case "path effective resistance" `Quick
      test_solver_path_effective_resistance;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* ----------------------------------------- prepared (amortized) solving *)

(* solve_prepared must be indistinguishable from solve — solution bits,
   residual, and the whole round ledger — and stay so across repeat calls
   on the same handle (the daemon's steady state). *)
let test_prepared_matches_solve () =
  List.iter
    (fun (seed, n, p, eps) ->
      let g = Gen.connected_gnp ~seed:(Int64.of_int seed) n p in
      let b =
        Linalg.Vec.init n (fun i -> float_of_int ((i * 11) mod 7) -. 3.)
      in
      let r = Laplacian.Solver.solve ~eps g b in
      let prep = Laplacian.Solver.prepare ~eps g in
      let check_call tag =
        let r' = Laplacian.Solver.solve_prepared prep b in
        Alcotest.(check bool)
          (tag ^ ": x bit-identical") true
          (r.Laplacian.Solver.x = r'.Laplacian.Solver.x);
        Alcotest.(check (float 0.))
          (tag ^ ": residual") r.Laplacian.Solver.residual
          r'.Laplacian.Solver.residual;
        Alcotest.(check int)
          (tag ^ ": iterations") r.Laplacian.Solver.iterations
          r'.Laplacian.Solver.iterations;
        Alcotest.(check int)
          (tag ^ ": rounds") r.Laplacian.Solver.rounds
          r'.Laplacian.Solver.rounds;
        Alcotest.(check bool)
          (tag ^ ": phase ledger") true
          (r.Laplacian.Solver.phase_rounds = r'.Laplacian.Solver.phase_rounds)
      in
      check_call "first call";
      check_call "repeat call")
    [ (31, 24, 0.3, 1e-6); (32, 40, 0.15, 1e-4) ]

let test_prepared_cg_matches_baseline () =
  let g = Gen.connected_gnp ~seed:33L 30 0.25 in
  let b = Linalg.Vec.init 30 (fun i -> sin (float_of_int (2 * i))) in
  let r = Laplacian.Solver.solve_cg_baseline ~eps:1e-6 g b in
  let prep = Laplacian.Solver.prepare_cg ~eps:1e-6 g in
  let r1 = Laplacian.Solver.solve_cg_prepared prep b in
  let r2 = Laplacian.Solver.solve_cg_prepared prep b in
  Alcotest.(check bool)
    "x bit-identical" true
    (r.Laplacian.Solver.x = r1.Laplacian.Solver.x);
  Alcotest.(check bool)
    "repeat call bit-identical" true
    (r1.Laplacian.Solver.x = r2.Laplacian.Solver.x);
  Alcotest.(check (float 0.))
    "residual" r.Laplacian.Solver.residual r1.Laplacian.Solver.residual;
  Alcotest.(check int)
    "rounds" r.Laplacian.Solver.rounds r1.Laplacian.Solver.rounds

let test_prepared_distinct_rhs () =
  (* One handle, many right-hand sides: each must match the from-scratch
     solve for that rhs. *)
  let g = Gen.connected_gnp ~seed:34L 20 0.35 in
  let prep = Laplacian.Solver.prepare g in
  List.iter
    (fun k ->
      let b =
        Linalg.Vec.init 20 (fun i -> float_of_int (((i + k) * 17) mod 13))
      in
      let r = Laplacian.Solver.solve g b in
      let r' = Laplacian.Solver.solve_prepared prep b in
      Alcotest.(check bool)
        (Printf.sprintf "rhs %d bit-identical" k)
        true
        (r.Laplacian.Solver.x = r'.Laplacian.Solver.x))
    [ 0; 1; 5 ]

let test_prepared_accessors () =
  let g = Gen.connected_gnp ~seed:35L 16 0.4 in
  let prep = Laplacian.Solver.prepare g in
  let b = Linalg.Vec.init 16 (fun i -> float_of_int (i mod 5) -. 2.) in
  let r = Laplacian.Solver.solve_prepared prep b in
  Alcotest.(check int)
    "dim" 16
    (Laplacian.Solver.prepared_dim prep);
  Alcotest.(check (float 0.))
    "kappa matches report" r.Laplacian.Solver.kappa
    (Laplacian.Solver.prepared_kappa prep);
  Alcotest.(check int)
    "sparsifier edges match report" r.Laplacian.Solver.sparsifier_edges
    (Laplacian.Solver.prepared_sparsifier_edges prep)

let suite =
  suite
  @ [
      Alcotest.test_case "prepared matches solve" `Quick
        test_prepared_matches_solve;
      Alcotest.test_case "prepared cg matches baseline" `Quick
        test_prepared_cg_matches_baseline;
      Alcotest.test_case "prepared handle, many rhs" `Quick
        test_prepared_distinct_rhs;
      Alcotest.test_case "prepared accessors" `Quick test_prepared_accessors;
    ]
