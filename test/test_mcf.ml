(* Tests for min-cost flow: the SSP oracle and the Theorem 1.3 pipeline. *)

module Graph_gen = Gen

let arc src dst cap cost = { Digraph.src; dst; cap; cost }

(* Simple unit-capacity instance: route 1 unit from 0 to 3; cheap path
   0→2→3 (cost 2) vs expensive 0→1→3 (cost 20). *)
let two_paths () =
  ( Digraph.create 4
      [ arc 0 1 1 10; arc 1 3 1 10; arc 0 2 1 1; arc 2 3 1 1 ],
    [| 1; 0; 0; -1 |] )

let test_ssp_two_paths () =
  let g, sigma = two_paths () in
  match Mcf_ssp.solve g ~sigma with
  | None -> Alcotest.fail "feasible instance reported infeasible"
  | Some r ->
    Alcotest.(check (float 1e-9)) "optimal cost" 2. r.Mcf_ssp.cost;
    Alcotest.(check (float 1e-9)) "no demand violation" 0.
      (Flow.demand_violation g ~sigma ~f:r.Mcf_ssp.f)

let test_ssp_infeasible () =
  let g = Digraph.create 3 [ arc 0 1 1 1 ] in
  Alcotest.(check bool) "infeasible" true
    (Mcf_ssp.solve g ~sigma:[| 1; 0; -1 |] = None)

let test_ssp_max_flow_min_cost () =
  let g, _ = two_paths () in
  let _, v, c = Mcf_ssp.solve_max_flow_min_cost g ~s:0 ~t:3 in
  Alcotest.(check int) "value 2" 2 v;
  Alcotest.(check (float 1e-9)) "cost 22" 22. c

let test_ssp_matches_bruteforce_choice () =
  (* Parallel unit arcs of different costs: picking k cheapest. *)
  let g =
    Digraph.create 2 [ arc 0 1 1 5; arc 0 1 1 1; arc 0 1 1 3 ]
  in
  match Mcf_ssp.solve g ~sigma:[| 2; -2 |] with
  | None -> Alcotest.fail "feasible"
  | Some r -> Alcotest.(check (float 1e-9)) "1+3" 4. r.Mcf_ssp.cost

let check_ipm g sigma =
  match (Mcf_ipm.solve g ~sigma, Mcf_ssp.solve g ~sigma) with
  | None, None -> None
  | Some _, None -> Alcotest.fail "ipm found flow on infeasible instance"
  | None, Some _ -> Alcotest.fail "ipm missed a feasible instance"
  | Some r, Some oracle ->
    Alcotest.(check (float 1e-6))
      "optimal cost matches SSP oracle" oracle.Mcf_ssp.cost r.Mcf_ipm.cost;
    Alcotest.(check bool) "integral" true (Flow.is_integral r.Mcf_ipm.f);
    Alcotest.(check (float 1e-9)) "demands met" 0.
      (Flow.demand_violation g ~sigma ~f:r.Mcf_ipm.f);
    Alcotest.(check (float 1e-9)) "caps respected" 0.
      (Flow.capacity_violation g ~f:r.Mcf_ipm.f);
    Some r

let test_ipm_two_paths () =
  let g, sigma = two_paths () in
  ignore (check_ipm g sigma)

let test_ipm_parallel_arcs () =
  let g =
    Digraph.create 2 [ arc 0 1 1 5; arc 0 1 1 1; arc 0 1 1 3 ]
  in
  ignore (check_ipm g [| 2; -2 |])

let test_ipm_infeasible () =
  let g = Digraph.create 3 [ arc 0 1 1 1 ] in
  Alcotest.(check bool) "infeasible detected" true
    (Mcf_ipm.solve g ~sigma:[| 1; 0; -1 |] = None)

let test_ipm_zero_demand () =
  (* Zero demand: optimal flow is 0 (all costs positive). *)
  let g, _ = two_paths () in
  match check_ipm g [| 0; 0; 0; 0 |] with
  | None -> Alcotest.fail "zero demand is feasible"
  | Some r -> Alcotest.(check (float 1e-9)) "zero cost" 0. r.Mcf_ipm.cost

let test_ipm_random_family () =
  List.iter
    (fun seed ->
      let g, sigma = Graph_gen.random_mcf ~seed:(Int64.of_int seed) 10 25 10 in
      ignore (check_ipm g sigma))
    [ 1; 2; 3; 4; 5 ]

let test_ipm_bipartite_assignment () =
  (* Unit bipartite matching with costs: classic CMSV motivation. *)
  let k = 4 in
  let n = (2 * k) + 2 in
  let s = 0 and t = n - 1 in
  let left i = 1 + i and right j = 1 + k + j in
  let arcs = ref [] in
  for i = 0 to k - 1 do
    arcs := arc s (left i) 1 0 :: arc (right i) t 1 0 :: !arcs;
    for j = 0 to k - 1 do
      arcs := arc (left i) (right j) 1 (1 + ((i + (2 * j)) mod 7)) :: !arcs
    done
  done;
  let g = Digraph.create n !arcs in
  let sigma = Array.make n 0 in
  sigma.(s) <- k;
  sigma.(t) <- -k;
  ignore (check_ipm g sigma)

let test_ipm_phase_accounting () =
  let g, sigma = two_paths () in
  match Mcf_ipm.solve g ~sigma with
  | None -> Alcotest.fail "feasible"
  | Some r ->
    let total =
      List.fold_left (fun a (_, x) -> a + x) 0 r.Mcf_ipm.phase_rounds
    in
    Alcotest.(check int) "phases sum" r.Mcf_ipm.rounds total;
    Alcotest.(check bool) "ipm phase present" true
      (List.mem_assoc "ipm" r.Mcf_ipm.phase_rounds)

let test_ipm_rejects_non_unit () =
  let g = Digraph.create 2 [ arc 0 1 3 1 ] in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Mcf_ipm.solve g ~sigma:[| 1; -1 |]);
       false
     with Invalid_argument _ -> true)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"ipm cost = ssp cost (random instances)" ~count:8
      small_nat
      (fun seed ->
        let g, sigma =
          Graph_gen.random_mcf ~seed:(Int64.of_int (seed + 29)) 8 18 8
        in
        match (Mcf_ipm.solve g ~sigma, Mcf_ssp.solve g ~sigma) with
        | None, None -> true
        | Some r, Some oracle ->
          Float.abs (r.Mcf_ipm.cost -. oracle.Mcf_ssp.cost) < 1e-6
          && Flow.demand_violation g ~sigma ~f:r.Mcf_ipm.f < 1e-9
        | _ -> false);
  ]

let suite =
  [
    Alcotest.test_case "ssp two paths" `Quick test_ssp_two_paths;
    Alcotest.test_case "ssp infeasible" `Quick test_ssp_infeasible;
    Alcotest.test_case "ssp max flow min cost" `Quick
      test_ssp_max_flow_min_cost;
    Alcotest.test_case "ssp picks cheapest arcs" `Quick
      test_ssp_matches_bruteforce_choice;
    Alcotest.test_case "ipm two paths" `Quick test_ipm_two_paths;
    Alcotest.test_case "ipm parallel arcs" `Quick test_ipm_parallel_arcs;
    Alcotest.test_case "ipm infeasible" `Quick test_ipm_infeasible;
    Alcotest.test_case "ipm zero demand" `Quick test_ipm_zero_demand;
    Alcotest.test_case "ipm random family" `Quick test_ipm_random_family;
    Alcotest.test_case "ipm bipartite assignment" `Quick
      test_ipm_bipartite_assignment;
    Alcotest.test_case "ipm phase accounting" `Quick test_ipm_phase_accounting;
    Alcotest.test_case "ipm rejects non-unit caps" `Quick
      test_ipm_rejects_non_unit;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* ---------------------------------------------- min-cost max flow (§2.4) *)

let test_mcmf_matches_ssp () =
  let g = Graph_gen.unit_bipartite ~seed:41L 5 0.5 in
  let s = 0 and t = Digraph.n g - 1 in
  match Mcf_ipm.solve_max_flow_min_cost g ~s ~t with
  | None -> Alcotest.fail "always feasible at value 0"
  | Some (r, probes) ->
    let _, v_oracle, c_oracle = Mcf_ssp.solve_max_flow_min_cost g ~s ~t in
    let v =
      int_of_float (Float.round (Flow.value g ~s ~f:r.Mcf_ipm.f))
    in
    Alcotest.(check int) "max value" v_oracle v;
    Alcotest.(check (float 1e-6)) "min cost at max value" c_oracle
      r.Mcf_ipm.cost;
    Alcotest.(check bool) "binary search logarithmic" true
      (probes <= 2 + Runtime.Cost.log2_ceil (v_oracle + 2) * 2)

let test_mcmf_with_costs () =
  let g =
    Digraph.create 4
      [ arc 0 1 1 7; arc 1 3 1 7; arc 0 2 1 1; arc 2 3 1 2 ]
  in
  match Mcf_ipm.solve_max_flow_min_cost g ~s:0 ~t:3 with
  | None -> Alcotest.fail "feasible"
  | Some (r, _) ->
    (* Max flow is 2 (both paths); min cost = 7+7+1+2 = 17. *)
    Alcotest.(check (float 1e-6)) "cost" 17. r.Mcf_ipm.cost

let suite =
  suite
  @ [
      Alcotest.test_case "min-cost max-flow = ssp" `Quick test_mcmf_matches_ssp;
      Alcotest.test_case "min-cost max-flow with costs" `Quick
        test_mcmf_with_costs;
    ]

(* ----------------------------- verbatim CMSV bipartite engine (Appendix C) *)

let check_cmsv g sigma =
  match (Cmsv_bipartite.solve g ~sigma, Mcf_ssp.solve g ~sigma) with
  | None, None -> ()
  | Some r, Some oracle ->
    Alcotest.(check (float 1e-6)) "cmsv cost = oracle"
      oracle.Mcf_ssp.cost r.Cmsv_bipartite.cost;
    Alcotest.(check (float 1e-9)) "demands met" 0.
      (Flow.demand_violation g ~sigma ~f:r.Cmsv_bipartite.f);
    Alcotest.(check bool) "integral" true (Flow.is_integral r.Cmsv_bipartite.f)
  | Some _, None -> Alcotest.fail "cmsv feasible, oracle infeasible"
  | None, Some _ -> Alcotest.fail "cmsv infeasible, oracle feasible"

let test_cmsv_two_paths () =
  let g, sigma = two_paths () in
  check_cmsv g sigma

let test_cmsv_random_family () =
  List.iter
    (fun seed ->
      let g, sigma = Graph_gen.random_mcf ~seed:(Int64.of_int seed) 9 22 9 in
      check_cmsv g sigma)
    [ 1; 2; 3 ]

let test_cmsv_infeasible () =
  let g = Digraph.create 3 [ arc 0 1 1 1 ] in
  Alcotest.(check bool) "infeasible detected" true
    (Cmsv_bipartite.solve g ~sigma:[| 1; 0; -1 |] = None)

let test_cmsv_agrees_with_direct_engine () =
  let g, sigma = Graph_gen.random_mcf ~seed:77L 10 26 7 in
  match (Cmsv_bipartite.solve g ~sigma, Mcf_ipm.solve g ~sigma) with
  | Some a, Some b ->
    Alcotest.(check (float 1e-6)) "engines agree" b.Mcf_ipm.cost
      a.Cmsv_bipartite.cost
  | None, None -> ()
  | _ -> Alcotest.fail "engines disagree on feasibility"

let suite =
  suite
  @ [
      Alcotest.test_case "cmsv verbatim: two paths" `Quick test_cmsv_two_paths;
      Alcotest.test_case "cmsv verbatim: random family" `Quick
        test_cmsv_random_family;
      Alcotest.test_case "cmsv verbatim: infeasible" `Quick test_cmsv_infeasible;
      Alcotest.test_case "cmsv verbatim = direct engine" `Quick
        test_cmsv_agrees_with_direct_engine;
    ]
