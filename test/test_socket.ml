(* Socket-transport specifics that need real worker processes: frame
   coalescing (the shard-level Lenzen batching, asserted through the
   wire.frames metric), worker-death surfacing as [Shard_down], the TCP
   leg, and fault-injection composing unchanged over the sharded
   transport. Runs standalone: creating a session re-execs this binary
   into workers, and the equivalence sweep (test_kernel_equiv.ml) already
   owns the bit-identity legs. *)

module Sock = Clique.Socket
module Shard = Runtime.Shard
module M = Runtime.Mailbox
module S = Fault.Schedule
module FSock = Fault.Inject.Make (Clique.Socket)

let inboxes_t = Alcotest.(array (list (pair int (array int))))

let stat name t =
  match List.assoc_opt name (Sock.stats t) with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing stat %s" name)

(* Every ordered pair carries one 1-word message: maximal cross-shard
   traffic, still within the default width. *)
let all_to_all n =
  Array.init n (fun v ->
      List.filter_map
        (fun d -> if d = v then None else Some (d, [| (v * 100) + d |]))
        (List.init n (fun d -> d)))

(* ---------------------------------------------------------- coalescing *)

(* One round = one request + one reply per worker on the coordinator
   links, plus at most one mesh frame per ordered (shard, shard) pair
   with cross traffic — here both pairs, despite 32 crossing messages. *)
let test_coalescing_all_to_all () =
  let n = 8 in
  let t = Sock.create ~shards:2 n in
  let before = stat "wire.frames" t in
  let out = all_to_all n in
  let expected, words = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "inboxes parity" expected (Sock.exchange t out);
  Alcotest.(check int) "frames: 2 requests + 2 replies + 2 mesh" 6
    (stat "wire.frames" t - before);
  Alcotest.(check int) "crossings counted" 32 (stat "shard.crossings" t);
  Alcotest.(check int) "words" words (Sock.words_sent t);
  Alcotest.(check int) "one round" 1 (Sock.rounds t);
  Sock.close t

let test_coalescing_no_cross_traffic () =
  let n = 8 in
  let t = Sock.create ~shards:2 n in
  (* every node talks only within its own shard: no mesh frames at all *)
  let local =
    Array.init n (fun v ->
        let lo = if v < 4 then 0 else 4 in
        [ (lo + ((v - lo + 1) mod 4), [| v |]) ])
  in
  let before = stat "wire.frames" t in
  let expected, _ = M.deliver ~n ~width:2 local in
  Alcotest.check inboxes_t "local inboxes parity" expected
    (Sock.exchange t local);
  Alcotest.(check int) "frames: requests + replies only" 4
    (stat "wire.frames" t - before);
  Alcotest.(check int) "no crossings" 0 (stat "shard.crossings" t);
  Sock.close t

(* -------------------------------------------------------- error parity *)

let capture f = match f () with _ -> "no exception" | exception e -> Printexc.to_string e

let test_width_error_across_processes () =
  let n = 6 in
  let t = Sock.create ~shards:3 n in
  let bad = Array.make n [] in
  (* 1 -> 5 accumulates 1+2 words at width 2 (gidx 1); 4 -> 2 carries 3
     words outright (gidx 2): the minimal-gidx violation must win, with
     the exact in-process exception. *)
  bad.(1) <- [ (5, [| 7 |]); (5, [| 8; 9 |]) ];
  bad.(4) <- [ (2, [| 1; 2; 3 |]) ];
  Alcotest.(check string) "same first width error"
    (capture (fun () -> M.deliver ~n ~width:2 bad))
    (capture (fun () -> Sock.exchange t bad));
  let oob = Array.make n [] in
  oob.(3) <- [ (n + 1, [| 1 |]) ];
  Alcotest.(check string) "same range error"
    (capture (fun () -> M.deliver ~n ~width:2 oob))
    (capture (fun () -> Sock.exchange t oob));
  (* an application error leaves the session usable *)
  let out = all_to_all n in
  let expected, _ = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "session survives the error round" expected
    (Sock.exchange t out);
  let values = Array.init n (fun v -> [| v; v * v; v + 7 |]) in
  Alcotest.(check string) "same broadcast width error"
    (capture (fun () -> M.broadcast ~n ~width:2 values))
    (capture (fun () -> Sock.broadcast t values));
  Sock.close t

(* -------------------------------------------------------- worker death *)

let stall_schedule =
  S.create ~seed:7 [ S.rule S.Stall 0.3; S.rule S.Drop 0.1 ]

(* Kill a worker mid-session under an active fault schedule: the next
   round must surface a structured [Shard_down] naming the shard and the
   round — never hang — and the session must stay down. *)
let test_worker_death_surfaces () =
  let n = 8 in
  let t = Sock.create ~shards:2 n in
  let tr = FSock.inject ~schedule:stall_schedule t in
  for _ = 1 to 3 do
    ignore (FSock.exchange tr (all_to_all n))
  done;
  Alcotest.(check bool) "schedule actually injects" true
    (FSock.injected_total tr > 0);
  let round_before = Sock.rounds t in
  (match Sock.pids t with
  | [ _; pid1 ] ->
    Unix.kill pid1 Sys.sigkill;
    ignore (Unix.waitpid [] pid1)
  | pids ->
    Alcotest.fail (Printf.sprintf "expected 2 workers, got %d" (List.length pids)));
  (match FSock.exchange tr (all_to_all n) with
  | _ -> Alcotest.fail "exchange through a dead worker must raise"
  | exception Shard.Shard_down { shard; round; during } ->
    Alcotest.(check int) "names the dead shard" 1 shard;
    Alcotest.(check int) "names the round it died in" round_before round;
    Alcotest.(check string) "during the exchange" "exchange" during);
  (match Sock.exchange t (all_to_all n) with
  | _ -> Alcotest.fail "a down session must stay down"
  | exception Shard.Shard_down { shard; _ } ->
    Alcotest.(check int) "still names the shard" 1 shard);
  Sock.close t

(* ------------------------------------------------------------- tcp leg *)

let test_tcp_leg () =
  let n = 6 in
  let t = Sock.create ~shards:2 ~addr:"127.0.0.1:0" n in
  let out = all_to_all n in
  let expected, _ = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "tcp inboxes parity" expected (Sock.exchange t out);
  let values = Array.init n (fun v -> [| v; v * v |]) in
  Alcotest.(check (array (array int))) "tcp broadcast parity"
    (fst (M.broadcast ~n ~width:2 values))
    (Sock.broadcast t values);
  let msgs = [ (0, 5, [| 3 |]); (4, 1, [| 9; 9 |]) ] in
  let expected, _, batches = M.route ~n ~width:2 msgs in
  Alcotest.check inboxes_t "tcp route parity" expected (Sock.route t msgs);
  Alcotest.(check int) "route rounds charged identically"
    (1 + Runtime.Cost.broadcast_rounds
    + (batches * Runtime.Cost.lenzen_routing_rounds))
    (Sock.rounds t);
  Sock.close t

(* ------------------------------------------------- fault composition *)

let chaos_schedule =
  S.create ~seed:23
    [ S.rule S.Drop 0.15; S.rule S.Corrupt 0.15; S.rule S.Stall 0.05 ]

(* Fault.Inject.Make over the sharded transport must inject exactly what
   it injects over the in-process kernel: same counts, same event log. *)
let test_fault_injection_composes () =
  let n = 10 in
  let module FSim = Fault.Inject.Make (Clique.Sim) in
  let drive exchange injected events rounds =
    for r = 1 to 5 do
      ignore (exchange (Array.init n (fun v -> [ ((v + r) mod n, [| v; r |]) ])))
    done;
    (injected (), events (), rounds ())
  in
  let sim = Clique.Sim.create ~kernel:Clique.Sim.Arena n in
  let ftr = FSim.inject ~schedule:chaos_schedule sim in
  let ref_run =
    drive (FSim.exchange ftr)
      (fun () -> FSim.injected ftr)
      (fun () ->
        List.map (Format.asprintf "%a" Fault.Inject.pp_event) (FSim.events ftr))
      (fun () -> FSim.rounds ftr)
  in
  let sock = Sock.create ~shards:2 n in
  let str = FSock.inject ~schedule:chaos_schedule sock in
  let got =
    drive (FSock.exchange str)
      (fun () -> FSock.injected str)
      (fun () ->
        List.map (Format.asprintf "%a" Fault.Inject.pp_event) (FSock.events str))
      (fun () -> FSock.rounds str)
  in
  Sock.close sock;
  let counts (c, _, _) = c and events (_, e, _) = e and rounds (_, _, r) = r in
  Alcotest.(check (list (pair string int)))
    "same injected counts" (counts ref_run) (counts got);
  Alcotest.(check (list string)) "same event log" (events ref_run) (events got);
  Alcotest.(check int) "same rounds" (rounds ref_run) (rounds got)

(* ----------------------------------------------------------- lifecycle *)

let test_shutdown_all () =
  let a = Sock.create ~shards:2 6 in
  let b = Sock.create ~shards:3 6 in
  ignore (Sock.exchange a (all_to_all 6));
  Sock.shutdown_all ();
  List.iter
    (fun t ->
      match Sock.exchange t (all_to_all 6) with
      | _ -> Alcotest.fail "closed session must refuse work"
      | exception Shard.Shard_down _ -> ())
    [ a; b ]

let test_shards_clamped () =
  let t = Sock.create ~shards:7 3 in
  Alcotest.(check int) "shards clamped to n" 3 (Sock.shards t);
  Alcotest.(check int) "one pid per shard" 3 (List.length (Sock.pids t));
  let out = all_to_all 3 in
  let expected, _ = M.deliver ~n:3 ~width:2 out in
  Alcotest.check inboxes_t "clamped session delivers" expected
    (Sock.exchange t out);
  Sock.close t

let () =
  Alcotest.run "socket"
    [
      ( "coalescing",
        [
          Alcotest.test_case "all-to-all: one mesh frame per pair" `Quick
            test_coalescing_all_to_all;
          Alcotest.test_case "no cross traffic: no mesh frames" `Quick
            test_coalescing_no_cross_traffic;
        ] );
      ( "errors",
        [
          Alcotest.test_case "width/range errors identical across processes"
            `Quick test_width_error_across_processes;
          Alcotest.test_case "worker death surfaces as Shard_down" `Quick
            test_worker_death_surfaces;
        ] );
      ( "transports",
        [
          Alcotest.test_case "tcp leg parity" `Quick test_tcp_leg;
          Alcotest.test_case "fault injection composes bit-identically" `Quick
            test_fault_injection_composes;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown_all closes every session" `Quick
            test_shutdown_all;
          Alcotest.test_case "shards clamp to n" `Quick test_shards_clamped;
        ] );
    ]
