(* Socket-transport specifics that need real worker processes: frame
   coalescing (the shard-level Lenzen batching, asserted through the
   wire.frames metric), worker-death surfacing as [Shard_down], the TCP
   leg, and fault-injection composing unchanged over the sharded
   transport. Runs standalone: creating a session re-execs this binary
   into workers, and the equivalence sweep (test_kernel_equiv.ml) already
   owns the bit-identity legs. *)

module Sock = Clique.Socket
module Shard = Runtime.Shard
module M = Runtime.Mailbox
module S = Fault.Schedule
module FSock = Fault.Inject.Make (Clique.Socket)
module RSock = Runtime.Make (Clique.Socket)
module Rec = Fault.Recover.Make (RSock)

(* Watchdog: every supervised wait in the transport is deadline-bounded,
   so the whole suite finishing is itself part of the contract. A stuck
   test is a bug; SIGALRM turns it into a loud failure instead of a CI
   timeout with no backtrace. *)
let () =
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         prerr_endline "test_socket: watchdog expired — a wait is unbounded";
         exit 2));
  ignore (Unix.alarm 240)

(* Diversion: spawned as a mute client, this process connects to the
   given rendezvous and never sends a byte — the bootstrap-hang
   regression (a pre-supervision coordinator blocked forever on it). *)
let () =
  match Sys.getenv_opt "CC_TEST_MUTE_CLIENT" with
  | None -> ()
  | Some addr ->
    let host, port = Wire.Link.parse_addr addr in
    let rec connect () =
      (* A mute client must bypass Wire.Link on purpose. *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 (* cc_lint: allow L9 *) in
      match
        Unix.connect fd (* cc_lint: allow L9 *)
          (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
      with
      | () -> fd
      | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.02;
        connect ()
    in
    let _fd = connect () in
    Unix.sleep 600;
    exit 0

(* An ephemeral TCP port for tests that must know the address before the
   coordinator binds it (bind-then-close; the reuse race is benign at
   test scale). *)
let ephemeral_port () =
  (* Probing the OS for a free port: no bytes move over these calls. *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 (* cc_lint: allow L9 *) in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) (* cc_lint: allow L9 *);
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close fd;
  port

let spawn_with_env extra =
  let env =
    Array.append (Unix.environment ()) (Array.of_list extra)
  in
  Unix.create_process_env Sys.executable_name [| Sys.executable_name |] env
    Unix.stdin Unix.stdout Unix.stderr

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let inboxes_t = Alcotest.(array (list (pair int (array int))))

let stat name t =
  match List.assoc_opt name (Sock.stats t) with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing stat %s" name)

(* Every ordered pair carries one 1-word message: maximal cross-shard
   traffic, still within the default width. *)
let all_to_all n =
  Array.init n (fun v ->
      List.filter_map
        (fun d -> if d = v then None else Some (d, [| (v * 100) + d |]))
        (List.init n (fun d -> d)))

(* ---------------------------------------------------------- coalescing *)

(* One round = one request + one reply per worker on the coordinator
   links, plus at most one mesh frame per ordered (shard, shard) pair
   with cross traffic — here both pairs, despite 32 crossing messages. *)
let test_coalescing_all_to_all () =
  let n = 8 in
  let t = Sock.create ~shards:2 n in
  let before = stat "wire.frames" t in
  let out = all_to_all n in
  let expected, words = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "inboxes parity" expected (Sock.exchange t out);
  Alcotest.(check int) "frames: 2 requests + 2 replies + 2 mesh" 6
    (stat "wire.frames" t - before);
  Alcotest.(check int) "crossings counted" 32 (stat "shard.crossings" t);
  Alcotest.(check int) "words" words (Sock.words_sent t);
  Alcotest.(check int) "one round" 1 (Sock.rounds t);
  Sock.close t

let test_coalescing_no_cross_traffic () =
  let n = 8 in
  let t = Sock.create ~shards:2 n in
  (* every node talks only within its own shard: no mesh frames at all *)
  let local =
    Array.init n (fun v ->
        let lo = if v < 4 then 0 else 4 in
        [ (lo + ((v - lo + 1) mod 4), [| v |]) ])
  in
  let before = stat "wire.frames" t in
  let expected, _ = M.deliver ~n ~width:2 local in
  Alcotest.check inboxes_t "local inboxes parity" expected
    (Sock.exchange t local);
  Alcotest.(check int) "frames: requests + replies only" 4
    (stat "wire.frames" t - before);
  Alcotest.(check int) "no crossings" 0 (stat "shard.crossings" t);
  Sock.close t

(* -------------------------------------------------------- error parity *)

let capture f = match f () with _ -> "no exception" | exception e -> Printexc.to_string e

let test_width_error_across_processes () =
  let n = 6 in
  let t = Sock.create ~shards:3 n in
  let bad = Array.make n [] in
  (* 1 -> 5 accumulates 1+2 words at width 2 (gidx 1); 4 -> 2 carries 3
     words outright (gidx 2): the minimal-gidx violation must win, with
     the exact in-process exception. *)
  bad.(1) <- [ (5, [| 7 |]); (5, [| 8; 9 |]) ];
  bad.(4) <- [ (2, [| 1; 2; 3 |]) ];
  Alcotest.(check string) "same first width error"
    (capture (fun () -> M.deliver ~n ~width:2 bad))
    (capture (fun () -> Sock.exchange t bad));
  let oob = Array.make n [] in
  oob.(3) <- [ (n + 1, [| 1 |]) ];
  Alcotest.(check string) "same range error"
    (capture (fun () -> M.deliver ~n ~width:2 oob))
    (capture (fun () -> Sock.exchange t oob));
  (* an application error leaves the session usable *)
  let out = all_to_all n in
  let expected, _ = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "session survives the error round" expected
    (Sock.exchange t out);
  let values = Array.init n (fun v -> [| v; v * v; v + 7 |]) in
  Alcotest.(check string) "same broadcast width error"
    (capture (fun () -> M.broadcast ~n ~width:2 values))
    (capture (fun () -> Sock.broadcast t values));
  Sock.close t

(* -------------------------------------------------------- worker death *)

let stall_schedule =
  S.create ~seed:7 [ S.rule S.Stall 0.3; S.rule S.Drop 0.1 ]

(* Kill a worker mid-session under an active fault schedule: the next
   round must surface a structured [Shard_down] naming the shard and the
   round — never hang — and the session must stay down. *)
let test_worker_death_surfaces () =
  let n = 8 in
  let t = Sock.create ~shards:2 n in
  let tr = FSock.inject ~schedule:stall_schedule t in
  for _ = 1 to 3 do
    ignore (FSock.exchange tr (all_to_all n))
  done;
  Alcotest.(check bool) "schedule actually injects" true
    (FSock.injected_total tr > 0);
  let round_before = Sock.rounds t in
  (match Sock.pids t with
  | [ _; pid1 ] ->
    Unix.kill pid1 Sys.sigkill;
    ignore (Unix.waitpid [] pid1)
  | pids ->
    Alcotest.fail (Printf.sprintf "expected 2 workers, got %d" (List.length pids)));
  (match FSock.exchange tr (all_to_all n) with
  | _ -> Alcotest.fail "exchange through a dead worker must raise"
  | exception Shard.Shard_down { shard; round; during } ->
    Alcotest.(check int) "names the dead shard" 1 shard;
    Alcotest.(check int) "names the round it died in" round_before round;
    Alcotest.(check string) "during the exchange" "exchange" during);
  (match Sock.exchange t (all_to_all n) with
  | _ -> Alcotest.fail "a down session must stay down"
  | exception Shard.Shard_down { shard; _ } ->
    Alcotest.(check int) "still names the shard" 1 shard);
  Sock.close t

(* ---------------------------------------------------------- kill matrix *)

(* Kill shard [victim] of session [t] with SIGKILL, mid-session. *)
let kill_shard t victim =
  match List.nth (Sock.pids t) victim with
  | pid when pid > 0 ->
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid)
  | _ -> Alcotest.fail "victim shard has no local pid"

(* Respawn: a SIGKILLed worker is replaced and the aborted round replayed
   — the output is bit-identical to an undisturbed run, the replay is
   charged to the "recovery" ledger phase, and the whole thing composes
   with the certified verify-and-retry driver unchanged. *)
let test_respawn_bit_identical () =
  let n = 8 in
  let t =
    Sock.create ~shards:2 ~policy:Shard.Respawn ~timeout:10.0 ~backoff:0.05 n
  in
  let rt = RSock.create t in
  let out = all_to_all n in
  let reference, _ = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "clean round parity" reference
    (RSock.exchange rt out);
  let epoch_before = Sock.epoch t in
  kill_shard t 1;
  (* drive the post-kill round through the certified retry driver: the
     checker certifies the recovered output against the fault-free
     reference, so a wrong replay cannot pass silently *)
  let outcome =
    Rec.run ~name:"kill-respawn" rt
      ~check:(fun got ->
        if got = reference then Fault.Check.Pass
        else
          Fault.Check.Fail
            { invariant = "bit-identity"; counterexample = "inboxes differ" })
      (fun () -> RSock.exchange rt out)
  in
  Alcotest.check inboxes_t "recovered round bit-identical" reference
    outcome.Fault.Recover.value;
  Alcotest.(check bool) "checker certified on the first attempt" false
    outcome.Fault.Recover.recovered;
  Alcotest.(check bool) "replay charged to the recovery phase" true
    (RSock.phase_rounds rt "recovery" > 0);
  Alcotest.(check bool) "respawn counted" true (stat "shard.respawn" t >= 1);
  Alcotest.(check bool) "epoch bumped" true (Sock.epoch t > epoch_before);
  Alcotest.(check int) "still two live workers" 2 (Sock.live_workers t);
  Alcotest.(check int) "transport recovery counter matches the ledger"
    (RSock.phase_rounds rt "recovery")
    (Sock.recovery_rounds t);
  (* the session keeps working at full strength afterwards *)
  Alcotest.check inboxes_t "next round parity" reference
    (RSock.exchange rt out);
  let values = Array.init n (fun v -> [| v; v * v |]) in
  Alcotest.(check (array (array int))) "broadcast parity after recovery"
    (fst (M.broadcast ~n ~width:2 values))
    (RSock.broadcast rt values);
  Sock.close t

(* Drain: the dead shard's range is reassigned to a survivor and the
   session continues degraded — same outputs, fewer workers. *)
let test_drain_continues_degraded () =
  let n = 9 in
  let t = Sock.create ~shards:3 ~policy:Shard.Drain ~timeout:10.0 n in
  let out = all_to_all n in
  let reference, _ = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "clean round parity" reference (Sock.exchange t out);
  let epoch_before = Sock.epoch t in
  kill_shard t 1;
  Alcotest.check inboxes_t "drained round bit-identical" reference
    (Sock.exchange t out);
  Alcotest.(check int) "one shard drained" 1 (stat "shard.drain" t);
  Alcotest.(check int) "two survivors" 2 (Sock.live_workers t);
  Alcotest.(check bool) "epoch bumped" true (Sock.epoch t > epoch_before);
  Alcotest.(check bool) "replay counted as recovery" true
    (Sock.recovery_rounds t >= 1);
  (* degraded but fully functional: exchange, broadcast, width errors *)
  Alcotest.check inboxes_t "next degraded round parity" reference
    (Sock.exchange t out);
  let values = Array.init n (fun v -> [| v; v + 1 |]) in
  Alcotest.(check (array (array int))) "degraded broadcast parity"
    (fst (M.broadcast ~n ~width:2 values))
    (Sock.broadcast t values);
  let bad = Array.make n [] in
  bad.(1) <- [ (5, [| 1; 2; 3 |]) ];
  Alcotest.(check string) "degraded width error identical"
    (capture (fun () -> M.deliver ~n ~width:2 bad))
    (capture (fun () -> Sock.exchange t bad));
  Sock.close t

(* Draining down to a single survivor still works; killing the last one
   has nowhere left to go and fails structurally. *)
let test_drain_exhaustion_fails () =
  let n = 6 in
  let t = Sock.create ~shards:2 ~policy:Shard.Drain ~timeout:10.0 n in
  let out = all_to_all n in
  let reference, _ = M.deliver ~n ~width:2 out in
  kill_shard t 0;
  Alcotest.check inboxes_t "single survivor delivers" reference
    (Sock.exchange t out);
  Alcotest.(check int) "one live worker" 1 (Sock.live_workers t);
  kill_shard t 1;
  (match Sock.exchange t out with
  | _ -> Alcotest.fail "no survivor left: must raise"
  | exception Shard.Shard_down { during; _ } ->
    Alcotest.(check string) "down during the exchange" "exchange" during);
  Sock.close t

(* ------------------------------------------------------------ heartbeat *)

let test_heartbeat_probes_and_recovers () =
  let n = 6 in
  let t =
    Sock.create ~shards:2 ~policy:Shard.Respawn ~timeout:10.0 ~backoff:0.05 n
  in
  Sock.heartbeat t;
  Alcotest.(check int) "both workers probed" 2 (stat "shard.heartbeat.sent" t);
  Alcotest.(check int) "both acked" 2 (stat "shard.heartbeat.acked" t);
  Alcotest.(check int) "none missed" 0 (stat "shard.heartbeat.missed" t);
  let rounds_before = Sock.rounds t in
  kill_shard t 0;
  Sock.heartbeat t;
  Alcotest.(check bool) "missed heartbeat detected" true
    (stat "shard.heartbeat.missed" t >= 1);
  Alcotest.(check bool) "dead worker respawned" true
    (stat "shard.respawn" t >= 1);
  Alcotest.(check int) "idle recovery charges no round" rounds_before
    (Sock.rounds t);
  Alcotest.(check int) "and no recovery round" 0 (Sock.recovery_rounds t);
  let out = all_to_all n in
  let reference, _ = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "session intact after heartbeat recovery"
    reference (Sock.exchange t out);
  Sock.close t

(* ---------------------------------------------------- bootstrap bounds *)

(* The bootstrap-hang regression: a client that connects to the
   rendezvous but never sends its hello. The coordinator must give up at
   the timeout with a structured round-0 Shard_down — before supervision
   it blocked forever in the hello read. *)
let test_mute_client_bootstrap_timeout () =
  let port = ephemeral_port () in
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  let mute = spawn_with_env [ "CC_TEST_MUTE_CLIENT=" ^ addr ] in
  Fun.protect
    ~finally:(fun () -> reap mute)
    (fun () ->
      (* one reserved remote slot that never joins: the mute connection is
         the only rendezvous traffic, so the hello wait must expire *)
      let t0 = Unix.gettimeofday () in
      match Sock.create ~shards:2 ~remote:1 ~addr ~timeout:2.0 6 with
      | t ->
        Sock.close t;
        Alcotest.fail "bootstrap must not succeed without the remote worker"
      | exception Shard.Shard_down { round; during; _ } ->
        Alcotest.(check string) "failed in the hello rendezvous" "hello"
          during;
        Alcotest.(check int) "at round zero" 0 round;
        Alcotest.(check bool) "after the timeout, not immediately" true
          (Unix.gettimeofday () -. t0 >= 1.5);
        Alcotest.(check bool) "bounded well under the watchdog" true
          (Unix.gettimeofday () -. t0 < 30.0))

(* ------------------------------------------------------- remote workers *)

(* A remote worker is any process dialing the TCP rendezvous: here the
   test binary itself, diverted by CC_SHARD_REMOTE_WORKER exactly as
   bin/cc_worker would. One of the two shards runs in that process; the
   session must behave identically to an all-local one. *)
let test_remote_worker_joins () =
  let port = ephemeral_port () in
  let addr = Printf.sprintf "127.0.0.1:%d" port in
  let remote =
    spawn_with_env [ "CC_SHARD_REMOTE_WORKER=tcp:" ^ addr ]
  in
  Fun.protect
    ~finally:(fun () -> reap remote)
    (fun () ->
      let n = 8 in
      let t = Sock.create ~shards:2 ~remote:1 ~addr ~timeout:10.0 n in
      Alcotest.(check (list int)) "remote slot has no local pid"
        [ -1 ]
        (List.filteri (fun i _ -> i = 1) (Sock.pids t));
      let out = all_to_all n in
      let expected, _ = M.deliver ~n ~width:2 out in
      Alcotest.check inboxes_t "mixed local/remote parity" expected
        (Sock.exchange t out);
      let values = Array.init n (fun v -> [| v; v * 3 |]) in
      Alcotest.(check (array (array int))) "mixed broadcast parity"
        (fst (M.broadcast ~n ~width:2 values))
        (Sock.broadcast t values);
      Sock.close t)

(* ------------------------------------------------------------- tcp leg *)

let test_tcp_leg () =
  let n = 6 in
  let t = Sock.create ~shards:2 ~addr:"127.0.0.1:0" n in
  let out = all_to_all n in
  let expected, _ = M.deliver ~n ~width:2 out in
  Alcotest.check inboxes_t "tcp inboxes parity" expected (Sock.exchange t out);
  let values = Array.init n (fun v -> [| v; v * v |]) in
  Alcotest.(check (array (array int))) "tcp broadcast parity"
    (fst (M.broadcast ~n ~width:2 values))
    (Sock.broadcast t values);
  let msgs = [ (0, 5, [| 3 |]); (4, 1, [| 9; 9 |]) ] in
  let expected, _, batches = M.route ~n ~width:2 msgs in
  Alcotest.check inboxes_t "tcp route parity" expected (Sock.route t msgs);
  Alcotest.(check int) "route rounds charged identically"
    (1 + Runtime.Cost.broadcast_rounds
    + (batches * Runtime.Cost.lenzen_routing_rounds))
    (Sock.rounds t);
  Sock.close t

(* ------------------------------------------------- fault composition *)

let chaos_schedule =
  S.create ~seed:23
    [ S.rule S.Drop 0.15; S.rule S.Corrupt 0.15; S.rule S.Stall 0.05 ]

(* Fault.Inject.Make over the sharded transport must inject exactly what
   it injects over the in-process kernel: same counts, same event log. *)
let test_fault_injection_composes () =
  let n = 10 in
  let module FSim = Fault.Inject.Make (Clique.Sim) in
  let drive exchange injected events rounds =
    for r = 1 to 5 do
      ignore (exchange (Array.init n (fun v -> [ ((v + r) mod n, [| v; r |]) ])))
    done;
    (injected (), events (), rounds ())
  in
  let sim = Clique.Sim.create ~kernel:Clique.Sim.Arena n in
  let ftr = FSim.inject ~schedule:chaos_schedule sim in
  let ref_run =
    drive (FSim.exchange ftr)
      (fun () -> FSim.injected ftr)
      (fun () ->
        List.map (Format.asprintf "%a" Fault.Inject.pp_event) (FSim.events ftr))
      (fun () -> FSim.rounds ftr)
  in
  let sock = Sock.create ~shards:2 n in
  let str = FSock.inject ~schedule:chaos_schedule sock in
  let got =
    drive (FSock.exchange str)
      (fun () -> FSock.injected str)
      (fun () ->
        List.map (Format.asprintf "%a" Fault.Inject.pp_event) (FSock.events str))
      (fun () -> FSock.rounds str)
  in
  Sock.close sock;
  let counts (c, _, _) = c and events (_, e, _) = e and rounds (_, _, r) = r in
  Alcotest.(check (list (pair string int)))
    "same injected counts" (counts ref_run) (counts got);
  Alcotest.(check (list string)) "same event log" (events ref_run) (events got);
  Alcotest.(check int) "same rounds" (rounds ref_run) (rounds got)

(* ----------------------------------------------------------- lifecycle *)

let test_shutdown_all () =
  let a = Sock.create ~shards:2 6 in
  let b = Sock.create ~shards:3 6 in
  ignore (Sock.exchange a (all_to_all 6));
  Sock.shutdown_all ();
  List.iter
    (fun t ->
      match Sock.exchange t (all_to_all 6) with
      | _ -> Alcotest.fail "closed session must refuse work"
      | exception Shard.Shard_down _ -> ())
    [ a; b ]

let test_shards_clamped () =
  let t = Sock.create ~shards:7 3 in
  Alcotest.(check int) "shards clamped to n" 3 (Sock.shards t);
  Alcotest.(check int) "one pid per shard" 3 (List.length (Sock.pids t));
  let out = all_to_all 3 in
  let expected, _ = M.deliver ~n:3 ~width:2 out in
  Alcotest.check inboxes_t "clamped session delivers" expected
    (Sock.exchange t out);
  Sock.close t

let () =
  Alcotest.run "socket"
    [
      ( "coalescing",
        [
          Alcotest.test_case "all-to-all: one mesh frame per pair" `Quick
            test_coalescing_all_to_all;
          Alcotest.test_case "no cross traffic: no mesh frames" `Quick
            test_coalescing_no_cross_traffic;
        ] );
      ( "errors",
        [
          Alcotest.test_case "width/range errors identical across processes"
            `Quick test_width_error_across_processes;
          Alcotest.test_case "worker death surfaces as Shard_down" `Quick
            test_worker_death_surfaces;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "respawn: certified bit-identical recovery"
            `Quick test_respawn_bit_identical;
          Alcotest.test_case "drain: degraded continuation" `Quick
            test_drain_continues_degraded;
          Alcotest.test_case "drain: last survivor fails structurally" `Quick
            test_drain_exhaustion_fails;
          Alcotest.test_case "heartbeat probes and recovers" `Quick
            test_heartbeat_probes_and_recovers;
          Alcotest.test_case "mute client cannot hang bootstrap" `Quick
            test_mute_client_bootstrap_timeout;
          Alcotest.test_case "remote worker joins the rendezvous" `Quick
            test_remote_worker_joins;
        ] );
      ( "transports",
        [
          Alcotest.test_case "tcp leg parity" `Quick test_tcp_leg;
          Alcotest.test_case "fault injection composes bit-identically" `Quick
            test_fault_injection_composes;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "shutdown_all closes every session" `Quick
            test_shutdown_all;
          Alcotest.test_case "shards clamp to n" `Quick test_shards_clamped;
        ] );
    ]
